// §V-F: implicit matrix factorization — per-iteration time of cuMF-ALS vs
// the `implicit` library and QMF (paper: 2.2 s vs 90 s vs 360 s on
// Netflix-implicit), plus a functional implicit-ALS convergence run.
#include <cstdio>

#include "baselines/implicit_cpu.hpp"
#include "bench/bench_util.hpp"
#include "data/implicit.hpp"

using namespace cumf;

int main() {
  bench::print_header("Implicit MF (sec. V-F)",
                      "per-iteration time: cuMF-ALS vs implicit vs QMF");

  const auto preset = DatasetPreset::netflix();
  const double m = static_cast<double>(preset.full_m);
  const double n = static_cast<double>(preset.full_n);
  const double nnz = static_cast<double>(preset.full_nnz);
  const auto dev = gpusim::DeviceSpec::maxwell_titan_x();
  const auto host = gpusim::HostSpec::libmf_40core();

  const double gpu = implicit_gpu_iteration_seconds(dev, m, n, nnz, 100, 6);
  const double lib = implicit_cpu_iteration_seconds(
      ImplicitCpuFlavor::ImplicitLib, host, m, n, nnz, 100);
  const double qmf = implicit_cpu_iteration_seconds(ImplicitCpuFlavor::Qmf,
                                                    host, m, n, nnz, 100);

  Table t({"library", "sec / iteration (modelled)", "paper reports"});
  t.add_row({"cuMF-ALS (1 GPU)", Table::num(gpu, 1), "2.2"});
  t.add_row({"implicit (CPU)", Table::num(lib, 1), "90"});
  t.add_row({"QMF (CPU)", Table::num(qmf, 1), "360"});
  std::printf("%s\n", t.to_string().c_str());

  // Functional implicit ALS on the scaled dataset: dense-loss descent and
  // ranking quality (observed items must outscore random ones).
  auto prepared = bench::prepare(preset, 0.15);
  const auto implicit = to_implicit(prepared.data.ratings, 3.5f, 40.0);
  ImplicitAlsOptions options;
  options.f = 16;
  options.lambda = 0.05f;
  options.solver.kind = SolverKind::CgFp32;
  options.solver.cg_fs = 6;
  ImplicitAlsEngine engine(implicit, options);

  std::printf("Functional implicit ALS (scaled Netflix, alpha=40, f=16):\n");
  std::printf("# epoch  AUC(observed > random)\n");
  Rng rng(33);
  for (int epoch = 1; epoch <= 6; ++epoch) {
    engine.run_epoch();
    int wins = 0;
    int trials = 0;
    for (const Rating& e : implicit.interactions.entries()) {
      if (trials >= 2000) {
        break;
      }
      const auto rv = static_cast<index_t>(
          rng.uniform_index(implicit.interactions.cols()));
      wins += engine.score(e.u, e.v) > engine.score(e.u, rv);
      ++trials;
    }
    std::printf("%d\t%.3f\n", epoch,
                static_cast<double>(wins) / static_cast<double>(trials));
  }
  std::printf(
      "\nExpected shape: cuMF-ALS per-iteration time 1-2 orders of magnitude\n"
      "below the CPU libraries; QMF slower than implicit; AUC climbs well\n"
      "above 0.5 within a few epochs (the implicit model learns preferences).\n");
  return 0;
}
