// Google-benchmark microbenchmarks of the hot host-side kernels: the tiled
// get_hermitian row kernel vs its naive reference, the three solvers, the
// FP16 conversions, and the dense building blocks. These measure the
// *functional* (host) implementations — useful for keeping the simulator's
// own throughput honest while iterating.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.hpp"
#include "core/als.hpp"
#include "core/hermitian.hpp"
#include "core/solver.hpp"
#include "data/generator.hpp"
#include "half/half.hpp"
#include "linalg/cg.hpp"
#include "linalg/gemm.hpp"
#include "sparse/csr.hpp"

namespace cumf {
namespace {

struct HermitianFixture {
  CsrMatrix csr;
  Matrix theta;
  std::vector<real_t> a;
  std::vector<real_t> b;

  explicit HermitianFixture(std::size_t f) {
    SyntheticConfig cfg;
    cfg.m = 500;
    cfg.n = 300;
    cfg.nnz = 20000;
    cfg.seed = 3;
    const auto data = generate_synthetic(cfg);
    csr = CsrMatrix::from_coo(data.ratings);
    theta = Matrix(300, f);
    Rng rng(5);
    for (auto& v : theta.data()) {
      v = static_cast<real_t>(rng.normal(0.0, 1.0));
    }
    a.resize(f * f);
    b.resize(f);
  }
};

void BM_HermitianTiled(benchmark::State& state) {
  const auto f = static_cast<std::size_t>(state.range(0));
  HermitianFixture fx(f);
  HermitianParams params{pick_tile(f, 10), 32};
  HermitianWorkspace ws;
  index_t u = 0;
  for (auto _ : state) {
    get_hermitian_row(fx.csr, fx.theta, u, 0.05f, params, ws, fx.a, fx.b);
    u = (u + 1) % fx.csr.rows();
    benchmark::DoNotOptimize(fx.a.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HermitianTiled)->Arg(32)->Arg(64)->Arg(100);

void BM_HermitianReference(benchmark::State& state) {
  const auto f = static_cast<std::size_t>(state.range(0));
  HermitianFixture fx(f);
  index_t u = 0;
  for (auto _ : state) {
    get_hermitian_row_reference(fx.csr, fx.theta, u, 0.05f, fx.a, fx.b);
    u = (u + 1) % fx.csr.rows();
    benchmark::DoNotOptimize(fx.a.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HermitianReference)->Arg(32)->Arg(64)->Arg(100);

std::vector<real_t> make_spd(std::size_t f, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<real_t> g(f * f);
  for (auto& v : g) {
    v = static_cast<real_t>(rng.normal(0.0, 1.0));
  }
  std::vector<real_t> a(f * f, 0);
  for (std::size_t i = 0; i < f; ++i) {
    for (std::size_t j = 0; j < f; ++j) {
      double acc = i == j ? 1.0 : 0.0;
      for (std::size_t k = 0; k < f; ++k) {
        acc += static_cast<double>(g[i * f + k]) *
               static_cast<double>(g[j * f + k]);
      }
      a[i * f + j] = static_cast<real_t>(acc);
    }
  }
  return a;
}

void BM_Solver(benchmark::State& state) {
  const auto kind = static_cast<SolverKind>(state.range(0));
  const auto f = static_cast<std::size_t>(state.range(1));
  const auto a = make_spd(f, 7);
  std::vector<real_t> b(f, 1.0f);
  std::vector<real_t> x(f, 0.0f);
  SolverOptions options;
  options.kind = kind;
  options.cg_fs = 6;
  SystemSolver solver(f, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(a, b, x));
  }
  state.SetLabel(to_string(kind));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Solver)
    ->Args({static_cast<int>(SolverKind::LuFp32), 100})
    ->Args({static_cast<int>(SolverKind::CholeskyFp32), 100})
    ->Args({static_cast<int>(SolverKind::CgFp32), 100})
    ->Args({static_cast<int>(SolverKind::CgFp16), 100});

void BM_HalfRoundTrip(benchmark::State& state) {
  Rng rng(11);
  std::vector<float> values(4096);
  for (auto& v : values) {
    v = static_cast<float>(rng.normal(0.0, 100.0));
  }
  for (auto _ : state) {
    float acc = 0;
    for (const float v : values) {
      acc += static_cast<float>(half(v));
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(values.size()));
}
BENCHMARK(BM_HalfRoundTrip);

void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(13);
  std::vector<real_t> a(n * n);
  std::vector<real_t> b(n * n);
  std::vector<real_t> c(n * n);
  for (auto& v : a) {
    v = static_cast<real_t>(rng.normal(0.0, 1.0));
  }
  for (auto& v : b) {
    v = static_cast<real_t>(rng.normal(0.0, 1.0));
  }
  for (auto _ : state) {
    gemm(n, n, n, 1.0f, a, b, 0.0f, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128);

}  // namespace
}  // namespace cumf

BENCHMARK_MAIN();
