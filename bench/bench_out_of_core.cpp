// bench_out_of_core — the streamed-ALS benchmark (out-of-core block
// scheduling with transfer/compute overlap).
//
// Two sections:
//   1. Native check: shard a scaled synthetic dataset and train OocAlsEngine
//      under a host budget of two tiles — factors and SolveStats must be
//      bit-identical to the in-core AlsEngine on the same split, with
//      prefetch both on and off.
//   2. Full-scale model: Hugewiki (3.1B nnz — the matrix that motivates
//      streaming: its tiles alone outweigh a 16 GB device) and Netflix at
//      Table II sizes, cut into even tile layouts and pushed through
//      ooc_epoch_timeline over PCIe 3.0 vs NVLink at f ∈ {40, 100}. The
//      reported gain is serial / pipelined wall per epoch — what the
//      single-slot prefetch buys over load-then-compute. The CI perf-smoke
//      gate asserts on "ooc_overlap_best" (the model is analytic, so the
//      numbers are deterministic across machines).
//
// Writes BENCH_out_of_core.json for tools/bench_compare.py.
//
// Usage: bench_out_of_core [--quick] [--out PATH]
//   --quick  shrink the native dataset and epochs (CI smoke)
//   --out    output JSON path (default: BENCH_out_of_core.json)
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/stopwatch.hpp"
#include "core/als.hpp"
#include "core/ooc_als.hpp"
#include "data/generator.hpp"
#include "data/presets.hpp"
#include "data/shards.hpp"
#include "gpusim/interconnect.hpp"
#include "sparse/split.hpp"

namespace {

using namespace cumf;

bool same_bits(const Matrix& a, const Matrix& b) {
  const auto da = a.data();
  const auto db = b.data();
  return da.size() == db.size() &&
         std::equal(da.begin(), da.end(), db.begin());
}

std::string json_num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

/// Framed on-disk size of a tile holding `rows` rows and `nnz` entries —
/// mirrors the shard writer's layout (header + payload + CRC).
std::uint64_t tile_disk_bytes(std::uint64_t rows, std::uint64_t nnz) {
  const std::uint64_t payload = 25 + (rows + 1) * 8 + nnz * 8;
  return payload + 24;
}

/// Even tile layout of a full-scale dataset: the shape the nnz-balanced
/// cuts converge to when no single row dominates.
ShardMeta model_meta(const DatasetPreset& preset, std::size_t tiles) {
  ShardMeta meta;
  meta.rows = static_cast<index_t>(preset.full_m);
  meta.cols = static_cast<index_t>(preset.full_n);
  meta.train_nnz = preset.full_nnz;
  const struct {
    std::uint64_t rows;
    std::vector<TileRange>* out;
  } views[] = {{preset.full_m, &meta.row_tiles},
               {preset.full_n, &meta.col_tiles}};
  for (const auto& view : views) {
    for (std::size_t i = 0; i < tiles; ++i) {
      TileRange t;
      t.row_begin = static_cast<index_t>(view.rows * i / tiles);
      t.row_end = static_cast<index_t>(view.rows * (i + 1) / tiles);
      t.nnz = preset.full_nnz * (i + 1) / tiles -
              preset.full_nnz * i / tiles;
      t.bytes = tile_disk_bytes(t.row_end - t.row_begin, t.nnz);
      view.out->push_back(t);
    }
  }
  return meta;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_out_of_core.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out PATH]\n", argv[0]);
      return 2;
    }
  }

  bench::print_header("bench_out_of_core",
                      "streamed ALS: bounded-memory tiles + overlap model");

  // --- 1. native streamed run vs in-core: bit-identity under a tight
  //        budget, overlap on and off -----------------------------------
  SyntheticConfig cfg;
  cfg.m = quick ? 2'000 : 6'000;
  cfg.n = quick ? 120 : 250;
  cfg.nnz = quick ? 60'000 : 300'000;
  cfg.row_zipf = 0.8;
  cfg.seed = 4242;
  const auto data = generate_synthetic(cfg);
  const int epochs = quick ? 2 : 3;

  AlsOptions opt;
  opt.f = 16;
  opt.lambda = static_cast<real_t>(0.05);
  opt.seed = 99;
  opt.workers = 2;

  ShardBuildOptions build;
  build.tiles = 8;
  build.test_fraction = 0.1;
  build.seed = opt.seed;
  const std::string shard_dir = "bench_ooc_shards";
  std::filesystem::remove_all(shard_dir);
  const ShardMeta meta = write_shards(shard_dir, data.ratings, build);

  std::uint64_t largest = 0;
  std::uint64_t resident_total = 0;
  for (const auto* table : {&meta.row_tiles, &meta.col_tiles}) {
    for (const TileRange& t : *table) {
      largest = std::max(largest, tile_resident_bytes(t));
      resident_total += tile_resident_bytes(t);
    }
  }
  std::printf("  shard store: %zu+%zu tiles, %.1f MB resident total, "
              "budget %.1f MB (2 tiles)\n",
              meta.row_tiles.size(), meta.col_tiles.size(),
              static_cast<double>(resident_total) / 1e6,
              static_cast<double>(2 * largest) / 1e6);

  Rng rng(build.seed);
  const TrainTestSplit split =
      split_holdout(data.ratings, build.test_fraction, rng);
  AlsEngine reference(split.train, opt);
  Stopwatch ref_sw;
  for (int e = 0; e < epochs; ++e) {
    reference.run_epoch();
  }
  const double ref_epoch_s = ref_sw.seconds() / epochs;
  std::printf("  in-core epoch: %.4f s\n", ref_epoch_s);

  std::map<std::string, double> native_json;
  native_json["epoch_s_incore"] = ref_epoch_s;
  bool identical = true;
  for (const bool overlap : {true, false}) {
    OocOptions ooc;
    ooc.host_mem_bytes = 2 * largest;
    ooc.overlap = overlap;
    OocAlsEngine engine(shard_dir, opt, ooc);
    Stopwatch sw;
    for (int e = 0; e < epochs; ++e) {
      engine.run_epoch();
    }
    const double secs = sw.seconds() / epochs;
    const OocEpochStats& stats = engine.ooc_stats_last_epoch();
    std::printf("  streamed epoch (%s): %.4f s "
                "(stall %.4f s, compute %.4f s, %llu tile fetches)\n",
                overlap ? "overlap" : "no overlap", secs, stats.stall_s,
                stats.compute_s,
                static_cast<unsigned long long>(stats.tiles));
    native_json[overlap ? "epoch_s_streamed" : "epoch_s_no_overlap"] = secs;
    identical = identical &&
                same_bits(engine.user_factors(), reference.user_factors()) &&
                same_bits(engine.item_factors(), reference.item_factors()) &&
                engine.solve_stats() == reference.solve_stats();
  }
  native_json["bit_identical"] = identical ? 1.0 : 0.0;
  std::printf("  streamed factors + SolveStats vs in-core: %s\n",
              identical ? "bit-identical" : "MISMATCH");
  std::filesystem::remove_all(shard_dir);
  if (!identical) {
    std::fprintf(stderr, "bench_out_of_core: bit-identity violated\n");
    return 1;
  }

  // --- 2. full-scale model: Table II sizes streamed over real links ------
  const auto dev = gpusim::DeviceSpec::pascal_p100();
  constexpr std::size_t kModelTiles = 16;
  std::map<std::string, double> full_json;
  std::map<std::string, double> speedups;
  double best_gain = 0.0;
  for (const auto& preset :
       {DatasetPreset::netflix(), DatasetPreset::hugewiki()}) {
    const ShardMeta fm = model_meta(preset, kModelTiles);
    std::uint64_t stream_bytes = 0;
    for (const auto* table : {&fm.row_tiles, &fm.col_tiles}) {
      for (const TileRange& t : *table) {
        stream_bytes += t.bytes;
      }
    }
    std::printf("\n  %s at full scale (m=%llu, n=%llu, nnz=%llu): "
                "%.1f GB streamed per epoch over %zu+%zu tiles\n",
                preset.name.c_str(),
                static_cast<unsigned long long>(preset.full_m),
                static_cast<unsigned long long>(preset.full_n),
                static_cast<unsigned long long>(preset.full_nnz),
                static_cast<double>(stream_bytes) / 1e9, kModelTiles,
                kModelTiles);
    // f=16 is the rank the native section trains (and the regime where the
    // stream is transfer/compute balanced); 40 and 100 are the paper's
    // ranks, where high-rank ALS turns compute-bound and overlap can only
    // shave the transfer share off the epoch.
    for (const int f : {16, 40, 100}) {
      AlsKernelConfig kc;
      kc.f = f;
      kc.tile = pick_tile(static_cast<std::size_t>(f), kc.tile);
      kc.solver = SolverKind::CgFp16;
      for (const auto& link : {gpusim::LinkSpec::pcie3_x8(),
                               gpusim::LinkSpec::pcie3(),
                               gpusim::LinkSpec::nvlink()}) {
        const OocTimeline tl = ooc_epoch_timeline(dev, kc, link, fm, true);
        const std::string link_key = link.name == "NVLink"   ? "nvlink"
                                     : link.name == "PCIe 3.0 x8"
                                         ? "pcie3x8"
                                         : "pcie3";
        const std::string tag =
            preset.name + "_" + link_key + "_f" + std::to_string(f);
        full_json["epoch_s_" + tag] = tl.pipelined_s;
        full_json["serial_s_" + tag] = tl.serial_s;
        full_json["transfer_s_" + tag] = tl.transfer_s;
        full_json["overlap_gain_" + tag] = tl.overlap_gain;
        std::printf("    %-7s f=%-3d  transfer %8.2f s  compute %8.2f s  "
                    "serial %8.2f s  pipelined %8.2f s  gain %.2fx\n",
                    link.name.c_str(), f, tl.transfer_s, tl.compute_s,
                    tl.serial_s, tl.pipelined_s, tl.overlap_gain);
        if (preset.name == "Hugewiki") {
          speedups["ooc_overlap_" + link_key + "_f" + std::to_string(f)] =
              tl.overlap_gain;
        }
        best_gain = std::max(best_gain, tl.overlap_gain);
      }
    }
  }
  // The gate key: the best transfer/compute-balanced configuration. A
  // transfer-bound corner (f=100 on PCIe3 is compute:transfer ≈ 7:1) can
  // only approach 1x by Amdahl — the gate asserts the overlap machinery
  // delivers where the pipeline is balanced, not that every corner is.
  speedups["ooc_overlap_best"] = best_gain;

  // --- JSON ---------------------------------------------------------------
  const auto dump = [](std::ofstream& out, const char* key,
                       const std::map<std::string, double>& section,
                       bool last) {
    out << "  \"" << key << "\": {\n";
    for (auto it = section.begin(); it != section.end(); ++it) {
      out << "    \"" << it->first << "\": " << json_num(it->second)
          << (std::next(it) != section.end() ? "," : "") << "\n";
    }
    out << "  }" << (last ? "" : ",") << "\n";
  };
  std::ofstream out(out_path);
  out << "{\n  \"quick\": " << (quick ? "true" : "false") << ",\n"
      << "  \"sim_device\": \"" << dev.name << "\",\n";
  dump(out, "native", native_json, false);
  dump(out, "full_scale", full_json, false);
  dump(out, "speedups", speedups, true);
  out << "}\n";
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
