// Fig. 8: ALS vs SGD on GPUs — one and four devices, three datasets.
//
// Functional runs give each algorithm's RMSE-per-epoch trajectory; the cost
// model gives per-epoch device seconds at full scale (cuMF-ALS with CG-FP16;
// cuMF-SGD with Hogwild-style FP16 updates).
#include <cstdio>

#include "baselines/gpu_sgd.hpp"
#include "bench/bench_util.hpp"

using namespace cumf;

namespace {

void run_dataset(const DatasetPreset& preset_in, bool also_four_gpus,
                 float sgd_lr, float sgd_lambda) {
  auto prepared = bench::prepare(preset_in);
  const auto& preset = prepared.preset;
  std::printf("\n================ %s ================\n",
              preset.name.c_str());
  std::printf("scaled acceptable RMSE: %.4f\n", prepared.scaled_target);

  const double m = static_cast<double>(preset.full_m);
  const double n = static_cast<double>(preset.full_n);
  const double nnz = static_cast<double>(preset.full_nnz);
  const auto dev = gpusim::DeviceSpec::maxwell_titan_x();
  const auto als_cfg = [&] {
    AlsKernelConfig c;
    c.f = 100;
    c.solver = SolverKind::CgFp16;
    return c;
  }();

  const int gpu_counts[] = {1, 4};
  Table t({"solver", "epochs", "sec/epoch", "time to target (s)"});
  for (const int gpus : gpu_counts) {
    if (gpus == 4 && !also_four_gpus) {
      continue;
    }
    // ALS.
    AlsOptions als_options;
    als_options.f = 32;
    als_options.lambda = static_cast<real_t>(preset.paper_lambda);
    als_options.solver.kind = SolverKind::CgFp16;
    als_options.solver.cg_fs = 6;
    AlsEngine als(prepared.split.train, als_options);
    const double sec_als = als_epoch_seconds(dev, m, n, nnz, als_cfg, gpus);
    const auto curve_als = bench::run_convergence(
        als, prepared.split.test, 15, sec_als, prepared.scaled_target);
    std::printf("%s", curve_als
                          .series("als@" + std::to_string(gpus))
                          .c_str());
    const auto als_epochs = curve_als.epochs_to(prepared.scaled_target);
    t.add_row({"als@" + std::to_string(gpus),
               als_epochs ? std::to_string(*als_epochs) : "—",
               Table::num(sec_als, 3),
               bench::fmt_time(curve_als.time_to(prepared.scaled_target))});

    // SGD.
    GpuSgd::Options sgd_options;
    sgd_options.f = 32;
    sgd_options.lambda = sgd_lambda;
    sgd_options.lr = sgd_lr;
    sgd_options.lr_decay = 0.05f;
    sgd_options.seed = 5;
    sgd_options.half_precision = true;
    GpuSgd sgd(prepared.split.train, sgd_options);
    const double sec_sgd = sgd_epoch_seconds(
        dev, nnz, 100, true, gpus, gpusim::LinkSpec::nvlink(), m, n);
    const auto curve_sgd = bench::run_convergence(
        sgd, prepared.split.test, 40, sec_sgd, prepared.scaled_target);
    std::printf("%s", curve_sgd
                          .series("sgd@" + std::to_string(gpus))
                          .c_str());
    const auto sgd_epochs = curve_sgd.epochs_to(prepared.scaled_target);
    t.add_row({"sgd@" + std::to_string(gpus),
               sgd_epochs ? std::to_string(*sgd_epochs) : "—",
               Table::num(sec_sgd, 3),
               bench::fmt_time(curve_sgd.time_to(prepared.scaled_target))});
  }
  std::printf("\n%s", t.to_string().c_str());
}

}  // namespace

int main() {
  bench::print_header("Fig. 8", "ALS vs SGD on one and four GPUs");
  run_dataset(DatasetPreset::netflix(), false, 0.02f, 0.04f);
  run_dataset(DatasetPreset::yahoomusic(), false, 0.0015f, 1.0f);
  run_dataset(DatasetPreset::hugewiki(), true, 0.03f, 0.04f);
  std::printf(
      "\nExpected shape (paper Fig. 8): SGD epochs are cheaper but ALS needs\n"
      "fewer of them; on one GPU the two are comparable, and with four GPUs\n"
      "ALS overtakes SGD on Hugewiki (ALS parallelizes without conflicts).\n");
  return 0;
}
