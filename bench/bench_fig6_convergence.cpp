// Fig. 6 + Table IV: test RMSE vs training time for cuMF-ALS (Maxwell and
// Pascal), GPU-ALS [31], LIBMF and NOMAD, on the three datasets; Hugewiki
// uses four GPUs for the ALS implementations (and 64 NOMAD machines), as in
// the paper.
//
// Numerics (epochs, RMSE trajectories) come from real training runs on the
// scaled datasets; the x-axis seconds are the cost model's per-epoch times
// at the published full-scale m/n/Nz with f=100. BIDMach is reported the
// way the paper reports it: it does not reach the acceptable RMSE, so only
// its kernel throughput is shown (see bench_fig7).
#include <cstdio>

#include "baselines/als_plain.hpp"
#include "baselines/sgd_blocked.hpp"
#include "baselines/sgd_nomad.hpp"
#include "bench/bench_util.hpp"
#include "gpusim/cost_model.hpp"

using namespace cumf;

namespace {

struct DatasetRun {
  DatasetPreset preset;
  int gpus = 1;
  int nomad_machines = 32;
  float sgd_lr = 0.02f;
  float sgd_lambda = 0.04f;  ///< plain-λ SGD regularization (rating-scale dependent)
};

void run_dataset(const DatasetRun& cfg) {
  auto prepared = bench::prepare(cfg.preset);
  const auto& preset = prepared.preset;
  std::printf("\n================ %s (scaled: m=%u n=%u nnz=%llu) "
              "================\n",
              preset.name.c_str(), preset.scaled.m, preset.scaled.n,
              static_cast<unsigned long long>(preset.scaled.nnz));
  std::printf("scaled acceptable RMSE: %.4f (noise floor %.4f x 1.22)\n",
              prepared.scaled_target, prepared.data.noise_floor_rmse);

  const double m = static_cast<double>(preset.full_m);
  const double n = static_cast<double>(preset.full_n);
  const double nnz = static_cast<double>(preset.full_nnz);
  const auto maxwell = gpusim::DeviceSpec::maxwell_titan_x();
  const auto pascal = gpusim::DeviceSpec::pascal_p100();

  // Per-epoch simulated seconds at full scale.
  const auto cumf_cfg = cumfals_kernel_config(100, SolverKind::CgFp16);
  auto plain_cfg = cumf_cfg;
  plain_cfg.solver = SolverKind::LuFp32;
  plain_cfg.load_scheme = LoadScheme::Coalesced;
  plain_cfg.register_tiling = false;
  const double sec_cumf_m =
      als_epoch_seconds(maxwell, m, n, nnz, cumf_cfg, cfg.gpus);
  const double sec_cumf_p =
      als_epoch_seconds(pascal, m, n, nnz, cumf_cfg, cfg.gpus);
  const double sec_plain_m =
      als_epoch_seconds(maxwell, m, n, nnz, plain_cfg, cfg.gpus);
  const double sec_libmf = gpusim::host_sgd_epoch_seconds(
      gpusim::HostSpec::libmf_40core(), nnz, 100);
  const auto nomad_host = gpusim::HostSpec::nomad_cluster(cfg.nomad_machines);
  const double sec_nomad =
      std::max(gpusim::host_sgd_epoch_seconds(nomad_host, nnz, 100),
               gpusim::host_network_epoch_seconds(nomad_host, n, 100));

  // Functional training runs (scaled data, f=32).
  const int kAlsEpochs = 15;
  const int kSgdEpochs = 35;

  AlsOptions cumf_options;
  cumf_options.f = 32;
  cumf_options.lambda = static_cast<real_t>(preset.paper_lambda);
  cumf_options.solver.kind = SolverKind::CgFp16;
  cumf_options.solver.cg_fs = 6;
  AlsEngine cumf_m(prepared.split.train, cumf_options);
  const auto curve_cumf_m = bench::run_convergence(
      cumf_m, prepared.split.test, kAlsEpochs, sec_cumf_m,
      prepared.scaled_target);

  AlsEngine cumf_p(prepared.split.train, cumf_options);
  const auto curve_cumf_p = bench::run_convergence(
      cumf_p, prepared.split.test, kAlsEpochs, sec_cumf_p,
      prepared.scaled_target);

  auto plain = make_gpu_als_baseline(
      prepared.split.train, 32, static_cast<real_t>(preset.paper_lambda));
  const auto curve_plain = bench::run_convergence(
      *plain.engine, prepared.split.test, kAlsEpochs, sec_plain_m,
      prepared.scaled_target);

  SgdOptions libmf_options;
  libmf_options.f = 32;
  libmf_options.lambda = cfg.sgd_lambda;
  libmf_options.lr = cfg.sgd_lr;
  libmf_options.lr_decay = 0.05f;
  libmf_options.workers = 4;
  libmf_options.seed = 11;
  BlockedSgd libmf(prepared.split.train, libmf_options);
  const auto curve_libmf = bench::run_convergence(
      libmf, prepared.split.test, kSgdEpochs, sec_libmf,
      prepared.scaled_target);

  auto nomad_options = libmf_options;
  nomad_options.workers = 2;
  NomadSgd nomad(prepared.split.train, nomad_options);
  const auto curve_nomad = bench::run_convergence(
      nomad, prepared.split.test, kSgdEpochs, sec_nomad,
      prepared.scaled_target);

  // Fig. 6 series.
  std::printf("\n%s", curve_libmf.series("LIBMF (40-core model)").c_str());
  std::printf("%s", curve_nomad
                        .series("NOMAD (" +
                                std::to_string(cfg.nomad_machines) +
                                "-machine model)")
                        .c_str());
  std::printf("%s", curve_plain.series("GPU-ALS@M").c_str());
  std::printf("%s", curve_cumf_m.series("cuMF-ALS@M").c_str());
  std::printf("%s", curve_cumf_p.series("cuMF-ALS@P").c_str());

  // Table IV row: seconds to acceptable RMSE.
  Table t({"solver", "epochs to target", "sec/epoch (modelled)",
           "time to acceptable RMSE (s)"});
  const auto add = [&](const char* name, const ConvergenceTracker& c,
                       double per_epoch) {
    const auto epochs = c.epochs_to(prepared.scaled_target);
    t.add_row({name, epochs ? std::to_string(*epochs) : "—",
               Table::num(per_epoch, 2),
               bench::fmt_time(c.time_to(prepared.scaled_target))});
  };
  add("LIBMF", curve_libmf, sec_libmf);
  add("NOMAD", curve_nomad, sec_nomad);
  add("GPU-ALS@M", curve_plain, sec_plain_m);
  add("cuMF-ALS@M", curve_cumf_m, sec_cumf_m);
  add("cuMF-ALS@P", curve_cumf_p, sec_cumf_p);
  std::printf("\nTable IV analogue — %s%s:\n%s", preset.name.c_str(),
              cfg.gpus > 1 ? " (ALS on 4 GPUs)" : "",
              t.to_string().c_str());

  const auto t_cumf_p = curve_cumf_p.time_to(prepared.scaled_target);
  const auto t_libmf = curve_libmf.time_to(prepared.scaled_target);
  const auto t_plain = curve_plain.time_to(prepared.scaled_target);
  const auto t_cumf_m = curve_cumf_m.time_to(prepared.scaled_target);
  if (t_cumf_p && t_libmf) {
    std::printf("cuMF-ALS@P / LIBMF speedup: %.1fx (paper: %s)\n",
                *t_libmf / *t_cumf_p,
                preset.name == "Netflix"      ? "7x"
                : preset.name == "YahooMusic" ? "5.6x"
                                              : "44.4x");
  }
  if (t_cumf_m && t_plain) {
    std::printf("cuMF-ALS@M / GPU-ALS@M speedup: %.1fx (paper: 2x-4x)\n",
                *t_plain / *t_cumf_m);
  }
}

}  // namespace

int main() {
  bench::print_header("Fig. 6 / Table IV",
                      "convergence time vs CPU and GPU baselines");
  run_dataset({DatasetPreset::netflix(), 1, 32, 0.02f, 0.04f});
  run_dataset({DatasetPreset::yahoomusic(), 1, 32, 0.0015f, 1.0f});
  run_dataset({DatasetPreset::hugewiki(), 4, 64, 0.03f, 0.04f});
  return 0;
}
