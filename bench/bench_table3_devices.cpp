// Table III: the Kepler / Maxwell / Pascal device configurations, as
// instantiated by the gpusim model, plus the derived quantities the other
// benches rely on (hermitian occupancy, memcpy reference bandwidth).
#include <cstdio>

#include "bench/bench_util.hpp"
#include "gpusim/cost_model.hpp"
#include "gpusim/occupancy.hpp"

using namespace cumf;

int main() {
  bench::print_header("Table III", "simulated GPU configurations");

  Table t({"GPU", "SMs", "peak TFLOPS", "DRAM GB/s", "L1 KB/SM", "L2 MB",
           "memcpy GB/s", "hermitian blocks/SM (f=100)"});
  for (const auto& dev :
       {gpusim::DeviceSpec::kepler_k40(), gpusim::DeviceSpec::maxwell_titan_x(),
        gpusim::DeviceSpec::pascal_p100()}) {
    AlsKernelConfig config;  // paper defaults: f=100, tile=10, BIN=32
    const auto occ = hermitian_occupancy(dev, config);
    t.add_row({dev.name, std::to_string(dev.sm_count),
               Table::num(dev.peak_flops / 1e12, 1),
               Table::num(dev.dram_bw / 1e9, 0),
               std::to_string(dev.l1_bytes / 1024),
               Table::num(static_cast<double>(dev.l2_bytes) / (1024 * 1024), 1),
               Table::num(gpusim::memcpy_bandwidth(dev) / 1e9, 0),
               std::to_string(occ.blocks_per_sm)});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "The blocks/SM column reproduces Observation 2: at f=100 the tiled\n"
      "kernel needs 168 registers/thread with 64-thread blocks, so only ~6\n"
      "of the 32 possible blocks fit on an SM (register-limited).\n");

  Table hosts({"CPU host (Fig. 6 baselines)", "machines", "cores",
               "parallel eff."});
  for (const auto& host : {gpusim::HostSpec::libmf_40core(),
                           gpusim::HostSpec::nomad_cluster(32),
                           gpusim::HostSpec::nomad_cluster(64)}) {
    hosts.add_row({host.name, std::to_string(host.machines),
                   std::to_string(host.machines * host.cores_per_machine),
                   Table::num(host.parallel_efficiency, 2)});
  }
  std::printf("%s", hosts.to_string().c_str());
  return 0;
}
