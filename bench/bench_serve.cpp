// bench_serve — the serving-layer load harness.
//
// Three questions, one JSON answer (BENCH_serve.json):
//
//  1. How much does batched scoring buy? The per-item scalar `dot` loop
//     (the pre-serve recommend_top_k inner loop) vs the dot_rows gemv over
//     the same Θ — the "serve_batched_scoring" speedup the CI perf-smoke
//     job gates at ≥ 2x.
//  2. What latency does a loaded service hold? A closed-loop generator
//     (T threads issuing back-to-back top-k requests) reports QPS and
//     p50/p95/p99, all through per-thread cuprof histogram registries
//     merged after the run — the merge-stable path the tests verify.
//  3. What does the open-loop view look like? Requests scheduled at a fixed
//     arrival rate (60% of the closed-loop ceiling), latency measured from
//     *scheduled* time so queueing delay is included — the
//     coordinated-omission-free number.
//
// Plus the fold-in histogram: per-observe latency of the degradation-
// guarded re-solve. Usage: bench_serve [--quick] [--out PATH] [--trace PATH]
#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "data/model_io.hpp"
#include "linalg/dense.hpp"
#include "prof/counters.hpp"
#include "prof/prof.hpp"
#include "serve/serve.hpp"
#include "simd/vec.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"

namespace {

using namespace cumf;
using bench::g_sink;
using bench::time_ns;

std::string json_num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (real_t& v : m.data()) {
    v = static_cast<real_t>(rng.normal() * 0.3);
  }
  return m;
}

struct Percentiles {
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

Percentiles summarize(const prof::Histogram& h) {
  return {h.mean(), h.percentile(0.50), h.percentile(0.95),
          h.percentile(0.99)};
}

void print_lat(const char* name, const Percentiles& p, double qps) {
  std::printf("  %-14s mean %8.1f us   p50 %7.0f   p95 %7.0f   p99 %7.0f"
              "   %10.0f req/s\n",
              name, p.mean, p.p50, p.p95, p.p99, qps);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_serve.json";
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out PATH] [--trace PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  if (!trace_path.empty()) {
    prof::Tracer::instance().enable();
    prof::Tracer::instance().set_thread_name("bench_serve");
  }

  const std::size_t users = quick ? 2000 : 20000;
  const std::size_t items = quick ? 2048 : 8192;
  const std::size_t f = 64;
  const std::size_t ratings_per_user = 32;
  std::printf("bench_serve  backend=%s  default=%s  mode=%s\n",
              simd::backend_name(), to_string(simd::kDefaultPath),
              quick ? "quick" : "full");
  std::printf("model: %zu users x %zu items, f=%zu\n\n", users, items, f);

  Rng rng(20240808);
  FactorModel model{random_matrix(users, f, rng),
                    random_matrix(items, f, rng)};
  RatingsCoo coo(static_cast<index_t>(users), static_cast<index_t>(items));
  for (std::size_t u = 0; u < users; ++u) {
    for (std::size_t j = 0; j < ratings_per_user; ++j) {
      coo.add(static_cast<index_t>(u),
              static_cast<index_t>(rng.uniform_index(items)),
              static_cast<real_t>(1.0 + rng.uniform_index(5)));
    }
  }
  coo.sort_and_dedup();
  const auto seen = CsrMatrix::from_coo(coo);

  // --- 1. batched scoring vs the per-item scalar dot loop ---------------
  const double min_seconds = quick ? 0.02 : 0.2;
  const auto xu = model.x.row(0);
  std::vector<double> scores(items);
  const double scalar_ns = time_ns(
      [&] {
        for (std::size_t v = 0; v < items; ++v) {
          scores[v] = dot(xu, model.theta.row(v), simd::KernelPath::scalar);
        }
        g_sink = scores[items - 1];
      },
      min_seconds, 5);
  const double dotloop_ns = time_ns(
      [&] {
        for (std::size_t v = 0; v < items; ++v) {
          scores[v] = dot(xu, model.theta.row(v), simd::kDefaultPath);
        }
        g_sink = scores[items - 1];
      },
      min_seconds, 5);
  const double batched_ns = time_ns(
      [&] {
        dot_rows(xu, model.theta, 0, items, scores, simd::kDefaultPath);
        g_sink = scores[items - 1];
      },
      min_seconds, 5);
  const double batched_speedup = scalar_ns / batched_ns;
  std::printf("scoring one user over %zu items (f=%zu):\n", items, f);
  std::printf("  scalar dot loop  %12.0f ns\n", scalar_ns);
  std::printf("  simd dot loop    %12.0f ns   (%.2fx)\n", dotloop_ns,
              scalar_ns / dotloop_ns);
  std::printf("  batched dot_rows %12.0f ns   (%.2fx)  <- CI gate >= 2x\n\n",
              batched_ns, batched_speedup);

  // --- the engine under test -------------------------------------------
  serve::ServeOptions options;
  options.shards = 4;
  options.cache_capacity = quick ? 256 : 2048;
  serve::ServeEngine engine(std::move(model), seen, options);

  const std::size_t threads = quick ? 2 : 4;
  const std::size_t k = 10;

  // --- 2. closed loop: back-to-back requests per thread ----------------
  const std::size_t closed_per_thread = quick ? 300 : 2500;
  std::vector<prof::CounterRegistry> closed_regs(threads);
  {
    std::vector<std::thread> pool;
    Stopwatch wall;
    for (std::size_t t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        prof::Tracer::instance().set_thread_name("closed-" +
                                                 std::to_string(t));
        Rng trng(1000 + t);
        for (std::size_t i = 0; i < closed_per_thread; ++i) {
          const auto user =
              static_cast<index_t>(trng.uniform_index(engine.users()));
          const auto t0 = Stopwatch::now_ns();
          const auto recs = engine.top_k(user, k);
          closed_regs[t].observe(
              "serve.topk_us",
              static_cast<double>(Stopwatch::now_ns() - t0) / 1e3);
          g_sink = static_cast<double>(recs.size());
        }
      });
    }
    for (auto& th : pool) {
      th.join();
    }
    const double secs = wall.seconds();
    prof::CounterRegistry merged;
    for (const auto& r : closed_regs) {
      merged.merge(r);
    }
    const auto* h = merged.histogram("serve.topk_us");
    const auto closed = summarize(*h);
    const double closed_qps =
        static_cast<double>(threads * closed_per_thread) / secs;
    std::printf("closed loop (%zu threads x %zu requests):\n", threads,
                closed_per_thread);
    print_lat("topk", closed, closed_qps);

    // --- 3. open loop: fixed arrival rate, latency from scheduled time --
    const double offered_qps = closed_qps * 0.6;
    const std::size_t open_total = quick ? 600 : 5000;
    const double interval_ns = 1e9 / offered_qps;
    std::vector<prof::CounterRegistry> open_regs(threads);
    std::vector<std::thread> open_pool;
    Stopwatch open_wall;
    const auto start_ns = Stopwatch::now_ns();
    for (std::size_t t = 0; t < threads; ++t) {
      open_pool.emplace_back([&, t] {
        Rng trng(2000 + t);
        for (std::size_t i = t; i < open_total; i += threads) {
          const auto sched =
              start_ns + static_cast<std::uint64_t>(
                             interval_ns * static_cast<double>(i));
          while (Stopwatch::now_ns() < sched) {
            std::this_thread::yield();
          }
          const auto user =
              static_cast<index_t>(trng.uniform_index(engine.users()));
          const auto recs = engine.top_k(user, k);
          open_regs[t].observe(
              "serve.open_us",
              static_cast<double>(Stopwatch::now_ns() - sched) / 1e3);
          g_sink = static_cast<double>(recs.size());
        }
      });
    }
    for (auto& th : open_pool) {
      th.join();
    }
    const double open_secs = open_wall.seconds();
    prof::CounterRegistry open_merged;
    for (const auto& r : open_regs) {
      open_merged.merge(r);
    }
    const auto open = summarize(*open_merged.histogram("serve.open_us"));
    const double achieved_qps = static_cast<double>(open_total) / open_secs;
    std::printf("open loop (%zu threads, offered %.0f req/s):\n", threads,
                offered_qps);
    print_lat("topk", open, achieved_qps);

    // --- 4. fold-in latency ---------------------------------------------
    const std::size_t folds = quick ? 150 : 600;
    prof::CounterRegistry fold_reg;
    Rng frng(3000);
    for (std::size_t i = 0; i < folds; ++i) {
      const Rating r{
          static_cast<index_t>(frng.uniform_index(engine.users())),
          static_cast<index_t>(frng.uniform_index(engine.items())),
          static_cast<real_t>(1.0 + frng.uniform_index(5))};
      const auto t0 = Stopwatch::now_ns();
      engine.observe(r);
      fold_reg.observe("serve.fold_in_us",
                       static_cast<double>(Stopwatch::now_ns() - t0) / 1e3);
    }
    const auto fold = summarize(*fold_reg.histogram("serve.fold_in_us"));
    std::printf("fold-in (%zu streamed ratings):\n", folds);
    print_lat("observe", fold, 0.0);

    const auto cache = engine.cache_stats();
    const auto solves = engine.solve_stats();
    std::printf("\ncache: %llu hits / %llu misses / %llu evictions; "
                "solver: %llu systems, %llu fallbacks\n",
                static_cast<unsigned long long>(cache.hits),
                static_cast<unsigned long long>(cache.misses),
                static_cast<unsigned long long>(cache.evictions),
                static_cast<unsigned long long>(solves.systems),
                static_cast<unsigned long long>(solves.cg_fallbacks +
                                                solves.fp16_fallbacks));

    std::ofstream out(out_path);
    out << "{\n  \"backend\": \"" << simd::backend_name() << "\",\n"
        << "  \"default_path\": \"" << to_string(simd::kDefaultPath)
        << "\",\n  \"quick\": " << (quick ? "true" : "false") << ",\n"
        << "  \"kernels\": {\n"
        << "    \"serve_scoring_f64\": {\"scalar_ns\": "
        << json_num(scalar_ns) << ", \"simd_dot_loop_ns\": "
        << json_num(dotloop_ns) << ", \"simd_ns\": " << json_num(batched_ns)
        << ", \"speedup\": " << json_num(batched_speedup) << "}\n"
        << "  },\n  \"speedups\": {\n"
        << "    \"serve_batched_scoring\": " << json_num(batched_speedup)
        << "\n  },\n"
        << "  \"closed_loop\": {\"threads\": " << threads
        << ", \"requests\": " << threads * closed_per_thread
        << ", \"qps\": " << json_num(closed_qps)
        << ", \"mean_us\": " << json_num(closed.mean)
        << ", \"p50_us\": " << json_num(closed.p50)
        << ", \"p95_us\": " << json_num(closed.p95)
        << ", \"p99_us\": " << json_num(closed.p99) << "},\n"
        << "  \"open_loop\": {\"threads\": " << threads
        << ", \"requests\": " << open_total
        << ", \"offered_qps\": " << json_num(offered_qps)
        << ", \"achieved_qps\": " << json_num(achieved_qps)
        << ", \"mean_us\": " << json_num(open.mean)
        << ", \"p50_us\": " << json_num(open.p50)
        << ", \"p95_us\": " << json_num(open.p95)
        << ", \"p99_us\": " << json_num(open.p99) << "},\n"
        << "  \"fold_in\": {\"count\": " << folds
        << ", \"mean_us\": " << json_num(fold.mean)
        << ", \"p50_us\": " << json_num(fold.p50)
        << ", \"p95_us\": " << json_num(fold.p95)
        << ", \"p99_us\": " << json_num(fold.p99) << "}\n}\n";
    std::printf("\nwrote %s\n", out_path.c_str());
  }

  if (!trace_path.empty() &&
      prof::Tracer::instance().write_chrome_trace(trace_path)) {
    std::printf("trace written to %s\n", trace_path.c_str());
  }
  return 0;
}
