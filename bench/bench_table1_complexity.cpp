// Table I: compute and memory complexity per epoch, ALS vs SGD.
//
// Prints the paper's analytic complexities evaluated on the Netflix shape
// and, alongside, the *measured* operation counts from an actual scaled ALS
// epoch — the measured arithmetic intensity must land on the analytic one
// (C/M ≈ f for get_hermitian and the LU solve, ≈ 1 for SGD).
#include <cstdio>

#include "bench/bench_util.hpp"
#include "metrics/roofline.hpp"

using namespace cumf;

int main() {
  bench::print_header("Table I", "compute/memory complexity: ALS vs SGD");

  const auto preset = DatasetPreset::netflix();
  const double nnz = static_cast<double>(preset.full_nnz);
  const double m = static_cast<double>(preset.full_m);
  const double n = static_cast<double>(preset.full_n);
  const int f = preset.paper_f;

  const auto als = als_complexity(nnz, m, n, f);
  const auto cg = als_complexity_cg(nnz, m, n, f, 6);
  const auto sgd = sgd_complexity(nnz, f);

  Table t({"kernel", "compute (FLOP)", "memory (bytes)", "C/M (FLOP/byte)",
           "paper's order"});
  const auto row = [&](const char* name, double c, double mem,
                       const char* order) {
    t.add_row({name, Table::num(c / 1e12, 3) + "e12",
               Table::num(mem / 1e9, 3) + "e9", Table::num(c / mem, 1),
               order});
  };
  row("ALS get_hermitian", als.hermitian_compute, als.hermitian_memory,
      "O(Nz f^2) / O(Nz f + (m+n) f^2) -> f");
  row("ALS solve (LU)", als.solve_compute, als.solve_memory,
      "O((m+n) f^3) / O((m+n) f^2) -> f");
  row("ALS solve (CG fs=6)", cg.solve_compute, cg.solve_memory,
      "O((m+n) fs f^2) / O((m+n) fs f^2) -> 1");
  row("SGD", sgd.compute, sgd.memory, "O(Nz f) / O(Nz f) -> 1");
  std::printf("%s\n", t.to_string().c_str());

  // Measured counters from a real (scaled) epoch.
  auto prepared = bench::prepare(preset, 0.25);
  AlsOptions options;
  options.f = 32;
  options.lambda = 0.05f;
  options.solver.kind = SolverKind::CgFp32;
  options.solver.cg_fs = 6;
  AlsEngine engine(prepared.split.train, options);
  engine.run_epoch();

  const auto& herm = engine.hermitian_ops_per_epoch();
  const auto& solve = engine.solve_ops_per_epoch();
  Table meas({"kernel (measured, scaled f=32)", "FLOP", "bytes",
              "intensity", "f for reference"});
  meas.add_row({"get_hermitian", Table::num(herm.flops / 1e9, 3) + "e9",
                Table::num(herm.bytes() / 1e9, 3) + "e9",
                Table::num(herm.intensity(), 1), "32"});
  meas.add_row({"solve (CG fs=6)", Table::num(solve.flops / 1e9, 3) + "e9",
                Table::num(solve.bytes() / 1e9, 3) + "e9",
                Table::num(solve.intensity(), 1), "32"});
  std::printf("%s\n", meas.to_string().c_str());
  std::printf(
      "Check: measured get_hermitian intensity ~f/4 per byte (f per float),\n"
      "CG solve intensity ~0.5 FLOP/byte — compute-bound vs memory-bound,\n"
      "matching Table I's C/M column.\n");
  return 0;
}
