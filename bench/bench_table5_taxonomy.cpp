// Table V: the paper's taxonomy of parallel MF solutions (SGD / ALS / CCD
// on CPUs and GPUs), annotated with where each entry lives in this
// repository — either as a faithful reimplementation or as a calibrated
// time model. This is a documentation table; nothing is measured here.
#include <cstdio>

#include "bench/bench_util.hpp"

using namespace cumf;

int main() {
  bench::print_header("Table V", "parallel MF solutions and their analogues here");

  Table t({"family", "system (paper ref)", "platform", "implemented as"});
  // --- SGD, CPU ---
  t.add_row({"SGD lock-free", "HogWild! [22]", "1 node",
             "baselines/sgd_hogwild (racing threads)"});
  t.add_row({"SGD lock-free", "FactorBird [30], Petuum [5]", "multi-node",
             "host model only (gpusim::HostSpec)"});
  t.add_row({"SGD blocking", "DSGD [9]", "MapReduce",
             "sparse/partition diagonal schedule"});
  t.add_row({"SGD blocking", "LIBMF [39]", "multi-core",
             "baselines/sgd_blocked + AdaGrad schedule [3]"});
  t.add_row({"SGD blocking", "NOMAD [37]", "MPI cluster",
             "baselines/sgd_nomad (token ring) + network model"});
  t.add_row({"SGD blocking", "DSGD++ [32], dcMF [21], MLGF-MF [27]",
             "multi-core/node", "covered by the blocked/NOMAD variants"});
  // --- SGD, GPU ---
  t.add_row({"SGD", "cuMF-SGD [35]", "1-4 GPUs",
             "baselines/gpu_sgd (FP16 factors) + sgd_epoch_seconds model"});
  // --- ALS, CPU ---
  t.add_row({"ALS replicate", "PALS [38], DALS [32]", "multi-node",
             "host model only"});
  t.add_row({"ALS partial-rep", "SparkALS [18], GraphLab [17], Sparkler [16]",
             "cluster", "mllib/ facade (Spark-style API, local engine)"});
  t.add_row({"ALS rotate", "Facebook [13]", "cluster", "host model only"});
  t.add_row({"ALS approximate", "Pilaszy et al. [29]", "1 node",
             "linalg/cg + core/solver (the paper builds on this idea)"});
  // --- ALS, GPU ---
  t.add_row({"ALS", "BIDMach [2]", "1 GPU",
             "baselines/bidmach_als (generic-kernel model + engine)"});
  t.add_row({"ALS", "HPC-ALS [8]", "1 GPU",
             "register/smem tiling without the paper's Solutions 2-4"});
  t.add_row({"ALS", "GPU-ALS [31]", "1-4 GPUs",
             "baselines/als_plain (LU + coalesced, no tiling)"});
  t.add_row({"ALS", "cuMF-ALS (this paper)", "1-4 GPUs",
             "core/ (the reproduction target)"});
  // --- CCD ---
  t.add_row({"CCD", "CCD++ [36]", "multi-core/node",
             "baselines/ccd (functional engine)"});
  t.add_row({"CCD", "parallel CCD++ [20]", "1 GPU",
             "ccd_gpu_epoch_seconds (time model)"});
  std::printf("%s", t.to_string().c_str());
  return 0;
}
