// Fig. 7: (a) FLOPS and FLOPS-efficiency of get_hermitian vs the cuBLAS
// gemmBatched baseline across the three GPU generations; (b) memory
// bandwidth achieved by the CG solver vs the cudaMemcpy reference.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "gpusim/cost_model.hpp"

using namespace cumf;

int main() {
  bench::print_header("Fig. 7", "FLOPS and bandwidth utilization");

  const auto preset = DatasetPreset::netflix();
  const auto shape = bench::full_x_shape(preset);
  const double f = preset.paper_f;
  // gemmBatched comparison point: m multiplications of f×deg by deg×f,
  // fixed at the mean degree so cuBLAS can batch them (paper §V-D).
  const double herm_flops = shape.nnz * (f * f + 2.0 * f);

  std::printf("(a) get_hermitian FLOPS vs cuBLAS gemmBatched\n");
  Table a({"GPU", "cuMF TFLOPS", "cuBLAS TFLOPS", "cuMF efficiency",
           "cuBLAS efficiency"});
  for (const auto& dev :
       {gpusim::DeviceSpec::kepler_k40(), gpusim::DeviceSpec::maxwell_titan_x(),
        gpusim::DeviceSpec::pascal_p100()}) {
    AlsKernelConfig config;
    const auto times = update_phase_times(dev, shape, config);
    // Achieved FLOPS of the full kernel (load + compute + write).
    const double cumf_flops = herm_flops / times.hermitian_seconds();
    // cuBLAS gemmBatched on f×deg skinny batches: generic tiling tuned for
    // large square GEMM sustains a small fraction of peak on these shapes,
    // and it computes the full (non-symmetric) product. Calibrated to the
    // paper's Fig. 7a bars (cuBLAS slightly below cuMF on each device).
    const double cublas_flops = dev.peak_flops * dev.compute_efficiency * 0.28;
    a.add_row({dev.name, Table::num(cumf_flops / 1e12, 2),
               Table::num(cublas_flops / 1e12, 2),
               Table::num(cumf_flops / dev.peak_flops, 2),
               Table::num(cublas_flops / dev.peak_flops, 2)});
  }
  std::printf("%s\n", a.to_string().c_str());

  std::printf("(b) CG solver bandwidth vs cudaMemcpy\n");
  Table b({"GPU", "CG solver GB/s", "memcpy GB/s", "CG bw utilization"});
  for (const auto& dev :
       {gpusim::DeviceSpec::kepler_k40(), gpusim::DeviceSpec::maxwell_titan_x(),
        gpusim::DeviceSpec::pascal_p100()}) {
    AlsKernelConfig config;
    config.solver = SolverKind::CgFp32;
    const auto times = update_phase_times(dev, shape, config);
    const double bytes =
        shape.rows * config.cg_fs * f * f * 4.0 + shape.rows * f * 4.0;
    const double cg_bw = bytes / times.solve.seconds;
    b.add_row({dev.name, Table::num(cg_bw / 1e9, 0),
               Table::num(gpusim::memcpy_bandwidth(dev) / 1e9, 0),
               Table::num(cg_bw / dev.dram_bw, 2)});
  }
  std::printf("%s\n", b.to_string().c_str());
  std::printf(
      "Expected shape: cuMF ≥ cuBLAS on every generation with efficiency\n"
      "rising Kepler → Maxwell → Pascal (registers per core grow); the CG\n"
      "solver's achieved bandwidth exceeds the memcpy reference on all\n"
      "three devices.\n");
  return 0;
}
