// Fig. 5: solver time of 10 ALS iterations on Netflix (Maxwell, f=100,
// fs=6): LU-FP32 vs CG-FP32 vs CG-FP16, with the get_hermitian time as the
// reference bar, and solve-L1 vs solve-noL1.
//
// Also runs the three solvers *functionally* on the scaled dataset to show
// the accuracy side of the claim: all three end at the same test RMSE.
#include <cstdio>

#include "bench/bench_util.hpp"

using namespace cumf;

int main() {
  bench::print_header("Fig. 5",
                      "solver time for 10 ALS iterations: LU vs CG vs FP16");

  const auto preset = DatasetPreset::netflix();
  const auto dev = gpusim::DeviceSpec::maxwell_titan_x();
  constexpr int kIterations = 10;

  // get_hermitian reference (same for every solver configuration).
  AlsKernelConfig config;  // f=100, tile=10, BIN=32, nonCoal-L1
  const auto x_shape = bench::full_x_shape(preset);
  const auto t_shape = bench::full_theta_shape(preset);
  // The paper's Fig. 5 hermitian bar is the update-X half-sweep (the text
  // compares "the LU solver" against "get_hermitian" of one update).
  const double herm =
      kIterations *
      update_phase_times(dev, x_shape, config).hermitian_seconds();

  Table t({"solver", "solve 10 iters (s)", "get_hermitian (update-X, 10 iters)",
           "solve / hermitian"});
  double lu_time = 0;
  double cg32_time = 0;
  double cg16_time = 0;
  for (const auto kind :
       {SolverKind::LuFp32, SolverKind::CgFp32, SolverKind::CgFp16}) {
    config.solver = kind;
    const double solve =
        kIterations *
        (update_phase_times(dev, x_shape, config).solve.seconds +
         update_phase_times(dev, t_shape, config).solve.seconds);
    if (kind == SolverKind::LuFp32) {
      lu_time = solve;
    } else if (kind == SolverKind::CgFp32) {
      cg32_time = solve;
    } else {
      cg16_time = solve;
    }
    t.add_row({to_string(kind), Table::num(solve, 2), Table::num(herm, 2),
               Table::num(solve / herm, 2)});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("CG-FP32 = 1/%.1f of LU-FP32 (paper: ~1/4); "
              "CG-FP16 = 1/%.1f of CG-FP32 (paper: ~1/2).\n",
              lu_time / cg32_time, cg32_time / cg16_time);

  // solve-L1 vs solve-noL1: the paper shows no difference for the
  // coalesced, high-occupancy CG solver; the model reflects that.
  config.solver = SolverKind::CgFp32;
  config.solver_l1 = true;
  const double with_l1 =
      update_phase_times(dev, x_shape, config).solve.seconds;
  config.solver_l1 = false;
  const double without_l1 =
      update_phase_times(dev, x_shape, config).solve.seconds;
  std::printf("solve-L1 %.3fs vs solve-noL1 %.3fs (identical: L1 cannot help "
              "a bandwidth-bound coalesced kernel)\n\n",
              with_l1, without_l1);

  // Functional accuracy check on the scaled dataset.
  auto prepared = bench::prepare(preset, 0.3);
  Table acc({"solver", "test RMSE after 10 scaled epochs", "CG iters/system"});
  for (const auto kind :
       {SolverKind::LuFp32, SolverKind::CgFp32, SolverKind::CgFp16}) {
    AlsOptions options;
    options.f = 32;
    options.lambda = 0.05f;
    options.solver.kind = kind;
    options.solver.cg_fs = 6;
    AlsEngine engine(prepared.split.train, options);
    for (int epoch = 0; epoch < 10; ++epoch) {
      engine.run_epoch();
    }
    const double r = rmse(prepared.split.test, engine.user_factors(),
                          engine.item_factors());
    const auto& stats = engine.solve_stats();
    const double iters =
        stats.systems > 0
            ? static_cast<double>(stats.cg_iterations) /
                  static_cast<double>(stats.systems)
            : 0.0;
    acc.add_row({to_string(kind), Table::num(r, 4), Table::num(iters, 2)});
  }
  std::printf("Same-accuracy check (scaled Netflix, f=32):\n%s",
              acc.to_string().c_str());
  return 0;
}
