// Shared helpers for the per-table/per-figure benchmark binaries.
//
// Convention used by every bench: *numerics* (RMSE trajectories, epoch
// counts) are computed natively on scaled-down synthetic datasets that match
// the paper datasets' shape; *device time* is produced by the gpusim cost
// model evaluated at the paper's full-scale m/n/Nz/f (Table II), so the
// printed seconds are comparable to the publication. Each bench prints the
// substitution it makes.
#pragma once

#include <cstdio>
#include <functional>
#include <optional>
#include <string>

#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "common/table.hpp"
#include "core/als.hpp"
#include "core/kernel_stats.hpp"
#include "data/presets.hpp"
#include "metrics/convergence.hpp"
#include "metrics/rmse.hpp"
#include "sparse/split.hpp"

namespace cumf::bench {

/// Repeats `fn` until `min_seconds` of wall time accumulates (at least
/// `min_reps` calls per check) and returns the average ns per call. The
/// one timing loop every bench shares — keep micro-benchmarks comparable.
inline double time_ns(const std::function<void()>& fn, double min_seconds,
                      int min_reps) {
  fn();  // warm-up, touches caches and faults pages
  std::size_t reps = 0;
  Stopwatch sw;
  do {
    for (int i = 0; i < min_reps; ++i) {
      fn();
    }
    reps += static_cast<std::size_t>(min_reps);
  } while (sw.seconds() < min_seconds);
  return sw.seconds() * 1e9 / static_cast<double>(reps);
}

/// Folds a result into a volatile sink so the optimizer cannot delete a
/// benchmarked loop whose output is otherwise unused.
inline volatile double g_sink = 0.0;

/// A scaled dataset with its train/test split and full-scale statistics.
struct PreparedDataset {
  DatasetPreset preset;
  SyntheticDataset data;
  TrainTestSplit split;
  double scaled_target = 0.0;  ///< scaled analogue of the acceptable RMSE
};

/// Generates, splits and (optionally) resizes a preset. The scaled
/// "acceptable RMSE" is the dataset's noise floor × 1.22, mirroring how the
/// paper's thresholds sit slightly above the best published RMSEs.
inline PreparedDataset prepare(DatasetPreset preset, double resize = 1.0) {
  PreparedDataset out;
  out.preset = resize == 1.0 ? preset : preset.resized(resize);
  out.data = generate(out.preset);
  Rng rng(2024);
  out.split = split_holdout(out.data.ratings, 0.1, rng);
  out.scaled_target = out.data.noise_floor_rmse * 1.22;
  return out;
}

/// Full-scale update shapes of a preset (for the cost model).
inline UpdateShape full_x_shape(const DatasetPreset& p) {
  return UpdateShape{static_cast<double>(p.full_m),
                     static_cast<double>(p.full_n),
                     static_cast<double>(p.full_nnz)};
}
inline UpdateShape full_theta_shape(const DatasetPreset& p) {
  return UpdateShape{static_cast<double>(p.full_n),
                     static_cast<double>(p.full_m),
                     static_cast<double>(p.full_nnz)};
}

/// Trains `engine` (anything with run_epoch/user_factors/item_factors) for
/// up to `max_epochs`, recording test RMSE against simulated time at
/// `seconds_per_epoch`. Stops early once `stop_rmse` is reached (if given).
template <typename Engine>
ConvergenceTracker run_convergence(Engine& engine, const RatingsCoo& test,
                                   int max_epochs, double seconds_per_epoch,
                                   std::optional<double> stop_rmse = {}) {
  ConvergenceTracker tracker;
  for (int epoch = 1; epoch <= max_epochs; ++epoch) {
    engine.run_epoch();
    const double r = rmse(test, engine.user_factors(),
                          engine.item_factors());
    tracker.record(epoch * seconds_per_epoch, r, epoch);
    if (stop_rmse && r <= *stop_rmse) {
      break;
    }
  }
  return tracker;
}

inline std::string fmt_time(std::optional<double> seconds) {
  if (!seconds) {
    return "—";
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", *seconds);
  return buf;
}

inline void print_header(const char* experiment, const char* description) {
  std::printf("==================================================================\n");
  std::printf("%s — %s\n", experiment, description);
  std::printf("==================================================================\n");
}

}  // namespace cumf::bench
