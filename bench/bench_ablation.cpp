// Ablations of the design choices DESIGN.md calls out:
//   1. CG truncation fs — the knee where convergence stops improving
//      (paper: fs=6 is the smallest safe value for f=100).
//   2. Register tile size T and staging depth BIN — occupancy vs reuse.
//   3. Load scheme × occupancy — when does non-coalesced win?
//   4. Solver × precision — epoch-time stack.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "gpusim/occupancy.hpp"

using namespace cumf;

namespace {

void ablate_fs() {
  std::printf("\n--- Ablation 1: CG truncation fs (scaled Netflix, f=32) ---\n");
  auto prepared = bench::prepare(DatasetPreset::netflix(), 0.3);
  Table t({"fs", "test RMSE after 10 epochs", "avg CG iters",
           "modelled solve s/epoch (f=100 full scale)"});
  const auto dev = gpusim::DeviceSpec::maxwell_titan_x();
  const auto shape = bench::full_x_shape(DatasetPreset::netflix());
  for (const std::uint32_t fs : {1u, 2u, 4u, 6u, 8u, 12u, 32u}) {
    AlsOptions options;
    options.f = 32;
    options.lambda = 0.05f;
    options.solver.kind = SolverKind::CgFp32;
    options.solver.cg_fs = fs;
    AlsEngine engine(prepared.split.train, options);
    for (int epoch = 0; epoch < 10; ++epoch) {
      engine.run_epoch();
    }
    const double r = rmse(prepared.split.test, engine.user_factors(),
                          engine.item_factors());
    const auto& stats = engine.solve_stats();
    AlsKernelConfig config;
    config.solver = SolverKind::CgFp32;
    config.cg_fs = fs;
    const double solve_s =
        update_phase_times(dev, shape, config).solve.seconds;
    t.add_row({std::to_string(fs), Table::num(r, 4),
               Table::num(static_cast<double>(stats.cg_iterations) /
                              static_cast<double>(stats.systems),
                          2),
               Table::num(solve_s, 3)});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf(
      "Expected: solve time grows linearly in fs while accuracy saturates.\n"
      "At this reduced scale the saturation point is very small (the scaled\n"
      "systems are easy; truncation even acts as mild extra regularization);\n"
      "at the paper's f=100 full scale the knee sits at fs=6.\n");
}

void ablate_tile_bin() {
  std::printf("\n--- Ablation 2: tile T and BIN vs occupancy (Maxwell, f=100) ---\n");
  const auto dev = gpusim::DeviceSpec::maxwell_titan_x();
  const auto shape = bench::full_x_shape(DatasetPreset::netflix());
  Table t({"T", "BIN", "regs/thread", "blocks/SM", "limited by",
           "hermitian s (modelled)"});
  for (const int tile : {4, 5, 10, 20, 25}) {
    for (const int bin : {8, 32, 128}) {
      AlsKernelConfig config;
      config.tile = tile;
      config.bin = bin;
      const auto occ = hermitian_occupancy(dev, config);
      const auto times = update_phase_times(dev, shape, config);
      t.add_row({std::to_string(tile), std::to_string(bin),
                 std::to_string(gpusim::hermitian_regs_per_thread(100, tile)),
                 std::to_string(occ.blocks_per_sm),
                 gpusim::to_string(occ.limited_by),
                 Table::num(times.hermitian_seconds(), 3)});
    }
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("Expected: small T → many threads/low register pressure but "
              "more redundant loads;\nlarge T → register-limited occupancy "
              "collapse. T=10, BIN=32 (the paper's choice)\nsits at the "
              "sweet spot.\n");
}

void ablate_load_scheme_occupancy() {
  std::printf("\n--- Ablation 3: load scheme win region vs occupancy ---\n");
  // Compare coal vs nonCoal-L1 while artificially varying occupancy via the
  // tile size (bigger tiles → fewer resident blocks).
  const auto dev = gpusim::DeviceSpec::maxwell_titan_x();
  const auto shape = bench::full_x_shape(DatasetPreset::netflix());
  Table t({"T", "blocks/SM", "coal load (s)", "nonCoal-L1 load (s)",
           "nonCoal wins?"});
  for (const int tile : {4, 5, 10, 20, 25}) {
    AlsKernelConfig coal;
    coal.tile = tile;
    coal.load_scheme = LoadScheme::Coalesced;
    AlsKernelConfig non = coal;
    non.load_scheme = LoadScheme::NonCoalescedL1;
    const auto occ = hermitian_occupancy(dev, coal);
    const double t_coal = update_phase_times(dev, shape, coal).load.seconds;
    const double t_non = update_phase_times(dev, shape, non).load.seconds;
    t.add_row({std::to_string(tile), std::to_string(occ.blocks_per_sm),
               Table::num(t_coal, 3), Table::num(t_non, 3),
               t_non < t_coal ? "yes" : "no"});
  }
  std::printf("%s", t.to_string().c_str());
}

void ablate_solver_stack() {
  std::printf("\n--- Ablation 4: full epoch time by solver & precision "
              "(Netflix full scale) ---\n");
  const auto preset = DatasetPreset::netflix();
  Table t({"device", "LU-FP32", "Cholesky-FP32", "CG-FP32", "CG-FP16",
           "LU/CG-FP16"});
  for (const auto& dev :
       {gpusim::DeviceSpec::kepler_k40(), gpusim::DeviceSpec::maxwell_titan_x(),
        gpusim::DeviceSpec::pascal_p100()}) {
    std::vector<std::string> row{dev.name};
    double lu = 0;
    double cg16 = 0;
    for (const auto kind :
         {SolverKind::LuFp32, SolverKind::CholeskyFp32, SolverKind::CgFp32,
          SolverKind::CgFp16}) {
      AlsKernelConfig config;
      config.solver = kind;
      const double t_epoch = als_epoch_seconds(
          dev, static_cast<double>(preset.full_m),
          static_cast<double>(preset.full_n),
          static_cast<double>(preset.full_nnz), config);
      if (kind == SolverKind::LuFp32) {
        lu = t_epoch;
      }
      if (kind == SolverKind::CgFp16) {
        cg16 = t_epoch;
      }
      row.push_back(Table::num(t_epoch, 3));
    }
    row.push_back(Table::num(lu / cg16, 2) + "x");
    t.add_row(row);
  }
  std::printf("%s", t.to_string().c_str());
}

void ablate_multi_gpu() {
  std::printf("\n--- Ablation 5: multi-GPU scaling, NVLink vs PCIe "
              "(Hugewiki, Pascal) ---\n");
  // The paper's §I motivates NVLink (40 GB/s/link) over PCIe; this sweep
  // shows why: the all-gather after each half-sweep caps PCIe scaling.
  const auto preset = DatasetPreset::hugewiki();
  const auto dev = gpusim::DeviceSpec::pascal_p100();
  AlsKernelConfig config;
  config.solver = SolverKind::CgFp16;
  const double m = static_cast<double>(preset.full_m);
  const double n = static_cast<double>(preset.full_n);
  const double nnz = static_cast<double>(preset.full_nnz);
  const double base =
      als_epoch_seconds(dev, m, n, nnz, config, 1, gpusim::LinkSpec::nvlink());

  Table t({"GPUs", "NVLink epoch (s)", "NVLink speedup", "PCIe epoch (s)",
           "PCIe speedup"});
  for (const int gpus : {1, 2, 4, 8}) {
    const double nv = als_epoch_seconds(dev, m, n, nnz, config, gpus,
                                        gpusim::LinkSpec::nvlink());
    const double pcie = als_epoch_seconds(dev, m, n, nnz, config, gpus,
                                          gpusim::LinkSpec::pcie3());
    t.add_row({std::to_string(gpus), Table::num(nv, 2),
               Table::num(base / nv, 2) + "x", Table::num(pcie, 2),
               Table::num(base / pcie, 2) + "x"});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("Expected: near-linear scaling over NVLink; PCIe saturates as\n"
              "the factor all-gather dominates (the paper's case for NVLink).\n");
}

void ablate_pcg() {
  std::printf("\n--- Ablation 6: Jacobi-preconditioned CG (extension) ---\n");
  // ALS normal equations after the λ·n_u ridge are well-conditioned, so
  // the preconditioner should change little there; it pays off when θ
  // columns are badly scaled. Report both: ALS convergence parity and the
  // iteration win on an ill-scaled synthetic system.
  auto prepared = bench::prepare(DatasetPreset::netflix(), 0.3);
  Table t({"solver", "test RMSE after 8 epochs", "avg iters/system"});
  for (const auto kind : {SolverKind::CgFp32, SolverKind::PcgFp32}) {
    AlsOptions options;
    options.f = 32;
    options.lambda = 0.05f;
    options.solver.kind = kind;
    options.solver.cg_fs = 6;
    AlsEngine engine(prepared.split.train, options);
    for (int epoch = 0; epoch < 8; ++epoch) {
      engine.run_epoch();
    }
    const auto stats = engine.solve_stats();
    t.add_row({to_string(kind),
               Table::num(rmse(prepared.split.test, engine.user_factors(),
                               engine.item_factors()),
                          4),
               Table::num(static_cast<double>(stats.cg_iterations) /
                              static_cast<double>(stats.systems),
                          2)});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("Expected: parity on ALS systems (ridge keeps them well-\n"
              "conditioned); PCG's iteration win appears on ill-scaled\n"
              "systems (see Pcg.FewerIterationsOnIllScaledSystem).\n");
}

}  // namespace

int main() {
  bench::print_header("Ablations", "fs knee, tile/BIN, load scheme, solver");
  ablate_fs();
  ablate_tile_bin();
  ablate_load_scheme_occupancy();
  ablate_solver_stack();
  ablate_multi_gpu();
  ablate_pcg();
  return 0;
}
