// Table II: benchmark datasets and parameters.
//
// Prints the published full-scale statistics next to the synthetic scaled
// instantiation actually generated here (our substitution for the
// non-redistributable originals), with the measured shape statistics of the
// generated data.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "sparse/csr.hpp"

using namespace cumf;

int main() {
  bench::print_header("Table II", "benchmark datasets and parameters");

  Table paper({"Dataset", "m", "n", "Nz", "f", "lambda", "target RMSE"});
  Table scaled({"Dataset (scaled)", "m", "n", "Nz", "nnz/row", "nnz/col",
                "noise-floor RMSE", "scaled target"});

  for (const auto& preset :
       {DatasetPreset::netflix(), DatasetPreset::yahoomusic(),
        DatasetPreset::hugewiki()}) {
    paper.add_row({preset.name, std::to_string(preset.full_m),
                   std::to_string(preset.full_n),
                   std::to_string(preset.full_nnz),
                   std::to_string(preset.paper_f),
                   Table::num(preset.paper_lambda, 2),
                   Table::num(preset.target_rmse, 2)});

    const auto prepared = bench::prepare(preset);
    const auto& r = prepared.data.ratings;
    scaled.add_row(
        {preset.name, std::to_string(r.rows()), std::to_string(r.cols()),
         std::to_string(r.nnz()),
         Table::num(static_cast<double>(r.nnz()) / r.rows(), 1),
         Table::num(static_cast<double>(r.nnz()) / r.cols(), 1),
         Table::num(prepared.data.noise_floor_rmse, 3),
         Table::num(prepared.scaled_target, 3)});
  }

  std::printf("Published statistics (Table II of the paper):\n%s\n",
              paper.to_string().c_str());
  std::printf(
      "Synthetic scaled instantiations (planted low-rank + noise, power-law\n"
      "degrees; aspect ratio and rating scale preserved):\n%s\n",
      scaled.to_string().c_str());
  return 0;
}
