// cutune: what the cost-model prune buys. Enumerates the full variant
// space for scaled paper datasets, times the pruned search (model scoring +
// a handful of real probe epochs), and compares it against the estimated
// cost of probing every candidate directly — the paper's Table III / IV
// knob sweeps done exhaustively. Also prints the winner the tuner settles
// on and its modeled speedup over the cuMF defaults, which is the quantity
// the tune-smoke CI job gates (winner <= default, always, because the
// default is force-probed).
#include <cstdio>

#include "bench/bench_util.hpp"
#include "tune/tune.hpp"

using namespace cumf;

namespace {

std::string choice_str(const tune::TuneChoice& c) {
  char buf[128];
  std::snprintf(buf, sizeof buf, "tile=%d bin=%d %s fs=%u %s w=%d", c.tile,
                c.bin, solver_cli_name(c.solver), c.fs, to_string(c.schedule),
                c.workers);
  return buf;
}

}  // namespace

int main() {
  bench::print_header("cutune",
                      "cost-model-pruned auto-tuning over the variant space");
  std::printf(
      "Substitution: probes run natively on the scaled synthetic datasets;\n"
      "modeled epoch seconds come from the gpusim cost model at the scaled\n"
      "shape on the Maxwell Titan X preset (cumf_train's device).\n\n");

  Table t({"dataset", "variants", "pruned", "probed", "tune s",
           "probe-all est. s", "winner", "model speedup"});
  for (const auto& preset :
       {DatasetPreset::netflix().resized(0.05),
        DatasetPreset::yahoomusic().resized(0.05)}) {
    bench::PreparedDataset prep = bench::prepare(preset);

    tune::TuneRequest req;
    req.f = 32;
    req.lambda = preset.paper_lambda;
    req.probe_epochs = 1;
    req.finalists = 8;

    tune::TuneInput input;
    input.fingerprint.device = req.device.name;
    input.fingerprint.rows = prep.split.train.rows();
    input.fingerprint.cols = prep.split.train.cols();
    input.fingerprint.nnz =
        static_cast<std::uint64_t>(prep.data.ratings.nnz());
    input.fingerprint.f = static_cast<std::uint32_t>(req.f);
    input.fingerprint.lambda = static_cast<float>(req.lambda);
    input.train = prep.split.train;
    input.train.sort_and_dedup();
    input.test = prep.split.test;

    Stopwatch sw;
    std::vector<tune::Candidate> trace;
    const tune::TunedConfig config = tune::tune(req, input, &trace);
    const double tune_s = sw.seconds();

    // What skipping the prune would cost: every enumerated variant paying
    // the mean probe wall time actually observed on the finalists.
    double probe_wall = 0.0;
    std::size_t probed = 0;
    for (const tune::Candidate& c : trace) {
      if (c.probed) {
        probe_wall += c.wall_epoch_s * req.probe_epochs;
        ++probed;
      }
    }
    const double mean_probe = probed ? probe_wall / probed : 0.0;
    const double probe_all =
        mean_probe * static_cast<double>(config.candidates);

    t.add_row({preset.name, std::to_string(config.candidates),
               std::to_string(config.pruned), std::to_string(config.finalists),
               Table::num(tune_s, 2), Table::num(probe_all, 2),
               choice_str(config.choice),
               Table::num(config.default_epoch_s /
                              (config.model_epoch_s > 0 ? config.model_epoch_s
                                                        : 1.0),
                          2)});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "\"model speedup\" is modeled default epoch / modeled winner epoch at\n"
      "the scaled shape; the winner is never slower than the default because\n"
      "the default configuration is always among the probed finalists.\n");
  return 0;
}
