// Fig. 4: coalesced vs non-coalesced (±L1) global→shared load in
// get_hermitian, split into load / compute / write, for both update-X and
// update-Θ, Netflix on the Maxwell device.
//
// The cache traces that drive the load-phase times use real rating rows
// sampled from the scaled synthetic Netflix (so the column-reuse pattern the
// L1 exploits is the dataset's own), scaled to the full published Nz.
#include <cstdio>

#include "bench/bench_util.hpp"

using namespace cumf;

int main() {
  bench::print_header(
      "Fig. 4", "get_hermitian load schemes: coal vs nonCoal +/- L1");

  const auto preset = DatasetPreset::netflix();
  const auto dev = gpusim::DeviceSpec::maxwell_titan_x();

  for (const bool update_x : {true, false}) {
    std::printf("\n--- update %s (Maxwell, f=100, BIN=32, T=10) ---\n",
                update_x ? "X" : "Theta");
    Table t({"scheme", "load (s)", "compute (s)", "write (s)", "total (s)",
             "load bound by"});
    for (const auto scheme :
         {LoadScheme::NonCoalescedL1, LoadScheme::NonCoalescedNoL1,
          LoadScheme::Coalesced}) {
      AlsKernelConfig config;
      config.load_scheme = scheme;
      const auto shape = update_x ? bench::full_x_shape(preset)
                                  : bench::full_theta_shape(preset);
      // Trace with synthetic rows at the FULL-scale degree (Nz/rows): the
      // scaled CSR's rows are ~7x shorter than real Netflix rows and would
      // distort the per-row batching pattern.
      const auto times = update_phase_times(dev, shape, config);
      t.add_row({to_string(scheme), Table::num(times.load.seconds, 4),
                 Table::num(times.compute.seconds, 4),
                 Table::num(times.write.seconds, 4),
                 Table::num(times.hermitian_seconds(), 4),
                 times.load.bound_by});
    }
    std::printf("%s", t.to_string().c_str());
  }

  std::printf(
      "\nExpected shape (paper Fig. 4): nonCoal-L1 loads fastest, coalesced\n"
      "slowest (latency-bound at ~6 blocks/SM occupancy); compute time is\n"
      "identical across schemes; update-X writes m*f^2 floats vs update-Θ's\n"
      "n*f^2, so the side with more rows pays more write time.\n");
  return 0;
}
