// §VII future work, implemented and measured:
//   1. Tensor Cores for the FP16 hermitian (Volta V100 model) — the paper's
//      "exploit the new Nvidia Tensor Cores" item.
//   2. Algorithm selection from dataset characteristics and hardware — the
//      paper's "investigate algorithm selection" item.
//   3. Hybrid ALS batch + SGD incremental updates — the paper's "ALS for
//      initial batch training and SGD for incremental updates" item.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "common/stopwatch.hpp"
#include "core/hybrid.hpp"
#include "core/selector.hpp"

using namespace cumf;

namespace {

void tensor_cores() {
  std::printf("\n--- Future work 1: Tensor-Core hermitian on Volta ---\n");
  const auto preset = DatasetPreset::netflix();
  const double m = static_cast<double>(preset.full_m);
  const double n = static_cast<double>(preset.full_n);
  const double nnz = static_cast<double>(preset.full_nnz);

  Table t({"device", "hermitian compute s", "epoch s", "vs Pascal"});
  AlsKernelConfig pascal_cfg;
  pascal_cfg.solver = SolverKind::CgFp16;
  const auto pascal = gpusim::DeviceSpec::pascal_p100();
  const double pascal_epoch = als_epoch_seconds(pascal, m, n, nnz, pascal_cfg);
  t.add_row({pascal.name,
             Table::num(update_phase_times(pascal, bench::full_x_shape(preset),
                                           pascal_cfg)
                            .compute.seconds,
                        3),
             Table::num(pascal_epoch, 3), "1.0x"});

  const auto volta = gpusim::DeviceSpec::volta_v100();
  for (const bool tensor : {false, true}) {
    AlsKernelConfig config;
    config.solver = SolverKind::CgFp16;
    config.tensor_core_hermitian = tensor;
    const double epoch = als_epoch_seconds(volta, m, n, nnz, config);
    t.add_row({volta.name + (tensor ? " + TensorCore" : " (FP32 cores)"),
               Table::num(update_phase_times(volta,
                                             bench::full_x_shape(preset),
                                             config)
                              .compute.seconds,
                          3),
               Table::num(epoch, 3),
               Table::num(pascal_epoch / epoch, 2) + "x"});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("With Tensor Cores the compute phase collapses and the kernel\n"
              "becomes purely memory-bound — the headroom the paper's §VII\n"
              "anticipated.\n");
}

void selector() {
  std::printf("\n--- Future work 2: algorithm selection ---\n");
  const auto dev = gpusim::DeviceSpec::maxwell_titan_x();
  Table t({"scenario", "choice", "ALS est. (s)", "SGD est. (s)"});
  const auto run = [&](const char* name, SelectorInput input) {
    const auto d = select_algorithm(dev, input);
    t.add_row({name, to_string(d.algorithm),
               Table::num(d.als_time_estimate, 1),
               Table::num(d.sgd_time_estimate, 1)});
  };
  run("Netflix, 1 GPU", {480189, 17770, 99e6, 100, 1, false});
  run("YahooMusic, 1 GPU", {1000990, 624961, 252.8e6, 100, 1, false});
  run("Hugewiki, 1 GPU", {50082603, 39780, 3.1e9, 100, 1, false});
  run("Hugewiki, 4 GPUs", {50082603, 39780, 3.1e9, 100, 4, false});
  run("Netflix implicit", {480189, 17770, 99e6, 100, 1, true});
  std::printf("%s", t.to_string().c_str());
  std::printf("Mirrors §V-E/§V-F: SGD competitive on sparse single-GPU\n"
              "problems, ALS wins with more GPUs and always wins on\n"
              "implicit (dense-effective) inputs.\n");
}

void hybrid() {
  std::printf("\n--- Future work 3: hybrid ALS batch + SGD incremental ---\n");
  auto prepared = bench::prepare(DatasetPreset::netflix(), 0.25);
  HybridOptions options;
  options.als.f = 32;
  options.als.lambda = 0.05f;
  options.als.solver.kind = SolverKind::CgFp16;
  options.batch_epochs = 8;
  HybridEngine hybrid(prepared.split.train, options);

  const double before = rmse(prepared.split.test, hybrid.user_factors(),
                             hybrid.item_factors());
  Stopwatch sw;
  for (const Rating& e : prepared.split.test.entries()) {
    hybrid.observe(e);
  }
  const double stream_seconds = sw.seconds();
  const double after = rmse(prepared.split.test, hybrid.user_factors(),
                            hybrid.item_factors());

  std::printf("batch phase: 8 ALS epochs; stream: %llu ratings absorbed in "
              "%.3f s host time (%.1f µs/rating)\n",
              static_cast<unsigned long long>(hybrid.observed_count()),
              stream_seconds,
              1e6 * stream_seconds /
                  static_cast<double>(hybrid.observed_count()));
  std::printf("RMSE on streamed ratings: %.4f before -> %.4f after "
              "(no retrain)\n",
              before, after);
  std::printf("rebatch recommended: %s (threshold %.0f%% growth)\n",
              hybrid.rebatch_recommended() ? "yes" : "no",
              options.rebatch_threshold * 100);
}

}  // namespace

int main() {
  bench::print_header("Future work (sec. VII)",
                      "Tensor Cores, algorithm selection, hybrid ALS+SGD");
  tensor_cores();
  selector();
  hybrid();
  return 0;
}
