// bench_multi_gpu — the multi-device scaling benchmark (Fig. 6/8's four-GPU
// runs).
//
// Three sections:
//   1. Native check: MultiGpuAls on 1 vs 4 simulated devices over a scaled
//      Netflix-shaped dataset — factors and merged SolveStats must be
//      bit-identical (ALS row updates are independent), while the 4-device
//      run executes its shards concurrently.
//   2. Sharded model: the engine's own nnz-balanced shards fed through its
//      interconnect-aware timeline (ragged ring all-gather + pipelined
//      overlap) at the paper's rank, on the scaled data.
//   3. Full-scale model: the same per-half-sweep formula evaluated at the
//      Table II sizes for 1/2/4 devices on PCIe 3.0 vs NVLink — the numbers
//      comparable to the publication, and the ones the CI perf-smoke gate
//      asserts on (they come from the analytic cost model, so they are
//      deterministic across machines).
//
// Writes BENCH_multi_gpu.json for tools/bench_compare.py.
//
// Usage: bench_multi_gpu [--quick] [--out PATH]
//   --quick  shrink the native dataset and epochs (CI smoke)
//   --out    output JSON path (default: BENCH_multi_gpu.json)
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/stopwatch.hpp"
#include "core/multi_gpu.hpp"
#include "data/generator.hpp"
#include "data/presets.hpp"
#include "gpusim/interconnect.hpp"

namespace {

using namespace cumf;

bool same_bits(const Matrix& a, const Matrix& b) {
  const auto da = a.data();
  const auto db = b.data();
  return da.size() == db.size() &&
         std::equal(da.begin(), da.end(), db.begin());
}

std::string json_num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

/// Full-scale modeled epoch on `gpus` devices: even row shards (at Table II
/// scale the nnz-balanced cuts converge to the even split), per-half-sweep
/// ring all-gather, and the same pipelined overlap bound MultiGpuAls uses.
MultiGpuScaling model_full_scale(const gpusim::DeviceSpec& dev,
                                 const DatasetPreset& preset,
                                 const AlsKernelConfig& kc,
                                 const gpusim::LinkSpec& link, int gpus) {
  const double m = static_cast<double>(preset.full_m);
  const double n = static_cast<double>(preset.full_n);
  const double nnz = static_cast<double>(preset.full_nnz);
  const double g = gpus;
  MultiGpuScaling out;
  out.gpus = gpus;
  const UpdateShape x_full{m, n, nnz};
  const UpdateShape t_full{n, m, nnz};
  out.single_gpu_s = update_phase_times(dev, x_full, kc).total_seconds() +
                     update_phase_times(dev, t_full, kc).total_seconds();
  for (const auto& [rows, shape] :
       {std::pair{m, UpdateShape{m / g, n, nnz / g}},
        std::pair{n, UpdateShape{n / g, m, nnz / g}}}) {
    const double compute = update_phase_times(dev, shape, kc).total_seconds();
    const std::vector<double> slice_bytes(
        static_cast<std::size_t>(gpus),
        rows / g * kc.f * sizeof(real_t));
    const double comm_total =
        gpusim::allgather_seconds_ragged(link, slice_bytes);
    const double c = MultiGpuAls::kOverlapPipelineDepth;
    const double wall =
        std::max(compute, comm_total) + std::min(compute, comm_total) / c;
    out.compute_s += compute;
    out.comm_s += wall - compute;
    out.total_s += wall;
  }
  out.speedup = out.total_s > 0 ? out.single_gpu_s / out.total_s : 0.0;
  out.efficiency = out.speedup / g;
  out.comm_fraction = out.total_s > 0 ? out.comm_s / out.total_s : 0.0;
  return out;
}

void print_scaling_row(const char* tag, const MultiGpuScaling& s) {
  std::printf("  %-24s %d GPU%s  epoch %9.3f s  speedup %5.2fx  "
              "eff %5.1f%%  comm %5.1f%%\n",
              tag, s.gpus, s.gpus == 1 ? " " : "s", s.total_s, s.speedup,
              s.efficiency * 100.0, s.comm_fraction * 100.0);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_multi_gpu.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out PATH]\n", argv[0]);
      return 2;
    }
  }

  bench::print_header("bench_multi_gpu",
                      "multi-device scaling: nnz shards + interconnect model");

  // --- 1. native concurrent run: 4 devices must match 1 bit-for-bit ------
  SyntheticConfig cfg;
  cfg.m = quick ? 2'000 : 6'000;
  cfg.n = quick ? 120 : 250;
  cfg.nnz = quick ? 60'000 : 300'000;
  cfg.row_zipf = 0.8;
  cfg.seed = 4242;
  const auto data = generate_synthetic(cfg);
  const int epochs = quick ? 2 : 3;

  AlsOptions opt;
  opt.f = 16;
  opt.lambda = static_cast<real_t>(0.05);
  opt.seed = 99;

  std::map<std::string, double> native_json;
  Matrix ref_x, ref_theta;
  SolveStats ref_stats;
  bool identical = true;
  for (const int gpus : {1, 4}) {
    MultiGpuAls engine(data.ratings, opt, gpus);
    Stopwatch sw;
    for (int e = 0; e < epochs; ++e) {
      engine.run_epoch();
    }
    const double secs = sw.seconds();
    native_json["epoch_s_gpus" + std::to_string(gpus)] =
        secs / static_cast<double>(epochs);
    std::printf("  native %d-device epoch (m=%u, nnz=%llu, f=%zu): %.3f s\n",
                gpus, cfg.m,
                static_cast<unsigned long long>(data.ratings.nnz()), opt.f,
                secs / epochs);
    if (gpus == 1) {
      ref_x = engine.user_factors();
      ref_theta = engine.item_factors();
      ref_stats = engine.solve_stats();
    } else {
      identical = same_bits(engine.user_factors(), ref_x) &&
                  same_bits(engine.item_factors(), ref_theta) &&
                  engine.solve_stats() == ref_stats;
    }
  }
  native_json["bit_identical"] = identical ? 1.0 : 0.0;
  std::printf("  4-device factors + merged SolveStats vs 1-device: %s\n",
              identical ? "bit-identical" : "MISMATCH");
  if (!identical) {
    std::fprintf(stderr, "bench_multi_gpu: bit-identity violated\n");
    return 1;
  }

  // --- 2. sharded model on the scaled data (engine's own shards) ---------
  std::printf("\n  sharded timeline on scaled Netflix shape "
              "(nnz-balanced, paper f=100):\n");
  const auto dev = gpusim::DeviceSpec::pascal_p100();
  AlsKernelConfig kc;
  kc.f = 100;
  kc.solver = SolverKind::CgFp16;
  std::map<std::string, double> sharded_json;
  for (const auto& link : {gpusim::LinkSpec::pcie3(),
                           gpusim::LinkSpec::nvlink()}) {
    for (const int gpus : {1, 2, 4}) {
      MultiGpuAls engine(data.ratings, opt, gpus);
      const MultiGpuScaling s = engine.scaling_report(dev, kc, link);
      const std::string tag =
          (link.name == "NVLink" ? std::string("nvlink_g")
                                 : std::string("pcie3_g")) +
          std::to_string(gpus);
      sharded_json["speedup_" + tag] = s.speedup;
      sharded_json["comm_fraction_" + tag] = s.comm_fraction;
      print_scaling_row((link.name + " (scaled)").c_str(), s);
    }
  }

  // --- 3. full-scale model (Table II sizes, the publication numbers) -----
  std::map<std::string, double> full_json;
  std::map<std::string, double> speedups;
  for (const auto& preset :
       {DatasetPreset::netflix(), DatasetPreset::hugewiki()}) {
    std::printf("\n  %s at full scale (m=%llu, n=%llu, nnz=%llu, f=%d):\n",
                preset.name.c_str(),
                static_cast<unsigned long long>(preset.full_m),
                static_cast<unsigned long long>(preset.full_n),
                static_cast<unsigned long long>(preset.full_nnz),
                preset.paper_f);
    AlsKernelConfig fkc;
    fkc.f = preset.paper_f;
    fkc.solver = SolverKind::CgFp16;
    for (const auto& link : {gpusim::LinkSpec::pcie3(),
                             gpusim::LinkSpec::nvlink()}) {
      for (const int gpus : {1, 2, 4}) {
        const MultiGpuScaling s =
            model_full_scale(dev, preset, fkc, link, gpus);
        const std::string link_key =
            link.name == "NVLink" ? "nvlink" : "pcie3";
        const std::string tag =
            preset.name + "_" + link_key + "_g" + std::to_string(gpus);
        full_json["epoch_s_" + tag] = s.total_s;
        full_json["speedup_" + tag] = s.speedup;
        full_json["efficiency_" + tag] = s.efficiency;
        full_json["comm_fraction_" + tag] = s.comm_fraction;
        print_scaling_row(link.name.c_str(), s);
        if (gpus == 4) {
          // The gate keys: Hugewiki is the dataset the paper actually runs
          // on four GPUs; Netflix rides along as the second shape.
          speedups[preset.name + "_" + link_key + "_4gpu"] = s.speedup;
          if (preset.name == "Hugewiki") {
            speedups[link_key + "_4gpu"] = s.speedup;
          }
        }
      }
    }
  }

  // --- JSON ---------------------------------------------------------------
  const auto dump = [](std::ofstream& out, const char* key,
                       const std::map<std::string, double>& section,
                       bool last) {
    out << "  \"" << key << "\": {\n";
    for (auto it = section.begin(); it != section.end(); ++it) {
      out << "    \"" << it->first << "\": " << json_num(it->second)
          << (std::next(it) != section.end() ? "," : "") << "\n";
    }
    out << "  }" << (last ? "" : ",") << "\n";
  };
  std::ofstream out(out_path);
  out << "{\n  \"quick\": " << (quick ? "true" : "false") << ",\n"
      << "  \"sim_device\": \"" << dev.name << "\",\n";
  dump(out, "native", native_json, false);
  dump(out, "sharded_scaled", sharded_json, false);
  dump(out, "full_scale", full_json, false);
  dump(out, "speedups", speedups, true);
  out << "}\n";
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
