// bench_hotpath — the SIMD / scheduling regression harness.
//
// Measures the three vectorized hot paths (dense primitives, get_hermitian,
// CG solve) with the scalar and SIMD KernelPath side by side, plus the
// static vs nnz-guided epoch schedule on a power-law dataset, and writes a
// machine-readable BENCH_hotpath.json for tools/bench_compare.py and the CI
// perf-smoke gate. See docs/performance.md for how to read the numbers.
//
// Usage: bench_hotpath [--quick] [--out PATH]
//   --quick  shrink repetitions and the schedule dataset (CI smoke)
//   --out    output JSON path (default: BENCH_hotpath.json)
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "core/als.hpp"
#include "data/generator.hpp"
#include "half/half.hpp"
#include "half/half_simd.hpp"
#include "linalg/cg.hpp"
#include "linalg/dense.hpp"
#include "simd/vec.hpp"
#include "sparse/csr.hpp"

namespace {

using namespace cumf;

struct Measurement {
  double ns_per_op = 0.0;
  double gflops = 0.0;    ///< useful FLOP rate (0 when not meaningful)
  double gbytes = 0.0;    ///< touched-bytes rate (0 when not meaningful)
};

struct KernelRow {
  std::string name;
  Measurement scalar;
  Measurement simd;
  double speedup = 0.0;  ///< scalar ns / simd ns
};

using bench::g_sink;
using bench::time_ns;

KernelRow bench_pair(const std::string& name, double flops_per_op,
                     double bytes_per_op, double min_seconds, int min_reps,
                     const std::function<void(simd::KernelPath)>& op) {
  KernelRow row;
  row.name = name;
  for (const auto path : {simd::KernelPath::scalar, simd::KernelPath::simd}) {
    Measurement m;
    m.ns_per_op = time_ns([&] { op(path); }, min_seconds, min_reps);
    m.gflops = flops_per_op / m.ns_per_op;  // flop/ns == Gflop/s
    m.gbytes = bytes_per_op / m.ns_per_op;
    (path == simd::KernelPath::scalar ? row.scalar : row.simd) = m;
  }
  row.speedup = row.scalar.ns_per_op / row.simd.ns_per_op;
  std::printf("  %-28s scalar %10.1f ns   simd %10.1f ns   %5.2fx"
              "   (%.2f GFLOP/s, %.2f GB/s simd)\n",
              row.name.c_str(), row.scalar.ns_per_op, row.simd.ns_per_op,
              row.speedup, row.simd.gflops, row.simd.gbytes);
  return row;
}

std::vector<real_t> random_vec(std::size_t n, Rng& rng) {
  std::vector<real_t> v(n);
  for (auto& x : v) {
    x = static_cast<real_t>(rng.normal());
  }
  return v;
}

/// SPD system A = GᵀG/f + I for the CG benches (well-conditioned, so eps=0
/// runs exactly fs iterations without numerical drama).
std::vector<real_t> spd_matrix(std::size_t f, Rng& rng) {
  const auto g = random_vec(f * f, rng);
  std::vector<real_t> a(f * f, real_t{0});
  for (std::size_t i = 0; i < f; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < f; ++k) {
        acc += static_cast<double>(g[k * f + i]) * g[k * f + j];
      }
      a[i * f + j] = a[j * f + i] =
          static_cast<real_t>(acc / static_cast<double>(f));
    }
    a[i * f + i] += real_t{1};
  }
  return a;
}

/// Max worker share of nnz under a static equal-rows partition, relative to
/// the perfect share (total/workers). 1.0 = perfectly balanced.
double static_imbalance(const CsrMatrix& r, std::size_t workers) {
  const auto& ptr = r.row_ptr();
  const auto m = static_cast<std::size_t>(r.rows());
  const double perfect =
      static_cast<double>(ptr[m]) / static_cast<double>(workers);
  const std::size_t base = m / workers;
  const std::size_t extra = m % workers;
  double worst = 0.0;
  std::size_t begin = 0;
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t end = begin + base + (w < extra ? 1 : 0);
    worst = std::max(worst, static_cast<double>(ptr[end] - ptr[begin]));
    begin = end;
  }
  return worst / perfect;
}

/// Critical-path bound for the guided schedule: a greedy pull of the chunk
/// list cannot leave any worker with more than perfect + max_chunk nnz, so
/// the imbalance is bounded by max(perfect, heaviest chunk) / perfect.
double guided_imbalance(const CsrMatrix& r, std::size_t workers) {
  const auto& ptr = r.row_ptr();
  const auto m = static_cast<std::size_t>(r.rows());
  const double perfect =
      static_cast<double>(ptr[m]) / static_cast<double>(workers);
  const auto bounds = nnz_balanced_bounds(r, 8 * workers);
  double max_chunk = 0.0;
  for (std::size_t i = 0; i + 1 < bounds.size(); ++i) {
    max_chunk = std::max(
        max_chunk, static_cast<double>(ptr[bounds[i + 1]] - ptr[bounds[i]]));
  }
  return std::max(perfect, max_chunk) / perfect;
}

std::string json_num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_hotpath.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out PATH]\n", argv[0]);
      return 2;
    }
  }

  const double min_seconds = quick ? 0.02 : 0.2;
  std::printf("bench_hotpath  backend=%s  default=%s  mode=%s\n\n",
              simd::backend_name(), to_string(simd::kDefaultPath),
              quick ? "quick" : "full");

  Rng rng(7);
  std::vector<KernelRow> rows;
  std::map<std::string, double> speedups;

  // --- dense primitives (f = 100, the paper's rank) ---------------------
  const std::size_t f = 100;
  const auto va = random_vec(f, rng);
  const auto vb = random_vec(f, rng);
  auto vy = random_vec(f, rng);
  const auto sa = spd_matrix(f, rng);

  rows.push_back(bench_pair(
      "dot_f100", 2.0 * f, 2.0 * f * sizeof(real_t), min_seconds, 2000,
      [&](simd::KernelPath p) { g_sink = dot(va, vb, p); }));
  speedups["dot_f100"] = rows.back().speedup;

  rows.push_back(bench_pair(
      "axpy_f100", 2.0 * f, 3.0 * f * sizeof(real_t), min_seconds, 2000,
      [&](simd::KernelPath p) {
        axpy(real_t{0.5}, va, vy, p);
        g_sink = vy[0];
      }));
  speedups["axpy_f100"] = rows.back().speedup;

  rows.push_back(bench_pair(
      "symv_f100", 2.0 * f * f, 1.0 * f * f * sizeof(real_t), min_seconds,
      200, [&](simd::KernelPath p) {
        symv(f, sa, va, vy, p);
        g_sink = vy[0];
      }));
  speedups["symv_f100"] = rows.back().speedup;

  // --- half conversions -------------------------------------------------
  const std::size_t hn = 4096;
  const auto hsrc_f = random_vec(hn, rng);
  std::vector<half> hsrc(hn);
  float_to_half_n(hsrc_f.data(), hsrc.data(), hn, simd::KernelPath::scalar);
  std::vector<real_t> hdst(hn);
  rows.push_back(bench_pair(
      "half_unpack_4096", 0.0, hn * (sizeof(half) + sizeof(real_t)),
      min_seconds, 100, [&](simd::KernelPath p) {
        half_to_float_n(hsrc.data(), hdst.data(), hn, p);
        g_sink = hdst[0];
      }));
  speedups["half_unpack"] = rows.back().speedup;

  std::vector<half> hpack(hn);
  rows.push_back(bench_pair(
      "half_pack_4096", 0.0, hn * (sizeof(half) + sizeof(real_t)),
      min_seconds, 100, [&](simd::KernelPath p) {
        float_to_half_n(hsrc_f.data(), hpack.data(), hn, p);
        g_sink = static_cast<float>(hpack[0]);
      }));
  speedups["half_pack"] = rows.back().speedup;

  // --- get_hermitian_row, f=100 tile=10 (the paper's kernel shape) ------
  std::printf("\n");
  {
    SyntheticConfig cfg;
    cfg.m = 400;
    cfg.n = 600;
    cfg.nnz = 40000;
    cfg.seed = 11;
    const auto data = generate_synthetic(cfg);
    const auto csr = CsrMatrix::from_coo(data.ratings);
    Matrix theta(csr.cols(), f);
    als_init_factors(theta, 3.6, 5);
    HermitianParams params;  // tile=10, bin=32
    HermitianWorkspace ws;
    ws.prepare(f, params);
    std::vector<real_t> a_out(f * f);
    std::vector<real_t> b_out(f);
    // Rotate through rows so the benchmark sees the dataset's nnz mix.
    const double mean_nnz = static_cast<double>(csr.nnz()) /
                            static_cast<double>(csr.rows());
    index_t u = 0;
    const auto next_u = [&] {
      u = (u + 1) % csr.rows();
      return u;
    };

    for (const bool fp16 : {false, true}) {
      params.fp16_staging = fp16;
      const std::string name =
          fp16 ? "hermitian_f100_t10_fp16stage" : "hermitian_f100_t10";
      rows.push_back(bench_pair(
          name, mean_nnz * (f * f + 2.0 * f),
          mean_nnz * f * sizeof(real_t), min_seconds, 20,
          [&](simd::KernelPath p) {
            get_hermitian_row(csr, theta, next_u(), real_t{0.05}, params, ws,
                              a_out, b_out, p);
            g_sink = a_out[0];
          }));
      speedups[fp16 ? "hermitian_f100_fp16stage" : "hermitian_f100"] =
          rows.back().speedup;
    }
  }

  // --- CG solve, f=100, fs = 3..6, eps=0 so every iteration runs --------
  std::printf("\n");
  std::vector<half> sa_half(f * f);
  float_to_half_n(sa.data(), sa_half.data(), sa.size(), simd::kDefaultPath);
  auto x = random_vec(f, rng);
  double cg16_ns = 0.0;
  double cg32_ns = 0.0;
  for (std::uint32_t fs = 3; fs <= 6; ++fs) {
    const double flops = fs * (2.0 * f * f + 10.0 * f);
    rows.push_back(bench_pair(
        "cg_fp32_f100_fs" + std::to_string(fs), flops,
        fs * static_cast<double>(f) * f * sizeof(real_t), min_seconds, 50,
        [&](simd::KernelPath p) {
          std::copy(vb.begin(), vb.end(), x.begin());
          const auto r = cg_solve<float>(f, sa, va, x, fs, real_t{0}, p);
          g_sink = r.residual_norm;
        }));
    speedups["cg_fp32_fs" + std::to_string(fs)] = rows.back().speedup;
    if (fs == 6) {
      cg32_ns = rows.back().simd.ns_per_op;
    }
    rows.push_back(bench_pair(
        "cg_fp16_f100_fs" + std::to_string(fs), flops,
        fs * static_cast<double>(f) * f * sizeof(half), min_seconds, 50,
        [&](simd::KernelPath p) {
          std::copy(vb.begin(), vb.end(), x.begin());
          const auto r = cg_solve<half>(
              f, std::span<const half>(sa_half), va, x, fs, real_t{0}, p);
          g_sink = r.residual_norm;
        }));
    speedups["cg_fp16_fs" + std::to_string(fs)] = rows.back().speedup;
    if (fs == 6) {
      cg16_ns = rows.back().simd.ns_per_op;
    }
  }
  const double fp16_over_fp32 = cg16_ns / cg32_ns;
  speedups["fp16_over_fp32_walltime"] = fp16_over_fp32;
  std::printf("\n  cg fp16/fp32 wall-time ratio (fs=6, simd): %.2fx\n",
              fp16_over_fp32);

  // --- schedule: static rows vs nnz-guided on a power-law epoch --------
  std::printf("\n");
  SyntheticConfig sched_cfg;
  sched_cfg.m = quick ? 12000 : 60000;
  sched_cfg.n = quick ? 2000 : 10000;
  sched_cfg.nnz = quick ? 200000 : 1000000;
  sched_cfg.row_zipf = 1.2;  // heavy user skew: the schedule stress case
  sched_cfg.seed = 23;
  auto sched_data = generate_synthetic(sched_cfg);
  // Relabel users by descending activity. Real dumps frequently arrive
  // ID-sorted by activity; for a static contiguous partition this is the
  // worst case (the first worker owns nearly all nnz), while the nnz-guided
  // schedule is invariant to it.
  {
    std::vector<nnz_t> degree(sched_cfg.m, 0);
    for (const Rating& e : sched_data.ratings.entries()) {
      ++degree[e.u];
    }
    std::vector<index_t> order(sched_cfg.m);
    for (index_t i = 0; i < sched_cfg.m; ++i) {
      order[i] = i;
    }
    std::sort(order.begin(), order.end(), [&](index_t a, index_t b) {
      return degree[a] > degree[b];
    });
    std::vector<index_t> rank(sched_cfg.m);
    for (index_t i = 0; i < sched_cfg.m; ++i) {
      rank[order[i]] = i;
    }
    RatingsCoo sorted(sched_cfg.m, sched_cfg.n);
    for (const Rating& e : sched_data.ratings.entries()) {
      sorted.add(rank[e.u], e.v, e.r);
    }
    sched_data.ratings = std::move(sorted);
  }
  const std::size_t workers = 4;

  std::map<std::string, double> sched_json;
  double wall[2] = {0.0, 0.0};
  for (const auto schedule :
       {AlsSchedule::static_rows, AlsSchedule::nnz_guided}) {
    AlsOptions opt;
    opt.f = 32;
    opt.workers = static_cast<int>(workers);
    opt.schedule = schedule;
    AlsEngine engine(sched_data.ratings, opt);
    engine.run_epoch();  // warm-up: faults factor pages, fills pool
    Stopwatch sw;
    engine.run_epoch();
    const double secs = sw.seconds();
    wall[schedule == AlsSchedule::nnz_guided ? 1 : 0] = secs;
    const char* name =
        schedule == AlsSchedule::nnz_guided ? "nnz_guided" : "static_rows";
    sched_json[std::string("epoch_seconds_") + name] = secs;
    std::printf("  epoch (%s, %zu workers): %.3f s\n", name, workers, secs);
  }
  const auto csr = CsrMatrix::from_coo(sched_data.ratings);
  const double imb_static = static_imbalance(csr, workers);
  const double imb_guided = guided_imbalance(csr, workers);
  sched_json["imbalance_static"] = imb_static;
  sched_json["imbalance_guided"] = imb_guided;
  sched_json["critical_path_improvement"] = imb_static / imb_guided;
  sched_json["epoch_speedup"] = wall[0] / wall[1];
  std::printf("  nnz imbalance (max worker share / perfect): static %.2f,"
              " guided %.2f  -> critical-path improvement %.2fx\n",
              imb_static, imb_guided, imb_static / imb_guided);
  std::printf("  measured epoch speedup: %.2fx"
              " (meaningful only with >= %zu hardware threads)\n",
              wall[0] / wall[1], workers);

  // --- JSON -------------------------------------------------------------
  std::ofstream out(out_path);
  out << "{\n  \"backend\": \"" << simd::backend_name() << "\",\n"
      << "  \"default_path\": \"" << to_string(simd::kDefaultPath)
      << "\",\n  \"quick\": " << (quick ? "true" : "false")
      << ",\n  \"kernels\": {\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    out << "    \"" << r.name << "\": {"
        << "\"scalar_ns\": " << json_num(r.scalar.ns_per_op)
        << ", \"simd_ns\": " << json_num(r.simd.ns_per_op)
        << ", \"simd_gflops\": " << json_num(r.simd.gflops)
        << ", \"simd_gbps\": " << json_num(r.simd.gbytes)
        << ", \"speedup\": " << json_num(r.speedup) << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  },\n  \"speedups\": {\n";
  for (auto it = speedups.begin(); it != speedups.end(); ++it) {
    out << "    \"" << it->first << "\": " << json_num(it->second)
        << (std::next(it) != speedups.end() ? "," : "") << "\n";
  }
  out << "  },\n  \"schedule\": {\n";
  for (auto it = sched_json.begin(); it != sched_json.end(); ++it) {
    out << "    \"" << it->first << "\": " << json_num(it->second)
        << (std::next(it) != sched_json.end() ? "," : "") << "\n";
  }
  out << "  }\n}\n";
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
