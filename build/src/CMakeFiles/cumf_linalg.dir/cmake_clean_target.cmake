file(REMOVE_RECURSE
  "libcumf_linalg.a"
)
