
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/batched.cpp" "src/CMakeFiles/cumf_linalg.dir/linalg/batched.cpp.o" "gcc" "src/CMakeFiles/cumf_linalg.dir/linalg/batched.cpp.o.d"
  "/root/repo/src/linalg/cg.cpp" "src/CMakeFiles/cumf_linalg.dir/linalg/cg.cpp.o" "gcc" "src/CMakeFiles/cumf_linalg.dir/linalg/cg.cpp.o.d"
  "/root/repo/src/linalg/cholesky.cpp" "src/CMakeFiles/cumf_linalg.dir/linalg/cholesky.cpp.o" "gcc" "src/CMakeFiles/cumf_linalg.dir/linalg/cholesky.cpp.o.d"
  "/root/repo/src/linalg/dense.cpp" "src/CMakeFiles/cumf_linalg.dir/linalg/dense.cpp.o" "gcc" "src/CMakeFiles/cumf_linalg.dir/linalg/dense.cpp.o.d"
  "/root/repo/src/linalg/gemm.cpp" "src/CMakeFiles/cumf_linalg.dir/linalg/gemm.cpp.o" "gcc" "src/CMakeFiles/cumf_linalg.dir/linalg/gemm.cpp.o.d"
  "/root/repo/src/linalg/lu.cpp" "src/CMakeFiles/cumf_linalg.dir/linalg/lu.cpp.o" "gcc" "src/CMakeFiles/cumf_linalg.dir/linalg/lu.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cumf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cumf_half.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
