# Empty dependencies file for cumf_linalg.
# This may be replaced when dependencies are built.
