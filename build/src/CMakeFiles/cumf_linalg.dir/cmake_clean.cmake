file(REMOVE_RECURSE
  "CMakeFiles/cumf_linalg.dir/linalg/batched.cpp.o"
  "CMakeFiles/cumf_linalg.dir/linalg/batched.cpp.o.d"
  "CMakeFiles/cumf_linalg.dir/linalg/cg.cpp.o"
  "CMakeFiles/cumf_linalg.dir/linalg/cg.cpp.o.d"
  "CMakeFiles/cumf_linalg.dir/linalg/cholesky.cpp.o"
  "CMakeFiles/cumf_linalg.dir/linalg/cholesky.cpp.o.d"
  "CMakeFiles/cumf_linalg.dir/linalg/dense.cpp.o"
  "CMakeFiles/cumf_linalg.dir/linalg/dense.cpp.o.d"
  "CMakeFiles/cumf_linalg.dir/linalg/gemm.cpp.o"
  "CMakeFiles/cumf_linalg.dir/linalg/gemm.cpp.o.d"
  "CMakeFiles/cumf_linalg.dir/linalg/lu.cpp.o"
  "CMakeFiles/cumf_linalg.dir/linalg/lu.cpp.o.d"
  "libcumf_linalg.a"
  "libcumf_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cumf_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
