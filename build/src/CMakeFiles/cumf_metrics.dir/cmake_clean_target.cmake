file(REMOVE_RECURSE
  "libcumf_metrics.a"
)
