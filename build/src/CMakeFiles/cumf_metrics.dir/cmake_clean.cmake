file(REMOVE_RECURSE
  "CMakeFiles/cumf_metrics.dir/metrics/convergence.cpp.o"
  "CMakeFiles/cumf_metrics.dir/metrics/convergence.cpp.o.d"
  "CMakeFiles/cumf_metrics.dir/metrics/ranking.cpp.o"
  "CMakeFiles/cumf_metrics.dir/metrics/ranking.cpp.o.d"
  "CMakeFiles/cumf_metrics.dir/metrics/rmse.cpp.o"
  "CMakeFiles/cumf_metrics.dir/metrics/rmse.cpp.o.d"
  "CMakeFiles/cumf_metrics.dir/metrics/roofline.cpp.o"
  "CMakeFiles/cumf_metrics.dir/metrics/roofline.cpp.o.d"
  "libcumf_metrics.a"
  "libcumf_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cumf_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
