
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/convergence.cpp" "src/CMakeFiles/cumf_metrics.dir/metrics/convergence.cpp.o" "gcc" "src/CMakeFiles/cumf_metrics.dir/metrics/convergence.cpp.o.d"
  "/root/repo/src/metrics/ranking.cpp" "src/CMakeFiles/cumf_metrics.dir/metrics/ranking.cpp.o" "gcc" "src/CMakeFiles/cumf_metrics.dir/metrics/ranking.cpp.o.d"
  "/root/repo/src/metrics/rmse.cpp" "src/CMakeFiles/cumf_metrics.dir/metrics/rmse.cpp.o" "gcc" "src/CMakeFiles/cumf_metrics.dir/metrics/rmse.cpp.o.d"
  "/root/repo/src/metrics/roofline.cpp" "src/CMakeFiles/cumf_metrics.dir/metrics/roofline.cpp.o" "gcc" "src/CMakeFiles/cumf_metrics.dir/metrics/roofline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cumf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cumf_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cumf_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cumf_half.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
