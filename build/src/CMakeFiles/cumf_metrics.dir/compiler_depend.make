# Empty compiler generated dependencies file for cumf_metrics.
# This may be replaced when dependencies are built.
