# Empty compiler generated dependencies file for cumf_cusim.
# This may be replaced when dependencies are built.
