file(REMOVE_RECURSE
  "CMakeFiles/cumf_cusim.dir/cusim/cusim.cpp.o"
  "CMakeFiles/cumf_cusim.dir/cusim/cusim.cpp.o.d"
  "CMakeFiles/cumf_cusim.dir/cusim/kernels.cpp.o"
  "CMakeFiles/cumf_cusim.dir/cusim/kernels.cpp.o.d"
  "libcumf_cusim.a"
  "libcumf_cusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cumf_cusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
