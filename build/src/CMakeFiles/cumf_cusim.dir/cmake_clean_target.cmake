file(REMOVE_RECURSE
  "libcumf_cusim.a"
)
