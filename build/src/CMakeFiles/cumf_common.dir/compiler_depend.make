# Empty compiler generated dependencies file for cumf_common.
# This may be replaced when dependencies are built.
