file(REMOVE_RECURSE
  "CMakeFiles/cumf_common.dir/common/check.cpp.o"
  "CMakeFiles/cumf_common.dir/common/check.cpp.o.d"
  "CMakeFiles/cumf_common.dir/common/rng.cpp.o"
  "CMakeFiles/cumf_common.dir/common/rng.cpp.o.d"
  "CMakeFiles/cumf_common.dir/common/stopwatch.cpp.o"
  "CMakeFiles/cumf_common.dir/common/stopwatch.cpp.o.d"
  "CMakeFiles/cumf_common.dir/common/table.cpp.o"
  "CMakeFiles/cumf_common.dir/common/table.cpp.o.d"
  "CMakeFiles/cumf_common.dir/common/thread_pool.cpp.o"
  "CMakeFiles/cumf_common.dir/common/thread_pool.cpp.o.d"
  "libcumf_common.a"
  "libcumf_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cumf_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
