file(REMOVE_RECURSE
  "libcumf_common.a"
)
