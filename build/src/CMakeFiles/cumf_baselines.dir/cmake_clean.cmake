file(REMOVE_RECURSE
  "CMakeFiles/cumf_baselines.dir/baselines/als_plain.cpp.o"
  "CMakeFiles/cumf_baselines.dir/baselines/als_plain.cpp.o.d"
  "CMakeFiles/cumf_baselines.dir/baselines/bidmach_als.cpp.o"
  "CMakeFiles/cumf_baselines.dir/baselines/bidmach_als.cpp.o.d"
  "CMakeFiles/cumf_baselines.dir/baselines/ccd.cpp.o"
  "CMakeFiles/cumf_baselines.dir/baselines/ccd.cpp.o.d"
  "CMakeFiles/cumf_baselines.dir/baselines/gpu_sgd.cpp.o"
  "CMakeFiles/cumf_baselines.dir/baselines/gpu_sgd.cpp.o.d"
  "CMakeFiles/cumf_baselines.dir/baselines/implicit_cpu.cpp.o"
  "CMakeFiles/cumf_baselines.dir/baselines/implicit_cpu.cpp.o.d"
  "CMakeFiles/cumf_baselines.dir/baselines/sgd_blocked.cpp.o"
  "CMakeFiles/cumf_baselines.dir/baselines/sgd_blocked.cpp.o.d"
  "CMakeFiles/cumf_baselines.dir/baselines/sgd_common.cpp.o"
  "CMakeFiles/cumf_baselines.dir/baselines/sgd_common.cpp.o.d"
  "CMakeFiles/cumf_baselines.dir/baselines/sgd_hogwild.cpp.o"
  "CMakeFiles/cumf_baselines.dir/baselines/sgd_hogwild.cpp.o.d"
  "CMakeFiles/cumf_baselines.dir/baselines/sgd_nomad.cpp.o"
  "CMakeFiles/cumf_baselines.dir/baselines/sgd_nomad.cpp.o.d"
  "libcumf_baselines.a"
  "libcumf_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cumf_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
