file(REMOVE_RECURSE
  "libcumf_baselines.a"
)
