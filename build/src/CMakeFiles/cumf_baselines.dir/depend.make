# Empty dependencies file for cumf_baselines.
# This may be replaced when dependencies are built.
