
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/als_plain.cpp" "src/CMakeFiles/cumf_baselines.dir/baselines/als_plain.cpp.o" "gcc" "src/CMakeFiles/cumf_baselines.dir/baselines/als_plain.cpp.o.d"
  "/root/repo/src/baselines/bidmach_als.cpp" "src/CMakeFiles/cumf_baselines.dir/baselines/bidmach_als.cpp.o" "gcc" "src/CMakeFiles/cumf_baselines.dir/baselines/bidmach_als.cpp.o.d"
  "/root/repo/src/baselines/ccd.cpp" "src/CMakeFiles/cumf_baselines.dir/baselines/ccd.cpp.o" "gcc" "src/CMakeFiles/cumf_baselines.dir/baselines/ccd.cpp.o.d"
  "/root/repo/src/baselines/gpu_sgd.cpp" "src/CMakeFiles/cumf_baselines.dir/baselines/gpu_sgd.cpp.o" "gcc" "src/CMakeFiles/cumf_baselines.dir/baselines/gpu_sgd.cpp.o.d"
  "/root/repo/src/baselines/implicit_cpu.cpp" "src/CMakeFiles/cumf_baselines.dir/baselines/implicit_cpu.cpp.o" "gcc" "src/CMakeFiles/cumf_baselines.dir/baselines/implicit_cpu.cpp.o.d"
  "/root/repo/src/baselines/sgd_blocked.cpp" "src/CMakeFiles/cumf_baselines.dir/baselines/sgd_blocked.cpp.o" "gcc" "src/CMakeFiles/cumf_baselines.dir/baselines/sgd_blocked.cpp.o.d"
  "/root/repo/src/baselines/sgd_common.cpp" "src/CMakeFiles/cumf_baselines.dir/baselines/sgd_common.cpp.o" "gcc" "src/CMakeFiles/cumf_baselines.dir/baselines/sgd_common.cpp.o.d"
  "/root/repo/src/baselines/sgd_hogwild.cpp" "src/CMakeFiles/cumf_baselines.dir/baselines/sgd_hogwild.cpp.o" "gcc" "src/CMakeFiles/cumf_baselines.dir/baselines/sgd_hogwild.cpp.o.d"
  "/root/repo/src/baselines/sgd_nomad.cpp" "src/CMakeFiles/cumf_baselines.dir/baselines/sgd_nomad.cpp.o" "gcc" "src/CMakeFiles/cumf_baselines.dir/baselines/sgd_nomad.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cumf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cumf_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cumf_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cumf_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cumf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cumf_half.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cumf_gpusim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
