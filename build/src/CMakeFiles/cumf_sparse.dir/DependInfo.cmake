
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sparse/coo.cpp" "src/CMakeFiles/cumf_sparse.dir/sparse/coo.cpp.o" "gcc" "src/CMakeFiles/cumf_sparse.dir/sparse/coo.cpp.o.d"
  "/root/repo/src/sparse/csr.cpp" "src/CMakeFiles/cumf_sparse.dir/sparse/csr.cpp.o" "gcc" "src/CMakeFiles/cumf_sparse.dir/sparse/csr.cpp.o.d"
  "/root/repo/src/sparse/partition.cpp" "src/CMakeFiles/cumf_sparse.dir/sparse/partition.cpp.o" "gcc" "src/CMakeFiles/cumf_sparse.dir/sparse/partition.cpp.o.d"
  "/root/repo/src/sparse/split.cpp" "src/CMakeFiles/cumf_sparse.dir/sparse/split.cpp.o" "gcc" "src/CMakeFiles/cumf_sparse.dir/sparse/split.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cumf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
