file(REMOVE_RECURSE
  "CMakeFiles/cumf_sparse.dir/sparse/coo.cpp.o"
  "CMakeFiles/cumf_sparse.dir/sparse/coo.cpp.o.d"
  "CMakeFiles/cumf_sparse.dir/sparse/csr.cpp.o"
  "CMakeFiles/cumf_sparse.dir/sparse/csr.cpp.o.d"
  "CMakeFiles/cumf_sparse.dir/sparse/partition.cpp.o"
  "CMakeFiles/cumf_sparse.dir/sparse/partition.cpp.o.d"
  "CMakeFiles/cumf_sparse.dir/sparse/split.cpp.o"
  "CMakeFiles/cumf_sparse.dir/sparse/split.cpp.o.d"
  "libcumf_sparse.a"
  "libcumf_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cumf_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
