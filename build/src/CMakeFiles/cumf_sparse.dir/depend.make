# Empty dependencies file for cumf_sparse.
# This may be replaced when dependencies are built.
