file(REMOVE_RECURSE
  "libcumf_sparse.a"
)
