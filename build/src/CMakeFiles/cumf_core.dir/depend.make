# Empty dependencies file for cumf_core.
# This may be replaced when dependencies are built.
