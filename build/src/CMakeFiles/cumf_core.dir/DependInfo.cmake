
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/als.cpp" "src/CMakeFiles/cumf_core.dir/core/als.cpp.o" "gcc" "src/CMakeFiles/cumf_core.dir/core/als.cpp.o.d"
  "/root/repo/src/core/batched_solve.cpp" "src/CMakeFiles/cumf_core.dir/core/batched_solve.cpp.o" "gcc" "src/CMakeFiles/cumf_core.dir/core/batched_solve.cpp.o.d"
  "/root/repo/src/core/hermitian.cpp" "src/CMakeFiles/cumf_core.dir/core/hermitian.cpp.o" "gcc" "src/CMakeFiles/cumf_core.dir/core/hermitian.cpp.o.d"
  "/root/repo/src/core/hybrid.cpp" "src/CMakeFiles/cumf_core.dir/core/hybrid.cpp.o" "gcc" "src/CMakeFiles/cumf_core.dir/core/hybrid.cpp.o.d"
  "/root/repo/src/core/implicit_als.cpp" "src/CMakeFiles/cumf_core.dir/core/implicit_als.cpp.o" "gcc" "src/CMakeFiles/cumf_core.dir/core/implicit_als.cpp.o.d"
  "/root/repo/src/core/kernel_stats.cpp" "src/CMakeFiles/cumf_core.dir/core/kernel_stats.cpp.o" "gcc" "src/CMakeFiles/cumf_core.dir/core/kernel_stats.cpp.o.d"
  "/root/repo/src/core/multi_gpu.cpp" "src/CMakeFiles/cumf_core.dir/core/multi_gpu.cpp.o" "gcc" "src/CMakeFiles/cumf_core.dir/core/multi_gpu.cpp.o.d"
  "/root/repo/src/core/selector.cpp" "src/CMakeFiles/cumf_core.dir/core/selector.cpp.o" "gcc" "src/CMakeFiles/cumf_core.dir/core/selector.cpp.o.d"
  "/root/repo/src/core/solver.cpp" "src/CMakeFiles/cumf_core.dir/core/solver.cpp.o" "gcc" "src/CMakeFiles/cumf_core.dir/core/solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cumf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cumf_half.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cumf_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cumf_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cumf_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cumf_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
