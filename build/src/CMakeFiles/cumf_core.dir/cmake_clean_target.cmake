file(REMOVE_RECURSE
  "libcumf_core.a"
)
