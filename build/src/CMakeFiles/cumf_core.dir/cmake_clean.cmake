file(REMOVE_RECURSE
  "CMakeFiles/cumf_core.dir/core/als.cpp.o"
  "CMakeFiles/cumf_core.dir/core/als.cpp.o.d"
  "CMakeFiles/cumf_core.dir/core/batched_solve.cpp.o"
  "CMakeFiles/cumf_core.dir/core/batched_solve.cpp.o.d"
  "CMakeFiles/cumf_core.dir/core/hermitian.cpp.o"
  "CMakeFiles/cumf_core.dir/core/hermitian.cpp.o.d"
  "CMakeFiles/cumf_core.dir/core/hybrid.cpp.o"
  "CMakeFiles/cumf_core.dir/core/hybrid.cpp.o.d"
  "CMakeFiles/cumf_core.dir/core/implicit_als.cpp.o"
  "CMakeFiles/cumf_core.dir/core/implicit_als.cpp.o.d"
  "CMakeFiles/cumf_core.dir/core/kernel_stats.cpp.o"
  "CMakeFiles/cumf_core.dir/core/kernel_stats.cpp.o.d"
  "CMakeFiles/cumf_core.dir/core/multi_gpu.cpp.o"
  "CMakeFiles/cumf_core.dir/core/multi_gpu.cpp.o.d"
  "CMakeFiles/cumf_core.dir/core/selector.cpp.o"
  "CMakeFiles/cumf_core.dir/core/selector.cpp.o.d"
  "CMakeFiles/cumf_core.dir/core/solver.cpp.o"
  "CMakeFiles/cumf_core.dir/core/solver.cpp.o.d"
  "libcumf_core.a"
  "libcumf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cumf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
