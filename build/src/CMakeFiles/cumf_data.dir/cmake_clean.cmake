file(REMOVE_RECURSE
  "CMakeFiles/cumf_data.dir/data/generator.cpp.o"
  "CMakeFiles/cumf_data.dir/data/generator.cpp.o.d"
  "CMakeFiles/cumf_data.dir/data/implicit.cpp.o"
  "CMakeFiles/cumf_data.dir/data/implicit.cpp.o.d"
  "CMakeFiles/cumf_data.dir/data/io.cpp.o"
  "CMakeFiles/cumf_data.dir/data/io.cpp.o.d"
  "CMakeFiles/cumf_data.dir/data/loaders.cpp.o"
  "CMakeFiles/cumf_data.dir/data/loaders.cpp.o.d"
  "CMakeFiles/cumf_data.dir/data/model_io.cpp.o"
  "CMakeFiles/cumf_data.dir/data/model_io.cpp.o.d"
  "CMakeFiles/cumf_data.dir/data/presets.cpp.o"
  "CMakeFiles/cumf_data.dir/data/presets.cpp.o.d"
  "libcumf_data.a"
  "libcumf_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cumf_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
