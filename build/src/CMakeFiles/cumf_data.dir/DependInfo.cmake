
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/generator.cpp" "src/CMakeFiles/cumf_data.dir/data/generator.cpp.o" "gcc" "src/CMakeFiles/cumf_data.dir/data/generator.cpp.o.d"
  "/root/repo/src/data/implicit.cpp" "src/CMakeFiles/cumf_data.dir/data/implicit.cpp.o" "gcc" "src/CMakeFiles/cumf_data.dir/data/implicit.cpp.o.d"
  "/root/repo/src/data/io.cpp" "src/CMakeFiles/cumf_data.dir/data/io.cpp.o" "gcc" "src/CMakeFiles/cumf_data.dir/data/io.cpp.o.d"
  "/root/repo/src/data/loaders.cpp" "src/CMakeFiles/cumf_data.dir/data/loaders.cpp.o" "gcc" "src/CMakeFiles/cumf_data.dir/data/loaders.cpp.o.d"
  "/root/repo/src/data/model_io.cpp" "src/CMakeFiles/cumf_data.dir/data/model_io.cpp.o" "gcc" "src/CMakeFiles/cumf_data.dir/data/model_io.cpp.o.d"
  "/root/repo/src/data/presets.cpp" "src/CMakeFiles/cumf_data.dir/data/presets.cpp.o" "gcc" "src/CMakeFiles/cumf_data.dir/data/presets.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cumf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cumf_sparse.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
