file(REMOVE_RECURSE
  "libcumf_data.a"
)
