# Empty dependencies file for cumf_data.
# This may be replaced when dependencies are built.
