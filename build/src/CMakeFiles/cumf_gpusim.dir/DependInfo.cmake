
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpusim/cache.cpp" "src/CMakeFiles/cumf_gpusim.dir/gpusim/cache.cpp.o" "gcc" "src/CMakeFiles/cumf_gpusim.dir/gpusim/cache.cpp.o.d"
  "/root/repo/src/gpusim/cost_model.cpp" "src/CMakeFiles/cumf_gpusim.dir/gpusim/cost_model.cpp.o" "gcc" "src/CMakeFiles/cumf_gpusim.dir/gpusim/cost_model.cpp.o.d"
  "/root/repo/src/gpusim/device.cpp" "src/CMakeFiles/cumf_gpusim.dir/gpusim/device.cpp.o" "gcc" "src/CMakeFiles/cumf_gpusim.dir/gpusim/device.cpp.o.d"
  "/root/repo/src/gpusim/interconnect.cpp" "src/CMakeFiles/cumf_gpusim.dir/gpusim/interconnect.cpp.o" "gcc" "src/CMakeFiles/cumf_gpusim.dir/gpusim/interconnect.cpp.o.d"
  "/root/repo/src/gpusim/occupancy.cpp" "src/CMakeFiles/cumf_gpusim.dir/gpusim/occupancy.cpp.o" "gcc" "src/CMakeFiles/cumf_gpusim.dir/gpusim/occupancy.cpp.o.d"
  "/root/repo/src/gpusim/sim_clock.cpp" "src/CMakeFiles/cumf_gpusim.dir/gpusim/sim_clock.cpp.o" "gcc" "src/CMakeFiles/cumf_gpusim.dir/gpusim/sim_clock.cpp.o.d"
  "/root/repo/src/gpusim/trace.cpp" "src/CMakeFiles/cumf_gpusim.dir/gpusim/trace.cpp.o" "gcc" "src/CMakeFiles/cumf_gpusim.dir/gpusim/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cumf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
