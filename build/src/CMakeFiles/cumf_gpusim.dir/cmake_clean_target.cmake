file(REMOVE_RECURSE
  "libcumf_gpusim.a"
)
