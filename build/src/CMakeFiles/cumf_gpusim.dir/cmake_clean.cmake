file(REMOVE_RECURSE
  "CMakeFiles/cumf_gpusim.dir/gpusim/cache.cpp.o"
  "CMakeFiles/cumf_gpusim.dir/gpusim/cache.cpp.o.d"
  "CMakeFiles/cumf_gpusim.dir/gpusim/cost_model.cpp.o"
  "CMakeFiles/cumf_gpusim.dir/gpusim/cost_model.cpp.o.d"
  "CMakeFiles/cumf_gpusim.dir/gpusim/device.cpp.o"
  "CMakeFiles/cumf_gpusim.dir/gpusim/device.cpp.o.d"
  "CMakeFiles/cumf_gpusim.dir/gpusim/interconnect.cpp.o"
  "CMakeFiles/cumf_gpusim.dir/gpusim/interconnect.cpp.o.d"
  "CMakeFiles/cumf_gpusim.dir/gpusim/occupancy.cpp.o"
  "CMakeFiles/cumf_gpusim.dir/gpusim/occupancy.cpp.o.d"
  "CMakeFiles/cumf_gpusim.dir/gpusim/sim_clock.cpp.o"
  "CMakeFiles/cumf_gpusim.dir/gpusim/sim_clock.cpp.o.d"
  "CMakeFiles/cumf_gpusim.dir/gpusim/trace.cpp.o"
  "CMakeFiles/cumf_gpusim.dir/gpusim/trace.cpp.o.d"
  "libcumf_gpusim.a"
  "libcumf_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cumf_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
