# Empty dependencies file for cumf_gpusim.
# This may be replaced when dependencies are built.
