file(REMOVE_RECURSE
  "libcumf_mllib.a"
)
