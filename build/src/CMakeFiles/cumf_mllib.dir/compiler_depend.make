# Empty compiler generated dependencies file for cumf_mllib.
# This may be replaced when dependencies are built.
