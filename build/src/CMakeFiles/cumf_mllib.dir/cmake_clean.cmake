file(REMOVE_RECURSE
  "CMakeFiles/cumf_mllib.dir/mllib/als.cpp.o"
  "CMakeFiles/cumf_mllib.dir/mllib/als.cpp.o.d"
  "libcumf_mllib.a"
  "libcumf_mllib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cumf_mllib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
