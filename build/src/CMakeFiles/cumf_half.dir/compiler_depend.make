# Empty compiler generated dependencies file for cumf_half.
# This may be replaced when dependencies are built.
