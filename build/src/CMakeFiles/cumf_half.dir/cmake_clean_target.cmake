file(REMOVE_RECURSE
  "libcumf_half.a"
)
