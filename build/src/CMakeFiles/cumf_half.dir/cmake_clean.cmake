file(REMOVE_RECURSE
  "CMakeFiles/cumf_half.dir/half/half.cpp.o"
  "CMakeFiles/cumf_half.dir/half/half.cpp.o.d"
  "libcumf_half.a"
  "libcumf_half.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cumf_half.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
