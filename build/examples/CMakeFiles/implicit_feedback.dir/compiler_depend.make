# Empty compiler generated dependencies file for implicit_feedback.
# This may be replaced when dependencies are built.
