file(REMOVE_RECURSE
  "CMakeFiles/implicit_feedback.dir/implicit_feedback.cpp.o"
  "CMakeFiles/implicit_feedback.dir/implicit_feedback.cpp.o.d"
  "implicit_feedback"
  "implicit_feedback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/implicit_feedback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
