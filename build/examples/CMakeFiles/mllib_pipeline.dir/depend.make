# Empty dependencies file for mllib_pipeline.
# This may be replaced when dependencies are built.
