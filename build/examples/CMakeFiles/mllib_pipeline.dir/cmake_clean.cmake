file(REMOVE_RECURSE
  "CMakeFiles/mllib_pipeline.dir/mllib_pipeline.cpp.o"
  "CMakeFiles/mllib_pipeline.dir/mllib_pipeline.cpp.o.d"
  "mllib_pipeline"
  "mllib_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mllib_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
