# Empty dependencies file for bench_fig5_solver.
# This may be replaced when dependencies are built.
