file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_solver.dir/bench_fig5_solver.cpp.o"
  "CMakeFiles/bench_fig5_solver.dir/bench_fig5_solver.cpp.o.d"
  "bench_fig5_solver"
  "bench_fig5_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
