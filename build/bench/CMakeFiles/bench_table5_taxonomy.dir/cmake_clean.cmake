file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_taxonomy.dir/bench_table5_taxonomy.cpp.o"
  "CMakeFiles/bench_table5_taxonomy.dir/bench_table5_taxonomy.cpp.o.d"
  "bench_table5_taxonomy"
  "bench_table5_taxonomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_taxonomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
