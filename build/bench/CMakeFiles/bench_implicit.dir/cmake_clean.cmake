file(REMOVE_RECURSE
  "CMakeFiles/bench_implicit.dir/bench_implicit.cpp.o"
  "CMakeFiles/bench_implicit.dir/bench_implicit.cpp.o.d"
  "bench_implicit"
  "bench_implicit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_implicit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
