# Empty compiler generated dependencies file for bench_fig8_als_vs_sgd.
# This may be replaced when dependencies are built.
