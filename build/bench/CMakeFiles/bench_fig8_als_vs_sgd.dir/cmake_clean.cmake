file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_als_vs_sgd.dir/bench_fig8_als_vs_sgd.cpp.o"
  "CMakeFiles/bench_fig8_als_vs_sgd.dir/bench_fig8_als_vs_sgd.cpp.o.d"
  "bench_fig8_als_vs_sgd"
  "bench_fig8_als_vs_sgd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_als_vs_sgd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
