
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig7_utilization.cpp" "bench/CMakeFiles/bench_fig7_utilization.dir/bench_fig7_utilization.cpp.o" "gcc" "bench/CMakeFiles/bench_fig7_utilization.dir/bench_fig7_utilization.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cumf_cusim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cumf_mllib.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cumf_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cumf_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cumf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cumf_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cumf_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cumf_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cumf_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cumf_half.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cumf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
