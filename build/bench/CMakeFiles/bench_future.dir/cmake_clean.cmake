file(REMOVE_RECURSE
  "CMakeFiles/bench_future.dir/bench_future.cpp.o"
  "CMakeFiles/bench_future.dir/bench_future.cpp.o.d"
  "bench_future"
  "bench_future.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_future.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
