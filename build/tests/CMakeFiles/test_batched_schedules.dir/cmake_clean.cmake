file(REMOVE_RECURSE
  "CMakeFiles/test_batched_schedules.dir/test_batched_schedules.cpp.o"
  "CMakeFiles/test_batched_schedules.dir/test_batched_schedules.cpp.o.d"
  "test_batched_schedules"
  "test_batched_schedules.pdb"
  "test_batched_schedules[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_batched_schedules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
