# Empty compiler generated dependencies file for test_batched_schedules.
# This may be replaced when dependencies are built.
