file(REMOVE_RECURSE
  "CMakeFiles/test_mllib.dir/test_mllib.cpp.o"
  "CMakeFiles/test_mllib.dir/test_mllib.cpp.o.d"
  "test_mllib"
  "test_mllib.pdb"
  "test_mllib[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mllib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
