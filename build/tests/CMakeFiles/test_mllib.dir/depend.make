# Empty dependencies file for test_mllib.
# This may be replaced when dependencies are built.
