# Empty dependencies file for test_data_metrics.
# This may be replaced when dependencies are built.
