file(REMOVE_RECURSE
  "CMakeFiles/test_data_metrics.dir/test_data_metrics.cpp.o"
  "CMakeFiles/test_data_metrics.dir/test_data_metrics.cpp.o.d"
  "test_data_metrics"
  "test_data_metrics.pdb"
  "test_data_metrics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_data_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
