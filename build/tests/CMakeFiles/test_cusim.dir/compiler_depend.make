# Empty compiler generated dependencies file for test_cusim.
# This may be replaced when dependencies are built.
