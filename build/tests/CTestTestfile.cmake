# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_half[1]_include.cmake")
include("/root/repo/build/tests/test_sparse[1]_include.cmake")
include("/root/repo/build/tests/test_linalg[1]_include.cmake")
include("/root/repo/build/tests/test_gpusim[1]_include.cmake")
include("/root/repo/build/tests/test_data_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_batched_schedules[1]_include.cmake")
include("/root/repo/build/tests/test_cusim[1]_include.cmake")
include("/root/repo/build/tests/test_mllib[1]_include.cmake")
