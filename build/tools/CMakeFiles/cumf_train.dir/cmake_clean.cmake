file(REMOVE_RECURSE
  "CMakeFiles/cumf_train.dir/cumf_train.cpp.o"
  "CMakeFiles/cumf_train.dir/cumf_train.cpp.o.d"
  "cumf_train"
  "cumf_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cumf_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
