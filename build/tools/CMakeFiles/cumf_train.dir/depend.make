# Empty dependencies file for cumf_train.
# This may be replaced when dependencies are built.
