# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_usage_exits_nonzero "/root/repo/build/tools/cumf_train")
set_tests_properties(cli_usage_exits_nonzero PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_train_predict_roundtrip "sh" "-c" "    awk 'BEGIN{srand(7); n=0; while (n<2000) {u=int(rand()*200); v=int(rand()*80); r=1+rand()*4; print u, v, r; n++}}' > cli_ratings.txt &&     /root/repo/build/tools/cumf_train train cli_ratings.txt cli_model.txt -f 8 -t 3 --workers 2 &&     printf '0 1 0\\n3 2 0\\n' > cli_pairs.txt &&     /root/repo/build/tools/cumf_train predict cli_model.txt cli_pairs.txt &&     /root/repo/build/tools/cumf_train recommend cli_model.txt cli_ratings.txt 0 -k 2")
set_tests_properties(cli_train_predict_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_rejects_missing_file "/root/repo/build/tools/cumf_train" "train" "/nonexistent/file.txt" "/tmp/out.txt")
set_tests_properties(cli_rejects_missing_file PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
