#!/usr/bin/env python3
"""Summarize and validate cuprof output files.

Works on both artifacts cumf_train produces:

  * Chrome trace-event JSON (``--trace out.json``): prints a per-span table
    (count, total ms, mean/p50/p95/max us) like ``--prof-summary``, computed
    from the exported file instead of the live tracer.
  * Epoch telemetry JSONL (``--metrics out.jsonl``): prints a per-epoch
    table (RMSE, epoch seconds, phase split, CG iterations) plus the merged
    CG iteration histogram and the last epoch's roofline verdicts.

Modes:

  trace_report.py FILE             summarize (file type is auto-detected)
  trace_report.py --check FILE     validate the schema; exit 1 on violations
                                   (trace: required keys, non-negative ts/dur,
                                   strict per-tid span nesting; telemetry:
                                   header record, per-epoch required keys;
                                   schema 2 additionally requires one cuscope
                                   bottleneck record per epoch with a valid
                                   bound/phase enum and pct_of_roof in [0,1])
  trace_report.py --diff A B       compare two telemetry JSONL files epoch by
                                   epoch (RMSE and phase-seconds deltas)

No third-party dependencies — json and math only.
"""

import argparse
import json
import math
import sys


def fail(msg):
    print("trace_report: %s" % msg, file=sys.stderr)
    sys.exit(1)


def load_any(path):
    """Returns ('trace', events) or ('metrics', records)."""
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    stripped = text.lstrip()
    if not stripped:
        fail("%s is empty" % path)
    # A Chrome trace is one JSON object with a traceEvents array; telemetry
    # is one object per line.
    try:
        doc = json.loads(text)
        if isinstance(doc, dict) and "traceEvents" in doc:
            return "trace", doc["traceEvents"]
    except json.JSONDecodeError:
        pass
    records = []
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as e:
            fail("%s:%d: not valid JSON (%s)" % (path, lineno, e))
    return "metrics", records


def percentile(sorted_vals, q):
    """Nearest-rank percentile matching cuprof's summarize()."""
    if not sorted_vals:
        return 0.0
    idx = int(q * (len(sorted_vals) - 1) + 0.5)
    return sorted_vals[min(idx, len(sorted_vals) - 1)]


# --- Chrome trace ---------------------------------------------------------

def check_trace(events):
    errors = []
    open_spans = {}  # tid -> stack of (name, start, end)
    for i, e in enumerate(events):
        if not isinstance(e, dict):
            errors.append("event %d: not an object" % i)
            continue
        ph = e.get("ph")
        if ph is None or "pid" not in e:
            errors.append("event %d: missing ph/pid" % i)
            continue
        if ph == "X":
            for key in ("name", "tid", "ts", "dur"):
                if key not in e:
                    errors.append("event %d: complete event missing '%s'"
                                  % (i, key))
                    break
            else:
                if e["ts"] < 0 or e["dur"] < 0:
                    errors.append("event %d (%s): negative ts/dur"
                                  % (i, e["name"]))
                open_spans.setdefault(e["tid"], []).append(
                    (e["name"], e["ts"], e["ts"] + e["dur"]))
        elif ph in ("s", "f", "C", "M"):
            pass
        else:
            errors.append("event %d: unknown phase '%s'" % (i, ph))

    # Strict nesting: within one tid, any two spans either nest or are
    # disjoint. RAII scopes plus a single-writer ring guarantee this; a
    # violation means the exporter (or a hand-recorded span) is broken.
    eps = 1e-6  # timestamps are microseconds with ns precision
    for tid, spans in open_spans.items():
        spans.sort(key=lambda s: (s[1], -s[2]))
        stack = []
        for name, start, end in spans:
            while stack and start >= stack[-1][2] - eps:
                stack.pop()
            if stack and end > stack[-1][2] + eps:
                errors.append(
                    "tid %s: span '%s' [%.3f, %.3f] overlaps '%s' "
                    "[%.3f, %.3f] without nesting"
                    % (tid, name, start, end,
                       stack[-1][0], stack[-1][1], stack[-1][2]))
            stack.append((name, start, end))
    return errors


def summarize_trace(events):
    by_name = {}
    for e in events:
        if e.get("ph") != "X":
            continue
        by_name.setdefault(e["name"], []).append(float(e["dur"]))
    rows = []
    for name, durs in by_name.items():
        durs.sort()
        rows.append((name, len(durs), sum(durs) / 1e3,
                     sum(durs) / len(durs), percentile(durs, 0.5),
                     percentile(durs, 0.95), durs[-1]))
    rows.sort(key=lambda r: -r[2])
    print("%-24s %8s %12s %10s %10s %10s %10s"
          % ("span", "count", "total ms", "mean us", "p50 us", "p95 us",
             "max us"))
    for name, count, total, mean, p50, p95, mx in rows:
        print("%-24s %8d %12.3f %10.2f %10.2f %10.2f %10.2f"
              % (name, count, total, mean, p50, p95, mx))


# --- Telemetry JSONL ------------------------------------------------------

# cuscope bottleneck record vocabulary (schema 2); mirrors
# src/prof/bottleneck.hpp.
BOTTLENECK_BOUNDS = ("compute", "dram", "l2", "latency", "comm", "stall")
BOTTLENECK_PHASES = ("get_hermitian", "solve", "fp16_pack",
                     "mgpu_allgather", "ooc_stream")


def check_bottleneck(rec, i):
    errors = []
    for key in ("epoch", "phase", "bound", "arithmetic_intensity",
                "pct_of_roof", "headroom", "wall_s", "roof_s"):
        if key not in rec:
            errors.append("record %d: bottleneck missing '%s'" % (i, key))
    if "bound" in rec and rec["bound"] not in BOTTLENECK_BOUNDS:
        errors.append("record %d: bound %r not one of %s"
                      % (i, rec["bound"], "/".join(BOTTLENECK_BOUNDS)))
    if "phase" in rec and rec["phase"] not in BOTTLENECK_PHASES:
        errors.append("record %d: phase %r not one of %s"
                      % (i, rec["phase"], "/".join(BOTTLENECK_PHASES)))
    for key, lo, hi in (("pct_of_roof", 0.0, 1.0), ("headroom", 0.0, 1.0)):
        val = rec.get(key)
        if key in rec and (not isinstance(val, (int, float))
                           or not lo <= val <= hi):
            errors.append("record %d: %s out of [%g,%g]" % (i, key, lo, hi))
    wall = rec.get("wall_s")
    if "wall_s" in rec and (not isinstance(wall, (int, float)) or wall < 0):
        errors.append("record %d: wall_s negative or non-numeric" % i)
    return errors


def check_metrics(records):
    errors = []
    if not records:
        return ["no records"]
    header = records[0]
    schema = header.get("schema")
    if header.get("type") != "header":
        errors.append("first record must be the header "
                      "(got type=%r)" % header.get("type"))
    elif schema not in (1, 2):
        errors.append("unknown schema version %r" % schema)
    epoch_numbers = []
    bottleneck_phases = {}  # epoch -> [phase, ...]
    prev_seconds = None
    for i, rec in enumerate(records[1:], 2):
        rtype = rec.get("type")
        if rtype == "bottleneck":
            if schema == 1:
                errors.append("record %d: bottleneck records require "
                              "schema 2" % i)
            errors.extend(check_bottleneck(rec, i))
            if isinstance(rec.get("epoch"), int):
                bottleneck_phases.setdefault(rec["epoch"], []).append(
                    rec.get("phase"))
            continue
        if rtype != "epoch":
            errors.append("record %d: type=%r, expected 'epoch' or "
                          "'bottleneck'" % (i, rtype))
            continue
        epoch_numbers.append(rec.get("epoch"))
        for key in ("epoch", "seconds", "epoch_s", "phase_s", "solver",
                    "host_ops", "sim_cache"):
            if key not in rec:
                errors.append("record %d: missing '%s'" % (i, key))
        if "rmse" not in rec:
            errors.append("record %d: missing 'rmse' (null is fine)" % i)
        phase = rec.get("phase_s", {})
        for key in ("hermitian", "solve", "rmse_eval"):
            if not isinstance(phase.get(key), (int, float)):
                errors.append("record %d: phase_s.%s missing or non-numeric"
                              % (i, key))
        solver = rec.get("solver", {})
        for key in ("systems", "cg_iterations", "cg_hist"):
            if key not in solver:
                errors.append("record %d: solver.%s missing" % (i, key))
        sim = rec.get("sim_cache", {})
        rate = sim.get("l1_hit_rate")
        if not isinstance(rate, (int, float)) or not (0.0 <= rate <= 1.0):
            errors.append("record %d: sim_cache.l1_hit_rate out of [0,1]"
                          % i)
        sec = rec.get("seconds")
        if isinstance(sec, (int, float)):
            if isinstance(prev_seconds, (int, float)) and sec < prev_seconds:
                errors.append("record %d: cumulative seconds decreased" % i)
            prev_seconds = sec
    if schema == 2:
        for epoch in epoch_numbers:
            if epoch not in bottleneck_phases:
                errors.append("epoch %s: no bottleneck record (schema 2 "
                              "requires per-epoch verdicts)" % epoch)
        for epoch, phases in sorted(bottleneck_phases.items()):
            dupes = {p for p in phases if phases.count(p) > 1}
            if dupes:
                errors.append("epoch %s: duplicate bottleneck phase(s) %s"
                              % (epoch, sorted(dupes)))
    return errors


def epochs_of(records):
    return [r for r in records if r.get("type") == "epoch"]


def summarize_metrics(records):
    header = records[0] if records and records[0].get("type") == "header" \
        else {}
    if header:
        print("run: %s  (%s x %s, %s train nnz)  f=%s solver=%s workers=%s"
              % (header.get("dataset", "?"), header.get("rows", "?"),
                 header.get("cols", "?"), header.get("train_nnz", "?"),
                 header.get("f", "?"), header.get("solver", "?"),
                 header.get("workers", "?")))
    print("%6s %10s %10s %12s %10s %10s %8s"
          % ("epoch", "rmse", "epoch s", "hermitian s", "solve s",
             "eval s", "cg iters"))
    hist = {}
    for rec in epochs_of(records):
        phase = rec.get("phase_s", {})
        solver = rec.get("solver", {})
        rmse = rec.get("rmse")
        print("%6s %10s %10.4f %12.6f %10.6f %10.6f %8s"
              % (rec.get("epoch", "?"),
                 "%.4f" % rmse if isinstance(rmse, (int, float)) else "-",
                 rec.get("epoch_s", 0.0), phase.get("hermitian", 0.0),
                 phase.get("solve", 0.0), phase.get("rmse_eval", 0.0),
                 solver.get("cg_iterations", "-")))
        for bucket, count in solver.get("cg_hist", {}).items():
            hist[bucket] = hist.get(bucket, 0) + count
    if hist:
        total = sum(hist.values())
        print("CG iteration histogram (%d solves):" % total)
        for bucket in sorted(hist, key=int):
            print("  %3s iters: %8d  (%.1f%%)"
                  % (bucket, hist[bucket], 100.0 * hist[bucket] / total))
    sim = next((r.get("sim_cache") for r in epochs_of(records)
                if r.get("sim_cache")), None)
    if sim:
        print("simulated load-phase cache: L1 %.1f%%, L2 %.1f%%, "
              "%.1f KiB DRAM"
              % (100.0 * sim.get("l1_hit_rate", 0.0),
                 100.0 * sim.get("l2_hit_rate", 0.0),
                 sim.get("dram_bytes", 0.0) / 1024.0))
    bottlenecks = [r for r in records if r.get("type") == "bottleneck"]
    if bottlenecks:
        last_epoch = max(r.get("epoch", 0) for r in bottlenecks)
        print("roofline verdicts (epoch %s):" % last_epoch)
        for rec in bottlenecks:
            if rec.get("epoch") != last_epoch:
                continue
            print("  %-14s %6.2f flop/B, %3.0f%% of %s roof "
                  "(headroom %.0f%%), %.4g s"
                  % (rec.get("phase", "?"),
                     rec.get("arithmetic_intensity", 0.0),
                     100.0 * rec.get("pct_of_roof", 0.0),
                     rec.get("bound", "?"),
                     100.0 * rec.get("headroom", 0.0),
                     rec.get("wall_s", 0.0)))


def diff_metrics(a_records, b_records, a_path, b_path):
    a_epochs = {r["epoch"]: r for r in epochs_of(a_records)}
    b_epochs = {r["epoch"]: r for r in epochs_of(b_records)}
    shared = sorted(set(a_epochs) & set(b_epochs))
    if not shared:
        fail("no shared epochs between %s and %s" % (a_path, b_path))
    only = (set(a_epochs) | set(b_epochs)) - set(shared)
    if only:
        print("(epochs only in one file: %s)" % sorted(only))
    print("%6s %12s %12s %12s %14s"
          % ("epoch", "rmse A", "rmse B", "d(rmse)", "d(epoch s)"))
    for epoch in shared:
        ra, rb = a_epochs[epoch], b_epochs[epoch]
        rmse_a, rmse_b = ra.get("rmse"), rb.get("rmse")
        if isinstance(rmse_a, (int, float)) and \
           isinstance(rmse_b, (int, float)):
            drmse = "%+.5f" % (rmse_b - rmse_a)
            sa, sb = "%.4f" % rmse_a, "%.4f" % rmse_b
        else:
            drmse, sa, sb = "-", "-", "-"
        dt = rb.get("epoch_s", 0.0) - ra.get("epoch_s", 0.0)
        print("%6d %12s %12s %12s %+13.6f" % (epoch, sa, sb, drmse, dt))
    # Aggregate verdict line for quick eyeballing in CI logs.
    finals = [e for e in shared
              if isinstance(a_epochs[e].get("rmse"), (int, float))
              and isinstance(b_epochs[e].get("rmse"), (int, float))]
    if finals:
        last = finals[-1]
        print("final rmse: A=%.5f  B=%.5f  delta=%+.5f"
              % (a_epochs[last]["rmse"], b_epochs[last]["rmse"],
                 b_epochs[last]["rmse"] - a_epochs[last]["rmse"]))


def main():
    parser = argparse.ArgumentParser(
        description="Summarize or validate cuprof trace/telemetry files.")
    parser.add_argument("file", help="trace JSON or telemetry JSONL")
    parser.add_argument("--check", action="store_true",
                        help="validate the schema; exit 1 on violations")
    parser.add_argument("--diff", metavar="OTHER",
                        help="second telemetry JSONL to compare against")
    args = parser.parse_args()

    kind, payload = load_any(args.file)

    if args.diff:
        if kind != "metrics":
            fail("--diff works on telemetry JSONL files")
        other_kind, other = load_any(args.diff)
        if other_kind != "metrics":
            fail("%s is not a telemetry JSONL file" % args.diff)
        diff_metrics(payload, other, args.file, args.diff)
        return

    if args.check:
        errors = check_trace(payload) if kind == "trace" \
            else check_metrics(payload)
        if errors:
            for e in errors:
                print("trace_report: %s" % e, file=sys.stderr)
            sys.exit(1)
        print("%s: %s OK (%d %s)"
              % (args.file, kind, len(payload),
                 "events" if kind == "trace" else "records"))
        return

    if kind == "trace":
        summarize_trace(payload)
    else:
        summarize_metrics(payload)


if __name__ == "__main__":
    main()
