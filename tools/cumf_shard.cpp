// cumf_shard: build and inspect out-of-core shard stores.
//
// Usage:
//   cumf_shard build RATINGS DIR [--tiles N] [--test FRAC] [--seed N]
//                                [--movielens]
//   cumf_shard info DIR
//   cumf_shard verify DIR
//
// `build` loads a ratings file, replays the trainer's canonical
// Rng(seed)+split_holdout sequence, and writes the checksummed tile files,
// test set and meta into DIR (see data/shards.hpp for the format). A store
// built with seed S trains bit-identically to `cumf_train train RATINGS ...
// --seed S` run in-core with the same --test fraction.
//
// `info` prints the manifest; `verify` re-reads every file, checking magic,
// version, CRC and the tile cross-checks, and exits nonzero naming the
// first rejected file and its reason.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <limits>
#include <string>

#include "common/check.hpp"
#include "common/stopwatch.hpp"
#include "data/loaders.hpp"
#include "data/shards.hpp"
#include "sparse/coo.hpp"

#include "cli_parse.hpp"

namespace {

using namespace cumf;

int usage() {
  std::fprintf(
      stderr,
      "usage: cumf_shard build RATINGS DIR [--tiles N] [--test FRAC]\n"
      "                                    [--seed N] [--movielens]\n"
      "       cumf_shard info DIR\n"
      "       cumf_shard verify DIR\n"
      "\n"
      "  --tiles N      tile count per view (default 8; nnz-balanced cuts\n"
      "                 may merge down when single rows exceed a share)\n"
      "  --test FRAC    held-out test fraction (default 0.1), as cumf_train\n"
      "  --seed N       holdout-split seed (default 1); training the store\n"
      "                 matches an in-core run with the same seed\n"
      "  --movielens    input uses the u::v::r::ts format (1-based ids)\n");
  return 2;
}

void print_tiles(const char* label, const std::vector<TileRange>& tiles) {
  std::printf("%s (%zu tiles):\n", label, tiles.size());
  for (std::size_t i = 0; i < tiles.size(); ++i) {
    const TileRange& t = tiles[i];
    std::printf("  %4zu  rows [%u, %u)  %10" PRIu64 " nnz  %10" PRIu64
                " bytes on disk\n",
                i, t.row_begin, t.row_end, static_cast<std::uint64_t>(t.nnz),
                t.bytes);
  }
}

void print_meta(const std::string& dir, const ShardMeta& meta) {
  std::printf("shard store %s\n", dir.c_str());
  std::printf("  %u x %u, %" PRIu64 " train + %" PRIu64
              " test nnz, mean %.6f\n",
              meta.rows, meta.cols, static_cast<std::uint64_t>(meta.train_nnz),
              static_cast<std::uint64_t>(meta.test_nnz), meta.mean);
  std::printf("  test fraction %g, split seed %" PRIu64 "\n",
              meta.test_fraction, meta.seed);
  print_tiles("  by-row view", meta.row_tiles);
  print_tiles("  by-col view", meta.col_tiles);
}

int cmd_build(int argc, char** argv) {
  if (argc < 4) {
    return usage();
  }
  const std::string ratings_path = argv[2];
  const std::string dir = argv[3];
  ShardBuildOptions options;
  LoaderOptions loader;
  for (int i = 4; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--tiles" && has_value) {
      options.tiles = static_cast<std::size_t>(
          cli::parse_uint("cumf_shard", "--tiles", argv[++i], 1, 1000000));
    } else if (arg == "--test" && has_value) {
      options.test_fraction =
          cli::parse_double("cumf_shard", "--test", argv[++i], 0.0, 1.0);
    } else if (arg == "--seed" && has_value) {
      options.seed =
          cli::parse_uint("cumf_shard", "--seed", argv[++i], 0,
                          std::numeric_limits<std::uint64_t>::max());
    } else if (arg == "--movielens") {
      loader.format = RatingsFormat::MovieLens;
      loader.one_based = true;
    } else {
      std::fprintf(stderr, "cumf_shard: unknown option '%s'\n", arg.c_str());
      return usage();
    }
  }
  if (options.tiles == 0) {
    std::fprintf(stderr, "cumf_shard: --tiles must be >= 1\n");
    return 2;
  }
  if (!(options.test_fraction > 0.0 && options.test_fraction < 1.0)) {
    std::fprintf(stderr, "cumf_shard: --test must be in (0, 1)\n");
    return 2;
  }

  std::printf("loading %s...\n", ratings_path.c_str());
  Stopwatch sw;
  const RatingsCoo all = load_ratings_file(ratings_path, loader);
  std::printf("  %u x %u, %" PRIu64 " ratings in %.3f s\n", all.rows(),
              all.cols(), static_cast<std::uint64_t>(all.nnz()), sw.seconds());

  Stopwatch shard_sw;
  const ShardMeta meta = write_shards(dir, all, options);
  std::printf("sharded in %.3f s\n", shard_sw.seconds());
  print_meta(dir, meta);
  return 0;
}

int cmd_info(const std::string& dir) {
  print_meta(dir, read_shard_meta(dir));
  return 0;
}

int cmd_verify(const std::string& dir) {
  const ShardMeta meta = read_shard_meta(dir);
  const RatingsCoo test = read_shard_test(dir);
  CUMF_EXPECTS(test.nnz() == meta.test_nnz,
               "test set nnz disagrees with the manifest");
  std::size_t files = 2;  // meta + test already validated
  const struct {
    TileView view;
    const std::vector<TileRange>* tiles;
  } views[] = {{TileView::by_row, &meta.row_tiles},
               {TileView::by_col, &meta.col_tiles}};
  for (const auto& v : views) {
    for (std::size_t i = 0; i < v.tiles->size(); ++i) {
      (void)load_tile(dir, v.view, i, (*v.tiles)[i]);
      ++files;
    }
  }
  std::printf("verify OK: %zu files, %zu+%zu tiles, %" PRIu64
              " train nnz\n",
              files, meta.row_tiles.size(), meta.col_tiles.size(),
              static_cast<std::uint64_t>(meta.train_nnz));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return usage();
  }
  const std::string cmd = argv[1];
  try {
    if (cmd == "build") {
      return cmd_build(argc, argv);
    }
    if (cmd == "info" && argc == 3) {
      return cmd_info(argv[2]);
    }
    if (cmd == "verify" && argc == 3) {
      return cmd_verify(argv[2]);
    }
    return usage();
  } catch (const cumf::ShardError& e) {
    std::fprintf(stderr, "cumf_shard: rejected shard file (%s): %s\n",
                 cumf::to_string(e.reason()), e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cumf_shard: %s\n", e.what());
    return 1;
  }
}
