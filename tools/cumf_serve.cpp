// cumf_serve — answer top-k requests (and fold in streamed ratings) from a
// trained model.
//
//   cumf_serve <model> <ratings> [--requests FILE] [--shards N] [--cache N]
//              [--lambda X] [--solver lu|cholesky|cg|cg16|pcg] [--fs N]
//              [--scalar] [--trace FILE]
//
// <model> is a cumf-model text file, a CUMFCKPT checkpoint file, or a
// checkpoint directory (the latest epoch is loaded). <ratings> rebuilds the
// seen matrix the top-k excludes. Requests come from --requests FILE or
// stdin, one per line:
//
//   topk <user> [k]        print the k best unseen items for <user>
//   rate <user> <item> <r> fold the rating in (user == current user count
//                          grows the model by one new user)
//
// topk output is byte-identical to `cumf_train recommend` on the same
// model state ("item <v>\tscore <s>\n" per line), which is exactly what the
// serve-smoke CI job asserts with cmp. Everything else — fold-in acks, the
// end-of-run summary (requests, cache hits, solver fallbacks) — goes to
// stderr so stdout stays a pure response stream.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/stopwatch.hpp"
#include "data/checkpoint.hpp"
#include "data/loaders.hpp"
#include "data/model_io.hpp"
#include "prof/counters.hpp"
#include "prof/prof.hpp"
#include "serve/serve.hpp"
#include "sparse/csr.hpp"

#include "cli_parse.hpp"

using namespace cumf;

namespace {

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  cumf_serve <model> <ratings> [--requests FILE] [--shards N]\n"
      "             [--cache N] [--lambda X] "
      "[--solver lu|cholesky|cg|cg16|pcg]\n"
      "             [--fs N] [--scalar] [--trace FILE]\n"
      "\n"
      "  <model>: cumf-model file, CUMFCKPT checkpoint file, or checkpoint "
      "dir\n"
      "  requests (stdin or --requests): 'topk <user> [k]' | "
      "'rate <u> <v> <r>'\n");
  std::exit(2);
}

SolverKind parse_solver(const std::string& name) {
  if (name == "lu") return SolverKind::LuFp32;
  if (name == "cholesky") return SolverKind::CholeskyFp32;
  if (name == "cg") return SolverKind::CgFp32;
  if (name == "cg16") return SolverKind::CgFp16;
  if (name == "pcg") return SolverKind::PcgFp32;
  std::fprintf(stderr, "unknown solver '%s'\n", name.c_str());
  std::exit(2);
}

/// Model file, checkpoint file, or checkpoint directory → FactorModel.
FactorModel load_model_any(const std::string& path) {
  std::string file = path;
  if (std::filesystem::is_directory(path)) {
    const auto latest = latest_checkpoint(path);
    CUMF_EXPECTS(latest.has_value(),
                 "no checkpoints found in directory: " + path);
    file = *latest;
    std::fprintf(stderr, "cumf_serve: loading checkpoint %s\n",
                 file.c_str());
  }
  std::ifstream probe(file, std::ios::binary);
  CUMF_EXPECTS(probe.good(), "cannot open model file: " + file);
  char magic[8] = {};
  probe.read(magic, sizeof magic);
  if (probe.gcount() == sizeof magic &&
      std::string_view(magic, sizeof magic) == kCheckpointMagic) {
    TrainCheckpoint ckpt = read_checkpoint_file(file);
    return FactorModel{std::move(ckpt.x), std::move(ckpt.theta)};
  }
  return read_model_file(file);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    usage();
  }
  const std::string model_path = argv[1];
  const std::string ratings_path = argv[2];
  std::string requests_path;
  std::string trace_path;
  serve::ServeOptions options;
  options.shards = 4;

  int i = 3;
  const auto next = [&]() -> const char* {
    if (i + 1 >= argc) {
      usage();
    }
    return argv[++i];
  };
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--requests") {
      requests_path = next();
    } else if (arg == "--shards") {
      options.shards = static_cast<std::size_t>(
          cli::parse_uint("cumf_serve", "--shards", next(), 1, 65536));
    } else if (arg == "--cache") {
      options.cache_capacity = static_cast<std::size_t>(
          cli::parse_uint("cumf_serve", "--cache", next(), 0, 1000000000));
    } else if (arg == "--lambda") {
      options.lambda = static_cast<real_t>(
          cli::parse_double("cumf_serve", "--lambda", next(), 0.0, 1e9));
    } else if (arg == "--solver") {
      options.solver.kind = parse_solver(next());
    } else if (arg == "--fs") {
      options.solver.cg_fs = static_cast<std::uint32_t>(
          cli::parse_uint("cumf_serve", "--fs", next(), 1, 1024));
    } else if (arg == "--scalar") {
      options.path = simd::KernelPath::scalar;
      options.solver.path = simd::KernelPath::scalar;
    } else if (arg == "--trace") {
      trace_path = next();
    } else {
      std::fprintf(stderr, "cumf_serve: unknown option '%s'\n", arg.c_str());
      usage();
    }
  }

  try {
    if (!trace_path.empty()) {
      prof::Tracer::instance().enable();
      prof::Tracer::instance().set_thread_name("serve");
    }

    FactorModel model = load_model_any(model_path);
    auto loaded = load_ratings_file(ratings_path, LoaderOptions{});
    loaded.sort_and_dedup();
    // Rebuild the seen matrix on the model's shape (the ratings file's
    // inferred shape may be smaller if trailing users/items are unrated).
    CUMF_EXPECTS(loaded.rows() <= model.x.rows() &&
                     loaded.cols() <= model.theta.rows(),
                 "ratings file exceeds the model's shape");
    RatingsCoo shaped(static_cast<index_t>(model.x.rows()),
                      static_cast<index_t>(model.theta.rows()),
                      loaded.entries());
    const auto seen = CsrMatrix::from_coo(shaped);

    serve::ServeEngine engine(std::move(model), seen, options);
    std::fprintf(stderr,
                 "cumf_serve: %u users x %u items, f=%zu, %zu shards, "
                 "cache %zu\n",
                 engine.users(), engine.items(), engine.f(),
                 options.shards, options.cache_capacity);

    std::ifstream req_file;
    if (!requests_path.empty()) {
      req_file.open(requests_path);
      CUMF_EXPECTS(req_file.good(),
                   "cannot open request file: " + requests_path);
    }
    std::istream& in = requests_path.empty() ? std::cin : req_file;

    prof::CounterRegistry registry;
    std::uint64_t topk_count = 0;
    std::uint64_t fold_count = 0;
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') {
        continue;
      }
      std::istringstream fields(line);
      std::string verb;
      fields >> verb;
      if (verb == "topk") {
        index_t user = 0;
        std::size_t k = 10;
        fields >> user;
        if (!(fields >> k)) {
          k = 10;
        }
        const auto t0 = Stopwatch::now_ns();
        const auto recs = engine.top_k(user, k);
        registry.observe("serve.topk_us",
                         static_cast<double>(Stopwatch::now_ns() - t0) /
                             1e3);
        for (const ScoredItem& item : recs) {
          std::printf("item %u\tscore %.4f\n", item.item,
                      static_cast<double>(item.score));
        }
        ++topk_count;
      } else if (verb == "rate") {
        Rating r{};
        fields >> r.u >> r.v >> r.r;
        CUMF_EXPECTS(!fields.fail(), "malformed rate request: " + line);
        const auto t0 = Stopwatch::now_ns();
        engine.observe(r);
        registry.observe("serve.fold_in_us",
                         static_cast<double>(Stopwatch::now_ns() - t0) /
                             1e3);
        std::fprintf(stderr, "fold-in u=%u v=%u ok (users now %u)\n", r.u,
                     r.v, engine.users());
        ++fold_count;
      } else {
        CUMF_EXPECTS(false, "unknown request verb: " + verb);
      }
    }

    const auto cache = engine.cache_stats();
    const auto solves = engine.solve_stats();
    std::fprintf(stderr,
                 "served %llu topk, %llu fold-ins | cache hits %llu misses "
                 "%llu evictions %llu | solver fallbacks: cg->lu %llu, "
                 "fp16->fp32 %llu, unsolvable %llu (of %llu systems)\n",
                 static_cast<unsigned long long>(topk_count),
                 static_cast<unsigned long long>(fold_count),
                 static_cast<unsigned long long>(cache.hits),
                 static_cast<unsigned long long>(cache.misses),
                 static_cast<unsigned long long>(cache.evictions),
                 static_cast<unsigned long long>(solves.cg_fallbacks),
                 static_cast<unsigned long long>(solves.fp16_fallbacks),
                 static_cast<unsigned long long>(solves.failures),
                 static_cast<unsigned long long>(solves.systems));
    for (const char* name : {"serve.topk_us", "serve.fold_in_us"}) {
      if (const prof::Histogram* h = registry.histogram(name)) {
        std::fprintf(stderr,
                     "%s: count %llu mean %.1f p50 %.0f p95 %.0f p99 %.0f\n",
                     name, static_cast<unsigned long long>(h->count()),
                     h->mean(), h->percentile(0.50), h->percentile(0.95),
                     h->percentile(0.99));
      }
    }
    if (!trace_path.empty() &&
        prof::Tracer::instance().write_chrome_trace(trace_path)) {
      std::fprintf(stderr, "trace written to %s\n", trace_path.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
