// Checked numeric parsing for the CLI tools.
//
// std::atoi/atof silently return 0 on garbage: `--epochs abc` used to train
// zero epochs and a negative `--fs` wrapped through static_cast to a huge
// truncation depth. Every flag value now requires a full-token in-range
// parse; anything else exits 2 naming the tool, the flag and the offending
// value (the same strictness PR 9 gave the model/checkpoint readers). The
// auto-tuner drives cumf_train programmatically, so a silently-zeroed flag
// would poison every sample it measures.
#pragma once

#include <charconv>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string_view>

namespace cumf::cli {

[[noreturn]] inline void bad_value(const char* tool, const char* flag,
                                   std::string_view value, const char* why) {
  std::fprintf(stderr, "%s: invalid value '%.*s' for %s (%s)\n", tool,
               static_cast<int>(value.size()), value.data(), flag, why);
  std::exit(2);
}

/// Signed integer in [lo, hi]; the whole token must parse.
inline std::int64_t parse_int(const char* tool, const char* flag,
                              std::string_view value, std::int64_t lo,
                              std::int64_t hi) {
  std::int64_t out = 0;
  const char* end = value.data() + value.size();
  const auto res = std::from_chars(value.data(), end, out);
  if (res.ec != std::errc{} || res.ptr != end || value.empty()) {
    bad_value(tool, flag, value, "expected an integer");
  }
  if (out < lo || out > hi) {
    bad_value(tool, flag, value, "out of range");
  }
  return out;
}

/// Unsigned integer in [lo, hi]. A leading '-' is rejected up front so
/// "-3" can't wrap to a huge value.
inline std::uint64_t parse_uint(const char* tool, const char* flag,
                                std::string_view value, std::uint64_t lo,
                                std::uint64_t hi) {
  if (!value.empty() && value.front() == '-') {
    bad_value(tool, flag, value, "expected a non-negative integer");
  }
  std::uint64_t out = 0;
  const char* end = value.data() + value.size();
  const auto res = std::from_chars(value.data(), end, out);
  if (res.ec != std::errc{} || res.ptr != end || value.empty()) {
    bad_value(tool, flag, value, "expected a non-negative integer");
  }
  if (out < lo || out > hi) {
    bad_value(tool, flag, value, "out of range");
  }
  return out;
}

/// Finite double in [lo, hi]; the whole token must parse.
inline double parse_double(const char* tool, const char* flag,
                           std::string_view value, double lo, double hi) {
  double out = 0;
  const char* end = value.data() + value.size();
  const auto res = std::from_chars(value.data(), end, out);
  if (res.ec != std::errc{} || res.ptr != end || value.empty()) {
    bad_value(tool, flag, value, "expected a number");
  }
  if (!(out >= lo && out <= hi)) {  // NaN fails both comparisons
    bad_value(tool, flag, value, "out of range");
  }
  return out;
}

}  // namespace cumf::cli
