// cuslint — static audit of every registered cusim kernel × launch config.
//
//   cuslint --all [--fixtures] [--json FILE] [--device NAME]
//
// Runs the full cuverify pass pipeline (bounds, racecheck, barrier,
// coalescing/bank prediction, occupancy) over the launch registry
// (analysis/cuverify/registry.hpp) with zero kernel execution — the tool
// prints the cusim launch-count delta to prove it. With --fixtures it also
// audits the shared buggy-kernel corpus and fails unless every planted bug
// is statically flagged, and it self-checks the FP16 range analysis on an
// overflow-inducing and a safe synthetic dataset.
//
// Exit codes follow the shared analysis/report.hpp convention:
//   0  audit ran, no error-severity findings (warnings allowed)
//   1  error findings on clean kernels, a missed fixture bug, a wrong FP16
//      verdict, or any kernel execution during the audit
//   2  usage error
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/cuverify/fp16range.hpp"
#include "analysis/cuverify/registry.hpp"
#include "analysis/cuverify/verify.hpp"
#include "analysis/fixtures.hpp"
#include "analysis/report.hpp"
#include "common/rng.hpp"
#include "cusim/cusim.hpp"
#include "gpusim/device.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"

using namespace cumf;
namespace cuv = analysis::cuverify;

namespace {

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: cuslint --all [--fixtures] [--json FILE]\n"
               "               [--device kepler_k40|maxwell_titan_x|"
               "pascal_p100|volta_v100]\n");
  std::exit(2);
}

gpusim::DeviceSpec parse_device(const std::string& name) {
  if (name == "kepler_k40") return gpusim::DeviceSpec::kepler_k40();
  if (name == "maxwell_titan_x") return gpusim::DeviceSpec::maxwell_titan_x();
  if (name == "pascal_p100") return gpusim::DeviceSpec::pascal_p100();
  if (name == "volta_v100") return gpusim::DeviceSpec::volta_v100();
  std::fprintf(stderr, "cuslint: unknown device '%s'\n", name.c_str());
  std::exit(2);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// Did the static report flag the fixture's planted bug (in the dynamic
/// checker's vocabulary)?
bool statically_flagged(const cuv::VerifyReport& report,
                        analysis::HazardKind kind) {
  switch (kind) {
    case analysis::HazardKind::WriteWrite:
    case analysis::HazardKind::ReadWrite:
      for (const auto& h : report.races.hazards) {
        if (h.kind == kind) return true;
      }
      return false;
    case analysis::HazardKind::OutOfBounds:
      return !report.bounds.violations.empty();
    case analysis::HazardKind::BarrierDivergence:
      return !report.barrier_hazards.empty();
    default:
      return false;
  }
}

/// Synthetic dataset with `rows` rows of ~`nnz_per_row` ratings bounded by
/// `rating_max` — the FP16 self-check presets.
CsrMatrix synthetic_ratings(index_t rows, index_t cols, index_t nnz_per_row,
                            double rating_max, std::uint64_t seed) {
  RatingsCoo coo(rows, cols);
  Rng rng(seed);
  for (index_t u = 0; u < rows; ++u) {
    for (index_t k = 0; k < nnz_per_row; ++k) {
      const auto v = static_cast<index_t>(rng.uniform() * cols) % cols;
      coo.add(u, v, static_cast<real_t>(rating_max * (0.5 + 0.5 * rng.uniform())));
    }
  }
  coo.sort_and_dedup();
  return CsrMatrix::from_coo(coo);
}

}  // namespace

int main(int argc, char** argv) {
  bool all = false;
  bool fixtures = false;
  std::string json_path;
  gpusim::DeviceSpec device = gpusim::DeviceSpec::maxwell_titan_x();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--all") {
      all = true;
    } else if (arg == "--fixtures") {
      fixtures = true;
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--device") {
      device = parse_device(next());
    } else {
      std::fprintf(stderr, "cuslint: unknown option '%s'\n", arg.c_str());
      usage();
    }
  }
  if (!all) {
    usage();
  }

  const std::uint64_t launches_before = cusim::launch_count();
  cuv::VerifyOptions options;
  options.device = device;

  std::size_t errors_total = 0;
  std::size_t warnings_total = 0;
  std::string json = "{\n  \"device\": \"" + json_escape(device.name) +
                     "\",\n  \"launches\": [";

  const auto launches = cuv::registered_launches();
  std::printf("cuslint: auditing %zu registered launches on %s\n\n",
              launches.size(), device.name.c_str());
  bool first = true;
  for (const auto& launch : launches) {
    const auto report = cuv::verify(launch.plan, options);
    const auto errors =
        analysis::count(report.findings, analysis::Severity::Error);
    const auto warnings =
        analysis::count(report.findings, analysis::Severity::Warning);
    errors_total += errors;
    warnings_total += warnings;
    std::printf("--- %s ---\n%s\n", launch.name.c_str(),
                report.summary().c_str());

    json += first ? "\n" : ",\n";
    first = false;
    json += "    {\"name\": \"" + json_escape(launch.name) +
            "\", \"kernel\": \"" + json_escape(report.kernel) +
            "\", \"clean\": " + (report.clean() ? "true" : "false") +
            ", \"errors\": " + std::to_string(errors) +
            ", \"warnings\": " + std::to_string(warnings) +
            ", \"occupancy\": " + std::to_string(report.occupancy.fraction) +
            ", \"coalesce_worst_lines\": " +
            std::to_string(report.coalesce.worst_lines) +
            ", \"bank_worst_way\": " +
            std::to_string(report.banks.worst_way) + ", \"findings\": [";
    bool ffirst = true;
    for (const auto& f : report.findings) {
      json += ffirst ? "" : ", ";
      ffirst = false;
      json += "{\"severity\": \"" + std::string(to_string(f.severity)) +
              "\", \"pass\": \"" + json_escape(f.pass) +
              "\", \"message\": \"" + json_escape(f.message) + "\"}";
    }
    json += "]}";
  }
  json += "\n  ]";

  std::size_t fixtures_missed = 0;
  if (fixtures) {
    json += ",\n  \"fixtures\": [";
    std::printf("--- buggy-fixture corpus (static detection, no execution) "
                "---\n");
    bool ffirst = true;
    for (const auto& fixture : analysis::fixtures::all_fixtures()) {
      const auto report = cuv::verify(fixture.plan(), options);
      const bool flagged = statically_flagged(report, fixture.expected);
      if (!flagged) {
        ++fixtures_missed;
      }
      std::printf("  %-20s expected %-22s %s\n", fixture.name,
                  to_string(fixture.expected),
                  flagged ? "FLAGGED" : "MISSED");
      json += ffirst ? "\n" : ",\n";
      ffirst = false;
      json += std::string("    {\"name\": \"") + fixture.name +
              "\", \"expected\": \"" + to_string(fixture.expected) +
              "\", \"flagged\": " + (flagged ? "true" : "false") + "}";
    }
    json += "\n  ]";

    // FP16 range self-check: an overflow-inducing dataset (huge ratings,
    // dense rows, small f) must predict unsafe; a rating-scale dataset must
    // predict safe.
    cuv::Fp16RangeOptions range;
    range.f = 8;
    range.lambda = 0.05;
    const auto overflow = cuv::analyze_fp16_range(
        synthetic_ratings(64, 64, 40, 3.0e4, 21), range);
    const auto safe = cuv::analyze_fp16_range(
        synthetic_ratings(64, 64, 20, 5.0, 22), range);
    std::printf("\n--- fp16 range self-check ---\n  overflow preset: "
                "predicted_fp16_safe=%s\n  safe preset:     "
                "predicted_fp16_safe=%s\n",
                overflow.predicted_fp16_safe ? "true" : "false",
                safe.predicted_fp16_safe ? "true" : "false");
    if (overflow.predicted_fp16_safe || !safe.predicted_fp16_safe) {
      std::fprintf(stderr, "cuslint: fp16 range self-check FAILED\n");
      ++fixtures_missed;
    }
    json += ",\n  \"fp16_self_check\": {\"overflow_predicted_safe\": " +
            std::string(overflow.predicted_fp16_safe ? "true" : "false") +
            ", \"safe_predicted_safe\": " +
            std::string(safe.predicted_fp16_safe ? "true" : "false") + "}";
  }

  const std::uint64_t executed = cusim::launch_count() - launches_before;
  json += ",\n  \"kernels_executed\": " + std::to_string(executed);
  json += ",\n  \"errors_total\": " + std::to_string(errors_total);
  json += ",\n  \"warnings_total\": " + std::to_string(warnings_total);
  json += ",\n  \"fixtures_missed\": " + std::to_string(fixtures_missed);
  json += "\n}\n";

  if (!json_path.empty()) {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cuslint: cannot write '%s'\n", json_path.c_str());
      return 1;
    }
    std::fputs(json.c_str(), out);
    std::fclose(out);
    std::printf("\njson report written to %s\n", json_path.c_str());
  }

  std::printf(
      "\ncuslint: %zu launches audited, %zu errors, %zu warnings, "
      "%llu kernels executed%s\n",
      launches.size(), errors_total, warnings_total,
      static_cast<unsigned long long>(executed),
      fixtures ? (fixtures_missed == 0 ? ", all fixture bugs flagged"
                                       : ", FIXTURE BUGS MISSED")
               : "");
  if (executed != 0) {
    std::fprintf(stderr,
                 "cuslint: BUG: %llu kernels were executed during a static "
                 "audit\n",
                 static_cast<unsigned long long>(executed));
    return 1;
  }
  return errors_total == 0 && fixtures_missed == 0 ? 0 : 1;
}
