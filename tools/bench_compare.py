#!/usr/bin/env python3
"""Compare or gate bench_hotpath JSON outputs.

Two modes:

Regression diff — compare a baseline run against a new run and fail when any
kernel's SIMD time regressed by more than --max-regress (fraction):

    bench_compare.py baseline.json new.json --max-regress 0.15

Speedup gate — assert a named entry of the "speedups" section meets a
minimum (used by the CI perf-smoke job):

    bench_compare.py --assert-speedup hermitian_f100 1.5 BENCH_hotpath.json

Exit code 0 on pass, 1 on any violation, 2 on usage/parse errors.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def simd_ns(path, kernels, name):
    """Positive simd_ns for one kernel, or exit 2 naming what's wrong.

    A baseline with a missing or zero-valued timing can't anchor a
    regression ratio; treating it as "no regression" (the old KeyError /
    ZeroDivisionError paths died with a traceback, or worse, a crafted zero
    baseline made every comparison pass) would let real slowdowns through.
    """
    entry = kernels[name]
    if "simd_ns" not in entry:
        print(
            f"bench_compare: kernel '{name}' in {path} has no 'simd_ns' "
            f"field (malformed bench output)",
            file=sys.stderr,
        )
        sys.exit(2)
    value = entry["simd_ns"]
    if not isinstance(value, (int, float)) or not value > 0:
        print(
            f"bench_compare: kernel '{name}' in {path} has non-positive "
            f"simd_ns {value!r} (a zero baseline would gate nothing)",
            file=sys.stderr,
        )
        sys.exit(2)
    return value


def diff(baseline_path, new_path, max_regress):
    base = load(baseline_path)
    new = load(new_path)
    base_kernels = base.get("kernels", {})
    new_kernels = new.get("kernels", {})
    failures = []
    missing = []
    print(f"{'kernel':32} {'base simd ns':>14} {'new simd ns':>14} {'delta':>8}")
    for name in sorted(base_kernels):
        b = simd_ns(baseline_path, base_kernels, name)
        if name not in new_kernels:
            # A kernel that vanished is a failed gate, not a skipped row: a
            # rename or a dropped bench would otherwise pass silently.
            print(f"{name:32} {'(missing in new run)':>38}  <-- MISSING")
            missing.append(name)
            continue
        n = simd_ns(new_path, new_kernels, name)
        delta = (n - b) / b
        flag = ""
        if delta > max_regress:
            flag = "  <-- REGRESSION"
            failures.append((name, delta))
        print(f"{name:32} {b:14.1f} {n:14.1f} {delta:+7.1%}{flag}")
    for name in sorted(set(new_kernels) - set(base_kernels)):
        print(f"{name:32} {'(new kernel)':>38}")
    if failures or missing:
        # One named-reason line per failing gate, with the baseline and
        # current values, so a CI log says what moved without re-running.
        for name in missing:
            print(
                f"FAIL[kernel-missing]: kernel '{name}' is in the baseline "
                f"but absent from {new_path}",
                file=sys.stderr,
            )
        for name, delta in failures:
            b = base_kernels[name]["simd_ns"]
            n = new_kernels[name]["simd_ns"]
            print(
                f"FAIL[simd-regression]: kernel '{name}' baseline "
                f"{b:.1f} ns -> current {n:.1f} ns ({delta:+.1%} exceeds "
                f"the {max_regress:.0%} threshold)",
                file=sys.stderr,
            )
        summary = []
        if failures:
            worst = max(failures, key=lambda f: f[1])
            summary.append(
                f"{len(failures)} kernel(s) regressed beyond "
                f"{max_regress:.0%} (worst: {worst[0]} {worst[1]:+.1%})"
            )
        if missing:
            summary.append(f"{len(missing)} kernel(s) missing from the new run")
        print(f"\nFAIL: {'; '.join(summary)}", file=sys.stderr)
        return 1
    print(f"\nOK: no kernel regressed beyond {max_regress:.0%}")
    return 0


def assert_speedup(name, minimum, path):
    data = load(path)
    speedups = data.get("speedups", {})
    if name not in speedups:
        print(
            f"bench_compare: no speedup entry '{name}' in {path} "
            f"(have: {', '.join(sorted(speedups))})",
            file=sys.stderr,
        )
        return 2
    actual = speedups[name]
    if actual < minimum:
        print(
            f"FAIL[speedup-below-floor]: '{name}' baseline floor "
            f"{minimum:.2f}x -> current {actual:.2f}x",
            file=sys.stderr,
        )
        print(
            f"FAIL: speedup '{name}' is {actual:.2f}x, below the "
            f"{minimum:.2f}x floor",
            file=sys.stderr,
        )
        return 1
    print(f"OK: speedup '{name}' is {actual:.2f}x (floor {minimum:.2f}x)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="*", help="baseline.json new.json")
    parser.add_argument(
        "--max-regress",
        type=float,
        default=0.15,
        help="allowed fractional slowdown per kernel (default 0.15)",
    )
    parser.add_argument(
        "--assert-speedup",
        nargs=3,
        metavar=("NAME", "MIN", "FILE"),
        help="gate mode: require speedups[NAME] >= MIN in FILE",
    )
    args = parser.parse_args()

    if args.assert_speedup:
        name, minimum, path = args.assert_speedup
        try:
            minimum = float(minimum)
        except ValueError:
            parser.error("--assert-speedup MIN must be a number")
        sys.exit(assert_speedup(name, minimum, path))

    if len(args.files) != 2:
        parser.error("diff mode needs exactly two files (baseline, new)")
    sys.exit(diff(args.files[0], args.files[1], args.max_regress))


if __name__ == "__main__":
    main()
