#!/usr/bin/env python3
"""cuscope cross-run differ: explain regressions in attribution terms.

Loads two telemetry JSONL files written by ``cumf_train --metrics``
(schema 2, with cuscope ``bottleneck`` records) — or two committed
``BENCH_*.json`` files with a ``speedups`` section — and reports what
changed between them, phrased in roofline-attribution terms rather than
raw seconds::

    cumf_report.py baseline.jsonl current.jsonl [--threshold 0.10]
                   [--epoch N] [--strict]

Per-phase findings are compared at the last shared epoch (or ``--epoch``).
Every finding carries a named reason:

  phase-regressed   a phase's wall grew beyond the threshold; the message
                    explains it with what moved (bound, arithmetic
                    intensity, pct-of-roof, L2 hit rate, CG iterations)
  phase-improved    the same, in the other direction
  bound-changed     a phase sits under a different roof now
  phase-added /     a phase exists in only one run (e.g. fp16_pack
  phase-removed     disappears when the solver is not cg16)
  rmse-regressed    test RMSE at the compared epoch got worse
  speedup-regressed a BENCH speedups entry dropped beyond the threshold

Exit codes (CI-friendly): 0 = no regressions (``--strict``: no findings at
all), 1 = regressions found (``--strict``: any finding), 2 = unreadable
input or schema validation failure. Diffing a run against itself always
exits 0.

No third-party dependencies — json only.
"""

import argparse
import json
import sys


def die(msg):
    print("cumf_report: %s" % msg, file=sys.stderr)
    sys.exit(2)


def load_file(path):
    """Returns ('metrics', records) or ('bench', doc)."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
    except OSError as e:
        die("cannot read %s: %s" % (path, e))
    stripped = text.lstrip()
    if not stripped:
        die("%s is empty" % path)
    if stripped.startswith("{") and "\n{" not in stripped.rstrip():
        # A single JSON object: a committed BENCH_*.json result file.
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as e:
            die("%s: not valid JSON (%s)" % (path, e))
        if "speedups" in doc:
            return "bench", doc
        # Fall through: a one-line JSONL file is also a single object.
    records = []
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as e:
            die("%s:%d: not valid JSON (%s)" % (path, lineno, e))
    return "metrics", records


def validate_metrics(records, path):
    """Schema gate: cuscope diffs need the schema-2 bottleneck records."""
    if not records or records[0].get("type") != "header":
        die("%s: first record is not a telemetry header" % path)
    schema = records[0].get("schema")
    if schema != 2:
        die("%s: schema %r, need schema 2 with bottleneck records "
            "(re-run cumf_train --metrics, or check with "
            "trace_report.py --check)" % (path, schema))
    if not any(r.get("type") == "bottleneck" for r in records):
        die("%s: no bottleneck records (schema 2 requires per-epoch "
            "verdicts)" % path)


class Finding:
    def __init__(self, reason, severity, message):
        self.reason = reason      # named reason tag for CI greps
        self.severity = severity  # 'regression' | 'improvement' | 'change'
        self.message = message


def epochs_of(records):
    return {r["epoch"]: r for r in records
            if r.get("type") == "epoch" and "epoch" in r}


def bottlenecks_at(records, epoch):
    return {r["phase"]: r for r in records
            if r.get("type") == "bottleneck" and r.get("epoch") == epoch
            and "phase" in r}


def rel_delta(a, b):
    if not isinstance(a, (int, float)) or not isinstance(b, (int, float)):
        return None
    if a == 0:
        return None if b == 0 else float("inf")
    return (b - a) / a


def explain_phase(phase, a, b, ea, eb):
    """Attribution clauses for one phase's delta, most telling first."""
    clauses = []
    if a.get("bound") != b.get("bound"):
        clauses.append("bound %s -> %s (%s)"
                       % (a.get("bound"), b.get("bound"), "the phase sits "
                          "under a different roof"))
    ai_a, ai_b = a.get("arithmetic_intensity"), b.get("arithmetic_intensity")
    d = rel_delta(ai_a, ai_b)
    if d is not None and abs(d) > 0.01:
        clauses.append("arithmetic intensity %.3g -> %.3g flop/B"
                       % (ai_a, ai_b))
    pct_a, pct_b = a.get("pct_of_roof"), b.get("pct_of_roof")
    if isinstance(pct_a, (int, float)) and isinstance(pct_b, (int, float)) \
            and abs(pct_b - pct_a) > 0.01:
        clauses.append("pct_of_roof %.0f%% -> %.0f%%"
                       % (pct_a * 100.0, pct_b * 100.0))
    if phase == "get_hermitian":
        ca = (ea or {}).get("sim_cache", {})
        cb = (eb or {}).get("sim_cache", {})
        for key, label in (("l2_hit_rate", "L2 hit rate"),
                           ("l1_hit_rate", "L1 hit rate")):
            va, vb = ca.get(key), cb.get(key)
            if isinstance(va, (int, float)) and isinstance(vb, (int, float)) \
                    and abs(vb - va) > 0.01:
                clauses.append("%s %.2f -> %.2f" % (label, va, vb))
    if phase == "solve":
        sa = (ea or {}).get("solver", {}).get("cg_iterations")
        sb = (eb or {}).get("solver", {}).get("cg_iterations")
        if isinstance(sa, (int, float)) and isinstance(sb, (int, float)) \
                and sa != sb:
            clauses.append("CG iterations %s -> %s" % (sa, sb))
    return clauses


def diff_metrics(a_records, b_records, a_path, b_path, threshold, epoch):
    validate_metrics(a_records, a_path)
    validate_metrics(b_records, b_path)
    a_epochs, b_epochs = epochs_of(a_records), epochs_of(b_records)
    shared = sorted(set(a_epochs) & set(b_epochs))
    if not shared:
        die("no shared epochs between %s and %s" % (a_path, b_path))
    if epoch is None:
        epoch = shared[-1]
    elif epoch not in shared:
        die("epoch %d not present in both files (shared: %s)"
            % (epoch, shared))
    print("comparing %s (baseline) vs %s (current) at epoch %d"
          % (a_path, b_path, epoch))
    a_sol = a_records[0].get("solver")
    b_sol = b_records[0].get("solver")
    if a_sol != b_sol:
        print("  (solver differs: %s vs %s)" % (a_sol, b_sol))

    findings = []
    a_bn = bottlenecks_at(a_records, epoch)
    b_bn = bottlenecks_at(b_records, epoch)
    ea, eb = a_epochs.get(epoch), b_epochs.get(epoch)

    for phase in sorted(set(a_bn) | set(b_bn)):
        a, b = a_bn.get(phase), b_bn.get(phase)
        if a is None:
            findings.append(Finding(
                "phase-added", "change",
                "%s appears only in the current run (%s-bound, %.4g s)"
                % (phase, b.get("bound"), b.get("wall_s", 0.0))))
            continue
        if b is None:
            findings.append(Finding(
                "phase-removed", "change",
                "%s appears only in the baseline run (%s-bound, %.4g s)"
                % (phase, a.get("bound"), a.get("wall_s", 0.0))))
            continue
        clauses = explain_phase(phase, a, b, ea, eb)
        d = rel_delta(a.get("wall_s"), b.get("wall_s"))
        if d is not None and abs(d) > threshold:
            severity = "regression" if d > 0 else "improvement"
            reason = "phase-regressed" if d > 0 else "phase-improved"
            msg = "%s %+.1f%% wall (%.4g s -> %.4g s)" % (
                phase, d * 100.0, a.get("wall_s"), b.get("wall_s"))
            if clauses:
                msg += ": " + "; ".join(clauses)
            findings.append(Finding(reason, severity, msg))
        elif a.get("bound") != b.get("bound"):
            findings.append(Finding(
                "bound-changed", "change",
                "%s moved from %s- to %s-bound (wall within threshold); %s"
                % (phase, a.get("bound"), b.get("bound"),
                   "; ".join(clauses))))

    rmse_a = (ea or {}).get("rmse")
    rmse_b = (eb or {}).get("rmse")
    d = rel_delta(rmse_a, rmse_b)
    if d is not None and d > threshold:
        findings.append(Finding(
            "rmse-regressed", "regression",
            "test RMSE %.5f -> %.5f (%+.1f%%) at epoch %d"
            % (rmse_a, rmse_b, d * 100.0, epoch)))
    return findings


def diff_bench(a_doc, b_doc, threshold):
    findings = []
    a_sp = a_doc.get("speedups", {})
    b_sp = b_doc.get("speedups", {})
    for name in sorted(set(a_sp) | set(b_sp)):
        if name not in b_sp:
            findings.append(Finding("phase-removed", "change",
                                    "speedup '%s' only in baseline" % name))
            continue
        if name not in a_sp:
            findings.append(Finding("phase-added", "change",
                                    "speedup '%s' only in current" % name))
            continue
        d = rel_delta(a_sp[name], b_sp[name])
        if d is not None and abs(d) > threshold:
            if d < 0:
                findings.append(Finding(
                    "speedup-regressed", "regression",
                    "speedup '%s' %.2fx -> %.2fx (%+.1f%%)"
                    % (name, a_sp[name], b_sp[name], d * 100.0)))
            else:
                findings.append(Finding(
                    "speedup-improved", "improvement",
                    "speedup '%s' %.2fx -> %.2fx (%+.1f%%)"
                    % (name, a_sp[name], b_sp[name], d * 100.0)))
    return findings


def main():
    parser = argparse.ArgumentParser(
        description="Diff two cumf telemetry (or BENCH) files and explain "
                    "regressions in roofline-attribution terms.")
    parser.add_argument("baseline", help="baseline metrics JSONL or BENCH "
                                         "JSON")
    parser.add_argument("current", help="current metrics JSONL or BENCH "
                                        "JSON")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="relative delta that counts as a finding "
                             "(default 0.10)")
    parser.add_argument("--epoch", type=int, default=None,
                        help="compare at this epoch (default: last shared)")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 on any finding, not just regressions")
    args = parser.parse_args()

    a_kind, a_payload = load_file(args.baseline)
    b_kind, b_payload = load_file(args.current)
    if a_kind != b_kind:
        die("cannot diff a %s file against a %s file" % (a_kind, b_kind))
    if a_kind == "bench":
        findings = diff_bench(a_payload, b_payload, args.threshold)
    else:
        findings = diff_metrics(a_payload, b_payload, args.baseline,
                                args.current, args.threshold, args.epoch)

    order = {"regression": 0, "change": 1, "improvement": 2}
    findings.sort(key=lambda f: order.get(f.severity, 3))
    for f in findings:
        print("  [%s] %s" % (f.reason, f.message))
    regressions = sum(1 for f in findings if f.severity == "regression")
    if not findings:
        print("no differences beyond the %.0f%% threshold; 0 regressions"
              % (args.threshold * 100.0))
    else:
        print("cumf_report: %d finding(s), %d regression(s)"
              % (len(findings), regressions))
    if regressions or (args.strict and findings):
        sys.exit(1)
    sys.exit(0)


if __name__ == "__main__":
    main()
