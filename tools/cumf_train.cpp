// cumf_train — command-line trainer in the spirit of LIBMF's `mf-train`.
//
//   cumf_train train   <ratings> <model-out> [options]
//   cumf_train predict <model> <pairs> [--out file]
//   cumf_train recommend <model> <ratings> <user> [-k N]
//
// Options for `train`:
//   -f N           latent dimension (default 32)
//   -l X           lambda, ALS-WR weighted regularization (default 0.05)
//   -t N           epochs (default 10)
//   --solver S     lu | cholesky | cg | cg16 | pcg   (default cg16)
//   --fs N         CG truncation (default 6)
//   --workers N    host threads (default 1)
//   --implicit A   treat input as implicit with confidence alpha = A
//   --movielens    input uses the u::v::r::ts format (1-based ids)
//   --test FRAC    hold out FRAC for test RMSE reporting (default 0.1)
//   --cucheck      run one compute-sanitizer-style checked iteration
//                  (racecheck + memcheck + coalescing lint) before training;
//                  aborts if the training kernels show hazards
//
// Input files: triplet "u v r" lines by default (LIBMF/NOMAD format).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "analysis/precheck.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "data/loaders.hpp"
#include "data/model_io.hpp"
#include "metrics/ranking.hpp"
#include "metrics/rmse.hpp"
#include "mllib/als.hpp"
#include "sparse/split.hpp"

using namespace cumf;

namespace {

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  cumf_train train <ratings> <model-out> [-f N] [-l X] "
               "[-t N]\n"
               "             [--solver lu|cholesky|cg|cg16|pcg] [--fs N]\n"
               "             [--workers N] [--implicit ALPHA] [--movielens]\n"
               "             [--test FRAC] [--cucheck]\n"
               "  cumf_train predict <model> <pairs> \n"
               "  cumf_train recommend <model> <ratings> <user> [-k N]\n");
  std::exit(2);
}

SolverKind parse_solver(const std::string& name) {
  if (name == "lu") return SolverKind::LuFp32;
  if (name == "cholesky") return SolverKind::CholeskyFp32;
  if (name == "cg") return SolverKind::CgFp32;
  if (name == "cg16") return SolverKind::CgFp16;
  if (name == "pcg") return SolverKind::PcgFp32;
  std::fprintf(stderr, "unknown solver '%s'\n", name.c_str());
  std::exit(2);
}

int cmd_train(int argc, char** argv) {
  if (argc < 4) {
    usage();
  }
  const std::string ratings_path = argv[2];
  const std::string model_path = argv[3];
  int f = 32;
  double lambda = 0.05;
  int epochs = 10;
  SolverKind solver = SolverKind::CgFp16;
  std::uint32_t fs = 6;
  int workers = 1;
  std::optional<double> implicit_alpha;
  LoaderOptions loader;
  double test_fraction = 0.1;
  bool cucheck = false;

  for (int i = 4; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
      }
      return argv[++i];
    };
    if (arg == "-f") {
      f = std::atoi(next());
    } else if (arg == "-l") {
      lambda = std::atof(next());
    } else if (arg == "-t") {
      epochs = std::atoi(next());
    } else if (arg == "--solver") {
      solver = parse_solver(next());
    } else if (arg == "--fs") {
      fs = static_cast<std::uint32_t>(std::atoi(next()));
    } else if (arg == "--workers") {
      workers = std::atoi(next());
    } else if (arg == "--implicit") {
      implicit_alpha = std::atof(next());
    } else if (arg == "--movielens") {
      loader.format = RatingsFormat::MovieLens;
      loader.one_based = true;
    } else if (arg == "--test") {
      test_fraction = std::atof(next());
    } else if (arg == "--cucheck") {
      cucheck = true;
    } else {
      usage();
    }
  }

  std::printf("loading %s...\n", ratings_path.c_str());
  const auto ratings = load_ratings_file(ratings_path, loader);
  std::printf("  %u x %u, %llu ratings\n", ratings.rows(), ratings.cols(),
              static_cast<unsigned long long>(ratings.nnz()));

  Rng rng(1);
  const auto split = test_fraction > 0
                         ? split_holdout(ratings, test_fraction, rng)
                         : TrainTestSplit{ratings, RatingsCoo(
                                                       ratings.rows(),
                                                       ratings.cols())};

  if (cucheck) {
    // cucheck_report mode: one checked iteration of the device kernels over
    // a prefix of the training data before committing to the real run.
    std::printf("cucheck: running one checked iteration...\n");
    auto train_sorted = split.train;
    train_sorted.sort_and_dedup();
    const auto csr = CsrMatrix::from_coo(train_sorted);
    Matrix theta0(csr.cols(), static_cast<std::size_t>(f));
    Rng theta_rng(2);
    for (auto& v : theta0.data()) {
      v = static_cast<real_t>(theta_rng.normal(0.0, 0.1));
    }
    analysis::PrecheckConfig precheck;
    precheck.lambda = static_cast<real_t>(lambda);
    precheck.fs = fs;
    const auto verdict = analysis::run_precheck(csr, theta0, precheck);
    std::printf("%s", verdict.summary().c_str());
    if (!verdict.clean()) {
      std::fprintf(stderr,
                   "cucheck: hazards detected in the training kernels; "
                   "refusing to train\n");
      return 1;
    }
  }

  auto als = mllib::Als()
                 .set_rank(f)
                 .set_reg_param(lambda)
                 .set_max_iter(epochs)
                 .set_num_blocks(workers)
                 .set_solver(solver, fs);
  if (implicit_alpha) {
    als.set_implicit_prefs(true).set_alpha(*implicit_alpha);
  }

  Stopwatch sw;
  const auto model = als.fit(split.train);
  std::printf("trained %d epochs (f=%d, %s) in %.2f s\n", epochs, f,
              to_string(solver), sw.seconds());
  if (split.test.nnz() > 0 && !implicit_alpha) {
    std::printf("test RMSE: %.4f\n",
                rmse(split.test, model.user_factors(),
                     model.item_factors()));
  }
  write_model_file(model_path,
                   FactorModel{model.user_factors(), model.item_factors()});
  std::printf("model written to %s\n", model_path.c_str());
  return 0;
}

int cmd_predict(int argc, char** argv) {
  if (argc < 4) {
    usage();
  }
  const auto model = read_model_file(argv[2]);
  const auto pairs = load_ratings_file(argv[3], LoaderOptions{});
  for (const Rating& e : pairs.entries()) {
    CUMF_EXPECTS(e.u < model.x.rows() && e.v < model.theta.rows(),
                 "pair outside the model's shape");
    std::printf("%u %u %.4f\n", e.u, e.v,
                static_cast<double>(
                    dot(model.x.row(e.u), model.theta.row(e.v))));
  }
  return 0;
}

int cmd_recommend(int argc, char** argv) {
  if (argc < 5) {
    usage();
  }
  const auto model = read_model_file(argv[2]);
  auto ratings = load_ratings_file(argv[3], LoaderOptions{});
  const auto user = static_cast<index_t>(std::atoi(argv[4]));
  std::size_t k = 10;
  for (int i = 5; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], "-k") == 0) {
      k = static_cast<std::size_t>(std::atoi(argv[i + 1]));
    }
  }
  ratings.sort_and_dedup();
  const auto seen = CsrMatrix::from_coo(ratings);
  CUMF_EXPECTS(user < seen.rows(), "user outside the dataset");
  for (const auto& item :
       recommend_top_k(model.x, model.theta, seen, user, k)) {
    std::printf("item %u\tscore %.4f\n", item.item,
                static_cast<double>(item.score));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
  }
  const std::string command = argv[1];
  try {
    if (command == "train") {
      return cmd_train(argc, argv);
    }
    if (command == "predict") {
      return cmd_predict(argc, argv);
    }
    if (command == "recommend") {
      return cmd_recommend(argc, argv);
    }
    usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
