// cumf_train — command-line trainer in the spirit of LIBMF's `mf-train`.
//
//   cumf_train train   <ratings> <model-out> [options]
//   cumf_train predict <model> <pairs> [--out file]
//   cumf_train recommend <model> <ratings> <user> [-k N]
//
// Options for `train`:
//   -f N           latent dimension (default 32)
//   -l X           lambda, ALS-WR weighted regularization (default 0.05)
//   -t N           epochs (default 10)
//   --solver S     lu | cholesky | cg | cg16 | pcg   (default cg16)
//   --fs N         CG truncation (default 6)
//   --tile N       hermitian register-tile width (default 10, snapped to
//                  the largest divisor of f)
//   --bin N        hermitian BIN batching factor (default 32)
//   --schedule S   worker schedule: static | nnz (default nnz)
//   --auto-tune P  load a cumf_tune config (a file, or a directory keyed by
//                  device x dataset fingerprint) and apply its knobs; flags
//                  given explicitly on the command line win over the tuned
//                  values. A config for a different device/dataset/f/lambda
//                  is a hard error naming the mismatch.
//   --workers N    host threads (default 1)
//   --gpus N       train on N simulated devices (MultiGpuAls): nnz-balanced
//                  row shards run concurrently, one solver+workspace per
//                  device; factors are bit-identical to the single-engine
//                  run. Adds the modeled multi-device timeline (compute,
//                  all-gather, scaling efficiency) to --metrics records.
//   --link L       interconnect for the multi-GPU / out-of-core transfer
//                  model: pcie3 | nvlink (default nvlink)
//   --shards DIR   train out-of-core from a shard store built by
//                  `cumf_shard build` (also auto-detected when <ratings>
//                  is a directory containing shard-meta.bin). The ratings
//                  stream through a bounded tile cache; factors are
//                  bit-identical to the in-core run of the same seed/split.
//                  Requires --host-mem; incompatible with --implicit,
//                  --gpus, --cucheck and --cuverify (those need the full
//                  matrix in memory).
//   --host-mem S   hard host budget for cached tiles (e.g. 64M, 2G); must
//                  admit the largest tile
//   --device-mem S modeled device memory; overlap needs room to
//                  double-buffer the two largest tiles (0 = unconstrained)
//   --no-overlap   disable tile prefetch (the no-overlap ablation the
//                  bench gate compares against)
//   --implicit A   treat input as implicit with confidence alpha = A
//   --movielens    input uses the u::v::r::ts format (1-based ids)
//   --test FRAC    hold out FRAC for test RMSE reporting (default 0.1)
//   --seed N       RNG seed for the holdout split and factor init (default 1)
//   --cucheck      run one compute-sanitizer-style checked iteration
//                  (racecheck + memcheck + coalescing lint) before training;
//                  aborts if the training kernels show hazards
//   --cuverify     static pregate: prove the training kernels' access plans
//                  (bounds, races, barriers, coalescing/bank shape,
//                  occupancy) and predict FP16 pack safety for this dataset
//                  — zero kernel execution; aborts on error findings
//   --trace F      write a Chrome trace-event JSON of the run to F
//                  (load it in chrome://tracing or ui.perfetto.dev)
//   --metrics F    append per-epoch telemetry JSONL to F (schema 2: RMSE,
//                  phase seconds, CG iteration histogram, FP16 pack volume,
//                  simulated cache hit rates, plus one cuscope bottleneck
//                  verdict per phase); tools/trace_report.py summarizes and
//                  validates it, tools/cumf_report.py diffs two runs
//   --prof-summary print a per-span timing table (count/mean/p50/p95),
//                  engine phase seconds and the cuscope roofline
//                  attribution table after training
//   --checkpoint DIR       write a crash-safe checkpoint (CRC-framed binary,
//                          atomic rename) into DIR during training
//   --checkpoint-every N   checkpoint every N epochs (default 1)
//   --resume               continue from the newest valid checkpoint in the
//                          --checkpoint directory; a rejected checkpoint
//                          (bad magic/CRC/version, wrong run) is a hard
//                          error naming the file and the reason
//
// Fault-injection hooks (deterministic, for robustness testing — see
// docs/robustness.md):
//   --inject-seed N            seed for the per-row fault decisions
//   --inject-nan-a P           P(NaN into a system's A) per row update
//   --inject-inf-b P           P(+inf into a system's b)
//   --inject-indefinite-a P    P(flip an A diagonal negative; CG breaks
//                              down, exact LU still solves it)
//   --inject-fp16-overflow P   P(inflate an A diagonal past FP16 range;
//                              the cg16 solver must retry in FP32)
//   --crash-after-epoch N      _Exit(42) right after epoch N's checkpoint
//                              is durable (simulated crash for resume tests)
//
// Input files: triplet "u v r" lines by default (LIBMF/NOMAD format).
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <limits>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

#include "analysis/cuverify/fp16range.hpp"
#include "analysis/cuverify/verify.hpp"
#include "analysis/faultinject.hpp"
#include "analysis/precheck.hpp"
#include "cusim/kernels.hpp"
#include "gpusim/occupancy.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "core/als.hpp"
#include "core/kernel_stats.hpp"
#include "core/multi_gpu.hpp"
#include "core/ooc_als.hpp"
#include "data/checkpoint.hpp"
#include "data/shards.hpp"
#include "data/loaders.hpp"
#include "data/model_io.hpp"
#include "gpusim/device.hpp"
#include "metrics/convergence.hpp"
#include "metrics/ranking.hpp"
#include "metrics/rmse.hpp"
#include "metrics/roofline.hpp"
#include "mllib/als.hpp"
#include "prof/bottleneck.hpp"
#include "prof/prof.hpp"
#include "prof/telemetry.hpp"
#include "sparse/split.hpp"
#include "tune/tune.hpp"

#include "cli_parse.hpp"

using namespace cumf;

namespace {

constexpr const char* kTool = "cumf_train";

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  cumf_train train <ratings> <model-out> [-f N] [-l X] "
               "[-t N | --epochs N]\n"
               "             [--solver lu|cholesky|cg|cg16|pcg] [--fs N]\n"
               "             [--tile N] [--bin N] [--schedule static|nnz]\n"
               "             [--auto-tune FILE|DIR]\n"
               "             [--workers N] [--gpus N] [--link pcie3|nvlink]\n"
               "             [--shards DIR] [--host-mem SIZE] "
               "[--device-mem SIZE]\n"
               "             [--no-overlap]\n"
               "             [--implicit ALPHA] [--movielens]\n"
               "             [--test FRAC] [--seed N] [--cucheck] "
               "[--cuverify]\n"
               "             [--trace FILE] [--metrics FILE] "
               "[--prof-summary]\n"
               "             [--checkpoint DIR] [--checkpoint-every N] "
               "[--resume]\n"
               "             [--inject-seed N] [--inject-nan-a P] "
               "[--inject-inf-b P]\n"
               "             [--inject-indefinite-a P] "
               "[--inject-fp16-overflow P]\n"
               "             [--crash-after-epoch N]\n"
               "  cumf_train predict <model> <pairs> \n"
               "  cumf_train recommend <model> <ratings> <user> [-k N]\n");
  std::exit(2);
}

/// "512M" / "2G" / "65536" → bytes (suffixes are binary: K=2^10 …).
std::uint64_t parse_mem_size(const std::string& text) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  std::uint64_t scale = 1;
  if (end != nullptr && *end != '\0') {
    switch (*end) {
      case 'k': case 'K': scale = 1ull << 10; break;
      case 'm': case 'M': scale = 1ull << 20; break;
      case 'g': case 'G': scale = 1ull << 30; break;
      default:
        std::fprintf(stderr, "cumf_train: bad memory size '%s'\n",
                     text.c_str());
        std::exit(2);
    }
  }
  if (value < 0 || end == text.c_str()) {
    std::fprintf(stderr, "cumf_train: bad memory size '%s'\n", text.c_str());
    std::exit(2);
  }
  return static_cast<std::uint64_t>(value * static_cast<double>(scale));
}

SolverKind parse_solver(const std::string& name) {
  if (name == "lu") return SolverKind::LuFp32;
  if (name == "cholesky") return SolverKind::CholeskyFp32;
  if (name == "cg") return SolverKind::CgFp32;
  if (name == "cg16") return SolverKind::CgFp16;
  if (name == "pcg") return SolverKind::PcgFp32;
  std::fprintf(stderr, "unknown solver '%s'\n", name.c_str());
  std::exit(2);
}

/// Everything the explicit training loop needs besides the engine and the
/// data. One struct so the loop can be a template over the engine type.
struct ExplicitConfig {
  std::string ratings_path;
  std::string metrics_path;
  std::string checkpoint_dir;
  int f = 32;
  double lambda = 0.05;
  int epochs = 10;
  SolverKind solver = SolverKind::CgFp16;
  std::uint32_t fs = 6;
  int tile = 10;  ///< hermitian register tile (snapped via pick_tile)
  int bin = 32;   ///< hermitian BIN batching factor
  AlsSchedule schedule = AlsSchedule::nnz_guided;
  int workers = 1;
  int gpus = 0;  ///< 0 = single-engine path (no --gpus given)
  std::string link_name = "nvlink";
  std::uint64_t seed = 1;
  int checkpoint_every = 1;
  bool resume = false;
  /// Static FP16 range verdict for this dataset (cuverify); recorded in the
  /// --metrics header so post-hoc analysis can compare the prediction
  /// against the observed per-epoch fp16_fallbacks.
  bool predicted_fp16_safe = true;
  /// Training-set nnz for the telemetry header, the checkpoint fingerprint
  /// and the cache-sim shape. Equal to split.train.nnz() on the in-core
  /// paths; the out-of-core path keeps split.train as an empty shell (the
  /// whole point is not materializing it), so the count comes from the
  /// shard meta instead.
  std::uint64_t train_nnz = 0;
  /// Out-of-core streaming (--shards): shard directory + budgets.
  std::string shard_dir;
  std::uint64_t host_mem = 0;
  std::uint64_t device_mem = 0;
  bool ooc_overlap = true;
  /// --prof-summary wants the roofline verdicts even without --metrics.
  bool prof_summary = false;
  /// JSON payload of the applied --auto-tune config, embedded verbatim in
  /// the --metrics header so a run records what tuned it. Empty = untuned.
  std::string tuned_json;
};

/// What run_explicit leaves behind for cmd_train's --prof-summary output:
/// the last epoch's cuscope roofline verdicts plus the engine-level phase
/// seconds (OOC stall/load/compute, multi-GPU compute/comm) so one summary
/// reads uniformly across engines.
struct RunSummary {
  std::string roof_device;
  std::vector<prof::Verdict> verdicts;
  struct EnginePhase {
    std::string name;
    double seconds = 0;
    double pct = 0;  ///< percent of the engine's epoch wall
  };
  std::vector<EnginePhase> engine_phases;
};

/// The explicit-ALS epoch loop, templated over the engine so AlsEngine and
/// MultiGpuAls share one implementation of resume, telemetry, checkpointing
/// and fault-crash handling. Both engines expose the same surface
/// (run_epoch / restore / solve_stats / factors / per-epoch ops), and their
/// results are bit-identical, so everything but the multi-GPU timeline
/// model is engine-agnostic.
template <class Engine>
int run_explicit(Engine& engine, const ExplicitConfig& cfg,
                 const RatingsCoo& ratings, const TrainTestSplit& split,
                 Rng& rng, FactorModel& model, SolveStats& final_stats,
                 RunSummary& summary) {
  constexpr bool kMultiGpu = std::is_same_v<Engine, MultiGpuAls>;
  constexpr bool kOoc = std::is_same_v<Engine, OocAlsEngine>;
  Stopwatch sw;

  // Resume: load and validate the newest checkpoint before training (and
  // before the telemetry header, which records the resume point). A file
  // that fails any structural check — magic, version, length, CRC — or
  // that belongs to a different run configuration is a hard error naming
  // the file and the reason; silently starting over would mask corruption.
  // The checkpoint does not record a device count: factors are
  // bit-identical across --gpus values, so a snapshot from a single-GPU
  // run resumes exactly on four devices and vice versa.
  std::optional<TrainCheckpoint> resumed;
  if (cfg.resume) {
    const auto latest = latest_checkpoint(cfg.checkpoint_dir);
    if (!latest) {
      std::printf("resume: no checkpoint in %s, starting fresh\n",
                  cfg.checkpoint_dir.c_str());
    } else {
      try {
        TrainCheckpoint ckpt = read_checkpoint_file(*latest);
        std::string why;
        if (ckpt.f != static_cast<std::uint64_t>(cfg.f)) {
          why = "latent dimension differs";
        } else if (ckpt.solver_kind !=
                   static_cast<std::uint32_t>(cfg.solver)) {
          why = "solver differs";
        } else if (ckpt.cg_fs != cfg.fs) {
          why = "CG truncation differs";
        } else if (ckpt.lambda != static_cast<float>(cfg.lambda)) {
          why = "lambda differs";
        } else if (ckpt.seed != cfg.seed) {
          why = "seed differs";
        } else if (ckpt.rows != ratings.rows() ||
                   ckpt.cols != ratings.cols() ||
                   ckpt.train_nnz != cfg.train_nnz) {
          why = "dataset shape differs";
        } else if (!(ckpt.rng == rng.state())) {
          why = "holdout-split RNG state differs";
        }
        if (!why.empty()) {
          throw CheckpointError(CkptReject::mismatch, why);
        }
        resumed = std::move(ckpt);
      } catch (const CheckpointError& e) {
        std::fprintf(stderr, "cumf_train: rejected checkpoint '%s': %s\n",
                     latest->c_str(), e.what());
        return 1;
      }
      std::printf("resumed from %s (after epoch %u, %.2f s trained)\n",
                  latest->c_str(), resumed->epoch, resumed->train_seconds);
    }
  }
  if (!cfg.checkpoint_dir.empty()) {
    std::filesystem::create_directories(cfg.checkpoint_dir);
  }

  // Modeled multi-device timeline: cost-model compute per shard plus the
  // ring all-gather over the chosen link, with pipelined overlap. The
  // kernels (and therefore the model) are epoch-invariant, so evaluate
  // once and surface the same numbers in every epoch record.
  MultiGpuScaling scaling;
  [[maybe_unused]] MultiGpuTimeline mgpu_timeline;
  const auto mgpu_dev = gpusim::DeviceSpec::pascal_p100();
  if constexpr (kMultiGpu) {
    const gpusim::LinkSpec link = gpusim::link_by_name(cfg.link_name);
    AlsKernelConfig kc;
    kc.f = cfg.f;
    kc.tile = pick_tile(static_cast<std::size_t>(cfg.f), cfg.tile);
    kc.bin = cfg.bin;
    kc.solver = cfg.solver;
    kc.cg_fs = cfg.fs;
    scaling = engine.scaling_report(mgpu_dev, kc, link);
    mgpu_timeline = engine.epoch_timeline(mgpu_dev, kc, link);
    std::printf(
        "multi-GPU model (%d x %s on %s): epoch %.3f s vs %.3f s on one "
        "device — speedup %.2fx, efficiency %.0f%%, comm %.1f%%\n",
        engine.gpus(), link.name.c_str(), mgpu_dev.name.c_str(),
        scaling.total_s, scaling.single_gpu_s, scaling.speedup,
        scaling.efficiency * 100.0, scaling.comm_fraction * 100.0);
  }

  // Modeled streamed-epoch timeline: per-tile transfers over the chosen
  // link pipelined against per-tile compute. Like the multi-GPU model this
  // is epoch-invariant, so evaluate once.
  [[maybe_unused]] OocTimeline ooc_timeline;
  if constexpr (kOoc) {
    const gpusim::LinkSpec link = gpusim::link_by_name(cfg.link_name);
    AlsKernelConfig kc;
    kc.f = cfg.f;
    kc.tile = pick_tile(static_cast<std::size_t>(cfg.f), cfg.tile);
    kc.bin = cfg.bin;
    kc.solver = cfg.solver;
    kc.cg_fs = cfg.fs;
    ooc_timeline = engine.epoch_timeline(mgpu_dev, kc, link,
                                         engine.overlap_active());
    std::printf(
        "out-of-core model (%zu+%zu tiles over %s on %s): epoch %.3f s "
        "(serial %.3f s, overlap gain %.2fx)%s\n",
        engine.meta().row_tiles.size(), engine.meta().col_tiles.size(),
        link.name.c_str(), mgpu_dev.name.c_str(), ooc_timeline.pipelined_s,
        ooc_timeline.serial_s, ooc_timeline.overlap_gain,
        engine.overlap_active() ? "" : " [overlap disabled]");
  }

  prof::TelemetryWriter telemetry;
  gpusim::TraceStats cache_sim;
  const bool have_test = split.test.nnz() > 0;
  // The modeled device, kernel config and shape feed both the telemetry
  // (cache sim, header) and the cuscope roofline verdicts, which
  // --prof-summary wants even without --metrics.
  const auto dev = gpusim::DeviceSpec::maxwell_titan_x();
  AlsKernelConfig kc;
  kc.f = cfg.f;
  kc.tile = pick_tile(static_cast<std::size_t>(cfg.f), cfg.tile);
  kc.bin = cfg.bin;
  kc.solver = cfg.solver;
  kc.cg_fs = cfg.fs;
  const UpdateShape shape{static_cast<double>(ratings.rows()),
                          static_cast<double>(ratings.cols()),
                          static_cast<double>(cfg.train_nnz)};
  if (!cfg.metrics_path.empty()) {
    if (!telemetry.open(cfg.metrics_path)) {
      std::fprintf(stderr, "cumf_train: cannot open '%s' for telemetry\n",
                   cfg.metrics_path.c_str());
      return 1;
    }
    prof::JsonObject header;
    header.set("type", "header").set("schema", 2);
    header.set("dataset", cfg.ratings_path);
    header.set("rows", static_cast<std::uint64_t>(ratings.rows()));
    header.set("cols", static_cast<std::uint64_t>(ratings.cols()));
    header.set("train_nnz", cfg.train_nnz);
    header.set("test_nnz", static_cast<std::uint64_t>(split.test.nnz()));
    header.set("f", cfg.f).set("lambda", cfg.lambda);
    header.set("solver", to_string(cfg.solver));
    header.set("predicted_fp16_safe", cfg.predicted_fp16_safe);
    header.set("fs", static_cast<std::uint64_t>(cfg.fs));
    header.set("tile", kc.tile).set("bin", kc.bin);
    header.set("schedule", to_string(cfg.schedule));
    header.set("workers", cfg.workers).set("epochs", cfg.epochs);
    header.set("seed", cfg.seed);
    if (!cfg.tuned_json.empty()) {
      header.set_raw("auto_tune", cfg.tuned_json);
    }
    header.set("sim_device", dev.name);
    // Schema 2: the device peaks the bottleneck verdicts were classified
    // against, so cumf_report.py can diff runs in attribution terms.
    prof::JsonObject roof;
    roof.set("device", dev.name);
    roof.set("peak_flops", dev.peak_flops);
    roof.set("dram_bw", dev.dram_bw);
    roof.set("l2_bw", dev.l2_bw);
    roof.set("compute_efficiency", dev.compute_efficiency);
    roof.set("memcpy_efficiency", dev.memcpy_efficiency);
    header.set_raw("roof", roof.str());
    // Analytic Table-I complexities at this run's shape: the reference
    // line next to the measured per-epoch intensities.
    const bool cg_like = cfg.solver == SolverKind::CgFp32 ||
                         cfg.solver == SolverKind::CgFp16 ||
                         cfg.solver == SolverKind::PcgFp32;
    const AlsComplexity cx =
        cg_like ? als_complexity_cg(shape.nnz, shape.rows, shape.cols,
                                    cfg.f, static_cast<int>(cfg.fs))
                : als_complexity(shape.nnz, shape.rows, shape.cols, cfg.f);
    prof::JsonObject mdl;
    mdl.set("hermitian_flops", cx.hermitian_compute);
    mdl.set("hermitian_bytes", cx.hermitian_memory);
    mdl.set("solve_flops", cx.solve_compute);
    mdl.set("solve_bytes", cx.solve_memory);
    header.set_raw("model", mdl.str());
    if constexpr (kMultiGpu) {
      header.set("gpus", engine.gpus());
      header.set("link", cfg.link_name);
      header.set("mgpu_sim_device", mgpu_dev.name);
      // Per-device modeled compute (update-X + update-Θ shards summed):
      // the raggedness here is the nnz balance the sharding achieved.
      std::vector<double> per_device(mgpu_timeline.update_x.device_compute_s);
      for (std::size_t d = 0; d < per_device.size(); ++d) {
        per_device[d] += mgpu_timeline.update_theta.device_compute_s[d];
      }
      header.set_array("mgpu_device_compute_s", per_device);
    }
    if constexpr (kOoc) {
      header.set("mode", "ooc");
      header.set("shards", cfg.shard_dir);
      header.set("link", cfg.link_name);
      header.set("host_mem_bytes", cfg.host_mem);
      header.set("device_mem_bytes", cfg.device_mem);
      header.set("overlap", engine.overlap_active());
      header.set("row_tiles",
                 static_cast<std::uint64_t>(engine.meta().row_tiles.size()));
      header.set("col_tiles",
                 static_cast<std::uint64_t>(engine.meta().col_tiles.size()));
    }
    if (resumed) {
      header.set("resumed_from_epoch",
                 static_cast<std::uint64_t>(resumed->epoch));
    }
    // The cache-model numbers come from gpusim's trace-driven simulation
    // of get_hermitian's load phase on the paper's Maxwell device. The
    // kernel (and thus the hit profile) is epoch-invariant, so simulate
    // once up front.
    if (cfg.train_nnz > 0) {
      cache_sim = hermitian_load_stats(dev, shape, kc,
                                       /*sample_rows=*/nullptr);
    }
    telemetry.write(header);
  }

  // cuscope: the roof components of the modeled kernel phases are
  // epoch-invariant, so evaluate both half-sweeps once; arithmetic
  // intensity and the fp16/multi-GPU/OOC phases vary per epoch and are
  // filled inside the loop.
  const bool want_verdicts =
      (telemetry.is_open() || cfg.prof_summary) && cfg.train_nnz > 0;
  prof::PhaseSample herm_base;
  prof::PhaseSample solve_base;
  if (want_verdicts) {
    const UpdateShape x_shape{shape.rows, shape.cols, shape.nnz};
    const UpdateShape t_shape{shape.cols, shape.rows, shape.nnz};
    const UpdatePhaseTimes tx = update_phase_times(dev, x_shape, kc);
    const UpdatePhaseTimes tt = update_phase_times(dev, t_shape, kc);
    herm_base.phase = prof::kPhaseHermitian;
    for (const gpusim::KernelTime* t :
         {&tx.load, &tx.compute, &tx.write, &tt.load, &tt.compute,
          &tt.write}) {
      prof::add_kernel_time(herm_base, *t);
    }
    // The kernel double-buffers the shared-memory staging, so the phase
    // wall is max(load, compute) + write per sweep, not the accumulated
    // sum of kernel seconds.
    herm_base.wall_s = tx.hermitian_seconds() + tt.hermitian_seconds();
    solve_base.phase = prof::kPhaseSolve;
    prof::add_kernel_time(solve_base, tx.solve);
    prof::add_kernel_time(solve_base, tt.solve);
  }

  ConvergenceTracker tracker;
  std::vector<prof::Verdict> last_verdicts;
  SolveStats prev_stats;
  double final_rmse = std::numeric_limits<double>::quiet_NaN();
  double time_offset = 0.0;
  int start_epoch = 0;
  if (resumed) {
    engine.restore(resumed->x, resumed->theta,
                   static_cast<int>(resumed->epoch), resumed->solve_stats);
    for (const ConvergenceTracker::Point& p : resumed->curve) {
      tracker.record(p.seconds, p.rmse, p.epoch);
    }
    if (!resumed->curve.empty()) {
      final_rmse = resumed->curve.back().rmse;
    }
    prev_stats = resumed->solve_stats;
    time_offset = resumed->train_seconds;
    start_epoch = static_cast<int>(resumed->epoch);
    sw.reset();  // the offset already covers pre-crash wall time
  }
  for (int epoch = start_epoch + 1; epoch <= cfg.epochs; ++epoch) {
    engine.run_epoch();
    const double epoch_s = sw.lap();

    double eval_s = 0.0;
    if (have_test) {
      const std::uint64_t t0 = prof::now_ns();
      final_rmse = rmse(split.test, engine.user_factors(),
                        engine.item_factors());
      const std::uint64_t t1 = prof::now_ns();
      eval_s = static_cast<double>(t1 - t0) * 1e-9;
      if (prof::Tracer::enabled()) {
        prof::Tracer::instance().complete_span("rmse_eval", "metrics", t0,
                                               t1);
        CUMF_PROF_COUNTER("test_rmse", final_rmse);
      }
      tracker.record(time_offset + sw.seconds(), final_rmse, epoch);
    }

    const SolveStats cumulative = engine.solve_stats();
    const SolveStats delta = cumulative - prev_stats;
    prev_stats = cumulative;
    const auto& herm_ops = engine.hermitian_ops_per_epoch();
    const auto& solve_ops = engine.solve_ops_per_epoch();

    // cuscope verdicts for this epoch. The modeled-kernel phases are
    // deterministic functions of counters (no clocks); only ooc_stream
    // classifies measured seconds, because the exposed prefetch wait *is*
    // the phenomenon being attributed there.
    last_verdicts.clear();
    if (want_verdicts) {
      prof::PhaseSample herm = herm_base;
      herm.flops = herm_ops.flops;
      herm.bytes = herm_ops.bytes();
      last_verdicts.push_back(prof::classify(herm));
      prof::PhaseSample solve_sample = solve_base;
      solve_sample.flops = solve_ops.flops;
      solve_sample.bytes = solve_ops.bytes();
      last_verdicts.push_back(prof::classify(solve_sample));
      if (delta.fp16_converted > 0) {
        prof::PhaseSample pack;
        pack.phase = prof::kPhaseFp16Pack;
        const double elems = static_cast<double>(delta.fp16_converted);
        pack.flops = elems;  // one convert per element
        pack.bytes = fp16_pack_traffic(elems);
        pack.t_dram = pack.bytes / (dev.dram_bw * dev.memcpy_efficiency);
        pack.t_compute = elems / (dev.peak_flops * dev.compute_efficiency);
        last_verdicts.push_back(prof::classify(pack));
      }
      if constexpr (kMultiGpu) {
        prof::PhaseSample mg;
        mg.phase = prof::kPhaseMgpuAllGather;
        mg.wall_s = scaling.total_s;
        mg.t_compute = scaling.compute_s;
        mg.t_comm = scaling.comm_s;
        last_verdicts.push_back(prof::classify(mg));
      }
      if constexpr (kOoc) {
        const OocEpochStats& os = engine.ooc_stats_last_epoch();
        prof::PhaseSample st;
        st.phase = prof::kPhaseOocStream;
        st.wall_s = os.stall_s + os.compute_s;
        st.t_compute = os.compute_s;
        st.t_stall = os.stall_s;
        st.flops = herm_ops.flops + solve_ops.flops;
        st.bytes = static_cast<double>(os.bytes_loaded);
        last_verdicts.push_back(prof::classify(st));
      }
    }

    if (telemetry.is_open()) {
      const auto& phase = engine.phase_seconds_last_epoch();

      prof::JsonObject rec;
      rec.set("type", "epoch").set("epoch", epoch);
      rec.set("seconds", time_offset + sw.seconds())
          .set("epoch_s", epoch_s);
      if (have_test) {
        rec.set("rmse", final_rmse);
      } else {
        rec.set_null("rmse");
      }
      prof::JsonObject phase_obj;
      phase_obj.set("hermitian", phase.hermitian);
      phase_obj.set("solve", phase.solve);
      phase_obj.set("rmse_eval", eval_s);
      rec.set_raw("phase_s", phase_obj.str());

      prof::JsonObject solver_obj;
      solver_obj.set("systems", delta.systems);
      solver_obj.set("cg_iterations", delta.cg_iterations);
      solver_obj.set("failures", delta.failures);
      solver_obj.set("cg_fallbacks", delta.cg_fallbacks);
      solver_obj.set("fp16_fallbacks", delta.fp16_fallbacks);
      solver_obj.set("fp16_pack_bytes", delta.fp16_converted * 2);
      std::string hist = "{";
      for (std::size_t i = 0; i < delta.cg_hist.size(); ++i) {
        if (delta.cg_hist[i] == 0) {
          continue;
        }
        if (hist.size() > 1) {
          hist += ',';
        }
        hist += '"' + std::to_string(i) + "\":" +
                std::to_string(delta.cg_hist[i]);
      }
      hist += '}';
      solver_obj.set_raw("cg_hist", hist);
      rec.set_raw("solver", solver_obj.str());

      prof::JsonObject ops;
      ops.set("hermitian_flops", herm_ops.flops);
      ops.set("hermitian_bytes", herm_ops.bytes());
      ops.set("solve_flops", solve_ops.flops);
      ops.set("solve_bytes", solve_ops.bytes());
      if (phase.hermitian > 0) {
        ops.set("hermitian_gflops",
                herm_ops.flops / phase.hermitian * 1e-9);
      }
      if (phase.solve > 0) {
        ops.set("solve_gbps", solve_ops.bytes() / phase.solve * 1e-9);
      }
      rec.set_raw("host_ops", ops.str());

      prof::JsonObject sim;
      sim.set("l1_hit_rate", cache_sim.l1_hit_rate());
      sim.set("l2_hit_rate", cache_sim.l2_hit_rate());
      sim.set("dram_bytes", cache_sim.dram_bytes(128));
      rec.set_raw("sim_cache", sim.str());

      if constexpr (kMultiGpu) {
        prof::JsonObject mg;
        mg.set("gpus", engine.gpus());
        mg.set("link", cfg.link_name);
        mg.set("compute_s", scaling.compute_s);
        mg.set("comm_s", scaling.comm_s);
        mg.set("total_s", scaling.total_s);
        mg.set("single_gpu_s", scaling.single_gpu_s);
        mg.set("speedup", scaling.speedup);
        mg.set("scaling_efficiency", scaling.efficiency);
        mg.set("comm_fraction", scaling.comm_fraction);
        rec.set_raw("multi_gpu", mg.str());
      }

      if constexpr (kOoc) {
        // Measured streaming breakdown of this epoch plus the (epoch-
        // invariant) modeled transfer pipeline. stall_s is the exposed
        // wait; load_s is total time inside tile loads, which overlaps
        // compute when prefetch is on.
        const OocEpochStats& os = engine.ooc_stats_last_epoch();
        prof::JsonObject ooc;
        ooc.set("stall_s", os.stall_s);
        ooc.set("compute_s", os.compute_s);
        ooc.set("load_s", os.load_s);
        ooc.set("tiles", os.tiles);
        ooc.set("cache_hits", os.cache_hits);
        ooc.set("cache_misses", os.cache_misses);
        ooc.set("bytes_loaded", os.bytes_loaded);
        ooc.set("overlap", engine.overlap_active());
        ooc.set("model_transfer_s", ooc_timeline.transfer_s);
        ooc.set("model_compute_s", ooc_timeline.compute_s);
        ooc.set("model_serial_s", ooc_timeline.serial_s);
        ooc.set("model_pipelined_s", ooc_timeline.pipelined_s);
        ooc.set("model_overlap_gain", ooc_timeline.overlap_gain);
        rec.set_raw("ooc", ooc.str());
      }

      telemetry.write(rec);

      // One bottleneck record per phase, after the epoch record it
      // explains (schema 2; tools/trace_report.py --check enforces the
      // shape, tools/cumf_report.py diffs runs by these).
      for (const prof::Verdict& v : last_verdicts) {
        prof::JsonObject bn;
        bn.set("type", "bottleneck").set("epoch", epoch);
        bn.set("phase", v.phase);
        bn.set("bound", prof::to_string(v.bound));
        bn.set("arithmetic_intensity", v.arithmetic_intensity);
        bn.set("pct_of_roof", v.pct_of_roof);
        bn.set("headroom", v.headroom);
        bn.set("wall_s", v.wall_s);
        prof::JsonObject roof_s;
        roof_s.set("compute", v.sample.t_compute);
        roof_s.set("dram", v.sample.t_dram);
        roof_s.set("l2", v.sample.t_l2);
        roof_s.set("latency", v.sample.t_latency);
        roof_s.set("comm", v.sample.t_comm);
        roof_s.set("stall", v.sample.t_stall);
        bn.set_raw("roof_s", roof_s.str());
        bn.set("flops", v.sample.flops);
        bn.set("bytes", v.sample.bytes);
        telemetry.write(bn);
      }
    }

    if (!cfg.checkpoint_dir.empty() &&
        (epoch % cfg.checkpoint_every == 0 || epoch == cfg.epochs)) {
      TrainCheckpoint ckpt;
      ckpt.epoch = static_cast<std::uint32_t>(epoch);
      ckpt.rng = rng.state();
      ckpt.train_seconds = time_offset + sw.seconds();
      ckpt.solve_stats = engine.solve_stats();
      ckpt.curve = tracker.curve();
      ckpt.x = engine.user_factors();
      ckpt.theta = engine.item_factors();
      ckpt.seed = cfg.seed;
      ckpt.f = static_cast<std::uint64_t>(cfg.f);
      ckpt.solver_kind = static_cast<std::uint32_t>(cfg.solver);
      ckpt.cg_fs = cfg.fs;
      ckpt.lambda = static_cast<float>(cfg.lambda);
      ckpt.rows = ratings.rows();
      ckpt.cols = ratings.cols();
      ckpt.train_nnz = cfg.train_nnz;
      write_checkpoint_file(checkpoint_path(cfg.checkpoint_dir, epoch),
                            ckpt);
      prune_checkpoints(cfg.checkpoint_dir, 3);
      if (analysis::FaultInjector::enabled() &&
          analysis::FaultInjector::instance().should_crash_after_epoch(
              epoch)) {
        // Simulated crash: die without unwinding, exactly like a kill -9
        // would. The checkpoint above is already durable (temp + rename),
        // so a --resume run continues bit-identically from here.
        std::fprintf(stderr,
                     "fault injection: crashing after epoch %d "
                     "(checkpoint is durable)\n",
                     epoch);
        std::fflush(nullptr);
        std::_Exit(42);
      }
    }
  }

  std::printf("trained %d epochs (f=%d, %s) in %.2f s\n", cfg.epochs, cfg.f,
              to_string(cfg.solver), time_offset + sw.seconds());
  if (have_test) {
    std::printf("test RMSE: %.4f\n", final_rmse);
    std::printf("%s", tracker.to_csv().c_str());
  }
  if (telemetry.is_open()) {
    std::printf("telemetry written to %s (%zu records)\n",
                cfg.metrics_path.c_str(), telemetry.lines_written());
  }
  summary.roof_device = dev.name;
  summary.verdicts = std::move(last_verdicts);
  if constexpr (kOoc) {
    const OocEpochStats& os = engine.ooc_stats_last_epoch();
    const double wall = os.stall_s + os.compute_s;
    const auto pct = [wall](double s) {
      return wall > 0 ? s / wall * 100.0 : 0.0;
    };
    summary.engine_phases.push_back(
        {"ooc_stall", os.stall_s, pct(os.stall_s)});
    summary.engine_phases.push_back({"ooc_load", os.load_s, pct(os.load_s)});
    summary.engine_phases.push_back(
        {"ooc_compute", os.compute_s, pct(os.compute_s)});
  }
  if constexpr (kMultiGpu) {
    const double wall = scaling.total_s;
    const auto pct = [wall](double s) {
      return wall > 0 ? s / wall * 100.0 : 0.0;
    };
    summary.engine_phases.push_back(
        {"mgpu_compute", scaling.compute_s, pct(scaling.compute_s)});
    summary.engine_phases.push_back(
        {"mgpu_comm", scaling.comm_s, pct(scaling.comm_s)});
  }
  final_stats = engine.solve_stats();
  model = FactorModel{engine.user_factors(), engine.item_factors()};
  return 0;
}

int cmd_train(int argc, char** argv) {
  if (argc < 4) {
    usage();
  }
  const std::string ratings_path = argv[2];
  const std::string model_path = argv[3];
  int f = 32;
  double lambda = 0.05;
  int epochs = 10;
  SolverKind solver = SolverKind::CgFp16;
  bool solver_given = false;
  std::uint32_t fs = 6;
  bool fs_given = false;
  int tile = 10;
  bool tile_given = false;
  int bin = 32;
  bool bin_given = false;
  AlsSchedule schedule = AlsSchedule::nnz_guided;
  bool schedule_given = false;
  std::string autotune_path;
  int workers = 1;
  bool workers_given = false;
  int gpus = 0;  // 0 = --gpus not given: single-engine AlsEngine path
  std::string link_name = "nvlink";
  bool link_given = false;
  std::optional<double> implicit_alpha;
  LoaderOptions loader;
  double test_fraction = 0.1;
  bool cucheck = false;
  bool run_cuverify = false;
  std::uint64_t seed = 1;
  bool seed_given = false;
  std::string trace_path;
  std::string metrics_path;
  bool prof_summary = false;
  std::string checkpoint_dir;
  int checkpoint_every = 1;
  bool resume = false;
  std::string shard_dir;
  std::uint64_t host_mem = 0;
  std::uint64_t device_mem = 0;
  bool ooc_overlap = true;
  analysis::FaultPlan fault_plan;
  bool inject = false;

  for (int i = 4; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
      }
      return argv[++i];
    };
    if (arg == "-f") {
      f = static_cast<int>(cli::parse_int(kTool, "-f", next(), 1, 65536));
    } else if (arg == "-l") {
      lambda = cli::parse_double(kTool, "-l", next(), 0.0, 1e9);
    } else if (arg == "-t" || arg == "--epochs") {
      epochs = static_cast<int>(
          cli::parse_int(kTool, arg.c_str(), next(), 1, 1000000));
    } else if (arg == "--solver") {
      solver = parse_solver(next());
      solver_given = true;
    } else if (arg == "--fs") {
      fs = static_cast<std::uint32_t>(
          cli::parse_uint(kTool, "--fs", next(), 1, 1024));
      fs_given = true;
    } else if (arg == "--tile") {
      tile = static_cast<int>(
          cli::parse_int(kTool, "--tile", next(), 1, 65536));
      tile_given = true;
    } else if (arg == "--bin") {
      bin = static_cast<int>(
          cli::parse_int(kTool, "--bin", next(), 1, 65536));
      bin_given = true;
    } else if (arg == "--schedule") {
      const std::string name = next();
      const auto parsed = schedule_from_name(name);
      if (!parsed) {
        std::fprintf(stderr,
                     "cumf_train: --schedule must be static or nnz\n");
        return 2;
      }
      schedule = *parsed;
      schedule_given = true;
    } else if (arg == "--auto-tune") {
      autotune_path = next();
    } else if (arg == "--workers") {
      workers = static_cast<int>(
          cli::parse_int(kTool, "--workers", next(), 1, 4096));
      workers_given = true;
    } else if (arg == "--gpus") {
      gpus = static_cast<int>(
          cli::parse_int(kTool, "--gpus", next(), 1, 1024));
    } else if (arg == "--link") {
      link_name = next();
      link_given = true;
      if (link_name != "pcie3" && link_name != "nvlink") {
        std::fprintf(stderr,
                     "cumf_train: --link must be pcie3 or nvlink\n");
        return 2;
      }
    } else if (arg == "--implicit") {
      implicit_alpha = cli::parse_double(kTool, "--implicit", next(), 0.0,
                                         1e9);
    } else if (arg == "--movielens") {
      loader.format = RatingsFormat::MovieLens;
      loader.one_based = true;
    } else if (arg == "--test") {
      test_fraction = cli::parse_double(kTool, "--test", next(), 0.0, 0.99);
    } else if (arg == "--cucheck") {
      cucheck = true;
    } else if (arg == "--cuverify") {
      run_cuverify = true;
    } else if (arg == "--seed") {
      seed = cli::parse_uint(kTool, "--seed", next(), 0,
                             std::numeric_limits<std::uint64_t>::max());
      seed_given = true;
    } else if (arg == "--trace") {
      trace_path = next();
    } else if (arg == "--metrics") {
      metrics_path = next();
    } else if (arg == "--prof-summary") {
      prof_summary = true;
    } else if (arg == "--checkpoint") {
      checkpoint_dir = next();
    } else if (arg == "--checkpoint-every") {
      checkpoint_every = static_cast<int>(
          cli::parse_int(kTool, "--checkpoint-every", next(), 1, 1000000));
    } else if (arg == "--resume") {
      resume = true;
    } else if (arg == "--shards") {
      shard_dir = next();
    } else if (arg == "--host-mem") {
      host_mem = parse_mem_size(next());
    } else if (arg == "--device-mem") {
      device_mem = parse_mem_size(next());
    } else if (arg == "--no-overlap") {
      ooc_overlap = false;
    } else if (arg == "--inject-seed") {
      fault_plan.seed =
          cli::parse_uint(kTool, "--inject-seed", next(), 0,
                          std::numeric_limits<std::uint64_t>::max());
      inject = true;
    } else if (arg == "--inject-nan-a") {
      fault_plan.nan_a_prob =
          cli::parse_double(kTool, "--inject-nan-a", next(), 0.0, 1.0);
      inject = true;
    } else if (arg == "--inject-inf-b") {
      fault_plan.inf_b_prob =
          cli::parse_double(kTool, "--inject-inf-b", next(), 0.0, 1.0);
      inject = true;
    } else if (arg == "--inject-indefinite-a") {
      fault_plan.indefinite_a_prob = cli::parse_double(
          kTool, "--inject-indefinite-a", next(), 0.0, 1.0);
      inject = true;
    } else if (arg == "--inject-fp16-overflow") {
      fault_plan.fp16_overflow_prob = cli::parse_double(
          kTool, "--inject-fp16-overflow", next(), 0.0, 1.0);
      inject = true;
    } else if (arg == "--crash-after-epoch") {
      fault_plan.crash_at_epoch = static_cast<int>(
          cli::parse_int(kTool, "--crash-after-epoch", next(), 1, 1000000));
      inject = true;
    } else {
      std::fprintf(stderr, "cumf_train: unknown option '%s'\n", arg.c_str());
      usage();
    }
  }

  // A shard store can be named explicitly (--shards) or positionally (the
  // <ratings> argument is a directory holding shard-meta.bin).
  if (shard_dir.empty() && is_shard_dir(ratings_path)) {
    shard_dir = ratings_path;
  }
  const bool ooc = !shard_dir.empty();
  if (ooc) {
    if (!is_shard_dir(shard_dir)) {
      std::fprintf(stderr, "cumf_train: '%s' has no %s (run cumf_shard "
                           "build first)\n",
                   shard_dir.c_str(), std::string(kShardMetaFile).c_str());
      return 2;
    }
    if (implicit_alpha || gpus > 0 || cucheck || run_cuverify) {
      std::fprintf(stderr,
                   "cumf_train: --shards is incompatible with --implicit, "
                   "--gpus, --cucheck and --cuverify (they need the full "
                   "matrix in memory)\n");
      return 2;
    }
    if (host_mem == 0 && autotune_path.empty()) {
      std::fprintf(stderr,
                   "cumf_train: out-of-core training requires --host-mem\n");
      return 2;
    }
  } else if (host_mem != 0 || device_mem != 0 || !ooc_overlap) {
    std::fprintf(stderr,
                 "cumf_train: --host-mem/--device-mem/--no-overlap only "
                 "apply to out-of-core training (--shards)\n");
    return 2;
  }
  if (resume && checkpoint_dir.empty()) {
    std::fprintf(stderr, "cumf_train: --resume requires --checkpoint DIR\n");
    return 2;
  }
  if (!checkpoint_dir.empty() && implicit_alpha) {
    std::fprintf(stderr,
                 "cumf_train: checkpointing is only supported for the "
                 "explicit ALS path\n");
    return 2;
  }
  if (checkpoint_every < 1) {
    std::fprintf(stderr, "cumf_train: --checkpoint-every must be >= 1\n");
    return 2;
  }
  if (gpus > 0 && implicit_alpha) {
    std::fprintf(stderr,
                 "cumf_train: --gpus is only supported for the explicit "
                 "ALS path\n");
    return 2;
  }
  if (gpus > 1 && workers > 1) {
    std::fprintf(stderr,
                 "cumf_train: note: --workers is ignored with --gpus "
                 "(the device count is the parallelism knob)\n");
  }
  if (inject) {
    analysis::FaultInjector::instance().arm(fault_plan);
  }

  // Profiling is runtime-gated: any telemetry flag turns the tracer on
  // (the per-epoch phase seconds come from the same clock reads as the
  // trace spans, so --metrics needs it too).
  const bool profiling =
      !trace_path.empty() || !metrics_path.empty() || prof_summary;
  if (profiling) {
    prof::Tracer::instance().enable();
    prof::Tracer::instance().set_thread_name("main");
  }

  std::optional<ShardMeta> shard_meta;
  RatingsCoo ratings;
  double load_seconds = 0.0;
  std::uintmax_t load_bytes = 0;
  if (ooc) {
    shard_meta = read_shard_meta(shard_dir);
    // The split is baked into the shard store; training must replay the
    // init of the seed that built it or the factors silently diverge from
    // the in-core reference.
    if (!seed_given) {
      seed = shard_meta->seed;
    } else if (seed != shard_meta->seed) {
      std::fprintf(stderr,
                   "cumf_train: note: --seed %llu differs from the shard "
                   "store's build seed %llu; factors will not match an "
                   "in-core run of either seed\n",
                   static_cast<unsigned long long>(seed),
                   static_cast<unsigned long long>(shard_meta->seed));
    }
    ratings = RatingsCoo(shard_meta->rows, shard_meta->cols);
    std::printf("shard store %s: %u x %u, %llu train + %llu test nnz, "
                "%zu+%zu tiles\n",
                shard_dir.c_str(), shard_meta->rows, shard_meta->cols,
                static_cast<unsigned long long>(shard_meta->train_nnz),
                static_cast<unsigned long long>(shard_meta->test_nnz),
                shard_meta->row_tiles.size(), shard_meta->col_tiles.size());
  } else {
    std::printf("loading %s...\n", ratings_path.c_str());
    Stopwatch load_sw;
    ratings = load_ratings_file(ratings_path, loader);
    load_seconds = load_sw.seconds();
    std::error_code ec;
    load_bytes = std::filesystem::file_size(ratings_path, ec);
    if (ec) {
      load_bytes = 0;
    }
    std::printf("  %u x %u, %llu ratings\n", ratings.rows(), ratings.cols(),
                static_cast<unsigned long long>(ratings.nnz()));
  }

  // --auto-tune: load the tuned config keyed by this run's device x dataset
  // fingerprint and apply its knobs. Explicit command-line flags win over
  // the tuned values; a config for a different run is a hard error.
  simd::KernelPath kernel_path = simd::kDefaultPath;
  std::optional<tune::TunedConfig> tuned;
  if (!autotune_path.empty()) {
    if (implicit_alpha) {
      std::fprintf(stderr,
                   "cumf_train: --auto-tune only applies to the explicit "
                   "ALS path\n");
      return 2;
    }
    tune::TuneFingerprint expected;
    expected.device = gpusim::DeviceSpec::maxwell_titan_x().name;
    expected.rows = ooc ? shard_meta->rows : ratings.rows();
    expected.cols = ooc ? shard_meta->cols : ratings.cols();
    expected.nnz = ooc ? shard_meta->train_nnz + shard_meta->test_nnz
                       : static_cast<std::uint64_t>(ratings.nnz());
    expected.f = static_cast<std::uint32_t>(f);
    expected.lambda = static_cast<float>(lambda);
    try {
      tuned = tune::load_tuned_config(autotune_path, expected);
    } catch (const tune::TuneError& e) {
      std::fprintf(stderr, "cumf_train: rejected tuned config [%s]: %s\n",
                   tune::to_string(e.reason()), e.what());
      return 2;
    }
    const tune::TuneChoice& tc = tuned->choice;
    if (!tile_given) {
      tile = tc.tile;
    }
    if (!bin_given) {
      bin = tc.bin;
    }
    if (!solver_given) {
      solver = tc.solver;
    }
    if (!fs_given) {
      fs = tc.fs;
    }
    if (!schedule_given) {
      schedule = tc.schedule;
    }
    if (gpus == 0 && tc.gpus > 1 && !ooc) {
      gpus = tc.gpus;
    } else if (!workers_given && gpus == 0) {
      workers = tc.workers;
    }
    if (!link_given) {
      link_name = tc.link;
    }
    kernel_path = tc.path;
    if (ooc && host_mem == 0) {
      host_mem = tc.ooc_host_bytes;
    }
    std::printf(
        "auto-tune: tile=%d bin=%d solver=%s fs=%u schedule=%s path=%s "
        "workers=%d gpus=%d link=%s — modeled epoch %.3g s vs default "
        "%.3g s (%.2fx), searched %llu candidates (%llu pruned by model, "
        "%llu probed)\n",
        tc.tile, tc.bin, solver_cli_name(tc.solver), tc.fs,
        to_string(tc.schedule), to_string(tc.path), tc.workers, tc.gpus,
        tc.link.c_str(), tuned->model_epoch_s, tuned->default_epoch_s,
        tuned->model_epoch_s > 0
            ? tuned->default_epoch_s / tuned->model_epoch_s
            : 0.0,
        static_cast<unsigned long long>(tuned->candidates),
        static_cast<unsigned long long>(tuned->pruned),
        static_cast<unsigned long long>(tuned->finalists));
  }
  if (ooc && host_mem == 0) {
    std::fprintf(stderr,
                 "cumf_train: out-of-core training requires --host-mem "
                 "(or an --auto-tune config with a host budget)\n");
    return 2;
  }

  Rng rng(seed);
  TrainTestSplit split;
  if (ooc) {
    // Train stays an empty shell — the tiles stream through the engine's
    // cache; only the (small) test set is materialized for RMSE points.
    split.train = RatingsCoo(shard_meta->rows, shard_meta->cols);
    split.test = read_shard_test(shard_dir);
  } else if (test_fraction > 0) {
    split = split_holdout(ratings, test_fraction, rng);
  } else {
    split = TrainTestSplit{ratings,
                           RatingsCoo(ratings.rows(), ratings.cols())};
  }

  if (cucheck) {
    // cucheck_report mode: one checked iteration of the device kernels over
    // a prefix of the training data before committing to the real run.
    std::printf("cucheck: running one checked iteration...\n");
    auto train_sorted = split.train;
    train_sorted.sort_and_dedup();
    const auto csr = CsrMatrix::from_coo(train_sorted);
    Matrix theta0(csr.cols(), static_cast<std::size_t>(f));
    Rng theta_rng(2);
    for (auto& v : theta0.data()) {
      v = static_cast<real_t>(theta_rng.normal(0.0, 0.1));
    }
    analysis::PrecheckConfig precheck;
    precheck.lambda = static_cast<real_t>(lambda);
    precheck.fs = fs;
    const auto verdict = analysis::run_precheck(csr, theta0, precheck);
    std::printf("%s", verdict.summary().c_str());
    if (!verdict.clean()) {
      std::fprintf(stderr,
                   "cucheck: hazards detected in the training kernels; "
                   "refusing to train\n");
      return 1;
    }
  }

  // FP16 range prediction is one cheap pass over the ratings and feeds both
  // the --cuverify report and the --metrics header's predicted_fp16_safe
  // bit, so compute it whenever either consumer is active. Both update
  // directions pack an A (user rows and item rows), so both sides must be
  // safe.
  bool predicted_fp16_safe = true;
  if (run_cuverify || !metrics_path.empty()) {
    namespace cuv = analysis::cuverify;
    auto train_sorted = split.train;
    train_sorted.sort_and_dedup();
    const auto csr = CsrMatrix::from_coo(train_sorted);
    const auto csr_t = csr.transposed();

    cuv::Fp16RangeOptions range;
    range.f = static_cast<std::size_t>(f);
    range.lambda = lambda;
    range.cg_fs = fs;
    const auto user_side = cuv::analyze_fp16_range(csr, range);
    const auto item_side = cuv::analyze_fp16_range(csr_t, range);
    predicted_fp16_safe =
        user_side.predicted_fp16_safe && item_side.predicted_fp16_safe;

    if (run_cuverify) {
      // Static pregate: prove the access plans of the kernels this run
      // would launch, with zero execution (launch_count pins the claim).
      const std::uint64_t launches_before = cusim::launch_count();
      std::printf("cuverify: static access-plan analysis (no execution)\n");
      std::vector<analysis::Finding> findings;
      const int tile =
          pick_tile(static_cast<std::size_t>(f), AlsKernelConfig{}.tile);

      const auto verify_side = [&](const CsrMatrix& side, const char* name) {
        if (side.rows() == 0) {
          return;
        }
        index_t densest = 0;
        for (index_t u = 1; u < side.rows(); ++u) {
          if (side.row_nnz(u) > side.row_nnz(densest)) {
            densest = u;
          }
        }
        cusim::HermitianPlanParams params;
        params.rows = side.rows();
        params.theta_rows = side.cols();
        params.f = static_cast<std::size_t>(f);
        params.tile = tile;
        params.bin = 32;
        const auto row = side.row_cols(densest);
        params.cols.assign(row.begin(), row.end());
        params.regs_per_thread = gpusim::hermitian_regs_per_thread(f, tile);
        auto plan = cusim::hermitian_kernel_plan(params);
        plan.kernel += std::string("[") + name + "]";
        const auto report = cuv::verify(plan);
        std::printf("%s", report.summary().c_str());
        findings.insert(findings.end(), report.findings.begin(),
                        report.findings.end());
      };
      verify_side(csr, "update-X");
      verify_side(csr_t, "update-Theta");

      const auto batch =
          std::min<std::size_t>(std::max<index_t>(csr.rows(), 1), 64);
      const auto cg_report = cuv::verify(
          cusim::cg_kernel_plan(batch, static_cast<std::size_t>(f), fs));
      std::printf("%s", cg_report.summary().c_str());
      findings.insert(findings.end(), cg_report.findings.begin(),
                      cg_report.findings.end());

      const bool cg16 = solver == SolverKind::CgFp16;
      for (const auto* side : {&user_side, &item_side}) {
        const auto fp16 = cuv::fp16_findings(
            *side, cg16, side == &user_side ? "update-X" : "update-Theta");
        std::printf("%s", analysis::render(fp16).c_str());
        findings.insert(findings.end(), fp16.begin(), fp16.end());
      }

      const std::uint64_t launches_after = cusim::launch_count();
      if (analysis::exit_code(findings) != 0) {
        std::fprintf(stderr,
                     "cuverify: error findings in the training kernels' "
                     "access plans; refusing to train\n");
        return 1;
      }
      std::printf("cuverify: PASS (%llu kernels executed)\n",
                  static_cast<unsigned long long>(launches_after -
                                                  launches_before));
    }
  }

  FactorModel model;
  SolveStats final_stats;  // explicit path only; drives --prof-summary
  RunSummary summary;      // likewise: roofline verdicts + engine phases
  Stopwatch sw;
  if (implicit_alpha) {
    // Implicit path: the mllib facade drives ImplicitAlsEngine; per-epoch
    // telemetry is an explicit-path feature (spans still record).
    auto als = mllib::Als()
                   .set_rank(f)
                   .set_reg_param(lambda)
                   .set_max_iter(epochs)
                   .set_num_blocks(workers)
                   .set_solver(solver, fs)
                   .set_implicit_prefs(true)
                   .set_alpha(*implicit_alpha);
    if (seed_given) {
      als.set_seed(seed);
    }
    const auto fitted = als.fit(split.train);
    std::printf("trained %d epochs (f=%d, %s) in %.2f s\n", epochs, f,
                to_string(solver), sw.seconds());
    model = FactorModel{fitted.user_factors(), fitted.item_factors()};
  } else {
    // Explicit path: drive AlsEngine (or, with --gpus, its multi-device
    // counterpart) through the shared run_explicit loop so every epoch
    // yields a test RMSE point and, with --metrics, one telemetry record.
    // The two engines produce bit-identical factors.
    AlsOptions options;
    options.f = static_cast<std::size_t>(f);
    options.lambda = static_cast<real_t>(lambda);
    options.solver.kind = solver;
    options.solver.cg_fs = fs;
    options.solver.path = kernel_path;
    options.hermitian.tile = pick_tile(static_cast<std::size_t>(f), tile);
    options.hermitian.bin = bin;
    options.schedule = schedule;
    options.workers = workers;
    options.seed = seed;

    ExplicitConfig cfg;
    cfg.ratings_path = ratings_path;
    cfg.metrics_path = metrics_path;
    cfg.checkpoint_dir = checkpoint_dir;
    cfg.f = f;
    cfg.lambda = lambda;
    cfg.epochs = epochs;
    cfg.solver = solver;
    cfg.fs = fs;
    cfg.tile = tile;
    cfg.bin = bin;
    cfg.schedule = schedule;
    cfg.workers = workers;
    cfg.gpus = gpus;
    cfg.link_name = link_name;
    cfg.seed = seed;
    cfg.checkpoint_every = checkpoint_every;
    cfg.resume = resume;
    cfg.predicted_fp16_safe = predicted_fp16_safe;
    cfg.train_nnz = ooc ? shard_meta->train_nnz
                        : static_cast<std::uint64_t>(split.train.nnz());
    cfg.shard_dir = shard_dir;
    cfg.host_mem = host_mem;
    cfg.device_mem = device_mem;
    cfg.ooc_overlap = ooc_overlap;
    cfg.prof_summary = prof_summary;
    if (tuned) {
      cfg.tuned_json = tune::tuned_config_payload(*tuned);
    }

    int rc = 0;
    if (ooc) {
      OocOptions ooc_options;
      ooc_options.host_mem_bytes = host_mem;
      ooc_options.device_mem_bytes = device_mem;
      ooc_options.overlap = ooc_overlap;
      OocAlsEngine engine(shard_dir, options, ooc_options);
      if (ooc_overlap && !engine.overlap_active()) {
        std::fprintf(stderr,
                     "cumf_train: note: budgets too small to double-buffer "
                     "tiles; prefetch disabled (synchronous loads)\n");
      }
      rc = run_explicit(engine, cfg, ratings, split, rng, model,
                        final_stats, summary);
    } else if (gpus >= 1) {
      MultiGpuAls engine(split.train, options, gpus);
      rc = run_explicit(engine, cfg, ratings, split, rng, model,
                        final_stats, summary);
    } else {
      AlsEngine engine(split.train, options);
      rc = run_explicit(engine, cfg, ratings, split, rng, model,
                        final_stats, summary);
    }
    if (rc != 0) {
      return rc;
    }
  }

  if (inject) {
    const analysis::FaultCounts& fc =
        analysis::FaultInjector::instance().counts();
    std::printf("faults injected: nan_a=%llu inf_b=%llu indefinite_a=%llu "
                "fp16_overflow=%llu\n",
                static_cast<unsigned long long>(fc.nan_a.load()),
                static_cast<unsigned long long>(fc.inf_b.load()),
                static_cast<unsigned long long>(fc.indefinite_a.load()),
                static_cast<unsigned long long>(fc.fp16_overflow.load()));
  }

  write_model_file(model_path, model);
  std::printf("model written to %s\n", model_path.c_str());

  if (!trace_path.empty()) {
    if (!prof::Tracer::instance().write_chrome_trace(trace_path)) {
      std::fprintf(stderr, "cumf_train: cannot write trace to '%s'\n",
                   trace_path.c_str());
      return 1;
    }
    std::printf("trace written to %s\n", trace_path.c_str());
  }
  if (prof_summary) {
    std::printf("\n%-24s %8s %12s %10s %10s %10s %10s\n", "span", "count",
                "total ms", "mean us", "p50 us", "p95 us", "max us");
    for (const auto& st : prof::Tracer::instance().summarize()) {
      std::printf("%-24s %8llu %12.3f %10.2f %10.2f %10.2f %10.2f\n",
                  st.name.c_str(), static_cast<unsigned long long>(st.count),
                  st.total_ms, st.mean_us, st.p50_us, st.p95_us, st.max_us);
    }
    const auto dropped = prof::Tracer::instance().total_dropped();
    if (dropped > 0) {
      std::printf("(%llu events dropped by ring wrap)\n",
                  static_cast<unsigned long long>(dropped));
    }
    std::printf("solver fallbacks: cg->lu %llu, fp16->fp32 %llu, "
                "unsolvable %llu (of %llu systems)\n",
                static_cast<unsigned long long>(final_stats.cg_fallbacks),
                static_cast<unsigned long long>(final_stats.fp16_fallbacks),
                static_cast<unsigned long long>(final_stats.failures),
                static_cast<unsigned long long>(final_stats.systems));
    if (load_bytes > 0 && load_seconds > 0) {
      const double mb = static_cast<double>(load_bytes) / 1e6;
      std::printf("ratings read: %.1f MB in %.3f s (%.1f MB/s)\n", mb,
                  load_seconds, mb / load_seconds);
    }
    if (!summary.engine_phases.empty()) {
      std::printf("\n%-24s %12s %9s\n", "engine phase", "seconds",
                  "% wall");
      for (const RunSummary::EnginePhase& p : summary.engine_phases) {
        std::printf("%-24s %12.6f %8.1f%%\n", p.name.c_str(), p.seconds,
                    p.pct);
      }
    }
    if (!summary.verdicts.empty()) {
      std::printf("\n%s",
                  prof::render_roofline_table(summary.verdicts,
                                              summary.roof_device)
                      .c_str());
    }
    if (tuned && !tuned->verdicts.empty()) {
      std::printf(
          "\nauto-tune winner (modeled epoch %.3g s, %.2fx over default) "
          "— why it wins:\n%s",
          tuned->model_epoch_s,
          tuned->model_epoch_s > 0
              ? tuned->default_epoch_s / tuned->model_epoch_s
              : 0.0,
          prof::render_roofline_table(tuned->verdicts,
                                      tuned->fingerprint.device)
              .c_str());
    }
  }
  return 0;
}

int cmd_predict(int argc, char** argv) {
  if (argc < 4) {
    usage();
  }
  const auto model = read_model_file(argv[2]);
  const auto pairs = load_ratings_file(argv[3], LoaderOptions{});
  for (const Rating& e : pairs.entries()) {
    CUMF_EXPECTS(e.u < model.x.rows() && e.v < model.theta.rows(),
                 "pair outside the model's shape");
    std::printf("%u %u %.4f\n", e.u, e.v,
                static_cast<double>(
                    dot(model.x.row(e.u), model.theta.row(e.v))));
  }
  return 0;
}

int cmd_recommend(int argc, char** argv) {
  if (argc < 5) {
    usage();
  }
  const auto model = read_model_file(argv[2]);
  auto ratings = load_ratings_file(argv[3], LoaderOptions{});
  const auto user = static_cast<index_t>(cli::parse_uint(
      kTool, "<user>", argv[4], 0, std::numeric_limits<index_t>::max()));
  std::size_t k = 10;
  for (int i = 5; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], "-k") == 0) {
      k = static_cast<std::size_t>(
          cli::parse_uint(kTool, "-k", argv[i + 1], 1, 1000000));
    }
  }
  ratings.sort_and_dedup();
  const auto seen = CsrMatrix::from_coo(ratings);
  CUMF_EXPECTS(user < seen.rows(), "user outside the dataset");
  for (const auto& item :
       recommend_top_k(model.x, model.theta, seen, user, k)) {
    std::printf("item %u\tscore %.4f\n", item.item,
                static_cast<double>(item.score));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
  }
  const std::string command = argv[1];
  try {
    if (command == "train") {
      return cmd_train(argc, argv);
    }
    if (command == "predict") {
      return cmd_predict(argc, argv);
    }
    if (command == "recommend") {
      return cmd_recommend(argc, argv);
    }
    usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
