// cumf_tune — cost-model-pruned auto-tuning over the cuMF variant space.
//
//   cumf_tune <ratings|shard-dir> <config-out> [options]
//
//   -f N             latent dimension the config is tuned for (default 32)
//   -l X             lambda (default 0.05)
//   --movielens      ratings use the u::v::r::ts format (1-based ids)
//   --test FRAC      holdout fraction for the probe quality gate
//                    (default 0.1; 0 disables the RMSE gate)
//   --seed N         split/init seed, as cumf_train (default 1)
//   --device D       k40 | titanx | p100 | v100 (default titanx, the
//                    device cumf_train's telemetry simulates)
//   --finalists N    candidates surviving the model prune (default 8)
//   --probe-epochs N real epochs per finalist probe (default 2)
//   --workers N      tuner-side probe parallelism; the output is
//                    byte-identical for any value (default 1)
//   --max-gpus N     also search multi-GPU variants up to N devices
//   --host-mem SIZE  out-of-core host budget cap (shard-dir input only)
//   --quick          small grids (CI smoke; still covers every knob axis)
//   --trace          print the full scored candidate table
//
// The search: enumerate the knob space, score everything against the
// gpusim cost model (occupancy + cache-trace roofs + interconnect + stream
// pipeline), probe only the surviving finalists with real AlsEngine epochs,
// and pick the winner by the counter-refined modeled time. The default
// configuration is always probed, so the winner never models slower than
// it. The config is written CRC-framed, keyed by the device x dataset
// fingerprint; `cumf_train --auto-tune` applies it. Repeated runs emit
// byte-identical files (see src/tune/tune.hpp for the contract).
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "data/loaders.hpp"
#include "data/shards.hpp"
#include "gpusim/device.hpp"
#include "prof/bottleneck.hpp"
#include "sparse/split.hpp"
#include "tune/tune.hpp"

#include "cli_parse.hpp"

using namespace cumf;

namespace {

constexpr const char* kTool = "cumf_tune";

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  cumf_tune <ratings|shard-dir> <config-out> [-f N] [-l X]\n"
      "            [--movielens] [--test FRAC] [--seed N]\n"
      "            [--device k40|titanx|p100|v100]\n"
      "            [--finalists N] [--probe-epochs N] [--workers N]\n"
      "            [--max-gpus N] [--host-mem SIZE] [--quick] [--trace]\n"
      "\n"
      "  <config-out>: a file path, or an existing directory (the config\n"
      "  is then named by its device x dataset fingerprint key)\n");
  std::exit(2);
}

std::uint64_t parse_mem_size(const std::string& text) {
  std::uint64_t scale = 1;
  std::string digits = text;
  if (!digits.empty()) {
    switch (digits.back()) {
      case 'k': case 'K': scale = 1ull << 10; digits.pop_back(); break;
      case 'm': case 'M': scale = 1ull << 20; digits.pop_back(); break;
      case 'g': case 'G': scale = 1ull << 30; digits.pop_back(); break;
      default: break;
    }
  }
  return cli::parse_uint(kTool, "--host-mem", digits, 1,
                         std::numeric_limits<std::uint64_t>::max() / scale) *
         scale;
}

std::string describe(const tune::TuneChoice& c) {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "tile=%d bin=%d %s fs=%u %s %s w=%d g=%d %s", c.tile, c.bin,
                solver_cli_name(c.solver), c.fs, to_string(c.schedule),
                to_string(c.path), c.workers, c.gpus, c.link.c_str());
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    usage();
  }
  const std::string input_path = argv[1];
  std::string out_path = argv[2];

  tune::TuneRequest req;
  std::string device_name = "titanx";
  double test_fraction = 0.1;
  LoaderOptions loader;
  std::uint64_t host_mem = 0;
  bool trace_all = false;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
      }
      return argv[++i];
    };
    if (arg == "-f") {
      req.f = static_cast<std::size_t>(
          cli::parse_int(kTool, "-f", next(), 1, 65536));
    } else if (arg == "-l") {
      req.lambda = cli::parse_double(kTool, "-l", next(), 0.0, 1e9);
    } else if (arg == "--movielens") {
      loader.format = RatingsFormat::MovieLens;
      loader.one_based = true;
    } else if (arg == "--test") {
      test_fraction = cli::parse_double(kTool, "--test", next(), 0.0, 0.99);
    } else if (arg == "--seed") {
      req.seed = cli::parse_uint(kTool, "--seed", next(), 0,
                                 std::numeric_limits<std::uint64_t>::max());
    } else if (arg == "--device") {
      device_name = next();
    } else if (arg == "--finalists") {
      req.finalists = static_cast<std::size_t>(
          cli::parse_int(kTool, "--finalists", next(), 1, 1024));
    } else if (arg == "--probe-epochs") {
      req.probe_epochs = static_cast<int>(
          cli::parse_int(kTool, "--probe-epochs", next(), 1, 1000));
    } else if (arg == "--workers") {
      req.workers = static_cast<int>(
          cli::parse_int(kTool, "--workers", next(), 1, 4096));
    } else if (arg == "--max-gpus") {
      req.max_gpus = static_cast<int>(
          cli::parse_int(kTool, "--max-gpus", next(), 1, 64));
    } else if (arg == "--host-mem") {
      host_mem = parse_mem_size(next());
    } else if (arg == "--quick") {
      req.tile_grid = {4, 10, 16};
      req.bin_grid = {16, 32};
      req.fs_grid = {2, 6};
      req.worker_grid = {1, 4};
      req.include_exact = true;
    } else if (arg == "--trace") {
      trace_all = true;
    } else {
      std::fprintf(stderr, "cumf_tune: unknown option '%s'\n", arg.c_str());
      usage();
    }
  }
  try {
    req.device = gpusim::device_by_name(device_name);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cumf_tune: %s\n", e.what());
    return 2;
  }

  try {
    // Assemble the dataset + fingerprint, replaying cumf_train's loading
    // sequence exactly so the tuned config's key matches what --auto-tune
    // recomputes.
    tune::TuneInput input;
    input.fingerprint.device = req.device.name;
    input.fingerprint.f = static_cast<std::uint32_t>(req.f);
    input.fingerprint.lambda = static_cast<float>(req.lambda);
    if (is_shard_dir(input_path)) {
      const ShardMeta meta = read_shard_meta(input_path);
      std::printf("shard store %s: %u x %u, %llu train + %llu test nnz\n",
                  input_path.c_str(), meta.rows, meta.cols,
                  static_cast<unsigned long long>(meta.train_nnz),
                  static_cast<unsigned long long>(meta.test_nnz));
      input.fingerprint.rows = meta.rows;
      input.fingerprint.cols = meta.cols;
      input.fingerprint.nnz = meta.train_nnz + meta.test_nnz;
      // Materialize the training set once for the probes (the tuner needs
      // real epochs); the out-of-core dimension still tunes host budgets
      // against the tile geometry.
      std::vector<Rating> entries;
      entries.reserve(meta.train_nnz);
      for (std::size_t t = 0; t < meta.row_tiles.size(); ++t) {
        const CsrTile tile =
            load_tile(input_path, TileView::by_row, t, meta.row_tiles[t]);
        const auto& row_ptr = tile.csr.row_ptr();
        const auto& col_idx = tile.csr.col_idx();
        const auto& values = tile.csr.values();
        for (index_t lr = 0; lr < tile.csr.rows(); ++lr) {
          const index_t u = tile.row_begin + lr;
          for (nnz_t k = row_ptr[lr]; k < row_ptr[lr + 1]; ++k) {
            entries.push_back(Rating{u, col_idx[k], values[k]});
          }
        }
      }
      input.train = RatingsCoo(meta.rows, meta.cols, std::move(entries));
      input.train.sort_and_dedup();
      input.test = read_shard_test(input_path);
      req.ooc_row_tiles = meta.row_tiles;
      req.ooc_host_cap = host_mem;
    } else {
      std::printf("loading %s...\n", input_path.c_str());
      RatingsCoo ratings = load_ratings_file(input_path, loader);
      std::printf("  %u x %u, %llu ratings\n", ratings.rows(),
                  ratings.cols(),
                  static_cast<unsigned long long>(ratings.nnz()));
      input.fingerprint.rows = ratings.rows();
      input.fingerprint.cols = ratings.cols();
      input.fingerprint.nnz = static_cast<std::uint64_t>(ratings.nnz());
      Rng rng(req.seed);
      if (test_fraction > 0) {
        TrainTestSplit split = split_holdout(ratings, test_fraction, rng);
        input.train = std::move(split.train);
        input.test = std::move(split.test);
      } else {
        input.train = std::move(ratings);
      }
      input.train.sort_and_dedup();
    }

    Stopwatch sw;
    std::vector<tune::Candidate> trace;
    const tune::TunedConfig config = tune::tune(req, input, &trace);
    const double tune_s = sw.seconds();

    // Human-readable trace: every probed finalist, then (with --trace) the
    // whole scored grid. Wall seconds are informational only — the ranking
    // and the persisted config never depend on them.
    std::printf(
        "\nsearched %llu candidates on %s: %llu pruned by the cost model, "
        "%llu probed with %d real epochs each (%.2f s total)\n",
        static_cast<unsigned long long>(config.candidates),
        req.device.name.c_str(),
        static_cast<unsigned long long>(config.pruned),
        static_cast<unsigned long long>(config.finalists), req.probe_epochs,
        tune_s);
    std::printf("%-52s %12s %12s %10s %7s\n", "finalist", "model s",
                "refined s", "wall s", "rmse");
    for (const tune::Candidate& c : trace) {
      if (!c.probed) {
        continue;
      }
      std::printf("%-52s %12.4g %12.4g %10.4g %7.4f%s\n",
                  describe(c.choice).c_str(), c.model_epoch_s,
                  c.refined_epoch_s, c.wall_epoch_s,
                  std::isfinite(c.probe_rmse) ? c.probe_rmse : 0.0,
                  c.quality_ok ? "" : "  [disqualified]");
    }
    if (trace_all) {
      std::printf("\n%-52s %12s  %s\n", "candidate", "model s", "note");
      for (const tune::Candidate& c : trace) {
        std::printf("%-52s %12.4g  %s\n", describe(c.choice).c_str(),
                    c.model_epoch_s,
                    c.feasible ? (c.probed ? "finalist" : "pruned")
                               : c.infeasible_why.c_str());
      }
    }

    std::printf("\nwinner: %s\n", describe(config.choice).c_str());
    std::printf("modeled epoch: winner %.6g s <= default %.6g s (%.2fx)\n",
                config.model_epoch_s, config.default_epoch_s,
                config.model_epoch_s > 0
                    ? config.default_epoch_s / config.model_epoch_s
                    : 0.0);
    if (!config.verdicts.empty()) {
      std::printf("%s", prof::render_roofline_table(config.verdicts,
                                                    req.device.name)
                            .c_str());
    }

    if (std::filesystem::is_directory(out_path)) {
      out_path = (std::filesystem::path(out_path) /
                  tune::tuned_config_filename(config.fingerprint))
                     .string();
    }
    tune::write_tuned_config_file(out_path, config);
    std::printf("tuned config written to %s\n", out_path.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cumf_tune: error: %s\n", e.what());
    return 1;
  }
}
