// Roofline bookkeeping (Williams et al.; paper Table I).
//
// Table I derives per-epoch compute (C) and memory (M) complexity for ALS and
// SGD and argues from the C/M ratio that ALS is compute-bound and SGD is
// memory-bound. These helpers compute the same quantities — both the
// *analytic* complexity formulas and *measured* operation counters that the
// kernels accumulate — so the bench can print predicted vs counted values.
#pragma once

#include <cstdint>

namespace cumf {

/// Measured operation counts accumulated by a kernel.
struct OpCounts {
  double flops = 0.0;
  double bytes_read = 0.0;
  double bytes_written = 0.0;

  double bytes() const noexcept { return bytes_read + bytes_written; }
  /// Arithmetic intensity (FLOP per byte); 0 when no traffic.
  double intensity() const noexcept {
    return bytes() > 0 ? flops / bytes() : 0.0;
  }
  OpCounts& operator+=(const OpCounts& o) noexcept {
    flops += o.flops;
    bytes_read += o.bytes_read;
    bytes_written += o.bytes_written;
    return *this;
  }
};

/// Analytic Table-I complexities (per epoch), in FLOPs / bytes.
struct AlsComplexity {
  double hermitian_compute = 0.0;  ///< O(Nz f²)
  double hermitian_memory = 0.0;   ///< O(Nz f + (m+n) f²)
  double solve_compute = 0.0;      ///< O((m+n) f³) for LU; O((m+n) fs f²) CG
  double solve_memory = 0.0;       ///< O((m+n) f²)
};

AlsComplexity als_complexity(double nnz, double m, double n, int f);
AlsComplexity als_complexity_cg(double nnz, double m, double n, int f,
                                int fs);

struct SgdComplexity {
  double compute = 0.0;  ///< O(Nz f)
  double memory = 0.0;   ///< O(Nz f)
};

SgdComplexity sgd_complexity(double nnz, int f);

/// DRAM traffic of packing `elements` FP32 values into FP16 (4 bytes read,
/// 2 written per element). Anchors the fp16_pack phase of the cuscope
/// bottleneck records to the same bookkeeping as the Table-I complexities.
double fp16_pack_traffic(double elements);

}  // namespace cumf
