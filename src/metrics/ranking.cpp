#include "metrics/ranking.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace cumf {

namespace {

/// Heap comparator: orders better items first, so the std heap algorithms
/// (which keep the *greatest* element at the front) surface the worst kept
/// item — the eviction candidate.
bool worse_at_front(const ScoredItem& a, const ScoredItem& b) noexcept {
  return TopKSelector::better(a, b);
}

}  // namespace

void TopKSelector::offer(index_t item, real_t score) {
  if (k_ == 0) {
    return;
  }
  const ScoredItem candidate{item, score};
  if (heap_.size() < k_) {
    heap_.push_back(candidate);
    std::push_heap(heap_.begin(), heap_.end(), worse_at_front);
    return;
  }
  if (better(candidate, heap_.front())) {
    std::pop_heap(heap_.begin(), heap_.end(), worse_at_front);
    heap_.back() = candidate;
    std::push_heap(heap_.begin(), heap_.end(), worse_at_front);
  }
}

std::vector<ScoredItem> TopKSelector::take_sorted() {
  std::sort_heap(heap_.begin(), heap_.end(), worse_at_front);
  return std::move(heap_);
}

std::vector<ScoredItem> recommend_top_k(const Matrix& x, const Matrix& theta,
                                        const CsrMatrix& seen, index_t user,
                                        std::size_t k) {
  CUMF_EXPECTS(user < seen.rows(), "user out of range");
  CUMF_EXPECTS(x.cols() == theta.cols(), "factor dimension mismatch");
  const auto rated = seen.row_cols(user);
  std::vector<double> scores(seen.cols());
  dot_rows(x.row(user), theta, 0, seen.cols(), scores);
  TopKSelector top(k);
  for (index_t v = 0; v < seen.cols(); ++v) {
    if (std::binary_search(rated.begin(), rated.end(), v)) {
      continue;
    }
    top.offer(v, static_cast<real_t>(scores[v]));
  }
  return top.take_sorted();
}

double auc_observed_vs_random(const Matrix& x, const Matrix& theta,
                              const CsrMatrix& observed, std::size_t samples,
                              Rng& rng) {
  CUMF_EXPECTS(observed.nnz() > 0, "need observed interactions");
  CUMF_EXPECTS(samples > 0, "need at least one sample");
  std::size_t wins = 0;
  std::size_t ties = 0;
  std::size_t effective = 0;
  for (std::size_t s = 0; s < samples; ++s) {
    // Uniform observed pair via a uniform position in the CSR arrays.
    const auto pos = rng.uniform_index(observed.nnz());
    // Find its row by binary search over row_ptr.
    const auto& ptr = observed.row_ptr();
    const auto it = std::upper_bound(ptr.begin(), ptr.end(), pos);
    const auto u = static_cast<index_t>(it - ptr.begin() - 1);
    const index_t v = observed.col_idx()[pos];
    // The negative must be genuinely unobserved for u: rejection-sample
    // until the draw misses row_cols(u). A user who has rated every item
    // has no negatives, so that draw is skipped rather than spun forever.
    const auto rated = observed.row_cols(u);
    if (rated.size() >= observed.cols()) {
      continue;
    }
    index_t rv = 0;
    do {
      rv = static_cast<index_t>(rng.uniform_index(observed.cols()));
    } while (std::binary_search(rated.begin(), rated.end(), rv));
    const double pos_score = dot(x.row(u), theta.row(v));
    const double neg_score = dot(x.row(u), theta.row(rv));
    wins += pos_score > neg_score;
    ties += pos_score == neg_score;
    ++effective;
  }
  if (effective == 0) {
    return 0.5;  // every user is saturated: no ranking question to ask
  }
  return (static_cast<double>(wins) + 0.5 * static_cast<double>(ties)) /
         static_cast<double>(effective);
}

double precision_at_k(const Matrix& x, const Matrix& theta,
                      const CsrMatrix& seen, const CsrMatrix& held_out,
                      std::size_t k) {
  CUMF_EXPECTS(seen.rows() == held_out.rows() &&
                   seen.cols() == held_out.cols(),
               "seen/held-out shape mismatch");
  CUMF_EXPECTS(k > 0, "k must be positive");
  double total = 0.0;
  std::size_t users = 0;
  for (index_t u = 0; u < seen.rows(); ++u) {
    const auto relevant = held_out.row_cols(u);
    if (relevant.empty()) {
      continue;
    }
    const auto recs = recommend_top_k(x, theta, seen, u, k);
    std::size_t hits = 0;
    for (const ScoredItem& r : recs) {
      hits += std::binary_search(relevant.begin(), relevant.end(), r.item);
    }
    total += static_cast<double>(hits) /
             static_cast<double>(std::min(k, relevant.size()));
    ++users;
  }
  return users == 0 ? 0.0 : total / static_cast<double>(users);
}

}  // namespace cumf
