#include "metrics/roofline.hpp"

namespace cumf {

AlsComplexity als_complexity(double nnz, double m, double n, int f) {
  AlsComplexity c;
  const double ff = f;
  // get_hermitian: each non-zero contributes an f×f outer-product
  // accumulation (half of it by symmetry, 2 FLOP per FMA → f² total).
  c.hermitian_compute = nnz * ff * ff;
  // Memory: every θ_v of a non-zero is read (Nz·f floats) and every A_u is
  // written once per row plus b_u reads (… (m+n)·f² floats).
  c.hermitian_memory = (nnz * ff + (m + n) * ff * ff) * 4.0;
  // LU solve: ~2/3 f³ per system, (m+n) systems per epoch.
  c.solve_compute = (m + n) * (2.0 / 3.0) * ff * ff * ff;
  c.solve_memory = (m + n) * ff * ff * 4.0;
  return c;
}

AlsComplexity als_complexity_cg(double nnz, double m, double n, int f,
                                int fs) {
  AlsComplexity c = als_complexity(nnz, m, n, f);
  const double ff = f;
  // CG: fs iterations, each dominated by one f×f matvec (2f² FLOPs), and
  // each iteration re-reads A (f² elements).
  c.solve_compute = (m + n) * fs * 2.0 * ff * ff;
  c.solve_memory = (m + n) * fs * ff * ff * 4.0;
  return c;
}

double fp16_pack_traffic(double elements) {
  return elements * (4.0 + 2.0);
}

SgdComplexity sgd_complexity(double nnz, int f) {
  SgdComplexity c;
  const double ff = f;
  // Per sample: predict (2f) + two factor updates (~8f) ≈ 10f FLOPs;
  // read and write both factor rows ≈ 16f bytes.
  c.compute = nnz * 10.0 * ff;
  c.memory = nnz * 16.0 * ff;
  return c;
}

}  // namespace cumf
