// Ranking metrics and top-k recommendation.
//
// The implicit-feedback experiments (§V-F) are recommendation tasks: what
// matters is the *order* of items, not the squared error. These helpers
// compute top-k lists (excluding already-seen items), AUC against sampled
// negatives, and precision@k against a held-out set.
#pragma once

#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "linalg/dense.hpp"
#include "sparse/csr.hpp"

namespace cumf {

/// Items scored for one user, best first.
struct ScoredItem {
  index_t item = 0;
  real_t score = 0;
  friend bool operator==(const ScoredItem&, const ScoredItem&) = default;
};

/// Bounded top-k selection under the ranking order (score descending, item
/// ascending on ties — a total order over distinct items, so the selected
/// set is unique regardless of offer order). A k-element min-heap keeps
/// memory at O(k) however many candidates stream through; the serving layer
/// runs one selector per item shard and merges the ≤ shards·k survivors
/// through a final selector, which provably equals the single-pass answer.
class TopKSelector {
 public:
  explicit TopKSelector(std::size_t k) : k_(k) { heap_.reserve(k); }

  /// The ranking order shared with recommend_top_k's partial_sort.
  static bool better(const ScoredItem& a, const ScoredItem& b) noexcept {
    return a.score != b.score ? a.score > b.score : a.item < b.item;
  }

  void offer(index_t item, real_t score);

  std::size_t k() const noexcept { return k_; }
  std::size_t size() const noexcept { return heap_.size(); }

  /// Destructive: returns the kept items best-first and empties the heap.
  std::vector<ScoredItem> take_sorted();

 private:
  std::size_t k_;
  std::vector<ScoredItem> heap_;  ///< min-heap: worst kept item at front
};

/// Top-k unseen items for `user`: scores every column not present in
/// `seen.row_cols(user)` with x_userᵀ θ_v (batched via dot_rows) and keeps
/// the k best under TopKSelector's order.
std::vector<ScoredItem> recommend_top_k(const Matrix& x, const Matrix& theta,
                                        const CsrMatrix& seen, index_t user,
                                        std::size_t k);

/// AUC estimate: probability that a random observed (u, v) pair outscores a
/// random unobserved item for the same user. `samples` pairs are drawn;
/// negatives are rejection-sampled so an item the user has rated is never
/// counted as "unobserved" (draws for users who rated every item are
/// skipped). Returns 0.5 when every draw was skipped.
double auc_observed_vs_random(const Matrix& x, const Matrix& theta,
                              const CsrMatrix& observed, std::size_t samples,
                              Rng& rng);

/// Mean precision@k: fraction of each user's top-k unseen recommendations
/// that appear in that user's `held_out` row. Users with no held-out items
/// are skipped; returns 0 if every user is skipped.
double precision_at_k(const Matrix& x, const Matrix& theta,
                      const CsrMatrix& seen, const CsrMatrix& held_out,
                      std::size_t k);

}  // namespace cumf
