// Ranking metrics and top-k recommendation.
//
// The implicit-feedback experiments (§V-F) are recommendation tasks: what
// matters is the *order* of items, not the squared error. These helpers
// compute top-k lists (excluding already-seen items), AUC against sampled
// negatives, and precision@k against a held-out set.
#pragma once

#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "linalg/dense.hpp"
#include "sparse/csr.hpp"

namespace cumf {

/// Items scored for one user, best first.
struct ScoredItem {
  index_t item = 0;
  real_t score = 0;
  friend bool operator==(const ScoredItem&, const ScoredItem&) = default;
};

/// Top-k unseen items for `user`: scores every column not present in
/// `seen.row_cols(user)` with x_userᵀ θ_v and keeps the k best.
std::vector<ScoredItem> recommend_top_k(const Matrix& x, const Matrix& theta,
                                        const CsrMatrix& seen, index_t user,
                                        std::size_t k);

/// AUC estimate: probability that a random observed (u, v) pair outscores a
/// random unobserved item for the same user. `samples` pairs are drawn.
double auc_observed_vs_random(const Matrix& x, const Matrix& theta,
                              const CsrMatrix& observed, std::size_t samples,
                              Rng& rng);

/// Mean precision@k: fraction of each user's top-k unseen recommendations
/// that appear in that user's `held_out` row. Users with no held-out items
/// are skipped; returns 0 if every user is skipped.
double precision_at_k(const Matrix& x, const Matrix& theta,
                      const CsrMatrix& seen, const CsrMatrix& held_out,
                      std::size_t k);

}  // namespace cumf
