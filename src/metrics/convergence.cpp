#include "metrics/convergence.hpp"

#include <limits>
#include <sstream>

#include "common/check.hpp"

namespace cumf {

void ConvergenceTracker::record(double seconds, double rmse, int epoch) {
  CUMF_EXPECTS(points_.empty() || seconds >= points_.back().seconds,
               "time must be monotone");
  points_.push_back(Point{seconds, rmse, epoch});
}

std::optional<double> ConvergenceTracker::time_to(double target_rmse) const {
  for (const Point& p : points_) {
    if (p.rmse <= target_rmse) {
      return p.seconds;
    }
  }
  return std::nullopt;
}

std::optional<int> ConvergenceTracker::epochs_to(double target_rmse) const {
  for (const Point& p : points_) {
    if (p.rmse <= target_rmse) {
      return p.epoch;
    }
  }
  return std::nullopt;
}

double ConvergenceTracker::best_rmse() const {
  double best = std::numeric_limits<double>::infinity();
  for (const Point& p : points_) {
    best = std::min(best, p.rmse);
  }
  return best;
}

std::string ConvergenceTracker::to_csv() const {
  std::ostringstream os;
  os << "epoch,seconds,rmse\n";
  for (const Point& p : points_) {
    os << p.epoch << ',' << p.seconds << ',' << p.rmse << '\n';
  }
  return os.str();
}

std::string ConvergenceTracker::series(const std::string& label) const {
  std::ostringstream os;
  os << "# " << label << "  (seconds  test-RMSE)\n";
  for (const Point& p : points_) {
    os << p.seconds << '\t' << p.rmse << '\n';
  }
  return os.str();
}

}  // namespace cumf
