// Convergence tracking: test-RMSE as a function of (simulated) training time.
//
// Fig. 6 and Fig. 8 plot test RMSE against training seconds; Table IV reports
// the time at which each solver first reaches the dataset's acceptable RMSE.
// This tracker records the curve and answers both queries.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace cumf {

class ConvergenceTracker {
 public:
  struct Point {
    double seconds = 0.0;  ///< cumulative training time (simulated or wall)
    double rmse = 0.0;     ///< test RMSE after this epoch
    int epoch = 0;
  };

  void record(double seconds, double rmse, int epoch);

  const std::vector<Point>& curve() const noexcept { return points_; }

  /// First time at which RMSE ≤ target; empty if never reached.
  std::optional<double> time_to(double target_rmse) const;

  /// Epochs needed to reach the target; empty if never reached.
  std::optional<int> epochs_to(double target_rmse) const;

  double best_rmse() const;

  /// Renders "seconds rmse" rows, one per epoch — the Fig. 6/8 series.
  std::string series(const std::string& label) const;

  /// Machine-readable companion of series(): "epoch,seconds,rmse" CSV with
  /// a header row, ready for pandas/gnuplot.
  std::string to_csv() const;

 private:
  std::vector<Point> points_;
};

}  // namespace cumf
