#include "metrics/rmse.hpp"

#include <cmath>

#include "common/check.hpp"

namespace cumf {

real_t predict(const Matrix& x, const Matrix& theta, index_t u, index_t v) {
  CUMF_EXPECTS(x.cols() == theta.cols(), "factor dimension mismatch");
  return static_cast<real_t>(dot(x.row(u), theta.row(v)));
}

double rmse(const RatingsCoo& entries, const Matrix& x, const Matrix& theta) {
  if (entries.nnz() == 0) {
    return 0.0;
  }
  CUMF_EXPECTS(x.rows() >= entries.rows() && theta.rows() >= entries.cols(),
               "factor matrices too small for the rating matrix");
  double sq = 0.0;
  for (const Rating& e : entries.entries()) {
    const double err =
        static_cast<double>(e.r) - dot(x.row(e.u), theta.row(e.v));
    sq += err * err;
  }
  return std::sqrt(sq / static_cast<double>(entries.nnz()));
}

double regularized_loss(const RatingsCoo& entries, const Matrix& x,
                        const Matrix& theta, double lambda) {
  std::vector<index_t> row_nnz(entries.rows(), 0);
  std::vector<index_t> col_nnz(entries.cols(), 0);
  double sq = 0.0;
  for (const Rating& e : entries.entries()) {
    const double err =
        static_cast<double>(e.r) - dot(x.row(e.u), theta.row(e.v));
    sq += err * err;
    ++row_nnz[e.u];
    ++col_nnz[e.v];
  }
  double reg = 0.0;
  for (index_t u = 0; u < entries.rows(); ++u) {
    reg += row_nnz[u] * dot(x.row(u), x.row(u));
  }
  for (index_t v = 0; v < entries.cols(); ++v) {
    reg += col_nnz[v] * dot(theta.row(v), theta.row(v));
  }
  return sq + lambda * reg;
}

}  // namespace cumf
