// Test-RMSE evaluation — the quality metric of every experiment (§V-B).
#pragma once

#include "linalg/dense.hpp"
#include "sparse/coo.hpp"

namespace cumf {

/// Model prediction r̂_uv = x_uᵀ θ_v.
real_t predict(const Matrix& x, const Matrix& theta, index_t u, index_t v);

/// Root-mean-square error of X·Θᵀ against the given entries.
/// X is m×f, Θ is n×f. Returns 0 for an empty set.
double rmse(const RatingsCoo& entries, const Matrix& x, const Matrix& theta);

/// Squared-error objective of eq. (1): Σ (r−x·θ)² + λ Σ n_u‖x_u‖² +
/// λ Σ n_v‖θ_v‖² — used by tests to assert monotone descent of ALS.
double regularized_loss(const RatingsCoo& entries, const Matrix& x,
                        const Matrix& theta, double lambda);

}  // namespace cumf
