// Fundamental scalar and index types shared across the library.
#pragma once

#include <cstddef>
#include <cstdint>

namespace cumf {

/// Row/column index into a rating matrix. 32 bits covers the paper's largest
/// dataset dimension (Hugewiki: m = 50,082,603).
using index_t = std::uint32_t;

/// Count of non-zero entries. Hugewiki has 3.1e9 non-zeros, so 64 bits.
using nnz_t = std::uint64_t;

/// Default working precision for factor matrices (the paper's FP32).
using real_t = float;

}  // namespace cumf
