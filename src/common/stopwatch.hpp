// Wall-clock stopwatch used by the CPU-side benchmark harness.
//
// Simulated GPU time lives elsewhere (gpusim::SimClock); this class measures
// real host time for the parts of the evaluation that run natively.
#pragma once

#include <chrono>

namespace cumf {

class Stopwatch {
 public:
  Stopwatch() noexcept { reset(); }

  void reset() noexcept { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double milliseconds() const noexcept { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace cumf
