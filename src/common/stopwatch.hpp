// Wall-clock stopwatch used by the CPU-side benchmark harness.
//
// Simulated GPU time lives elsewhere (gpusim::SimClock); this class measures
// real host time for the parts of the evaluation that run natively.
#pragma once

#include <chrono>
#include <cstdint>

namespace cumf {

class Stopwatch {
 public:
  Stopwatch() noexcept { reset(); }

  void reset() noexcept { start_ = lap_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double milliseconds() const noexcept { return seconds() * 1e3; }

  /// Seconds since the last lap() (or reset/construction for the first
  /// lap), then restarts the lap interval. seconds() keeps measuring from
  /// the original start, so per-epoch laps and the cumulative total come
  /// from one stopwatch.
  double lap() noexcept {
    const clock::time_point now = clock::now();
    const double s = std::chrono::duration<double>(now - lap_).count();
    lap_ = now;
    return s;
  }

  /// Monotonic nanoseconds relative to a process-wide epoch (the first call
  /// anywhere in the process). One shared anchor means timestamps taken on
  /// different threads — the cuprof tracer, the benches, per-epoch laps —
  /// are directly comparable without re-deriving a base time.
  static std::uint64_t now_ns() noexcept {
    static const clock::time_point epoch = clock::now();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                             epoch)
            .count());
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
  clock::time_point lap_;
};

}  // namespace cumf
