// Plain-text table formatting for benchmark output.
//
// Every bench binary prints the same rows/series as the paper's tables and
// figures; this helper renders aligned columns so the output is directly
// comparable to the publication.
#pragma once

#include <string>
#include <vector>

namespace cumf {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a data row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Render with column alignment and a header rule.
  std::string to_string() const;

  std::size_t rows() const noexcept { return rows_.size(); }

  /// Format a double with `digits` significant decimals.
  static std::string num(double v, int digits = 3);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cumf
