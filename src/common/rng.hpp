// Deterministic, fast pseudo-random number generation.
//
// We avoid std::mt19937 for the hot paths (dataset generation touches hundreds
// of millions of entries at full scale) and use xoshiro256++, seeded via
// splitmix64 so that any 64-bit seed yields a well-mixed state. All generators
// are deterministic given a seed: every experiment in the paper reproduction
// is replayable bit-for-bit.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace cumf {

/// splitmix64 step; used for seeding and as a cheap stateless hash.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256++ generator (Blackman & Vigna). Satisfies
/// std::uniform_random_bit_generator so it can drive std distributions too.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). Requires n > 0. Uses Lemire's multiply-shift
  /// rejection method to avoid modulo bias.
  std::uint64_t uniform_index(std::uint64_t n) noexcept;

  /// Standard normal via Box-Muller (caches the second deviate).
  double normal() noexcept;

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Jump ahead 2^128 steps: yields an independent stream for a parallel
  /// worker while preserving determinism.
  void jump() noexcept;

  /// Convenience: a generator `k` jumps ahead of `*this` (for worker k).
  Rng split(unsigned k) const noexcept;

  /// Complete generator state, exposed so checkpoints can persist an Rng
  /// mid-stream and resume it bit-for-bit (xoshiro words plus the Box-Muller
  /// cached deviate — without the cache, a resumed normal() stream would
  /// diverge on the very next call).
  struct State {
    std::array<std::uint64_t, 4> s{};
    double cached_normal = 0.0;
    bool has_cached_normal = false;

    friend bool operator==(const State&, const State&) = default;
  };

  State state() const noexcept {
    return State{s_, cached_normal_, has_cached_normal_};
  }
  void set_state(const State& state) noexcept {
    s_ = state.s;
    cached_normal_ = state.cached_normal;
    has_cached_normal_ = state.has_cached_normal;
  }

 private:
  std::array<std::uint64_t, 4> s_;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Samples from a Zipf(s) distribution over {0, …, n-1} via inversion on a
/// precomputed CDF. Used to plant power-law row/column degrees that mimic the
/// skew of the Netflix / YahooMusic / Hugewiki rating matrices.
class ZipfSampler {
 public:
  /// n: support size; s: exponent (s = 0 → uniform; larger → more skewed).
  ZipfSampler(std::size_t n, double s);

  std::size_t operator()(Rng& rng) const noexcept;

  std::size_t support() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace cumf
