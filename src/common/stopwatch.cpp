// Intentionally empty: Stopwatch is header-only, but the translation unit
// keeps the build graph uniform (one .cpp per public header in common/).
#include "common/stopwatch.hpp"
