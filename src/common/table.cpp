#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/check.hpp"

namespace cumf {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  CUMF_EXPECTS(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  CUMF_EXPECTS(row.size() == header_.size(),
               "row arity must match the header");
  rows_.push_back(std::move(row));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::left
         << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (const std::size_t w : widths) {
    total += w;
  }
  total += 2 * (widths.size() - 1);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    emit(row);
  }
  return os.str();
}

std::string Table::num(double v, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << v;
  return os.str();
}

}  // namespace cumf
