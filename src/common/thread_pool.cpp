#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

#include "common/check.hpp"

namespace cumf {

namespace {
/// Set for the duration of worker_loop: lets wait_idle detect that it is
/// running on one of this pool's own workers and must help drain the queue
/// rather than block it.
thread_local const ThreadPool* t_worker_pool = nullptr;
/// How many in-flight tasks this thread is currently inside (nested via
/// helping). A thread blocked in wait_idle contributes exactly this many
/// tasks to in_flight_ that can make no progress until wait_idle returns.
thread_local std::size_t t_task_depth = 0;
/// Portion of t_task_depth this thread has already accounted into
/// waiting_depth_. Nested wait_idle frames (helping runs a task that itself
/// waits) must only add the delta, or the outer frames get double-counted
/// and the drained predicate can never hold.
thread_local std::size_t t_depth_contributed = 0;

/// Global profiler hook; relaxed is enough — installation happens before
/// the instrumented run and callbacks tolerate a stale nullptr/pointer.
std::atomic<ThreadPool::Observer*> g_observer{nullptr};
}  // namespace

void ThreadPool::set_observer(Observer* observer) noexcept {
  g_observer.store(observer, std::memory_order_release);
}

ThreadPool::Observer* ThreadPool::observer() noexcept {
  return g_observer.load(std::memory_order_acquire);
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

bool ThreadPool::on_worker_thread() const noexcept {
  return t_worker_pool == this;
}

void ThreadPool::submit(std::function<void()> task) {
  CUMF_EXPECTS(task != nullptr, "cannot submit an empty task");
  // Capture the tag outside the lock: the observer may take its own locks
  // (e.g. the tracer's flow-id map) and must see the submitting thread's
  // span context, not the pool's critical section.
  std::uint64_t tag = 0;
  if (Observer* obs = observer()) {
    tag = obs->task_submitted();
  }
  {
    std::lock_guard lock(mutex_);
    CUMF_EXPECTS(!stopping_, "pool is shutting down");
    queue_.push(Task{std::move(task), tag});
    ++in_flight_;
  }
  cv_.notify_all();
}

void ThreadPool::run_one(std::unique_lock<std::mutex>& lock) {
  Task task = std::move(queue_.front());
  queue_.pop();
  lock.unlock();
  ++t_task_depth;
  Observer* const obs = task.tag != 0 ? observer() : nullptr;
  if (obs != nullptr) {
    obs->task_started(task.tag);
  }
  task.fn();
  if (obs != nullptr) {
    obs->task_finished(task.tag);
  }
  --t_task_depth;
  lock.lock();
  // The decrement happens after the task body: a task that submits
  // follow-ups keeps in_flight_ above zero throughout, so wait_idle cannot
  // observe a spurious idle window between parent and child. Every
  // completion may satisfy an idle or drained-to-waiters predicate.
  --in_flight_;
  cv_.notify_all();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  if (on_worker_thread()) {
    // Called from inside a task (e.g. nested parallel_for): blocking would
    // strand the queue with one fewer worker and deadlocks once every
    // worker waits. Instead, help drain the queue, and treat the pool as
    // idle when the only in-flight tasks are the stacks of threads blocked
    // here (in_flight_ == waiting_depth_): those can make no progress until
    // their wait_idle returns, and nothing else is queued or running.
    const std::size_t contribution = t_task_depth - t_depth_contributed;
    const std::size_t saved_contributed = t_depth_contributed;
    waiting_depth_ += contribution;
    t_depth_contributed = t_task_depth;
    cv_.notify_all();  // other waiters' predicates may hold now
    for (;;) {
      if (!queue_.empty()) {
        run_one(lock);
        continue;
      }
      if (in_flight_ == waiting_depth_) {
        break;
      }
      cv_.wait(lock);
    }
    waiting_depth_ -= contribution;
    t_depth_contributed = saved_contributed;
    return;
  }
  cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(std::size_t n, const ForBody& body) {
  if (n == 0) {
    return;
  }
  const std::size_t workers = std::min(n, size());
  // shared_ptr keeps the counter alive even if a task outlives this frame's
  // locals in a helping-waiter interleaving; `body` is safe by reference
  // because wait_idle blocks until every chunk has run.
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  for (std::size_t c = 0; c < workers; ++c) {
    submit([next, n, workers, &body, c] {
      for (;;) {
        // Guided chunk size from a (possibly stale) snapshot: halves as the
        // range drains, floors at 1. Staleness only affects granularity.
        const std::size_t seen = next->load(std::memory_order_relaxed);
        if (seen >= n) {
          break;
        }
        const std::size_t chunk =
            std::max<std::size_t>(1, (n - seen) / (2 * workers));
        const std::size_t begin =
            next->fetch_add(chunk, std::memory_order_relaxed);
        if (begin >= n) {
          break;
        }
        body(begin, std::min(begin + chunk, n), c);
      }
    });
  }
  wait_idle();
}

void ThreadPool::parallel_for_static(std::size_t n, const ForBody& body) {
  if (n == 0) {
    return;
  }
  const std::size_t chunks = std::min(n, size());
  const std::size_t base = n / chunks;
  const std::size_t extra = n % chunks;
  std::size_t begin = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t len = base + (c < extra ? 1 : 0);
    const std::size_t end = begin + len;
    submit([&body, begin, end, c] { body(begin, end, c); });
    begin = end;
  }
  wait_idle();
}

void ThreadPool::parallel_for_chunks(std::span<const std::size_t> bounds,
                                     const ForBody& body) {
  CUMF_EXPECTS(bounds.size() >= 2, "need at least one chunk boundary pair");
  CUMF_EXPECTS(bounds.front() == 0, "bounds must start at 0");
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    CUMF_EXPECTS(bounds[i] >= bounds[i - 1], "bounds must be ascending");
  }
  const std::size_t chunks = bounds.size() - 1;
  const std::size_t workers = std::min(chunks, size());
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  for (std::size_t c = 0; c < workers; ++c) {
    submit([next, bounds, chunks, &body, c] {
      for (;;) {
        const std::size_t i =
            next->fetch_add(1, std::memory_order_relaxed);
        if (i >= chunks) {
          break;
        }
        if (bounds[i] < bounds[i + 1]) {
          body(bounds[i], bounds[i + 1], c);
        }
      }
    });
  }
  wait_idle();
}

void ThreadPool::worker_loop(std::size_t worker) {
  t_worker_pool = this;
  if (Observer* obs = observer()) {
    obs->worker_started(worker);
  }
  std::unique_lock lock(mutex_);
  for (;;) {
    cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) {
      break;  // stopping_ and drained
    }
    run_one(lock);
  }
  t_worker_pool = nullptr;
}

}  // namespace cumf
