#include "common/thread_pool.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"

namespace cumf {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_task_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  CUMF_EXPECTS(task != nullptr, "cannot submit an empty task");
  {
    std::lock_guard lock(mutex_);
    CUMF_EXPECTS(!stopping_, "pool is shutting down");
    queue_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t,
                                            std::size_t)>& body) {
  if (n == 0) {
    return;
  }
  const std::size_t chunks = std::min(n, size());
  const std::size_t base = n / chunks;
  const std::size_t extra = n % chunks;
  std::size_t begin = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t len = base + (c < extra ? 1 : 0);
    const std::size_t end = begin + len;
    submit([&body, begin, end, c] { body(begin, end, c); });
    begin = end;
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping_ and drained
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) {
        cv_idle_.notify_all();
      }
    }
  }
}

}  // namespace cumf
