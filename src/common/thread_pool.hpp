// A minimal fixed-size thread pool with a parallel_for primitive.
//
// The CPU baselines (LIBMF-style blocked SGD, NOMAD-style asynchronous SGD,
// Hogwild) are genuinely multi-threaded algorithms; this pool gives them a
// shared-memory substrate. The pool also backs the functional execution of
// "GPU" kernels: thread-blocks of the simulated device map onto pool tasks.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <span>
#include <thread>
#include <vector>

namespace cumf {

class ThreadPool {
 public:
  /// Instrumentation hook for profilers (the cuprof tracer installs one).
  /// The observer is global to all pools and not owned; callbacks must be
  /// cheap, thread-safe and noexcept. `task_submitted` runs on the
  /// submitting thread and returns an opaque tag (0 = untracked) that is
  /// handed back to `task_started`/`task_finished` on the executing thread,
  /// so a profiler can stitch submit→run edges (parent span, flow arrows)
  /// across threads. The hook inverts the layering: common/ defines the
  /// interface, prof/ implements it, and the pool never depends on the
  /// profiler.
  class Observer {
   public:
    virtual ~Observer() = default;
    virtual void worker_started(std::size_t worker) noexcept = 0;
    virtual std::uint64_t task_submitted() noexcept = 0;
    virtual void task_started(std::uint64_t tag) noexcept = 0;
    virtual void task_finished(std::uint64_t tag) noexcept = 0;
  };

  /// Installs (or clears, with nullptr) the global observer. The caller
  /// keeps ownership and must keep the observer alive while installed.
  static void set_observer(Observer* observer) noexcept;
  static Observer* observer() noexcept;

  /// Creates `threads` workers. 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task. Safe to call from worker threads (a task may submit
  /// follow-up tasks). Tasks must not throw; exceptions terminate the
  /// program (matching the behaviour of an unhandled exception on a
  /// device).
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished, including tasks
  /// submitted by other tasks while waiting. When called from a worker
  /// thread the caller helps drain the queue instead of blocking it, so
  /// nested parallel_for / submit+wait patterns cannot deadlock the pool.
  void wait_idle();

  using ForBody = std::function<void(std::size_t begin, std::size_t end,
                                     std::size_t worker)>;

  /// Run `body(begin, end, worker)` over [0, n) with a guided schedule:
  /// up to `size()` worker tasks pull variable-size chunks from a shared
  /// atomic counter (chunk ≈ remaining / (2·workers), never below 1), so a
  /// skewed cost distribution cannot strand the range behind one worker.
  /// Each worker index is held by exactly one task, and that task invokes
  /// `body` sequentially — per-worker scratch indexed by `worker` stays
  /// race-free. Blocks until the whole range completes.
  void parallel_for(std::size_t n, const ForBody& body);

  /// The pre-guided behaviour: statically partition [0, n) into `size()`
  /// contiguous chunks, one `body` call per worker. Kept for callers that
  /// rely on one contiguous range per worker and as the baseline the
  /// scheduling benchmarks compare against.
  void parallel_for_static(std::size_t n, const ForBody& body);

  /// Caller-weighted schedule: `bounds` is an ascending boundary list
  /// (bounds.front() == 0, bounds.back() == n) and chunk i is
  /// [bounds[i], bounds[i+1]). Worker tasks pull chunk indices from an
  /// atomic counter in order, so front-loading the heavy chunks (e.g. equal
  /// total nnz per chunk) balances skewed work. Empty chunks are skipped.
  void parallel_for_chunks(std::span<const std::size_t> bounds,
                           const ForBody& body);

 private:
  /// A queued task plus the observer tag captured at submit time.
  struct Task {
    std::function<void()> fn;
    std::uint64_t tag = 0;
  };

  void worker_loop(std::size_t worker);
  bool on_worker_thread() const noexcept;
  /// Pops and runs one task. Caller holds `lock`; the lock is released
  /// while the task runs and re-acquired afterwards.
  void run_one(std::unique_lock<std::mutex>& lock);

  std::vector<std::thread> workers_;
  std::queue<Task> queue_;
  mutable std::mutex mutex_;
  /// One cv for all transitions (task available, pool idle, stopping):
  /// submitters, workers, and helpers all wait with predicates, so the
  /// extra wakeups are benign and no notification can be missed.
  std::condition_variable cv_;
  /// Tasks queued or currently executing. Reaches 0 only when the pool is
  /// truly idle; guarded by mutex_ together with queue_.
  std::size_t in_flight_ = 0;
  /// Sum of the task depths of worker threads currently blocked in
  /// wait_idle. Those stack frames are in_flight_ but cannot progress, so a
  /// helping waiter treats in_flight_ == waiting_depth_ as "drained".
  std::size_t waiting_depth_ = 0;
  bool stopping_ = false;
};

}  // namespace cumf
