// A minimal fixed-size thread pool with a parallel_for primitive.
//
// The CPU baselines (LIBMF-style blocked SGD, NOMAD-style asynchronous SGD,
// Hogwild) are genuinely multi-threaded algorithms; this pool gives them a
// shared-memory substrate. The pool also backs the functional execution of
// "GPU" kernels: thread-blocks of the simulated device map onto pool tasks.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace cumf {

class ThreadPool {
 public:
  /// Creates `threads` workers. 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task. Tasks must not throw; exceptions terminate the program
  /// (matching the behaviour of an unhandled exception on a device).
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

  /// Statically partition [0, n) into `size()` contiguous chunks and run
  /// `body(begin, end, worker)` on each. Blocks until all chunks complete.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t begin,
                                             std::size_t end,
                                             std::size_t worker)>& body);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

}  // namespace cumf
