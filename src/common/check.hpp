// Precondition / invariant checking in the spirit of the C++ Core Guidelines
// Expects()/Ensures(). Violations throw cumf::CheckError so tests can assert
// on failure behaviour instead of aborting the process.
#pragma once

#include <stdexcept>
#include <string>

namespace cumf {

/// Thrown when a CUMF_CHECK / Expects-style contract is violated.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void check_failed(const char* kind, const char* expr,
                               const char* file, int line,
                               const std::string& msg);
}  // namespace detail

}  // namespace cumf

/// Precondition check: validates arguments at public API boundaries.
#define CUMF_EXPECTS(cond, msg)                                          \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::cumf::detail::check_failed("Precondition", #cond, __FILE__,      \
                                   __LINE__, (msg));                     \
    }                                                                    \
  } while (false)

/// Internal invariant check: conditions the implementation must uphold.
#define CUMF_ENSURES(cond, msg)                                          \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::cumf::detail::check_failed("Invariant", #cond, __FILE__,         \
                                   __LINE__, (msg));                     \
    }                                                                    \
  } while (false)
