#include "common/rng.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace cumf {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) {
    word = splitmix64(sm);
  }
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits → uniform in [0, 1) with full double precision.
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  // Lemire's nearly-divisionless method.
  using u128 = unsigned __int128;
  std::uint64_t x = (*this)();
  u128 m = static_cast<u128>(x) * static_cast<u128>(n);
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<u128>(x) * static_cast<u128>(n);
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) {
    u1 = uniform();
  }
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

void Rng::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x180EC6D33CFD0ABAull, 0xD5A61266F0C9392Cull,
      0xA9582618E03FC9AAull, 0x39ABDC4529B1661Cull};
  std::array<std::uint64_t, 4> acc{};
  for (const std::uint64_t word : kJump) {
    for (int bit = 0; bit < 64; ++bit) {
      if (word & (std::uint64_t{1} << bit)) {
        for (std::size_t i = 0; i < acc.size(); ++i) {
          acc[i] ^= s_[i];
        }
      }
      (*this)();
    }
  }
  s_ = acc;
  has_cached_normal_ = false;
}

Rng Rng::split(unsigned k) const noexcept {
  Rng child = *this;
  for (unsigned i = 0; i <= k; ++i) {
    child.jump();
  }
  return child;
}

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  CUMF_EXPECTS(n > 0, "Zipf support must be non-empty");
  CUMF_EXPECTS(s >= 0.0, "Zipf exponent must be non-negative");
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (auto& c : cdf_) {
    c /= total;
  }
  cdf_.back() = 1.0;  // guard against accumulated rounding
}

std::size_t ZipfSampler::operator()(Rng& rng) const noexcept {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace cumf
