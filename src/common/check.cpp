#include "common/check.hpp"

#include <sstream>

namespace cumf::detail {

void check_failed(const char* kind, const char* expr, const char* file,
                  int line, const std::string& msg) {
  std::ostringstream os;
  os << kind << " violated: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) {
    os << " — " << msg;
  }
  throw CheckError(os.str());
}

}  // namespace cumf::detail
