// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over byte ranges.
//
// Used by the checkpoint format (src/data/checkpoint.*) to detect torn or
// bit-rotted files before any field is trusted. Table-driven, one byte per
// step — checkpoints are written once per epoch, so throughput is not a
// concern; what matters is that the checksum is standard (verifiable with
// `python3 -c 'import zlib; print(hex(zlib.crc32(data)))'`).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace cumf {

/// Running CRC-32: feed `crc` from the previous call to continue a stream
/// (start with 0). Matches zlib's crc32().
std::uint32_t crc32(std::uint32_t crc, const void* data, std::size_t n);

inline std::uint32_t crc32(std::string_view bytes) {
  return crc32(0, bytes.data(), bytes.size());
}

}  // namespace cumf
