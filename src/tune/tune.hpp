// cutune: cost-model-pruned auto-tuning over the cuMF variant space.
//
// The paper's headline numbers (Figs. 4-8, Table III) come from hand-picked
// per-device knobs: BIN/tile sizes, the CG truncation fs, FP16 staging, the
// worker schedule, the kernel path, device counts and the interconnect.
// cutune makes that search reproducible:
//
//   1. enumerate_grid() spans the knob space (a few thousand candidates);
//   2. evaluate_model() scores every candidate against the gpusim cost
//      model — occupancy feasibility, the trace-driven cache simulation
//      behind update_phase_times(), the all-gather interconnect model and
//      the out-of-core stream pipeline — which prunes the field to a
//      handful of finalists without training anything;
//   3. probe_candidate() runs real AlsEngine epochs for each finalist and
//      refines its score with the *measured deterministic counters* (mean
//      CG iterations, FP16/CG fallback rates) plugged back into the model;
//   4. tune() picks the winner — the default configuration is always a
//      finalist, so the winner's modeled epoch time never exceeds the
//      default's — and attaches cuscope roofline verdicts explaining why
//      the chosen variant wins.
//
// Determinism contract: the persisted TunedConfig is a pure function of
// (dataset bytes, TuneRequest) — rankings use modeled seconds refined by
// deterministic counters, never wall-clock measurements (wall times appear
// only in the human-readable trace). Repeated runs and any tuner worker
// count serialize byte-identical configs; tests/test_tune.cpp pins this.
//
// Persistence: versioned JSON payload inside the checkpoint CRC frame
// (magic "CUMFTUNE" + u32 version + u64 length + payload + CRC-32), keyed
// by a device x dataset fingerprint that `cumf_train --auto-tune`
// validates before applying anything. Rejections reuse the checkpoint /
// shard taxonomy (TuneReject) so the CLI can name the reason.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.hpp"
#include "core/als.hpp"
#include "core/kernel_stats.hpp"
#include "data/shards.hpp"
#include "gpusim/device.hpp"
#include "prof/bottleneck.hpp"
#include "simd/vec.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"

namespace cumf::tune {

inline constexpr std::string_view kTuneMagic = "CUMFTUNE";
inline constexpr std::uint32_t kTuneVersion = 1;

/// Why a tuned-config file was rejected (mirrors CkptReject / ShardReject).
enum class TuneReject {
  io,            ///< cannot open/read the file at all
  bad_magic,     ///< not a cumf tuned-config file
  version_skew,  ///< written by an incompatible format version
  truncated,     ///< shorter than its header promises (torn write)
  bad_crc,       ///< payload checksum mismatch (corruption)
  malformed,     ///< CRC passed but the JSON payload doesn't parse
  mismatch,      ///< valid config, but for a different device x dataset
};

const char* to_string(TuneReject reason);

/// Thrown on any rejected tuned config; carries the machine-readable
/// reason so callers can distinguish "corrupt file" from "wrong run".
class TuneError : public CheckError {
 public:
  TuneError(TuneReject reason, const std::string& what)
      : CheckError(what), reason_(reason) {}
  TuneReject reason() const noexcept { return reason_; }

 private:
  TuneReject reason_;
};

/// The device x dataset x rank identity a tuned config is valid for.
/// `cumf_train --auto-tune` recomputes this from its own inputs and
/// rejects (TuneReject::mismatch) on any difference.
struct TuneFingerprint {
  std::string device;       ///< gpusim DeviceSpec name
  std::uint32_t rows = 0;   ///< dataset rows (pre-split)
  std::uint32_t cols = 0;   ///< dataset cols
  std::uint64_t nnz = 0;    ///< dataset nnz (pre-split)
  std::uint32_t f = 0;      ///< latent dimension
  float lambda = 0.0f;      ///< ALS-WR regularization
  friend bool operator==(const TuneFingerprint&,
                         const TuneFingerprint&) = default;
};

/// One point of the knob space. The defaults reproduce cumf_train's
/// defaults exactly, so the default-constructed choice *is* "the default
/// config" the acceptance gate compares the winner against.
struct TuneChoice {
  int tile = 10;
  int bin = 32;
  SolverKind solver = SolverKind::CgFp16;  ///< CgFp16 = FP16 staging on
  std::uint32_t fs = 6;                    ///< CG truncation depth
  AlsSchedule schedule = AlsSchedule::nnz_guided;
  simd::KernelPath path = simd::kDefaultPath;
  int workers = 1;  ///< host lanes of the functional run
  int gpus = 1;
  std::string link = "nvlink";
  /// Out-of-core host tile budget in bytes; 0 = in-core training. Only
  /// enumerated when the tuned dataset is a shard store.
  std::uint64_t ooc_host_bytes = 0;
  friend bool operator==(const TuneChoice&, const TuneChoice&) = default;
};

/// One evaluated grid point: cheap model score, and — for finalists — the
/// probe counters plus the counter-refined score the winner is ranked by.
/// `wall_epoch_s` is measured host time, printed in the trace for humans
/// but never ranked or persisted (it would break determinism).
struct Candidate {
  TuneChoice choice;
  bool feasible = true;
  std::string infeasible_why;  ///< occupancy / budget reason when !feasible
  double model_epoch_s = std::numeric_limits<double>::infinity();
  bool probed = false;
  double mean_cg_iters = 0;  ///< measured CG iterations per system
  std::uint64_t cg_fallbacks = 0;
  std::uint64_t fp16_fallbacks = 0;
  std::uint64_t failures = 0;
  double probe_rmse = std::numeric_limits<double>::quiet_NaN();
  double refined_epoch_s = std::numeric_limits<double>::infinity();
  double wall_epoch_s = 0;  ///< trace-only; never ranked or persisted
  bool quality_ok = true;   ///< RMSE within slack of the best finalist
};

/// What to search and how hard. The grids are overridable so tests can run
/// tiny spaces; empty grids fall back to the single default value.
struct TuneRequest {
  gpusim::DeviceSpec device = gpusim::DeviceSpec::maxwell_titan_x();
  std::size_t f = 32;
  double lambda = 0.05;
  std::uint64_t seed = 1;
  int probe_epochs = 2;       ///< real epochs per finalist probe
  std::size_t finalists = 8;  ///< candidates surviving the model prune
  /// Tuner-side parallelism: finalist probes run concurrently on this many
  /// threads. Not a knob — the output is byte-identical for any value.
  int workers = 1;
  /// A finalist whose probe RMSE exceeds the best finalist's by more than
  /// this relative slack is disqualified (approximation quality gate).
  double rmse_slack = 0.02;
  // --- grid overrides ---
  std::vector<int> tile_grid{4, 8, 10, 16, 20};
  std::vector<int> bin_grid{16, 32, 64};
  std::vector<std::uint32_t> fs_grid{2, 4, 6, 8};
  std::vector<int> worker_grid{1, 2, 4, 8};
  bool include_exact = true;        ///< LU / Cholesky candidates
  bool include_scalar_path = true;  ///< scalar KernelPath candidates
  int max_gpus = 1;  ///< >1 adds multi-GPU candidates over both links
  /// Out-of-core dimension: when the dataset is a shard store, its row
  /// tiles drive the stream-pipeline model and host budgets are enumerated
  /// up to `ooc_host_cap` (0 = the full store). Empty = in-core only.
  std::vector<TileRange> ooc_row_tiles;
  std::uint64_t ooc_host_cap = 0;
};

/// The persisted artifact: winner + provenance. `model_epoch_s` and
/// `default_epoch_s` are counter-refined modeled seconds under identical
/// assumptions, so their ratio is the claimed speedup.
struct TunedConfig {
  std::uint32_t version = kTuneVersion;
  TuneFingerprint fingerprint;
  TuneChoice choice;
  double model_epoch_s = 0;
  double default_epoch_s = 0;
  double mean_cg_iters = 0;
  double probe_rmse = std::numeric_limits<double>::quiet_NaN();
  std::uint64_t candidates = 0;  ///< grid points enumerated
  std::uint64_t pruned = 0;      ///< rejected by the model without training
  std::uint64_t finalists = 0;   ///< probed with real epochs
  /// cuscope roofline verdicts of the winning configuration (the "why").
  std::vector<prof::Verdict> verdicts;
};

/// The dataset under tuning. `train`/`test` must be canonical (sorted,
/// deduped) — tune() trains probe engines directly on them. The
/// fingerprint describes the *pre-split* dataset the config will be keyed
/// by (cumf_train recomputes it from the raw ratings file / shard meta).
struct TuneInput {
  TuneFingerprint fingerprint;
  RatingsCoo train;
  RatingsCoo test;  ///< empty → the RMSE quality gate is skipped
};

/// Every grid point of the request's knob space, default choice first.
/// Deduplicates points that normalize to the same configuration (e.g.
/// tile values that pick_tile collapses for this f).
std::vector<TuneChoice> enumerate_grid(const TuneRequest& req);

/// Stage-2 cheap score: modeled epoch seconds of `choice` on the request's
/// device — kernel roofs from update_phase_times (compute derated on the
/// scalar path), the schedule's nnz-imbalance factor over the worker
/// lanes, the multi-GPU all-gather, and the out-of-core stream stall.
/// Infeasible choices (zero-occupancy kernels, budgets below the largest
/// tile) come back with feasible=false and an explanation instead of a
/// score. Deterministic; no training.
Candidate evaluate_model(const TuneRequest& req, const CsrMatrix& train_csr,
                         const TuneChoice& choice);

/// Stage-3 probe: runs `req.probe_epochs` real epochs of this candidate's
/// configuration and refines the model score with the measured counters
/// (mean CG iterations replace the configured fs; FP16/CG fallback rates
/// charge their retry traffic). Fills the probe fields of `c`.
void probe_candidate(const TuneRequest& req, const TuneInput& input,
                     const CsrMatrix& train_csr, Candidate& c);

/// The full pipeline: enumerate → model-prune → probe finalists → pick the
/// deterministic winner and attach its roofline verdicts. `trace`, when
/// given, receives every candidate (finalists carry probe data) in
/// enumeration order for the CLI's human-readable report.
TunedConfig tune(const TuneRequest& req, const TuneInput& input,
                 std::vector<Candidate>* trace = nullptr);

// --- persistence -----------------------------------------------------------

/// The JSON payload alone (no CRC frame): what --metrics headers embed and
/// docs/tuning.md documents. Byte-deterministic for equal configs.
std::string tuned_config_payload(const TunedConfig& config);

/// Renders the framed byte stream (magic, version, length, payload, CRC).
std::string serialize_tuned_config(const TunedConfig& config);

/// Parses and validates a framed byte stream; throws TuneError.
TunedConfig parse_tuned_config(std::string_view bytes);

/// "tune-<device>-<rows>x<cols>-<nnz>-f<f>.bin", device lower-cased with
/// non-alphanumerics collapsed to '-': the key a directory of tuned
/// configs is indexed by.
std::string tuned_config_filename(const TuneFingerprint& fp);

/// Atomic write via temp-file + rename (see data/atomic_file.hpp).
void write_tuned_config_file(const std::string& path,
                             const TunedConfig& config);

/// Reads and validates; throws TuneError (reason io if unreadable).
TunedConfig read_tuned_config_file(const std::string& path);

/// Resolves `path_or_dir` (a config file, or a directory indexed by
/// tuned_config_filename), reads it, and validates its fingerprint against
/// `expected`; throws TuneError with reason mismatch naming the first
/// differing field. This is the `cumf_train --auto-tune` entry point.
TunedConfig load_tuned_config(const std::string& path_or_dir,
                              const TuneFingerprint& expected);

}  // namespace cumf::tune
