#include "tune/tune.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <utility>

#include "common/crc32.hpp"
#include "common/stopwatch.hpp"
#include "common/thread_pool.hpp"
#include "data/atomic_file.hpp"
#include "gpusim/interconnect.hpp"
#include "gpusim/occupancy.hpp"
#include "metrics/rmse.hpp"
#include "metrics/roofline.hpp"
#include "prof/telemetry.hpp"
#include "sparse/partition.hpp"

namespace cumf::tune {

namespace {

/// Modeled compute derate of the scalar kernel path: the committed
/// BENCH_hotpath numbers put the 8-lane SIMD hermitian at ~2.8x the scalar
/// variant, so a scalar candidate's compute roof is charged that factor.
/// Memory roofs are path-independent (both variants move the same bytes).
constexpr double kScalarComputeDerate = 2.8;

bool is_cg(SolverKind kind) {
  return kind == SolverKind::CgFp32 || kind == SolverKind::CgFp16 ||
         kind == SolverKind::PcgFp32;
}

const char* path_name(simd::KernelPath path) {
  return path == simd::KernelPath::scalar ? "scalar" : "simd";
}

/// Roof-max of one kernel with the compute component rescaled (the scalar
/// path derate); mirrors how gpusim::kernel_time defines `seconds`.
double roof_max(const gpusim::KernelTime& t, double compute_scale) {
  return std::max(std::max(t.t_compute * compute_scale, t.t_dram),
                  std::max(t.t_l2, t.t_latency));
}

/// Whole half-sweep under the rescaled roofs: the double-buffered staging
/// overlaps load with compute, the A_u flush and the solve cannot overlap.
double sweep_seconds(const UpdatePhaseTimes& t, double compute_scale) {
  return std::max(roof_max(t.load, compute_scale),
                  roof_max(t.compute, compute_scale)) +
         roof_max(t.write, compute_scale) +
         roof_max(t.solve, compute_scale);
}

AlsKernelConfig make_kernel_config(const TuneRequest& req,
                                   const TuneChoice& choice) {
  AlsKernelConfig kc;
  kc.f = static_cast<int>(req.f);
  kc.tile = pick_tile(req.f, choice.tile);
  kc.bin = choice.bin;
  kc.solver = choice.solver;
  kc.cg_fs = choice.fs;
  return kc;
}

/// Measured-counter corrections probe_candidate feeds back into the model.
struct ProbeAdjust {
  std::uint32_t effective_fs = 0;  ///< 0 = keep the configured truncation
  double fp16_retry_frac = 0;      ///< systems re-solved in FP32 after pack
  double cg_fallback_frac = 0;     ///< systems rerouted to the exact path
};

/// Memoized cost-model evaluations for one (request, dataset) pair. The
/// trace-driven update_phase_times is the expensive part of a score and
/// depends only on (tile, bin, solver, fs, gpus), so a few hundred cache
/// entries cover the few thousand grid points.
class ModelContext {
 public:
  ModelContext(const TuneRequest& req, const CsrMatrix& csr)
      : req_(req), csr_(csr) {}

  struct PhasePair {
    UpdatePhaseTimes x;
    UpdatePhaseTimes theta;
  };

  const PhasePair& phases(const AlsKernelConfig& kc, int gpus) {
    const auto key = std::make_tuple(kc.tile, kc.bin,
                                     static_cast<int>(kc.solver),
                                     static_cast<int>(kc.cg_fs), gpus);
    auto it = phase_cache_.find(key);
    if (it == phase_cache_.end()) {
      const double g = gpus;
      const double m = static_cast<double>(csr_.rows());
      const double n = static_cast<double>(csr_.cols());
      const double nnz = static_cast<double>(csr_.nnz());
      PhasePair pp;
      pp.x = update_phase_times(req_.device, UpdateShape{m / g, n, nnz / g},
                                kc);
      pp.theta = update_phase_times(req_.device,
                                    UpdateShape{n / g, m, nnz / g}, kc);
      it = phase_cache_.emplace(key, std::move(pp)).first;
    }
    return it->second;
  }

  /// Epoch slowdown of distributing the row sweep over `workers` lanes
  /// under `schedule`, from the real nnz distribution (>= 1; 1 = balanced).
  /// static_rows serializes behind the heaviest contiguous range; the
  /// guided schedule is bounded by one chunk of imbalance (list-scheduling
  /// bound). The row-side distribution stands in for both half-sweeps.
  double imbalance(AlsSchedule schedule, int workers) {
    if (workers <= 1 || csr_.rows() == 0 || csr_.nnz() == 0) {
      return 1.0;
    }
    const auto key = std::make_pair(static_cast<int>(schedule), workers);
    auto it = imbalance_cache_.find(key);
    if (it != imbalance_cache_.end()) {
      return it->second;
    }
    const auto& row_ptr = csr_.row_ptr();
    const std::size_t rows = csr_.rows();
    const double total = static_cast<double>(csr_.nnz());
    const std::size_t w = static_cast<std::size_t>(workers);
    double value = 1.0;
    if (schedule == AlsSchedule::static_rows) {
      const std::size_t per = (rows + w - 1) / w;
      double max_range = 0;
      for (std::size_t begin = 0; begin < rows; begin += per) {
        const std::size_t end = std::min(rows, begin + per);
        max_range = std::max(
            max_range, static_cast<double>(row_ptr[end] - row_ptr[begin]));
      }
      value = std::max(1.0, max_range * static_cast<double>(w) / total);
    } else {
      const auto bounds = nnz_balanced_bounds(csr_, 8 * w);
      double max_chunk = 0;
      for (std::size_t i = 0; i + 1 < bounds.size(); ++i) {
        max_chunk = std::max(max_chunk,
                             static_cast<double>(row_ptr[bounds[i + 1]] -
                                                 row_ptr[bounds[i]]));
      }
      value = 1.0 + max_chunk * static_cast<double>(w - 1) / total;
    }
    imbalance_cache_.emplace(key, value);
    return value;
  }

  const TuneRequest& request() const noexcept { return req_; }
  const CsrMatrix& csr() const noexcept { return csr_; }

 private:
  const TuneRequest& req_;
  const CsrMatrix& csr_;
  std::map<std::tuple<int, int, int, int, int>, PhasePair> phase_cache_;
  std::map<std::pair<int, int>, double> imbalance_cache_;
};

/// Exposed prefetch stall of streaming the row tiles once per epoch with
/// `host_bytes` of host cache, double-buffered against `core_seconds` of
/// compute. A budget that holds the whole store caches every tile after
/// the first epoch (steady-state stall 0); smaller budgets re-stream the
/// uncached fraction.
double ooc_stall_seconds(const TuneRequest& req, const TuneChoice& choice,
                         double core_seconds) {
  if (req.ooc_row_tiles.empty() || choice.ooc_host_bytes == 0) {
    return 0.0;
  }
  double total_bytes = 0;
  double total_nnz = 0;
  for (const TileRange& t : req.ooc_row_tiles) {
    total_bytes += static_cast<double>(t.bytes);
    total_nnz += static_cast<double>(t.nnz);
  }
  if (total_bytes <= 0 || total_nnz <= 0) {
    return 0.0;
  }
  const double cached = std::min(
      1.0, static_cast<double>(choice.ooc_host_bytes) / total_bytes);
  if (cached >= 1.0) {
    return 0.0;
  }
  const gpusim::LinkSpec link = gpusim::link_by_name(choice.link);
  std::vector<double> transfer;
  std::vector<double> compute;
  transfer.reserve(req.ooc_row_tiles.size());
  compute.reserve(req.ooc_row_tiles.size());
  for (const TileRange& t : req.ooc_row_tiles) {
    transfer.push_back(
        gpusim::transfer_seconds(link, static_cast<double>(t.bytes)) *
        (1.0 - cached));
    compute.push_back(core_seconds * static_cast<double>(t.nnz) / total_nnz);
  }
  const double wall = gpusim::pipelined_stream_seconds(transfer, compute);
  return std::max(0.0, wall - core_seconds);
}

/// The tuner's objective: projected epoch seconds of this choice — kernel
/// roofs from the gpusim model, distributed over the worker lanes with the
/// schedule's imbalance factor (gpus > 1 shards rows across devices
/// instead and pays the ring all-gather), plus any exposed out-of-core
/// stream stall.
double modeled_epoch_seconds(ModelContext& ctx, const TuneChoice& choice,
                             const ProbeAdjust* adjust) {
  const TuneRequest& req = ctx.request();
  AlsKernelConfig kc = make_kernel_config(req, choice);
  if (adjust != nullptr && adjust->effective_fs > 0 && is_cg(kc.solver)) {
    kc.cg_fs = adjust->effective_fs;
  }
  const double compute_scale =
      choice.path == simd::KernelPath::scalar ? kScalarComputeDerate : 1.0;
  const auto& pp = ctx.phases(kc, choice.gpus);
  double core = sweep_seconds(pp.x, compute_scale) +
                sweep_seconds(pp.theta, compute_scale);
  if (adjust != nullptr) {
    // Measured degradation events re-solve their systems on a slower
    // path; charge that fraction of the fallback solver's roof on top.
    const auto retry_cost = [&](SolverKind fallback, double frac) {
      if (frac <= 0) {
        return 0.0;
      }
      AlsKernelConfig retry = kc;
      retry.solver = fallback;
      const auto& rp = ctx.phases(retry, choice.gpus);
      return frac * (roof_max(rp.x.solve, compute_scale) +
                     roof_max(rp.theta.solve, compute_scale));
    };
    core += retry_cost(SolverKind::CgFp32, adjust->fp16_retry_frac);
    core += retry_cost(SolverKind::LuFp32, adjust->cg_fallback_frac);
  }
  double comm = 0.0;
  if (choice.gpus > 1) {
    const gpusim::LinkSpec link = gpusim::link_by_name(choice.link);
    const double g = choice.gpus;
    const double m = static_cast<double>(ctx.csr().rows());
    const double n = static_cast<double>(ctx.csr().cols());
    const double fb = static_cast<double>(req.f) * 4.0;
    comm = gpusim::allgather_seconds(link, choice.gpus, m / g * fb) +
           gpusim::allgather_seconds(link, choice.gpus, n / g * fb);
  } else {
    core = core * ctx.imbalance(choice.schedule, choice.workers) /
           static_cast<double>(std::max(1, choice.workers));
  }
  return core + comm + ooc_stall_seconds(req, choice, core);
}

Candidate evaluate_with_context(ModelContext& ctx,
                                const TuneChoice& choice) {
  const TuneRequest& req = ctx.request();
  Candidate c;
  c.choice = choice;
  c.choice.tile = pick_tile(req.f, choice.tile);
  const AlsKernelConfig kc = make_kernel_config(req, c.choice);
  const gpusim::Occupancy occ = hermitian_occupancy(req.device, kc);
  if (occ.blocks_per_sm < 1) {
    c.feasible = false;
    c.infeasible_why =
        std::string("hermitian kernel fits zero blocks/SM (limited by ") +
        gpusim::to_string(occ.limited_by) + ")";
    return c;
  }
  if (!req.ooc_row_tiles.empty()) {
    std::uint64_t max_tile = 0;
    for (const TileRange& t : req.ooc_row_tiles) {
      max_tile = std::max(max_tile, t.bytes);
    }
    if (c.choice.ooc_host_bytes < max_tile) {
      c.feasible = false;
      c.infeasible_why = "host budget below the largest tile";
      return c;
    }
  }
  c.model_epoch_s = modeled_epoch_seconds(ctx, c.choice, nullptr);
  return c;
}

std::string choice_key(const TuneChoice& c) {
  std::string key;
  key += std::to_string(c.tile) + '/';
  key += std::to_string(c.bin) + '/';
  key += std::to_string(static_cast<int>(c.solver)) + '/';
  key += std::to_string(c.fs) + '/';
  key += std::to_string(static_cast<int>(c.schedule)) + '/';
  key += std::to_string(static_cast<int>(c.path)) + '/';
  key += std::to_string(c.workers) + '/';
  key += std::to_string(c.gpus) + '/';
  key += c.link + '/';
  key += std::to_string(c.ooc_host_bytes);
  return key;
}

/// cuscope verdicts for the winning configuration: the modeled kernel
/// roofs (with the measured effective fs plugged in) against the analytic
/// Table-I flop/byte complexities, plus the comm / stream phases the
/// choice activates. Pure arithmetic — deterministic.
std::vector<prof::Verdict> winner_verdicts(ModelContext& ctx,
                                           const Candidate& winner) {
  const TuneRequest& req = ctx.request();
  const TuneChoice& choice = winner.choice;
  AlsKernelConfig kc = make_kernel_config(req, choice);
  if (is_cg(kc.solver) && winner.mean_cg_iters > 0) {
    kc.cg_fs = static_cast<std::uint32_t>(std::max<long long>(
        1, std::llround(winner.mean_cg_iters)));
  }
  const double compute_scale =
      choice.path == simd::KernelPath::scalar ? kScalarComputeDerate : 1.0;
  const auto scaled = [&](gpusim::KernelTime t) {
    t.t_compute *= compute_scale;
    t.seconds = roof_max(t, 1.0);
    return t;
  };
  const auto& pp = ctx.phases(kc, choice.gpus);
  const double m = static_cast<double>(ctx.csr().rows());
  const double n = static_cast<double>(ctx.csr().cols());
  const double nnz = static_cast<double>(ctx.csr().nnz());
  const AlsComplexity cx =
      is_cg(kc.solver)
          ? als_complexity_cg(nnz, m, n, kc.f, static_cast<int>(kc.cg_fs))
          : als_complexity(nnz, m, n, kc.f);

  std::vector<prof::Verdict> verdicts;
  prof::PhaseSample herm;
  herm.phase = prof::kPhaseHermitian;
  for (const gpusim::KernelTime* t :
       {&pp.x.load, &pp.x.compute, &pp.x.write, &pp.theta.load,
        &pp.theta.compute, &pp.theta.write}) {
    prof::add_kernel_time(herm, scaled(*t));
  }
  herm.wall_s = std::max(roof_max(pp.x.load, compute_scale),
                         roof_max(pp.x.compute, compute_scale)) +
                roof_max(pp.x.write, compute_scale) +
                std::max(roof_max(pp.theta.load, compute_scale),
                         roof_max(pp.theta.compute, compute_scale)) +
                roof_max(pp.theta.write, compute_scale);
  herm.flops = cx.hermitian_compute;
  herm.bytes = cx.hermitian_memory;
  verdicts.push_back(prof::classify(herm));

  prof::PhaseSample solve;
  solve.phase = prof::kPhaseSolve;
  prof::add_kernel_time(solve, scaled(pp.x.solve));
  prof::add_kernel_time(solve, scaled(pp.theta.solve));
  solve.flops = cx.solve_compute;
  solve.bytes = cx.solve_memory;
  verdicts.push_back(prof::classify(solve));

  if (choice.solver == SolverKind::CgFp16) {
    // Every system packs its f x f Gram matrix to FP16 once per epoch.
    const double elems =
        (m + n) * static_cast<double>(req.f) * static_cast<double>(req.f);
    prof::PhaseSample pack;
    pack.phase = prof::kPhaseFp16Pack;
    pack.flops = elems;
    pack.bytes = fp16_pack_traffic(elems);
    pack.t_dram =
        pack.bytes / (req.device.dram_bw * req.device.memcpy_efficiency);
    pack.t_compute =
        elems / (req.device.peak_flops * req.device.compute_efficiency);
    verdicts.push_back(prof::classify(pack));
  }
  if (choice.gpus > 1) {
    const gpusim::LinkSpec link = gpusim::link_by_name(choice.link);
    const double g = choice.gpus;
    const double fb = static_cast<double>(req.f) * 4.0;
    prof::PhaseSample mg;
    mg.phase = prof::kPhaseMgpuAllGather;
    mg.t_compute = sweep_seconds(pp.x, compute_scale) +
                   sweep_seconds(pp.theta, compute_scale);
    mg.t_comm = gpusim::allgather_seconds(link, choice.gpus, m / g * fb) +
                gpusim::allgather_seconds(link, choice.gpus, n / g * fb);
    mg.wall_s = mg.t_compute + mg.t_comm;
    verdicts.push_back(prof::classify(mg));
  }
  if (!req.ooc_row_tiles.empty()) {
    const double core = sweep_seconds(pp.x, compute_scale) +
                        sweep_seconds(pp.theta, compute_scale);
    const double stall = ooc_stall_seconds(req, choice, core);
    if (stall > 0) {
      prof::PhaseSample st;
      st.phase = prof::kPhaseOocStream;
      st.t_compute = core;
      st.t_stall = stall;
      st.wall_s = core + stall;
      verdicts.push_back(prof::classify(st));
    }
  }
  return verdicts;
}

}  // namespace

const char* to_string(TuneReject reason) {
  switch (reason) {
    case TuneReject::io:
      return "io";
    case TuneReject::bad_magic:
      return "bad_magic";
    case TuneReject::version_skew:
      return "version_skew";
    case TuneReject::truncated:
      return "truncated";
    case TuneReject::bad_crc:
      return "bad_crc";
    case TuneReject::malformed:
      return "malformed";
    case TuneReject::mismatch:
      return "mismatch";
  }
  return "unknown";
}

std::vector<TuneChoice> enumerate_grid(const TuneRequest& req) {
  std::vector<TuneChoice> out;
  std::set<std::string> seen;
  const bool ooc = !req.ooc_row_tiles.empty();

  std::uint64_t store_bytes = 0;
  std::uint64_t max_tile = 0;
  for (const TileRange& t : req.ooc_row_tiles) {
    store_bytes += t.bytes;
    max_tile = std::max(max_tile, t.bytes);
  }
  const std::uint64_t cap =
      req.ooc_host_cap > 0 ? std::min(req.ooc_host_cap, store_bytes)
                           : store_bytes;
  std::vector<std::uint64_t> budgets{0};
  if (ooc) {
    budgets = {std::min(cap, std::max(max_tile, store_bytes / 4)),
               std::min(cap, std::max(max_tile, store_bytes / 2)), cap};
    std::sort(budgets.begin(), budgets.end());
    budgets.erase(std::unique(budgets.begin(), budgets.end()),
                  budgets.end());
  }

  const auto push = [&](TuneChoice c) {
    c.tile = pick_tile(req.f, c.tile);
    if (c.gpus > 1) {
      // Devices are the parallelism knob: shards are nnz-cut per device
      // and --workers is ignored with --gpus, so host knobs normalize.
      c.workers = 1;
      c.schedule = AlsSchedule::nnz_guided;
    }
    if (!is_cg(c.solver)) {
      c.fs = TuneChoice{}.fs;  // truncation is inert for exact solvers
    }
    if (seen.insert(choice_key(c)).second) {
      out.push_back(std::move(c));
    }
  };

  // The default configuration is candidate 0 by construction: it is always
  // probed, so the winner can never score worse than it.
  TuneChoice def;
  def.ooc_host_bytes = ooc ? cap : 0;
  push(def);

  const auto tiles = req.tile_grid.empty() ? std::vector<int>{10}
                                           : req.tile_grid;
  const auto bins = req.bin_grid.empty() ? std::vector<int>{32}
                                         : req.bin_grid;
  const auto fss = req.fs_grid.empty() ? std::vector<std::uint32_t>{6}
                                       : req.fs_grid;
  const auto workers = req.worker_grid.empty() ? std::vector<int>{1}
                                               : req.worker_grid;
  std::vector<std::pair<SolverKind, std::uint32_t>> solvers;
  for (const SolverKind kind :
       {SolverKind::CgFp32, SolverKind::CgFp16, SolverKind::PcgFp32}) {
    for (const std::uint32_t fs : fss) {
      solvers.emplace_back(kind, fs);
    }
  }
  if (req.include_exact) {
    solvers.emplace_back(SolverKind::LuFp32, TuneChoice{}.fs);
    solvers.emplace_back(SolverKind::CholeskyFp32, TuneChoice{}.fs);
  }
  std::vector<simd::KernelPath> paths{simd::kDefaultPath};
  if (req.include_scalar_path &&
      simd::kDefaultPath != simd::KernelPath::scalar) {
    paths.push_back(simd::KernelPath::scalar);
  }

  for (const int tile : tiles) {
    for (const int bin : bins) {
      for (const auto& [solver, fs] : solvers) {
        for (const simd::KernelPath path : paths) {
          for (const std::uint64_t budget : budgets) {
            for (const AlsSchedule schedule :
                 {AlsSchedule::nnz_guided, AlsSchedule::static_rows}) {
              for (const int w : workers) {
                TuneChoice c;
                c.tile = tile;
                c.bin = bin;
                c.solver = solver;
                c.fs = fs;
                c.schedule = schedule;
                c.path = path;
                c.workers = std::max(1, w);
                c.ooc_host_bytes = budget;
                push(c);
              }
            }
            for (int g = 2; g <= req.max_gpus; g *= 2) {
              for (const char* link : {"nvlink", "pcie3"}) {
                TuneChoice c;
                c.tile = tile;
                c.bin = bin;
                c.solver = solver;
                c.fs = fs;
                c.path = path;
                c.gpus = g;
                c.link = link;
                c.ooc_host_bytes = budget;
                push(c);
              }
            }
          }
        }
      }
    }
  }
  return out;
}

Candidate evaluate_model(const TuneRequest& req, const CsrMatrix& train_csr,
                         const TuneChoice& choice) {
  ModelContext ctx(req, train_csr);
  return evaluate_with_context(ctx, choice);
}

void probe_candidate(const TuneRequest& req, const TuneInput& input,
                     const CsrMatrix& train_csr, Candidate& c) {
  CUMF_EXPECTS(req.probe_epochs >= 1, "probe_epochs must be >= 1");
  AlsOptions options;
  options.f = req.f;
  options.lambda = static_cast<real_t>(req.lambda);
  options.solver.kind = c.choice.solver;
  options.solver.cg_fs = c.choice.fs;
  options.solver.path = c.choice.path;
  options.hermitian.tile = pick_tile(req.f, c.choice.tile);
  options.hermitian.bin = c.choice.bin;
  options.schedule = c.choice.schedule;
  // One worker regardless of the choice: factors (and therefore every
  // counter below) are bit-identical across worker counts, and a serial
  // probe keeps concurrent finalist probes from oversubscribing the host.
  options.workers = 1;
  options.seed = req.seed;

  AlsEngine engine(input.train, options);
  Stopwatch sw;
  for (int epoch = 0; epoch < req.probe_epochs; ++epoch) {
    engine.run_epoch();
  }
  c.wall_epoch_s = sw.seconds() / req.probe_epochs;
  const SolveStats stats = engine.solve_stats();
  c.probed = true;
  c.cg_fallbacks = stats.cg_fallbacks;
  c.fp16_fallbacks = stats.fp16_fallbacks;
  c.failures = stats.failures;
  ProbeAdjust adjust;
  if (stats.systems > 0 && is_cg(c.choice.solver)) {
    c.mean_cg_iters = static_cast<double>(stats.cg_iterations) /
                      static_cast<double>(stats.systems);
    adjust.effective_fs = static_cast<std::uint32_t>(
        std::max<long long>(1, std::llround(c.mean_cg_iters)));
    adjust.fp16_retry_frac = static_cast<double>(stats.fp16_fallbacks) /
                             static_cast<double>(stats.systems);
    adjust.cg_fallback_frac = static_cast<double>(stats.cg_fallbacks) /
                              static_cast<double>(stats.systems);
  }
  if (input.test.nnz() > 0) {
    c.probe_rmse =
        rmse(input.test, engine.user_factors(), engine.item_factors());
  }
  ModelContext ctx(req, train_csr);
  c.refined_epoch_s = modeled_epoch_seconds(ctx, c.choice, &adjust);
}

TunedConfig tune(const TuneRequest& req, const TuneInput& input,
                 std::vector<Candidate>* trace) {
  CUMF_EXPECTS(req.f >= 1, "latent dimension must be >= 1");
  CUMF_EXPECTS(req.probe_epochs >= 1, "probe_epochs must be >= 1");
  CUMF_EXPECTS(req.finalists >= 1, "finalists must be >= 1");
  CUMF_EXPECTS(input.train.nnz() > 0, "cannot tune on an empty train set");

  const CsrMatrix csr = CsrMatrix::from_coo(input.train);
  ModelContext ctx(req, csr);
  const std::vector<TuneChoice> grid = enumerate_grid(req);
  std::vector<Candidate> candidates;
  candidates.reserve(grid.size());
  for (const TuneChoice& choice : grid) {
    candidates.push_back(evaluate_with_context(ctx, choice));
  }

  // Model prune: keep the K cheapest feasible candidates, plus the default
  // (candidate 0) unconditionally.
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (candidates[i].feasible) {
      order.push_back(i);
    }
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return candidates[a].model_epoch_s <
                            candidates[b].model_epoch_s;
                   });
  std::vector<std::size_t> finalists;
  for (const std::size_t i : order) {
    if (finalists.size() >= req.finalists) {
      break;
    }
    finalists.push_back(i);
  }
  if (candidates[0].feasible &&
      std::find(finalists.begin(), finalists.end(), 0u) == finalists.end()) {
    finalists.push_back(0);
  }
  CUMF_EXPECTS(!finalists.empty(), "no feasible candidate in the grid");

  // Probe finalists with real epochs. Tuner workers parallelize across
  // finalists; every probe is independent and deterministic, so the result
  // set is identical for any worker count.
  const auto probe_one = [&](std::size_t idx) {
    try {
      probe_candidate(req, input, csr, candidates[idx]);
    } catch (const std::exception& e) {
      candidates[idx].quality_ok = false;
      candidates[idx].infeasible_why = e.what();
    }
  };
  if (req.workers > 1 && finalists.size() > 1) {
    ThreadPool pool(static_cast<std::size_t>(req.workers));
    for (const std::size_t idx : finalists) {
      pool.submit([&probe_one, idx] { probe_one(idx); });
    }
    pool.wait_idle();
  } else {
    for (const std::size_t idx : finalists) {
      probe_one(idx);
    }
  }

  // Quality gate: a finalist that converges measurably worse than the best
  // finalist (or that failed systems outright) cannot win on speed.
  double best_rmse = std::numeric_limits<double>::infinity();
  for (const std::size_t idx : finalists) {
    const Candidate& c = candidates[idx];
    if (c.probed && std::isfinite(c.probe_rmse)) {
      best_rmse = std::min(best_rmse, c.probe_rmse);
    }
  }
  for (const std::size_t idx : finalists) {
    Candidate& c = candidates[idx];
    if (!c.probed || c.failures > 0) {
      c.quality_ok = false;
      continue;
    }
    if (std::isfinite(best_rmse) && std::isfinite(c.probe_rmse) &&
        c.probe_rmse > best_rmse * (1.0 + req.rmse_slack)) {
      c.quality_ok = false;
    }
  }

  // Deterministic winner: smallest refined score among qualified
  // finalists, ties broken by enumeration order. Falls back to the default
  // candidate if the gate disqualified everything.
  std::size_t winner_idx = 0;
  bool have_winner = false;
  for (const std::size_t idx : finalists) {
    const Candidate& c = candidates[idx];
    if (!c.quality_ok) {
      continue;
    }
    if (!have_winner ||
        c.refined_epoch_s < candidates[winner_idx].refined_epoch_s ||
        (c.refined_epoch_s == candidates[winner_idx].refined_epoch_s &&
         idx < winner_idx)) {
      winner_idx = idx;
      have_winner = true;
    }
  }
  const Candidate& winner = candidates[winner_idx];
  const Candidate& fallback = candidates[0];

  TunedConfig config;
  config.fingerprint = input.fingerprint;
  config.choice = winner.choice;
  config.model_epoch_s = winner.refined_epoch_s;
  config.default_epoch_s = fallback.probed ? fallback.refined_epoch_s
                                           : fallback.model_epoch_s;
  config.mean_cg_iters = winner.mean_cg_iters;
  config.probe_rmse = winner.probe_rmse;
  config.candidates = candidates.size();
  config.finalists = finalists.size();
  config.pruned = candidates.size() - finalists.size();
  config.verdicts = winner_verdicts(ctx, winner);
  if (trace != nullptr) {
    *trace = std::move(candidates);
  }
  return config;
}

// --- persistence -----------------------------------------------------------

namespace {

void append_u32(std::string& out, std::uint32_t v) {
  char buf[sizeof v];
  std::memcpy(buf, &v, sizeof v);
  out.append(buf, sizeof v);
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[sizeof v];
  std::memcpy(buf, &v, sizeof v);
  out.append(buf, sizeof v);
}

template <class T>
T read_le(std::string_view bytes, std::size_t offset) {
  T v;
  std::memcpy(&v, bytes.data() + offset, sizeof v);
  return v;
}

// -- a minimal JSON reader, just enough for our own writer's output --

struct JsonValue {
  enum class Kind { null, boolean, number, string, array, object };
  Kind kind = Kind::null;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> fields;

  const JsonValue* find(std::string_view key) const {
    for (const auto& [k, v] : fields) {
      if (k == key) {
        return &v;
      }
    }
    return nullptr;
  }
};

[[noreturn]] void malformed(const std::string& why) {
  throw TuneError(TuneReject::malformed,
                  "malformed tuned-config payload: " + why);
}

void skip_ws(std::string_view s, std::size_t& pos) {
  while (pos < s.size() && (s[pos] == ' ' || s[pos] == '\t' ||
                            s[pos] == '\n' || s[pos] == '\r')) {
    ++pos;
  }
}

JsonValue parse_value(std::string_view s, std::size_t& pos, int depth);

std::string parse_string_token(std::string_view s, std::size_t& pos) {
  if (pos >= s.size() || s[pos] != '"') {
    malformed("expected string");
  }
  ++pos;
  std::string out;
  while (pos < s.size() && s[pos] != '"') {
    char c = s[pos];
    if (c == '\\') {
      if (pos + 1 >= s.size()) {
        malformed("dangling escape");
      }
      const char esc = s[++pos];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos + 4 >= s.size()) {
            malformed("short \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s[++pos];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              malformed("bad \\u escape");
            }
          }
          // Our writer only escapes control characters; anything beyond
          // Latin-1 is preserved as a replacement to keep the reader tiny.
          out += code < 0x100 ? static_cast<char>(code) : '?';
          break;
        }
        default:
          malformed("unknown escape");
      }
      ++pos;
    } else {
      out += c;
      ++pos;
    }
  }
  if (pos >= s.size()) {
    malformed("unterminated string");
  }
  ++pos;  // closing quote
  return out;
}

JsonValue parse_value(std::string_view s, std::size_t& pos, int depth) {
  if (depth > 32) {
    malformed("nesting too deep");
  }
  skip_ws(s, pos);
  if (pos >= s.size()) {
    malformed("unexpected end");
  }
  JsonValue v;
  const char c = s[pos];
  if (c == '{') {
    v.kind = JsonValue::Kind::object;
    ++pos;
    skip_ws(s, pos);
    if (pos < s.size() && s[pos] == '}') {
      ++pos;
      return v;
    }
    while (true) {
      skip_ws(s, pos);
      std::string key = parse_string_token(s, pos);
      skip_ws(s, pos);
      if (pos >= s.size() || s[pos] != ':') {
        malformed("expected ':'");
      }
      ++pos;
      v.fields.emplace_back(std::move(key), parse_value(s, pos, depth + 1));
      skip_ws(s, pos);
      if (pos < s.size() && s[pos] == ',') {
        ++pos;
        continue;
      }
      if (pos < s.size() && s[pos] == '}') {
        ++pos;
        return v;
      }
      malformed("expected ',' or '}'");
    }
  }
  if (c == '[') {
    v.kind = JsonValue::Kind::array;
    ++pos;
    skip_ws(s, pos);
    if (pos < s.size() && s[pos] == ']') {
      ++pos;
      return v;
    }
    while (true) {
      v.items.push_back(parse_value(s, pos, depth + 1));
      skip_ws(s, pos);
      if (pos < s.size() && s[pos] == ',') {
        ++pos;
        continue;
      }
      if (pos < s.size() && s[pos] == ']') {
        ++pos;
        return v;
      }
      malformed("expected ',' or ']'");
    }
  }
  if (c == '"') {
    v.kind = JsonValue::Kind::string;
    v.str = parse_string_token(s, pos);
    return v;
  }
  if (s.compare(pos, 4, "null") == 0) {
    pos += 4;
    return v;
  }
  if (s.compare(pos, 4, "true") == 0) {
    pos += 4;
    v.kind = JsonValue::Kind::boolean;
    v.b = true;
    return v;
  }
  if (s.compare(pos, 5, "false") == 0) {
    pos += 5;
    v.kind = JsonValue::Kind::boolean;
    v.b = false;
    return v;
  }
  // number
  std::size_t end = pos;
  while (end < s.size() &&
         (std::isdigit(static_cast<unsigned char>(s[end])) != 0 ||
          s[end] == '-' || s[end] == '+' || s[end] == '.' || s[end] == 'e' ||
          s[end] == 'E')) {
    ++end;
  }
  double num = 0;
  const auto res = std::from_chars(s.data() + pos, s.data() + end, num);
  if (res.ec != std::errc{} || res.ptr != s.data() + end || end == pos) {
    malformed("bad number");
  }
  pos = end;
  v.kind = JsonValue::Kind::number;
  v.num = num;
  return v;
}

JsonValue parse_json(std::string_view payload) {
  std::size_t pos = 0;
  JsonValue v = parse_value(payload, pos, 0);
  skip_ws(payload, pos);
  if (pos != payload.size()) {
    malformed("trailing bytes after the JSON object");
  }
  return v;
}

double require_number(const JsonValue& obj, std::string_view key) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::number) {
    malformed("missing numeric field '" + std::string(key) + "'");
  }
  return v->num;
}

std::string require_string(const JsonValue& obj, std::string_view key) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::string) {
    malformed("missing string field '" + std::string(key) + "'");
  }
  return v->str;
}

const JsonValue& require_object(const JsonValue& obj, std::string_view key) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::object) {
    malformed("missing object field '" + std::string(key) + "'");
  }
  return *v;
}

SolverKind solver_from_json(const std::string& name) {
  const auto kind = solver_from_cli_name(name);
  if (!kind) {
    malformed("unknown solver '" + name + "'");
  }
  return *kind;
}

prof::Bound bound_from_json(const std::string& name) {
  for (const prof::Bound b :
       {prof::Bound::compute, prof::Bound::dram, prof::Bound::l2,
        prof::Bound::latency, prof::Bound::comm, prof::Bound::stall}) {
    if (name == prof::to_string(b)) {
      return b;
    }
  }
  malformed("unknown bound '" + name + "'");
}

std::string sanitize(const std::string& name) {
  std::string out;
  bool dash = false;
  for (const char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) != 0) {
      out += static_cast<char>(
          std::tolower(static_cast<unsigned char>(c)));
      dash = false;
    } else if (!dash && !out.empty()) {
      out += '-';
      dash = true;
    }
  }
  while (!out.empty() && out.back() == '-') {
    out.pop_back();
  }
  return out.empty() ? "device" : out;
}

}  // namespace

std::string tuned_config_payload(const TunedConfig& config) {
  prof::JsonObject root;
  root.set("type", "cumf-tuned-config");
  root.set("version", static_cast<std::uint64_t>(config.version));

  prof::JsonObject fp;
  fp.set("device", config.fingerprint.device);
  fp.set("rows", static_cast<std::uint64_t>(config.fingerprint.rows));
  fp.set("cols", static_cast<std::uint64_t>(config.fingerprint.cols));
  fp.set("nnz", config.fingerprint.nnz);
  fp.set("f", static_cast<std::uint64_t>(config.fingerprint.f));
  fp.set("lambda", static_cast<double>(config.fingerprint.lambda));
  root.set_raw("fingerprint", fp.str());

  prof::JsonObject choice;
  choice.set("tile", config.choice.tile);
  choice.set("bin", config.choice.bin);
  choice.set("solver", solver_cli_name(config.choice.solver));
  choice.set("fs", static_cast<std::uint64_t>(config.choice.fs));
  choice.set("schedule", to_string(config.choice.schedule));
  choice.set("path", path_name(config.choice.path));
  choice.set("workers", config.choice.workers);
  choice.set("gpus", config.choice.gpus);
  choice.set("link", config.choice.link);
  choice.set("ooc_host_bytes", config.choice.ooc_host_bytes);
  root.set_raw("choice", choice.str());

  root.set("model_epoch_s", config.model_epoch_s);
  root.set("default_epoch_s", config.default_epoch_s);
  root.set("speedup", config.model_epoch_s > 0
                          ? config.default_epoch_s / config.model_epoch_s
                          : 0.0);
  root.set("mean_cg_iters", config.mean_cg_iters);
  if (std::isfinite(config.probe_rmse)) {
    root.set("probe_rmse", config.probe_rmse);
  } else {
    root.set_null("probe_rmse");
  }

  prof::JsonObject search;
  search.set("candidates", config.candidates);
  search.set("pruned", config.pruned);
  search.set("finalists", config.finalists);
  root.set_raw("search", search.str());

  std::string verdicts = "[";
  for (const prof::Verdict& v : config.verdicts) {
    if (verdicts.size() > 1) {
      verdicts += ',';
    }
    prof::JsonObject item;
    item.set("phase", v.phase);
    item.set("bound", prof::to_string(v.bound));
    item.set("arithmetic_intensity", v.arithmetic_intensity);
    item.set("pct_of_roof", v.pct_of_roof);
    item.set("headroom", v.headroom);
    item.set("wall_s", v.wall_s);
    verdicts += item.str();
  }
  verdicts += ']';
  root.set_raw("verdicts", verdicts);
  return root.str();
}

std::string serialize_tuned_config(const TunedConfig& config) {
  const std::string payload = tuned_config_payload(config);
  std::string out;
  out.reserve(payload.size() + 24);
  out.append(kTuneMagic);
  append_u32(out, config.version);
  append_u64(out, payload.size());
  out.append(payload);
  append_u32(out, crc32(payload));
  return out;
}

TunedConfig parse_tuned_config(std::string_view bytes) {
  constexpr std::size_t kHeader = 8 + 4 + 8;
  if (bytes.size() < kHeader) {
    throw TuneError(TuneReject::truncated,
                    "tuned config shorter than its header");
  }
  if (bytes.substr(0, kTuneMagic.size()) != kTuneMagic) {
    throw TuneError(TuneReject::bad_magic, "not a cumf tuned-config file");
  }
  const auto version = read_le<std::uint32_t>(bytes, 8);
  if (version != kTuneVersion) {
    throw TuneError(TuneReject::version_skew,
                    "tuned-config version " + std::to_string(version) +
                        " != supported " + std::to_string(kTuneVersion));
  }
  const auto length = read_le<std::uint64_t>(bytes, 12);
  if (bytes.size() < kHeader + length + 4) {
    throw TuneError(TuneReject::truncated,
                    "tuned config shorter than its header promises");
  }
  const std::string_view payload = bytes.substr(kHeader, length);
  const auto stored = read_le<std::uint32_t>(bytes, kHeader + length);
  if (crc32(payload) != stored) {
    throw TuneError(TuneReject::bad_crc,
                    "tuned-config payload checksum mismatch");
  }

  const JsonValue root = parse_json(payload);
  if (root.kind != JsonValue::Kind::object) {
    malformed("payload is not a JSON object");
  }
  if (require_string(root, "type") != "cumf-tuned-config") {
    malformed("wrong payload type");
  }
  TunedConfig config;
  config.version =
      static_cast<std::uint32_t>(require_number(root, "version"));

  const JsonValue& fp = require_object(root, "fingerprint");
  config.fingerprint.device = require_string(fp, "device");
  config.fingerprint.rows =
      static_cast<std::uint32_t>(require_number(fp, "rows"));
  config.fingerprint.cols =
      static_cast<std::uint32_t>(require_number(fp, "cols"));
  config.fingerprint.nnz =
      static_cast<std::uint64_t>(require_number(fp, "nnz"));
  config.fingerprint.f =
      static_cast<std::uint32_t>(require_number(fp, "f"));
  config.fingerprint.lambda =
      static_cast<float>(require_number(fp, "lambda"));

  const JsonValue& ch = require_object(root, "choice");
  config.choice.tile = static_cast<int>(require_number(ch, "tile"));
  config.choice.bin = static_cast<int>(require_number(ch, "bin"));
  config.choice.solver = solver_from_json(require_string(ch, "solver"));
  config.choice.fs =
      static_cast<std::uint32_t>(require_number(ch, "fs"));
  const std::string schedule = require_string(ch, "schedule");
  const auto sched = schedule_from_name(schedule);
  if (!sched) {
    malformed("unknown schedule '" + schedule + "'");
  }
  config.choice.schedule = *sched;
  const std::string path = require_string(ch, "path");
  if (path == "scalar") {
    config.choice.path = simd::KernelPath::scalar;
  } else if (path == "simd") {
    config.choice.path = simd::KernelPath::simd;
  } else {
    malformed("unknown kernel path '" + path + "'");
  }
  config.choice.workers = static_cast<int>(require_number(ch, "workers"));
  config.choice.gpus = static_cast<int>(require_number(ch, "gpus"));
  config.choice.link = require_string(ch, "link");
  config.choice.ooc_host_bytes =
      static_cast<std::uint64_t>(require_number(ch, "ooc_host_bytes"));
  if (config.choice.tile < 1 || config.choice.bin < 1 ||
      config.choice.fs < 1 || config.choice.workers < 1 ||
      config.choice.gpus < 1) {
    malformed("choice fields out of range");
  }

  config.model_epoch_s = require_number(root, "model_epoch_s");
  config.default_epoch_s = require_number(root, "default_epoch_s");
  config.mean_cg_iters = require_number(root, "mean_cg_iters");
  if (const JsonValue* r = root.find("probe_rmse");
      r != nullptr && r->kind == JsonValue::Kind::number) {
    config.probe_rmse = r->num;
  }
  const JsonValue& search = require_object(root, "search");
  config.candidates =
      static_cast<std::uint64_t>(require_number(search, "candidates"));
  config.pruned =
      static_cast<std::uint64_t>(require_number(search, "pruned"));
  config.finalists =
      static_cast<std::uint64_t>(require_number(search, "finalists"));

  const JsonValue* verdicts = root.find("verdicts");
  if (verdicts == nullptr || verdicts->kind != JsonValue::Kind::array) {
    malformed("missing verdicts array");
  }
  for (const JsonValue& item : verdicts->items) {
    if (item.kind != JsonValue::Kind::object) {
      malformed("verdict entries must be objects");
    }
    prof::Verdict v;
    v.phase = require_string(item, "phase");
    v.bound = bound_from_json(require_string(item, "bound"));
    v.arithmetic_intensity = require_number(item, "arithmetic_intensity");
    v.pct_of_roof = require_number(item, "pct_of_roof");
    v.headroom = require_number(item, "headroom");
    v.wall_s = require_number(item, "wall_s");
    config.verdicts.push_back(std::move(v));
  }
  return config;
}

std::string tuned_config_filename(const TuneFingerprint& fp) {
  return "tune-" + sanitize(fp.device) + "-" + std::to_string(fp.rows) +
         "x" + std::to_string(fp.cols) + "-" + std::to_string(fp.nnz) +
         "-f" + std::to_string(fp.f) + ".bin";
}

void write_tuned_config_file(const std::string& path,
                             const TunedConfig& config) {
  atomic_write_file(path, serialize_tuned_config(config));
}

TunedConfig read_tuned_config_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    throw TuneError(TuneReject::io, "cannot open tuned config: " + path);
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) {
    throw TuneError(TuneReject::io, "cannot read tuned config: " + path);
  }
  return parse_tuned_config(bytes);
}

TunedConfig load_tuned_config(const std::string& path_or_dir,
                              const TuneFingerprint& expected) {
  std::string path = path_or_dir;
  if (std::filesystem::is_directory(path_or_dir)) {
    path = (std::filesystem::path(path_or_dir) /
            tuned_config_filename(expected))
               .string();
    if (!std::filesystem::exists(path)) {
      throw TuneError(TuneReject::io,
                      "no tuned config for this device x dataset in " +
                          path_or_dir + " (expected " +
                          tuned_config_filename(expected) + ")");
    }
  }
  TunedConfig config = read_tuned_config_file(path);
  const TuneFingerprint& have = config.fingerprint;
  std::string why;
  if (have.device != expected.device) {
    why = "device '" + have.device + "' != '" + expected.device + "'";
  } else if (have.rows != expected.rows || have.cols != expected.cols) {
    why = "dataset shape " + std::to_string(have.rows) + "x" +
          std::to_string(have.cols) + " != " +
          std::to_string(expected.rows) + "x" +
          std::to_string(expected.cols);
  } else if (have.nnz != expected.nnz) {
    why = "dataset nnz " + std::to_string(have.nnz) + " != " +
          std::to_string(expected.nnz);
  } else if (have.f != expected.f) {
    why = "latent dimension " + std::to_string(have.f) + " != " +
          std::to_string(expected.f);
  } else if (have.lambda != expected.lambda) {
    why = "lambda differs";
  }
  if (!why.empty()) {
    throw TuneError(TuneReject::mismatch,
                    "tuned config fingerprint mismatch: " + why);
  }
  return config;
}

}  // namespace cumf::tune
