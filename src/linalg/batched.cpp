#include "linalg/batched.hpp"

#include "common/check.hpp"
#include "linalg/gemm.hpp"

namespace cumf {

void gemm_batched(std::size_t batch, std::size_t m, std::size_t n,
                  std::size_t k, std::span<const real_t> a,
                  std::span<const real_t> b, std::span<real_t> c,
                  ThreadPool* pool) {
  CUMF_EXPECTS(a.size() == batch * m * k, "gemm_batched: A batch shape");
  CUMF_EXPECTS(b.size() == batch * k * n, "gemm_batched: B batch shape");
  CUMF_EXPECTS(c.size() == batch * m * n, "gemm_batched: C batch shape");

  const auto run = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      gemm(m, n, k, real_t{1}, a.subspan(i * m * k, m * k),
           b.subspan(i * k * n, k * n), real_t{0},
           c.subspan(i * m * n, m * n));
    }
  };
  if (pool == nullptr || batch < 2) {
    run(0, batch);
    return;
  }
  pool->parallel_for(batch, [&](std::size_t begin, std::size_t end,
                                std::size_t) { run(begin, end); });
}

}  // namespace cumf
