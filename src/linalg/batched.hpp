// Batched dense GEMM — the host-side analogue of cuBLAS gemmBatched (the
// Fig. 7a comparison baseline).
//
// All batches are stored contiguously: matrix i of an m×k batch lives at
// data + i*m*k. The batch can optionally run on a thread pool; results are
// identical to the serial loop because every problem is independent.
#pragma once

#include <cstdint>
#include <span>

#include "common/thread_pool.hpp"
#include "common/types.hpp"

namespace cumf {

/// C_i ← A_i · B_i for i in [0, batch); A: m×k, B: k×n, C: m×n each.
void gemm_batched(std::size_t batch, std::size_t m, std::size_t n,
                  std::size_t k, std::span<const real_t> a,
                  std::span<const real_t> b, std::span<real_t> c,
                  ThreadPool* pool = nullptr);

}  // namespace cumf
