// Dense Cholesky factorization and solve for SPD systems.
//
// Every ALS normal-equation matrix A_u = Σ θ_v θ_vᵀ + λ n_u I is symmetric
// positive definite (λ > 0 guarantees it even for empty rows), so Cholesky is
// the natural *exact* solver. The paper benchmarks against cuBLAS batched LU;
// we provide both so the "exact baseline" choice is itself ablatable.
#pragma once

#include <span>

#include "common/types.hpp"

namespace cumf {

/// In-place Cholesky A = L·Lᵀ of an n×n row-major SPD matrix; the lower
/// triangle of `a` is overwritten by L (upper triangle left untouched).
/// Returns false if a non-positive pivot is met (A not positive definite).
[[nodiscard]] bool cholesky_factor(std::size_t n, std::span<real_t> a);

/// Solves L·Lᵀ x = b given the factor produced by cholesky_factor.
/// `x` may alias `b`.
void cholesky_solve(std::size_t n, std::span<const real_t> l,
                    std::span<const real_t> b, std::span<real_t> x);

/// Convenience: factor + solve on a scratch copy. Returns false if not SPD.
[[nodiscard]] bool solve_spd(std::size_t n, std::span<const real_t> a,
                             std::span<const real_t> b, std::span<real_t> x);

}  // namespace cumf
