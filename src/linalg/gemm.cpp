#include "linalg/gemm.hpp"

#include "common/check.hpp"

namespace cumf {

void gemm(std::size_t m, std::size_t n, std::size_t k, real_t alpha,
          std::span<const real_t> a, std::span<const real_t> b, real_t beta,
          std::span<real_t> c) {
  CUMF_EXPECTS(a.size() == m * k, "gemm: A shape mismatch");
  CUMF_EXPECTS(b.size() == k * n, "gemm: B shape mismatch");
  CUMF_EXPECTS(c.size() == m * n, "gemm: C shape mismatch");
  for (std::size_t i = 0; i < m; ++i) {
    real_t* crow = c.data() + i * n;
    if (beta == real_t{0}) {
      for (std::size_t j = 0; j < n; ++j) {
        crow[j] = 0;
      }
    } else if (beta != real_t{1}) {
      for (std::size_t j = 0; j < n; ++j) {
        crow[j] *= beta;
      }
    }
    // ikj order: streams B rows, keeps a_ip in a register.
    for (std::size_t p = 0; p < k; ++p) {
      const real_t aip = alpha * a[i * k + p];
      const real_t* brow = b.data() + p * n;
      for (std::size_t j = 0; j < n; ++j) {
        crow[j] += aip * brow[j];
      }
    }
  }
}

void syrk(std::size_t n, std::size_t k, real_t alpha,
          std::span<const real_t> a, real_t beta, std::span<real_t> c) {
  CUMF_EXPECTS(a.size() == n * k, "syrk: A shape mismatch");
  CUMF_EXPECTS(c.size() == n * n, "syrk: C shape mismatch");
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        acc += static_cast<double>(a[i * k + p]) *
               static_cast<double>(a[j * k + p]);
      }
      const real_t value = static_cast<real_t>(
          static_cast<double>(alpha) * acc +
          static_cast<double>(beta) * static_cast<double>(c[i * n + j]));
      c[i * n + j] = value;
      c[j * n + i] = value;
    }
  }
}

}  // namespace cumf
