#include "linalg/lu.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace cumf {

bool lu_factor(std::size_t n, std::span<real_t> a,
               std::span<index_t> pivots) {
  CUMF_EXPECTS(a.size() == n * n, "lu: A must be n*n");
  CUMF_EXPECTS(pivots.size() == n, "lu: pivot array must have n entries");
  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot: largest |a_ik| for i >= k.
    std::size_t piv = k;
    double best = std::abs(static_cast<double>(a[k * n + k]));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double cand = std::abs(static_cast<double>(a[i * n + k]));
      if (cand > best) {
        best = cand;
        piv = i;
      }
    }
    if (best == 0.0 || !std::isfinite(best)) {
      return false;
    }
    pivots[k] = static_cast<index_t>(piv);
    if (piv != k) {
      for (std::size_t j = 0; j < n; ++j) {
        std::swap(a[k * n + j], a[piv * n + j]);
      }
    }
    const double akk = static_cast<double>(a[k * n + k]);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double lik = static_cast<double>(a[i * n + k]) / akk;
      a[i * n + k] = static_cast<real_t>(lik);
      for (std::size_t j = k + 1; j < n; ++j) {
        a[i * n + j] = static_cast<real_t>(
            static_cast<double>(a[i * n + j]) -
            lik * static_cast<double>(a[k * n + j]));
      }
    }
  }
  return true;
}

void lu_solve(std::size_t n, std::span<const real_t> lu,
              std::span<const index_t> pivots, std::span<const real_t> b,
              std::span<real_t> x) {
  CUMF_EXPECTS(lu.size() == n * n, "lu_solve: factor must be n*n");
  CUMF_EXPECTS(pivots.size() == n && b.size() == n && x.size() == n,
               "lu_solve: size mismatch");
  if (x.data() != b.data()) {
    std::copy(b.begin(), b.end(), x.begin());
  }
  // Apply the recorded row swaps to the right-hand side.
  for (std::size_t k = 0; k < n; ++k) {
    const index_t piv = pivots[k];
    if (piv != k) {
      std::swap(x[k], x[piv]);
    }
  }
  // Forward: L y = P b (L has unit diagonal).
  for (std::size_t i = 1; i < n; ++i) {
    double acc = static_cast<double>(x[i]);
    for (std::size_t k = 0; k < i; ++k) {
      acc -= static_cast<double>(lu[i * n + k]) * static_cast<double>(x[k]);
    }
    x[i] = static_cast<real_t>(acc);
  }
  // Back: U x = y.
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = static_cast<double>(x[ii]);
    for (std::size_t k = ii + 1; k < n; ++k) {
      acc -= static_cast<double>(lu[ii * n + k]) * static_cast<double>(x[k]);
    }
    x[ii] = static_cast<real_t>(acc / static_cast<double>(lu[ii * n + ii]));
  }
}

bool solve_lu(std::size_t n, std::span<const real_t> a,
              std::span<const real_t> b, std::span<real_t> x) {
  std::vector<real_t> scratch(a.begin(), a.end());
  std::vector<index_t> pivots(n);
  if (!lu_factor(n, scratch, pivots)) {
    return false;
  }
  lu_solve(n, scratch, pivots, b, x);
  return true;
}

}  // namespace cumf
