// Dense LU factorization with partial pivoting.
//
// This is the exact solver the paper benchmarks (cuBLAS batched LU,
// LU-FP32 in Fig. 5): O(f³) per system. Works on any non-singular matrix,
// not just SPD ones.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"

namespace cumf {

/// In-place LU with partial pivoting: A → L\U (unit lower, upper packed).
/// `pivots[i]` records the row swapped into position i.
/// Returns false if the matrix is numerically singular.
[[nodiscard]] bool lu_factor(std::size_t n, std::span<real_t> a,
                             std::span<index_t> pivots);

/// Solves A x = b given the packed factor and pivots. `x` may alias `b`.
void lu_solve(std::size_t n, std::span<const real_t> lu,
              std::span<const index_t> pivots, std::span<const real_t> b,
              std::span<real_t> x);

/// Convenience: factor + solve on a scratch copy. False if singular.
[[nodiscard]] bool solve_lu(std::size_t n, std::span<const real_t> a,
                            std::span<const real_t> b, std::span<real_t> x);

}  // namespace cumf
