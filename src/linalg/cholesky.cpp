#include "linalg/cholesky.hpp"

#include <cmath>
#include <vector>

#include "common/check.hpp"

namespace cumf {

bool cholesky_factor(std::size_t n, std::span<real_t> a) {
  CUMF_EXPECTS(a.size() == n * n, "cholesky: A must be n*n");
  for (std::size_t j = 0; j < n; ++j) {
    double diag = static_cast<double>(a[j * n + j]);
    for (std::size_t k = 0; k < j; ++k) {
      const double ljk = static_cast<double>(a[j * n + k]);
      diag -= ljk * ljk;
    }
    if (diag <= 0.0 || !std::isfinite(diag)) {
      return false;
    }
    const double ljj = std::sqrt(diag);
    a[j * n + j] = static_cast<real_t>(ljj);
    for (std::size_t i = j + 1; i < n; ++i) {
      double acc = static_cast<double>(a[i * n + j]);
      for (std::size_t k = 0; k < j; ++k) {
        acc -= static_cast<double>(a[i * n + k]) *
               static_cast<double>(a[j * n + k]);
      }
      a[i * n + j] = static_cast<real_t>(acc / ljj);
    }
  }
  return true;
}

void cholesky_solve(std::size_t n, std::span<const real_t> l,
                    std::span<const real_t> b, std::span<real_t> x) {
  CUMF_EXPECTS(l.size() == n * n, "cholesky_solve: L must be n*n");
  CUMF_EXPECTS(b.size() == n && x.size() == n,
               "cholesky_solve: vector size mismatch");
  // Forward substitution: L y = b (y stored in x).
  for (std::size_t i = 0; i < n; ++i) {
    double acc = static_cast<double>(b[i]);
    for (std::size_t k = 0; k < i; ++k) {
      acc -= static_cast<double>(l[i * n + k]) * static_cast<double>(x[k]);
    }
    x[i] = static_cast<real_t>(acc / static_cast<double>(l[i * n + i]));
  }
  // Back substitution: Lᵀ x = y.
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = static_cast<double>(x[ii]);
    for (std::size_t k = ii + 1; k < n; ++k) {
      acc -= static_cast<double>(l[k * n + ii]) * static_cast<double>(x[k]);
    }
    x[ii] = static_cast<real_t>(acc / static_cast<double>(l[ii * n + ii]));
  }
}

bool solve_spd(std::size_t n, std::span<const real_t> a,
               std::span<const real_t> b, std::span<real_t> x) {
  std::vector<real_t> scratch(a.begin(), a.end());
  if (!cholesky_factor(n, scratch)) {
    return false;
  }
  cholesky_solve(n, scratch, b, x);
  return true;
}

}  // namespace cumf
