#include "linalg/cg.hpp"

namespace cumf {

double dot_d(std::span<const real_t> a, std::span<const real_t> b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return acc;
}

template CgResult cg_solve<float>(std::size_t, std::span<const float>,
                                  std::span<const real_t>, std::span<real_t>,
                                  std::uint32_t, real_t);
template CgResult cg_solve<half>(std::size_t, std::span<const half>,
                                 std::span<const real_t>, std::span<real_t>,
                                 std::uint32_t, real_t);
template CgResult pcg_solve<float>(std::size_t, std::span<const float>,
                                   std::span<const real_t>,
                                   std::span<real_t>, std::uint32_t, real_t);
template CgResult pcg_solve<half>(std::size_t, std::span<const half>,
                                  std::span<const real_t>, std::span<real_t>,
                                  std::uint32_t, real_t);

}  // namespace cumf
