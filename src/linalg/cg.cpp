#include "linalg/cg.hpp"

namespace cumf {

double dot_d(std::span<const real_t> a, std::span<const real_t> b,
             simd::KernelPath path) {
  return dot(a, b, path);
}

template CgResult cg_solve<float>(std::size_t, std::span<const float>,
                                  std::span<const real_t>, std::span<real_t>,
                                  std::uint32_t, real_t, simd::KernelPath);
template CgResult cg_solve<half>(std::size_t, std::span<const half>,
                                 std::span<const real_t>, std::span<real_t>,
                                 std::uint32_t, real_t, simd::KernelPath);
template CgResult pcg_solve<float>(std::size_t, std::span<const float>,
                                   std::span<const real_t>,
                                   std::span<real_t>, std::uint32_t, real_t,
                                   simd::KernelPath);
template CgResult pcg_solve<half>(std::size_t, std::span<const half>,
                                  std::span<const real_t>, std::span<real_t>,
                                  std::uint32_t, real_t, simd::KernelPath);

}  // namespace cumf
