#include "linalg/dense.hpp"

#include <algorithm>
#include <cmath>

namespace cumf {

namespace {

/// Lane-parallel Σ a[i]·b[i] with exact double products; the scalar tail
/// appends sequentially, matching the reference loop's term values.
double dot_simd(const real_t* a, const real_t* b, std::size_t n) {
  simd::vd4 acc_lo = simd::vd4::zero();
  simd::vd4 acc_hi = simd::vd4::zero();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const simd::vf8 av = simd::vf8::load(a + i);
    const simd::vf8 bv = simd::vf8::load(b + i);
    acc_lo.mul_acc_lo(av, bv);
    acc_hi.mul_acc_hi(av, bv);
  }
  double acc = acc_lo.hsum() + acc_hi.hsum();
  for (; i < n; ++i) {
    acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return acc;
}

}  // namespace

double dot(std::span<const real_t> a, std::span<const real_t> b,
           simd::KernelPath path) {
  CUMF_EXPECTS(a.size() == b.size(), "dot: size mismatch");
  if (path == simd::KernelPath::simd) {
    return dot_simd(a.data(), b.data(), a.size());
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return acc;
}

void axpy(real_t alpha, std::span<const real_t> x, std::span<real_t> y,
          simd::KernelPath path) {
  CUMF_EXPECTS(x.size() == y.size(), "axpy: size mismatch");
  std::size_t i = 0;
  if (path == simd::KernelPath::simd) {
    const simd::vf8 av = simd::vf8::broadcast(alpha);
    for (; i + 8 <= x.size(); i += 8) {
      (simd::vf8::load(y.data() + i) + av * simd::vf8::load(x.data() + i))
          .store(y.data() + i);
    }
  }
  for (; i < x.size(); ++i) {
    y[i] += alpha * x[i];
  }
}

void scal(real_t alpha, std::span<real_t> x) {
  for (real_t& xi : x) {
    xi *= alpha;
  }
}

double nrm2(std::span<const real_t> x) { return std::sqrt(dot(x, x)); }

double max_abs_diff(std::span<const real_t> a, std::span<const real_t> b) {
  CUMF_EXPECTS(a.size() == b.size(), "max_abs_diff: size mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(static_cast<double>(a[i]) -
                                     static_cast<double>(b[i])));
  }
  return worst;
}

void symv(std::size_t n, std::span<const real_t> a,
          std::span<const real_t> x, std::span<real_t> y,
          simd::KernelPath path) {
  CUMF_EXPECTS(a.size() == n * n, "symv: A must be n*n");
  CUMF_EXPECTS(x.size() == n && y.size() == n, "symv: vector size mismatch");
  if (path == simd::KernelPath::simd) {
    for (std::size_t i = 0; i < n; ++i) {
      y[i] = static_cast<real_t>(dot_simd(a.data() + i * n, x.data(), n));
    }
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    const real_t* row = a.data() + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      acc += static_cast<double>(row[j]) * static_cast<double>(x[j]);
    }
    y[i] = static_cast<real_t>(acc);
  }
}

}  // namespace cumf
