#include "linalg/dense.hpp"

#include <algorithm>
#include <cmath>

namespace cumf {

double dot(std::span<const real_t> a, std::span<const real_t> b) {
  CUMF_EXPECTS(a.size() == b.size(), "dot: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return acc;
}

void axpy(real_t alpha, std::span<const real_t> x, std::span<real_t> y) {
  CUMF_EXPECTS(x.size() == y.size(), "axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) {
    y[i] += alpha * x[i];
  }
}

void scal(real_t alpha, std::span<real_t> x) {
  for (real_t& xi : x) {
    xi *= alpha;
  }
}

double nrm2(std::span<const real_t> x) { return std::sqrt(dot(x, x)); }

double max_abs_diff(std::span<const real_t> a, std::span<const real_t> b) {
  CUMF_EXPECTS(a.size() == b.size(), "max_abs_diff: size mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(static_cast<double>(a[i]) -
                                     static_cast<double>(b[i])));
  }
  return worst;
}

void symv(std::size_t n, std::span<const real_t> a,
          std::span<const real_t> x, std::span<real_t> y) {
  CUMF_EXPECTS(a.size() == n * n, "symv: A must be n*n");
  CUMF_EXPECTS(x.size() == n && y.size() == n, "symv: vector size mismatch");
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    const real_t* row = a.data() + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      acc += static_cast<double>(row[j]) * static_cast<double>(x[j]);
    }
    y[i] = static_cast<real_t>(acc);
  }
}

}  // namespace cumf
