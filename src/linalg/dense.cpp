#include "linalg/dense.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace cumf {

namespace {

/// Lane-parallel Σ a[i]·b[i] with exact double products; the scalar tail
/// appends sequentially, matching the reference loop's term values. The vd8
/// accumulator is lane-for-lane the historical {acc_lo, acc_hi} vd4 pair
/// and hsum() reduces in the same order, so results are unchanged.
double dot_simd(const real_t* a, const real_t* b, std::size_t n) {
  simd::vd8 acc8 = simd::vd8::zero();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc8.mul_acc(simd::vf8::load(a + i), simd::vf8::load(b + i));
  }
  double acc = acc8.hsum();
  for (; i < n; ++i) {
    acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return acc;
}

}  // namespace

double dot(std::span<const real_t> a, std::span<const real_t> b,
           simd::KernelPath path) {
  CUMF_EXPECTS(a.size() == b.size(), "dot: size mismatch");
  if (path == simd::KernelPath::simd) {
    return dot_simd(a.data(), b.data(), a.size());
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return acc;
}

void dot_rows(std::span<const real_t> x, const Matrix& a,
              std::size_t row_begin, std::size_t row_end,
              std::span<double> out, simd::KernelPath path) {
  CUMF_EXPECTS(row_begin <= row_end && row_end <= a.rows(),
               "dot_rows: row range out of bounds");
  CUMF_EXPECTS(x.size() == a.cols(), "dot_rows: x/row length mismatch");
  CUMF_EXPECTS(out.size() == row_end - row_begin,
               "dot_rows: output span size mismatch");
  const std::size_t f = a.cols();
  if (path != simd::KernelPath::simd) {
    for (std::size_t r = row_begin; r < row_end; ++r) {
      const real_t* row = a.data().data() + r * f;
      double acc = 0.0;
      for (std::size_t i = 0; i < f; ++i) {
        acc += static_cast<double>(x[i]) * static_cast<double>(row[i]);
      }
      out[r - row_begin] = acc;
    }
    return;
  }
  // Widen x once for the whole scan; every row then replays dot_simd's
  // exact accumulation recurrence against the pre-widened chunks (the
  // widening is exact, so sharing it cannot change any product).
  const std::size_t chunks = f / 8;
  std::vector<simd::vd8> xw(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    xw[c] = simd::vd8::widen(simd::vf8::load(x.data() + c * 8));
  }
  for (std::size_t r = row_begin; r < row_end; ++r) {
    const real_t* row = a.data().data() + r * f;
    simd::vd8 acc8 = simd::vd8::zero();
    for (std::size_t c = 0; c < chunks; ++c) {
      acc8.mul_acc(xw[c], simd::vf8::load(row + c * 8));
    }
    double acc = acc8.hsum();
    for (std::size_t i = chunks * 8; i < f; ++i) {
      acc += static_cast<double>(x[i]) * static_cast<double>(row[i]);
    }
    out[r - row_begin] = acc;
  }
}

void axpy(real_t alpha, std::span<const real_t> x, std::span<real_t> y,
          simd::KernelPath path) {
  CUMF_EXPECTS(x.size() == y.size(), "axpy: size mismatch");
  std::size_t i = 0;
  if (path == simd::KernelPath::simd) {
    const simd::vf8 av = simd::vf8::broadcast(alpha);
    for (; i + 8 <= x.size(); i += 8) {
      (simd::vf8::load(y.data() + i) + av * simd::vf8::load(x.data() + i))
          .store(y.data() + i);
    }
  }
  for (; i < x.size(); ++i) {
    y[i] += alpha * x[i];
  }
}

void scal(real_t alpha, std::span<real_t> x) {
  for (real_t& xi : x) {
    xi *= alpha;
  }
}

double nrm2(std::span<const real_t> x) { return std::sqrt(dot(x, x)); }

double max_abs_diff(std::span<const real_t> a, std::span<const real_t> b) {
  CUMF_EXPECTS(a.size() == b.size(), "max_abs_diff: size mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(static_cast<double>(a[i]) -
                                     static_cast<double>(b[i])));
  }
  return worst;
}

void symv(std::size_t n, std::span<const real_t> a,
          std::span<const real_t> x, std::span<real_t> y,
          simd::KernelPath path) {
  CUMF_EXPECTS(a.size() == n * n, "symv: A must be n*n");
  CUMF_EXPECTS(x.size() == n && y.size() == n, "symv: vector size mismatch");
  if (path == simd::KernelPath::simd) {
    for (std::size_t i = 0; i < n; ++i) {
      y[i] = static_cast<real_t>(dot_simd(a.data() + i * n, x.data(), n));
    }
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    const real_t* row = a.data() + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      acc += static_cast<double>(row[j]) * static_cast<double>(x[j]);
    }
    y[i] = static_cast<real_t>(acc);
  }
}

}  // namespace cumf
