// Dense row-major matrix/vector containers used for the factor matrices
// X (m×f), Θ (n×f) and the per-row Hermitian systems A_u (f×f).
//
// The vector helpers carry a KernelPath: the default runs the SIMD hot path
// when the build enables it (CUMF_SIMD), passing KernelPath::scalar pins the
// reference loops for differential testing. Elementwise ops (axpy, scal) are
// bitwise identical across paths; reductions (dot, symv rows) accumulate in
// double either way but the SIMD path reassociates lanes, so results agree
// to a few ULP, not bitwise.
#pragma once

#include <span>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "simd/vec.hpp"

namespace cumf {

/// Owning dense row-major matrix of `real_t`.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, real_t fill = 0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return data_.size(); }

  real_t& operator()(std::size_t r, std::size_t c) {
    CUMF_EXPECTS(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }
  real_t operator()(std::size_t r, std::size_t c) const {
    CUMF_EXPECTS(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }

  /// Mutable view of row r.
  std::span<real_t> row(std::size_t r) {
    CUMF_EXPECTS(r < rows_, "row out of range");
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const real_t> row(std::size_t r) const {
    CUMF_EXPECTS(r < rows_, "row out of range");
    return {data_.data() + r * cols_, cols_};
  }

  std::span<real_t> data() noexcept { return data_; }
  std::span<const real_t> data() const noexcept { return data_; }

  void fill(real_t value) { std::fill(data_.begin(), data_.end(), value); }

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<real_t> data_;
};

// --- Small dense vector helpers (operate on spans, no allocation) ---

/// dot(a, b) with double accumulation for robustness at f ≥ 100.
double dot(std::span<const real_t> a, std::span<const real_t> b,
           simd::KernelPath path = simd::kDefaultPath);

/// Batched row dots (the serving gemv): out[i] = dot(x, a.row(row_begin+i))
/// for row_begin ≤ row < row_end, bit-identical per row to calling dot()
/// with the same path. The SIMD variant widens x to double once for the
/// whole scan and reuses the pre-widened chunks across every row — the
/// float→double converts drop from two per chunk to one, not the reduction
/// order; each row still runs dot()'s exact chunk/accumulator/tail
/// sequence, so ranking code may mix dot() and dot_rows() freely.
void dot_rows(std::span<const real_t> x, const Matrix& a,
              std::size_t row_begin, std::size_t row_end,
              std::span<double> out,
              simd::KernelPath path = simd::kDefaultPath);

/// y ← y + alpha * x
void axpy(real_t alpha, std::span<const real_t> x, std::span<real_t> y,
          simd::KernelPath path = simd::kDefaultPath);

/// x ← alpha * x
void scal(real_t alpha, std::span<real_t> x);

/// Euclidean norm.
double nrm2(std::span<const real_t> x);

/// Frobenius norm of (a − b); convenience for tests.
double max_abs_diff(std::span<const real_t> a, std::span<const real_t> b);

/// Dense symmetric matvec y = A·x where A is n×n row-major (full storage).
void symv(std::size_t n, std::span<const real_t> a,
          std::span<const real_t> x, std::span<real_t> y,
          simd::KernelPath path = simd::kDefaultPath);

}  // namespace cumf
