// Reference dense GEMM and SYRK kernels.
//
// These back the BIDMach-style generic ALS baseline and the cuBLAS
// gemmBatched comparison of Fig. 7a. They are straightforward cache-blocked
// loops — correctness and countable work, not peak CPU throughput, is the
// goal (device-time comes from the gpusim cost model).
#pragma once

#include <span>

#include "common/types.hpp"

namespace cumf {

/// C ← alpha·A·B + beta·C with A: m×k, B: k×n, C: m×n, all row-major.
void gemm(std::size_t m, std::size_t n, std::size_t k, real_t alpha,
          std::span<const real_t> a, std::span<const real_t> b, real_t beta,
          std::span<real_t> c);

/// C ← alpha·A·Aᵀ + beta·C with A: n×k row-major, C: n×n (full storage,
/// both triangles written). The building block of get_hermitian.
void syrk(std::size_t n, std::size_t k, real_t alpha,
          std::span<const real_t> a, real_t beta, std::span<real_t> c);

}  // namespace cumf
