// Approximate conjugate-gradient solver (paper Algorithm 1).
//
// This is the approximate-computing half of the paper's contribution: solving
// A x = b with at most `fs` CG iterations costs O(fs·f²) instead of the LU
// solver's O(f³); with fs ≪ f (the paper uses fs = 6 for f = 100) the ALS
// epoch becomes 4x faster at the same final accuracy. The matrix A may be
// stored in FP32 or FP16 — FP16 halves the bytes read by the dominant A·p
// matvec (Solution 4), which doubles the effective memory bandwidth of this
// memory-bound kernel. All arithmetic is performed in FP32 regardless of the
// storage type, matching the GPU implementation.
//
// Every per-iteration primitive — the gemv (with a fused 8-wide FP16 unpack
// for half storage), both dot products, and the x/r/p updates — has a SIMD
// and a scalar variant selected by the trailing KernelPath argument
// (default: the configure-time choice). Elementwise updates are bitwise
// identical across paths; the gemv/dot reductions accumulate in double on
// both paths but the SIMD path sums lanes in parallel, so iterates agree to
// reassociation error only.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "half/half.hpp"
#include "half/half_simd.hpp"
#include "linalg/dense.hpp"
#include "simd/vec.hpp"

namespace cumf {

/// Curvature threshold below which a CG step is declared broken down: a
/// pᵀAp this small (or negative, or non-finite) makes α = rᵀr / pᵀAp
/// meaningless, which happens only when A lost positive definiteness or the
/// system contains non-finite values.
inline constexpr double kCgBreakdownEps = 1e-30;

/// Outcome of one cg_solve call; also feeds the roofline bookkeeping.
struct CgResult {
  std::uint32_t iterations = 0;  ///< CG steps actually taken (≤ fs)
  double residual_norm = 0.0;    ///< ‖b − A·x‖ proxy: √(rᵀr) at exit
  bool converged = false;        ///< true if tolerance reached before fs
  /// True when the solve terminated on a non-finite residual or on
  /// pᵀAp ≤ kCgBreakdownEps (indefinite or corrupted system). The iterate
  /// in `x` is not trustworthy; callers should fall back to an exact
  /// factorization (SystemSolver reroutes to LU and counts the event).
  bool breakdown = false;
};

/// Value envelope of one CG matvec intermediate: with |A_ij| ≤ a_abs and
/// |v_i| ≤ v_abs, every partial sum of (A·v)_i is within f·a_abs·v_abs.
/// CG arithmetic runs in FP32 regardless of A's storage precision, so this
/// bound is compared against float range by the static FP16 range pass —
/// only the A *pack* itself is range-limited to half.
inline constexpr double cg_matvec_abs_bound(std::size_t f, double a_abs,
                                            double v_abs) noexcept {
  return static_cast<double>(f) * a_abs * v_abs;
}

/// Storage-precision conversion: float passes through, half widens.
inline float load_as_float(float v) noexcept { return v; }
inline float load_as_float(half v) noexcept { return static_cast<float>(v); }

/// Double-accumulated dot product on real_t spans (internal helper).
double dot_d(std::span<const real_t> a, std::span<const real_t> b,
             simd::KernelPath path = simd::kDefaultPath);

namespace detail {

/// 8-lane load of the storage type: float loads directly, half goes through
/// the vectorized unpack (bitwise identical to elementwise widening).
inline simd::vf8 load8(const float* p) noexcept { return simd::vf8::load(p); }
inline simd::vf8 load8(const half* p) noexcept { return half_to_float8(p); }

/// out = A·in for row-major n×n A of storage type T, FP32 data, double
/// accumulation per row (exact float→double products on both paths).
template <typename T>
void gemv(std::size_t n, const T* a, const real_t* in, real_t* out,
          simd::KernelPath path) {
  if (path == simd::KernelPath::simd) {
    for (std::size_t i = 0; i < n; ++i) {
      const T* row = a + i * n;
      simd::vd4 acc_lo = simd::vd4::zero();
      simd::vd4 acc_hi = simd::vd4::zero();
      std::size_t j = 0;
      for (; j + 8 <= n; j += 8) {
        const simd::vf8 av = load8(row + j);
        const simd::vf8 xv = simd::vf8::load(in + j);
        acc_lo.mul_acc_lo(av, xv);
        acc_hi.mul_acc_hi(av, xv);
      }
      double acc = acc_lo.hsum() + acc_hi.hsum();
      for (; j < n; ++j) {
        acc += static_cast<double>(load_as_float(row[j])) *
               static_cast<double>(in[j]);
      }
      out[i] = static_cast<real_t>(acc);
    }
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    const T* row = a + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      acc += static_cast<double>(load_as_float(row[j])) *
             static_cast<double>(in[j]);
    }
    out[i] = static_cast<real_t>(acc);
  }
}

/// x += α·p and r −= α·ap, fused (CG line 5). Elementwise: bitwise equal
/// across paths.
inline void cg_step_update(std::size_t n, real_t alpha, const real_t* p,
                           const real_t* ap, real_t* x, real_t* r,
                           simd::KernelPath path) {
  std::size_t i = 0;
  if (path == simd::KernelPath::simd) {
    const simd::vf8 av = simd::vf8::broadcast(alpha);
    for (; i + 8 <= n; i += 8) {
      (simd::vf8::load(x + i) + av * simd::vf8::load(p + i)).store(x + i);
      (simd::vf8::load(r + i) - av * simd::vf8::load(ap + i)).store(r + i);
    }
  }
  for (; i < n; ++i) {
    x[i] += alpha * p[i];
    r[i] -= alpha * ap[i];
  }
}

/// p = z + β·p (CG line 10 / PCG direction update).
inline void xpby(std::size_t n, const real_t* z, real_t beta, real_t* p,
                 simd::KernelPath path) {
  std::size_t i = 0;
  if (path == simd::KernelPath::simd) {
    const simd::vf8 bv = simd::vf8::broadcast(beta);
    for (; i + 8 <= n; i += 8) {
      (simd::vf8::load(z + i) + bv * simd::vf8::load(p + i)).store(p + i);
    }
  }
  for (; i < n; ++i) {
    p[i] = z[i] + beta * p[i];
  }
}

/// z = d ⊙ r (Jacobi preconditioner application).
inline void hadamard(std::size_t n, const real_t* d, const real_t* r,
                     real_t* z, simd::KernelPath path) {
  std::size_t i = 0;
  if (path == simd::KernelPath::simd) {
    for (; i + 8 <= n; i += 8) {
      (simd::vf8::load(d + i) * simd::vf8::load(r + i)).store(z + i);
    }
  }
  for (; i < n; ++i) {
    z[i] = d[i] * r[i];
  }
}

}  // namespace detail

/// Solves A·x = b for symmetric positive definite A (n×n row-major, full
/// storage, element type T ∈ {float, half}). `x` holds the initial guess on
/// entry (warm start from the previous ALS sweep is the intended use) and the
/// solution on exit.
///
/// fs: maximum iterations (paper's truncation knob). eps: tolerance on
/// √(rᵀr) (Algorithm 1 line 7). path: SIMD or scalar kernels.
template <typename T>
CgResult cg_solve(std::size_t n, std::span<const T> a,
                  std::span<const real_t> b, std::span<real_t> x,
                  std::uint32_t fs, real_t eps,
                  simd::KernelPath path = simd::kDefaultPath) {
  CUMF_EXPECTS(a.size() == n * n, "cg: A must be n*n");
  CUMF_EXPECTS(b.size() == n && x.size() == n, "cg: vector size mismatch");
  CUMF_EXPECTS(fs > 0, "cg: need at least one iteration");

  // Workspace kept as locals: n is the latent dimension f (≤ a few hundred),
  // so this mirrors the GPU version's shared-memory scratch.
  std::vector<real_t> r(n);
  std::vector<real_t> p(n);
  std::vector<real_t> ap(n);

  // r = b − A·x; p = r; rsold = rᵀr   (Algorithm 1, line 2)
  detail::gemv(n, a.data(), x.data(), r.data(), path);
  for (std::size_t i = 0; i < n; ++i) {
    r[i] = b[i] - r[i];
    p[i] = r[i];
  }
  double rsold = dot_d(r, r, path);

  CgResult result;
  result.residual_norm = std::sqrt(rsold);
  if (!std::isfinite(rsold)) {
    // NaN/inf in A, b, or the warm start: no iterate can be trusted.
    result.breakdown = true;
    return result;
  }
  if (result.residual_norm < static_cast<double>(eps)) {
    result.converged = true;
    return result;
  }

  for (std::uint32_t j = 0; j < fs; ++j) {
    detail::gemv(n, a.data(), p.data(), ap.data(), path);  // ap = A·p (line 4)
    const double pap = dot_d(p, ap, path);
    if (!(pap > kCgBreakdownEps)) {
      // Non-finite, negative (A not SPD), or vanishing curvature.
      result.breakdown = true;
      break;
    }
    const double alpha = rsold / pap;
    detail::cg_step_update(n, static_cast<real_t>(alpha), p.data(), ap.data(),
                           x.data(), r.data(), path);  // line 5
    const double rsnew = dot_d(r, r, path);            // line 6
    if (!std::isfinite(rsnew)) {
      result.breakdown = true;
      break;
    }
    ++result.iterations;
    result.residual_norm = std::sqrt(rsnew);
    if (result.residual_norm < static_cast<double>(eps)) {  // line 7
      result.converged = true;
      return result;
    }
    const double beta = rsnew / rsold;
    detail::xpby(n, r.data(), static_cast<real_t>(beta), p.data(),
                 path);  // line 10
    rsold = rsnew;
  }
  return result;
}

/// Jacobi-preconditioned CG: solves M⁻¹A x = M⁻¹b with M = diag(A).
/// For ALS the Hermitian matrices are diagonally dominant-ish once the
/// λ·n_u ridge is added, so the preconditioner shrinks the iteration count
/// when θ columns have very unequal norms (an extension beyond the paper,
/// ablated in bench_ablation). Interface matches cg_solve.
template <typename T>
CgResult pcg_solve(std::size_t n, std::span<const T> a,
                   std::span<const real_t> b, std::span<real_t> x,
                   std::uint32_t fs, real_t eps,
                   simd::KernelPath path = simd::kDefaultPath) {
  CUMF_EXPECTS(a.size() == n * n, "pcg: A must be n*n");
  CUMF_EXPECTS(b.size() == n && x.size() == n, "pcg: vector size mismatch");
  CUMF_EXPECTS(fs > 0, "pcg: need at least one iteration");

  std::vector<real_t> r(n);
  std::vector<real_t> z(n);
  std::vector<real_t> p(n);
  std::vector<real_t> ap(n);
  std::vector<real_t> inv_diag(n);
  for (std::size_t i = 0; i < n; ++i) {
    const float d = load_as_float(a[i * n + i]);
    CUMF_EXPECTS(d > 0, "pcg: non-positive diagonal (A not SPD)");
    inv_diag[i] = real_t{1} / d;
  }

  detail::gemv(n, a.data(), x.data(), r.data(), path);
  for (std::size_t i = 0; i < n; ++i) {
    r[i] = b[i] - r[i];
    z[i] = inv_diag[i] * r[i];
    p[i] = z[i];
  }
  double rz_old = dot_d(r, z, path);

  CgResult result;
  const double rs0 = dot_d(r, r, path);
  result.residual_norm = std::sqrt(rs0);
  if (!std::isfinite(rs0)) {
    result.breakdown = true;
    return result;
  }
  if (result.residual_norm < static_cast<double>(eps)) {
    result.converged = true;
    return result;
  }

  for (std::uint32_t j = 0; j < fs; ++j) {
    detail::gemv(n, a.data(), p.data(), ap.data(), path);
    const double pap = dot_d(p, ap, path);
    if (!(pap > kCgBreakdownEps)) {
      result.breakdown = true;
      break;
    }
    const double alpha = rz_old / pap;
    detail::cg_step_update(n, static_cast<real_t>(alpha), p.data(), ap.data(),
                           x.data(), r.data(), path);
    const double rsnew = dot_d(r, r, path);
    if (!std::isfinite(rsnew)) {
      result.breakdown = true;
      break;
    }
    ++result.iterations;
    result.residual_norm = std::sqrt(rsnew);
    if (result.residual_norm < static_cast<double>(eps)) {
      result.converged = true;
      return result;
    }
    detail::hadamard(n, inv_diag.data(), r.data(), z.data(), path);
    const double rz_new = dot_d(r, z, path);
    const double beta = rz_new / rz_old;
    detail::xpby(n, z.data(), static_cast<real_t>(beta), p.data(), path);
    rz_old = rz_new;
  }
  return result;
}

extern template CgResult cg_solve<float>(std::size_t, std::span<const float>,
                                         std::span<const real_t>,
                                         std::span<real_t>, std::uint32_t,
                                         real_t, simd::KernelPath);
extern template CgResult cg_solve<half>(std::size_t, std::span<const half>,
                                        std::span<const real_t>,
                                        std::span<real_t>, std::uint32_t,
                                        real_t, simd::KernelPath);
extern template CgResult pcg_solve<float>(std::size_t, std::span<const float>,
                                          std::span<const real_t>,
                                          std::span<real_t>, std::uint32_t,
                                          real_t, simd::KernelPath);
extern template CgResult pcg_solve<half>(std::size_t, std::span<const half>,
                                         std::span<const real_t>,
                                         std::span<real_t>, std::uint32_t,
                                         real_t, simd::KernelPath);

}  // namespace cumf
