// Approximate conjugate-gradient solver (paper Algorithm 1).
//
// This is the approximate-computing half of the paper's contribution: solving
// A x = b with at most `fs` CG iterations costs O(fs·f²) instead of the LU
// solver's O(f³); with fs ≪ f (the paper uses fs = 6 for f = 100) the ALS
// epoch becomes 4x faster at the same final accuracy. The matrix A may be
// stored in FP32 or FP16 — FP16 halves the bytes read by the dominant A·p
// matvec (Solution 4), which doubles the effective memory bandwidth of this
// memory-bound kernel. All arithmetic is performed in FP32 regardless of the
// storage type, matching the GPU implementation.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "half/half.hpp"

namespace cumf {

/// Outcome of one cg_solve call; also feeds the roofline bookkeeping.
struct CgResult {
  std::uint32_t iterations = 0;  ///< CG steps actually taken (≤ fs)
  double residual_norm = 0.0;    ///< ‖b − A·x‖ proxy: √(rᵀr) at exit
  bool converged = false;        ///< true if tolerance reached before fs
};

/// Storage-precision conversion: float passes through, half widens.
inline float load_as_float(float v) noexcept { return v; }
inline float load_as_float(half v) noexcept { return static_cast<float>(v); }

/// Double-accumulated dot product on real_t spans (internal helper).
double dot_d(std::span<const real_t> a, std::span<const real_t> b);

/// Solves A·x = b for symmetric positive definite A (n×n row-major, full
/// storage, element type T ∈ {float, half}). `x` holds the initial guess on
/// entry (warm start from the previous ALS sweep is the intended use) and the
/// solution on exit.
///
/// fs: maximum iterations (paper's truncation knob). eps: tolerance on
/// √(rᵀr) (Algorithm 1 line 7).
template <typename T>
CgResult cg_solve(std::size_t n, std::span<const T> a,
                  std::span<const real_t> b, std::span<real_t> x,
                  std::uint32_t fs, real_t eps) {
  CUMF_EXPECTS(a.size() == n * n, "cg: A must be n*n");
  CUMF_EXPECTS(b.size() == n && x.size() == n, "cg: vector size mismatch");
  CUMF_EXPECTS(fs > 0, "cg: need at least one iteration");

  // Workspace kept as locals: n is the latent dimension f (≤ a few hundred),
  // so this mirrors the GPU version's shared-memory scratch.
  std::vector<real_t> r(n);
  std::vector<real_t> p(n);
  std::vector<real_t> ap(n);

  const auto matvec = [&](std::span<const real_t> in, std::span<real_t> out) {
    for (std::size_t i = 0; i < n; ++i) {
      double acc = 0.0;
      const T* row = a.data() + i * n;
      for (std::size_t j = 0; j < n; ++j) {
        acc += static_cast<double>(load_as_float(row[j])) *
               static_cast<double>(in[j]);
      }
      out[i] = static_cast<real_t>(acc);
    }
  };

  // r = b − A·x; p = r; rsold = rᵀr   (Algorithm 1, line 2)
  matvec(x, r);
  for (std::size_t i = 0; i < n; ++i) {
    r[i] = b[i] - r[i];
    p[i] = r[i];
  }
  double rsold = dot_d(r, r);

  CgResult result;
  result.residual_norm = std::sqrt(rsold);
  if (result.residual_norm < static_cast<double>(eps)) {
    result.converged = true;
    return result;
  }

  for (std::uint32_t j = 0; j < fs; ++j) {
    matvec(p, ap);                              // ap = A·p (line 4)
    const double pap = dot_d(p, ap);
    if (pap <= 0.0) {
      break;  // loss of positive definiteness under rounding: stop early
    }
    const double alpha = rsold / pap;
    for (std::size_t i = 0; i < n; ++i) {       // line 5
      x[i] += static_cast<real_t>(alpha) * p[i];
      r[i] -= static_cast<real_t>(alpha) * ap[i];
    }
    const double rsnew = dot_d(r, r);           // line 6
    ++result.iterations;
    result.residual_norm = std::sqrt(rsnew);
    if (result.residual_norm < static_cast<double>(eps)) {  // line 7
      result.converged = true;
      return result;
    }
    const double beta = rsnew / rsold;
    for (std::size_t i = 0; i < n; ++i) {       // line 10
      p[i] = r[i] + static_cast<real_t>(beta) * p[i];
    }
    rsold = rsnew;
  }
  return result;
}

/// Jacobi-preconditioned CG: solves M⁻¹A x = M⁻¹b with M = diag(A).
/// For ALS the Hermitian matrices are diagonally dominant-ish once the
/// λ·n_u ridge is added, so the preconditioner shrinks the iteration count
/// when θ columns have very unequal norms (an extension beyond the paper,
/// ablated in bench_ablation). Interface matches cg_solve.
template <typename T>
CgResult pcg_solve(std::size_t n, std::span<const T> a,
                   std::span<const real_t> b, std::span<real_t> x,
                   std::uint32_t fs, real_t eps) {
  CUMF_EXPECTS(a.size() == n * n, "pcg: A must be n*n");
  CUMF_EXPECTS(b.size() == n && x.size() == n, "pcg: vector size mismatch");
  CUMF_EXPECTS(fs > 0, "pcg: need at least one iteration");

  std::vector<real_t> r(n);
  std::vector<real_t> z(n);
  std::vector<real_t> p(n);
  std::vector<real_t> ap(n);
  std::vector<real_t> inv_diag(n);
  for (std::size_t i = 0; i < n; ++i) {
    const float d = load_as_float(a[i * n + i]);
    CUMF_EXPECTS(d > 0, "pcg: non-positive diagonal (A not SPD)");
    inv_diag[i] = real_t{1} / d;
  }

  const auto matvec = [&](std::span<const real_t> in, std::span<real_t> out) {
    for (std::size_t i = 0; i < n; ++i) {
      double acc = 0.0;
      const T* row = a.data() + i * n;
      for (std::size_t j = 0; j < n; ++j) {
        acc += static_cast<double>(load_as_float(row[j])) *
               static_cast<double>(in[j]);
      }
      out[i] = static_cast<real_t>(acc);
    }
  };

  matvec(x, r);
  for (std::size_t i = 0; i < n; ++i) {
    r[i] = b[i] - r[i];
    z[i] = inv_diag[i] * r[i];
    p[i] = z[i];
  }
  double rz_old = dot_d(r, z);

  CgResult result;
  result.residual_norm = std::sqrt(dot_d(r, r));
  if (result.residual_norm < static_cast<double>(eps)) {
    result.converged = true;
    return result;
  }

  for (std::uint32_t j = 0; j < fs; ++j) {
    matvec(p, ap);
    const double pap = dot_d(p, ap);
    if (pap <= 0.0) {
      break;
    }
    const double alpha = rz_old / pap;
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += static_cast<real_t>(alpha) * p[i];
      r[i] -= static_cast<real_t>(alpha) * ap[i];
    }
    ++result.iterations;
    result.residual_norm = std::sqrt(dot_d(r, r));
    if (result.residual_norm < static_cast<double>(eps)) {
      result.converged = true;
      return result;
    }
    for (std::size_t i = 0; i < n; ++i) {
      z[i] = inv_diag[i] * r[i];
    }
    const double rz_new = dot_d(r, z);
    const double beta = rz_new / rz_old;
    for (std::size_t i = 0; i < n; ++i) {
      p[i] = z[i] + static_cast<real_t>(beta) * p[i];
    }
    rz_old = rz_new;
  }
  return result;
}

extern template CgResult cg_solve<float>(std::size_t, std::span<const float>,
                                         std::span<const real_t>,
                                         std::span<real_t>, std::uint32_t,
                                         real_t);
extern template CgResult cg_solve<half>(std::size_t, std::span<const half>,
                                        std::span<const real_t>,
                                        std::span<real_t>, std::uint32_t,
                                        real_t);
extern template CgResult pcg_solve<float>(std::size_t, std::span<const float>,
                                          std::span<const real_t>,
                                          std::span<real_t>, std::uint32_t,
                                          real_t);
extern template CgResult pcg_solve<half>(std::size_t, std::span<const half>,
                                         std::span<const real_t>,
                                         std::span<real_t>, std::uint32_t,
                                         real_t);

}  // namespace cumf
