// Vectorized FP16 ⇄ FP32 conversion for the hot paths.
//
// The CG-FP16 solver reads f² halves per matvec and the fp16_staging mode of
// get_hermitian rounds every staged θ element through binary16; both paths
// were previously elementwise calls into half::to_float / half::from_float.
// This header provides 8-wide branchless conversions on simd::vu8 lanes.
//
// The algorithms are the classic exponent-rebias tricks (Giesen,
// "float->half variants"): unpack shifts the half's exponent/mantissa into
// float position and rebias-adds (127−15)<<23, fixing up Inf/NaN with a
// second rebias and subnormals with an exact magic-number subtraction; pack
// uses the reverse rebias with an explicit round-to-nearest-even increment
// and a magic-addition for results that land in the subnormal half range.
// Both are exact: the differential tests check bitwise equality against the
// scalar `half` class over every 16-bit pattern (unpack / round-trip) and
// over random + boundary floats (pack), including NaN payload propagation.
#pragma once

#include <cstddef>
#include <cstdint>

#include "half/half.hpp"
#include "simd/vec.hpp"

namespace cumf {

/// Converts 8 packed half-bit patterns to 8 floats.
inline simd::vf8 half_to_float8(const half* src) noexcept {
  using simd::vu8;
  // half is a single uint16_t; reinterpret the array as raw bit patterns.
  const vu8 h = vu8::load_u16(reinterpret_cast<const std::uint16_t*>(src));

  const vu8 sign = (h & vu8::broadcast(0x8000u)) << 16;
  vu8 o = (h & vu8::broadcast(0x7FFFu)) << 13;
  const vu8 exp = o & vu8::broadcast(0x0F800000u);  // 0x7C00 << 13

  // Rebias 15 → 127; Inf/NaN need the exponent field topped out, which is
  // exactly one more rebias of the same size ((255−31)−(127−15) = 112).
  o = o + vu8::broadcast(0x38000000u);
  const vu8 infnan = vu8::eq(exp, vu8::broadcast(0x0F800000u));
  o = o + (infnan & vu8::broadcast(0x38000000u));

  // Zero/subnormal: bump the exponent to 2^-14 and subtract 2^-14; the
  // subtraction is Sterbenz-exact, yielding frac·2^-24 (and ±0 for zero).
  const vu8 tiny = vu8::eq(exp, vu8::broadcast(0u));
  const simd::vf8 sub_f =
      (o + vu8::broadcast(0x00800000u)).as_float() -
      simd::vf8::broadcast(0x1.0p-14f);
  o = vu8::select(tiny, vu8::from_float(sub_f), o);

  return (o | sign).as_float();
}

/// Converts 8 packed floats to 8 half-bit patterns with round-to-nearest-
/// even, writing the raw uint16 patterns to `dst`.
inline void float_to_half8(const float* src, std::uint16_t* dst) noexcept {
  using simd::vu8;
  vu8 u = vu8::from_float(simd::vf8::load(src));
  const vu8 sign16 = (u & vu8::broadcast(0x80000000u)) >> 16;
  u = u & vu8::broadcast(0x7FFFFFFFu);

  // Inf/NaN/overflow (|x| ≥ 2^16): Inf and values that round past the half
  // range become 0x7C00; NaN keeps its quiet bit and top payload bits,
  // matching half::from_float.
  const vu8 infnan = vu8::ge(u, vu8::broadcast(0x47800000u));
  const vu8 nan = vu8::gt(u, vu8::broadcast(0x7F800000u));
  const vu8 payload =
      vu8::broadcast(0x0200u) | ((u & vu8::broadcast(0x007FFFFFu)) >> 13);
  const vu8 o_infnan = vu8::broadcast(0x7C00u) | (nan & payload);

  // Subnormal-or-zero results (|x| < 2^-14): adding 0.5f aligns the result
  // in the low mantissa bits with correct RNE; subtracting the magic's bit
  // pattern leaves the half's subnormal bits.
  const vu8 tiny = vu8::gt(vu8::broadcast(113u << 23), u);
  const vu8 magic = vu8::broadcast(126u << 23);  // 0.5f
  const vu8 o_tiny =
      vu8::from_float(u.as_float() + magic.as_float()) - magic;

  // Normal results: rebias 127 → 15 and round to nearest even on bit 13
  // (add 0xFFF plus the pre-round odd bit, then truncate).
  const vu8 mant_odd = (u >> 13) & vu8::broadcast(1u);
  vu8 o_norm = u - vu8::broadcast(0x38000000u);  // (127-15) << 23
  o_norm = o_norm + vu8::broadcast(0x0FFFu) + mant_odd;
  o_norm = o_norm >> 13;

  const vu8 o = vu8::select(infnan, o_infnan, vu8::select(tiny, o_tiny, o_norm));
  (o | sign16).store_u16(dst);
}

/// Widens `n` halves into floats. The SIMD path and the scalar path are
/// bitwise identical (conversion is exact), so this dispatches freely.
inline void half_to_float_n(const half* src, float* dst, std::size_t n,
                            simd::KernelPath path) noexcept {
  std::size_t i = 0;
  if (path == simd::KernelPath::simd) {
    for (; i + 8 <= n; i += 8) {
      half_to_float8(src + i).store(dst + i);
    }
  }
  for (; i < n; ++i) {
    dst[i] = static_cast<float>(src[i]);
  }
}

/// Rounds `n` floats through binary16 and back (the fp16_staging transform:
/// Tensor-Core input precision, FP32 accumulate).
inline void round_through_half_n(const float* src, float* dst, std::size_t n,
                                 simd::KernelPath path) noexcept {
  std::size_t i = 0;
  if (path == simd::KernelPath::simd) {
    std::uint16_t bits[8];
    for (; i + 8 <= n; i += 8) {
      float_to_half8(src + i, bits);
      half_to_float8(reinterpret_cast<const half*>(bits)).store(dst + i);
    }
  }
  for (; i < n; ++i) {
    dst[i] = static_cast<float>(half(src[i]));
  }
}

/// Narrows `n` floats to half storage (the CG-FP16 A conversion).
inline void float_to_half_n(const float* src, half* dst, std::size_t n,
                            simd::KernelPath path) noexcept {
  std::size_t i = 0;
  if (path == simd::KernelPath::simd) {
    for (; i + 8 <= n; i += 8) {
      float_to_half8(src + i, reinterpret_cast<std::uint16_t*>(dst + i));
    }
  }
  for (; i < n; ++i) {
    dst[i] = half(src[i]);
  }
}

}  // namespace cumf
