#include "half/half.hpp"

#include <bit>
#include <ostream>

namespace cumf {

namespace {
constexpr std::uint16_t kSignMask16 = 0x8000;
constexpr std::uint16_t kExpMask16 = 0x7C00;
constexpr std::uint16_t kFracMask16 = 0x03FF;
}  // namespace

std::uint16_t half::from_float(float value) noexcept {
  const std::uint32_t f = std::bit_cast<std::uint32_t>(value);
  const std::uint16_t sign = static_cast<std::uint16_t>((f >> 16) & 0x8000u);
  const std::uint32_t exp32 = (f >> 23) & 0xFFu;
  std::uint32_t frac32 = f & 0x007FFFFFu;

  if (exp32 == 0xFF) {  // Inf or NaN
    if (frac32 != 0) {
      // Preserve NaN-ness; set the quiet bit, keep top payload bits.
      return static_cast<std::uint16_t>(sign | 0x7E00u | (frac32 >> 13));
    }
    return static_cast<std::uint16_t>(sign | 0x7C00u);
  }

  // Unbiased exponent of the float.
  const int e = static_cast<int>(exp32) - 127;

  if (e > 15) {  // overflows half range → infinity
    return static_cast<std::uint16_t>(sign | 0x7C00u);
  }

  if (e >= -14) {  // normal half
    // 13 fraction bits are discarded; round to nearest, ties to even.
    std::uint32_t mantissa = frac32;
    std::uint32_t half_bits =
        (static_cast<std::uint32_t>(e + 15) << 10) | (mantissa >> 13);
    const std::uint32_t round_bits = mantissa & 0x1FFFu;
    if (round_bits > 0x1000u ||
        (round_bits == 0x1000u && (half_bits & 1u))) {
      ++half_bits;  // may carry into the exponent — that is correct rounding
    }
    return static_cast<std::uint16_t>(sign | half_bits);
  }

  if (e >= -25) {  // subnormal half (or rounds up to the smallest normal)
    // Implicit leading 1 becomes explicit; shift right by the deficit.
    std::uint32_t mantissa = frac32 | 0x00800000u;
    const int shift = -e - 14 + 13;  // total right-shift to half's 10 bits
    std::uint32_t half_frac = mantissa >> shift;
    const std::uint32_t rem = mantissa & ((1u << shift) - 1u);
    const std::uint32_t halfway = 1u << (shift - 1);
    if (rem > halfway || (rem == halfway && (half_frac & 1u))) {
      ++half_frac;  // may round up to min normal — still correct
    }
    return static_cast<std::uint16_t>(sign | half_frac);
  }

  // Underflows to (signed) zero.
  return sign;
}

float half::to_float(std::uint16_t bits) noexcept {
  const std::uint32_t sign = static_cast<std::uint32_t>(bits & kSignMask16)
                             << 16;
  const std::uint32_t exp16 = (bits & kExpMask16) >> 10;
  std::uint32_t frac16 = bits & kFracMask16;

  std::uint32_t f;
  if (exp16 == 0x1F) {  // Inf / NaN
    f = sign | 0x7F800000u | (frac16 << 13);
  } else if (exp16 != 0) {  // normal
    f = sign | ((exp16 + 112u) << 23) | (frac16 << 13);
  } else if (frac16 != 0) {  // subnormal: normalize
    int e = -1;
    do {
      ++e;
      frac16 <<= 1;
    } while ((frac16 & 0x0400u) == 0);
    f = sign | ((113u - static_cast<std::uint32_t>(e) - 1u) << 23) |
        ((frac16 & kFracMask16) << 13);
  } else {  // zero
    f = sign;
  }
  return std::bit_cast<float>(f);
}

bool half::is_nan() const noexcept {
  return (bits_ & kExpMask16) == kExpMask16 && (bits_ & kFracMask16) != 0;
}

bool half::is_inf() const noexcept {
  return (bits_ & kExpMask16) == kExpMask16 && (bits_ & kFracMask16) == 0;
}

bool half::is_finite() const noexcept {
  return (bits_ & kExpMask16) != kExpMask16;
}

bool half::is_subnormal() const noexcept { return (bits_ & kExpMask16) == 0; }

half half::operator-() const noexcept {
  return from_bits(static_cast<std::uint16_t>(bits_ ^ kSignMask16));
}

bool operator==(half a, half b) noexcept {
  if (a.is_nan() || b.is_nan()) {
    return false;
  }
  // +0 == -0
  if (((a.bits_ | b.bits_) & ~kSignMask16) == 0) {
    return true;
  }
  return a.bits_ == b.bits_;
}

half operator+(half a, half b) noexcept {
  return half(static_cast<float>(a) + static_cast<float>(b));
}
half operator-(half a, half b) noexcept {
  return half(static_cast<float>(a) - static_cast<float>(b));
}
half operator*(half a, half b) noexcept {
  return half(static_cast<float>(a) * static_cast<float>(b));
}
half operator/(half a, half b) noexcept {
  return half(static_cast<float>(a) / static_cast<float>(b));
}

std::ostream& operator<<(std::ostream& os, half h) {
  return os << static_cast<float>(h);
}

}  // namespace cumf
