// Software IEEE-754 binary16 ("half precision").
//
// The paper stores the Hermitian matrices A_u in FP16 inside the CG solver to
// halve memory traffic (Solution 4, §IV-B). We have no GPU half-precision
// hardware, so this type reproduces the numerics in software: conversions use
// round-to-nearest-even, subnormals are handled exactly, and arithmetic is
// performed in float and rounded back — the same semantics as CUDA's __half
// when used as a storage format with float accumulation.
#pragma once

#include <cstdint>
#include <iosfwd>

namespace cumf {

class half {
 public:
  constexpr half() noexcept = default;

  /// Converts from float with round-to-nearest-even.
  explicit half(float value) noexcept : bits_(from_float(value)) {}

  /// Reinterprets raw binary16 bits.
  static constexpr half from_bits(std::uint16_t bits) noexcept {
    half h;
    h.bits_ = bits;
    return h;
  }

  std::uint16_t bits() const noexcept { return bits_; }

  /// Widening conversion; exact for every finite half.
  explicit operator float() const noexcept { return to_float(bits_); }

  bool is_nan() const noexcept;
  bool is_inf() const noexcept;
  bool is_finite() const noexcept;
  /// True for zero and subnormal values (exponent field == 0).
  bool is_subnormal() const noexcept;

  half operator-() const noexcept;

  friend bool operator==(half a, half b) noexcept;
  friend bool operator!=(half a, half b) noexcept { return !(a == b); }
  friend bool operator<(half a, half b) noexcept {
    return static_cast<float>(a) < static_cast<float>(b);
  }

  /// Largest finite half: 65504.
  static half max() noexcept { return from_bits(0x7BFF); }
  /// Smallest positive normal half: 2^-14.
  static half min_normal() noexcept { return from_bits(0x0400); }
  /// Smallest positive subnormal half: 2^-24.
  static half denorm_min() noexcept { return from_bits(0x0001); }
  /// Machine epsilon for half: 2^-10.
  static half epsilon() noexcept { return from_bits(0x1400); }
  static half infinity() noexcept { return from_bits(0x7C00); }
  static half quiet_nan() noexcept { return from_bits(0x7E00); }

  static std::uint16_t from_float(float value) noexcept;
  static float to_float(std::uint16_t bits) noexcept;

 private:
  std::uint16_t bits_ = 0;
};

// Arithmetic computes in float, then rounds the result back to half — the
// storage-precision model used throughout the CG solver.
half operator+(half a, half b) noexcept;
half operator-(half a, half b) noexcept;
half operator*(half a, half b) noexcept;
half operator/(half a, half b) noexcept;

std::ostream& operator<<(std::ostream& os, half h);

}  // namespace cumf
