#include "cusim/kernels.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace cumf::cusim {

namespace {
unsigned next_pow2(unsigned v) {
  unsigned p = 1;
  while (p < v) {
    p <<= 1;
  }
  return p;
}
}  // namespace

HermitianBatchResult hermitian_kernel_launch(const CsrMatrix& r,
                                             const Matrix& theta,
                                             real_t lambda, int tile,
                                             int bin) {
  const std::size_t f = theta.cols();
  CUMF_EXPECTS(tile > 0 && f % static_cast<std::size_t>(tile) == 0,
               "f must be a multiple of the tile size");
  CUMF_EXPECTS(bin > 0, "BIN must be positive");
  const auto t_sz = static_cast<std::size_t>(tile);
  const auto nt = static_cast<unsigned>(f / t_sz);
  const unsigned pairs = nt * (nt + 1) / 2;

  HermitianBatchResult out;
  out.a.assign(static_cast<std::size_t>(r.rows()) * f * f, real_t{0});
  out.b.assign(static_cast<std::size_t>(r.rows()) * f, real_t{0});

  // Shared memory: staged θ batch (BIN × f) then the bias accumulator (f).
  const std::size_t staged_floats = static_cast<std::size_t>(bin) * f;
  LaunchConfig config;
  config.grid = Dim3{r.rows(), 1, 1};
  config.block = Dim3{std::max(pairs, static_cast<unsigned>(f)), 1, 1};
  config.shared_bytes = (staged_floats + f) * sizeof(real_t);

  // The __global__ function: every thread of the block runs this coroutine.
  const Kernel kernel = [&](KernelCtx ctx) -> ThreadTask {
    const index_t u = ctx.blockIdx.x;
    const unsigned t = ctx.tid();
    const auto cols = r.row_cols(u);
    const auto vals = r.row_vals(u);
    auto staged = ctx.shared_array<real_t>(0, staged_floats);
    auto bias = ctx.shared_array<real_t>(staged_floats * sizeof(real_t), f);

    // Map thread → lower-triangular tile pair (x ≤ y), as in Fig. 2.
    unsigned tx = 0;
    unsigned ty = 0;
    if (t < pairs) {
      unsigned p = t;
      while (p > ty) {
        p -= ty + 1;
        ++ty;
      }
      tx = p;
    }
    // Register accumulator: one T×T sub-block of A_u per thread.
    std::vector<real_t> acc(t_sz * t_sz, real_t{0});

    const auto bin_sz = static_cast<std::size_t>(bin);
    for (std::size_t batch = 0; batch < cols.size() ||
                                (batch == 0 && cols.empty());
         batch += bin_sz) {
      if (cols.empty()) {
        break;  // uniform across the block: no thread ever syncs
      }
      const std::size_t len = std::min(bin_sz, cols.size() - batch);

      // Cooperative staging: threads stride over the batch's elements.
      for (std::size_t idx = t; idx < len * f; idx += ctx.blockDim.x) {
        const std::size_t s = idx / f;
        const std::size_t i = idx % f;
        staged[s * f + i] = theta(cols[batch + s], i);
      }
      co_await ctx.sync();  // staging complete before anyone reads

      // Tile accumulation in "registers" (threads beyond `pairs` idle).
      if (t < pairs) {
        for (std::size_t s = 0; s < len; ++s) {
          const real_t* frag_x = staged.data() + s * f + tx * t_sz;
          const real_t* frag_y = staged.data() + s * f + ty * t_sz;
          for (std::size_t i = 0; i < t_sz; ++i) {
            const real_t yi = frag_y[i];
            for (std::size_t j = 0; j < t_sz; ++j) {
              acc[i * t_sz + j] += yi * frag_x[j];
            }
          }
        }
      }
      // Bias accumulation: thread t owns components t, t+blockDim, … so
      // there are no shared-memory races.
      for (std::size_t i = t; i < f; i += ctx.blockDim.x) {
        real_t sum = 0;
        for (std::size_t s = 0; s < len; ++s) {
          sum += vals[batch + s] * staged[s * f + i];
        }
        bias[i] += sum;
      }
      co_await ctx.sync();  // all reads done before the next batch restages
    }

    // Flush: each thread writes its tile (and its mirror) to global memory.
    real_t* a_u = out.a.data() + static_cast<std::size_t>(u) * f * f;
    if (t < pairs && !cols.empty()) {
      for (std::size_t i = 0; i < t_sz; ++i) {
        for (std::size_t j = 0; j < t_sz; ++j) {
          const real_t v = acc[i * t_sz + j];
          a_u[(ty * t_sz + i) * f + (tx * t_sz + j)] = v;
          a_u[(tx * t_sz + j) * f + (ty * t_sz + i)] = v;
        }
      }
    }
    for (std::size_t i = t; i < f; i += ctx.blockDim.x) {
      out.b[static_cast<std::size_t>(u) * f + i] = bias[i];
      // λ·n_u ridge on the diagonal (eq. (2)); owner of component i also
      // owns diagonal element (i, i), so this does not race.
      if (!cols.empty()) {
        a_u[i * f + i] += lambda * static_cast<real_t>(cols.size());
      }
    }
    co_return;
  };

  launch(config, kernel);
  return out;
}

void cg_kernel_launch(std::size_t batch, std::size_t f,
                      std::span<const real_t> a, std::span<const real_t> b,
                      std::span<real_t> x, std::uint32_t fs, real_t eps) {
  CUMF_EXPECTS(a.size() == batch * f * f, "A batch shape mismatch");
  CUMF_EXPECTS(b.size() == batch * f && x.size() == batch * f,
               "vector batch shape mismatch");
  CUMF_EXPECTS(fs > 0, "need at least one CG iteration");

  // Shared layout: xs, rs, ps, aps, red — five f-float arrays.
  LaunchConfig config;
  config.grid = Dim3{static_cast<unsigned>(batch), 1, 1};
  config.block = Dim3{static_cast<unsigned>(f), 1, 1};
  config.shared_bytes = 5 * f * sizeof(real_t);

  const unsigned red_start = next_pow2(static_cast<unsigned>(f)) / 2;

  const Kernel kernel = [&, red_start](KernelCtx ctx) -> ThreadTask {
    const std::size_t sys = ctx.blockIdx.x;
    const unsigned t = ctx.tid();
    auto xs = ctx.shared_array<real_t>(0 * f * sizeof(real_t), f);
    auto rs = ctx.shared_array<real_t>(1 * f * sizeof(real_t), f);
    auto ps = ctx.shared_array<real_t>(2 * f * sizeof(real_t), f);
    auto aps = ctx.shared_array<real_t>(3 * f * sizeof(real_t), f);
    auto red = ctx.shared_array<real_t>(4 * f * sizeof(real_t), f);
    const real_t* A = a.data() + sys * f * f;

    xs[t] = x[sys * f + t];
    co_await ctx.sync();

    // r = b − A·x ; p = r        (Algorithm 1, line 2)
    {
      real_t acc = 0;
      for (std::size_t j = 0; j < f; ++j) {
        acc += A[t * f + j] * xs[j];
      }
      rs[t] = b[sys * f + t] - acc;
      ps[t] = rs[t];
      red[t] = rs[t] * rs[t];
    }
    co_await ctx.sync();
    // rsold = Σ red (tree reduction)
    for (unsigned s = red_start; s > 0; s >>= 1) {
      if (t < s && t + s < f) {
        red[t] += red[t + s];
      }
      co_await ctx.sync();
    }
    // Every thread reads the total, then a barrier protects red[] before it
    // is reused — the same fence real CUDA code needs here.
    real_t rsold = red[0];
    co_await ctx.sync();

    for (std::uint32_t iter = 0; iter < fs; ++iter) {
      if (std::sqrt(rsold) < eps) {
        break;  // uniform: rsold is a shared value
      }
      // ap = A·p                  (line 4)
      {
        real_t acc = 0;
        for (std::size_t j = 0; j < f; ++j) {
          acc += A[t * f + j] * ps[j];
        }
        aps[t] = acc;
        red[t] = ps[t] * acc;
      }
      co_await ctx.sync();
      for (unsigned s = red_start; s > 0; s >>= 1) {
        if (t < s && t + s < f) {
          red[t] += red[t + s];
        }
        co_await ctx.sync();
      }
      const real_t pap = red[0];
      co_await ctx.sync();  // reads of red[0] complete before red is reused
      if (pap <= 0) {
        break;  // uniform: loss of positive definiteness
      }
      const real_t alpha = rsold / pap;

      // x += α p ; r −= α ap      (line 5)
      xs[t] += alpha * ps[t];
      rs[t] -= alpha * aps[t];
      red[t] = rs[t] * rs[t];
      co_await ctx.sync();
      for (unsigned s = red_start; s > 0; s >>= 1) {
        if (t < s && t + s < f) {
          red[t] += red[t + s];
        }
        co_await ctx.sync();
      }
      const real_t rsnew = red[0];
      co_await ctx.sync();  // reads of red[0] complete before red is reused

      // p = r + (rsnew/rsold) p   (line 10)
      ps[t] = rs[t] + (rsnew / rsold) * ps[t];
      rsold = rsnew;
      co_await ctx.sync();  // ps complete before the next matvec
    }

    x[sys * f + t] = xs[t];
    co_return;
  };

  launch(config, kernel);
}

}  // namespace cumf::cusim
