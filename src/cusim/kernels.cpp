#include "cusim/kernels.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/spans.hpp"
#include "common/check.hpp"

namespace cumf::cusim {

namespace {

using analysis::global_span;
using analysis::shared_span;

unsigned next_pow2(unsigned v) {
  unsigned p = 1;
  while (p < v) {
    p <<= 1;
  }
  return p;
}

}  // namespace

HermitianBatchResult hermitian_kernel_launch(const CsrMatrix& r,
                                             const Matrix& theta,
                                             real_t lambda, int tile, int bin,
                                             AccessObserver* check) {
  const std::size_t f = theta.cols();
  CUMF_EXPECTS(tile > 0 && f % static_cast<std::size_t>(tile) == 0,
               "f must be a multiple of the tile size");
  CUMF_EXPECTS(bin > 0, "BIN must be positive");
  const auto t_sz = static_cast<std::size_t>(tile);
  const auto nt = static_cast<unsigned>(f / t_sz);
  const unsigned pairs = nt * (nt + 1) / 2;

  HermitianBatchResult out;
  out.a.assign(static_cast<std::size_t>(r.rows()) * f * f, real_t{0});
  out.b.assign(static_cast<std::size_t>(r.rows()) * f, real_t{0});

  // Shared memory: staged θ batch (BIN × f) then the bias accumulator (f).
  const std::size_t staged_floats = static_cast<std::size_t>(bin) * f;
  LaunchConfig config;
  config.grid = Dim3{r.rows(), 1, 1};
  config.block = Dim3{std::max(pairs, static_cast<unsigned>(f)), 1, 1};
  config.shared_bytes = (staged_floats + f) * sizeof(real_t);
  config.check = check;
  config.name = "get_hermitian_kernel";

  // The __global__ function: every thread of the block runs this coroutine.
  // Every shared/global access goes through cucheck spans: reads via
  // span(i), writes via span[i] — bounds-checked always, hazard-checked
  // when `check` is set.
  const Kernel kernel = [&](KernelCtx ctx) -> ThreadTask {
    const index_t u = ctx.blockIdx.x;
    const unsigned t = ctx.tid();
    const auto cols = global_span<const index_t>(ctx, r.row_cols(u), "cols");
    const auto vals = global_span<const real_t>(ctx, r.row_vals(u), "vals");
    const auto theta_g =
        global_span<const real_t>(ctx, theta.data(), "theta");
    const auto a_g = global_span<real_t>(ctx, std::span<real_t>(out.a), "A");
    const auto b_g = global_span<real_t>(ctx, std::span<real_t>(out.b), "b");
    auto staged = shared_span<real_t>(ctx, 0, staged_floats, "staged");
    auto bias =
        shared_span<real_t>(ctx, staged_floats * sizeof(real_t), f, "bias");

    // Map thread → lower-triangular tile pair (x ≤ y), as in Fig. 2.
    unsigned tx = 0;
    unsigned ty = 0;
    if (t < pairs) {
      unsigned p = t;
      while (p > ty) {
        p -= ty + 1;
        ++ty;
      }
      tx = p;
    }
    // Register accumulator: one T×T sub-block of A_u per thread.
    std::vector<real_t> acc(t_sz * t_sz, real_t{0});

    const auto bin_sz = static_cast<std::size_t>(bin);
    const std::size_t nnz = cols.size();
    for (std::size_t batch = 0;
         batch < nnz || (batch == 0 && nnz == 0); batch += bin_sz) {
      if (nnz == 0) {
        break;  // uniform across the block: no thread ever syncs
      }
      const std::size_t len = std::min(bin_sz, nnz - batch);

      // Cooperative staging: threads stride over the batch's elements.
      for (std::size_t idx = t; idx < len * f; idx += ctx.blockDim.x) {
        const std::size_t s = idx / f;
        const std::size_t i = idx % f;
        staged[s * f + i] =
            theta_g(static_cast<std::size_t>(cols(batch + s)) * f + i);
      }
      co_await ctx.sync();  // staging complete before anyone reads

      // Tile accumulation in "registers" (threads beyond `pairs` idle).
      if (t < pairs) {
        for (std::size_t s = 0; s < len; ++s) {
          const std::size_t frag_x = s * f + tx * t_sz;
          const std::size_t frag_y = s * f + ty * t_sz;
          for (std::size_t i = 0; i < t_sz; ++i) {
            const real_t yi = staged(frag_y + i);
            for (std::size_t j = 0; j < t_sz; ++j) {
              acc[i * t_sz + j] += yi * staged(frag_x + j);
            }
          }
        }
      }
      // Bias accumulation: thread t owns components t, t+blockDim, … so
      // there are no shared-memory races.
      for (std::size_t i = t; i < f; i += ctx.blockDim.x) {
        real_t sum = 0;
        for (std::size_t s = 0; s < len; ++s) {
          sum += vals(batch + s) * staged(s * f + i);
        }
        bias[i] += sum;
      }
      co_await ctx.sync();  // all reads done before the next batch restages
    }

    // Flush: each thread writes its tile (and its mirror) to global memory.
    const std::size_t a_base = static_cast<std::size_t>(u) * f * f;
    if (t < pairs && nnz != 0) {
      for (std::size_t i = 0; i < t_sz; ++i) {
        for (std::size_t j = 0; j < t_sz; ++j) {
          const real_t v = acc[i * t_sz + j];
          a_g[a_base + (ty * t_sz + i) * f + (tx * t_sz + j)] = v;
          a_g[a_base + (tx * t_sz + j) * f + (ty * t_sz + i)] = v;
        }
      }
    }
    for (std::size_t i = t; i < f; i += ctx.blockDim.x) {
      b_g[static_cast<std::size_t>(u) * f + i] = bias(i);
      // λ·n_u ridge on the diagonal (eq. (2)); owner of component i also
      // owns diagonal element (i, i), so this does not race.
      if (nnz != 0) {
        a_g[a_base + i * f + i] += lambda * static_cast<real_t>(nnz);
      }
    }
    co_return;
  };

  launch(config, kernel);
  return out;
}

void cg_kernel_launch(std::size_t batch, std::size_t f,
                      std::span<const real_t> a, std::span<const real_t> b,
                      std::span<real_t> x, std::uint32_t fs, real_t eps,
                      AccessObserver* check) {
  CUMF_EXPECTS(a.size() == batch * f * f, "A batch shape mismatch");
  CUMF_EXPECTS(b.size() == batch * f && x.size() == batch * f,
               "vector batch shape mismatch");
  CUMF_EXPECTS(fs > 0, "need at least one CG iteration");

  // Shared layout: xs, rs, ps, aps, red — five f-float arrays.
  LaunchConfig config;
  config.grid = Dim3{static_cast<unsigned>(batch), 1, 1};
  config.block = Dim3{static_cast<unsigned>(f), 1, 1};
  config.shared_bytes = 5 * f * sizeof(real_t);
  config.check = check;
  config.name = "cg_kernel";

  const unsigned red_start = next_pow2(static_cast<unsigned>(f)) / 2;

  const Kernel kernel = [&, red_start](KernelCtx ctx) -> ThreadTask {
    const std::size_t sys = ctx.blockIdx.x;
    const unsigned t = ctx.tid();
    auto xs = shared_span<real_t>(ctx, 0 * f * sizeof(real_t), f, "xs");
    auto rs = shared_span<real_t>(ctx, 1 * f * sizeof(real_t), f, "rs");
    auto ps = shared_span<real_t>(ctx, 2 * f * sizeof(real_t), f, "ps");
    auto aps = shared_span<real_t>(ctx, 3 * f * sizeof(real_t), f, "aps");
    auto red = shared_span<real_t>(ctx, 4 * f * sizeof(real_t), f, "red");
    const auto a_g = global_span<const real_t>(ctx, a, "A");
    const auto b_g = global_span<const real_t>(ctx, b, "b");
    const auto x_g = global_span<real_t>(ctx, x, "x");
    const std::size_t a_base = sys * f * f;

    xs[t] = x_g(sys * f + t);
    co_await ctx.sync();

    // r = b − A·x ; p = r        (Algorithm 1, line 2)
    {
      real_t acc = 0;
      for (std::size_t j = 0; j < f; ++j) {
        acc += a_g(a_base + t * f + j) * xs(j);
      }
      const real_t r0 = b_g(sys * f + t) - acc;
      rs[t] = r0;
      ps[t] = r0;
      red[t] = r0 * r0;
    }
    co_await ctx.sync();
    // rsold = Σ red (tree reduction)
    for (unsigned s = red_start; s > 0; s >>= 1) {
      if (t < s && t + s < f) {
        red[t] += red(t + s);
      }
      co_await ctx.sync();
    }
    // Every thread reads the total, then a barrier protects red[] before it
    // is reused — the same fence real CUDA code needs here.
    real_t rsold = red(0);
    co_await ctx.sync();

    for (std::uint32_t iter = 0; iter < fs; ++iter) {
      if (std::sqrt(rsold) < eps) {
        break;  // uniform: rsold is a shared value
      }
      // ap = A·p                  (line 4)
      {
        real_t acc = 0;
        for (std::size_t j = 0; j < f; ++j) {
          acc += a_g(a_base + t * f + j) * ps(j);
        }
        aps[t] = acc;
        red[t] = ps(t) * acc;
      }
      co_await ctx.sync();
      for (unsigned s = red_start; s > 0; s >>= 1) {
        if (t < s && t + s < f) {
          red[t] += red(t + s);
        }
        co_await ctx.sync();
      }
      const real_t pap = red(0);
      co_await ctx.sync();  // reads of red[0] complete before red is reused
      if (pap <= 0) {
        break;  // uniform: loss of positive definiteness
      }
      const real_t alpha = rsold / pap;

      // x += α p ; r −= α ap      (line 5)
      xs[t] += alpha * ps(t);
      rs[t] -= alpha * aps(t);
      const real_t rv = rs(t);
      red[t] = rv * rv;
      co_await ctx.sync();
      for (unsigned s = red_start; s > 0; s >>= 1) {
        if (t < s && t + s < f) {
          red[t] += red(t + s);
        }
        co_await ctx.sync();
      }
      const real_t rsnew = red(0);
      co_await ctx.sync();  // reads of red[0] complete before red is reused

      // p = r + (rsnew/rsold) p   (line 10)
      ps[t] = rs(t) + (rsnew / rsold) * ps(t);
      rsold = rsnew;
      co_await ctx.sync();  // ps complete before the next matvec
    }

    x_g[sys * f + t] = xs(t);
    co_return;
  };

  launch(config, kernel);
}

}  // namespace cumf::cusim
