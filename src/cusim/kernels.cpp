#include "cusim/kernels.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/spans.hpp"
#include "common/check.hpp"

namespace cumf::cusim {

namespace {

using analysis::global_span;
using analysis::shared_span;

unsigned next_pow2(unsigned v) {
  unsigned p = 1;
  while (p < v) {
    p <<= 1;
  }
  return p;
}

}  // namespace

HermitianBatchResult hermitian_kernel_launch(const CsrMatrix& r,
                                             const Matrix& theta,
                                             real_t lambda, int tile, int bin,
                                             AccessObserver* check) {
  const std::size_t f = theta.cols();
  CUMF_EXPECTS(tile > 0 && f % static_cast<std::size_t>(tile) == 0,
               "f must be a multiple of the tile size");
  CUMF_EXPECTS(bin > 0, "BIN must be positive");
  const auto t_sz = static_cast<std::size_t>(tile);
  const auto nt = static_cast<unsigned>(f / t_sz);
  const unsigned pairs = nt * (nt + 1) / 2;

  HermitianBatchResult out;
  out.a.assign(static_cast<std::size_t>(r.rows()) * f * f, real_t{0});
  out.b.assign(static_cast<std::size_t>(r.rows()) * f, real_t{0});

  // Shared memory: staged θ batch (BIN × f) then the bias accumulator (f).
  const std::size_t staged_floats = static_cast<std::size_t>(bin) * f;
  LaunchConfig config;
  config.grid = Dim3{r.rows(), 1, 1};
  config.block = Dim3{std::max(pairs, static_cast<unsigned>(f)), 1, 1};
  config.shared_bytes = (staged_floats + f) * sizeof(real_t);
  config.check = check;
  config.name = "get_hermitian_kernel";

  // The __global__ function: every thread of the block runs this coroutine.
  // Every shared/global access goes through cucheck spans: reads via
  // span(i), writes via span[i] — bounds-checked always, hazard-checked
  // when `check` is set.
  const Kernel kernel = [&](KernelCtx ctx) -> ThreadTask {
    const index_t u = ctx.blockIdx.x;
    const unsigned t = ctx.tid();
    const auto cols = global_span<const index_t>(ctx, r.row_cols(u), "cols");
    const auto vals = global_span<const real_t>(ctx, r.row_vals(u), "vals");
    const auto theta_g =
        global_span<const real_t>(ctx, theta.data(), "theta");
    const auto a_g = global_span<real_t>(ctx, std::span<real_t>(out.a), "A");
    const auto b_g = global_span<real_t>(ctx, std::span<real_t>(out.b), "b");
    auto staged = shared_span<real_t>(ctx, 0, staged_floats, "staged");
    auto bias =
        shared_span<real_t>(ctx, staged_floats * sizeof(real_t), f, "bias");

    // Map thread → lower-triangular tile pair (x ≤ y), as in Fig. 2.
    unsigned tx = 0;
    unsigned ty = 0;
    if (t < pairs) {
      unsigned p = t;
      while (p > ty) {
        p -= ty + 1;
        ++ty;
      }
      tx = p;
    }
    // Register accumulator: one T×T sub-block of A_u per thread.
    std::vector<real_t> acc(t_sz * t_sz, real_t{0});

    const auto bin_sz = static_cast<std::size_t>(bin);
    const std::size_t nnz = cols.size();
    for (std::size_t batch = 0;
         batch < nnz || (batch == 0 && nnz == 0); batch += bin_sz) {
      if (nnz == 0) {
        break;  // uniform across the block: no thread ever syncs
      }
      const std::size_t len = std::min(bin_sz, nnz - batch);

      // Cooperative staging: threads stride over the batch's elements.
      for (std::size_t idx = t; idx < len * f; idx += ctx.blockDim.x) {
        const std::size_t s = idx / f;
        const std::size_t i = idx % f;
        staged[s * f + i] =
            theta_g(static_cast<std::size_t>(cols(batch + s)) * f + i);
      }
      co_await ctx.sync();  // staging complete before anyone reads

      // Tile accumulation in "registers" (threads beyond `pairs` idle).
      if (t < pairs) {
        for (std::size_t s = 0; s < len; ++s) {
          const std::size_t frag_x = s * f + tx * t_sz;
          const std::size_t frag_y = s * f + ty * t_sz;
          for (std::size_t i = 0; i < t_sz; ++i) {
            const real_t yi = staged(frag_y + i);
            for (std::size_t j = 0; j < t_sz; ++j) {
              acc[i * t_sz + j] += yi * staged(frag_x + j);
            }
          }
        }
      }
      // Bias accumulation: thread t owns components t, t+blockDim, … so
      // there are no shared-memory races.
      for (std::size_t i = t; i < f; i += ctx.blockDim.x) {
        real_t sum = 0;
        for (std::size_t s = 0; s < len; ++s) {
          sum += vals(batch + s) * staged(s * f + i);
        }
        bias[i] += sum;
      }
      co_await ctx.sync();  // all reads done before the next batch restages
    }

    // Flush: each thread writes its tile (and its mirror) to global memory.
    const std::size_t a_base = static_cast<std::size_t>(u) * f * f;
    if (t < pairs && nnz != 0) {
      for (std::size_t i = 0; i < t_sz; ++i) {
        for (std::size_t j = 0; j < t_sz; ++j) {
          const real_t v = acc[i * t_sz + j];
          a_g[a_base + (ty * t_sz + i) * f + (tx * t_sz + j)] = v;
          a_g[a_base + (tx * t_sz + j) * f + (ty * t_sz + i)] = v;
        }
      }
    }
    for (std::size_t i = t; i < f; i += ctx.blockDim.x) {
      b_g[static_cast<std::size_t>(u) * f + i] = bias(i);
      // λ·n_u ridge on the diagonal (eq. (2)); owner of component i also
      // owns diagonal element (i, i), so this does not race.
      if (nnz != 0) {
        a_g[a_base + i * f + i] += lambda * static_cast<real_t>(nnz);
      }
    }
    co_return;
  };

  launch(config, kernel);
  return out;
}

void cg_kernel_launch(std::size_t batch, std::size_t f,
                      std::span<const real_t> a, std::span<const real_t> b,
                      std::span<real_t> x, std::uint32_t fs, real_t eps,
                      AccessObserver* check) {
  CUMF_EXPECTS(a.size() == batch * f * f, "A batch shape mismatch");
  CUMF_EXPECTS(b.size() == batch * f && x.size() == batch * f,
               "vector batch shape mismatch");
  CUMF_EXPECTS(fs > 0, "need at least one CG iteration");

  // Shared layout: xs, rs, ps, aps, red — five f-float arrays.
  LaunchConfig config;
  config.grid = Dim3{static_cast<unsigned>(batch), 1, 1};
  config.block = Dim3{static_cast<unsigned>(f), 1, 1};
  config.shared_bytes = 5 * f * sizeof(real_t);
  config.check = check;
  config.name = "cg_kernel";

  const unsigned red_start = next_pow2(static_cast<unsigned>(f)) / 2;

  const Kernel kernel = [&, red_start](KernelCtx ctx) -> ThreadTask {
    const std::size_t sys = ctx.blockIdx.x;
    const unsigned t = ctx.tid();
    auto xs = shared_span<real_t>(ctx, 0 * f * sizeof(real_t), f, "xs");
    auto rs = shared_span<real_t>(ctx, 1 * f * sizeof(real_t), f, "rs");
    auto ps = shared_span<real_t>(ctx, 2 * f * sizeof(real_t), f, "ps");
    auto aps = shared_span<real_t>(ctx, 3 * f * sizeof(real_t), f, "aps");
    auto red = shared_span<real_t>(ctx, 4 * f * sizeof(real_t), f, "red");
    const auto a_g = global_span<const real_t>(ctx, a, "A");
    const auto b_g = global_span<const real_t>(ctx, b, "b");
    const auto x_g = global_span<real_t>(ctx, x, "x");
    const std::size_t a_base = sys * f * f;

    xs[t] = x_g(sys * f + t);
    co_await ctx.sync();

    // r = b − A·x ; p = r        (Algorithm 1, line 2)
    {
      real_t acc = 0;
      for (std::size_t j = 0; j < f; ++j) {
        acc += a_g(a_base + t * f + j) * xs(j);
      }
      const real_t r0 = b_g(sys * f + t) - acc;
      rs[t] = r0;
      ps[t] = r0;
      red[t] = r0 * r0;
    }
    co_await ctx.sync();
    // rsold = Σ red (tree reduction)
    for (unsigned s = red_start; s > 0; s >>= 1) {
      if (t < s && t + s < f) {
        red[t] += red(t + s);
      }
      co_await ctx.sync();
    }
    // Every thread reads the total, then a barrier protects red[] before it
    // is reused — the same fence real CUDA code needs here.
    real_t rsold = red(0);
    co_await ctx.sync();

    for (std::uint32_t iter = 0; iter < fs; ++iter) {
      if (std::sqrt(rsold) < eps) {
        break;  // uniform: rsold is a shared value
      }
      // ap = A·p                  (line 4)
      {
        real_t acc = 0;
        for (std::size_t j = 0; j < f; ++j) {
          acc += a_g(a_base + t * f + j) * ps(j);
        }
        aps[t] = acc;
        red[t] = ps(t) * acc;
      }
      co_await ctx.sync();
      for (unsigned s = red_start; s > 0; s >>= 1) {
        if (t < s && t + s < f) {
          red[t] += red(t + s);
        }
        co_await ctx.sync();
      }
      const real_t pap = red(0);
      co_await ctx.sync();  // reads of red[0] complete before red is reused
      if (pap <= 0) {
        break;  // uniform: loss of positive definiteness
      }
      const real_t alpha = rsold / pap;

      // x += α p ; r −= α ap      (line 5)
      xs[t] += alpha * ps(t);
      rs[t] -= alpha * aps(t);
      const real_t rv = rs(t);
      red[t] = rv * rv;
      co_await ctx.sync();
      for (unsigned s = red_start; s > 0; s >>= 1) {
        if (t < s && t + s < f) {
          red[t] += red(t + s);
        }
        co_await ctx.sync();
      }
      const real_t rsnew = red(0);
      co_await ctx.sync();  // reads of red[0] complete before red is reused

      // p = r + (rsnew/rsold) p   (line 10)
      ps[t] = rs(t) + (rsnew / rsold) * ps(t);
      rsold = rsnew;
      co_await ctx.sync();  // ps complete before the next matvec
    }

    x_g[sys * f + t] = xs(t);
    co_return;
  };

  launch(config, kernel);
}

namespace {

namespace cv = analysis::cuverify;

/// Thread → lower-triangular tile pair, exactly as the kernel computes it.
void tile_pair(unsigned t, unsigned& tx, unsigned& ty) {
  unsigned p = t;
  ty = 0;
  while (p > ty) {
    p -= ty + 1;
    ++ty;
  }
  tx = p;
}

/// An access owned per-thread: element = base + tid (the `buf[t]` pattern).
cv::PlanAccess owned_access(std::uint32_t buffer, cusim::AccessKind kind,
                            std::uint32_t thread_end, const char* label) {
  cv::PlanAccess a;
  a.buffer = buffer;
  a.kind = kind;
  a.thread_end = thread_end;
  a.index.thread_coeff = 1;
  a.label = label;
  return a;
}

}  // namespace

cv::AccessPlan hermitian_kernel_plan(const HermitianPlanParams& params) {
  const std::size_t f = params.f;
  CUMF_EXPECTS(params.tile > 0 && f > 0 &&
                   f % static_cast<std::size_t>(params.tile) == 0,
               "f must be a multiple of the tile size");
  CUMF_EXPECTS(params.bin > 0, "BIN must be positive");
  const auto t_sz = static_cast<std::size_t>(params.tile);
  const auto nt = static_cast<unsigned>(f / t_sz);
  const unsigned pairs = nt * (nt + 1) / 2;
  const unsigned block = std::max(pairs, static_cast<unsigned>(f));
  const auto bin_sz = static_cast<std::size_t>(params.bin);
  const std::size_t nnz = params.cols.size();
  const std::size_t staged_floats = bin_sz * f;

  cv::AccessPlan plan;
  plan.kernel = "get_hermitian_kernel";
  plan.grid = Dim3{params.rows, 1, 1};
  plan.block = Dim3{block, 1, 1};
  plan.shared_bytes = (staged_floats + f) * sizeof(real_t);
  plan.regs_per_thread = params.regs_per_thread;

  enum Buf : std::uint32_t { kCols, kVals, kTheta, kA, kB, kStaged, kBias };
  const auto ff = static_cast<std::int64_t>(f);
  plan.buffers = {
      {"cols", MemSpace::Global, nnz, sizeof(index_t), 0x0800'0000ULL},
      {"vals", MemSpace::Global, nnz, sizeof(real_t), 0x0900'0000ULL},
      {"theta", MemSpace::Global, params.theta_rows * f, sizeof(real_t),
       0x1000'0000ULL},
      {"A", MemSpace::Global, static_cast<std::uint64_t>(params.rows) * f * f,
       sizeof(real_t), 0x2000'0000ULL},
      {"b", MemSpace::Global, static_cast<std::uint64_t>(params.rows) * f,
       sizeof(real_t), 0x3000'0000ULL},
      {"staged", MemSpace::Shared, staged_floats, sizeof(real_t), 0},
      {"bias", MemSpace::Shared, f, sizeof(real_t),
       staged_floats * sizeof(real_t)},
  };

  // The kernel's triangular thread map, host-side (flush/accumulate terms).
  std::vector<std::int64_t> frag_y(pairs);
  std::vector<std::int64_t> frag_x(pairs);
  std::vector<std::int64_t> tile_elem(pairs);
  std::vector<std::int64_t> mirror_elem(pairs);
  for (unsigned t = 0; t < pairs; ++t) {
    unsigned tx = 0;
    unsigned ty = 0;
    tile_pair(t, tx, ty);
    frag_y[t] = static_cast<std::int64_t>(ty * t_sz);
    frag_x[t] = static_cast<std::int64_t>(tx * t_sz);
    tile_elem[t] = static_cast<std::int64_t>(ty * t_sz) * ff + frag_x[t];
    mirror_elem[t] = static_cast<std::int64_t>(tx * t_sz) * ff + frag_y[t];
  }

  const auto fcount = static_cast<std::uint32_t>(f);
  for (std::size_t batch = 0; batch < nnz; batch += bin_sz) {
    const std::size_t len = std::min(bin_sz, nnz - batch);
    const std::size_t dom = len * f;  // strided staging domain: idx < len·f
    const auto trips = static_cast<std::uint32_t>((dom + block - 1) / block);

    // Staging segment: idx = t + k·blockDim strides over the batch, guarded
    // by idx < len·f; the non-affine idx/f, idx%f indirection becomes an
    // exact host-built gather over the composed value.
    cv::AffineForm stride;
    stride.thread_coeff = 1;
    stride.loop_coeffs = {static_cast<std::int64_t>(block)};

    cv::PlanSegment stage;
    cv::PlanAccess cols_rd;
    cols_rd.buffer = kCols;
    cols_rd.kind = cusim::AccessKind::Read;
    cols_rd.loops = {{trips, "k"}};
    cols_rd.index = stride;
    cols_rd.guard = stride;
    cols_rd.guard_bound = static_cast<std::int64_t>(dom);
    cols_rd.gather.resize(dom);
    cols_rd.label = "cols[batch+idx/f] (staging)";

    cv::PlanAccess theta_rd = cols_rd;
    theta_rd.buffer = kTheta;
    theta_rd.label = "theta[cols*f+idx%f] (staging)";
    for (std::size_t v = 0; v < dom; ++v) {
      const std::size_t s = v / f;
      cols_rd.gather[v] = static_cast<std::int64_t>(batch + s);
      theta_rd.gather[v] =
          static_cast<std::int64_t>(params.cols[batch + s]) * ff +
          static_cast<std::int64_t>(v % f);
    }

    cv::PlanAccess staged_wr;
    staged_wr.buffer = kStaged;
    staged_wr.kind = cusim::AccessKind::Write;
    staged_wr.loops = {{trips, "k"}};
    staged_wr.index = stride;
    staged_wr.guard = stride;
    staged_wr.guard_bound = static_cast<std::int64_t>(dom);
    staged_wr.label = "staged[idx] (staging)";

    stage.accesses = {cols_rd, theta_rd, staged_wr};
    plan.segments.push_back(std::move(stage));

    // Accumulate + bias segment (between the two __syncthreads()).
    cv::PlanSegment acc;
    const auto len32 = static_cast<std::uint32_t>(len);
    const auto tile32 = static_cast<std::uint32_t>(t_sz);

    cv::PlanAccess fy;
    fy.buffer = kStaged;
    fy.kind = cusim::AccessKind::Read;
    fy.thread_end = pairs;
    fy.loops = {{len32, "s"}, {tile32, "i"}};
    fy.index.thread_table = frag_y;
    fy.index.loop_coeffs = {ff, 1};
    fy.label = "staged[frag_y+i] (accumulate)";

    cv::PlanAccess fx = fy;
    fx.index.thread_table = frag_x;
    fx.loops = {{len32, "s"}, {tile32, "j"}};
    fx.label = "staged[frag_x+j] (accumulate)";

    cv::PlanAccess vals_rd;
    vals_rd.buffer = kVals;
    vals_rd.kind = cusim::AccessKind::Read;
    vals_rd.thread_end = fcount;
    vals_rd.loops = {{len32, "s"}};
    vals_rd.index.base = static_cast<std::int64_t>(batch);
    vals_rd.index.loop_coeffs = {1};
    vals_rd.label = "vals[batch+s] (bias)";

    cv::PlanAccess st_bias = vals_rd;
    st_bias.buffer = kStaged;
    st_bias.index.base = 0;
    st_bias.index.thread_coeff = 1;
    st_bias.index.loop_coeffs = {ff};
    st_bias.label = "staged[s*f+t] (bias)";

    // bias[t] += sum — a compound assignment: one read and one write event.
    cv::PlanAccess bias_rd =
        owned_access(kBias, cusim::AccessKind::Read, fcount, "bias[t] (bias)");
    cv::PlanAccess bias_wr = owned_access(kBias, cusim::AccessKind::Write,
                                          fcount, "bias[t] (bias)");

    acc.accesses = {fy, fx, vals_rd, st_bias, bias_rd, bias_wr};
    plan.segments.push_back(std::move(acc));
  }

  // Flush segment (final: ends at kernel exit, no barrier).
  cv::PlanSegment flush;
  if (nnz != 0) {
    const auto tile32 = static_cast<std::uint32_t>(t_sz);
    cv::PlanAccess tile_wr;
    tile_wr.buffer = kA;
    tile_wr.kind = cusim::AccessKind::Write;
    tile_wr.thread_end = pairs;
    tile_wr.loops = {{tile32, "i"}, {tile32, "j"}};
    tile_wr.index.block_coeff = ff * ff;
    tile_wr.index.thread_table = tile_elem;
    tile_wr.index.loop_coeffs = {ff, 1};
    tile_wr.label = "A[tile] (flush)";

    cv::PlanAccess mirror_wr = tile_wr;
    mirror_wr.index.thread_table = mirror_elem;
    mirror_wr.index.loop_coeffs = {1, ff};
    mirror_wr.label = "A[tile mirror] (flush)";
    flush.accesses.push_back(std::move(tile_wr));
    flush.accesses.push_back(std::move(mirror_wr));
  }
  cv::PlanAccess bias_out =
      owned_access(kBias, cusim::AccessKind::Read, fcount, "bias[t] (flush)");
  cv::PlanAccess b_wr =
      owned_access(kB, cusim::AccessKind::Write, fcount, "b[u*f+t] (flush)");
  b_wr.index.block_coeff = ff;
  flush.accesses.push_back(std::move(bias_out));
  flush.accesses.push_back(std::move(b_wr));
  if (nnz != 0) {
    // A[diag] += λ·nnz — compound: read + write on the diagonal element.
    for (const auto kind : {cusim::AccessKind::Read, cusim::AccessKind::Write}) {
      cv::PlanAccess diag =
          owned_access(kA, kind, fcount, "A[diag] += lambda*nnz (flush)");
      diag.index.block_coeff = ff * ff;
      diag.index.thread_coeff = ff + 1;
      flush.accesses.push_back(std::move(diag));
    }
  }
  plan.segments.push_back(std::move(flush));
  return plan;
}

cv::AccessPlan cg_kernel_plan(std::size_t batch, std::size_t f,
                              std::uint32_t fs, int regs_per_thread) {
  CUMF_EXPECTS(batch > 0 && f > 0, "empty CG batch");
  CUMF_EXPECTS(fs > 0, "need at least one CG iteration");

  cv::AccessPlan plan;
  plan.kernel = "cg_kernel";
  plan.grid = Dim3{static_cast<unsigned>(batch), 1, 1};
  plan.block = Dim3{static_cast<unsigned>(f), 1, 1};
  plan.shared_bytes = 5 * f * sizeof(real_t);
  plan.regs_per_thread = regs_per_thread;

  enum Buf : std::uint32_t { kA, kB, kX, kXs, kRs, kPs, kAps, kRed };
  const auto ff = static_cast<std::int64_t>(f);
  plan.buffers = {
      {"A", MemSpace::Global, batch * f * f, sizeof(real_t), 0x2000'0000ULL},
      {"b", MemSpace::Global, batch * f, sizeof(real_t), 0x3000'0000ULL},
      {"x", MemSpace::Global, batch * f, sizeof(real_t), 0x3800'0000ULL},
      {"xs", MemSpace::Shared, f, sizeof(real_t), 0 * f * sizeof(real_t)},
      {"rs", MemSpace::Shared, f, sizeof(real_t), 1 * f * sizeof(real_t)},
      {"ps", MemSpace::Shared, f, sizeof(real_t), 2 * f * sizeof(real_t)},
      {"aps", MemSpace::Shared, f, sizeof(real_t), 3 * f * sizeof(real_t)},
      {"red", MemSpace::Shared, f, sizeof(real_t), 4 * f * sizeof(real_t)},
  };

  const auto fcount = static_cast<std::uint32_t>(f);
  const unsigned red_start = next_pow2(static_cast<unsigned>(f)) / 2;

  // buf[j] for all j — the broadcast read every thread makes in a matvec.
  const auto bcast = [&](std::uint32_t buffer, const char* label) {
    cv::PlanAccess a;
    a.buffer = buffer;
    a.kind = cusim::AccessKind::Read;
    a.loops = {{fcount, "j"}};
    a.index.loop_coeffs = {1};
    a.label = label;
    return a;
  };
  // A[sys·f·f + t·f + j] — each thread reads its row of the system matrix.
  const auto a_row = [&](const char* label) {
    cv::PlanAccess a;
    a.buffer = kA;
    a.kind = cusim::AccessKind::Read;
    a.loops = {{fcount, "j"}};
    a.index.block_coeff = ff * ff;
    a.index.thread_coeff = ff;
    a.index.loop_coeffs = {1};
    a.label = label;
    return a;
  };
  // The tree-reduction ladder: one segment per halving step.
  const auto reduce_ladder = [&](const char* label) {
    for (unsigned s = red_start; s > 0; s >>= 1) {
      cv::PlanSegment seg;
      const auto active = static_cast<std::uint32_t>(
          std::min<unsigned>(s, static_cast<unsigned>(f) - s));
      if (active > 0) {
        cv::PlanAccess up;  // red(t+s)
        up.buffer = kRed;
        up.kind = cusim::AccessKind::Read;
        up.thread_end = active;
        up.index.base = static_cast<std::int64_t>(s);
        up.index.thread_coeff = 1;
        up.label = label;
        // red[t] += … — compound read + write on the owned slot.
        cv::PlanAccess down_rd =
            owned_access(kRed, cusim::AccessKind::Read, active, label);
        cv::PlanAccess down_wr =
            owned_access(kRed, cusim::AccessKind::Write, active, label);
        seg.accesses = {up, down_rd, down_wr};
      }
      plan.segments.push_back(std::move(seg));
    }
  };
  // Every thread reads the reduced total red[0], then a barrier fences it.
  const auto total_read = [&](const char* label) {
    cv::PlanSegment seg;
    cv::PlanAccess a;
    a.buffer = kRed;
    a.kind = cusim::AccessKind::Read;
    a.label = label;
    seg.accesses = {a};
    plan.segments.push_back(std::move(seg));
  };

  // Load: xs[t] = x[sys·f + t].
  {
    cv::PlanSegment seg;
    cv::PlanAccess x_rd =
        owned_access(kX, cusim::AccessKind::Read, fcount, "x[sys*f+t] (load)");
    x_rd.index.block_coeff = ff;
    seg.accesses = {x_rd, owned_access(kXs, cusim::AccessKind::Write, fcount,
                                       "xs[t] (load)")};
    plan.segments.push_back(std::move(seg));
  }
  // r = b − A·x ; p = r ; red = r².
  {
    cv::PlanSegment seg;
    cv::PlanAccess b_rd =
        owned_access(kB, cusim::AccessKind::Read, fcount, "b[sys*f+t] (init)");
    b_rd.index.block_coeff = ff;
    seg.accesses = {a_row("A[t*f+j] (init matvec)"),
                    bcast(kXs, "xs[j] (init matvec)"), b_rd,
                    owned_access(kRs, cusim::AccessKind::Write, fcount,
                                 "rs[t] (init)"),
                    owned_access(kPs, cusim::AccessKind::Write, fcount,
                                 "ps[t] (init)"),
                    owned_access(kRed, cusim::AccessKind::Write, fcount,
                                 "red[t] (init)")};
    plan.segments.push_back(std::move(seg));
  }
  reduce_ladder("red (rsold reduce)");
  total_read("red[0] (rsold)");

  for (std::uint32_t iter = 0; iter < fs; ++iter) {
    // ap = A·p ; red = p·ap.
    {
      cv::PlanSegment seg;
      seg.accesses = {a_row("A[t*f+j] (matvec)"),
                      bcast(kPs, "ps[j] (matvec)"),
                      owned_access(kPs, cusim::AccessKind::Read, fcount,
                                   "ps[t] (pAp)"),
                      owned_access(kAps, cusim::AccessKind::Write, fcount,
                                   "aps[t] (matvec)"),
                      owned_access(kRed, cusim::AccessKind::Write, fcount,
                                   "red[t] (pAp)")};
      plan.segments.push_back(std::move(seg));
    }
    reduce_ladder("red (pAp reduce)");
    total_read("red[0] (pAp)");
    // x += α p ; r −= α ap ; red = r².
    {
      cv::PlanSegment seg;
      seg.accesses = {
          owned_access(kPs, cusim::AccessKind::Read, fcount, "ps[t] (update)"),
          owned_access(kXs, cusim::AccessKind::Read, fcount, "xs[t] (update)"),
          owned_access(kXs, cusim::AccessKind::Write, fcount,
                       "xs[t] (update)"),
          owned_access(kAps, cusim::AccessKind::Read, fcount,
                       "aps[t] (update)"),
          owned_access(kRs, cusim::AccessKind::Read, fcount, "rs[t] (update)"),
          owned_access(kRs, cusim::AccessKind::Write, fcount,
                       "rs[t] (update)"),
          owned_access(kRed, cusim::AccessKind::Write, fcount,
                       "red[t] (update)")};
      plan.segments.push_back(std::move(seg));
    }
    reduce_ladder("red (rsnew reduce)");
    total_read("red[0] (rsnew)");
    // p = r + β p.
    {
      cv::PlanSegment seg;
      seg.accesses = {
          owned_access(kRs, cusim::AccessKind::Read, fcount, "rs[t] (p)"),
          owned_access(kPs, cusim::AccessKind::Read, fcount, "ps[t] (p)"),
          owned_access(kPs, cusim::AccessKind::Write, fcount, "ps[t] (p)")};
      plan.segments.push_back(std::move(seg));
    }
  }
  // Store: x[sys·f + t] = xs[t] (final segment, no barrier).
  {
    cv::PlanSegment seg;
    cv::PlanAccess x_wr = owned_access(kX, cusim::AccessKind::Write, fcount,
                                       "x[sys*f+t] (store)");
    x_wr.index.block_coeff = ff;
    seg.accesses = {owned_access(kXs, cusim::AccessKind::Read, fcount,
                                 "xs[t] (store)"),
                    x_wr};
    plan.segments.push_back(std::move(seg));
  }
  return plan;
}

}  // namespace cumf::cusim
