#include "cusim/cusim.hpp"

#include <atomic>
#include <sstream>

#include "prof/prof.hpp"

namespace cumf::cusim {

/// Internal accessor for KernelCtx's private shared-memory span.
class Launcher {
 public:
  static void set_shared(KernelCtx& ctx, std::span<std::byte> shared) {
    ctx.shared_ = shared;
  }
  static void set_check(KernelCtx& ctx, AccessObserver* check) {
    ctx.check_ = check;
  }
};

namespace {

/// Runs one block's threads cooperatively, barrier to barrier.
void run_block(const LaunchConfig& config, const Kernel& kernel,
               const Dim3& block_idx, std::span<std::byte> shared) {
  const unsigned threads = config.block.count();
  std::vector<ThreadTask> tasks;
  tasks.reserve(threads);
  for (unsigned z = 0; z < config.block.z; ++z) {
    for (unsigned y = 0; y < config.block.y; ++y) {
      for (unsigned x = 0; x < config.block.x; ++x) {
        KernelCtx ctx;
        ctx.gridDim = config.grid;
        ctx.blockDim = config.block;
        ctx.blockIdx = block_idx;
        ctx.threadIdx = Dim3{x, y, z};
        Launcher::set_shared(ctx, shared);
        Launcher::set_check(ctx, config.check);
        tasks.push_back(kernel(ctx));
      }
    }
  }

  // Drive all threads to the next barrier (or completion) repeatedly.
  // After each sweep every still-live thread must be parked at a barrier;
  // if some finished while others wait, the barrier can never be satisfied.
  if (config.check != nullptr) {
    config.check->on_block_begin(block_idx, threads);
  }
  for (;;) {
    unsigned alive = 0;
    unsigned parked = 0;
    for (ThreadTask& task : tasks) {
      if (task.done()) {
        continue;
      }
      task.resume();
      if (!task.done()) {
        ++alive;
        parked += task.at_barrier() ? 1u : 0u;
      }
    }
    if (alive == 0) {
      if (config.check != nullptr) {
        config.check->on_block_end(block_idx);
      }
      return;  // block retired
    }
    if (parked != alive || alive != threads) {
      std::ostringstream os;
      os << "barrier divergence in block (" << block_idx.x << ','
         << block_idx.y << ',' << block_idx.z << "): " << parked << " of "
         << threads << " threads reached __syncthreads(), "
         << (threads - parked) << " still pending";
      throw BarrierDivergence(os.str());
    }
    if (config.check != nullptr) {
      config.check->on_barrier(block_idx);
    }
  }
}

}  // namespace

namespace {
std::atomic<std::uint64_t> g_launch_count{0};
}  // namespace

std::uint64_t launch_count() noexcept {
  return g_launch_count.load(std::memory_order_relaxed);
}

void launch(const LaunchConfig& config, const Kernel& kernel) {
  g_launch_count.fetch_add(1, std::memory_order_relaxed);
  CUMF_PROF_SCOPE(config.name != nullptr ? config.name : "cusim_kernel",
                  "cusim");
  CUMF_EXPECTS(config.grid.count() > 0, "empty grid");
  CUMF_EXPECTS(config.block.count() > 0, "empty block");
  CUMF_EXPECTS(kernel != nullptr, "null kernel");

  std::vector<std::byte> shared(config.shared_bytes);
  for (unsigned z = 0; z < config.grid.z; ++z) {
    for (unsigned y = 0; y < config.grid.y; ++y) {
      for (unsigned x = 0; x < config.grid.x; ++x) {
        // Shared memory is per-block: reset between blocks so kernels can't
        // accidentally depend on residue from a previous block.
        std::fill(shared.begin(), shared.end(), std::byte{0});
        run_block(config, kernel, Dim3{x, y, z}, shared);
      }
    }
  }
}

}  // namespace cumf::cusim
