// cusim — a functional SIMT execution layer (CUDA-style kernels on the CPU).
//
// The paper's artifact is CUDA code; this machine has no GPU. gpusim models
// the *timing* of the kernels; cusim preserves their *shape*: kernels are
// written per-thread against gridDim/blockDim/blockIdx/threadIdx with
// __syncthreads() barriers and per-block shared memory, then executed
// functionally. Device threads are C++20 coroutines that suspend at
// barriers; the executor resumes every thread of a block between barriers,
// so shared-memory producer/consumer patterns behave exactly as on the GPU.
// Barrier divergence — some threads of a block reaching __syncthreads()
// while others exit — is undefined behaviour in CUDA; here it throws, which
// turns a silent GPU bug class into a test failure.
//
// The cuMF kernels (get_hermitian, batch-CG) are written on this layer in
// cusim/kernels.hpp and differential-tested against the direct host
// implementations in core/ and linalg/.
#pragma once

#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <span>
#include <vector>

#include "common/check.hpp"

namespace cumf::cusim {

/// CUDA dim3: sizes or coordinates of the launch hierarchy. Only .x is
/// commonly used in the cuMF kernels, but all three axes are supported.
struct Dim3 {
  unsigned x = 1;
  unsigned y = 1;
  unsigned z = 1;

  constexpr unsigned count() const noexcept { return x * y * z; }
  friend bool operator==(const Dim3&, const Dim3&) = default;
};

/// Awaitable barrier tag: `co_await ctx.sync();` ≡ __syncthreads().
struct Barrier {};

class KernelCtx;

/// Memory space of a checked access (cucheck instrumentation).
enum class MemSpace { Shared, Global };

/// Direction of a checked access.
enum class AccessKind { Read, Write };

/// Extension point for dynamic-analysis tools (src/analysis). The executor
/// reports block lifecycle and satisfied barriers; the checked span wrappers
/// (analysis/spans.hpp) report every individual read and write with the
/// accessing thread's coordinates. Observers are only consulted when
/// LaunchConfig::check is set, so unchecked launches pay nothing.
class AccessObserver {
 public:
  virtual ~AccessObserver() = default;

  /// A block is about to start executing (shared memory freshly zeroed).
  virtual void on_block_begin(const Dim3& block_idx, unsigned threads) = 0;
  /// Every live thread of the block reached __syncthreads(); the barrier is
  /// satisfied and a new synchronization epoch begins.
  virtual void on_barrier(const Dim3& block_idx) = 0;
  /// All threads of the block retired.
  virtual void on_block_end(const Dim3& block_idx) = 0;
  /// One thread touched `size` bytes at `address` (a shared-memory byte
  /// offset or a global virtual address, per `space`). `tag` names the
  /// buffer in kernel source terms.
  virtual void on_access(MemSpace space, AccessKind kind, const KernelCtx& ctx,
                         std::uint64_t address, std::uint32_t size,
                         const char* tag) = 0;
};

/// One device thread, as a coroutine. Threads start suspended; the executor
/// drives them barrier-to-barrier.
class ThreadTask {
 public:
  struct promise_type {
    ThreadTask get_return_object() {
      return ThreadTask(
          std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() { exception = std::current_exception(); }
    /// Every co_await of a Barrier suspends and flags the barrier.
    std::suspend_always await_transform(Barrier) noexcept {
      at_barrier = true;
      return {};
    }

    bool at_barrier = false;
    std::exception_ptr exception;
  };

  ThreadTask() = default;
  explicit ThreadTask(std::coroutine_handle<promise_type> handle)
      : handle_(handle) {}
  ThreadTask(ThreadTask&& other) noexcept : handle_(other.handle_) {
    other.handle_ = nullptr;
  }
  ThreadTask& operator=(ThreadTask&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = other.handle_;
      other.handle_ = nullptr;
    }
    return *this;
  }
  ThreadTask(const ThreadTask&) = delete;
  ThreadTask& operator=(const ThreadTask&) = delete;
  ~ThreadTask() { destroy(); }

  bool done() const { return !handle_ || handle_.done(); }
  bool at_barrier() const { return handle_ && handle_.promise().at_barrier; }

  /// Runs the thread until it finishes or reaches the next barrier.
  void resume() {
    CUMF_EXPECTS(handle_ && !handle_.done(), "resuming a finished thread");
    handle_.promise().at_barrier = false;
    handle_.resume();
    if (handle_.promise().exception) {
      std::rethrow_exception(handle_.promise().exception);
    }
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }
  std::coroutine_handle<promise_type> handle_;
};

/// Thrown when threads of one block disagree about the next barrier —
/// CUDA's undefined behaviour, surfaced as a hard error.
class BarrierDivergence : public std::logic_error {
 public:
  explicit BarrierDivergence(const std::string& what)
      : std::logic_error(what) {}
};

/// Per-thread execution context handed to the kernel.
class KernelCtx {
 public:
  Dim3 gridDim;
  Dim3 blockDim;
  Dim3 blockIdx;
  Dim3 threadIdx;

  /// __syncthreads(): `co_await ctx.sync();`
  Barrier sync() const noexcept { return {}; }

  /// Linear thread id within the block (the CUDA lane/warp arithmetic the
  /// cuMF kernels use).
  unsigned tid() const noexcept {
    return threadIdx.x + blockDim.x * (threadIdx.y + blockDim.y * threadIdx.z);
  }

  /// View into the block's shared memory, typed. `offset_bytes` must be
  /// aligned for T.
  template <typename T>
  std::span<T> shared_array(std::size_t offset_bytes,
                            std::size_t count) const {
    CUMF_EXPECTS(offset_bytes % alignof(T) == 0,
                 "misaligned shared-memory view");
    CUMF_EXPECTS(offset_bytes + count * sizeof(T) <= shared_.size(),
                 "shared-memory view exceeds the block allocation");
    return {reinterpret_cast<T*>(shared_.data() + offset_bytes), count};
  }

  std::size_t shared_bytes() const noexcept { return shared_.size(); }

  /// The launch's observer, or nullptr when checking is off.
  AccessObserver* check() const noexcept { return check_; }

 private:
  friend class Launcher;
  std::span<std::byte> shared_;
  AccessObserver* check_ = nullptr;
};

/// A kernel is a per-thread coroutine factory (the __global__ function).
using Kernel = std::function<ThreadTask(KernelCtx)>;

struct LaunchConfig {
  Dim3 grid;
  Dim3 block;
  std::size_t shared_bytes = 0;  ///< dynamic shared memory per block
  /// Opt-in dynamic analysis: when set, the executor reports barriers and
  /// block lifecycle, and checked spans report accesses. The fast path
  /// (nullptr) is untouched.
  AccessObserver* check = nullptr;
  /// Kernel name for the cuprof trace (must outlive the launch; string
  /// literals are the expected use). nullptr traces as "cusim_kernel".
  const char* name = nullptr;
};

/// Executes `kernel` over the whole grid. Blocks run sequentially (their
/// order is unobservable to a correct kernel, as on the device); threads of
/// a block run cooperatively between barriers. Throws BarrierDivergence on
/// mismatched __syncthreads(), and propagates kernel exceptions.
void launch(const LaunchConfig& config, const Kernel& kernel);

/// Process-wide count of launch() invocations. The static-analysis layer
/// (analysis/cuverify) promises zero kernel execution; its tests snapshot
/// this counter around a full audit and assert it never moved.
std::uint64_t launch_count() noexcept;

}  // namespace cumf::cusim
