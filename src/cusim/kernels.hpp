// The paper's device kernels, written CUDA-style on the cusim SIMT layer.
//
// These are the shapes a CUDA port would take — one block per rating row
// for get_hermitian (Fig. 2), one block per linear system for the batch CG
// solver (Algorithm 1) with shared-memory tree reductions — executed
// functionally. They are differential-tested against the direct host
// implementations (core/hermitian, linalg/cg); being ~10x slower than the
// direct loops, they serve as executable documentation and validation, not
// as the training path.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/cuverify/plan.hpp"
#include "cusim/cusim.hpp"
#include "linalg/dense.hpp"
#include "sparse/csr.hpp"

namespace cumf::cusim {

struct HermitianBatchResult {
  std::vector<real_t> a;  ///< m × f·f, row-major per system
  std::vector<real_t> b;  ///< m × f
};

/// get_hermitian over every row of `r`: one block per row, one thread per
/// lower-triangular tile pair, θ batches staged through shared memory with
/// __syncthreads() between staging and accumulation (the Fig. 2 kernel).
/// All memory traffic goes through cucheck's checked spans; pass `check`
/// (see analysis/cucheck.hpp) to run the launch under race/memcheck.
HermitianBatchResult hermitian_kernel_launch(const CsrMatrix& r,
                                             const Matrix& theta,
                                             real_t lambda, int tile,
                                             int bin,
                                             AccessObserver* check = nullptr);

/// Batch CG (Algorithm 1): one block per system, one thread per row of A,
/// dot products via shared-memory tree reduction. A is f×f per system
/// (batch-contiguous); x carries warm starts and receives solutions.
/// `check` as above.
void cg_kernel_launch(std::size_t batch, std::size_t f,
                      std::span<const real_t> a, std::span<const real_t> b,
                      std::span<real_t> x, std::uint32_t fs, real_t eps,
                      AccessObserver* check = nullptr);

/// Inputs for the hermitian kernel's symbolic access plan. The plan models
/// the launch for a *representative* row — normally the worst-case (max-nnz)
/// row of the dataset, whose column ids drive the exact θ gather — while the
/// grid covers all `rows` blocks (global A/b indices stay affine in the
/// block id, so bounds close over every block without enumeration).
struct HermitianPlanParams {
  unsigned rows = 1;            ///< grid extent (rating rows / blocks)
  std::size_t theta_rows = 0;   ///< θ row count (gather targets live in it)
  std::size_t f = 0;
  int tile = 1;
  int bin = 1;
  std::vector<index_t> cols;    ///< representative row's CSR column ids
  int regs_per_thread = 32;     ///< occupancy input (gpusim register model)
};

/// The declared AccessPlan of hermitian_kernel_launch: same geometry, same
/// buffers, one plan segment per barrier-delimited phase of the kernel
/// above. cuverify's static passes consume this — never the kernel itself.
analysis::cuverify::AccessPlan hermitian_kernel_plan(
    const HermitianPlanParams& params);

/// The declared AccessPlan of cg_kernel_launch for `fs` iterations (the
/// static plan models the full iteration budget; the dynamic early exit on
/// convergence only shrinks the executed suffix, so the plan's access set is
/// a superset of any run's).
analysis::cuverify::AccessPlan cg_kernel_plan(std::size_t batch,
                                              std::size_t f, std::uint32_t fs,
                                              int regs_per_thread = 32);

}  // namespace cumf::cusim
