// The paper's device kernels, written CUDA-style on the cusim SIMT layer.
//
// These are the shapes a CUDA port would take — one block per rating row
// for get_hermitian (Fig. 2), one block per linear system for the batch CG
// solver (Algorithm 1) with shared-memory tree reductions — executed
// functionally. They are differential-tested against the direct host
// implementations (core/hermitian, linalg/cg); being ~10x slower than the
// direct loops, they serve as executable documentation and validation, not
// as the training path.
#pragma once

#include <vector>

#include "cusim/cusim.hpp"
#include "linalg/dense.hpp"
#include "sparse/csr.hpp"

namespace cumf::cusim {

struct HermitianBatchResult {
  std::vector<real_t> a;  ///< m × f·f, row-major per system
  std::vector<real_t> b;  ///< m × f
};

/// get_hermitian over every row of `r`: one block per row, one thread per
/// lower-triangular tile pair, θ batches staged through shared memory with
/// __syncthreads() between staging and accumulation (the Fig. 2 kernel).
/// All memory traffic goes through cucheck's checked spans; pass `check`
/// (see analysis/cucheck.hpp) to run the launch under race/memcheck.
HermitianBatchResult hermitian_kernel_launch(const CsrMatrix& r,
                                             const Matrix& theta,
                                             real_t lambda, int tile,
                                             int bin,
                                             AccessObserver* check = nullptr);

/// Batch CG (Algorithm 1): one block per system, one thread per row of A,
/// dot products via shared-memory tree reduction. A is f×f per system
/// (batch-contiguous); x carries warm starts and receives solutions.
/// `check` as above.
void cg_kernel_launch(std::size_t batch, std::size_t f,
                      std::span<const real_t> a, std::span<const real_t> b,
                      std::span<real_t> x, std::uint32_t fs, real_t eps,
                      AccessObserver* check = nullptr);

}  // namespace cumf::cusim
