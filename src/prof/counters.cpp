#include "prof/counters.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace cumf::prof {

std::uint64_t Histogram::bucket_key(double value) noexcept {
  if (!(value > 0.0)) {
    return 0;
  }
  const auto v = static_cast<std::uint64_t>(std::llround(value));
  if (v <= 128) {
    return v;
  }
  // Next power of two at or above v: coarse tail buckets keep the map small
  // for wide-range values (bytes, nnz) while staying merge-stable.
  std::uint64_t p = 256;
  while (p < v) {
    p <<= 1;
  }
  return p;
}

void Histogram::observe(double value) noexcept {
  ++count_;
  sum_ += value;
  ++buckets_[bucket_key(value)];
}

double Histogram::percentile(double q) const noexcept {
  if (count_ == 0) {
    return 0.0;
  }
  q = std::min(1.0, std::max(0.0, q));
  const double exact_rank = q * static_cast<double>(count_);
  auto rank = static_cast<std::uint64_t>(std::ceil(exact_rank));
  rank = std::max<std::uint64_t>(rank, 1);
  std::uint64_t cumulative = 0;
  for (const auto& [key, n] : buckets_) {
    cumulative += n;
    if (cumulative >= rank) {
      return static_cast<double>(key);
    }
  }
  // Unreachable while the count/bucket invariant holds; keep the compiler
  // and a torn snapshot honest.
  return static_cast<double>(buckets_.rbegin()->first);
}

void Histogram::merge(const Histogram& other) {
  count_ += other.count_;
  sum_ += other.sum_;
  for (const auto& [key, n] : other.buckets_) {
    buckets_[key] += n;
  }
}

void CounterRegistry::add(const std::string& name, double delta) {
  counters_[name] += delta;
}

void CounterRegistry::observe(const std::string& name, double value) {
  histograms_[name].observe(value);
}

double CounterRegistry::value(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0.0 : it->second;
}

const Histogram* CounterRegistry::histogram(const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void CounterRegistry::merge(const CounterRegistry& other) {
  for (const auto& [name, v] : other.counters_) {
    counters_[name] += v;
  }
  for (const auto& [name, h] : other.histograms_) {
    histograms_[name].merge(h);
  }
}

void CounterRegistry::clear() {
  counters_.clear();
  histograms_.clear();
}

namespace {
void append_number(std::string& out, double v) {
  char buf[40];
  if (std::isfinite(v)) {
    std::snprintf(buf, sizeof buf, "%.12g", v);
    out += buf;
  } else {
    out += "null";
  }
}
}  // namespace

std::string CounterRegistry::to_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters_) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += '"';
    out += name;
    out += "\":";
    append_number(out, v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += '"';
    out += name;
    out += "\":{\"count\":";
    out += std::to_string(h.count());
    out += ",\"sum\":";
    append_number(out, h.sum());
    out += ",\"mean\":";
    append_number(out, h.mean());
    out += ",\"buckets\":{";
    bool first_bucket = true;
    for (const auto& [key, n] : h.buckets()) {
      if (!first_bucket) {
        out += ',';
      }
      first_bucket = false;
      out += '"';
      out += std::to_string(key);
      out += "\":";
      out += std::to_string(n);
    }
    out += "}}";
  }
  out += "}}";
  return out;
}

}  // namespace cumf::prof
