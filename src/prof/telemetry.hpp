// cuprof epoch telemetry: a JSONL stream, one self-describing JSON object
// per line.
//
// Line 1 is a header record ({"type":"header","schema":1,...}) describing
// the run (dataset shape, solver, seed, device model); every following line
// is an epoch record with RMSE, measured phase seconds, the CG iteration
// histogram, FP16 pack volume, and the gpusim cache-model numbers
// (simulated L1/L2 hit rate, DRAM bytes). tools/trace_report.py validates
// and summarizes the schema; docs/observability.md documents it.
#pragma once

#include <cstdint>
#include <cstdio>
#include <span>
#include <string>

namespace cumf::prof {

/// Minimal incremental JSON object builder (the repo carries no JSON
/// dependency). Values are rendered immediately; nested objects compose via
/// set_raw(child.str()).
class JsonObject {
 public:
  JsonObject& set(const std::string& key, double value);
  JsonObject& set(const std::string& key, std::int64_t value);
  JsonObject& set(const std::string& key, std::uint64_t value);
  JsonObject& set(const std::string& key, int value) {
    return set(key, static_cast<std::int64_t>(value));
  }
  JsonObject& set(const std::string& key, const std::string& value);
  JsonObject& set(const std::string& key, const char* value) {
    return set(key, std::string(value));
  }
  JsonObject& set(const std::string& key, bool value);
  JsonObject& set_null(const std::string& key);
  /// Numeric array (non-finite entries become null, like scalar set()).
  /// The multi-GPU telemetry uses this for per-device compute seconds.
  JsonObject& set_array(const std::string& key,
                        std::span<const double> values);
  /// Inserts pre-rendered JSON (an object, array, or number) verbatim.
  JsonObject& set_raw(const std::string& key, const std::string& json);

  std::string str() const { return "{" + body_ + "}"; }
  bool empty() const noexcept { return body_.empty(); }

 private:
  void key(const std::string& k);
  std::string body_;
};

/// Appends one JSON object per line to a file, flushing after every line so
/// a crashed or interrupted run still leaves a readable prefix.
class TelemetryWriter {
 public:
  TelemetryWriter() = default;
  ~TelemetryWriter();

  TelemetryWriter(const TelemetryWriter&) = delete;
  TelemetryWriter& operator=(const TelemetryWriter&) = delete;

  bool open(const std::string& path);
  bool is_open() const noexcept { return file_ != nullptr; }
  void write(const JsonObject& record);
  void close();

  std::size_t lines_written() const noexcept { return lines_; }

 private:
  std::FILE* file_ = nullptr;
  std::size_t lines_ = 0;
};

}  // namespace cumf::prof
