// cuprof — a profiler-grade span tracer for the simulated-GPU MF engine.
//
// The paper's whole argument is made through measurement (Fig. 4's
// load/compute/write split, Fig. 5's solver breakdown, Fig. 7's achieved
// FLOPS/bandwidth); cuprof makes every training run produce the same kind of
// evidence. Design, in the nvprof/rocprof tradition:
//
//   * per-thread fixed-capacity ring buffers — recording a span is a couple
//     of steady-clock reads and one in-cache array store, no locks, no
//     allocation on the hot path (the only lock is taken once per thread, at
//     buffer registration);
//   * RAII scopes (`CUMF_PROF_SCOPE("solve")`) guarantee strictly nested
//     begin/end pairs per thread, so exports always form a valid timeline;
//   * a Chrome trace-event JSON exporter: load the file in chrome://tracing
//     or https://ui.perfetto.dev and a training run renders as per-worker
//     get_hermitian / solve / staging / RMSE-eval tracks, with flow arrows
//     from each ThreadPool submit site to the task that ran it.
//
// Overhead control is layered: the `CUMF_PROF` CMake option compiles the
// macros to nothing (`CUMF_PROF_ENABLED` undefined — the null-tracer build
// the perf-smoke gate runs); with macros compiled in, a disabled tracer
// costs one relaxed atomic load per scope.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/stopwatch.hpp"

namespace cumf::prof {

/// Monotonic nanoseconds on the process-wide epoch shared with Stopwatch.
inline std::uint64_t now_ns() noexcept { return Stopwatch::now_ns(); }

enum class EventKind : std::uint8_t {
  kSpan,       ///< complete slice: [start_ns, start_ns + dur_ns)
  kCounter,    ///< sampled value at start_ns
  kFlowBegin,  ///< submit site of a cross-thread edge (id = flow id)
  kFlowEnd,    ///< execution site of the same edge
};

/// One fixed-size trace record. `name`/`category` must point at
/// static-lifetime strings (string literals, or Tracer::intern for runtime
/// names) so recording never copies.
struct Event {
  EventKind kind = EventKind::kSpan;
  const char* name = "";
  const char* category = "";
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint64_t id = 0;      ///< span id / flow id
  std::uint64_t parent = 0;  ///< enclosing span id at record time (0 = root)
  double value = 0.0;        ///< counter payload
};

/// Single-writer ring of events. Only the owning thread pushes; readers
/// (export/summary) run after the traced work has quiesced — the
/// happens-before edge is whatever joined the work (ThreadPool::wait_idle,
/// thread join), which is exactly when a trace is coherent anyway.
class ThreadBuffer {
 public:
  ThreadBuffer(std::uint32_t tid, std::size_t capacity);

  void push(const Event& e) noexcept {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    ring_[h & mask_] = e;
    head_.store(h + 1, std::memory_order_release);
  }

  std::uint32_t tid() const noexcept { return tid_; }
  const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  std::size_t capacity() const noexcept { return ring_.size(); }
  std::uint64_t pushed() const noexcept {
    return head_.load(std::memory_order_acquire);
  }
  /// Events dropped because the ring wrapped (oldest-first eviction).
  std::uint64_t dropped() const noexcept {
    const std::uint64_t n = pushed();
    return n > ring_.size() ? n - ring_.size() : 0;
  }
  /// Copies the retained events, oldest first.
  std::vector<Event> snapshot() const;

  void clear() noexcept { head_.store(0, std::memory_order_release); }

 private:
  std::uint32_t tid_;
  std::string name_;
  std::vector<Event> ring_;
  std::uint64_t mask_;
  std::atomic<std::uint64_t> head_{0};
};

/// Aggregated per-name statistics over the retained spans (the
/// `--prof-summary` table).
struct SpanStat {
  std::string name;
  std::uint64_t count = 0;
  double total_ms = 0.0;
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double max_us = 0.0;
};

class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 15;

  static Tracer& instance();

  /// Starts recording. `ring_capacity` (rounded up to a power of two) is
  /// fixed at the first enable; later calls reuse the existing buffers.
  /// Also installs the ThreadPool observer so task spans and submit→run
  /// flow arrows are recorded.
  void enable(std::size_t ring_capacity = kDefaultCapacity);
  void disable();

  static bool enabled() noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Drops every recorded event (buffers and thread registrations remain).
  void reset();

  std::uint64_t new_id() noexcept {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// The calling thread's buffer; registers it on first use.
  ThreadBuffer& local();

  /// Names the calling thread's track in the exported trace.
  void set_thread_name(const std::string& name);

  /// Copies a runtime string into tracer-owned storage and returns a
  /// pointer valid for the tracer's lifetime (for Event::name).
  const char* intern(const std::string& s);

  /// Records a counter sample ("ph":"C" in the export) on this thread.
  void counter(const char* name, double value) noexcept;

  /// Records a complete span from explicit timestamps (for callers that
  /// already measured, e.g. the ALS row loop aggregating phase time).
  void complete_span(const char* name, const char* category,
                     std::uint64_t start_ns, std::uint64_t end_ns) noexcept;

  /// Chrome trace-event JSON of everything retained, loadable in
  /// chrome://tracing / Perfetto.
  std::string chrome_trace_json() const;
  bool write_chrome_trace(const std::string& path) const;

  /// Per-name duration statistics, sorted by total time descending.
  std::vector<SpanStat> summarize() const;

  std::uint64_t total_dropped() const;

 private:
  Tracer() = default;

  static std::atomic<bool> enabled_;
  std::atomic<std::uint64_t> next_id_{1};
  mutable std::mutex mutex_;  ///< registration, interning, export
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::vector<std::unique_ptr<std::string>> interned_;
  std::size_t capacity_ = 0;
};

/// Id of the innermost open span on this thread (0 when outside any span).
std::uint64_t current_span() noexcept;

/// Pushes/pops the thread-local span stack around externally managed spans
/// (the ThreadPool task bracket). Regular code should use ScopedSpan.
void push_span(std::uint64_t id) noexcept;
void pop_span() noexcept;

/// RAII span. Construction snapshots the clock and claims an id; the
/// destructor records one complete event. When the tracer is disabled the
/// constructor is a single relaxed load.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name,
                      const char* category = "cumf") noexcept
      : name_(name), category_(category), active_(Tracer::enabled()) {
    if (!active_) {
      return;
    }
    Tracer& t = Tracer::instance();
    id_ = t.new_id();
    parent_ = current_span();
    push_span(id_);
    start_ns_ = now_ns();
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    if (!active_) {
      return;
    }
    const std::uint64_t end = now_ns();
    pop_span();
    Event e;
    e.kind = EventKind::kSpan;
    e.name = name_;
    e.category = category_;
    e.start_ns = start_ns_;
    e.dur_ns = end - start_ns_;
    e.id = id_;
    e.parent = parent_;
    Tracer::instance().local().push(e);
  }

 private:
  const char* name_;
  const char* category_;
  std::uint64_t start_ns_ = 0;
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  bool active_;
};

}  // namespace cumf::prof

// --- Instrumentation macros ----------------------------------------------
// Compiled in only under the CUMF_PROF CMake option (CUMF_PROF_ENABLED); a
// translation unit can additionally force the null expansion by defining
// CUMF_PROF_FORCE_OFF before including this header (the no-op compile test
// uses this). Only the macros vary per TU — the class definitions above are
// identical everywhere, so mixing instrumented and null TUs is ODR-safe.
#if defined(CUMF_PROF_ENABLED) && !defined(CUMF_PROF_FORCE_OFF)

#define CUMF_PROF_CONCAT_IMPL(a, b) a##b
#define CUMF_PROF_CONCAT(a, b) CUMF_PROF_CONCAT_IMPL(a, b)

/// CUMF_PROF_SCOPE("name") or CUMF_PROF_SCOPE("name", "category").
#define CUMF_PROF_SCOPE(...)                                     \
  ::cumf::prof::ScopedSpan CUMF_PROF_CONCAT(cumf_prof_scope_,    \
                                            __COUNTER__) {       \
    __VA_ARGS__                                                  \
  }

/// Records a counter sample when tracing is on.
#define CUMF_PROF_COUNTER(name, value)                           \
  do {                                                           \
    if (::cumf::prof::Tracer::enabled()) {                       \
      ::cumf::prof::Tracer::instance().counter((name), (value)); \
    }                                                            \
  } while (false)

#else  // null expansion: zero code, zero data

#define CUMF_PROF_SCOPE(...) \
  do {                       \
  } while (false)
#define CUMF_PROF_COUNTER(name, value) \
  do {                                 \
    (void)sizeof(value);               \
  } while (false)

#endif
