// cuscope: per-phase roofline bottleneck attribution.
//
// The paper's whole argument (Sec. IV, Fig. 4/7) is that ALS on GPUs is
// memory-bound and wins by reshaping data movement — but raw counters do
// not say *why* an epoch is slow. This module turns the measurements the
// system already collects — gpusim KernelTime roof components, measured
// OpCounts, multi-GPU comm seconds, out-of-core stall seconds — into a
// verdict per phase: which roof the phase sits under, its arithmetic
// intensity, how close to that roof it runs, and how much headroom is
// left. Verdicts are pure arithmetic over the input counters (no clocks,
// no global state), so identical counters always produce identical
// verdicts — the property the telemetry schema-2 `bottleneck` records,
// the --prof-summary roofline table and tools/cumf_report.py all rely on.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "gpusim/cost_model.hpp"

namespace cumf::prof {

/// The roof a phase is limited by. The first four mirror the gpusim kernel
/// cost model (compute / DRAM / L2 / latency); `comm` and `stall` extend
/// the taxonomy to the engine level, where the limiter can be the
/// interconnect (multi-GPU all-gather) or an exposed prefetch wait
/// (out-of-core streaming) rather than anything inside a kernel.
enum class Bound { compute, dram, l2, latency, comm, stall };

/// Stable lower-case name used in telemetry records ("compute", "dram",
/// "l2", "latency", "comm", "stall").
const char* to_string(Bound bound) noexcept;

/// Human phrasing for summaries ("compute-bound", "bandwidth-bound (DRAM)",
/// ...).
const char* describe(Bound bound) noexcept;

// Canonical phase names of the schema-2 bottleneck records (and of the
// --prof-summary roofline table). tools/trace_report.py validates against
// this set.
inline constexpr const char* kPhaseHermitian = "get_hermitian";
inline constexpr const char* kPhaseSolve = "solve";
inline constexpr const char* kPhaseFp16Pack = "fp16_pack";
inline constexpr const char* kPhaseMgpuAllGather = "mgpu_allgather";
inline constexpr const char* kPhaseOocStream = "ooc_stream";

/// Everything the classifier consumes for one phase of one epoch: the
/// per-roof lower-bound seconds (from the gpusim cost model or from
/// engine-level measurements) plus the operation counts behind the
/// arithmetic intensity. All fields are plain accumulators so multiple
/// kernels (e.g. the two half-sweeps of an epoch) can be summed into one
/// sample.
struct PhaseSample {
  std::string phase;
  /// Wall seconds of the phase. 0 means "derive from the components":
  /// the wall defaults to the largest single roof time, exactly how the
  /// gpusim cost model defines a kernel's seconds.
  double wall_s = 0;
  double t_compute = 0;
  double t_dram = 0;
  double t_l2 = 0;
  double t_latency = 0;
  double t_comm = 0;
  double t_stall = 0;
  double flops = 0;
  double bytes = 0;
};

/// Accumulates one gpusim kernel cost into a sample: each roof component
/// and the kernel's own wall seconds are added. Summing the load, compute
/// and write kernels of both half-sweeps yields the epoch's get_hermitian
/// sample.
void add_kernel_time(PhaseSample& sample, const gpusim::KernelTime& t);

/// The classifier's output for one phase.
struct Verdict {
  std::string phase;
  Bound bound = Bound::compute;
  /// FLOP per byte moved (0 when the phase moved no bytes).
  double arithmetic_intensity = 0;
  /// Fraction of the dominant roof actually achieved, in [0, 1]: the
  /// dominant roof's lower-bound seconds over the wall. 1 means the phase
  /// runs exactly at its limiting roof; clamped when a measured wall
  /// undercuts the model.
  double pct_of_roof = 0;
  /// 1 − pct_of_roof: the fraction of the wall not explained by the
  /// dominant roof — time an optimization targeting that roof cannot
  /// recover.
  double headroom = 0;
  double wall_s = 0;
  /// Echo of the classified sample (the telemetry record carries the
  /// components so cumf_report.py can attribute cross-run deltas).
  PhaseSample sample;
};

/// Classifies one phase. Deterministic: the dominant roof is the largest
/// component, ties broken by declaration order (compute, dram, l2,
/// latency, comm, stall), so equal inputs always yield equal verdicts.
Verdict classify(const PhaseSample& sample);

/// Renders the --prof-summary roofline table, one verdict sentence per
/// phase:
///   get_hermitian: 0.41 flop/B, 86% of dram roof (headroom 14%),
///   0.0123 s -> bandwidth-bound (DRAM)
std::string render_roofline_table(std::span<const Verdict> verdicts,
                                  const std::string& device_name);

}  // namespace cumf::prof
