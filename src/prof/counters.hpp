// cuprof counter & histogram registry.
//
// Named scalar counters (monotonic sums) and sparse-bucket histograms,
// snapshotted per epoch into the JSONL telemetry stream next to the
// ConvergenceTracker RMSE points. The registry is a value type: workers
// accumulate into private registries and the epoch loop merges them.
// merge() is associative and commutative (sums and bucket-wise sums), so
// any merge tree over any worker/schedule interleaving yields the same
// snapshot — the property the scheduling-comparison telemetry relies on,
// and one the tests check directly.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace cumf::prof {

/// Sparse-bucket histogram. Values map to deterministic bucket keys: exact
/// integers up to 128 (CG iteration counts, batch sizes), then powers of
/// two — so two histograms built from different shards bucket identically
/// and merge exactly.
class Histogram {
 public:
  void observe(double value) noexcept;
  void merge(const Histogram& other);

  std::uint64_t count() const noexcept { return count_; }
  double sum() const noexcept { return sum_; }
  double mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  const std::map<std::uint64_t, std::uint64_t>& buckets() const noexcept {
    return buckets_;
  }

  /// Nearest-rank percentile over the bucketed values: the smallest bucket
  /// key whose cumulative count reaches ⌈q·count⌉. Exact for integer-valued
  /// observations ≤ 128 (CG iterations, latencies recorded in µs); beyond
  /// that the answer is the power-of-two bucket ceiling. Deterministic and
  /// merge-stable: any merge tree over worker shards yields the same
  /// percentiles. q is clamped to [0, 1]; an empty histogram reports 0.
  double percentile(double q) const noexcept;

  /// Deterministic bucket key for a value (clamped at 0 below).
  static std::uint64_t bucket_key(double value) noexcept;

  bool operator==(const Histogram& other) const noexcept = default;

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  std::map<std::uint64_t, std::uint64_t> buckets_;
};

class CounterRegistry {
 public:
  /// Adds `delta` to the named counter (created at 0).
  void add(const std::string& name, double delta);

  /// Records one observation into the named histogram.
  void observe(const std::string& name, double value);

  double value(const std::string& name) const;
  const Histogram* histogram(const std::string& name) const;

  const std::map<std::string, double>& counters() const noexcept {
    return counters_;
  }
  const std::map<std::string, Histogram>& histograms() const noexcept {
    return histograms_;
  }

  /// Bucket-wise/element-wise merge; associative and commutative.
  void merge(const CounterRegistry& other);

  void clear();

  /// JSON object: {"counters":{...},"histograms":{name:{"count":..,
  /// "sum":..,"mean":..,"buckets":{"6":123,...}}}}.
  std::string to_json() const;

  bool operator==(const CounterRegistry& other) const noexcept = default;

 private:
  std::map<std::string, double> counters_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace cumf::prof
