#include "prof/bottleneck.hpp"

#include <algorithm>
#include <cstdio>

namespace cumf::prof {

const char* to_string(Bound bound) noexcept {
  switch (bound) {
    case Bound::compute: return "compute";
    case Bound::dram: return "dram";
    case Bound::l2: return "l2";
    case Bound::latency: return "latency";
    case Bound::comm: return "comm";
    case Bound::stall: return "stall";
  }
  return "compute";
}

const char* describe(Bound bound) noexcept {
  switch (bound) {
    case Bound::compute: return "compute-bound";
    case Bound::dram: return "bandwidth-bound (DRAM)";
    case Bound::l2: return "bandwidth-bound (L2)";
    case Bound::latency: return "latency-bound";
    case Bound::comm: return "interconnect-bound";
    case Bound::stall: return "stall-bound (exposed prefetch wait)";
  }
  return "compute-bound";
}

void add_kernel_time(PhaseSample& sample, const gpusim::KernelTime& t) {
  sample.wall_s += t.seconds;
  sample.t_compute += t.t_compute;
  sample.t_dram += t.t_dram;
  sample.t_l2 += t.t_l2;
  sample.t_latency += t.t_latency;
}

Verdict classify(const PhaseSample& sample) {
  // Fixed evaluation order doubles as the deterministic tie-break: a later
  // roof must strictly exceed the current dominant one to take over.
  const Bound kinds[] = {Bound::compute, Bound::dram,    Bound::l2,
                         Bound::latency, Bound::comm,    Bound::stall};
  const double times[] = {sample.t_compute, sample.t_dram, sample.t_l2,
                          sample.t_latency, sample.t_comm, sample.t_stall};

  Verdict v;
  v.phase = sample.phase;
  v.sample = sample;
  double dominant = times[0];
  for (int i = 1; i < 6; ++i) {
    if (times[i] > dominant) {
      dominant = times[i];
      v.bound = kinds[i];
    }
  }
  v.wall_s = sample.wall_s > 0 ? sample.wall_s : dominant;
  if (v.wall_s > 0) {
    v.pct_of_roof = std::min(1.0, dominant / v.wall_s);
  }
  v.headroom = 1.0 - v.pct_of_roof;
  if (sample.bytes > 0) {
    v.arithmetic_intensity = sample.flops / sample.bytes;
  }
  return v;
}

std::string render_roofline_table(std::span<const Verdict> verdicts,
                                  const std::string& device_name) {
  std::string out =
      "roofline attribution (modeled on " + device_name + ", last epoch):\n";
  for (const Verdict& v : verdicts) {
    char line[256];
    std::snprintf(line, sizeof(line),
                  "  %-14s %6.2f flop/B, %3.0f%% of %s roof "
                  "(headroom %3.0f%%), %.4g s -> %s\n",
                  v.phase.c_str(), v.arithmetic_intensity,
                  v.pct_of_roof * 100.0, to_string(v.bound),
                  v.headroom * 100.0, v.wall_s, describe(v.bound));
    out += line;
  }
  return out;
}

}  // namespace cumf::prof
