#include "prof/prof.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>

#include "common/check.hpp"
#include "common/thread_pool.hpp"

namespace cumf::prof {

namespace {

/// Thread-local span stack. Fixed depth: deeper nesting than this is a bug
/// in the instrumentation, not a workload property (the deepest real chain
/// is epoch → update side → task → row kernel ≈ 5).
constexpr std::size_t kMaxSpanDepth = 64;

struct SpanStack {
  std::uint64_t ids[kMaxSpanDepth];
  std::size_t depth = 0;
};
thread_local SpanStack t_span_stack;

thread_local ThreadBuffer* t_buffer = nullptr;

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

/// ThreadPool instrumentation: one span per executed task, plus a
/// flow-begin at the submit site and a flow-end at the start of execution,
/// so Perfetto draws an arrow from each parallel_for/submit call to the
/// worker slice that ran it. Task spans under guided and static schedules
/// then line up visually against the same submit row.
class PoolObserver final : public ThreadPool::Observer {
 public:
  void worker_started(std::size_t worker) noexcept override {
    if (!Tracer::enabled()) {
      return;
    }
    char name[32];
    std::snprintf(name, sizeof name, "pool-worker-%zu", worker);
    Tracer::instance().set_thread_name(name);
  }

  std::uint64_t task_submitted() noexcept override {
    if (!Tracer::enabled()) {
      return 0;
    }
    Tracer& t = Tracer::instance();
    const std::uint64_t tag = t.new_id();
    Event e;
    e.kind = EventKind::kFlowBegin;
    e.name = "task";
    e.category = "pool";
    e.start_ns = now_ns();
    e.id = tag;
    e.parent = current_span();
    t.local().push(e);
    return tag;
  }

  void task_started(std::uint64_t tag) noexcept override {
    if (!Tracer::enabled()) {
      return;
    }
    Tracer& t = Tracer::instance();
    Event e;
    e.kind = EventKind::kFlowEnd;
    e.name = "task";
    e.category = "pool";
    e.start_ns = now_ns();
    e.id = tag;
    t.local().push(e);
    // Open the task span: recorded as a complete event at task_finished;
    // the stack entry makes spans inside the task children of the task.
    push_span(tag);
    t_task_start[t_task_depth++] = e.start_ns;
  }

  void task_finished(std::uint64_t tag) noexcept override {
    if (t_task_depth == 0) {
      return;  // tracer was off at task_started; nothing to unwind
    }
    const std::uint64_t start = t_task_start[--t_task_depth];
    pop_span();
    if (!Tracer::enabled()) {
      return;
    }
    Event e;
    e.kind = EventKind::kSpan;
    e.name = "task";
    e.category = "pool";
    e.start_ns = start;
    e.dur_ns = now_ns() - start;
    e.id = tag;
    e.parent = current_span();
    Tracer::instance().local().push(e);
  }

 private:
  // Tasks nest strictly per thread (helping waiters run tasks inside
  // tasks), so a small per-thread stack of start timestamps suffices.
  static thread_local std::uint64_t t_task_start[kMaxSpanDepth];
  static thread_local std::size_t t_task_depth;
};

thread_local std::uint64_t PoolObserver::t_task_start[kMaxSpanDepth];
thread_local std::size_t PoolObserver::t_task_depth = 0;

PoolObserver g_pool_observer;

void append_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// Microseconds with nanosecond resolution kept as a decimal fraction.
void append_us(std::string& out, std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%" PRIu64 ".%03u", ns / 1000,
                static_cast<unsigned>(ns % 1000));
  out += buf;
}

}  // namespace

std::atomic<bool> Tracer::enabled_{false};

ThreadBuffer::ThreadBuffer(std::uint32_t tid, std::size_t capacity)
    : tid_(tid), ring_(capacity), mask_(capacity - 1) {
  CUMF_EXPECTS((capacity & mask_) == 0 && capacity > 0,
               "ring capacity must be a power of two");
}

std::vector<Event> ThreadBuffer::snapshot() const {
  const std::uint64_t n = pushed();
  const std::uint64_t cap = ring_.size();
  const std::uint64_t retained = std::min(n, cap);
  std::vector<Event> out;
  out.reserve(static_cast<std::size_t>(retained));
  for (std::uint64_t i = n - retained; i < n; ++i) {
    out.push_back(ring_[i & mask_]);
  }
  return out;
}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::enable(std::size_t ring_capacity) {
  {
    std::lock_guard lock(mutex_);
    if (capacity_ == 0) {
      capacity_ = round_up_pow2(std::max<std::size_t>(ring_capacity, 64));
    }
  }
  ThreadPool::set_observer(&g_pool_observer);
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::disable() { enabled_.store(false, std::memory_order_relaxed); }

void Tracer::reset() {
  std::lock_guard lock(mutex_);
  for (auto& buffer : buffers_) {
    buffer->clear();
  }
}

ThreadBuffer& Tracer::local() {
  if (t_buffer == nullptr) {
    std::lock_guard lock(mutex_);
    const auto tid = static_cast<std::uint32_t>(buffers_.size() + 1);
    const std::size_t cap = capacity_ == 0 ? kDefaultCapacity : capacity_;
    buffers_.push_back(std::make_unique<ThreadBuffer>(tid, cap));
    t_buffer = buffers_.back().get();
  }
  return *t_buffer;
}

void Tracer::set_thread_name(const std::string& name) {
  ThreadBuffer& buffer = local();
  std::lock_guard lock(mutex_);
  buffer.set_name(name);
}

const char* Tracer::intern(const std::string& s) {
  std::lock_guard lock(mutex_);
  for (const auto& known : interned_) {
    if (*known == s) {
      return known->c_str();
    }
  }
  interned_.push_back(std::make_unique<std::string>(s));
  return interned_.back()->c_str();
}

void Tracer::counter(const char* name, double value) noexcept {
  Event e;
  e.kind = EventKind::kCounter;
  e.name = name;
  e.category = "counter";
  e.start_ns = now_ns();
  e.value = value;
  local().push(e);
}

void Tracer::complete_span(const char* name, const char* category,
                           std::uint64_t start_ns,
                           std::uint64_t end_ns) noexcept {
  Event e;
  e.kind = EventKind::kSpan;
  e.name = name;
  e.category = category;
  e.start_ns = start_ns;
  e.dur_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
  e.id = new_id();
  e.parent = current_span();
  local().push(e);
}

std::string Tracer::chrome_trace_json() const {
  std::lock_guard lock(mutex_);
  std::string out;
  out.reserve(1 << 16);
  out += "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"tool\":\"cuprof\"},"
         "\"traceEvents\":[";
  bool first = true;
  const auto emit_prefix = [&out, &first] {
    if (!first) {
      out += ",\n";
    }
    first = false;
  };
  char buf[96];
  for (const auto& buffer : buffers_) {
    const std::uint32_t tid = buffer->tid();
    if (!buffer->name().empty()) {
      emit_prefix();
      out += "{\"ph\":\"M\",\"pid\":1,\"tid\":";
      out += std::to_string(tid);
      out += ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
      append_escaped(out, buffer->name().c_str());
      out += "\"}}";
    }
    for (const Event& e : buffer->snapshot()) {
      emit_prefix();
      switch (e.kind) {
        case EventKind::kSpan:
          out += "{\"ph\":\"X\",\"pid\":1,\"tid\":";
          out += std::to_string(tid);
          out += ",\"name\":\"";
          append_escaped(out, e.name);
          out += "\",\"cat\":\"";
          append_escaped(out, e.category);
          out += "\",\"ts\":";
          append_us(out, e.start_ns);
          out += ",\"dur\":";
          append_us(out, e.dur_ns);
          std::snprintf(buf, sizeof buf,
                        ",\"args\":{\"id\":%" PRIu64 ",\"parent\":%" PRIu64
                        "}}",
                        e.id, e.parent);
          out += buf;
          break;
        case EventKind::kCounter:
          out += "{\"ph\":\"C\",\"pid\":1,\"tid\":";
          out += std::to_string(tid);
          out += ",\"name\":\"";
          append_escaped(out, e.name);
          out += "\",\"ts\":";
          append_us(out, e.start_ns);
          std::snprintf(buf, sizeof buf, ",\"args\":{\"value\":%.9g}}",
                        e.value);
          out += buf;
          break;
        case EventKind::kFlowBegin:
        case EventKind::kFlowEnd:
          out += e.kind == EventKind::kFlowBegin
                     ? "{\"ph\":\"s\",\"pid\":1,\"tid\":"
                     : "{\"ph\":\"f\",\"bp\":\"e\",\"pid\":1,\"tid\":";
          out += std::to_string(tid);
          out += ",\"name\":\"";
          append_escaped(out, e.name);
          out += "\",\"cat\":\"";
          append_escaped(out, e.category);
          out += "\",\"ts\":";
          append_us(out, e.start_ns);
          std::snprintf(buf, sizeof buf, ",\"id\":%" PRIu64 "}", e.id);
          out += buf;
          break;
      }
    }
  }
  out += "]}\n";
  return out;
}

bool Tracer::write_chrome_trace(const std::string& path) const {
  const std::string json = chrome_trace_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = std::fclose(f) == 0 && written == json.size();
  return ok;
}

std::vector<SpanStat> Tracer::summarize() const {
  std::map<std::string, std::vector<std::uint64_t>> durations;
  {
    std::lock_guard lock(mutex_);
    for (const auto& buffer : buffers_) {
      for (const Event& e : buffer->snapshot()) {
        if (e.kind == EventKind::kSpan) {
          durations[e.name].push_back(e.dur_ns);
        }
      }
    }
  }
  std::vector<SpanStat> stats;
  stats.reserve(durations.size());
  for (auto& [name, ns] : durations) {
    std::sort(ns.begin(), ns.end());
    SpanStat s;
    s.name = name;
    s.count = ns.size();
    double total_ns = 0;
    for (const std::uint64_t d : ns) {
      total_ns += static_cast<double>(d);
    }
    const auto pct = [&ns](double q) {
      const auto idx = static_cast<std::size_t>(
          q * static_cast<double>(ns.size() - 1) + 0.5);
      return static_cast<double>(ns[idx]) / 1e3;
    };
    s.total_ms = total_ns / 1e6;
    s.mean_us = total_ns / static_cast<double>(ns.size()) / 1e3;
    s.p50_us = pct(0.50);
    s.p95_us = pct(0.95);
    s.max_us = static_cast<double>(ns.back()) / 1e3;
    stats.push_back(std::move(s));
  }
  std::sort(stats.begin(), stats.end(),
            [](const SpanStat& a, const SpanStat& b) {
              return a.total_ms > b.total_ms;
            });
  return stats;
}

std::uint64_t Tracer::total_dropped() const {
  std::lock_guard lock(mutex_);
  std::uint64_t dropped = 0;
  for (const auto& buffer : buffers_) {
    dropped += buffer->dropped();
  }
  return dropped;
}

std::uint64_t current_span() noexcept {
  return t_span_stack.depth == 0
             ? 0
             : t_span_stack.ids[t_span_stack.depth - 1];
}

void push_span(std::uint64_t id) noexcept {
  if (t_span_stack.depth < kMaxSpanDepth) {
    t_span_stack.ids[t_span_stack.depth] = id;
  }
  ++t_span_stack.depth;
}

void pop_span() noexcept {
  if (t_span_stack.depth > 0) {
    --t_span_stack.depth;
  }
}

}  // namespace cumf::prof
