#include "prof/telemetry.hpp"

#include <cmath>
#include <cstdint>

namespace cumf::prof {

void JsonObject::key(const std::string& k) {
  if (!body_.empty()) {
    body_ += ',';
  }
  body_ += '"';
  for (const char c : k) {
    if (c == '"' || c == '\\') {
      body_ += '\\';
    }
    body_ += c;
  }
  body_ += "\":";
}

JsonObject& JsonObject::set(const std::string& k, double value) {
  key(k);
  if (std::isfinite(value)) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.12g", value);
    body_ += buf;
  } else {
    body_ += "null";  // JSON has no NaN/Inf
  }
  return *this;
}

JsonObject& JsonObject::set(const std::string& k, std::int64_t value) {
  key(k);
  body_ += std::to_string(value);
  return *this;
}

JsonObject& JsonObject::set(const std::string& k, std::uint64_t value) {
  key(k);
  body_ += std::to_string(value);
  return *this;
}

JsonObject& JsonObject::set(const std::string& k, const std::string& value) {
  key(k);
  body_ += '"';
  for (const char c : value) {
    switch (c) {
      case '"':
        body_ += "\\\"";
        break;
      case '\\':
        body_ += "\\\\";
        break;
      case '\n':
        body_ += "\\n";
        break;
      case '\t':
        body_ += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          body_ += buf;
        } else {
          body_ += c;
        }
    }
  }
  body_ += '"';
  return *this;
}

JsonObject& JsonObject::set(const std::string& k, bool value) {
  key(k);
  body_ += value ? "true" : "false";
  return *this;
}

JsonObject& JsonObject::set_null(const std::string& k) {
  key(k);
  body_ += "null";
  return *this;
}

JsonObject& JsonObject::set_array(const std::string& k,
                                  std::span<const double> values) {
  key(k);
  body_ += '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) {
      body_ += ',';
    }
    if (std::isfinite(values[i])) {
      char buf[40];
      std::snprintf(buf, sizeof buf, "%.12g", values[i]);
      body_ += buf;
    } else {
      body_ += "null";
    }
  }
  body_ += ']';
  return *this;
}

JsonObject& JsonObject::set_raw(const std::string& k,
                                const std::string& json) {
  key(k);
  body_ += json;
  return *this;
}

TelemetryWriter::~TelemetryWriter() { close(); }

bool TelemetryWriter::open(const std::string& path) {
  close();
  file_ = std::fopen(path.c_str(), "w");
  return file_ != nullptr;
}

void TelemetryWriter::write(const JsonObject& record) {
  if (file_ == nullptr) {
    return;
  }
  const std::string line = record.str();
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
  std::fflush(file_);
  ++lines_;
}

void TelemetryWriter::close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

}  // namespace cumf::prof
