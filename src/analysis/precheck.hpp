// One checked ALS iteration before the real run — the `cucheck_report`
// mode of cumf_train.
//
// Runs the hermitian and batch-CG cusim kernels over (a capped prefix of)
// the training matrix with the cucheck observer attached, and lints the
// hermitian load phase's warp-access trace for coalescing violations. The
// result is a compute-sanitizer-style report: if it is not clean, the
// training kernels have a shared-memory race, an out-of-bounds access, or a
// barrier bug that a real GPU run would hit silently.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/coalesce.hpp"
#include "analysis/cucheck.hpp"
#include "analysis/report.hpp"
#include "linalg/dense.hpp"
#include "sparse/csr.hpp"

namespace cumf::analysis {

struct PrecheckConfig {
  real_t lambda = 0.05F;
  std::uint32_t fs = 6;        ///< CG truncation (paper's f_s)
  int tile = 0;                ///< hermitian tile; 0 picks a divisor of f
  int bin = 8;                 ///< θ columns staged per batch
  index_t max_rows = 64;       ///< rows of R to run checked (cost cap)
  CoalesceBudget coalesce;     ///< warp-instruction line budget
  CheckOptions check;
};

struct PrecheckResult {
  CheckReport hermitian;
  CheckReport cg;
  CoalesceReport coalesce;

  /// Race/memcheck verdict. The coalescing lint is advisory and does not
  /// gate: the paper's load scheme deliberately trades coalescing for
  /// cache-resident reuse (Fig. 3/4), so over-budget instructions there are
  /// the expected finding, not a bug.
  bool clean() const noexcept { return hermitian.clean() && cg.clean(); }
  std::string summary() const;

  /// The report flattened into the shared analysis/report.hpp scale — the
  /// same Finding records `cumf_train --cuverify` and tools/cuslint emit, so
  /// the dynamic and static gates share one severity/format/exit convention.
  /// Hazards map to Error; over-budget coalescing instructions to Warning.
  std::vector<Finding> findings() const;
  /// Shared exit-code convention: 1 on any error-severity finding, else 0.
  int exit_code() const { return analysis::exit_code(findings()); }
};

/// Runs the checked iteration. `theta` must have `r.cols()` rows; its column
/// count is the latent dimension f.
PrecheckResult run_precheck(const CsrMatrix& r, const Matrix& theta,
                            const PrecheckConfig& config = {});

}  // namespace cumf::analysis
