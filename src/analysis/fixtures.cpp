#include "analysis/fixtures.hpp"

#include <array>
#include <vector>

#include "analysis/spans.hpp"
#include "common/types.hpp"

namespace cumf::analysis::fixtures {

using cusim::AccessKind;
using cusim::Dim3;
using cusim::KernelCtx;
using cusim::LaunchConfig;
using cusim::MemSpace;
using cusim::ThreadTask;
namespace cv = cuverify;

CheckReport run_shared_race() {
  LaunchConfig config{Dim3{1}, Dim3{8}, sizeof(real_t)};
  return launch_checked(config, [](KernelCtx ctx) -> ThreadTask {
    auto cell = shared_span<real_t>(ctx, 0, 1, "cell");
    // Every thread stores its tid to the same location with no barrier or
    // owner discipline: a classic reduction-initialization race.
    cell[0] = static_cast<real_t>(ctx.tid());
    co_return;
  });
}

namespace {

cv::AccessPlan plan_shared_race() {
  cv::AccessPlan plan;
  plan.kernel = "fixture:shared_race";
  plan.grid = Dim3{1};
  plan.block = Dim3{8};
  plan.shared_bytes = sizeof(real_t);
  plan.buffers = {{"cell", MemSpace::Shared, 1, sizeof(real_t), 0}};
  cv::PlanAccess wr;
  wr.buffer = 0;
  wr.kind = AccessKind::Write;
  wr.label = "cell";
  plan.segments.push_back({{wr}, 0, 0});
  return plan;
}

}  // namespace

CheckReport run_missing_barrier() {
  std::vector<real_t> out(16, 0);
  LaunchConfig config{Dim3{1}, Dim3{16}, sizeof(real_t)};
  return launch_checked(config, [&](KernelCtx ctx) -> ThreadTask {
    auto cell = shared_span<real_t>(ctx, 0, 1, "cell");
    auto sink = global_span<real_t>(ctx, std::span<real_t>(out), "out");
    if (ctx.tid() == 0) {
      cell[0] = 42;
    }
    // BUG: the __syncthreads() between produce and consume is missing.
    sink[ctx.tid()] = cell(0);
    co_return;
  });
}

namespace {

cv::AccessPlan plan_missing_barrier() {
  cv::AccessPlan plan;
  plan.kernel = "fixture:missing_barrier";
  plan.grid = Dim3{1};
  plan.block = Dim3{16};
  plan.shared_bytes = sizeof(real_t);
  plan.buffers = {{"cell", MemSpace::Shared, 1, sizeof(real_t), 0},
                  {"out", MemSpace::Global, 16, sizeof(real_t),
                   0x4000'0000ULL}};
  cv::PlanAccess produce;
  produce.buffer = 0;
  produce.kind = AccessKind::Write;
  produce.thread_end = 1;  // only thread 0 writes
  produce.label = "cell";
  cv::PlanAccess consume;
  consume.buffer = 0;
  consume.kind = AccessKind::Read;
  consume.label = "cell";
  cv::PlanAccess sink;
  sink.buffer = 1;
  sink.kind = AccessKind::Write;
  sink.index.thread_coeff = 1;
  sink.label = "out";
  plan.segments.push_back({{produce, consume, sink}, 0, 0});
  return plan;
}

}  // namespace

CheckReport run_oob_shared_write() {
  LaunchConfig config{Dim3{1}, Dim3{4}, 4 * sizeof(real_t)};
  return launch_checked(config, [](KernelCtx ctx) -> ThreadTask {
    auto staged = shared_span<real_t>(ctx, 0, 4, "staged");
    const unsigned t = ctx.tid();
    staged[t] = static_cast<real_t>(t);
    if (t == ctx.blockDim.x - 1) {
      staged[t + 1] = 0;  // BUG: one past the end of the stage buffer
    }
    co_return;
  });
}

namespace {

cv::AccessPlan plan_oob_shared_write() {
  cv::AccessPlan plan;
  plan.kernel = "fixture:oob_shared_write";
  plan.grid = Dim3{1};
  plan.block = Dim3{4};
  plan.shared_bytes = 4 * sizeof(real_t);
  plan.buffers = {{"staged", MemSpace::Shared, 4, sizeof(real_t), 0}};
  cv::PlanAccess owned;
  owned.buffer = 0;
  owned.kind = AccessKind::Write;
  owned.index.thread_coeff = 1;
  owned.label = "staged";
  cv::PlanAccess over;  // the t == blockDim-1 branch: staged[t + 1]
  over.buffer = 0;
  over.kind = AccessKind::Write;
  over.thread_begin = 3;
  over.thread_end = 4;
  over.index.base = 1;
  over.index.thread_coeff = 1;
  over.label = "staged";
  plan.segments.push_back({{owned, over}, 0, 0});
  return plan;
}

}  // namespace

CheckReport run_oob_global_read() {
  std::vector<real_t> theta(6, 1.0F);
  std::vector<real_t> out(4, 0);
  LaunchConfig config{Dim3{1}, Dim3{4}, 0};
  return launch_checked(config, [&](KernelCtx ctx) -> ThreadTask {
    auto src = global_span<const real_t>(
        ctx, std::span<const real_t>(theta), "theta");
    auto sink = global_span<real_t>(ctx, std::span<real_t>(out), "out");
    real_t sum = 0;
    // BUG: the loop bound is the padded extent (8), not the true size (6).
    for (std::size_t i = ctx.tid(); i < 8; i += ctx.blockDim.x) {
      sum += src(i);
    }
    sink[ctx.tid()] = sum;
    co_return;
  });
}

namespace {

cv::AccessPlan plan_oob_global_read() {
  cv::AccessPlan plan;
  plan.kernel = "fixture:oob_global_read";
  plan.grid = Dim3{1};
  plan.block = Dim3{4};
  plan.buffers = {{"theta", MemSpace::Global, 6, sizeof(real_t),
                   0x1000'0000ULL},
                  {"out", MemSpace::Global, 4, sizeof(real_t),
                   0x4000'0000ULL}};
  // i = t + 4k with the buggy bound i < 8 declared as the guard — the plan
  // states what the kernel *does*, and the bounds pass proves it wrong.
  cv::PlanAccess read;
  read.buffer = 0;
  read.kind = AccessKind::Read;
  read.loops = {{2, "k"}};
  read.index.thread_coeff = 1;
  read.index.loop_coeffs = {4};
  read.guard = read.index;
  read.guard_bound = 8;
  read.label = "theta";
  cv::PlanAccess sink;
  sink.buffer = 1;
  sink.kind = AccessKind::Write;
  sink.index.thread_coeff = 1;
  sink.label = "out";
  plan.segments.push_back({{read, sink}, 0, 0});
  return plan;
}

}  // namespace

CheckReport run_barrier_divergence() {
  LaunchConfig config{Dim3{1}, Dim3{4}, 0};
  return launch_checked(config, [](KernelCtx ctx) -> ThreadTask {
    if (ctx.tid() < 2) {
      co_await ctx.sync();  // BUG: barrier inside a tid-dependent branch
    }
    co_return;
  });
}

namespace {

cv::AccessPlan plan_barrier_divergence() {
  cv::AccessPlan plan;
  plan.kernel = "fixture:barrier_divergence";
  plan.grid = Dim3{1};
  plan.block = Dim3{4};
  // Segment 0 ends at a barrier only threads [0, 2) reach — the declared
  // form of the divergent branch; the final segment is the fall-through.
  plan.segments.push_back({{}, 0, 2});
  plan.segments.push_back({{}, 0, 0});
  return plan;
}

constexpr std::array<BugFixture, 5> kFixtures = {{
    {"shared_race", HazardKind::WriteWrite, run_shared_race,
     plan_shared_race},
    {"missing_barrier", HazardKind::ReadWrite, run_missing_barrier,
     plan_missing_barrier},
    {"oob_shared_write", HazardKind::OutOfBounds, run_oob_shared_write,
     plan_oob_shared_write},
    {"oob_global_read", HazardKind::OutOfBounds, run_oob_global_read,
     plan_oob_global_read},
    {"barrier_divergence", HazardKind::BarrierDivergence,
     run_barrier_divergence, plan_barrier_divergence},
}};

}  // namespace

std::span<const BugFixture> all_fixtures() { return kFixtures; }

}  // namespace cumf::analysis::fixtures
