#include "analysis/fixtures.hpp"

#include <vector>

#include "analysis/spans.hpp"
#include "common/types.hpp"

namespace cumf::analysis::fixtures {

using cusim::Dim3;
using cusim::KernelCtx;
using cusim::LaunchConfig;
using cusim::ThreadTask;

CheckReport run_shared_race() {
  LaunchConfig config{Dim3{1}, Dim3{8}, sizeof(real_t)};
  return launch_checked(config, [](KernelCtx ctx) -> ThreadTask {
    auto cell = shared_span<real_t>(ctx, 0, 1, "cell");
    // Every thread stores its tid to the same location with no barrier or
    // owner discipline: a classic reduction-initialization race.
    cell[0] = static_cast<real_t>(ctx.tid());
    co_return;
  });
}

CheckReport run_missing_barrier() {
  std::vector<real_t> out(16, 0);
  LaunchConfig config{Dim3{1}, Dim3{16}, sizeof(real_t)};
  return launch_checked(config, [&](KernelCtx ctx) -> ThreadTask {
    auto cell = shared_span<real_t>(ctx, 0, 1, "cell");
    auto sink = global_span<real_t>(ctx, std::span<real_t>(out), "out");
    if (ctx.tid() == 0) {
      cell[0] = 42;
    }
    // BUG: the __syncthreads() between produce and consume is missing.
    sink[ctx.tid()] = cell(0);
    co_return;
  });
}

CheckReport run_oob_shared_write() {
  LaunchConfig config{Dim3{1}, Dim3{4}, 4 * sizeof(real_t)};
  return launch_checked(config, [](KernelCtx ctx) -> ThreadTask {
    auto staged = shared_span<real_t>(ctx, 0, 4, "staged");
    const unsigned t = ctx.tid();
    staged[t] = static_cast<real_t>(t);
    if (t == ctx.blockDim.x - 1) {
      staged[t + 1] = 0;  // BUG: one past the end of the stage buffer
    }
    co_return;
  });
}

CheckReport run_oob_global_read() {
  std::vector<real_t> theta(6, 1.0F);
  std::vector<real_t> out(4, 0);
  LaunchConfig config{Dim3{1}, Dim3{4}, 0};
  return launch_checked(config, [&](KernelCtx ctx) -> ThreadTask {
    auto src = global_span<const real_t>(
        ctx, std::span<const real_t>(theta), "theta");
    auto sink = global_span<real_t>(ctx, std::span<real_t>(out), "out");
    real_t sum = 0;
    // BUG: the loop bound is the padded extent (8), not the true size (6).
    for (std::size_t i = ctx.tid(); i < 8; i += ctx.blockDim.x) {
      sum += src(i);
    }
    sink[ctx.tid()] = sum;
    co_return;
  });
}

CheckReport run_barrier_divergence() {
  LaunchConfig config{Dim3{1}, Dim3{4}, 0};
  return launch_checked(config, [](KernelCtx ctx) -> ThreadTask {
    if (ctx.tid() < 2) {
      co_await ctx.sync();  // BUG: barrier inside a tid-dependent branch
    }
    co_return;
  });
}

}  // namespace cumf::analysis::fixtures
