// cucheck coalescing lint.
//
// The paper's Fig. 3/4 story is that the non-coalesced load scheme issues
// warp instructions touching up to 32 distinct cache lines and survives
// only because the working set fits in L1/L2. This lint replays the
// gpusim/trace.hpp warp-access records and flags every instruction whose
// line count exceeds a configurable budget — the static half of the
// memory-access analysis, complementing racecheck/memcheck's dynamic half.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "gpusim/trace.hpp"

namespace cumf::analysis {

struct CoalesceBudget {
  /// Max distinct cache lines one warp instruction may touch before it is
  /// flagged. 1 is fully coalesced; 4 tolerates unaligned segments; 32 is
  /// the worst a 32-lane warp can do.
  int max_lines_per_instruction = 4;
  std::size_t max_findings = 16;  ///< findings kept in the report
};

struct CoalesceFinding {
  std::size_t block = 0;        ///< index into the linted block set
  std::size_t instruction = 0;  ///< index within that block's stream
  int lines_touched = 0;
};

struct CoalesceReport {
  std::uint64_t instructions = 0;
  std::uint64_t flagged = 0;  ///< count over budget (beyond max_findings too)
  int worst_lines = 0;
  double mean_lines = 0.0;
  int budget = 0;
  std::vector<CoalesceFinding> findings;

  bool clean() const noexcept { return flagged == 0; }
  std::string summary() const;
};

/// Lints pre-built warp instruction streams (one stream per thread-block).
CoalesceReport lint_load_trace(
    std::span<const std::vector<gpusim::WarpInstruction>> blocks,
    const CoalesceBudget& budget = {});

/// Convenience: builds the hermitian load-phase trace for each row's column
/// set and lints it.
CoalesceReport lint_hermitian_load(
    const gpusim::DeviceSpec& dev, const gpusim::TraceConfig& config,
    std::span<const std::vector<index_t>> rows_per_block,
    const CoalesceBudget& budget = {});

}  // namespace cumf::analysis
