// Intentionally buggy cusim kernels — the shared regression corpus for BOTH
// analysis layers.
//
// Each fixture plants one representative member of a GPU bug class (the
// classes compute-sanitizer exists for) and exposes the same bug twice:
//   * run_dynamic — executes the kernel under launch_checked; the dynamic
//     checker must report the planted hazard.
//   * plan        — the kernel's declared AccessPlan; cuverify's static
//     passes must flag the same bug with zero execution.
// Tests and tools/cuslint iterate all_fixtures() — the single registration
// point — so a fixture added here is automatically exercised by the dynamic
// cucheck tests, the static cuverify tests, the dynamic/static differential
// suite, and the cuslint CI audit. No ad-hoc per-test enumeration.
#pragma once

#include <span>

#include "analysis/cucheck.hpp"
#include "analysis/cuverify/plan.hpp"

namespace cumf::analysis::fixtures {

struct BugFixture {
  const char* name = "";
  /// The planted bug, in dynamic vocabulary (what launch_checked reports).
  HazardKind expected = HazardKind::WriteWrite;
  /// Executes the buggy kernel under the dynamic checker.
  CheckReport (*run_dynamic)() = nullptr;
  /// The kernel's declared AccessPlan for the static passes.
  cuverify::AccessPlan (*plan)() = nullptr;
};

/// The whole corpus, in registration order.
std::span<const BugFixture> all_fixtures();

/// Every thread of the block writes shared[0] in the same epoch: a
/// write-write race.
CheckReport run_shared_race();

/// A producer/consumer kernel with the __syncthreads() omitted: thread 0
/// writes, the rest read — a read-write hazard (and, on real hardware, a
/// silent wrong answer).
CheckReport run_missing_barrier();

/// A staging loop whose bound is off by one: the last thread writes one
/// element past the shared array.
CheckReport run_oob_shared_write();

/// A grid-stride read loop over a global array whose bound is the padded
/// size, not the true size: the tail threads read past the end.
CheckReport run_oob_global_read();

/// Half the block calls __syncthreads() inside a tid-dependent branch.
CheckReport run_barrier_divergence();

}  // namespace cumf::analysis::fixtures
