// Intentionally buggy cusim kernels — cucheck's regression corpus.
//
// Each fixture plants one representative member of a GPU bug class (the
// classes compute-sanitizer exists for) and runs it under launch_checked.
// Tests assert that the resulting report names the hazard and the offending
// thread coordinates; if a future change to the checker stops seeing one of
// these, the corpus catches the regression.
#pragma once

#include "analysis/cucheck.hpp"

namespace cumf::analysis::fixtures {

/// Every thread of the block writes shared[0] in the same epoch: a
/// write-write race.
CheckReport run_shared_race();

/// A producer/consumer kernel with the __syncthreads() omitted: thread 0
/// writes, the rest read — a read-write hazard (and, on real hardware, a
/// silent wrong answer).
CheckReport run_missing_barrier();

/// A staging loop whose bound is off by one: the last thread writes one
/// element past the shared array.
CheckReport run_oob_shared_write();

/// A grid-stride read loop over a global array whose bound is the padded
/// size, not the true size: the tail threads read past the end.
CheckReport run_oob_global_read();

/// Half the block calls __syncthreads() inside a tid-dependent branch.
CheckReport run_barrier_divergence();

}  // namespace cumf::analysis::fixtures
