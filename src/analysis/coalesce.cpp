#include "analysis/coalesce.hpp"

#include <algorithm>
#include <sstream>

namespace cumf::analysis {

CoalesceReport lint_load_trace(
    std::span<const std::vector<gpusim::WarpInstruction>> blocks,
    const CoalesceBudget& budget) {
  CoalesceReport report;
  report.budget = budget.max_lines_per_instruction;
  std::uint64_t total_lines = 0;
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    for (std::size_t i = 0; i < blocks[b].size(); ++i) {
      const auto lines = static_cast<int>(blocks[b][i].lines.size());
      ++report.instructions;
      total_lines += static_cast<std::uint64_t>(lines);
      report.worst_lines = std::max(report.worst_lines, lines);
      if (lines > budget.max_lines_per_instruction) {
        ++report.flagged;
        if (report.findings.size() < budget.max_findings) {
          report.findings.push_back({b, i, lines});
        }
      }
    }
  }
  if (report.instructions > 0) {
    report.mean_lines = static_cast<double>(total_lines) /
                        static_cast<double>(report.instructions);
  }
  return report;
}

CoalesceReport lint_hermitian_load(
    const gpusim::DeviceSpec& dev, const gpusim::TraceConfig& config,
    std::span<const std::vector<index_t>> rows_per_block,
    const CoalesceBudget& budget) {
  std::vector<std::vector<gpusim::WarpInstruction>> streams;
  streams.reserve(rows_per_block.size());
  for (const auto& cols : rows_per_block) {
    streams.push_back(gpusim::hermitian_load_trace(dev, config, cols));
  }
  return lint_load_trace(streams, budget);
}

std::string CoalesceReport::summary() const {
  std::ostringstream os;
  if (clean()) {
    os << "cucheck coalesce: all " << instructions
       << " warp instructions within budget (" << budget
       << " lines/instruction)\n";
  } else {
    os << "cucheck coalesce: " << flagged << " of " << instructions
       << " warp instructions exceed the budget of " << budget
       << " lines (worst " << worst_lines << ")\n";
    for (const CoalesceFinding& f : findings) {
      os << "  block " << f.block << " instruction " << f.instruction
         << " touches " << f.lines_touched << " cache lines\n";
    }
  }
  os << "cucheck coalesce: mean " << mean_lines << " lines/instruction\n";
  return os.str();
}

}  // namespace cumf::analysis
