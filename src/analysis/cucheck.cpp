#include "analysis/cucheck.hpp"

#include <algorithm>
#include <sstream>

#include "analysis/spans.hpp"

namespace cumf::analysis {

const char* to_string(HazardKind kind) noexcept {
  switch (kind) {
    case HazardKind::WriteWrite:
      return "write-write hazard";
    case HazardKind::ReadWrite:
      return "read-write hazard";
    case HazardKind::OutOfBounds:
      return "out-of-bounds access";
    case HazardKind::Misaligned:
      return "misaligned access";
    case HazardKind::BarrierDivergence:
      return "barrier divergence";
  }
  return "unknown hazard";
}

namespace {

void describe_site(std::ostream& os, const AccessSite& site) {
  os << "thread (" << site.thread.x << ',' << site.thread.y << ','
     << site.thread.z << ')';
}

std::string race_message(HazardKind kind, const AccessSite& first,
                         const AccessSite& second) {
  std::ostringstream os;
  os << "cucheck racecheck: " << to_string(kind) << " on shared buffer '"
     << second.tag << "' at offset 0x" << std::hex << second.address
     << std::dec << " (" << second.size << " bytes) in block ("
     << second.block.x << ',' << second.block.y << ',' << second.block.z
     << "): ";
  describe_site(os, first);
  os << (first.kind == cusim::AccessKind::Write ? " wrote, " : " read, ");
  describe_site(os, second);
  os << (second.kind == cusim::AccessKind::Write ? " also wrote"
                                                 : " also read");
  os << " with no __syncthreads() between the accesses";
  return os.str();
}

std::uint64_t dedup_key(HazardKind kind, const char* tag_a,
                        const char* tag_b) {
  auto h = static_cast<std::uint64_t>(kind) + 1;
  h = h * 1000003u ^ reinterpret_cast<std::uintptr_t>(tag_a);
  h = h * 1000003u ^ reinterpret_cast<std::uintptr_t>(tag_b);
  return h;
}

}  // namespace

/// Racecheck state for one shared-memory byte within the current epoch.
/// tid < 0 means "not yet touched this epoch".
struct Checker::ByteState {
  std::int64_t writer = -1;
  std::int64_t reader = -1;
  AccessSite writer_site;
  AccessSite reader_site;
};

Checker::Checker(CheckOptions options) : options_(options) {}
Checker::~Checker() = default;

void Checker::reset_epoch() {
  for (const std::uint32_t offset : touched_) {
    bytes_[offset] = ByteState{};
  }
  touched_.clear();
}

void Checker::add_hazard(Hazard hazard) {
  ++report_.hazards_total;
  if (report_.hazards.size() < options_.max_hazards) {
    report_.hazards.push_back(std::move(hazard));
  }
}

void Checker::on_block_begin(const cusim::Dim3&, unsigned) {
  ++report_.stats.blocks;
  reset_epoch();
  reported_.clear();
}

void Checker::on_barrier(const cusim::Dim3&) {
  ++report_.stats.barriers;
  reset_epoch();
}

void Checker::on_block_end(const cusim::Dim3&) { reset_epoch(); }

void Checker::on_access(cusim::MemSpace space, cusim::AccessKind kind,
                        const cusim::KernelCtx& ctx, std::uint64_t address,
                        std::uint32_t size, const char* tag) {
  const bool write = kind == cusim::AccessKind::Write;
  if (space == cusim::MemSpace::Global) {
    ++(write ? report_.stats.global_writes : report_.stats.global_reads);
    return;  // racecheck models shared memory only
  }
  ++(write ? report_.stats.shared_writes : report_.stats.shared_reads);

  const auto tid = static_cast<std::int64_t>(ctx.tid());
  const AccessSite site{ctx.blockIdx, ctx.threadIdx, kind, address, size,
                        tag};
  if (address + size > bytes_.size()) {
    bytes_.resize(address + size);
  }
  for (std::uint64_t b = address; b < address + size; ++b) {
    ByteState& state = bytes_[b];
    if (state.writer < 0 && state.reader < 0) {
      touched_.push_back(static_cast<std::uint32_t>(b));
    }
    if (write) {
      if (state.writer >= 0 && state.writer != tid) {
        const std::uint64_t key =
            dedup_key(HazardKind::WriteWrite, state.writer_site.tag, tag);
        if (std::find(reported_.begin(), reported_.end(), key) ==
            reported_.end()) {
          reported_.push_back(key);
          add_hazard({HazardKind::WriteWrite, state.writer_site, site,
                      race_message(HazardKind::WriteWrite, state.writer_site,
                                   site)});
        }
      }
      if (state.reader >= 0 && state.reader != tid) {
        const std::uint64_t key =
            dedup_key(HazardKind::ReadWrite, state.reader_site.tag, tag);
        if (std::find(reported_.begin(), reported_.end(), key) ==
            reported_.end()) {
          reported_.push_back(key);
          add_hazard({HazardKind::ReadWrite, state.reader_site, site,
                      race_message(HazardKind::ReadWrite, state.reader_site,
                                   site)});
        }
      }
      state.writer = tid;
      state.writer_site = site;
    } else {
      if (state.writer >= 0 && state.writer != tid) {
        const std::uint64_t key =
            dedup_key(HazardKind::ReadWrite, state.writer_site.tag, tag);
        if (std::find(reported_.begin(), reported_.end(), key) ==
            reported_.end()) {
          reported_.push_back(key);
          add_hazard({HazardKind::ReadWrite, state.writer_site, site,
                      race_message(HazardKind::ReadWrite, state.writer_site,
                                   site)});
        }
      }
      state.reader = tid;
      state.reader_site = site;
    }
  }
}

void Checker::note_exception(const std::exception& error, HazardKind kind) {
  Hazard hazard;
  hazard.kind = kind;
  hazard.message = error.what();
  add_hazard(std::move(hazard));
}

CheckReport Checker::take_report() {
  CheckReport out = std::move(report_);
  report_ = CheckReport{};
  bytes_.clear();
  touched_.clear();
  reported_.clear();
  return out;
}

std::string CheckReport::summary() const {
  std::ostringstream os;
  if (clean()) {
    os << "cucheck: no hazards detected\n";
  } else {
    os << "cucheck: " << hazards_total << " hazard"
       << (hazards_total == 1 ? "" : "s") << " detected";
    if (hazards_total > hazards.size()) {
      os << " (showing first " << hazards.size() << ')';
    }
    os << '\n';
    for (std::size_t i = 0; i < hazards.size(); ++i) {
      os << "  [" << i + 1 << "] " << hazards[i].message << '\n';
    }
  }
  os << "cucheck: " << stats.blocks << " blocks, " << stats.barriers
     << " barriers; shared " << stats.shared_reads << " reads / "
     << stats.shared_writes << " writes; global " << stats.global_reads
     << " reads / " << stats.global_writes << " writes\n";
  return os.str();
}

CheckReport launch_checked(cusim::LaunchConfig config,
                           const cusim::Kernel& kernel,
                           const CheckOptions& options) {
  Checker checker(options);
  config.check = &checker;
  try {
    cusim::launch(config, kernel);
  } catch (const MemcheckError& error) {
    checker.note_exception(error,
                           error.kind() == MemcheckError::Kind::OutOfBounds
                               ? HazardKind::OutOfBounds
                               : HazardKind::Misaligned);
  } catch (const cusim::BarrierDivergence& error) {
    checker.note_exception(error, HazardKind::BarrierDivergence);
  }
  return checker.take_report();
}

}  // namespace cumf::analysis
