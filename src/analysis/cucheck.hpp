// cucheck — a compute-sanitizer-style dynamic-analysis layer for cusim
// kernels.
//
// Modeled on NVIDIA's compute-sanitizer tools:
//   * memcheck  — bounds/alignment checking, implemented by the checked
//                 spans in analysis/spans.hpp (violations throw
//                 MemcheckError; launch_checked converts them to hazards).
//   * racecheck — shared-memory hazard detection. Between two consecutive
//                 satisfied __syncthreads() barriers (one "epoch"), no
//                 shared-memory byte may be written by one thread and
//                 touched (read or written) by a different thread: with no
//                 intervening barrier the device gives no ordering, so such
//                 a pair is a write-write or read-write hazard even if the
//                 sequential simulator happened to produce the "right"
//                 answer.
//
// Like the real racecheck, this sees shared memory only: global-memory
// conflicts between threads (same block or not) are out of scope — see
// docs/analysis.md for the full hazard model.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cusim/cusim.hpp"

namespace cumf::analysis {

enum class HazardKind {
  WriteWrite,         ///< two threads wrote the same shared byte in an epoch
  ReadWrite,          ///< one thread wrote, another read, no barrier between
  OutOfBounds,        ///< memcheck: access past a span's extent
  Misaligned,         ///< memcheck: span base not aligned for its type
  BarrierDivergence,  ///< threads of a block disagreed about a barrier
};

const char* to_string(HazardKind kind) noexcept;

/// One side of a hazard: which thread touched what.
struct AccessSite {
  cusim::Dim3 block;
  cusim::Dim3 thread;
  cusim::AccessKind kind = cusim::AccessKind::Read;
  std::uint64_t address = 0;
  std::uint32_t size = 0;
  const char* tag = "";
};

struct Hazard {
  HazardKind kind = HazardKind::WriteWrite;
  AccessSite first;   ///< the earlier access (or the faulting one)
  AccessSite second;  ///< the conflicting access; unused for memcheck kinds
  std::string message;
};

struct CheckStats {
  std::uint64_t shared_reads = 0;
  std::uint64_t shared_writes = 0;
  std::uint64_t global_reads = 0;
  std::uint64_t global_writes = 0;
  std::uint64_t barriers = 0;
  std::uint64_t blocks = 0;
};

struct CheckReport {
  std::vector<Hazard> hazards;  ///< capped at CheckOptions::max_hazards
  std::uint64_t hazards_total = 0;  ///< including those beyond the cap
  CheckStats stats;

  bool clean() const noexcept { return hazards_total == 0; }
  /// Multi-line human-readable report (one paragraph per hazard plus an
  /// access/barrier census), in the spirit of compute-sanitizer output.
  std::string summary() const;
};

struct CheckOptions {
  std::size_t max_hazards = 64;
};

/// The racecheck state machine. Plug into cusim via LaunchConfig::check, or
/// use launch_checked() below, which owns the whole lifecycle.
class Checker final : public cusim::AccessObserver {
 public:
  explicit Checker(CheckOptions options = {});
  ~Checker() override;

  Checker(const Checker&) = delete;
  Checker& operator=(const Checker&) = delete;

  void on_block_begin(const cusim::Dim3& block_idx, unsigned threads) override;
  void on_barrier(const cusim::Dim3& block_idx) override;
  void on_block_end(const cusim::Dim3& block_idx) override;
  void on_access(cusim::MemSpace space, cusim::AccessKind kind,
                 const cusim::KernelCtx& ctx, std::uint64_t address,
                 std::uint32_t size, const char* tag) override;

  /// Record an exception caught around the launch (memcheck violation or
  /// barrier divergence) as a hazard.
  void note_exception(const std::exception& error, HazardKind kind);

  /// Finalizes and returns the report; the checker resets for reuse.
  CheckReport take_report();

 private:
  struct ByteState;
  void add_hazard(Hazard hazard);
  void reset_epoch();

  CheckOptions options_;
  CheckReport report_;
  // Racecheck state for the current epoch of the current block, keyed by
  // shared-memory byte offset.
  std::vector<ByteState> bytes_;
  std::vector<std::uint32_t> touched_;  ///< offsets dirtied this epoch
  // One report per (kind, tid pair, tag pair) per block keeps the output
  // readable when a strided loop races on many bytes.
  std::vector<std::uint64_t> reported_;
};

/// Runs `kernel` under a fresh Checker: the compute-sanitizer experience as
/// one call. Memcheck violations and barrier divergence are caught and
/// reported as hazards instead of propagating (other kernel exceptions
/// still propagate).
CheckReport launch_checked(cusim::LaunchConfig config,
                           const cusim::Kernel& kernel,
                           const CheckOptions& options = {});

}  // namespace cumf::analysis
