#include "analysis/report.hpp"

#include <sstream>

namespace cumf::analysis {

const char* to_string(Severity severity) noexcept {
  switch (severity) {
    case Severity::Info:
      return "info";
    case Severity::Warning:
      return "warning";
    case Severity::Error:
      return "error";
  }
  return "unknown";
}

std::size_t count(std::span<const Finding> findings,
                  Severity severity) noexcept {
  std::size_t n = 0;
  for (const Finding& f : findings) {
    if (f.severity == severity) {
      ++n;
    }
  }
  return n;
}

int exit_code(std::span<const Finding> findings) noexcept {
  return count(findings, Severity::Error) > 0 ? 1 : 0;
}

std::string render(std::span<const Finding> findings) {
  std::ostringstream os;
  for (const Finding& f : findings) {
    os << to_string(f.severity) << " [" << f.pass << "] " << f.subject
       << ": " << f.message << '\n';
  }
  return os.str();
}

}  // namespace cumf::analysis
