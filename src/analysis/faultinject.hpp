// Deterministic, seed-driven fault injection for the robustness layer.
//
// Every recovery path in the trainer — CG breakdown → exact-LU fallback,
// FP16 pack overflow → FP32 retry, torn checkpoint → rejection diagnostic,
// crash-at-epoch → resume — is exercised by *injecting* the fault rather
// than hoping a dataset triggers it. The injector is a process-wide
// singleton with an atomic enable flag so the hot path pays one relaxed
// load per row when disarmed; all fault decisions are pure functions of
// (plan.seed, site, row), so a given plan corrupts exactly the same systems
// on every run, every schedule, and every worker count — the recovery tests
// can therefore assert exact counts.
//
// Header-only on purpose: the hooks live in cumf_core (AlsEngine) and
// cumf_data (atomic_write_file), and a header keeps the dependency graph
// free of a new library edge.
#pragma once

#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>

#include "common/types.hpp"

namespace cumf::analysis {

/// What to break, and how often. All-default means "inject nothing".
/// Probabilities are per linear system (one ALS row update); decisions are
/// hashed from (seed, site, row), not drawn from a shared stream, so they
/// are stable under any execution order.
struct FaultPlan {
  std::uint64_t seed = 0;
  /// Poison one element of A with a quiet NaN: CG breaks down, the LU
  /// fallback fails too, and the engine must keep the previous factor.
  double nan_a_prob = 0.0;
  /// Poison one element of b with +inf: non-finite initial residual.
  double inf_b_prob = 0.0;
  /// Flip a diagonal entry of A strongly negative: A becomes indefinite, CG
  /// hits pᵀAp ≤ 0, and the exact LU fallback still solves the system.
  double indefinite_a_prob = 0.0;
  /// Inflate a diagonal entry of A past half::max(): the FP16 pack
  /// overflows to inf and the solver must retry the system in FP32.
  double fp16_overflow_prob = 0.0;
  /// Simulated crash: the trainer calls should_crash_after_epoch() after
  /// persisting each checkpoint and _Exit()s mid-run when it matches.
  int crash_at_epoch = -1;
  /// Truncate atomic_write_file payloads to this many bytes (0 = off),
  /// modelling a torn write that survived a crash. Readers must detect the
  /// damage via length/CRC checks.
  std::size_t short_write_bytes = 0;
};

/// Tallies of faults actually injected (relaxed atomics: exact totals are
/// read after the parallel region ends).
struct FaultCounts {
  std::atomic<std::uint64_t> nan_a{0};
  std::atomic<std::uint64_t> inf_b{0};
  std::atomic<std::uint64_t> indefinite_a{0};
  std::atomic<std::uint64_t> fp16_overflow{0};
  std::atomic<std::uint64_t> short_writes{0};
};

class FaultInjector {
 public:
  static FaultInjector& instance() {
    static FaultInjector injector;
    return injector;
  }

  /// Cheap disarmed-path check; hook sites gate on this before calling in.
  static bool enabled() noexcept {
    return armed_.load(std::memory_order_relaxed);
  }

  void arm(const FaultPlan& plan) noexcept {
    plan_ = plan;
    reset_counts();
    armed_.store(true, std::memory_order_release);
  }

  void disarm() noexcept {
    armed_.store(false, std::memory_order_release);
    plan_ = FaultPlan{};
  }

  const FaultPlan& plan() const noexcept { return plan_; }
  const FaultCounts& counts() const noexcept { return counts_; }

  /// Hook: called by AlsEngine between get_hermitian and the solve with the
  /// assembled system. `site` distinguishes the update-X / update-Θ sweeps
  /// so the two sides draw independent fault decisions.
  void corrupt_system(std::uint32_t site, index_t row, std::span<real_t> a,
                      std::span<real_t> b) noexcept {
    const std::size_t f = b.size();
    if (f == 0 || a.size() < f * f) {
      return;
    }
    if (hit(plan_.nan_a_prob, site, row, 0x11)) {
      a[pick(site, row, 0x12, a.size())] =
          std::numeric_limits<real_t>::quiet_NaN();
      counts_.nan_a.fetch_add(1, std::memory_order_relaxed);
    }
    if (hit(plan_.inf_b_prob, site, row, 0x21)) {
      b[pick(site, row, 0x22, f)] = std::numeric_limits<real_t>::infinity();
      counts_.inf_b.fetch_add(1, std::memory_order_relaxed);
    }
    if (hit(plan_.indefinite_a_prob, site, row, 0x31)) {
      const std::size_t d = pick(site, row, 0x32, f);
      real_t& diag = a[d * f + d];
      diag = -1e3f * (std::fabs(diag) + 1.0f);
      counts_.indefinite_a.fetch_add(1, std::memory_order_relaxed);
    }
    if (hit(plan_.fp16_overflow_prob, site, row, 0x41)) {
      const std::size_t d = pick(site, row, 0x42, f);
      a[d * f + d] += 1e5f;  // past half::max() = 65504: FP16 pack → inf
      counts_.fp16_overflow.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Hook: consulted by the trainer after each checkpoint is durably on
  /// disk; true means "die here" (the caller _Exit()s, skipping cleanup —
  /// exactly what a crash would do).
  bool should_crash_after_epoch(int epoch) const noexcept {
    return plan_.crash_at_epoch >= 0 && epoch == plan_.crash_at_epoch;
  }

  /// Hook: consulted by atomic_write_file. Returns the byte limit to apply
  /// to the payload (SIZE_MAX = write everything) and counts applications.
  std::size_t short_write_limit() noexcept {
    if (plan_.short_write_bytes == 0) {
      return std::numeric_limits<std::size_t>::max();
    }
    counts_.short_writes.fetch_add(1, std::memory_order_relaxed);
    return plan_.short_write_bytes;
  }

 private:
  FaultInjector() = default;

  void reset_counts() noexcept {
    counts_.nan_a = 0;
    counts_.inf_b = 0;
    counts_.indefinite_a = 0;
    counts_.fp16_overflow = 0;
    counts_.short_writes = 0;
  }

  /// splitmix64 over the decision coordinates → uniform in [0, 1).
  static std::uint64_t mix(std::uint64_t seed, std::uint32_t site,
                           index_t row, std::uint32_t salt) noexcept {
    std::uint64_t z = seed ^ (static_cast<std::uint64_t>(site) << 48) ^
                      (static_cast<std::uint64_t>(salt) << 32) ^ row;
    z += 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  bool hit(double prob, std::uint32_t site, index_t row,
           std::uint32_t salt) const noexcept {
    if (prob <= 0.0) {
      return false;
    }
    const double u =
        static_cast<double>(mix(plan_.seed, site, row, salt) >> 11) *
        0x1.0p-53;
    return u < prob;
  }

  std::size_t pick(std::uint32_t site, index_t row, std::uint32_t salt,
                   std::size_t n) const noexcept {
    return static_cast<std::size_t>(mix(plan_.seed, site, row, salt) %
                                    static_cast<std::uint64_t>(n));
  }

  inline static std::atomic<bool> armed_{false};
  FaultPlan plan_;
  FaultCounts counts_;
};

/// RAII arm/disarm for tests: faults never leak into the next test case.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(const FaultPlan& plan) {
    FaultInjector::instance().arm(plan);
  }
  ~ScopedFaultPlan() { FaultInjector::instance().disarm(); }

  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;
};

}  // namespace cumf::analysis
