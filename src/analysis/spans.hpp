// cucheck memcheck: checked access wrappers for cusim kernels.
//
// SharedSpan<T> and GlobalSpan<T> are the device-side counterparts of
// compute-sanitizer's memcheck instrumentation. Every element access is
// bounds-checked (out-of-bounds and misaligned accesses throw MemcheckError
// naming the offending thread's coordinates), and when the launch runs with
// LaunchConfig::check set, every read and write is reported to the observer
// with (thread, address, size, tag) so racecheck can build its hazard model.
// Without an observer the spans still bounds-check — kernels written on them
// are memory-safe by construction — but record nothing.
//
// Reads use operator()(i); writes (and read-modify-writes) go through the
// proxy returned by operator[](i). This mirrors how an instrumented load and
// an instrumented store are distinct events on the device.
#pragma once

#include <cstdint>
#include <span>
#include <sstream>
#include <stdexcept>
#include <type_traits>

#include "cusim/cusim.hpp"

namespace cumf::analysis {

/// Thrown on an out-of-bounds or misaligned checked access. The message is
/// the hazard report: space, tag, index, extent, and thread coordinates.
class MemcheckError : public std::runtime_error {
 public:
  enum class Kind { OutOfBounds, Misaligned };

  MemcheckError(Kind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}

  Kind kind() const noexcept { return kind_; }

 private:
  Kind kind_;
};

namespace detail {

inline void describe_thread(std::ostream& os, const cusim::KernelCtx& ctx) {
  os << "thread (" << ctx.threadIdx.x << ',' << ctx.threadIdx.y << ','
     << ctx.threadIdx.z << ") of block (" << ctx.blockIdx.x << ','
     << ctx.blockIdx.y << ',' << ctx.blockIdx.z << ')';
}

[[noreturn]] inline void oob_fail(cusim::MemSpace space,
                                  cusim::AccessKind kind,
                                  const cusim::KernelCtx& ctx, const char* tag,
                                  std::size_t index, std::size_t count,
                                  std::size_t elem_size) {
  std::ostringstream os;
  os << "cucheck memcheck: out-of-bounds "
     << (kind == cusim::AccessKind::Read ? "read" : "write") << " of "
     << elem_size << " bytes on "
     << (space == cusim::MemSpace::Shared ? "shared" : "global")
     << " buffer '" << tag << "' at index " << index << " (extent " << count
     << ") by ";
  describe_thread(os, ctx);
  throw MemcheckError(MemcheckError::Kind::OutOfBounds, os.str());
}

[[noreturn]] inline void misaligned_fail(cusim::MemSpace space,
                                         const cusim::KernelCtx& ctx,
                                         const char* tag,
                                         std::uint64_t address,
                                         std::size_t alignment) {
  std::ostringstream os;
  os << "cucheck memcheck: misaligned "
     << (space == cusim::MemSpace::Shared ? "shared" : "global")
     << " buffer '" << tag << "' at address 0x" << std::hex << address
     << std::dec << " (requires " << alignment << "-byte alignment) in ";
  describe_thread(os, ctx);
  throw MemcheckError(MemcheckError::Kind::Misaligned, os.str());
}

}  // namespace detail

/// A bounds- and race-checked view over one kernel buffer, bound to the
/// accessing thread's KernelCtx. `Space` distinguishes the hazard model:
/// shared accesses feed racecheck; global accesses are bounds-checked and
/// counted only (matching compute-sanitizer, whose racecheck is
/// shared-memory only).
template <typename T, cusim::MemSpace Space>
class CheckedSpan {
 public:
  using value_type = std::remove_const_t<T>;

  CheckedSpan(const cusim::KernelCtx& ctx, std::span<T> data,
              std::uint64_t base_address, const char* tag)
      : ctx_(&ctx), data_(data), base_(base_address), tag_(tag) {}

  std::size_t size() const noexcept { return data_.size(); }

  /// Checked read: `x = span(i)`.
  value_type operator()(std::size_t i) const {
    bounds(i, cusim::AccessKind::Read);
    record(cusim::AccessKind::Read, i);
    return data_[i];
  }

  /// Write proxy. Converting to value_type records a read; assignment and
  /// compound assignment record the write (compound forms also the read).
  class Ref {
   public:
    Ref(const CheckedSpan* span, std::size_t i) : span_(span), i_(i) {}

    /// Implicit so `real_t v = span[i];` reads like device code.
    operator value_type() const {
      span_->record(cusim::AccessKind::Read, i_);
      return span_->data_[i_];
    }
    Ref& operator=(value_type v)
      requires(!std::is_const_v<T>)
    {
      span_->record(cusim::AccessKind::Write, i_);
      span_->data_[i_] = v;
      return *this;
    }
    Ref& operator+=(value_type v)
      requires(!std::is_const_v<T>)
    {
      span_->record(cusim::AccessKind::Read, i_);
      span_->record(cusim::AccessKind::Write, i_);
      span_->data_[i_] += v;
      return *this;
    }
    Ref& operator-=(value_type v)
      requires(!std::is_const_v<T>)
    {
      span_->record(cusim::AccessKind::Read, i_);
      span_->record(cusim::AccessKind::Write, i_);
      span_->data_[i_] -= v;
      return *this;
    }

   private:
    const CheckedSpan* span_;
    std::size_t i_;
  };

  Ref operator[](std::size_t i) const {
    bounds(i, std::is_const_v<T> ? cusim::AccessKind::Read
                                 : cusim::AccessKind::Write);
    return Ref(this, i);
  }

 private:
  void bounds(std::size_t i, cusim::AccessKind kind) const {
    if (i >= data_.size()) {
      detail::oob_fail(Space, kind, *ctx_, tag_, i, data_.size(), sizeof(T));
    }
  }
  void record(cusim::AccessKind kind, std::size_t i) const {
    if (cusim::AccessObserver* obs = ctx_->check()) {
      obs->on_access(Space, kind, *ctx_, base_ + i * sizeof(T),
                     static_cast<std::uint32_t>(sizeof(T)), tag_);
    }
  }

  const cusim::KernelCtx* ctx_;
  std::span<T> data_;
  std::uint64_t base_;  ///< shared: byte offset; global: virtual address
  const char* tag_;
};

template <typename T>
using SharedSpan = CheckedSpan<T, cusim::MemSpace::Shared>;
template <typename T>
using GlobalSpan = CheckedSpan<T, cusim::MemSpace::Global>;

/// Typed checked view into the block's shared memory at `offset_bytes`.
template <typename T>
SharedSpan<T> shared_span(const cusim::KernelCtx& ctx,
                          std::size_t offset_bytes, std::size_t count,
                          const char* tag) {
  if (offset_bytes % alignof(T) != 0) {
    detail::misaligned_fail(cusim::MemSpace::Shared, ctx, tag, offset_bytes,
                            alignof(T));
  }
  return SharedSpan<T>(ctx, ctx.shared_array<T>(offset_bytes, count),
                       offset_bytes, tag);
}

/// Checked view over a global-memory buffer (any host array the kernel
/// reads or writes).
template <typename T>
GlobalSpan<T> global_span(const cusim::KernelCtx& ctx, std::span<T> data,
                          const char* tag) {
  const auto base = reinterpret_cast<std::uint64_t>(
      static_cast<const void*>(data.data()));
  if (base % alignof(T) != 0) {
    detail::misaligned_fail(cusim::MemSpace::Global, ctx, tag, base,
                            alignof(T));
  }
  return GlobalSpan<T>(ctx, data, base, tag);
}

}  // namespace cumf::analysis
