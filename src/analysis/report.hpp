// Shared finding format for the analysis layer.
//
// Both gates of cumf_train — the dynamic `--cucheck` precheck and the static
// `--cuverify` pregate — and the standalone `tools/cuslint` auditor emit
// their results as Findings with one severity scale, so reports compose and
// the exit-code convention is uniform:
//
//   exit 0 — no error-severity findings (warnings/info may be present)
//   exit 1 — at least one error-severity finding (or a runtime failure)
//   exit 2 — usage error (bad flags/arguments)
//
// Severity mapping: provable bugs (races, out-of-bounds, barrier divergence,
// launch-impossible resource demands) are `Error`; advisory performance
// findings (coalescing or bank-conflict budgets exceeded, FP16 overflow
// predicted for a dataset) are `Warning`, because the paper's own kernels
// deliberately trade coalescing for cache reuse and the PR 4 degradation
// ladder absorbs FP16 overflow at runtime; everything informational is
// `Info`.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace cumf::analysis {

enum class Severity { Info, Warning, Error };

const char* to_string(Severity severity) noexcept;

/// One analysis result in the shared cucheck/cuverify format.
struct Finding {
  Severity severity = Severity::Info;
  std::string pass;     ///< producing pass: "racecheck", "bounds", ...
  std::string subject;  ///< kernel or fixture the finding is about
  std::string message;  ///< one-line human-readable statement
};

/// Count of findings at exactly `severity`.
std::size_t count(std::span<const Finding> findings,
                  Severity severity) noexcept;

/// The documented convention: 1 if any error-severity finding, else 0.
int exit_code(std::span<const Finding> findings) noexcept;

/// Multi-line rendering, one "severity [pass] subject: message" per line.
std::string render(std::span<const Finding> findings);

}  // namespace cumf::analysis
