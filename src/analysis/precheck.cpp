#include "analysis/precheck.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "analysis/spans.hpp"
#include "common/check.hpp"
#include "cusim/kernels.hpp"
#include "gpusim/device.hpp"
#include "sparse/coo.hpp"

namespace cumf::analysis {

namespace {

/// Largest divisor of f not exceeding 8 — a sensible hermitian tile when the
/// caller has no opinion.
int pick_tile(std::size_t f) {
  for (int t = 8; t > 1; --t) {
    if (f % static_cast<std::size_t>(t) == 0) {
      return t;
    }
  }
  return 1;
}

/// First `rows` rows of `r` as their own CSR matrix.
CsrMatrix head_rows(const CsrMatrix& r, index_t rows) {
  RatingsCoo coo(rows, r.cols());
  for (index_t u = 0; u < rows; ++u) {
    const auto cols = r.row_cols(u);
    const auto vals = r.row_vals(u);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      coo.add(u, cols[k], vals[k]);
    }
  }
  return CsrMatrix::from_coo(coo);
}

CheckReport drain(Checker& checker) {
  return checker.take_report();
}

}  // namespace

PrecheckResult run_precheck(const CsrMatrix& r, const Matrix& theta,
                            const PrecheckConfig& config) {
  CUMF_EXPECTS(r.rows() > 0, "cucheck precheck needs a non-empty matrix");
  CUMF_EXPECTS(theta.rows() == r.cols(),
               "theta must have one row per item column of R");
  const std::size_t f = theta.cols();
  const int tile = config.tile > 0 ? config.tile : pick_tile(f);

  const index_t rows = std::min(r.rows(), config.max_rows);
  const CsrMatrix sub = head_rows(r, rows);

  PrecheckResult result;

  // Checked hermitian launch (the Fig. 2 kernel).
  cusim::HermitianBatchResult herm;
  {
    Checker checker(config.check);
    try {
      herm = cusim::hermitian_kernel_launch(sub, theta,
                                            config.lambda, tile, config.bin,
                                            &checker);
    } catch (const MemcheckError& error) {
      checker.note_exception(error,
                             error.kind() == MemcheckError::Kind::OutOfBounds
                                 ? HazardKind::OutOfBounds
                                 : HazardKind::Misaligned);
    } catch (const cusim::BarrierDivergence& error) {
      checker.note_exception(error, HazardKind::BarrierDivergence);
    }
    result.hermitian = drain(checker);
  }

  // Checked batch-CG launch (Algorithm 1) over the systems just built.
  if (result.hermitian.clean()) {
    std::vector<real_t> x(static_cast<std::size_t>(rows) * f, real_t{0});
    Checker checker(config.check);
    try {
      cusim::cg_kernel_launch(rows, f, herm.a, herm.b, x, config.fs, 1e-4F,
                              &checker);
    } catch (const MemcheckError& error) {
      checker.note_exception(error,
                             error.kind() == MemcheckError::Kind::OutOfBounds
                                 ? HazardKind::OutOfBounds
                                 : HazardKind::Misaligned);
    } catch (const cusim::BarrierDivergence& error) {
      checker.note_exception(error, HazardKind::BarrierDivergence);
    }
    result.cg = drain(checker);
  }

  // Coalescing lint of the load phase, on the same rows.
  {
    gpusim::TraceConfig trace;
    trace.f = static_cast<int>(f);
    trace.bin = config.bin;
    trace.threads_per_block = 64;
    trace.coalesced = false;  // the paper's scheme (b), the one that lints
    const gpusim::DeviceSpec dev = gpusim::DeviceSpec::maxwell_titan_x();
    std::vector<std::vector<index_t>> rows_per_block;
    const index_t lint_rows = std::min<index_t>(rows, 8);
    rows_per_block.reserve(lint_rows);
    for (index_t u = 0; u < lint_rows; ++u) {
      const auto cols = sub.row_cols(u);
      rows_per_block.emplace_back(cols.begin(), cols.end());
    }
    result.coalesce =
        lint_hermitian_load(dev, trace, rows_per_block, config.coalesce);
  }

  return result;
}

std::vector<Finding> PrecheckResult::findings() const {
  std::vector<Finding> out;
  const auto add_hazards = [&out](const CheckReport& report,
                                  const char* subject) {
    for (const Hazard& hazard : report.hazards) {
      out.push_back({Severity::Error, "cucheck", subject, hazard.message});
    }
  };
  add_hazards(hermitian, "hermitian kernel");
  add_hazards(cg, "batch-CG kernel");
  if (!coalesce.clean()) {
    std::ostringstream os;
    os << "cucheck coalesce: " << coalesce.flagged << " of "
       << coalesce.instructions << " warp instructions over the "
       << coalesce.budget << "-line budget (worst " << coalesce.worst_lines
       << ")";
    out.push_back({Severity::Warning, "coalesce", "hermitian load", os.str()});
  }
  return out;
}

std::string PrecheckResult::summary() const {
  std::ostringstream os;
  os << "=== cucheck precheck: hermitian kernel ===\n"
     << hermitian.summary()
     << "=== cucheck precheck: batch-CG kernel ===\n"
     << cg.summary() << "=== cucheck precheck: coalescing lint ===\n"
     << coalesce.summary()
     << (clean() ? "cucheck precheck: PASS\n"
                 : "cucheck precheck: HAZARDS DETECTED\n");
  return os.str();
}

}  // namespace cumf::analysis
