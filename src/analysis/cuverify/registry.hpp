// The audited launch registry — every cusim kernel in every supported
// launch shape, as declared AccessPlans.
//
// tools/cuslint --all and the test suite iterate this list; a kernel (or a
// new launch configuration of an existing one) added here is automatically
// run through every cuverify pass by the CI static-verify job. Plans use
// deterministic synthetic column sets so the audit is reproducible.
#pragma once

#include <string>
#include <vector>

#include "analysis/cuverify/plan.hpp"

namespace cumf::analysis::cuverify {

/// One audited kernel × launch-config combination.
struct RegisteredLaunch {
  std::string name;
  AccessPlan plan;
};

/// The full registry, in a stable order.
std::vector<RegisteredLaunch> registered_launches();

}  // namespace cumf::analysis::cuverify
