#include "analysis/cuverify/registry.hpp"

#include <cstddef>

#include "cusim/kernels.hpp"
#include "gpusim/occupancy.hpp"

namespace cumf::analysis::cuverify {

namespace {

/// Deterministic scattered column set (sorted order is not required by the
/// kernels; a stride-37 scatter exercises the non-contiguous gather path).
std::vector<index_t> synthetic_cols(std::size_t nnz, std::size_t theta_rows) {
  std::vector<index_t> cols(nnz);
  for (std::size_t i = 0; i < nnz; ++i) {
    cols[i] = static_cast<index_t>((i * 37) % theta_rows);
  }
  return cols;
}

RegisteredLaunch hermitian_launch(std::size_t f, int tile, int bin,
                                  std::size_t nnz, std::size_t theta_rows) {
  cusim::HermitianPlanParams params;
  params.rows = 8;
  params.theta_rows = theta_rows;
  params.f = f;
  params.tile = tile;
  params.bin = bin;
  params.cols = synthetic_cols(nnz, theta_rows);
  params.regs_per_thread =
      gpusim::hermitian_regs_per_thread(static_cast<int>(f), tile);
  RegisteredLaunch launch;
  launch.name = "hermitian f=" + std::to_string(f) +
                " tile=" + std::to_string(tile) +
                " bin=" + std::to_string(bin) +
                " nnz=" + std::to_string(nnz);
  launch.plan = cusim::hermitian_kernel_plan(params);
  return launch;
}

RegisteredLaunch cg_launch(std::size_t batch, std::size_t f,
                           std::uint32_t fs) {
  RegisteredLaunch launch;
  launch.name = "cg batch=" + std::to_string(batch) +
                " f=" + std::to_string(f) + " fs=" + std::to_string(fs);
  launch.plan = cusim::cg_kernel_plan(batch, f, fs);
  return launch;
}

}  // namespace

std::vector<RegisteredLaunch> registered_launches() {
  std::vector<RegisteredLaunch> launches;
  // Paper-scale hermitian (f=100, T=10, BIN=32) plus the small shapes the
  // dynamic tests use, so static and dynamic coverage overlap.
  launches.push_back(hermitian_launch(16, 4, 8, 30, 64));
  launches.push_back(hermitian_launch(32, 8, 16, 40, 128));
  launches.push_back(hermitian_launch(100, 10, 32, 50, 256));
  launches.push_back(cg_launch(4, 12, 6));
  launches.push_back(cg_launch(2, 32, 8));
  return launches;
}

}  // namespace cumf::analysis::cuverify
