// FP16 value-range analysis — predicts, per dataset, whether the CG-FP16
// solver's half-precision A pack can overflow or flush, before any epoch
// runs (ISSUE pass 4).
//
// The dynamic ground truth is SystemSolver::fp16_pack_ok (core/solver.cpp):
// a pack fails when some |A_ij| overflows past half::max() = 65504, or a
// nonzero diagonal flushes to half-zero; each failure costs a discarded
// pack plus an FP32 re-solve and increments SolveStats::fp16_fallbacks.
//
// Interval propagation, from dataset bounds through the hermitian dataflow
// (core::hermitian_value_bounds) into the CG pack:
//
//   * Equilibrium model (the verdict). At convergence the factor model
//     reproduces the ratings: θ_uᵀθ_v ≈ r_uv, so per-coordinate factor
//     magnitude settles near √(r_max / f). The dominant A entry is then
//         A_ii ≈ n_max·r_max/f + λ·n_max,
//     which is what the pack actually sees from epoch ~1 onward. Verdict:
//     predicted_fp16_safe ⇔ a_eq_max ≤ 65504 and the diagonal's λ·n_min
//     floor stays above half's subnormal range (no flush-to-zero).
//   * Epoch-0 sound bound (reported, not the verdict). From the init
//     magnitude θ0 alone, |A_ij| ≤ n_max·θ0² + λ·n_max is a hard guarantee
//     for the very first pack — useful context, but far too loose a lens
//     for later epochs, where factor scale is set by the data.
//
// CG arithmetic itself runs in FP32 (linalg/cg.hpp); cg_matvec_abs_bound
// confirms the matvec intermediates fit float whenever A packs, so the A
// pack is the only half-range constraint.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/report.hpp"
#include "core/hermitian.hpp"
#include "sparse/csr.hpp"

namespace cumf::analysis::cuverify {

struct Fp16RangeOptions {
  std::size_t f = 100;         ///< factor dimension
  double lambda = 0.05;        ///< ALS regularization weight
  double theta0_absmax = 0.4;  ///< |θ| bound at init (AlsEngine: N(0, 0.1))
  std::uint32_t cg_fs = 6;     ///< CG iteration cap (context only)
};

struct Fp16RangeResult {
  HermitianValueBounds bounds;  ///< dataset envelope at equilibrium θ scale
  double factor_eq_abs = 0.0;   ///< √(r_max/f): per-coordinate factor scale
  double a_eq_max = 0.0;        ///< equilibrium max |A| entry (the verdict)
  double a_epoch0_max = 0.0;    ///< sound epoch-0 bound from theta0_absmax
  double cg_intermediate_abs = 0.0;  ///< matvec envelope (FP32, context)
  double diag_floor = 0.0;      ///< λ·n_min: smallest nonzero diagonal
  bool overflow_risk = false;   ///< a_eq_max > half::max()
  bool flush_risk = false;      ///< diag_floor below half subnormal range
  bool predicted_fp16_safe = true;  ///< the --metrics predicted_fp16_safe bit
  std::string explanation;      ///< one human-readable line per quantity
};

/// Propagates `r`'s rating/degree bounds through the hermitian + CG pack
/// dataflow. Pure arithmetic on dataset statistics — no factors, no epochs.
Fp16RangeResult analyze_fp16_range(const CsrMatrix& r,
                                   const Fp16RangeOptions& options);

/// Renders the result in the shared report format: predicted-unsafe is a
/// Warning when the CG-FP16 solver is actually selected (the pack will
/// fall back and waste work), Info otherwise (advisory only).
std::vector<Finding> fp16_findings(const Fp16RangeResult& result,
                                   bool cg_fp16_selected,
                                   const std::string& subject);

}  // namespace cumf::analysis::cuverify
