// cuverify — static analysis passes over kernel AccessPlans.
//
// The dynamic layer (cucheck) finds bugs by running instrumented kernels;
// cuverify proves the same properties from the declared AccessPlan alone,
// with zero kernel execution (tests pin this with cusim::launch_count()):
//
//   bounds      — affine interval analysis (with exact enumeration when a
//                 guard, gather, or thread table makes the closed form
//                 unsound) proves every access within its buffer's extent
//                 for the whole grid, or produces a first-fault witness in
//                 the dynamic memcheck's own vocabulary.
//   racecheck   — happens-before over barrier-delimited plan segments: a
//                 shared-memory byte written in a segment must not be
//                 touched by a different thread in the same segment. Same
//                 epoch semantics as the dynamic Checker, so every dynamic
//                 hazard is statically visible (the converse need not hold:
//                 the static plan models all fs CG iterations, a superset).
//   barrier     — a declared partial-participation barrier is the static
//                 face of cusim's BarrierDivergence.
//   coalescing  — the plan's global accesses are expanded into per-warp
//                 instruction line sets (plan_warp_instructions) and run
//                 through the *same* lint_load_trace budget as the dynamic
//                 lint; on the gpusim load schemes the static stream is
//                 instruction-for-instruction identical to the dynamic
//                 trace (see hermitian_load_plan + the differential tests).
//   bank        — shared accesses are grouped the same way; a warp
//                 instruction whose lanes hit one 4-byte-word bank with more
//                 than `max_bank_way` distinct words is flagged (same-word
//                 lanes broadcast and are free, as on hardware).
//   occupancy   — the launch is validated against gpusim device limits;
//                 a launch that cannot be scheduled at all is an error.
//
// Findings use the shared analysis/report.hpp severity scale and exit-code
// convention; `cumf_train --cuverify` and `tools/cuslint` both render them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/coalesce.hpp"
#include "analysis/cucheck.hpp"
#include "analysis/cuverify/plan.hpp"
#include "analysis/report.hpp"
#include "gpusim/device.hpp"
#include "gpusim/occupancy.hpp"
#include "gpusim/trace.hpp"

namespace cumf::analysis::cuverify {

struct VerifyOptions {
  gpusim::DeviceSpec device = gpusim::DeviceSpec::maxwell_titan_x();
  /// Same budget type (and default) as the dynamic coalescing lint, so the
  /// static and dynamic verdicts are comparable by construction.
  CoalesceBudget coalesce;
  /// Max distinct words per bank per warp instruction before a shared access
  /// is flagged (1 = conflict-free; 2 tolerates the occasional 2-way).
  unsigned max_bank_way = 2;
  /// Cap on exact-enumeration work per access (guarded/gathered/table
  /// indices). Exceeding it truncates the proof and emits a warning.
  std::uint64_t max_enumeration = 1ULL << 22;
};

/// A statically derived hazard, in the dynamic checker's vocabulary so the
/// differential tests can match kinds one-for-one.
struct StaticHazard {
  HazardKind kind = HazardKind::OutOfBounds;
  std::string message;
};

struct BoundsReport {
  std::uint64_t accesses_proved = 0;  ///< accesses shown in-bounds
  std::uint64_t points_flagged = 0;   ///< individual out-of-bounds points
  bool truncated = false;             ///< enumeration cap hit somewhere
  std::vector<StaticHazard> violations;  ///< first witness per access
};

struct RaceReport {
  std::uint64_t segments = 0;  ///< barrier-delimited epochs analyzed
  std::vector<StaticHazard> hazards;
};

/// Static prediction of the warp-level global-memory access shape.
struct CoalescePrediction {
  std::uint64_t instructions = 0;
  std::uint64_t line_accesses = 0;  ///< Σ distinct lines per instruction
  int worst_lines = 0;
  double mean_lines = 0.0;
  std::uint64_t flagged = 0;  ///< instructions over the lint budget
};

struct BankPrediction {
  std::uint64_t instructions = 0;  ///< shared-memory warp instructions
  unsigned worst_way = 0;          ///< max distinct words on one bank
  std::uint64_t conflicted = 0;    ///< instructions over max_bank_way
};

struct VerifyReport {
  std::string kernel;
  BoundsReport bounds;
  RaceReport races;
  std::vector<StaticHazard> barrier_hazards;
  CoalescePrediction coalesce;
  BankPrediction banks;
  gpusim::Occupancy occupancy;
  bool launchable = true;  ///< occupancy > 0 and shared fits the SM
  /// Everything above flattened into the shared cucheck/cuverify format.
  std::vector<Finding> findings;

  /// No error-severity findings (the exit-code-0 condition).
  bool clean() const noexcept { return count(findings, Severity::Error) == 0; }
  std::string summary() const;
};

/// Runs every static pass over one plan.
VerifyReport verify(const AccessPlan& plan, const VerifyOptions& options = {});

/// Expands the plan's *global* accesses for one block into per-warp
/// instruction line sets — the same record type the gpusim trace produces —
/// grouping lanes by (loop iteration, warp) and deduplicating lines, so the
/// stream is directly comparable (and, for the load schemes below, equal) to
/// gpusim::hermitian_load_trace output.
std::vector<gpusim::WarpInstruction> plan_warp_instructions(
    const AccessPlan& plan, unsigned block, const gpusim::DeviceSpec& dev);

/// Static mirror of gpusim::hermitian_load_trace: an AccessPlan whose warp
/// instructions reproduce scheme (a)/(b) of the paper's load phase for the
/// given column set. The differential tests assert per-instruction equality
/// against the dynamic trace and against gpusim cache counters.
AccessPlan hermitian_load_plan(const gpusim::DeviceSpec& dev,
                               const gpusim::TraceConfig& config,
                               std::span<const index_t> cols);

}  // namespace cumf::analysis::cuverify
