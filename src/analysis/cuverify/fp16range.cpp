#include "analysis/cuverify/fp16range.hpp"

#include <cmath>
#include <sstream>

#include "half/half.hpp"
#include "linalg/cg.hpp"

namespace cumf::analysis::cuverify {

Fp16RangeResult analyze_fp16_range(const CsrMatrix& r,
                                   const Fp16RangeOptions& options) {
  Fp16RangeResult out;
  const double f = static_cast<double>(options.f);
  const double half_max = static_cast<double>(static_cast<float>(half::max()));
  const double half_denorm =
      static_cast<double>(static_cast<float>(half::denorm_min()));

  // Equilibrium factor scale: θᵀθ ≈ r ⇒ |θ_i| ≈ √(r_max/f) per coordinate.
  const HermitianValueBounds raw = hermitian_value_bounds(r, 1.0, 0.0);
  out.factor_eq_abs = raw.rating_absmax > 0.0 && options.f > 0
                          ? std::sqrt(raw.rating_absmax / f)
                          : 0.0;
  out.bounds =
      hermitian_value_bounds(r, out.factor_eq_abs, options.lambda);
  out.a_eq_max = out.bounds.a_diag_max;

  // Epoch-0 sound bound: before any update the factors are still at init
  // scale, so the first pack is provably within n_max·θ0² + λ·n_max.
  const HermitianValueBounds epoch0 =
      hermitian_value_bounds(r, options.theta0_absmax, options.lambda);
  out.a_epoch0_max = epoch0.a_diag_max;

  out.diag_floor = out.bounds.a_diag_min;
  out.overflow_risk = out.a_eq_max > half_max;
  // fp16_pack_ok's flush test: a nonzero source diagonal rounding to
  // half-zero. The diagonal floor is λ·n_min; flag when it is not safely
  // above the subnormal threshold (where half rounds small values to 0).
  out.flush_risk =
      out.bounds.min_nnz > 0 && out.diag_floor < half_denorm;
  out.predicted_fp16_safe = !out.overflow_risk && !out.flush_risk;

  // CG runs in FP32; the matvec envelope is context showing the pack is the
  // only half-range constraint (float max ≈ 3.4e38 dwarfs this).
  out.cg_intermediate_abs =
      cg_matvec_abs_bound(options.f, out.a_eq_max, out.factor_eq_abs);

  std::ostringstream os;
  os << "cuverify fp16-range: r_max=" << out.bounds.rating_absmax
     << " nnz/row=[" << out.bounds.min_nnz << "," << out.bounds.max_nnz
     << "] f=" << options.f << " lambda=" << options.lambda
     << "; equilibrium |theta|~" << out.factor_eq_abs
     << " => max|A|~" << out.a_eq_max << " vs half::max=" << half_max
     << " (epoch-0 sound bound " << out.a_epoch0_max
     << "); diagonal floor lambda*n_min=" << out.diag_floor
     << "; predicted_fp16_safe="
     << (out.predicted_fp16_safe ? "true" : "false");
  if (out.overflow_risk) {
    os << " [A pack would overflow half range: expect fp16_fallbacks > 0"
       << " under the CG-FP16 solver]";
  }
  if (out.flush_risk) {
    os << " [diagonal may flush to half-zero: expect fp16_fallbacks > 0]";
  }
  out.explanation = os.str();
  return out;
}

std::vector<Finding> fp16_findings(const Fp16RangeResult& result,
                                   bool cg_fp16_selected,
                                   const std::string& subject) {
  std::vector<Finding> findings;
  const Severity severity = !result.predicted_fp16_safe && cg_fp16_selected
                                ? Severity::Warning
                                : Severity::Info;
  findings.push_back({severity, "fp16-range", subject, result.explanation});
  return findings;
}

}  // namespace cumf::analysis::cuverify
