#include "analysis/cuverify/verify.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

#include "common/check.hpp"

namespace cumf::analysis::cuverify {

namespace {

cusim::Dim3 thread_coords(std::uint32_t tid, const cusim::Dim3& block) {
  return cusim::Dim3{tid % block.x, (tid / block.x) % block.y,
                     tid / (block.x * block.y)};
}

void describe_thread(std::ostream& os, std::uint32_t tid,
                     const cusim::Dim3& block) {
  const cusim::Dim3 c = thread_coords(tid, block);
  os << "thread (" << c.x << ',' << c.y << ',' << c.z
     << ") of block (0,0,0)";
}

/// Iterates an access's (thread × loop) domain in the same order the kernel
/// executes it under cusim (thread-major, loops row-major), charging each
/// point against the shared enumeration budget. `fn(tid, iter)` returning
/// false stops early. Returns false iff the budget ran out.
template <typename Fn>
bool for_each_point(const AccessPlan& plan, const PlanAccess& access,
                    std::uint64_t& budget, Fn&& fn) {
  const std::uint32_t te = plan.access_thread_end(access);
  std::vector<std::uint32_t> iter(access.loops.size(), 0);
  for (std::uint32_t tid = access.thread_begin; tid < te; ++tid) {
    std::fill(iter.begin(), iter.end(), 0U);
    for (;;) {
      if (budget == 0) {
        return false;
      }
      --budget;
      bool live = true;
      if (access.guard.has_value()) {
        live = access.guard->eval(0, tid, iter) < access.guard_bound;
      }
      if (live && !fn(tid, iter)) {
        return true;
      }
      // Row-major advance (last loop fastest); empty loop set runs once.
      bool wrapped = false;
      std::size_t d = iter.size();
      for (;;) {
        if (d == 0) {
          wrapped = true;  // overflowed the outermost loop: domain done
          break;
        }
        --d;
        if (++iter[d] < std::max(1U, access.loops[d].extent)) {
          break;
        }
        iter[d] = 0;
      }
      if (wrapped) {
        break;
      }
    }
  }
  return true;
}

/// Resolves one enumerated point to a buffer element (post-gather).
std::int64_t resolve_element(const PlanAccess& access, unsigned block,
                             std::uint32_t tid,
                             std::span<const std::uint32_t> iter) {
  const std::int64_t v = access.index.eval(block, tid, iter);
  if (!access.gather.empty()) {
    CUMF_EXPECTS(access.index.block_coeff == 0,
                 "gathered plan accesses must be block-invariant");
    CUMF_EXPECTS(v >= 0 && static_cast<std::size_t>(v) < access.gather.size(),
                 "plan gather table does not cover the guarded domain");
    return access.gather[v];
  }
  return v;
}

std::string oob_message(const AccessPlan& plan, const PlanAccess& access,
                        const PlanBuffer& buf, std::uint32_t tid,
                        std::int64_t index, std::uint32_t fault_block) {
  std::ostringstream os;
  os << "cuverify bounds: out-of-bounds "
     << (access.kind == cusim::AccessKind::Read ? "read" : "write") << " of "
     << buf.elem_bytes << " bytes on "
     << (buf.space == cusim::MemSpace::Shared ? "shared" : "global")
     << " buffer '" << buf.name << "' at index " << index << " (extent "
     << buf.extent << ") by ";
  const cusim::Dim3 c = thread_coords(tid, plan.block);
  os << "thread (" << c.x << ',' << c.y << ',' << c.z << ") of block ("
     << fault_block << ",0,0)";
  if (access.label[0] != '\0') {
    os << " [" << access.label << ']';
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// Bounds pass
// ---------------------------------------------------------------------------

void bounds_pass(const AccessPlan& plan, const VerifyOptions& options,
                 BoundsReport& out) {
  const auto nblocks =
      static_cast<std::int64_t>(std::max(1U, plan.grid.count()));
  std::uint64_t budget = options.max_enumeration;

  for (const PlanSegment& segment : plan.segments) {
    for (const PlanAccess& access : segment.accesses) {
      CUMF_EXPECTS(access.buffer < plan.buffers.size(),
                   "plan access names an unknown buffer");
      const PlanBuffer& buf = plan.buffers[access.buffer];
      const auto extent = static_cast<std::int64_t>(buf.extent);
      const AffineForm& ix = access.index;
      // Extra element range contributed by blockIdx beyond block 0; an
      // affine index is extremal at one of the grid's two ends.
      const std::int64_t bspan = ix.block_coeff * (nblocks - 1);
      const std::int64_t block_lo = std::min<std::int64_t>(0, bspan);
      const std::int64_t block_hi = std::max<std::int64_t>(0, bspan);
      const std::uint32_t fault_block =
          bspan != 0 ? static_cast<std::uint32_t>(nblocks - 1) : 0;

      const bool needs_enumeration = access.guard.has_value() ||
                                     !access.gather.empty() ||
                                     !ix.thread_table.empty();
      if (!needs_enumeration && access.gather_extent == 0) {
        // Pure affine form: closed-form interval over the whole domain.
        std::int64_t lo = ix.base + block_lo;
        std::int64_t hi = ix.base + block_hi;
        const auto tb = static_cast<std::int64_t>(access.thread_begin);
        const auto tmax =
            static_cast<std::int64_t>(plan.access_thread_end(access)) - 1;
        if (tmax >= tb) {
          lo += ix.thread_coeff * (ix.thread_coeff >= 0 ? tb : tmax);
          hi += ix.thread_coeff * (ix.thread_coeff >= 0 ? tmax : tb);
        }
        for (std::size_t d = 0; d < access.loops.size(); ++d) {
          const std::int64_t coeff =
              d < ix.loop_coeffs.size() ? ix.loop_coeffs[d] : 0;
          const auto last =
              static_cast<std::int64_t>(access.loops[d].extent) - 1;
          lo += std::min<std::int64_t>(0, coeff * last);
          hi += std::max<std::int64_t>(0, coeff * last);
        }
        if (lo >= 0 && hi < extent) {
          ++out.accesses_proved;
          continue;  // proved without touching a single point
        }
      }

      // Exact enumeration: either the closed form needs it (guard / gather /
      // thread table) or it found a potential violation and we want the
      // first-fault witness in dynamic execution order.
      bool violated = false;
      std::uint64_t points = 0;
      const bool complete = for_each_point(
          plan, access, budget,
          [&](std::uint32_t tid, std::span<const std::uint32_t> iter) {
            std::int64_t e_lo = 0;
            std::int64_t e_hi = 0;
            if (access.gather.empty() && access.gather_extent > 0) {
              // Conservative gather: anywhere in [0, gather_extent).
              e_lo = 0;
              e_hi = access.gather_extent - 1;
            } else {
              const std::int64_t elem = resolve_element(access, 0, tid, iter);
              e_lo = elem + block_lo;
              e_hi = elem + block_hi;
            }
            if (e_lo < 0 || e_hi >= extent) {
              ++points;
              if (!violated) {
                violated = true;
                const std::int64_t witness = e_lo < 0 ? e_lo : e_hi;
                out.violations.push_back(
                    {HazardKind::OutOfBounds,
                     oob_message(plan, access, buf, tid, witness,
                                 e_lo < 0 ? 0 : fault_block)});
              }
            }
            return true;
          });
      out.truncated = out.truncated || !complete;
      out.points_flagged += points;
      if (!violated && complete) {
        ++out.accesses_proved;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Static racecheck
// ---------------------------------------------------------------------------

std::string race_message(const AccessPlan& plan, HazardKind kind,
                         const PlanBuffer& buf, std::uint64_t byte,
                         std::uint32_t first_tid, cusim::AccessKind first_kind,
                         const char* first_tag, std::uint32_t second_tid,
                         cusim::AccessKind second_kind,
                         const char* second_tag) {
  std::ostringstream os;
  os << "cuverify racecheck: " << analysis::to_string(kind)
     << " on shared buffer '" << second_tag << "' at offset 0x" << std::hex
     << byte << std::dec << " (" << buf.elem_bytes
     << " bytes) in block (0,0,0): ";
  describe_thread(os, first_tid, plan.block);
  os << (first_kind == cusim::AccessKind::Write ? " wrote, " : " read, ");
  describe_thread(os, second_tid, plan.block);
  os << (second_kind == cusim::AccessKind::Write ? " also wrote"
                                                 : " also read");
  os << " with no __syncthreads() between the accesses";
  (void)first_tag;
  return os.str();
}

void race_pass(const AccessPlan& plan, const VerifyOptions& options,
               RaceReport& out) {
  // Same per-byte epoch state machine as the dynamic Checker, driven by the
  // plan instead of an execution. Shared offsets are block-invariant, so one
  // symbolic block covers every block of the grid.
  struct ByteState {
    std::int64_t writer = -1;
    std::int64_t reader = -1;
    cusim::AccessKind writer_kind = cusim::AccessKind::Write;
    cusim::AccessKind reader_kind = cusim::AccessKind::Read;
    const char* writer_tag = "";
    const char* reader_tag = "";
  };
  std::vector<ByteState> bytes(plan.shared_bytes);
  std::vector<std::uint32_t> touched;
  // One hazard per (kind, tag pair) — the dynamic checker's dedup policy.
  std::set<std::tuple<int, std::string, std::string>> reported;
  std::uint64_t budget = options.max_enumeration;

  for (const PlanSegment& segment : plan.segments) {
    ++out.segments;
    for (const std::uint32_t b : touched) {
      bytes[b] = ByteState{};
    }
    touched.clear();

    for (const PlanAccess& access : segment.accesses) {
      const PlanBuffer& buf = plan.buffers[access.buffer];
      if (buf.space != cusim::MemSpace::Shared) {
        continue;  // racecheck models shared memory only (as dynamically)
      }
      const bool write = access.kind == cusim::AccessKind::Write;
      for_each_point(
          plan, access, budget,
          [&](std::uint32_t tid, std::span<const std::uint32_t> iter) {
            const std::int64_t elem = resolve_element(access, 0, tid, iter);
            if (elem < 0 ||
                static_cast<std::uint64_t>(elem) >= buf.extent) {
              return true;  // out of bounds: the bounds pass owns this
            }
            const std::uint64_t addr =
                buf.base_bytes +
                static_cast<std::uint64_t>(elem) * buf.elem_bytes;
            for (std::uint64_t byte = addr; byte < addr + buf.elem_bytes;
                 ++byte) {
              if (byte >= bytes.size()) {
                break;
              }
              ByteState& state = bytes[byte];
              if (state.writer < 0 && state.reader < 0) {
                touched.push_back(static_cast<std::uint32_t>(byte));
              }
              const auto stid = static_cast<std::int64_t>(tid);
              if (write) {
                if (state.writer >= 0 && state.writer != stid &&
                    reported
                        .insert({0, state.writer_tag, access.label})
                        .second) {
                  out.hazards.push_back(
                      {HazardKind::WriteWrite,
                       race_message(plan, HazardKind::WriteWrite, buf, byte,
                                    static_cast<std::uint32_t>(state.writer),
                                    cusim::AccessKind::Write,
                                    state.writer_tag, tid,
                                    cusim::AccessKind::Write, access.label)});
                }
                if (state.reader >= 0 && state.reader != stid &&
                    reported
                        .insert({1, state.reader_tag, access.label})
                        .second) {
                  out.hazards.push_back(
                      {HazardKind::ReadWrite,
                       race_message(plan, HazardKind::ReadWrite, buf, byte,
                                    static_cast<std::uint32_t>(state.reader),
                                    cusim::AccessKind::Read, state.reader_tag,
                                    tid, cusim::AccessKind::Write,
                                    access.label)});
                }
                state.writer = stid;
                state.writer_tag = access.label;
              } else {
                if (state.writer >= 0 && state.writer != stid &&
                    reported
                        .insert({1, state.writer_tag, access.label})
                        .second) {
                  out.hazards.push_back(
                      {HazardKind::ReadWrite,
                       race_message(plan, HazardKind::ReadWrite, buf, byte,
                                    static_cast<std::uint32_t>(state.writer),
                                    cusim::AccessKind::Write,
                                    state.writer_tag, tid,
                                    cusim::AccessKind::Read, access.label)});
                }
                state.reader = stid;
                state.reader_tag = access.label;
              }
            }
            return true;
          });
    }
  }
}

// ---------------------------------------------------------------------------
// Barrier pass
// ---------------------------------------------------------------------------

void barrier_pass(const AccessPlan& plan, std::vector<StaticHazard>& out) {
  const std::uint32_t threads = plan.threads();
  for (std::size_t s = 0; s + 1 < plan.segments.size(); ++s) {
    const PlanSegment& segment = plan.segments[s];
    const std::uint32_t bb = segment.barrier_thread_begin;
    const std::uint32_t be =
        segment.barrier_thread_end == 0 ? threads : segment.barrier_thread_end;
    if (bb == 0 && be == threads) {
      continue;
    }
    const std::uint32_t reached = be > bb ? be - bb : 0;
    std::ostringstream os;
    os << "cuverify barrier: barrier divergence in block (0,0,0): " << reached
       << " of " << threads << " threads reached __syncthreads(), "
       << (threads - reached) << " still pending (segment " << s << ')';
    out.push_back({HazardKind::BarrierDivergence, os.str()});
  }
}

// ---------------------------------------------------------------------------
// Warp-instruction expansion (coalescing + bank conflicts)
// ---------------------------------------------------------------------------

/// Expands one access for one block into per-warp lane address lists,
/// iterating (loop assignment row-major, warp ascending) — the order the
/// gpusim trace generator emits instructions in.
template <typename Sink>
void expand_access(const AccessPlan& plan, const PlanAccess& access,
                   unsigned block, Sink&& sink) {
  const PlanBuffer& buf = plan.buffers[access.buffer];
  const std::uint32_t tb = access.thread_begin;
  const std::uint32_t te = plan.access_thread_end(access);
  if (te <= tb) {
    return;
  }
  std::uint64_t domain = 1;
  for (const LoopDim& loop : access.loops) {
    domain *= std::max(1U, loop.extent);
  }
  std::vector<std::uint32_t> iter(access.loops.size(), 0);
  for (std::uint64_t point = 0; point < domain; ++point) {
    // Decode row-major loop assignment.
    std::uint64_t rest = point;
    for (std::size_t d = access.loops.size(); d > 0; --d) {
      const std::uint32_t extent = std::max(1U, access.loops[d - 1].extent);
      iter[d - 1] = static_cast<std::uint32_t>(rest % extent);
      rest /= extent;
    }
    for (std::uint32_t warp = tb / 32; warp * 32 < te; ++warp) {
      std::vector<std::uint64_t> addrs;
      const std::uint32_t lane_begin = std::max(tb, warp * 32);
      const std::uint32_t lane_end = std::min(te, warp * 32 + 32);
      for (std::uint32_t tid = lane_begin; tid < lane_end; ++tid) {
        if (access.guard.has_value() &&
            access.guard->eval(block, tid, iter) >= access.guard_bound) {
          continue;
        }
        if (access.gather.empty() && access.gather_extent > 0) {
          // Conservative gather: charge the worst case, one distinct
          // location per lane.
          addrs.push_back(buf.base_bytes +
                          static_cast<std::uint64_t>(tid) * 128);
          continue;
        }
        const std::int64_t elem = resolve_element(access, block, tid, iter);
        if (elem < 0 || static_cast<std::uint64_t>(elem) >= buf.extent) {
          continue;  // bounds pass reports it; don't poison the prediction
        }
        addrs.push_back(buf.base_bytes +
                        static_cast<std::uint64_t>(elem) * buf.elem_bytes);
      }
      if (!addrs.empty()) {
        sink(addrs);
      }
    }
  }
}

}  // namespace

std::vector<gpusim::WarpInstruction> plan_warp_instructions(
    const AccessPlan& plan, unsigned block, const gpusim::DeviceSpec& dev) {
  std::vector<gpusim::WarpInstruction> stream;
  const auto line = static_cast<std::uint64_t>(dev.cache_line_bytes);
  for (const PlanSegment& segment : plan.segments) {
    for (const PlanAccess& access : segment.accesses) {
      if (plan.buffers[access.buffer].space != cusim::MemSpace::Global) {
        continue;
      }
      expand_access(plan, access, block,
                    [&](const std::vector<std::uint64_t>& addrs) {
                      gpusim::WarpInstruction inst;
                      inst.lines.reserve(addrs.size());
                      for (const std::uint64_t a : addrs) {
                        inst.lines.push_back(a / line * line);
                      }
                      std::sort(inst.lines.begin(), inst.lines.end());
                      inst.lines.erase(
                          std::unique(inst.lines.begin(), inst.lines.end()),
                          inst.lines.end());
                      stream.push_back(std::move(inst));
                    });
    }
  }
  return stream;
}

namespace {

void coalesce_pass(const AccessPlan& plan, const VerifyOptions& options,
                   CoalescePrediction& out) {
  const std::vector<gpusim::WarpInstruction> stream =
      plan_warp_instructions(plan, 0, options.device);
  for (const gpusim::WarpInstruction& inst : stream) {
    out.line_accesses += inst.lines.size();
  }
  const std::vector<std::vector<gpusim::WarpInstruction>> blocks = {stream};
  const CoalesceReport lint = lint_load_trace(blocks, options.coalesce);
  out.instructions = lint.instructions;
  out.worst_lines = lint.worst_lines;
  out.mean_lines = lint.mean_lines;
  out.flagged = lint.flagged;
}

void bank_pass(const AccessPlan& plan, const VerifyOptions& options,
               BankPrediction& out) {
  for (const PlanSegment& segment : plan.segments) {
    for (const PlanAccess& access : segment.accesses) {
      const PlanBuffer& buf = plan.buffers[access.buffer];
      if (buf.space != cusim::MemSpace::Shared) {
        continue;
      }
      expand_access(
          plan, access, 0, [&](const std::vector<std::uint64_t>& addrs) {
            ++out.instructions;
            // bank(word) = (byte/4) mod 32; lanes hitting the same *word*
            // broadcast for free, so conflicts count distinct words per
            // bank.
            std::map<std::uint32_t, std::set<std::uint64_t>> banks;
            for (const std::uint64_t a : addrs) {
              for (std::uint64_t w = a / 4;
                   w <= (a + buf.elem_bytes - 1) / 4; ++w) {
                banks[static_cast<std::uint32_t>(w % 32)].insert(w);
              }
            }
            unsigned way = 0;
            for (const auto& [bank, words] : banks) {
              way = std::max(way, static_cast<unsigned>(words.size()));
            }
            out.worst_way = std::max(out.worst_way, way);
            if (way > options.max_bank_way) {
              ++out.conflicted;
            }
          });
    }
  }
}

}  // namespace

VerifyReport verify(const AccessPlan& plan, const VerifyOptions& options) {
  CUMF_EXPECTS(!plan.segments.empty(), "a plan needs at least one segment");
  CUMF_EXPECTS(plan.block.count() > 0 && plan.grid.count() > 0,
               "empty launch geometry");
  VerifyReport report;
  report.kernel = plan.kernel;

  bounds_pass(plan, options, report.bounds);
  race_pass(plan, options, report.races);
  barrier_pass(plan, report.barrier_hazards);
  coalesce_pass(plan, options, report.coalesce);
  bank_pass(plan, options, report.banks);

  // Hardware schedules whole warps: a partial last warp still occupies a
  // full warp's worth of scheduler slots, so the occupancy model sees the
  // thread count rounded up to a warp multiple.
  const unsigned warp = static_cast<unsigned>(options.device.warp_size);
  const unsigned sched_threads = (plan.threads() + warp - 1) / warp * warp;
  const gpusim::KernelResources resources{
      plan.regs_per_thread, static_cast<int>(sched_threads),
      static_cast<int>(plan.shared_bytes)};
  report.occupancy = gpusim::compute_occupancy(options.device, resources);
  report.launchable =
      report.occupancy.blocks_per_sm > 0 &&
      static_cast<int>(plan.shared_bytes) <= options.device.smem_per_sm_bytes;

  // Flatten into the shared finding format.
  for (const StaticHazard& h : report.bounds.violations) {
    report.findings.push_back(
        {Severity::Error, "bounds", report.kernel, h.message});
  }
  for (const StaticHazard& h : report.races.hazards) {
    report.findings.push_back(
        {Severity::Error, "racecheck", report.kernel, h.message});
  }
  for (const StaticHazard& h : report.barrier_hazards) {
    report.findings.push_back(
        {Severity::Error, "barrier", report.kernel, h.message});
  }
  if (report.bounds.truncated) {
    report.findings.push_back(
        {Severity::Warning, "bounds", report.kernel,
         "enumeration budget exhausted; bounds proof is incomplete"});
  }
  if (report.coalesce.flagged > 0) {
    std::ostringstream os;
    os << report.coalesce.flagged << " of " << report.coalesce.instructions
       << " warp instructions touch more than "
       << options.coalesce.max_lines_per_instruction
       << " cache lines (worst " << report.coalesce.worst_lines
       << "); non-coalesced traffic relies on cache hits";
    report.findings.push_back(
        {Severity::Warning, "coalesce", report.kernel, os.str()});
  }
  if (report.banks.conflicted > 0) {
    std::ostringstream os;
    os << report.banks.conflicted << " of " << report.banks.instructions
       << " shared-memory warp instructions exceed " << options.max_bank_way
       << "-way bank conflicts (worst " << report.banks.worst_way << "-way)";
    report.findings.push_back(
        {Severity::Warning, "bankconflict", report.kernel, os.str()});
  }
  if (!report.launchable) {
    std::ostringstream os;
    os << "launch impossible on " << options.device.name << ": block of "
       << plan.threads() << " threads with " << plan.shared_bytes
       << " bytes shared and " << plan.regs_per_thread
       << " regs/thread fits zero blocks per SM";
    report.findings.push_back(
        {Severity::Error, "occupancy", report.kernel, os.str()});
  } else {
    std::ostringstream os;
    os << "occupancy " << static_cast<int>(report.occupancy.fraction * 100)
       << "% (" << report.occupancy.blocks_per_sm
       << " blocks/SM, limited by "
       << gpusim::to_string(report.occupancy.limited_by) << ") on "
       << options.device.name;
    report.findings.push_back(
        {Severity::Info, "occupancy", report.kernel, os.str()});
  }
  return report;
}

std::string VerifyReport::summary() const {
  std::ostringstream os;
  const std::size_t errors = count(findings, Severity::Error);
  const std::size_t warnings = count(findings, Severity::Warning);
  os << "cuverify " << kernel << ": " << (clean() ? "PASS" : "FAIL") << " ("
     << errors << " errors, " << warnings << " warnings)\n";
  os << "  bounds: " << bounds.accesses_proved << " accesses proved, "
     << bounds.violations.size() << " violating"
     << (bounds.truncated ? " (truncated)" : "") << '\n';
  os << "  racecheck: " << races.segments << " segments, "
     << races.hazards.size() << " hazards\n";
  os << "  coalesce: " << coalesce.instructions << " instructions, worst "
     << coalesce.worst_lines << " lines, " << coalesce.flagged
     << " over budget\n";
  os << "  bank: " << banks.instructions << " instructions, worst "
     << banks.worst_way << "-way, " << banks.conflicted << " conflicted\n";
  for (const Finding& f : findings) {
    os << "  " << analysis::to_string(f.severity) << " [" << f.pass << "] "
       << f.message << '\n';
  }
  return os.str();
}

AccessPlan hermitian_load_plan(const gpusim::DeviceSpec& dev,
                               const gpusim::TraceConfig& config,
                               std::span<const index_t> cols) {
  CUMF_EXPECTS(config.f > 0 && config.bin > 0, "f and BIN must be positive");
  CUMF_EXPECTS(config.threads_per_block % dev.warp_size == 0,
               "block must be whole warps");
  const auto f = static_cast<std::uint64_t>(config.f);
  const auto ff = static_cast<std::int64_t>(f);
  const int warp = dev.warp_size;

  index_t max_col = 0;
  for (const index_t c : cols) {
    max_col = std::max(max_col, c);
  }

  AccessPlan plan;
  plan.kernel = config.coalesced ? "hermitian_load(coalesced)"
                                 : "hermitian_load(noncoalesced)";
  plan.grid = cusim::Dim3{1, 1, 1};
  plan.block = cusim::Dim3{
      config.coalesced ? static_cast<unsigned>(warp)
                       : static_cast<unsigned>(config.threads_per_block),
      1, 1};
  plan.buffers = {{"theta", cusim::MemSpace::Global,
                   (static_cast<std::uint64_t>(max_col) + 1) * f,
                   sizeof(real_t), config.theta_base}};
  plan.segments.emplace_back();
  PlanSegment& segment = plan.segments.back();

  for (std::size_t batch = 0; batch < cols.size();
       batch += static_cast<std::size_t>(config.bin)) {
    const std::size_t len = std::min(cols.size() - batch,
                                     static_cast<std::size_t>(config.bin));
    PlanAccess access;
    access.buffer = 0;
    access.kind = cusim::AccessKind::Read;
    access.label = config.coalesced ? "theta (coalesced stage)"
                                    : "theta (own-column stage)";
    if (config.coalesced) {
      // Scheme (a): one warp walks column after column; chunk ⟨c, k⟩ covers
      // floats [k·warp, k·warp+warp) of column cols[batch+c].
      const auto chunks =
          static_cast<std::uint32_t>((f + warp - 1) / static_cast<std::uint64_t>(warp));
      access.loops = {{static_cast<std::uint32_t>(len), "c"},
                      {chunks, "k"}};
      access.index.thread_coeff = 1;
      access.index.loop_coeffs = {static_cast<std::int64_t>(chunks) * warp,
                                  warp};
      AffineForm guard;
      guard.thread_coeff = 1;
      guard.loop_coeffs = {0, warp};
      access.guard = guard;
      access.guard_bound = ff;
      access.gather.resize(len * chunks * static_cast<std::size_t>(warp));
      const std::uint64_t per_col = static_cast<std::uint64_t>(chunks) * warp;
      for (std::size_t v = 0; v < access.gather.size(); ++v) {
        const std::size_t c = v / per_col;
        const auto elem = static_cast<std::int64_t>(v % per_col);
        access.gather[v] =
            static_cast<std::int64_t>(cols[batch + c]) * ff + elem;
      }
    } else {
      // Scheme (b): each thread owns (a segment of) one column; instruction
      // e advances every thread one element down its own column.
      const int threads = config.threads_per_block;
      const int segments_n =
          std::max(1, threads / static_cast<int>(len));
      const auto seg_len =
          (f + static_cast<std::uint64_t>(segments_n) - 1) /
          static_cast<std::uint64_t>(segments_n);
      access.loops = {{static_cast<std::uint32_t>(seg_len), "e"}};
      access.index.loop_coeffs = {1};
      access.index.thread_table.resize(threads);
      AffineForm guard;
      guard.loop_coeffs = {1};
      guard.thread_table.resize(threads);
      for (int t = 0; t < threads; ++t) {
        const std::size_t ci = static_cast<std::size_t>(t) % len;
        const auto seg = static_cast<std::uint64_t>(t) / len %
                         static_cast<std::uint64_t>(segments_n);
        const auto seg_base = static_cast<std::int64_t>(seg * seg_len);
        access.index.thread_table[t] =
            static_cast<std::int64_t>(cols[batch + ci]) * ff + seg_base;
        guard.thread_table[t] = seg_base;
      }
      access.guard = guard;
      access.guard_bound = ff;
    }
    segment.accesses.push_back(std::move(access));
  }
  return plan;
}

}  // namespace cumf::analysis::cuverify
