// cuverify AccessPlan IR — a symbolic description of a kernel launch.
//
// Each cusim kernel declares, alongside its coroutine lambda, an AccessPlan:
// the launch geometry, the buffers it touches, and — per barrier-delimited
// segment — every memory access as an affine index expression over
// (block, thread, loop) variables. The pass pipeline in
// analysis/cuverify/verify.hpp consumes plans to prove bounds, predict
// coalescing and shared-memory bank conflicts, and detect barrier races
// *without executing a single kernel* (the cusim launch counter stays at
// zero; tests assert it).
//
// The index language is deliberately small but exact for the cuMF kernels:
//
//   index(b, t, k0, k1, ...) = base
//                            + block_coeff  · b
//                            + thread_term(t)              (coeff or table)
//                            + Σ_d loop_coeffs[d] · k_d
//
// with two escape hatches that keep data-dependent patterns analyzable:
//   * a per-thread value table (`thread_table`) for non-affine thread maps
//     like the hermitian kernel's triangular tile enumeration, computed on
//     the host at plan-build time;
//   * an optional gather map applied to the composed value — exact when the
//     indirection data (the CSR column ids) is available at build time, or
//     a conservative "somewhere in [0, gather_extent)" interval when only
//     the range is known.
// A guard expression (same variable set, `guard < guard_bound`) models loop
// trip bounds like `idx < len·f` in strided staging loops.
//
// This header is dependency-light (cusim types only) so cusim/kernels.cpp
// can build plans without a cusim → analysis link cycle; the passes
// themselves live in cumf_analysis.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "cusim/cusim.hpp"

namespace cumf::analysis::cuverify {

/// One loop dimension of an access's iteration domain: the loop variable
/// ranges over [0, extent).
struct LoopDim {
  std::uint32_t extent = 1;
  const char* name = "i";
};

/// An affine form over (block, thread, loop...) variables; see the file
/// comment for the composition rule.
struct AffineForm {
  std::int64_t base = 0;
  std::int64_t block_coeff = 0;   ///< contribution block_coeff · blockIdx.x
  std::int64_t thread_coeff = 0;  ///< contribution thread_coeff · tid
  /// Non-affine per-thread contribution (overrides thread_coeff when
  /// non-empty); indexed by linear tid, must cover every participating
  /// thread of the access.
  std::vector<std::int64_t> thread_table;
  std::vector<std::int64_t> loop_coeffs;  ///< one per LoopDim (missing ⇒ 0)

  std::int64_t thread_term(std::uint32_t tid) const {
    if (thread_table.empty()) {
      return thread_coeff * static_cast<std::int64_t>(tid);
    }
    CUMF_EXPECTS(tid < thread_table.size(),
                 "plan thread_table does not cover a participating thread");
    return thread_table[tid];
  }

  std::int64_t eval(std::uint32_t block, std::uint32_t tid,
                    std::span<const std::uint32_t> iter) const {
    std::int64_t v = base + block_coeff * static_cast<std::int64_t>(block) +
                     thread_term(tid);
    for (std::size_t d = 0; d < loop_coeffs.size(); ++d) {
      v += loop_coeffs[d] *
           static_cast<std::int64_t>(d < iter.size() ? iter[d] : 0U);
    }
    return v;
  }
};

/// One declared memory access (or family of accesses, over its iteration
/// domain). A read-modify-write is declared as two accesses (read + write)
/// with the same index, matching what the checked spans observe dynamically.
struct PlanAccess {
  std::uint32_t buffer = 0;  ///< index into AccessPlan::buffers
  cusim::AccessKind kind = cusim::AccessKind::Read;
  /// Participating threads: linear tids in [thread_begin, thread_end);
  /// thread_end == 0 means the whole block.
  std::uint32_t thread_begin = 0;
  std::uint32_t thread_end = 0;
  std::vector<LoopDim> loops;  ///< iteration domain beyond the thread
  AffineForm index;            ///< element index (pre-gather)
  /// Optional exact gather: element = gather[index]. Built from host data
  /// (e.g. CSR column ids), so the pass sees the true target addresses.
  std::vector<std::int64_t> gather;
  /// Conservative gather: with `gather` empty and gather_extent > 0, the
  /// element lands somewhere in [0, gather_extent) — enough for bounds, and
  /// worst-case for coalescing.
  std::int64_t gather_extent = 0;
  /// Optional guard: the access happens only when guard(vars) < guard_bound
  /// (models data-dependent trip counts like `idx < len·f`).
  std::optional<AffineForm> guard;
  std::int64_t guard_bound = 0;
  const char* label = "";  ///< source-level name for findings
};

/// One buffer the kernel touches.
struct PlanBuffer {
  const char* name = "";
  cusim::MemSpace space = cusim::MemSpace::Shared;
  std::uint64_t extent = 0;      ///< elements
  std::uint32_t elem_bytes = 4;  ///< sizeof the element type
  /// Shared buffers: byte offset of element 0 within the block's dynamic
  /// shared allocation (drives bank-conflict and racecheck addressing).
  /// Global buffers: synthetic base byte address (drives line analysis).
  std::uint64_t base_bytes = 0;
};

/// Everything between two consecutive __syncthreads() (or kernel entry/exit).
struct PlanSegment {
  std::vector<PlanAccess> accesses;
  /// Threads reaching the __syncthreads() that terminates this segment:
  /// [barrier_thread_begin, barrier_thread_end), end == 0 meaning the whole
  /// block. Ignored for the final segment (which ends at kernel exit). A
  /// proper subset is a declared barrier-divergence bug; the barrier pass
  /// turns it into an error finding.
  std::uint32_t barrier_thread_begin = 0;
  std::uint32_t barrier_thread_end = 0;
};

struct AccessPlan {
  std::string kernel;  ///< kernel name (optionally with config summary)
  cusim::Dim3 grid;
  cusim::Dim3 block;
  std::size_t shared_bytes = 0;
  /// Declared register demand per thread (occupancy pass input).
  int regs_per_thread = 32;
  std::vector<PlanBuffer> buffers;
  std::vector<PlanSegment> segments;

  std::uint32_t threads() const noexcept { return block.count(); }

  /// Resolved participation range of an access within this plan's block.
  std::uint32_t access_thread_end(const PlanAccess& a) const noexcept {
    return a.thread_end == 0 ? threads() : a.thread_end;
  }
};

}  // namespace cumf::analysis::cuverify
