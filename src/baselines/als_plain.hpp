// GPU-ALS — the paper's prior state of the art ([31], HPDC'16), used as the
// "before" line in Fig. 1 and Fig. 6 / Table IV.
//
// Algorithmically identical ALS, but with none of this paper's contributions:
// exact batched LU solve (no approximate CG, no FP16), coalesced loads, and
// no aggressive register tiling. The factory returns a configured AlsEngine
// (so convergence is genuinely computed) together with the kernel
// configuration the cost model uses to charge its slower epochs.
#pragma once

#include <memory>

#include "core/als.hpp"
#include "core/kernel_stats.hpp"
#include "sparse/coo.hpp"

namespace cumf {

struct GpuAlsBaseline {
  std::unique_ptr<AlsEngine> engine;
  AlsKernelConfig kernel_config;  ///< coalesced, LU, no register tiling
};

/// cuMF-ALS (this paper): tiled hermitian + non-coalesced L1 loads +
/// truncated CG (optionally FP16).
AlsKernelConfig cumfals_kernel_config(int f, SolverKind solver,
                                      std::uint32_t fs = 6);

/// GPU-ALS [31]: the same f/λ but the unoptimized kernel configuration.
GpuAlsBaseline make_gpu_als_baseline(const RatingsCoo& train, std::size_t f,
                                     real_t lambda, std::uint64_t seed = 1);

}  // namespace cumf
