#include "baselines/ccd.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace cumf {

CcdEngine::CcdEngine(const RatingsCoo& train, const CcdOptions& options)
    : options_(options) {
  CUMF_EXPECTS(options_.f > 0, "latent dimension must be positive");
  CUMF_EXPECTS(options_.lambda > 0, "CCD++ needs lambda > 0");
  CUMF_EXPECTS(options_.inner_iters >= 1, "need at least one inner pass");

  RatingsCoo canonical = train;
  canonical.sort_and_dedup();
  r_ = CsrMatrix::from_coo(canonical);
  rt_ = r_.transposed();

  // Map each (v, u) position of the transpose back to its (u, v) position
  // in the row view, via binary search within row u's sorted columns.
  rt_to_r_.resize(r_.nnz());
  for (index_t v = 0; v < rt_.rows(); ++v) {
    const auto users = rt_.row_cols(v);
    for (std::size_t k = 0; k < users.size(); ++k) {
      const index_t u = users[k];
      const auto cols = r_.row_cols(u);
      const auto it = std::lower_bound(cols.begin(), cols.end(), v);
      CUMF_ENSURES(it != cols.end() && *it == v, "transpose mapping broken");
      rt_to_r_[rt_.row_ptr()[v] + k] =
          r_.row_ptr()[u] + static_cast<nnz_t>(it - cols.begin());
    }
  }

  // CCD++ convention: start X at zero, Θ small random — residual equals the
  // ratings themselves, and the first sweep builds the model rank by rank.
  x_ = Matrix(r_.rows(), options_.f, real_t{0});
  theta_ = Matrix(r_.cols(), options_.f);
  Rng rng(options_.seed);
  for (std::size_t v = 0; v < theta_.rows(); ++v) {
    for (std::size_t k = 0; k < options_.f; ++k) {
      theta_(v, k) = static_cast<real_t>(rng.normal(0.0, 0.1));
    }
  }
  res_.assign(r_.values().begin(), r_.values().end());
}

void CcdEngine::update_dimension(std::size_t k) {
  // Step 1: fold dimension k back into the residual: r̂ += x_uk·θ_vk.
  for (index_t u = 0; u < r_.rows(); ++u) {
    const real_t xuk = x_(u, k);
    const auto cols = r_.row_cols(u);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      res_[r_.row_ptr()[u] + i] += xuk * theta_(cols[i], k);
    }
  }

  // Step 2: alternating closed-form rank-1 updates.
  for (int t = 0; t < options_.inner_iters; ++t) {
    for (index_t u = 0; u < r_.rows(); ++u) {
      const auto cols = r_.row_cols(u);
      if (cols.empty()) {
        continue;
      }
      double num = 0.0;
      double den = static_cast<double>(options_.lambda);
      for (std::size_t i = 0; i < cols.size(); ++i) {
        const double tv = theta_(cols[i], k);
        num += static_cast<double>(res_[r_.row_ptr()[u] + i]) * tv;
        den += tv * tv;
      }
      x_(u, k) = static_cast<real_t>(num / den);
    }
    for (index_t v = 0; v < rt_.rows(); ++v) {
      const auto users = rt_.row_cols(v);
      if (users.empty()) {
        continue;
      }
      double num = 0.0;
      double den = static_cast<double>(options_.lambda);
      for (std::size_t i = 0; i < users.size(); ++i) {
        const double xu = x_(users[i], k);
        num += static_cast<double>(res_[rt_to_r_[rt_.row_ptr()[v] + i]]) * xu;
        den += xu * xu;
      }
      theta_(v, k) = static_cast<real_t>(num / den);
    }
  }

  // Step 3: subtract the refreshed rank-1 term.
  for (index_t u = 0; u < r_.rows(); ++u) {
    const real_t xuk = x_(u, k);
    const auto cols = r_.row_cols(u);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      res_[r_.row_ptr()[u] + i] -= xuk * theta_(cols[i], k);
    }
  }
}

void CcdEngine::run_epoch() {
  for (std::size_t k = 0; k < options_.f; ++k) {
    update_dimension(k);
  }
  ++epochs_;
}

double ccd_gpu_epoch_seconds(const gpusim::DeviceSpec& dev, double nnz,
                             int f) {
  CUMF_EXPECTS(nnz > 0 && f > 0, "shape must be non-empty");
  // Per rank-1 sweep the fused kernel streams the residual and the two
  // factor columns: ~12 bytes per non-zero after fusion (read residual +
  // factor entries, write residual back), at streaming efficiency. The
  // compute side is trivial (≈12 FLOPs per non-zero per dimension).
  const double bytes_per_dim = nnz * 12.0;
  const double flops_per_dim = nnz * 12.0;
  const double t_mem = bytes_per_dim / (dev.dram_bw * 0.80);
  const double t_compute =
      flops_per_dim / (dev.peak_flops * dev.compute_efficiency);
  return f * std::max(t_mem, t_compute);
}

}  // namespace cumf
