#include "baselines/sgd_common.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace cumf {

SgdModel make_sgd_model(index_t m, index_t n, const SgdOptions& options,
                        double rating_mean) {
  CUMF_EXPECTS(options.f > 0, "latent dimension must be positive");
  CUMF_EXPECTS(options.lr > 0, "learning rate must be positive");
  SgdModel model;
  model.x = Matrix(m, options.f);
  model.theta = Matrix(n, options.f);
  if (options.schedule == SgdSchedule::AdaGrad) {
    model.x_gsq.assign(m, real_t{0});
    model.theta_gsq.assign(n, real_t{0});
  }
  Rng rng(options.seed);
  // Cold uniform init in [0, sqrt(mean/f)], as the SGD implementations the
  // paper compares against use (LIBMF-style): the initial prediction sits at
  // ~mean/4, so SGD must walk up to the rating scale — unlike ALS, whose
  // first half-sweep already solves the normal equations exactly.
  const double base = std::sqrt(std::max(0.1, std::abs(rating_mean)) /
                                static_cast<double>(options.f));
  for (auto& matrix : {&model.x, &model.theta}) {
    for (std::size_t i = 0; i < matrix->rows(); ++i) {
      for (std::size_t k = 0; k < matrix->cols(); ++k) {
        (*matrix)(i, k) = static_cast<real_t>(base * rng.uniform());
      }
    }
  }
  return model;
}

}  // namespace cumf
