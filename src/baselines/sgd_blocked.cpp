#include "baselines/sgd_blocked.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "prof/prof.hpp"

namespace cumf {

namespace {
index_t grid_dim(const RatingsCoo& train, int workers) {
  CUMF_EXPECTS(workers >= 1, "need at least one worker");
  // LIBMF uses more blocks than workers to reduce scheduler contention;
  // a square grid of exactly `workers` per side is the DSGD layout and is
  // all we need for correctness and the schedule invariant.
  const auto cap = std::min(train.rows(), train.cols());
  return std::min<index_t>(static_cast<index_t>(workers), cap);
}
}  // namespace

BlockedSgd::BlockedSgd(const RatingsCoo& train, const SgdOptions& options)
    : options_(options),
      grid_(train, grid_dim(train, options.workers),
            grid_dim(train, options.workers)),
      model_(make_sgd_model(train.rows(), train.cols(), options,
                            train.mean_value())),
      pool_(static_cast<std::size_t>(options.workers)) {
  CUMF_EXPECTS(train.nnz() > 0, "cannot train on an empty matrix");
}

void BlockedSgd::run_epoch() {
  CUMF_PROF_SCOPE("sgd_blocked_epoch", "sgd");
  const real_t alpha = sgd_alpha(options_, epochs_);
  const auto schedule = grid_.diagonal_schedule();

  for (std::size_t round = 0; round < schedule.size(); ++round) {
    const auto& blocks = schedule[round];
    // Blocks within a round have disjoint row/col ranges: safe in parallel.
    pool_.parallel_for(
        blocks.size(),
        [&](std::size_t begin, std::size_t end, std::size_t) {
          for (std::size_t b = begin; b < end; ++b) {
            const auto& entries = grid_.block(blocks[b].i, blocks[b].j);
            // Shuffle within the block per epoch. Seed from the block's
            // grid coordinates and the epoch — never from the worker id,
            // which is schedule-dependent under the guided parallel_for and
            // would break run-to-run determinism.
            std::vector<std::uint32_t> order(entries.size());
            for (std::size_t i = 0; i < order.size(); ++i) {
              order[i] = static_cast<std::uint32_t>(i);
            }
            Rng rng(options_.seed + 7919ull * (blocks[b].i + 1ull) +
                    104729ull * (blocks[b].j + 1ull) +
                    31ull * static_cast<std::uint64_t>(epochs_));
            for (std::size_t i = order.size(); i > 1; --i) {
              std::swap(order[i - 1], order[rng.uniform_index(i)]);
            }
            for (const std::uint32_t idx : order) {
              sgd_apply(model_, entries[idx], options_, alpha);
            }
          }
        });
  }
  ++epochs_;
}

}  // namespace cumf
