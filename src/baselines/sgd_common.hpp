// Shared pieces of the SGD baselines (paper §II eq. (5) and §VI-A).
//
// All SGD variants — Hogwild, LIBMF-style blocked, NOMAD-style asynchronous,
// and the GPU SGD model — share the same per-sample update rule and factor
// model; they differ only in how parallel updates are scheduled.
#pragma once

#include <atomic>
#include <cmath>
#include <cstdint>
#include <vector>

#include "linalg/dense.hpp"
#include "sparse/coo.hpp"

namespace cumf {

// Hogwild workers race on the factor rows by design (no locks, no ordering,
// lost updates tolerated). Under ThreadSanitizer those accesses go through
// relaxed atomic_ref so the deliberate race is benign by the standard instead
// of a reported error; plain builds keep raw loads/stores so the update loops
// stay vectorizable.
#if defined(__SANITIZE_THREAD__)
#define CUMF_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define CUMF_TSAN_BUILD 1
#endif
#endif

#ifdef CUMF_TSAN_BUILD
inline real_t racy_load(real_t* p) noexcept {
  return std::atomic_ref<real_t>(*p).load(std::memory_order_relaxed);
}
inline void racy_add(real_t* p, real_t delta) noexcept {
  std::atomic_ref<real_t> r(*p);
  r.store(r.load(std::memory_order_relaxed) + delta,
          std::memory_order_relaxed);
}
#else
inline real_t racy_load(const real_t* p) noexcept { return *p; }
inline void racy_add(real_t* p, real_t delta) noexcept { *p += delta; }
#endif

/// Learning-rate schedule. LIBMF's distinguishing feature (Chin et al.,
/// PAKDD'15 — reference [3] of the paper) is the adaptive per-row schedule;
/// the fixed decay is the vanilla eq. (5) behaviour.
enum class SgdSchedule {
  FixedDecay,  ///< α_k = α₀ / (1 + decay·epoch)
  AdaGrad,     ///< per-row α = α₀ / √(1 + G_row), G = accumulated mean ‖g‖²
};

struct SgdOptions {
  std::size_t f = 40;
  real_t lambda = 0.05f;   ///< L2 regularization
  real_t lr = 0.05f;       ///< initial learning rate α₀
  real_t lr_decay = 0.1f;  ///< decay for SgdSchedule::FixedDecay
  SgdSchedule schedule = SgdSchedule::FixedDecay;
  int workers = 1;         ///< parallel workers (threads)
  std::uint64_t seed = 1;
};

/// The factor model every SGD variant trains.
struct SgdModel {
  Matrix x;      ///< m×f user factors
  Matrix theta;  ///< n×f item factors
  /// AdaGrad accumulators (mean squared gradient per row); sized only when
  /// the adaptive schedule is selected.
  std::vector<real_t> x_gsq;
  std::vector<real_t> theta_gsq;
};

/// Initializes the factors with the same warm start used by ALS.
SgdModel make_sgd_model(index_t m, index_t n, const SgdOptions& options,
                        double rating_mean);

/// One SGD step on sample (u, v, r) with learning rate `alpha` (eq. (5)).
/// Deliberately unsynchronized: Hogwild callers race on purpose.
inline void sgd_step(SgdModel& model, const Rating& s, real_t alpha,
                     real_t lambda) noexcept {
  const std::size_t f = model.x.cols();
  real_t* xu = model.x.row(s.u).data();
  real_t* tv = model.theta.row(s.v).data();
  real_t pred = 0;
  for (std::size_t k = 0; k < f; ++k) {
    pred += racy_load(xu + k) * racy_load(tv + k);
  }
  const real_t err = s.r - pred;
  for (std::size_t k = 0; k < f; ++k) {
    const real_t xk = racy_load(xu + k);
    const real_t tk = racy_load(tv + k);
    racy_add(xu + k, alpha * (err * tk - lambda * xk));
    racy_add(tv + k, alpha * (err * xk - lambda * tk));
  }
}

/// Learning rate for a given epoch under the fixed-decay schedule.
inline real_t sgd_alpha(const SgdOptions& options, int epoch) noexcept {
  return options.lr /
         (real_t{1} + options.lr_decay * static_cast<real_t>(epoch));
}

/// AdaGrad step (LIBMF's schedule): per-row accumulated gradient energy
/// shrinks the step of frequently-updated rows, letting rare rows keep
/// large steps — the reason LIBMF converges in few passes.
inline void sgd_step_adagrad(SgdModel& model, const Rating& s, real_t lr0,
                             real_t lambda) noexcept {
  const std::size_t f = model.x.cols();
  real_t* xu = model.x.row(s.u).data();
  real_t* tv = model.theta.row(s.v).data();
  real_t pred = 0;
  for (std::size_t k = 0; k < f; ++k) {
    pred += racy_load(xu + k) * racy_load(tv + k);
  }
  const real_t err = s.r - pred;

  real_t gx_sq = 0;
  real_t gt_sq = 0;
  const real_t ax =
      lr0 / std::sqrt(real_t{1} + racy_load(&model.x_gsq[s.u]));
  const real_t at =
      lr0 / std::sqrt(real_t{1} + racy_load(&model.theta_gsq[s.v]));
  for (std::size_t k = 0; k < f; ++k) {
    const real_t xk = racy_load(xu + k);
    const real_t tk = racy_load(tv + k);
    const real_t gx = err * tk - lambda * xk;
    const real_t gt = err * xk - lambda * tk;
    gx_sq += gx * gx;
    gt_sq += gt * gt;
    racy_add(xu + k, ax * gx);
    racy_add(tv + k, at * gt);
  }
  racy_add(&model.x_gsq[s.u], gx_sq / static_cast<real_t>(f));
  racy_add(&model.theta_gsq[s.v], gt_sq / static_cast<real_t>(f));
}

/// Dispatches one update under the configured schedule. `alpha` is the
/// epoch's fixed-decay rate (ignored by AdaGrad).
inline void sgd_apply(SgdModel& model, const Rating& s,
                      const SgdOptions& options, real_t alpha) noexcept {
  if (options.schedule == SgdSchedule::AdaGrad) {
    sgd_step_adagrad(model, s, options.lr, options.lambda);
  } else {
    sgd_step(model, s, alpha, options.lambda);
  }
}

}  // namespace cumf
