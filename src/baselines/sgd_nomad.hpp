// NOMAD-style asynchronous SGD (Yun et al., VLDB'14; paper §VI-A).
//
// Rows are partitioned across workers; item columns circulate as tokens on a
// ring. A worker holding the token for column v updates every rating (u, v)
// with u in its row shard, then forwards the token — no global locking, and
// each factor column is owned by exactly one worker at a time, so updates to
// θ_v never race (the property NOMAD is built on). One epoch = every token
// completes a full circle.
#pragma once

#include <deque>
#include <mutex>
#include <vector>

#include "baselines/sgd_common.hpp"
#include "sparse/coo.hpp"

namespace cumf {

class NomadSgd {
 public:
  NomadSgd(const RatingsCoo& train, const SgdOptions& options);

  /// Runs one full token circulation on options.workers threads.
  void run_epoch();

  int epochs_run() const noexcept { return epochs_; }
  const Matrix& user_factors() const noexcept { return model_.x; }
  const Matrix& item_factors() const noexcept { return model_.theta; }

  /// Ratings of column v within worker w's row shard (exposed for tests).
  const std::vector<Rating>& shard_column(int worker, index_t v) const;

 private:
  SgdOptions options_;
  index_t n_ = 0;
  SgdModel model_;
  /// shard_cols_[w][v]: the (u, v, r) entries worker w owns for column v.
  std::vector<std::vector<std::vector<Rating>>> shard_cols_;
  int epochs_ = 0;
};

}  // namespace cumf
