#include "baselines/implicit_cpu.hpp"

#include "common/check.hpp"
#include "core/als.hpp"
#include "core/kernel_stats.hpp"

namespace cumf {

ImplicitAlsOptions implicit_cpu_options(ImplicitCpuFlavor flavor,
                                        std::size_t f, real_t lambda,
                                        std::uint64_t seed) {
  ImplicitAlsOptions options;
  options.f = f;
  options.lambda = lambda;
  options.seed = seed;
  options.solver.kind = flavor == ImplicitCpuFlavor::ImplicitLib
                            ? SolverKind::CgFp32
                            : SolverKind::CholeskyFp32;
  options.solver.cg_fs = 3;  // `implicit` defaults to 3 CG steps
  return options;
}

namespace {
/// Fraction of the host's aggregate FLOP rate each library sustains,
/// calibrated to the paper's §V-F per-iteration numbers (90 s / 360 s on
/// Netflix-implicit against the 40-core host).
double flavor_efficiency(ImplicitCpuFlavor flavor) {
  switch (flavor) {
    case ImplicitCpuFlavor::ImplicitLib:
      return 0.11;  // OpenMP + BLAS inner kernels
    case ImplicitCpuFlavor::Qmf:
      return 0.028;  // coarser parallelism, exact per-row Cholesky
  }
  return 0.1;
}
}  // namespace

double implicit_cpu_iteration_seconds(ImplicitCpuFlavor flavor,
                                      const gpusim::HostSpec& host, double m,
                                      double n, double nnz, int f) {
  CUMF_EXPECTS(host.cores_per_machine > 0, "host needs cores");
  const double ff = f;
  // Gram matrices + per-entry corrections for both half-sweeps.
  double flops = 2.0 * (nnz * ff * ff + (m + n) * ff * ff);
  if (flavor == ImplicitCpuFlavor::Qmf) {
    flops += (m + n) * (1.0 / 3.0) * ff * ff * ff;  // exact Cholesky
  } else {
    flops += (m + n) * 3.0 * 2.0 * ff * ff;  // 3 CG steps
  }
  const double rate = host.machines * host.cores_per_machine *
                      host.flops_per_core * host.parallel_efficiency *
                      flavor_efficiency(flavor);
  return flops / rate;
}

double implicit_gpu_iteration_seconds(const gpusim::DeviceSpec& dev,
                                      double m, double n, double nnz, int f,
                                      std::uint32_t cg_fs) {
  // The implicit update is the explicit kernel plus the shared Gram matrix
  // (a dense SYRK, effectively free at cuMF's FLOPS) — model it as the
  // explicit ALS epoch with the CG solver.
  AlsKernelConfig config;
  config.f = f;
  config.tile = pick_tile(static_cast<std::size_t>(f), 10);
  config.solver = SolverKind::CgFp32;
  config.cg_fs = cg_fs;
  return als_epoch_seconds(dev, m, n, nnz, config);
}

}  // namespace cumf
