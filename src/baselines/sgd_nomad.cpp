#include "baselines/sgd_nomad.hpp"

#include <atomic>
#include <condition_variable>
#include <thread>

#include "common/check.hpp"
#include "prof/prof.hpp"

namespace cumf {

NomadSgd::NomadSgd(const RatingsCoo& train, const SgdOptions& options)
    : options_(options),
      n_(train.cols()),
      model_(make_sgd_model(train.rows(), train.cols(), options,
                            train.mean_value())) {
  CUMF_EXPECTS(options_.workers >= 1, "need at least one worker");
  CUMF_EXPECTS(train.nnz() > 0, "cannot train on an empty matrix");

  const auto w = static_cast<std::size_t>(options_.workers);
  shard_cols_.assign(w, std::vector<std::vector<Rating>>(n_));
  const index_t rows_per_shard =
      (train.rows() + static_cast<index_t>(w) - 1) /
      static_cast<index_t>(w);
  for (const Rating& e : train.entries()) {
    const auto shard = static_cast<std::size_t>(e.u / rows_per_shard);
    shard_cols_[shard][e.v].push_back(e);
  }
}

const std::vector<Rating>& NomadSgd::shard_column(int worker,
                                                  index_t v) const {
  CUMF_EXPECTS(worker >= 0 &&
                   static_cast<std::size_t>(worker) < shard_cols_.size(),
               "worker out of range");
  CUMF_EXPECTS(v < n_, "column out of range");
  return shard_cols_[static_cast<std::size_t>(worker)][v];
}

void NomadSgd::run_epoch() {
  CUMF_PROF_SCOPE("sgd_nomad_epoch", "sgd");
  const real_t alpha = sgd_alpha(options_, epochs_);
  const auto w = static_cast<std::size_t>(options_.workers);

  // Token = (column, remaining hops). Per-worker inbox protected by a
  // mutex — the "message passing" of the MPI implementation.
  struct Token {
    index_t column;
    int hops_left;
  };
  struct Inbox {
    std::mutex mutex;
    std::deque<Token> queue;
  };
  std::vector<Inbox> inboxes(w);
  std::atomic<std::int64_t> live_tokens{static_cast<std::int64_t>(n_)};

  // Initial distribution: columns dealt round-robin.
  for (index_t v = 0; v < n_; ++v) {
    inboxes[v % w].queue.push_back(
        Token{v, static_cast<int>(w)});
  }

  const auto worker_loop = [&](std::size_t me) {
    while (live_tokens.load(std::memory_order_acquire) > 0) {
      Token token{0, 0};
      {
        std::lock_guard lock(inboxes[me].mutex);
        if (inboxes[me].queue.empty()) {
          std::this_thread::yield();
          continue;
        }
        token = inboxes[me].queue.front();
        inboxes[me].queue.pop_front();
      }
      // θ_(token.column) is exclusively ours while we hold the token.
      for (const Rating& e : shard_cols_[me][token.column]) {
        sgd_apply(model_, e, options_, alpha);
      }
      if (--token.hops_left > 0) {
        const std::size_t next = (me + 1) % w;
        std::lock_guard lock(inboxes[next].mutex);
        inboxes[next].queue.push_back(token);
      } else {
        live_tokens.fetch_sub(1, std::memory_order_release);
      }
    }
  };

  if (w == 1) {
    worker_loop(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(w);
    for (std::size_t i = 0; i < w; ++i) {
      threads.emplace_back(worker_loop, i);
    }
    for (auto& thread : threads) {
      thread.join();
    }
  }
  ++epochs_;
}

}  // namespace cumf
