// CPU implicit-MF baselines: `implicit` (Ben Frederickson) and QMF (Quora),
// the two open-source libraries of the paper's §V-F comparison.
//
// Both implement Hu-Koren-Volinsky ALS on the CPU; `implicit` uses the Gram
// trick with a CG inner solver on multiple threads, QMF solves exactly with
// Cholesky and parallelizes more coarsely. The paper reports per-iteration
// times of 90 s (implicit) and 360 s (QMF) against cuMF-ALS's 2.2 s on
// Netflix-implicit. Functionally both reduce to ImplicitAlsEngine with the
// corresponding solver; their times come from the host model.
#pragma once

#include "core/implicit_als.hpp"
#include "gpusim/device.hpp"

namespace cumf {

enum class ImplicitCpuFlavor {
  ImplicitLib,  ///< github.com/benfred/implicit: Gram trick + CG, OpenMP
  Qmf,          ///< github.com/quora/qmf: exact Cholesky per row
};

/// Functional engine options matching each library's solver choice.
ImplicitAlsOptions implicit_cpu_options(ImplicitCpuFlavor flavor,
                                        std::size_t f, real_t lambda,
                                        std::uint64_t seed = 1);

/// Modelled seconds per implicit-ALS iteration on the CPU host for a
/// dataset of the given shape.
double implicit_cpu_iteration_seconds(ImplicitCpuFlavor flavor,
                                      const gpusim::HostSpec& host, double m,
                                      double n, double nnz, int f);

/// Simulated seconds per implicit-ALS iteration for cuMF-ALS on `dev`.
double implicit_gpu_iteration_seconds(const gpusim::DeviceSpec& dev,
                                      double m, double n, double nnz, int f,
                                      std::uint32_t cg_fs);

}  // namespace cumf
