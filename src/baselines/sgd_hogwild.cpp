#include "baselines/sgd_hogwild.hpp"

#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "prof/prof.hpp"

namespace cumf {

HogwildSgd::HogwildSgd(const RatingsCoo& train, const SgdOptions& options)
    : options_(options),
      train_(train),
      model_(make_sgd_model(train.rows(), train.cols(), options,
                            train.mean_value())) {
  CUMF_EXPECTS(options_.workers >= 1, "need at least one worker");
  CUMF_EXPECTS(train_.nnz() > 0, "cannot train on an empty matrix");
}

void HogwildSgd::run_epoch() {
  CUMF_PROF_SCOPE("sgd_hogwild_epoch", "sgd");
  const real_t alpha = sgd_alpha(options_, epochs_);
  const auto& samples = train_.entries();

  const auto shard_pass = [&](std::size_t begin, std::size_t end,
                              std::uint64_t seed) {
    // Visit the shard in random order (sampling without replacement via an
    // index shuffle, as vanilla SGD prescribes).
    std::vector<std::uint32_t> order(end - begin);
    for (std::size_t i = 0; i < order.size(); ++i) {
      order[i] = static_cast<std::uint32_t>(begin + i);
    }
    Rng rng(seed);
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.uniform_index(i)]);
    }
    for (const std::uint32_t idx : order) {
      sgd_apply(model_, samples[idx], options_, alpha);
    }
  };

  if (options_.workers == 1) {
    shard_pass(0, samples.size(), options_.seed + static_cast<std::uint64_t>(epochs_));
  } else {
    // Racing threads, by design: no locks, no atomics (Hogwild!).
    std::vector<std::thread> threads;
    const auto w = static_cast<std::size_t>(options_.workers);
    const std::size_t chunk = (samples.size() + w - 1) / w;
    for (std::size_t t = 0; t < w; ++t) {
      const std::size_t begin = std::min(samples.size(), t * chunk);
      const std::size_t end = std::min(samples.size(), begin + chunk);
      if (begin == end) {
        continue;
      }
      threads.emplace_back(shard_pass, begin, end,
                           options_.seed + 1000003ull * (t + 1) +
                               static_cast<std::uint64_t>(epochs_));
    }
    for (auto& thread : threads) {
      thread.join();
    }
  }
  ++epochs_;
}

}  // namespace cumf
