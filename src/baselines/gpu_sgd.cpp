#include "baselines/gpu_sgd.hpp"

#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "core/kernel_stats.hpp"
#include "half/half.hpp"

namespace cumf {

GpuSgd::GpuSgd(const RatingsCoo& train, const Options& options)
    : options_(options),
      train_(train),
      model_(make_sgd_model(train.rows(), train.cols(), options,
                            train.mean_value())) {
  CUMF_EXPECTS(train_.nnz() > 0, "cannot train on an empty matrix");
  if (options_.half_precision) {
    // Factors live in FP16 on the device from the start.
    for (auto* matrix : {&model_.x, &model_.theta}) {
      for (real_t& w : matrix->data()) {
        w = static_cast<real_t>(half(w));
      }
    }
  }
}

void GpuSgd::run_epoch() {
  const real_t alpha = sgd_alpha(options_, epochs_);
  const auto& samples = train_.entries();

  std::vector<std::uint32_t> order(samples.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<std::uint32_t>(i);
  }
  Rng rng(options_.seed + static_cast<std::uint64_t>(epochs_));
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.uniform_index(i)]);
  }

  const std::size_t f = options_.f;
  for (const std::uint32_t idx : order) {
    const Rating& s = samples[idx];
    sgd_step(model_, s, alpha, options_.lambda);
    if (options_.half_precision) {
      // Written factors are stored as __half on the device: round the two
      // updated rows to FP16 (arithmetic stayed FP32, as on the GPU).
      real_t* xu = model_.x.row(s.u).data();
      real_t* tv = model_.theta.row(s.v).data();
      for (std::size_t k = 0; k < f; ++k) {
        xu[k] = static_cast<real_t>(half(xu[k]));
        tv[k] = static_cast<real_t>(half(tv[k]));
      }
    }
  }
  ++epochs_;
}

double GpuSgd::epoch_seconds(const gpusim::DeviceSpec& dev, int gpus) const {
  return sgd_epoch_seconds(dev, static_cast<double>(train_.nnz()),
                           static_cast<int>(options_.f),
                           options_.half_precision, gpus,
                           gpusim::LinkSpec::nvlink(),
                           static_cast<double>(train_.rows()),
                           static_cast<double>(train_.cols()));
}

}  // namespace cumf
