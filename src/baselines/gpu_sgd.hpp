// GPU-SGD model (cuMF-SGD, Xie et al. HPDC'17; the [35] baseline of Fig. 8).
//
// Functionally this is Hogwild-style SGD — on the GPU thousands of threads
// update concurrently and benign races are absorbed, which a serial shuffled
// pass reproduces in expectation. The half-precision mode additionally
// rounds every written factor to FP16 after each update, reproducing the
// numerics of cuMF-SGD's __half factor storage. Device time per epoch comes
// from core/kernel_stats's memory-bound SGD kernel model.
#pragma once

#include "baselines/sgd_common.hpp"
#include "gpusim/device.hpp"
#include "sparse/coo.hpp"

namespace cumf {

class GpuSgd {
 public:
  struct Options : SgdOptions {
    bool half_precision = true;  ///< cuMF-SGD stores factors in FP16
  };

  GpuSgd(const RatingsCoo& train, const Options& options);

  void run_epoch();

  int epochs_run() const noexcept { return epochs_; }
  const Matrix& user_factors() const noexcept { return model_.x; }
  const Matrix& item_factors() const noexcept { return model_.theta; }

  /// Simulated device seconds for one epoch on `dev` with `gpus` devices.
  double epoch_seconds(const gpusim::DeviceSpec& dev, int gpus = 1) const;

 private:
  Options options_;
  RatingsCoo train_;
  SgdModel model_;
  int epochs_ = 0;
};

}  // namespace cumf
