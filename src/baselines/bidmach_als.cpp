#include "baselines/bidmach_als.hpp"

namespace cumf {

double bidmach_hermitian_flops(const gpusim::DeviceSpec& dev) {
  // 40 GFLOPS measured on the Maxwell Titan X (7 TFLOPS peak) → 0.57% of
  // peak; the generic kernel's inefficiency tracks the device's peak.
  constexpr double kBidmachFractionOfPeak = 40.0e9 / 7.0e12;
  return dev.peak_flops * kBidmachFractionOfPeak;
}

double bidmach_epoch_seconds(const gpusim::DeviceSpec& dev, double m,
                             double n, double nnz, int f) {
  const double ff = f;
  // Generic SpMM forms the full (non-symmetric) A_u: 2·Nz·f² FLOPs per
  // half-sweep, both halves per epoch, plus an exact dense solve.
  const double herm_flops = 2.0 * (2.0 * nnz * ff * ff);
  const double solve_flops = (m + n) * (2.0 / 3.0) * ff * ff * ff;
  return (herm_flops + solve_flops) / bidmach_hermitian_flops(dev);
}

AlsOptions bidmach_als_options(std::size_t f, real_t lambda,
                               std::uint64_t seed) {
  AlsOptions options;
  options.f = f;
  options.lambda = lambda;
  options.solver.kind = SolverKind::CholeskyFp32;
  options.tiled_hermitian = false;
  options.seed = seed;
  return options;
}

}  // namespace cumf
