// Hogwild! SGD (Niu et al., NIPS'11; paper §VI-A).
//
// Workers sample and update concurrently with NO synchronization: when R is
// sparse and workers ≪ dim(R), conflicting updates to the same factor row
// are rare enough that convergence survives the races. This is the lock-free
// branch of Table V and the algorithmic basis of the GPU SGD solution [35].
#pragma once

#include "baselines/sgd_common.hpp"
#include "sparse/coo.hpp"

namespace cumf {

class HogwildSgd {
 public:
  HogwildSgd(const RatingsCoo& train, const SgdOptions& options);

  /// One pass over all samples. With options.workers > 1 the pass runs on
  /// that many racing threads (each shuffles its own shard per epoch);
  /// with workers == 1 it is a deterministic serial pass.
  void run_epoch();

  int epochs_run() const noexcept { return epochs_; }
  const Matrix& user_factors() const noexcept { return model_.x; }
  const Matrix& item_factors() const noexcept { return model_.theta; }

 private:
  SgdOptions options_;
  RatingsCoo train_;
  SgdModel model_;
  int epochs_ = 0;
};

}  // namespace cumf
