#include "baselines/als_plain.hpp"

namespace cumf {

AlsKernelConfig cumfals_kernel_config(int f, SolverKind solver,
                                      std::uint32_t fs) {
  AlsKernelConfig c;
  c.f = f;
  c.tile = pick_tile(static_cast<std::size_t>(f), 10);
  c.bin = 32;
  c.load_scheme = LoadScheme::NonCoalescedL1;
  c.solver = solver;
  c.cg_fs = fs;
  c.register_tiling = true;
  return c;
}

GpuAlsBaseline make_gpu_als_baseline(const RatingsCoo& train, std::size_t f,
                                     real_t lambda, std::uint64_t seed) {
  AlsOptions options;
  options.f = f;
  options.lambda = lambda;
  options.solver.kind = SolverKind::LuFp32;
  options.tiled_hermitian = false;  // functional mirror of "no tiling"
  options.seed = seed;

  GpuAlsBaseline out;
  out.engine = std::make_unique<AlsEngine>(train, options);
  out.kernel_config = cumfals_kernel_config(static_cast<int>(f),
                                            SolverKind::LuFp32, 6);
  out.kernel_config.load_scheme = LoadScheme::Coalesced;
  out.kernel_config.register_tiling = false;
  return out;
}

}  // namespace cumf
