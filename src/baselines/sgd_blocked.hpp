// Blocked SGD in the LIBMF / DSGD style (Zhuang et al. RecSys'13,
// Gemulla et al. KDD'11; paper §VI-A "blocking").
//
// R is divided into a workers×workers grid; blocks that share no rows or
// columns update concurrently without conflicts, so unlike Hogwild this is
// race-free by construction. Rounds follow the DSGD diagonal schedule. This
// is the algorithm behind the paper's strongest CPU baseline (LIBMF).
#pragma once

#include "baselines/sgd_common.hpp"
#include "common/thread_pool.hpp"
#include "sparse/partition.hpp"

namespace cumf {

class BlockedSgd {
 public:
  BlockedSgd(const RatingsCoo& train, const SgdOptions& options);

  /// One epoch = `workers` diagonal rounds covering every block once.
  void run_epoch();

  int epochs_run() const noexcept { return epochs_; }
  const Matrix& user_factors() const noexcept { return model_.x; }
  const Matrix& item_factors() const noexcept { return model_.theta; }
  const BlockGrid& grid() const noexcept { return grid_; }

 private:
  SgdOptions options_;
  BlockGrid grid_;
  SgdModel model_;
  ThreadPool pool_;
  int epochs_ = 0;
};

}  // namespace cumf
