// CCD++ — cyclic coordinate descent MF (Yu et al., ICDM'12; paper §VI-B).
//
// Instead of solving whole f-dimensional rows (ALS) or stepping on single
// samples (SGD), CCD++ sweeps one latent dimension at a time: for each k it
// alternates closed-form rank-1 updates of X's and Θ's k-th columns against
// a maintained residual matrix. Lower per-update cost than ALS, but less
// progress per epoch — the trade-off Table V summarizes.
#pragma once

#include "gpusim/device.hpp"
#include "linalg/dense.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"

namespace cumf {

struct CcdOptions {
  std::size_t f = 40;
  real_t lambda = 0.05f;
  int inner_iters = 1;  ///< rank-1 refinement passes per dimension (T)
  std::uint64_t seed = 1;
};

class CcdEngine {
 public:
  CcdEngine(const RatingsCoo& train, const CcdOptions& options);

  /// One epoch = one sweep over all f dimensions.
  void run_epoch();

  int epochs_run() const noexcept { return epochs_; }
  const Matrix& user_factors() const noexcept { return x_; }
  const Matrix& item_factors() const noexcept { return theta_; }

  /// Maintained residual r_uv − x_uᵀθ_v for every training non-zero, in CSR
  /// order; tests verify it stays consistent with the factors.
  const std::vector<real_t>& residuals() const noexcept { return res_; }
  const CsrMatrix& ratings() const noexcept { return r_; }

 private:
  void update_dimension(std::size_t k);

  CcdOptions options_;
  CsrMatrix r_;             ///< train ratings (row view)
  CsrMatrix rt_;            ///< column view
  std::vector<nnz_t> rt_to_r_;  ///< position in rt_ → position in r_
  Matrix x_;
  Matrix theta_;
  std::vector<real_t> res_;  ///< residuals in r_ (CSR) order
  int epochs_ = 0;
};

/// Device-time model for parallel CCD++ on a GPU (Nisa et al.,
/// GPGPU@PPoPP'17 — reference [20], Table V). With loop fusion and tiling
/// the kernel is memory-bound on the residual array, which every one of the
/// f rank-1 sweeps reads and writes; [20] reports it faster than GPU-ALS
/// [31] but it remains slower than cuMF-ALS (§VI-B).
double ccd_gpu_epoch_seconds(const gpusim::DeviceSpec& dev, double nnz,
                             int f);

}  // namespace cumf
