// BIDMach-style ALS (Canny et al., IEEE BigData'15; paper §V-C / §VI-B).
//
// BIDMach builds ALS from *generic* sparse-matrix primitives: A_u is formed
// with a general SpMM-like kernel that is not specialized for the Hermitian
// structure, no symmetry exploitation, no register tiling. The paper reports
// its ALS kernel running at ~40 GFLOPS — an order of magnitude below
// cuMF-ALS — and failing to reach the acceptable RMSE. We reproduce the
// kernel-efficiency comparison; the functional engine (generic accumulation)
// is the reference hermitian path, which is numerically sound, so the
// "does not converge" aspect is reported as BIDMach's kernel-throughput gap.
#pragma once

#include "core/als.hpp"
#include "gpusim/device.hpp"
#include "sparse/coo.hpp"

namespace cumf {

/// Modelled sustained throughput of BIDMach's generic ALS kernel on `dev`.
/// Calibrated to the paper's measurement (≈40 GFLOPS on Maxwell) and scaled
/// across devices by peak-FLOPS ratio.
double bidmach_hermitian_flops(const gpusim::DeviceSpec& dev);

/// Simulated seconds for one BIDMach ALS epoch.
double bidmach_epoch_seconds(const gpusim::DeviceSpec& dev, double m,
                             double n, double nnz, int f);

/// Functional BIDMach-style engine: generic (untiled) hermitian + exact
/// Cholesky solve, i.e. what the generic matrix library composes to.
AlsOptions bidmach_als_options(std::size_t f, real_t lambda,
                               std::uint64_t seed = 1);

}  // namespace cumf
