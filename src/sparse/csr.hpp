// Compressed sparse row storage of the rating matrix.
//
// ALS consumes R twice per epoch: update-X walks rows of R (CSR) and
// update-Θ walks columns (CSR of Rᵀ). Both views are built once up front,
// mirroring cuMF's device-resident CSR/CSC pair.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "sparse/coo.hpp"

namespace cumf {

class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Builds from coordinate form. The input need not be sorted; duplicates
  /// must already have been merged (use RatingsCoo::sort_and_dedup).
  static CsrMatrix from_coo(const RatingsCoo& coo);

  /// Adopts pre-built CSR arrays (the out-of-core tile reader decodes
  /// straight into these). Validates the structural invariants — row_ptr
  /// has rows+1 monotone entries ending at col_idx.size(), columns are in
  /// range — and throws CheckError otherwise; per-row column order is the
  /// caller's contract (tiles store rows already column-sorted).
  static CsrMatrix from_parts(index_t rows, index_t cols,
                              std::vector<nnz_t> row_ptr,
                              std::vector<index_t> col_idx,
                              std::vector<real_t> values);

  index_t rows() const noexcept { return m_; }
  index_t cols() const noexcept { return n_; }
  nnz_t nnz() const noexcept { return values_.size(); }

  /// Column indices of row u.
  std::span<const index_t> row_cols(index_t u) const;
  /// Values of row u.
  std::span<const real_t> row_vals(index_t u) const;
  /// Number of non-zeros in row u (n^x_u in the paper).
  index_t row_nnz(index_t u) const;

  const std::vector<nnz_t>& row_ptr() const noexcept { return row_ptr_; }
  const std::vector<index_t>& col_idx() const noexcept { return col_idx_; }
  const std::vector<real_t>& values() const noexcept { return values_; }

  /// R → Rᵀ (i.e. the CSC view of R expressed as a CSR matrix).
  CsrMatrix transposed() const;

  /// Per-row non-zero counts for all rows.
  std::vector<index_t> row_degrees() const;

  /// Maximum row degree (0 for an empty matrix).
  index_t max_row_degree() const noexcept;

 private:
  index_t m_ = 0;
  index_t n_ = 0;
  std::vector<nnz_t> row_ptr_;    // size m+1
  std::vector<index_t> col_idx_;  // size nnz
  std::vector<real_t> values_;    // size nnz
};

}  // namespace cumf
