// Coordinate-format rating matrix: the interchange format between the data
// generators, the train/test splitter, and the CSR/CSC builders.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace cumf {

/// One observed entry r_{uv} of the rating matrix R.
struct Rating {
  index_t u = 0;  ///< row (user)
  index_t v = 0;  ///< column (item)
  real_t r = 0;   ///< observed value

  friend bool operator==(const Rating&, const Rating&) = default;
};

/// A sparse m×n matrix in coordinate form. Entries may be unsorted; call
/// sort_and_dedup() to canonicalize (row-major order, duplicates summed).
class RatingsCoo {
 public:
  RatingsCoo() = default;
  RatingsCoo(index_t m, index_t n) : m_(m), n_(n) {}
  RatingsCoo(index_t m, index_t n, std::vector<Rating> entries);

  index_t rows() const noexcept { return m_; }
  index_t cols() const noexcept { return n_; }
  nnz_t nnz() const noexcept { return entries_.size(); }

  const std::vector<Rating>& entries() const noexcept { return entries_; }
  std::vector<Rating>& entries() noexcept { return entries_; }

  /// Appends one entry. Indices are validated against the matrix shape.
  void add(index_t u, index_t v, real_t r);

  /// Sorts row-major and sums duplicate coordinates.
  void sort_and_dedup();

  /// True if entries are sorted row-major with no duplicate coordinates.
  bool is_canonical() const noexcept;

  /// Mean of all stored values (0 if empty).
  double mean_value() const noexcept;

 private:
  index_t m_ = 0;
  index_t n_ = 0;
  std::vector<Rating> entries_;
};

}  // namespace cumf
