// 2-D block partitioning of the rating matrix for parallel SGD.
//
// Blocked SGD (DSGD / LIBMF / NOMAD families, §VI-A of the paper) divides R
// into a grid of row×column blocks; blocks that share no rows or columns can
// be updated concurrently without conflicting writes to X or Θ. This module
// buckets entries into the grid and produces conflict-free schedules
// ("diagonals" of the grid, as in DSGD).
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"

namespace cumf {

/// Chunk boundaries over the rows of `r` such that each chunk holds roughly
/// equal total nnz (cut points from the row_ptr prefix sums). Returns an
/// ascending list starting at 0 and ending at r.rows(), with at most
/// `chunks` chunks — fewer when single heavy rows exceed the equal share,
/// each of which then forms its own chunk. Shared by the ALS worker
/// schedules, the multi-GPU shard partition, and the out-of-core tile cuts.
std::vector<std::size_t> nnz_balanced_bounds(const CsrMatrix& r,
                                             std::size_t chunks);

class BlockGrid {
 public:
  /// Partitions `coo` into a grid of `row_blocks` × `col_blocks` blocks of
  /// (near-)equal index ranges.
  BlockGrid(const RatingsCoo& coo, index_t row_blocks, index_t col_blocks);

  index_t row_blocks() const noexcept { return rb_; }
  index_t col_blocks() const noexcept { return cb_; }

  /// Entries belonging to block (i, j).
  const std::vector<Rating>& block(index_t i, index_t j) const;

  /// Which row-block does row u fall into?
  index_t row_block_of(index_t u) const noexcept;
  /// Which column-block does column v fall into?
  index_t col_block_of(index_t v) const noexcept;

  /// A schedule is a sequence of "rounds"; each round is a set of blocks with
  /// pairwise-disjoint row and column ranges (so they may run in parallel).
  /// This returns the DSGD diagonal schedule covering every block exactly
  /// once. Requires row_blocks() == col_blocks().
  struct BlockId {
    index_t i = 0;
    index_t j = 0;
    friend bool operator==(const BlockId&, const BlockId&) = default;
  };
  std::vector<std::vector<BlockId>> diagonal_schedule() const;

  /// Total entries over all blocks (== input nnz; invariant checked).
  nnz_t total_entries() const noexcept;

 private:
  index_t m_ = 0;
  index_t n_ = 0;
  index_t rb_ = 0;
  index_t cb_ = 0;
  std::vector<std::vector<Rating>> blocks_;  // rb_*cb_, row-major
};

}  // namespace cumf
