#include "sparse/csr.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace cumf {

CsrMatrix CsrMatrix::from_coo(const RatingsCoo& coo) {
  CsrMatrix csr;
  csr.m_ = coo.rows();
  csr.n_ = coo.cols();
  csr.row_ptr_.assign(static_cast<std::size_t>(csr.m_) + 1, 0);
  csr.col_idx_.resize(coo.nnz());
  csr.values_.resize(coo.nnz());

  // Counting sort by row: stable, O(nnz + m), no global sort needed.
  for (const Rating& e : coo.entries()) {
    ++csr.row_ptr_[e.u + 1];
  }
  for (index_t u = 0; u < csr.m_; ++u) {
    csr.row_ptr_[u + 1] += csr.row_ptr_[u];
  }
  std::vector<nnz_t> cursor(csr.row_ptr_.begin(), csr.row_ptr_.end() - 1);
  for (const Rating& e : coo.entries()) {
    const nnz_t at = cursor[e.u]++;
    csr.col_idx_[at] = e.v;
    csr.values_[at] = e.r;
  }
  // Sort columns within each row so binary lookups / merges are possible.
  for (index_t u = 0; u < csr.m_; ++u) {
    const nnz_t lo = csr.row_ptr_[u];
    const nnz_t hi = csr.row_ptr_[u + 1];
    // Sort (col, val) pairs by column using an index permutation.
    std::vector<std::pair<index_t, real_t>> row;
    row.reserve(hi - lo);
    for (nnz_t k = lo; k < hi; ++k) {
      row.emplace_back(csr.col_idx_[k], csr.values_[k]);
    }
    std::sort(row.begin(), row.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (nnz_t k = lo; k < hi; ++k) {
      csr.col_idx_[k] = row[k - lo].first;
      csr.values_[k] = row[k - lo].second;
    }
  }
  return csr;
}

CsrMatrix CsrMatrix::from_parts(index_t rows, index_t cols,
                                std::vector<nnz_t> row_ptr,
                                std::vector<index_t> col_idx,
                                std::vector<real_t> values) {
  CUMF_EXPECTS(row_ptr.size() == static_cast<std::size_t>(rows) + 1,
               "from_parts: row_ptr must have rows+1 entries");
  CUMF_EXPECTS(row_ptr.front() == 0 && row_ptr.back() == col_idx.size(),
               "from_parts: row_ptr must span [0, nnz]");
  CUMF_EXPECTS(col_idx.size() == values.size(),
               "from_parts: col_idx/values length mismatch");
  for (index_t u = 0; u < rows; ++u) {
    CUMF_EXPECTS(row_ptr[u] <= row_ptr[u + 1],
                 "from_parts: row_ptr must be non-decreasing");
  }
  for (const index_t v : col_idx) {
    CUMF_EXPECTS(v < cols, "from_parts: column index out of range");
  }
  CsrMatrix csr;
  csr.m_ = rows;
  csr.n_ = cols;
  csr.row_ptr_ = std::move(row_ptr);
  csr.col_idx_ = std::move(col_idx);
  csr.values_ = std::move(values);
  return csr;
}

std::span<const index_t> CsrMatrix::row_cols(index_t u) const {
  CUMF_EXPECTS(u < m_, "row out of bounds");
  return {col_idx_.data() + row_ptr_[u], row_ptr_[u + 1] - row_ptr_[u]};
}

std::span<const real_t> CsrMatrix::row_vals(index_t u) const {
  CUMF_EXPECTS(u < m_, "row out of bounds");
  return {values_.data() + row_ptr_[u], row_ptr_[u + 1] - row_ptr_[u]};
}

index_t CsrMatrix::row_nnz(index_t u) const {
  CUMF_EXPECTS(u < m_, "row out of bounds");
  return static_cast<index_t>(row_ptr_[u + 1] - row_ptr_[u]);
}

CsrMatrix CsrMatrix::transposed() const {
  CsrMatrix t;
  t.m_ = n_;
  t.n_ = m_;
  t.row_ptr_.assign(static_cast<std::size_t>(t.m_) + 1, 0);
  t.col_idx_.resize(values_.size());
  t.values_.resize(values_.size());

  for (const index_t v : col_idx_) {
    ++t.row_ptr_[v + 1];
  }
  for (index_t v = 0; v < t.m_; ++v) {
    t.row_ptr_[v + 1] += t.row_ptr_[v];
  }
  std::vector<nnz_t> cursor(t.row_ptr_.begin(), t.row_ptr_.end() - 1);
  for (index_t u = 0; u < m_; ++u) {
    for (nnz_t k = row_ptr_[u]; k < row_ptr_[u + 1]; ++k) {
      const index_t v = col_idx_[k];
      const nnz_t at = cursor[v]++;
      t.col_idx_[at] = u;  // already ascending because u is ascending
      t.values_[at] = values_[k];
    }
  }
  return t;
}

std::vector<index_t> CsrMatrix::row_degrees() const {
  std::vector<index_t> deg(m_);
  for (index_t u = 0; u < m_; ++u) {
    deg[u] = static_cast<index_t>(row_ptr_[u + 1] - row_ptr_[u]);
  }
  return deg;
}

index_t CsrMatrix::max_row_degree() const noexcept {
  index_t best = 0;
  for (index_t u = 0; u < m_; ++u) {
    best = std::max(best,
                    static_cast<index_t>(row_ptr_[u + 1] - row_ptr_[u]));
  }
  return best;
}

}  // namespace cumf
