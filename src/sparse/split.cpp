#include "sparse/split.hpp"

#include "common/check.hpp"

namespace cumf {

TrainTestSplit split_holdout(const RatingsCoo& all, double test_fraction,
                             Rng& rng) {
  CUMF_EXPECTS(test_fraction >= 0.0 && test_fraction < 1.0,
               "test fraction must be in [0, 1)");
  TrainTestSplit out;
  out.train = RatingsCoo(all.rows(), all.cols());
  out.test = RatingsCoo(all.rows(), all.cols());

  std::vector<index_t> row_remaining(all.rows(), 0);
  std::vector<index_t> col_remaining(all.cols(), 0);
  for (const Rating& e : all.entries()) {
    ++row_remaining[e.u];
    ++col_remaining[e.v];
  }

  for (const Rating& e : all.entries()) {
    const bool last_of_row = row_remaining[e.u] == 1;
    const bool last_of_col = col_remaining[e.v] == 1;
    const bool to_test =
        !last_of_row && !last_of_col && rng.uniform() < test_fraction;
    if (to_test) {
      out.test.add(e.u, e.v, e.r);
      --row_remaining[e.u];
      --col_remaining[e.v];
    } else {
      out.train.add(e.u, e.v, e.r);
    }
  }
  return out;
}

}  // namespace cumf
