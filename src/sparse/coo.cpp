#include "sparse/coo.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace cumf {

RatingsCoo::RatingsCoo(index_t m, index_t n, std::vector<Rating> entries)
    : m_(m), n_(n), entries_(std::move(entries)) {
  for (const Rating& e : entries_) {
    CUMF_EXPECTS(e.u < m_ && e.v < n_, "rating index out of bounds");
  }
}

void RatingsCoo::add(index_t u, index_t v, real_t r) {
  CUMF_EXPECTS(u < m_ && v < n_, "rating index out of bounds");
  entries_.push_back(Rating{u, v, r});
}

namespace {
bool coord_less(const Rating& a, const Rating& b) noexcept {
  return a.u != b.u ? a.u < b.u : a.v < b.v;
}
}  // namespace

void RatingsCoo::sort_and_dedup() {
  std::sort(entries_.begin(), entries_.end(), coord_less);
  std::size_t out = 0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (out > 0 && entries_[out - 1].u == entries_[i].u &&
        entries_[out - 1].v == entries_[i].v) {
      entries_[out - 1].r += entries_[i].r;
    } else {
      entries_[out++] = entries_[i];
    }
  }
  entries_.resize(out);
}

bool RatingsCoo::is_canonical() const noexcept {
  for (std::size_t i = 1; i < entries_.size(); ++i) {
    if (!coord_less(entries_[i - 1], entries_[i])) {
      return false;
    }
  }
  return true;
}

double RatingsCoo::mean_value() const noexcept {
  if (entries_.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (const Rating& e : entries_) {
    sum += static_cast<double>(e.r);
  }
  return sum / static_cast<double>(entries_.size());
}

}  // namespace cumf
