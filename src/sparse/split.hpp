// Train/test splitting of a rating matrix.
//
// The paper uses the providers' original splits for Netflix/YahooMusic and a
// random 10% holdout for Hugewiki (§V-B). Our synthetic datasets use the same
// random-holdout scheme; the splitter keeps at least one training entry per
// row/column where possible so no factor is completely unobserved.
#pragma once

#include "common/rng.hpp"
#include "sparse/coo.hpp"

namespace cumf {

struct TrainTestSplit {
  RatingsCoo train;
  RatingsCoo test;
};

/// Randomly holds out `test_fraction` of the entries as the test set.
/// Entries that are the last remaining observation of their row or column
/// are kept in the training set, so every row/column with any data retains
/// at least one training observation.
TrainTestSplit split_holdout(const RatingsCoo& all, double test_fraction,
                             Rng& rng);

}  // namespace cumf
