#include "sparse/partition.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace cumf {

std::vector<std::size_t> nnz_balanced_bounds(const CsrMatrix& r,
                                             std::size_t chunks) {
  CUMF_EXPECTS(chunks >= 1, "need at least one chunk");
  const auto m = static_cast<std::size_t>(r.rows());
  const std::vector<nnz_t>& ptr = r.row_ptr();
  std::vector<std::size_t> bounds;
  bounds.reserve(chunks + 1);
  bounds.push_back(0);
  if (m == 0) {
    bounds.push_back(0);
    return bounds;
  }
  const nnz_t total = ptr[m];
  for (std::size_t c = 1; c < chunks; ++c) {
    // End chunk c at the first row boundary whose cumulative nnz reaches an
    // equal share of the total. A row heavier than the share swallows the
    // next cut point(s), yielding fewer, still-balanced chunks.
    const nnz_t target = total * c / chunks;
    const auto it = std::lower_bound(ptr.begin(), ptr.end(), target);
    const auto row = static_cast<std::size_t>(it - ptr.begin());
    if (row <= bounds.back() || row >= m) {
      continue;
    }
    bounds.push_back(row);
  }
  bounds.push_back(m);
  return bounds;
}

namespace {
/// Maps index x in [0, extent) to its block in a partition of `blocks`
/// near-equal ranges (the first `extent % blocks` ranges get one extra).
index_t block_of(index_t x, index_t extent, index_t blocks) noexcept {
  const index_t base = extent / blocks;
  const index_t extra = extent % blocks;
  const index_t boundary = extra * (base + 1);
  if (x < boundary) {
    return x / (base + 1);
  }
  return extra + (x - boundary) / base;
}
}  // namespace

BlockGrid::BlockGrid(const RatingsCoo& coo, index_t row_blocks,
                     index_t col_blocks)
    : m_(coo.rows()), n_(coo.cols()), rb_(row_blocks), cb_(col_blocks) {
  CUMF_EXPECTS(rb_ > 0 && cb_ > 0, "grid must have at least one block");
  CUMF_EXPECTS(rb_ <= m_ && cb_ <= n_,
               "more blocks than rows/columns to partition");
  blocks_.resize(static_cast<std::size_t>(rb_) * cb_);
  for (const Rating& e : coo.entries()) {
    const index_t i = row_block_of(e.u);
    const index_t j = col_block_of(e.v);
    blocks_[static_cast<std::size_t>(i) * cb_ + j].push_back(e);
  }
}

const std::vector<Rating>& BlockGrid::block(index_t i, index_t j) const {
  CUMF_EXPECTS(i < rb_ && j < cb_, "block coordinate out of range");
  return blocks_[static_cast<std::size_t>(i) * cb_ + j];
}

index_t BlockGrid::row_block_of(index_t u) const noexcept {
  return block_of(u, m_, rb_);
}

index_t BlockGrid::col_block_of(index_t v) const noexcept {
  return block_of(v, n_, cb_);
}

std::vector<std::vector<BlockGrid::BlockId>> BlockGrid::diagonal_schedule()
    const {
  CUMF_EXPECTS(rb_ == cb_, "diagonal schedule needs a square grid");
  std::vector<std::vector<BlockId>> rounds(rb_);
  for (index_t d = 0; d < rb_; ++d) {
    rounds[d].reserve(rb_);
    for (index_t i = 0; i < rb_; ++i) {
      rounds[d].push_back(BlockId{i, static_cast<index_t>((i + d) % cb_)});
    }
  }
  return rounds;
}

nnz_t BlockGrid::total_entries() const noexcept {
  nnz_t total = 0;
  for (const auto& b : blocks_) {
    total += b.size();
  }
  return total;
}

}  // namespace cumf
