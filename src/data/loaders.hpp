// Loaders for the rating-file formats the MF ecosystem actually uses.
//
// Beyond our own header-prefixed format (data/io.hpp) this parses:
//  - LIBMF / NOMAD style: one "user item rating" triplet per line,
//    whitespace-separated, no header; dimensions inferred from the data.
//  - MovieLens style: "user::item::rating::timestamp" (the `::` delimiter
//    of the ml-1m/ml-10m releases); the timestamp is ignored.
// Both accept 0- or 1-based ids (`one_based`), skip blank and '#'-comment
// lines, and reject malformed rows with a CheckError naming the line.
#pragma once

#include <iosfwd>
#include <string>

#include "sparse/coo.hpp"

namespace cumf {

enum class RatingsFormat {
  Triplets,   ///< "u v r" per line (LIBMF, NOMAD inputs)
  MovieLens,  ///< "u::v::r::timestamp" per line
};

struct LoaderOptions {
  RatingsFormat format = RatingsFormat::Triplets;
  /// Subtract 1 from user/item ids (MovieLens and most public sets are
  /// 1-based).
  bool one_based = false;
};

/// Parses the stream; matrix dimensions are the maxima seen plus one.
RatingsCoo load_ratings(std::istream& is, const LoaderOptions& options);

RatingsCoo load_ratings_file(const std::string& path,
                             const LoaderOptions& options);

}  // namespace cumf
