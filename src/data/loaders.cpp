#include "data/loaders.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <istream>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.hpp"

namespace cumf {

namespace {

[[noreturn]] void malformed(std::size_t line_no, std::string_view line) {
  std::ostringstream os;
  os << "malformed rating on line " << line_no << ": '" << line << '\'';
  throw CheckError(os.str());
}

/// Shared per-line parser behind both entry points. Lines arrive as
/// null-terminated in-place slices of the read buffer (the block reader
/// terminates them where the newline was), so the hot path never copies a
/// line or constructs a stream.
class RatingsParser {
 public:
  explicit RatingsParser(const LoaderOptions& options) : options_(options) {}

  void reserve(std::size_t n) { entries_.reserve(n); }

  /// `line` must be null-terminated at `len`; the terminator slot is also
  /// used to trim a trailing CR in place.
  void consume_line(char* line, std::size_t len) {
    ++line_no_;
    // Trim trailing CR (files produced on Windows) and skip blanks/comments.
    if (len > 0 && line[len - 1] == '\r') {
      line[--len] = '\0';
    }
    std::size_t first = 0;
    while (first < len && (line[first] == ' ' || line[first] == '\t')) {
      ++first;
    }
    if (first == len || line[first] == '#') {
      return;
    }

    long long u = 0;
    long long v = 0;
    double r = 0;
    if (options_.format == RatingsFormat::Triplets) {
      char* p = line + first;
      char* q = nullptr;
      u = std::strtoll(p, &q, 10);
      if (q == p) {
        malformed(line_no_, {line, len});
      }
      p = q;
      v = std::strtoll(p, &q, 10);
      if (q == p) {
        malformed(line_no_, {line, len});
      }
      p = q;
      r = std::strtod(p, &q);
      if (q == p) {
        malformed(line_no_, {line, len});
      }
    } else {
      // MovieLens "a::b::c::d": split on the literal "::" delimiter.
      const char* fields[3] = {nullptr, nullptr, nullptr};
      const char* p = line;
      std::size_t n = 0;
      while (n < 3) {
        fields[n++] = p;
        const char* next = std::strstr(p, "::");
        if (next == nullptr) {
          break;
        }
        p = next + 2;
      }
      if (n < 3) {
        malformed(line_no_, {line, len});
      }
      char* q = nullptr;
      u = std::strtoll(fields[0], &q, 10);
      if (q == fields[0]) {
        malformed(line_no_, {line, len});
      }
      v = std::strtoll(fields[1], &q, 10);
      if (q == fields[1]) {
        malformed(line_no_, {line, len});
      }
      r = std::strtod(fields[2], &q);
      if (q == fields[2]) {
        malformed(line_no_, {line, len});
      }
    }

    if (options_.one_based) {
      --u;
      --v;
    }
    if (u < 0 || v < 0) {
      malformed(line_no_, {line, len});
    }
    const auto uu = static_cast<index_t>(u);
    const auto vv = static_cast<index_t>(v);
    max_u_ = std::max(max_u_, uu);
    max_v_ = std::max(max_v_, vv);
    entries_.push_back(Rating{uu, vv, static_cast<real_t>(r)});
  }

  RatingsCoo finish() {
    CUMF_EXPECTS(!entries_.empty(), "no ratings found in input");
    return RatingsCoo(max_u_ + 1, max_v_ + 1, std::move(entries_));
  }

 private:
  LoaderOptions options_;
  std::vector<Rating> entries_;
  index_t max_u_ = 0;
  index_t max_v_ = 0;
  std::size_t line_no_ = 0;
};

struct FileCloser {
  void operator()(std::FILE* f) const noexcept { std::fclose(f); }
};

}  // namespace

RatingsCoo load_ratings(std::istream& is, const LoaderOptions& options) {
  RatingsParser parser(options);
  std::string line;
  while (std::getline(is, line)) {
    parser.consume_line(line.data(), line.size());
  }
  return parser.finish();
}

RatingsCoo load_ratings_file(const std::string& path,
                             const LoaderOptions& options) {
  std::unique_ptr<std::FILE, FileCloser> file(
      std::fopen(path.c_str(), "rb"));
  CUMF_EXPECTS(file != nullptr, "cannot open ratings file: " + path);

  // Block reads instead of per-record stream extraction: pull 1 MiB chunks,
  // terminate each line in place where its newline was, and hand the slice
  // to the parser. Only a line that straddles a chunk boundary is copied
  // (into `carry`).
  constexpr std::size_t kChunk = std::size_t{1} << 20;
  std::vector<char> buf(kChunk + 1);  // +1: terminator slot for a final line
  std::string carry;
  RatingsParser parser(options);

  for (;;) {
    const std::size_t got = std::fread(buf.data(), 1, kChunk, file.get());
    if (got == 0) {
      break;
    }
    char* p = buf.data();
    char* const end = p + got;
    if (!carry.empty()) {
      char* nl = static_cast<char*>(std::memchr(p, '\n', got));
      if (nl == nullptr) {
        carry.append(p, end);
        continue;
      }
      carry.append(p, nl);
      parser.consume_line(carry.data(), carry.size());
      carry.clear();
      p = nl + 1;
    }
    while (p < end) {
      char* nl = static_cast<char*>(std::memchr(
          p, '\n', static_cast<std::size_t>(end - p)));
      if (nl == nullptr) {
        carry.assign(p, end);
        break;
      }
      *nl = '\0';
      parser.consume_line(p, static_cast<std::size_t>(nl - p));
      p = nl + 1;
    }
  }
  CUMF_EXPECTS(std::ferror(file.get()) == 0,
               "read error on ratings file: " + path);
  if (!carry.empty()) {  // final line without a trailing newline
    parser.consume_line(carry.data(), carry.size());
  }
  return parser.finish();
}

}  // namespace cumf
