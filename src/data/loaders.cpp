#include "data/loaders.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/check.hpp"

namespace cumf {

namespace {

/// Splits a MovieLens "a::b::c::d" line into fields (also tolerates a
/// single ':' which some re-exports use).
std::vector<std::string> split_movielens(const std::string& line) {
  std::vector<std::string> fields;
  std::size_t pos = 0;
  while (pos <= line.size()) {
    const std::size_t next = line.find("::", pos);
    if (next == std::string::npos) {
      fields.push_back(line.substr(pos));
      break;
    }
    fields.push_back(line.substr(pos, next - pos));
    pos = next + 2;
  }
  return fields;
}

[[noreturn]] void malformed(std::size_t line_no, const std::string& line) {
  std::ostringstream os;
  os << "malformed rating on line " << line_no << ": '" << line << '\'';
  throw CheckError(os.str());
}

}  // namespace

RatingsCoo load_ratings(std::istream& is, const LoaderOptions& options) {
  std::vector<Rating> entries;
  index_t max_u = 0;
  index_t max_v = 0;
  std::string line;
  std::size_t line_no = 0;

  while (std::getline(is, line)) {
    ++line_no;
    // Trim trailing CR (files produced on Windows) and skip blanks/comments.
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    const std::size_t first =
        line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') {
      continue;
    }

    long long u = 0;
    long long v = 0;
    double r = 0;
    if (options.format == RatingsFormat::Triplets) {
      std::istringstream fields(line);
      if (!(fields >> u >> v >> r)) {
        malformed(line_no, line);
      }
    } else {
      const auto fields = split_movielens(line);
      if (fields.size() < 3) {
        malformed(line_no, line);
      }
      try {
        u = std::stoll(fields[0]);
        v = std::stoll(fields[1]);
        r = std::stod(fields[2]);
      } catch (const std::exception&) {
        malformed(line_no, line);
      }
    }

    if (options.one_based) {
      --u;
      --v;
    }
    if (u < 0 || v < 0) {
      malformed(line_no, line);
    }
    const auto uu = static_cast<index_t>(u);
    const auto vv = static_cast<index_t>(v);
    max_u = std::max(max_u, uu);
    max_v = std::max(max_v, vv);
    entries.push_back(Rating{uu, vv, static_cast<real_t>(r)});
  }
  CUMF_EXPECTS(!entries.empty(), "no ratings found in input");
  return RatingsCoo(max_u + 1, max_v + 1, std::move(entries));
}

RatingsCoo load_ratings_file(const std::string& path,
                             const LoaderOptions& options) {
  std::ifstream is(path);
  CUMF_EXPECTS(is.good(), "cannot open ratings file: " + path);
  return load_ratings(is, options);
}

}  // namespace cumf
