#include "data/generator.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/check.hpp"

namespace cumf {

namespace {

/// Rating value of the planted model at (u, v), clipped to the rating scale.
double planted_value(const SyntheticConfig& cfg, const Matrix& p,
                     const Matrix& q, index_t u, index_t v, double noise) {
  double s = 0.0;
  for (std::size_t k = 0; k < cfg.true_rank; ++k) {
    s += static_cast<double>(p(u, k)) * static_cast<double>(q(v, k));
  }
  const double raw = cfg.mean + s + noise;
  return std::clamp(raw, cfg.rating_lo, cfg.rating_hi);
}

}  // namespace

SyntheticDataset generate_synthetic(const SyntheticConfig& cfg) {
  CUMF_EXPECTS(cfg.m > 0 && cfg.n > 0, "matrix must be non-empty");
  CUMF_EXPECTS(cfg.true_rank > 0, "planted rank must be positive");
  CUMF_EXPECTS(cfg.rating_lo < cfg.rating_hi, "rating scale must be a range");
  CUMF_EXPECTS(cfg.nnz >= cfg.m + cfg.n,
               "need nnz >= m + n to cover every row and column");
  CUMF_EXPECTS(cfg.nnz <= static_cast<nnz_t>(cfg.m) * cfg.n,
               "nnz exceeds matrix capacity");

  Rng rng(cfg.seed);
  SyntheticDataset out;

  // Planted factors: the dot product of two length-k vectors with i.i.d.
  // N(0, a²) entries has variance k·a⁴, so a = sqrt(s/√k) gives the dot
  // product a std-dev of s.
  const double factor_std = std::sqrt(
      cfg.signal_std / std::sqrt(static_cast<double>(cfg.true_rank)));
  out.true_user_factors = Matrix(cfg.m, cfg.true_rank);
  out.true_item_factors = Matrix(cfg.n, cfg.true_rank);
  for (index_t u = 0; u < cfg.m; ++u) {
    for (std::size_t k = 0; k < cfg.true_rank; ++k) {
      out.true_user_factors(u, k) =
          static_cast<real_t>(rng.normal(0.0, factor_std));
    }
  }
  for (index_t v = 0; v < cfg.n; ++v) {
    for (std::size_t k = 0; k < cfg.true_rank; ++k) {
      out.true_item_factors(v, k) =
          static_cast<real_t>(rng.normal(0.0, factor_std));
    }
  }

  out.ratings = RatingsCoo(cfg.m, cfg.n);
  std::unordered_set<std::uint64_t> taken;
  taken.reserve(static_cast<std::size_t>(cfg.nnz) * 2);
  const auto key = [&](index_t u, index_t v) {
    return static_cast<std::uint64_t>(u) * cfg.n + v;
  };

  double sq_noise = 0.0;
  const auto emit = [&](index_t u, index_t v) {
    const double noise = rng.normal(0.0, cfg.noise_std);
    const double clean =
        planted_value(cfg, out.true_user_factors, out.true_item_factors, u,
                      v, 0.0);
    const double noisy =
        planted_value(cfg, out.true_user_factors, out.true_item_factors, u,
                      v, noise);
    sq_noise += (noisy - clean) * (noisy - clean);
    out.ratings.add(u, v, static_cast<real_t>(noisy));
  };

  // Pass 1: one entry per row and per column so no factor is unobserved.
  for (index_t u = 0; u < cfg.m; ++u) {
    const auto v = static_cast<index_t>(rng.uniform_index(cfg.n));
    taken.insert(key(u, v));
    emit(u, v);
  }
  for (index_t v = 0; v < cfg.n; ++v) {
    const auto u = static_cast<index_t>(rng.uniform_index(cfg.m));
    if (taken.insert(key(u, v)).second) {
      emit(u, v);
    }
  }

  // Pass 2: fill to nnz with Zipf-skewed popularity, rejecting duplicates.
  const ZipfSampler row_sampler(cfg.m, cfg.row_zipf);
  const ZipfSampler col_sampler(cfg.n, cfg.col_zipf);
  // Random permutations decouple Zipf rank from index order, so popular
  // rows/columns are scattered across the index space as in real data.
  std::vector<index_t> row_perm(cfg.m);
  std::vector<index_t> col_perm(cfg.n);
  for (index_t i = 0; i < cfg.m; ++i) {
    row_perm[i] = i;
  }
  for (index_t i = 0; i < cfg.n; ++i) {
    col_perm[i] = i;
  }
  for (index_t i = cfg.m; i > 1; --i) {
    std::swap(row_perm[i - 1],
              row_perm[static_cast<index_t>(rng.uniform_index(i))]);
  }
  for (index_t i = cfg.n; i > 1; --i) {
    std::swap(col_perm[i - 1],
              col_perm[static_cast<index_t>(rng.uniform_index(i))]);
  }

  while (out.ratings.nnz() < cfg.nnz) {
    const index_t u = row_perm[row_sampler(rng)];
    const index_t v = col_perm[col_sampler(rng)];
    if (taken.insert(key(u, v)).second) {
      emit(u, v);
    }
  }

  out.ratings.sort_and_dedup();
  CUMF_ENSURES(out.ratings.nnz() == cfg.nnz, "duplicate slipped through");
  out.noise_floor_rmse =
      std::sqrt(sq_noise / static_cast<double>(out.ratings.nnz()));
  return out;
}

}  // namespace cumf
