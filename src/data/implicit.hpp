// Implicit-feedback conversion (Hu, Koren & Volinsky, ICDM'08; paper §V-F).
//
// Explicit ratings r_uv become binary preferences p_uv = 1[r_uv > 0] with
// confidence c_uv = 1 + α·r_uv. Zeros are no longer "missing" but low-
// confidence negatives, which makes the effective matrix dense — the reason
// SGD loses its competitiveness and ALS shines (§V-F).
#pragma once

#include "sparse/coo.hpp"

namespace cumf {

struct ImplicitDataset {
  /// Observed interactions: value holds the *raw* strength r_uv (> 0).
  RatingsCoo interactions;
  double alpha = 40.0;  ///< confidence scaling c_uv = 1 + α·r_uv
};

/// Converts explicit ratings into implicit interactions: entries with
/// r ≥ threshold are kept (value = r − threshold + 1, a positive strength);
/// the rest are dropped (they become the implicit zeros).
ImplicitDataset to_implicit(const RatingsCoo& explicit_ratings,
                            real_t threshold, double alpha);

/// Confidence of an observed interaction with strength r.
inline double confidence(const ImplicitDataset& d, real_t r) noexcept {
  return 1.0 + d.alpha * static_cast<double>(r);
}

}  // namespace cumf
