// Persistence for trained factor models.
//
// Text format, versioned header:
//   cumf-model 1
//   <rows> <cols>
//   <row 0: cols floats> ...
// Two matrices (X then Θ) make a model file. Deliberately human-readable —
// the same trade LIBMF makes for its model files. Values are written as
// shortest round-trip decimals (std::to_chars) and parsed with
// std::from_chars, so the round trip is bit-exact, locale-independent, and
// survives non-finite values; a served model is exactly the trained model.
#pragma once

#include <iosfwd>
#include <string>

#include "linalg/dense.hpp"

namespace cumf {

void write_matrix(std::ostream& os, const Matrix& matrix);
Matrix read_matrix(std::istream& is);

struct FactorModel {
  Matrix x;      ///< m×f user factors
  Matrix theta;  ///< n×f item factors
};

void write_model(std::ostream& os, const FactorModel& model);
void write_model_file(const std::string& path, const FactorModel& model);

/// Throws CheckError on malformed input (bad magic, truncated data,
/// mismatched latent dimensions between the two matrices).
FactorModel read_model(std::istream& is);
FactorModel read_model_file(const std::string& path);

}  // namespace cumf
