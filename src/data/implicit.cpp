#include "data/implicit.hpp"

#include "common/check.hpp"

namespace cumf {

ImplicitDataset to_implicit(const RatingsCoo& explicit_ratings,
                            real_t threshold, double alpha) {
  CUMF_EXPECTS(alpha > 0.0, "confidence scale must be positive");
  ImplicitDataset out;
  out.alpha = alpha;
  out.interactions =
      RatingsCoo(explicit_ratings.rows(), explicit_ratings.cols());
  for (const Rating& e : explicit_ratings.entries()) {
    if (e.r >= threshold) {
      out.interactions.add(e.u, e.v, e.r - threshold + real_t{1});
    }
  }
  return out;
}

}  // namespace cumf
