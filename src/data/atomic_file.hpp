// Crash-safe file replacement: temp file + atomic rename.
//
// Every persistent artifact the trainer produces (model files, ratings
// dumps, checkpoints) goes through here: the payload is written to a
// sibling temp file, flushed, and rename()d over the destination. POSIX
// rename is atomic within a filesystem, so a reader — or a restarted
// trainer — observes either the complete old file or the complete new one,
// never a prefix. A crash mid-write leaves only a stray "<path>.tmp.<pid>"
// that the next successful write of the same path cleans up.
#pragma once

#include <string>
#include <string_view>

namespace cumf {

/// Atomically replaces `path` with `contents`. Throws CheckError if the
/// temp file cannot be created, written, flushed, or renamed; on failure
/// any existing file at `path` is left untouched and the temp is removed.
///
/// Honors the fault injector's short-write plan (analysis/faultinject.hpp):
/// when armed, only the first `short_write_bytes` bytes are written — the
/// torn-file case checkpoint readers must detect.
void atomic_write_file(const std::string& path, std::string_view contents);

/// The temp name used by atomic_write_file (exposed for tests asserting no
/// temp file survives a successful write).
std::string atomic_temp_path(const std::string& path);

}  // namespace cumf
