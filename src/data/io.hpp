// Plain-text I/O for rating matrices.
//
// Format: a header line "m n nnz" followed by one "u v r" triplet per line
// (0-based indices). This is the interchange format of the example programs;
// it is deliberately the same simple layout used by LIBMF and NOMAD inputs.
#pragma once

#include <iosfwd>
#include <string>

#include "sparse/coo.hpp"

namespace cumf {

void write_ratings(std::ostream& os, const RatingsCoo& ratings);
void write_ratings_file(const std::string& path, const RatingsCoo& ratings);

/// Parses the format written by write_ratings. Throws CheckError on
/// malformed input (bad header, out-of-range indices, truncated file).
RatingsCoo read_ratings(std::istream& is);
RatingsCoo read_ratings_file(const std::string& path);

}  // namespace cumf
