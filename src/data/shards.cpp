#include "data/shards.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>

#include "common/crc32.hpp"
#include "common/rng.hpp"
#include "data/atomic_file.hpp"
#include "sparse/partition.hpp"
#include "sparse/split.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define CUMF_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace cumf {
namespace {

[[noreturn]] void reject(ShardReject reason, const std::string& detail) {
  throw ShardError(reason,
                   std::string("shard ") + to_string(reason) + ": " + detail);
}

/// Appends fixed-width scalars in native (little-endian) byte order — the
/// same discipline as the checkpoint writer.
class ByteWriter {
 public:
  explicit ByteWriter(std::string& out) : out_(out) {}

  template <typename T>
  void put(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* bytes = reinterpret_cast<const char*>(&value);
    out_.append(bytes, sizeof(T));
  }

  void put_f32(float v) { put(std::bit_cast<std::uint32_t>(v)); }
  void put_f64(double v) { put(std::bit_cast<std::uint64_t>(v)); }

 private:
  std::string& out_;
};

/// Bounds-checked cursor over a payload; any overrun is a torn write.
class ByteReader {
 public:
  explicit ByteReader(std::string_view buf) : buf_(buf) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    if (buf_.size() - pos_ < sizeof(T)) {
      reject(ShardReject::truncated, "payload ends mid-field");
    }
    T value;
    std::memcpy(&value, buf_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  float get_f32() { return std::bit_cast<float>(get<std::uint32_t>()); }
  double get_f64() { return std::bit_cast<double>(get<std::uint64_t>()); }

  /// Caps a stored element count by what the remaining payload can hold, so
  /// a corrupted-but-CRC-valid count never becomes a huge allocation.
  std::uint64_t get_count(std::size_t elem_bytes) {
    const auto n = get<std::uint64_t>();
    if (n > remaining() / elem_bytes) {
      reject(ShardReject::malformed, "element count exceeds payload size");
    }
    return n;
  }

  std::size_t remaining() const noexcept { return buf_.size() - pos_; }

 private:
  std::string_view buf_;
  std::size_t pos_ = 0;
};

std::string frame(std::string_view magic, std::string_view payload) {
  std::string out;
  out.reserve(magic.size() + 16 + payload.size());
  out.append(magic);
  ByteWriter w(out);
  w.put(kShardVersion);
  w.put<std::uint64_t>(payload.size());
  out.append(payload);
  w.put(crc32(0, payload.data(), payload.size()));
  return out;
}

/// Validates magic/version/length/CRC and returns a view of the payload.
std::string_view unframe(std::string_view magic, std::string_view bytes,
                         const std::string& what) {
  constexpr std::size_t kHeader = 8 + 4 + 8;  // magic + version + length
  if (bytes.size() < kHeader) {
    if (bytes.substr(0, magic.size()) !=
        magic.substr(0, std::min(bytes.size(), magic.size()))) {
      reject(ShardReject::bad_magic, what + " shorter than the magic");
    }
    reject(ShardReject::truncated, what + " shorter than the header");
  }
  if (bytes.substr(0, magic.size()) != magic) {
    reject(ShardReject::bad_magic,
           what + " expected leading \"" + std::string(magic) + "\"");
  }
  std::uint32_t version = 0;
  std::memcpy(&version, bytes.data() + 8, sizeof(version));
  if (version != kShardVersion) {
    reject(ShardReject::version_skew,
           what + " version " + std::to_string(version) +
               ", reader supports " + std::to_string(kShardVersion));
  }
  std::uint64_t payload_len = 0;
  std::memcpy(&payload_len, bytes.data() + 12, sizeof(payload_len));
  if (bytes.size() - kHeader < payload_len ||
      bytes.size() - kHeader - payload_len < sizeof(std::uint32_t)) {
    reject(ShardReject::truncated,
           what + " promises " + std::to_string(payload_len) +
               " payload bytes, file has " +
               std::to_string(bytes.size() - kHeader));
  }
  const std::string_view payload = bytes.substr(kHeader, payload_len);
  std::uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + kHeader + payload_len,
              sizeof(stored_crc));
  if (stored_crc != crc32(0, payload.data(), payload.size())) {
    reject(ShardReject::bad_crc, what + " stored CRC does not match payload");
  }
  return payload;
}

void read_whole_file(const std::string& path, std::string& out) {
  out.clear();
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    reject(ShardReject::io, "cannot open '" + path + "'");
  }
  char buf[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), file)) > 0) {
    out.append(buf, got);
  }
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) {
    reject(ShardReject::io, "read error on '" + path + "'");
  }
}

#ifdef CUMF_HAVE_MMAP
/// RAII read-only mapping of a whole file. `valid()` is false (not fatal)
/// when the file cannot be mapped — the caller falls back to reads.
class MappedFile {
 public:
  explicit MappedFile(const std::string& path) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      reject(ShardReject::io, "cannot open '" + path + "'");
    }
    struct stat st {};
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
      ::close(fd);
      reject(ShardReject::io, "cannot stat '" + path + "'");
    }
    size_ = static_cast<std::size_t>(st.st_size);
    if (size_ > 0) {
      void* map = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
      data_ = (map == MAP_FAILED) ? nullptr : static_cast<const char*>(map);
    }
    ::close(fd);
  }
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile() {
    if (data_ != nullptr) {
      ::munmap(const_cast<char*>(data_), size_);
    }
  }

  bool valid() const noexcept { return data_ != nullptr || size_ == 0; }
  std::string_view view() const noexcept { return {data_, size_}; }

 private:
  const char* data_ = nullptr;
  std::size_t size_ = 0;
};
#endif

std::string render_tile_payload(const CsrTile& tile) {
  std::string payload;
  ByteWriter w(payload);
  w.put<std::uint8_t>(static_cast<std::uint8_t>(tile.view));
  w.put<std::uint32_t>(tile.index);
  w.put<std::uint32_t>(tile.row_begin);
  w.put<std::uint32_t>(tile.row_end);
  w.put<std::uint32_t>(tile.csr.cols());
  w.put<std::uint64_t>(tile.csr.nnz());
  for (const nnz_t p : tile.csr.row_ptr()) {
    w.put<std::uint64_t>(p);
  }
  for (const index_t v : tile.csr.col_idx()) {
    w.put<std::uint32_t>(v);
  }
  for (const real_t r : tile.csr.values()) {
    w.put_f32(r);
  }
  return payload;
}

CsrTile parse_tile_payload(std::string_view payload,
                           const std::string& what) {
  ByteReader r(payload);
  CsrTile tile;
  const auto view_raw = r.get<std::uint8_t>();
  if (view_raw > 1) {
    reject(ShardReject::malformed, what + " has an unknown view tag");
  }
  tile.view = static_cast<TileView>(view_raw);
  tile.index = r.get<std::uint32_t>();
  tile.row_begin = r.get<std::uint32_t>();
  tile.row_end = r.get<std::uint32_t>();
  const auto cols = r.get<std::uint32_t>();
  if (tile.row_end < tile.row_begin) {
    reject(ShardReject::malformed, what + " has an inverted row range");
  }
  const index_t rows = tile.row_end - tile.row_begin;
  const auto nnz = r.get_count(sizeof(std::uint64_t));
  if (static_cast<std::uint64_t>(rows) + 1 >
      r.remaining() / sizeof(std::uint64_t)) {
    reject(ShardReject::malformed, what + " row count exceeds payload size");
  }
  std::vector<nnz_t> row_ptr;
  row_ptr.reserve(static_cast<std::size_t>(rows) + 1);
  for (index_t u = 0; u <= rows; ++u) {
    row_ptr.push_back(r.get<std::uint64_t>());
  }
  std::vector<index_t> col_idx;
  col_idx.reserve(nnz);
  for (std::uint64_t k = 0; k < nnz; ++k) {
    col_idx.push_back(r.get<std::uint32_t>());
  }
  std::vector<real_t> values;
  values.reserve(nnz);
  for (std::uint64_t k = 0; k < nnz; ++k) {
    values.push_back(r.get_f32());
  }
  if (r.remaining() != 0) {
    reject(ShardReject::malformed, what + " has trailing bytes");
  }
  try {
    // from_parts re-validates the structural invariants (monotone row_ptr
    // spanning [0, nnz], columns < cols); a CRC-valid file that fails them
    // is malformed, not corrupted.
    tile.csr = CsrMatrix::from_parts(rows, cols, std::move(row_ptr),
                                     std::move(col_idx), std::move(values));
  } catch (const CheckError& e) {
    reject(ShardReject::malformed, what + ": " + e.what());
  }
  return tile;
}

void put_tile_table(ByteWriter& w, const std::vector<TileRange>& tiles) {
  w.put<std::uint64_t>(tiles.size());
  for (const TileRange& t : tiles) {
    w.put<std::uint32_t>(t.row_begin);
    w.put<std::uint32_t>(t.row_end);
    w.put<std::uint64_t>(t.nnz);
    w.put<std::uint64_t>(t.bytes);
  }
}

std::vector<TileRange> get_tile_table(ByteReader& r) {
  const auto count = r.get_count(24);  // 2×u32 + 2×u64 per entry
  std::vector<TileRange> tiles;
  tiles.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    TileRange t;
    t.row_begin = r.get<std::uint32_t>();
    t.row_end = r.get<std::uint32_t>();
    t.nnz = r.get<std::uint64_t>();
    t.bytes = r.get<std::uint64_t>();
    tiles.push_back(t);
  }
  return tiles;
}

std::string render_meta_payload(const ShardMeta& meta) {
  std::string payload;
  ByteWriter w(payload);
  w.put<std::uint32_t>(meta.rows);
  w.put<std::uint32_t>(meta.cols);
  w.put<std::uint64_t>(meta.train_nnz);
  w.put<std::uint64_t>(meta.test_nnz);
  w.put_f64(meta.mean);
  w.put_f64(meta.test_fraction);
  w.put<std::uint64_t>(meta.seed);
  put_tile_table(w, meta.row_tiles);
  put_tile_table(w, meta.col_tiles);
  return payload;
}

ShardMeta parse_meta_payload(std::string_view payload) {
  ByteReader r(payload);
  ShardMeta meta;
  meta.rows = r.get<std::uint32_t>();
  meta.cols = r.get<std::uint32_t>();
  meta.train_nnz = r.get<std::uint64_t>();
  meta.test_nnz = r.get<std::uint64_t>();
  meta.mean = r.get_f64();
  meta.test_fraction = r.get_f64();
  meta.seed = r.get<std::uint64_t>();
  meta.row_tiles = get_tile_table(r);
  meta.col_tiles = get_tile_table(r);
  if (r.remaining() != 0) {
    reject(ShardReject::malformed, "meta has trailing bytes");
  }
  return meta;
}

std::string render_test_payload(const RatingsCoo& test) {
  std::string payload;
  ByteWriter w(payload);
  w.put<std::uint32_t>(test.rows());
  w.put<std::uint32_t>(test.cols());
  w.put<std::uint64_t>(test.nnz());
  for (const Rating& e : test.entries()) {
    w.put<std::uint32_t>(e.u);
    w.put<std::uint32_t>(e.v);
    w.put_f32(e.r);
  }
  return payload;
}

RatingsCoo parse_test_payload(std::string_view payload) {
  ByteReader r(payload);
  const auto rows = r.get<std::uint32_t>();
  const auto cols = r.get<std::uint32_t>();
  const auto nnz = r.get_count(12);  // u, v, f32 bits per entry
  RatingsCoo test(rows, cols);
  test.entries().reserve(nnz);
  for (std::uint64_t k = 0; k < nnz; ++k) {
    const auto u = r.get<std::uint32_t>();
    const auto v = r.get<std::uint32_t>();
    const float val = r.get_f32();
    if (u >= rows || v >= cols) {
      reject(ShardReject::malformed, "test entry index out of range");
    }
    test.add(u, v, val);
  }
  if (r.remaining() != 0) {
    reject(ShardReject::malformed, "test set has trailing bytes");
  }
  return test;
}

/// Cuts one CSR view into nnz-balanced tiles, writes each tile file, and
/// returns the tile table (with on-disk sizes filled in).
std::vector<TileRange> write_view_tiles(const std::string& dir,
                                        TileView view, const CsrMatrix& csr,
                                        std::size_t tiles) {
  const std::vector<std::size_t> bounds = nnz_balanced_bounds(csr, tiles);
  std::vector<TileRange> table;
  table.reserve(bounds.size() - 1);
  for (std::size_t t = 0; t + 1 < bounds.size(); ++t) {
    const auto begin = static_cast<index_t>(bounds[t]);
    const auto end = static_cast<index_t>(bounds[t + 1]);
    CsrTile tile;
    tile.view = view;
    tile.index = static_cast<std::uint32_t>(t);
    tile.row_begin = begin;
    tile.row_end = end;
    // Rebase the row range to a local CSR: row_ptr shifts to start at 0,
    // col_idx/values are copied verbatim (columns stay global ids).
    const std::vector<nnz_t>& ptr = csr.row_ptr();
    const nnz_t lo = ptr[begin];
    const nnz_t hi = ptr[end];
    std::vector<nnz_t> row_ptr;
    row_ptr.reserve(static_cast<std::size_t>(end - begin) + 1);
    for (index_t u = begin; u <= end; ++u) {
      row_ptr.push_back(ptr[u] - lo);
    }
    std::vector<index_t> col_idx(csr.col_idx().begin() + lo,
                                 csr.col_idx().begin() + hi);
    std::vector<real_t> values(csr.values().begin() + lo,
                               csr.values().begin() + hi);
    tile.csr = CsrMatrix::from_parts(end - begin, csr.cols(),
                                     std::move(row_ptr), std::move(col_idx),
                                     std::move(values));
    const std::string bytes = frame(kTileMagic, render_tile_payload(tile));
    atomic_write_file(tile_path(dir, view, t), bytes);
    table.push_back(TileRange{begin, end, tile.csr.nnz(),
                              static_cast<std::uint64_t>(bytes.size())});
  }
  return table;
}

}  // namespace

const char* to_string(ShardReject reason) {
  switch (reason) {
    case ShardReject::io:
      return "unreadable";
    case ShardReject::bad_magic:
      return "not a cumf shard file (bad magic)";
    case ShardReject::version_skew:
      return "incompatible format version";
    case ShardReject::truncated:
      return "truncated (torn write?)";
    case ShardReject::bad_crc:
      return "corrupted (CRC mismatch)";
    case ShardReject::malformed:
      return "malformed payload";
    case ShardReject::mismatch:
      return "belongs to a different tile or shard store";
  }
  return "unknown rejection";
}

const char* to_string(TileView view) {
  return view == TileView::by_row ? "by_row" : "by_col";
}

std::string tile_path(const std::string& dir, TileView view,
                      std::size_t index) {
  char name[32];
  std::snprintf(name, sizeof(name), "tile-%c-%04zu.bin",
                view == TileView::by_row ? 'r' : 'c', index);
  return (std::filesystem::path(dir) / name).string();
}

bool is_shard_dir(const std::string& dir) {
  std::error_code ec;
  return std::filesystem::is_regular_file(
      std::filesystem::path(dir) / kShardMetaFile, ec);
}

ShardMeta write_shards(const std::string& dir, const RatingsCoo& all,
                       const ShardBuildOptions& options) {
  CUMF_EXPECTS(options.tiles >= 1, "need at least one tile per view");
  CUMF_EXPECTS(options.test_fraction >= 0 && options.test_fraction < 1,
               "test fraction must be in [0, 1)");
  std::filesystem::create_directories(dir);

  // Replicate cumf_train's exact sequence — Rng(seed), split, canonicalize —
  // so an out-of-core run over these shards sees the identical train/test
  // partition and warm-start mean an in-core run of the same seed computes.
  Rng rng(options.seed);
  TrainTestSplit split = split_holdout(all, options.test_fraction, rng);
  RatingsCoo canonical = std::move(split.train);
  canonical.sort_and_dedup();
  for (const Rating& e : canonical.entries()) {
    CUMF_EXPECTS(std::isfinite(e.r), "ratings must be finite");
  }
  const CsrMatrix csr = CsrMatrix::from_coo(canonical);
  const CsrMatrix csr_t = csr.transposed();

  ShardMeta meta;
  meta.rows = csr.rows();
  meta.cols = csr.cols();
  meta.train_nnz = csr.nnz();
  meta.test_nnz = split.test.nnz();
  meta.mean = canonical.mean_value();
  meta.test_fraction = options.test_fraction;
  meta.seed = options.seed;
  meta.row_tiles = write_view_tiles(dir, TileView::by_row, csr,
                                    options.tiles);
  meta.col_tiles = write_view_tiles(dir, TileView::by_col, csr_t,
                                    options.tiles);

  const std::string test_file =
      (std::filesystem::path(dir) / kShardTestFile).string();
  atomic_write_file(test_file,
                    frame(kShardTestMagic, render_test_payload(split.test)));
  const std::string meta_file =
      (std::filesystem::path(dir) / kShardMetaFile).string();
  atomic_write_file(meta_file,
                    frame(kShardMetaMagic, render_meta_payload(meta)));
  return meta;
}

ShardMeta read_shard_meta(const std::string& dir) {
  const std::string path =
      (std::filesystem::path(dir) / kShardMetaFile).string();
  std::string bytes;
  read_whole_file(path, bytes);
  return parse_meta_payload(unframe(kShardMetaMagic, bytes, "meta"));
}

RatingsCoo read_shard_test(const std::string& dir) {
  const std::string path =
      (std::filesystem::path(dir) / kShardTestFile).string();
  std::string bytes;
  read_whole_file(path, bytes);
  return parse_test_payload(unframe(kShardTestMagic, bytes, "test set"));
}

CsrTile load_tile(const std::string& dir, TileView view, std::size_t index,
                  const TileRange& expected, bool use_mmap,
                  std::string* staging) {
  const std::string path = tile_path(dir, view, index);
  const std::string what = "tile '" + path + "'";
  CsrTile tile;
#ifdef CUMF_HAVE_MMAP
  if (use_mmap) {
    MappedFile map(path);
    if (map.valid()) {
      tile = parse_tile_payload(unframe(kTileMagic, map.view(), what), what);
    } else {
      std::string local;
      std::string& buf = staging != nullptr ? *staging : local;
      read_whole_file(path, buf);
      tile = parse_tile_payload(unframe(kTileMagic, buf, what), what);
    }
  } else
#else
  (void)use_mmap;
#endif
  {
    std::string local;
    std::string& buf = staging != nullptr ? *staging : local;
    read_whole_file(path, buf);
    tile = parse_tile_payload(unframe(kTileMagic, buf, what), what);
  }
  if (tile.view != view || tile.index != index ||
      tile.row_begin != expected.row_begin ||
      tile.row_end != expected.row_end || tile.csr.nnz() != expected.nnz) {
    reject(ShardReject::mismatch,
           what + " is valid but does not match the meta table entry (" +
               to_string(view) + " #" + std::to_string(index) + ")");
  }
  return tile;
}

std::uint64_t tile_resident_bytes(const TileRange& range) {
  const std::uint64_t rows = range.row_end - range.row_begin;
  return (rows + 1) * sizeof(nnz_t) +
         range.nnz * (sizeof(index_t) + sizeof(real_t));
}

TileCache::TileCache(std::string dir, ShardMeta meta,
                     const TileCacheOptions& options)
    : dir_(std::move(dir)),
      meta_(std::move(meta)),
      budget_(options.budget_bytes),
      use_mmap_(options.use_mmap) {
  std::uint64_t largest = 0;
  for (const std::vector<TileRange>* table : {&meta_.row_tiles,
                                              &meta_.col_tiles}) {
    for (const TileRange& t : *table) {
      largest = std::max(largest, tile_resident_bytes(t));
    }
  }
  CUMF_EXPECTS(budget_ >= largest,
               "host tile budget is smaller than the largest tile; "
               "re-shard with more tiles or raise --host-mem");
}

std::shared_ptr<const CsrTile> TileCache::get(TileView view,
                                              std::size_t index) {
  const std::vector<TileRange>& table = meta_.tiles(view);
  CUMF_EXPECTS(index < table.size(), "tile index out of range");
  const Key key{view, index};
  std::string staging;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      ++stats_.hits;
      lru_.splice(lru_.begin(), lru_, it->second);  // bump to most recent
      return it->second->tile;
    }
    ++stats_.misses;
    if (!staging_pool_.empty()) {
      staging = std::move(staging_pool_.back());
      staging_pool_.pop_back();
    }
  }
  // Load outside the lock: a prefetch miss must not stall concurrent hits.
  const auto t0 = std::chrono::steady_clock::now();
  auto tile = std::make_shared<const CsrTile>(
      load_tile(dir_, view, index, table[index], use_mmap_, &staging));
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const std::uint64_t bytes = tile_resident_bytes(table[index]);

  std::lock_guard<std::mutex> lock(mu_);
  stats_.load_seconds += seconds;
  stats_.bytes_loaded += table[index].bytes;
  staging.clear();
  staging_pool_.push_back(std::move(staging));
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Another thread loaded the same tile while we were off-lock; keep the
    // cached copy (ours is dropped) so both callers share one allocation.
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->tile;
  }
  evict_to_fit(bytes);
  lru_.push_front(Entry{key, tile, bytes});
  index_.emplace(key, lru_.begin());
  resident_ += bytes;
  return tile;
}

void TileCache::evict_to_fit(std::uint64_t incoming) {
  auto it = lru_.end();
  while (resident_ + incoming > budget_ && it != lru_.begin()) {
    --it;
    // An entry a caller still holds cannot free memory by eviction; skip it
    // and charge the budget to the least-recent releasable tile instead.
    if (it->tile.use_count() > 1) {
      continue;
    }
    resident_ -= it->bytes;
    ++stats_.evictions;
    index_.erase(it->key);
    it = lru_.erase(it);
  }
}

TileCache::Stats TileCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void TileCache::reset_stats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = Stats{};
}

std::uint64_t TileCache::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resident_;
}

}  // namespace cumf
