// Crash-safe training checkpoints: versioned binary snapshots with CRC.
//
// A checkpoint captures everything a killed training run needs to continue
// bit-identically: both factor matrices, the epoch counter, the holdout-
// split RNG state, the cumulative SolveStats, and the ConvergenceTracker
// curve, plus a run fingerprint (f, solver, fs, λ, seed, dataset shape)
// that resume validates so a checkpoint is never applied to the wrong run.
//
// Layout (fixed-width little-endian, the only layout this codebase targets):
//
//   [0..8)   magic "CUMFCKPT"
//   [8..12)  u32 format version (kCheckpointVersion)
//   [12..20) u64 payload length
//   [20..20+len) payload (see serialize_checkpoint)
//   [..+4)   u32 CRC-32 of the payload
//
// The reader trusts nothing before it is checked: wrong magic, version
// skew, a short file, and a CRC mismatch each raise CheckpointError with a
// distinct CkptReject reason that the CLI turns into a nonzero-exit
// diagnostic. Files are written through atomic_write_file, so a crash
// mid-checkpoint can never damage the previous good checkpoint.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "core/solver.hpp"
#include "linalg/dense.hpp"
#include "metrics/convergence.hpp"

namespace cumf {

inline constexpr std::string_view kCheckpointMagic = "CUMFCKPT";
inline constexpr std::uint32_t kCheckpointVersion = 1;

/// Why a checkpoint file was rejected.
enum class CkptReject {
  io,            ///< cannot open/read the file at all
  bad_magic,     ///< not a cumf checkpoint
  version_skew,  ///< written by an incompatible format version
  truncated,     ///< shorter than its header promises (torn write)
  bad_crc,       ///< payload checksum mismatch (corruption)
  malformed,     ///< CRC passed but the payload doesn't parse (logic bug)
  mismatch,      ///< valid checkpoint, but for a different run configuration
};

const char* to_string(CkptReject reason);

/// Thrown on any rejected checkpoint; carries the machine-readable reason
/// so callers can distinguish "retry another file" from "wrong run".
class CheckpointError : public CheckError {
 public:
  CheckpointError(CkptReject reason, const std::string& what)
      : CheckError(what), reason_(reason) {}
  CkptReject reason() const noexcept { return reason_; }

 private:
  CkptReject reason_;
};

/// Full resumable training state plus the run fingerprint.
struct TrainCheckpoint {
  // --- resumable state ---
  std::uint32_t epoch = 0;      ///< epochs completed when snapshotted
  Rng::State rng;               ///< holdout-split RNG after the split
  double train_seconds = 0.0;   ///< cumulative wall seconds before resume
  SolveStats solve_stats;       ///< cumulative since the logical run began
  std::vector<ConvergenceTracker::Point> curve;  ///< per-epoch RMSE history
  Matrix x;                     ///< m×f user factors
  Matrix theta;                 ///< n×f item factors

  // --- run fingerprint (validated by resume) ---
  std::uint64_t seed = 0;
  std::uint64_t f = 0;
  std::uint32_t solver_kind = 0;  ///< static_cast<uint32_t>(SolverKind)
  std::uint32_t cg_fs = 0;
  float lambda = 0.0f;
  std::uint32_t rows = 0;
  std::uint32_t cols = 0;
  std::uint64_t train_nnz = 0;
};

/// Renders the framed byte stream (magic, version, length, payload, CRC).
std::string serialize_checkpoint(const TrainCheckpoint& ckpt);

/// Parses and validates a byte stream; throws CheckpointError.
TrainCheckpoint parse_checkpoint(std::string_view bytes);

/// Atomic write via temp-file + rename (see data/atomic_file.hpp).
void write_checkpoint_file(const std::string& path,
                           const TrainCheckpoint& ckpt);

/// Reads and validates; throws CheckpointError (reason io if unreadable).
TrainCheckpoint read_checkpoint_file(const std::string& path);

/// "DIR/ckpt-<epoch, zero-padded>.bin" — sortable lexicographically.
std::string checkpoint_path(const std::string& dir, int epoch);

/// Highest-epoch "ckpt-*.bin" in `dir`; nullopt when none (or no dir).
std::optional<std::string> latest_checkpoint(const std::string& dir);

/// Deletes all but the `keep` highest-epoch checkpoints in `dir`, bounding
/// disk use for long runs. keep >= 1. Also collects "ckpt-*.bin.tmp.*"
/// orphans left by atomic writes that crashed before their rename.
void prune_checkpoints(const std::string& dir, int keep);

}  // namespace cumf
