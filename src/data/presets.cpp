#include "data/presets.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace cumf {

DatasetPreset DatasetPreset::netflix() {
  DatasetPreset p;
  p.name = "Netflix";
  p.full_m = 480'189;
  p.full_n = 17'770;
  p.full_nnz = 99'000'000;
  p.paper_f = 100;
  p.paper_lambda = 0.05;
  p.target_rmse = 0.92;

  // 1–5 star ratings, m:n ≈ 27:1.
  p.scaled.m = 6'000;
  p.scaled.n = 250;
  p.scaled.nnz = 300'000;
  p.scaled.true_rank = 8;
  p.scaled.mean = 3.6;
  p.scaled.signal_std = 0.55;
  p.scaled.noise_std = 0.85;
  p.scaled.rating_lo = 1.0;
  p.scaled.rating_hi = 5.0;
  p.scaled.row_zipf = 0.8;
  p.scaled.col_zipf = 0.9;
  p.scaled.seed = 4242;
  return p;
}

DatasetPreset DatasetPreset::yahoomusic() {
  DatasetPreset p;
  p.name = "YahooMusic";
  p.full_m = 1'000'990;
  p.full_n = 624'961;
  p.full_nnz = 252'800'000;
  p.paper_f = 100;
  p.paper_lambda = 1.4;
  p.target_rmse = 22.0;

  // 1–100 scale ratings, m:n ≈ 1.6:1.
  p.scaled.m = 5'000;
  p.scaled.n = 3'000;
  p.scaled.nnz = 260'000;
  p.scaled.true_rank = 8;
  p.scaled.mean = 50.0;
  p.scaled.signal_std = 14.0;
  p.scaled.noise_std = 20.0;
  p.scaled.rating_lo = 1.0;
  p.scaled.rating_hi = 100.0;
  p.scaled.row_zipf = 0.85;
  p.scaled.col_zipf = 1.0;
  p.scaled.seed = 777;
  return p;
}

DatasetPreset DatasetPreset::hugewiki() {
  DatasetPreset p;
  p.name = "Hugewiki";
  p.full_m = 50'082'603;
  p.full_n = 39'780;
  p.full_nnz = 3'100'000'000;
  p.paper_f = 100;
  p.paper_lambda = 0.05;
  p.target_rmse = 0.52;

  // Term frequencies (we use a 0–10 log-count-like scale), extremely tall.
  p.scaled.m = 10'000;
  p.scaled.n = 120;
  p.scaled.nnz = 320'000;
  p.scaled.true_rank = 8;
  p.scaled.mean = 1.8;
  p.scaled.signal_std = 0.35;
  p.scaled.noise_std = 0.45;
  p.scaled.rating_lo = 0.0;
  p.scaled.rating_hi = 10.0;
  p.scaled.row_zipf = 0.7;
  p.scaled.col_zipf = 1.1;
  p.scaled.seed = 31337;
  return p;
}

DatasetPreset DatasetPreset::resized(double factor) const {
  CUMF_EXPECTS(factor >= 0.05, "resize factor too small");
  DatasetPreset p = *this;
  const double dim_factor = std::sqrt(factor);
  p.scaled.m = std::max<index_t>(
      64, static_cast<index_t>(std::lround(scaled.m * dim_factor)));
  p.scaled.n = std::max<index_t>(
      32, static_cast<index_t>(std::lround(scaled.n * dim_factor)));
  p.scaled.nnz = std::max<nnz_t>(
      p.scaled.m + p.scaled.n,
      static_cast<nnz_t>(std::llround(static_cast<double>(scaled.nnz) *
                                      factor)));
  p.scaled.nnz = std::min<nnz_t>(
      p.scaled.nnz, static_cast<nnz_t>(p.scaled.m) * p.scaled.n / 3);
  return p;
}

SyntheticDataset generate(const DatasetPreset& preset) {
  return generate_synthetic(preset.scaled);
}

}  // namespace cumf
