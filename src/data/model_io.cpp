#include "data/model_io.hpp"

#include <charconv>
#include <fstream>
#include <sstream>
#include <string>

#include "common/check.hpp"
#include "data/atomic_file.hpp"

namespace cumf {

namespace {
constexpr const char* kMagic = "cumf-model";
constexpr int kVersion = 1;

/// Shortest decimal that parses back to exactly `value` (std::to_chars
/// round-trip guarantee). iostream formatting is deliberately avoided: it
/// honours the global locale, so a model written under a comma-decimal
/// locale would not be readable elsewhere, and its operator>> cannot parse
/// the "inf"/"nan" that a diverged model legitimately contains.
void append_value(std::string& out, real_t value) {
  char buf[48];
  const auto res = std::to_chars(buf, buf + sizeof buf, value);
  CUMF_ENSURES(res.ec == std::errc{}, "model value formatting failed");
  out.append(buf, res.ptr);
}

/// Locale-independent float parse of one whitespace-delimited token.
real_t parse_value(const std::string& token) {
  real_t value = 0;
  const char* begin = token.data();
  const char* end = begin + token.size();
  const auto res = std::from_chars(begin, end, value);
  CUMF_EXPECTS(res.ec == std::errc{} && res.ptr == end,
               "malformed matrix value '" + token + "'");
  return value;
}

}  // namespace

void write_matrix(std::ostream& os, const Matrix& matrix) {
  std::string line;
  os << matrix.rows() << ' ' << matrix.cols() << '\n';
  for (std::size_t r = 0; r < matrix.rows(); ++r) {
    const auto row = matrix.row(r);
    line.clear();
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) {
        line += ' ';
      }
      append_value(line, row[c]);
    }
    line += '\n';
    os << line;
  }
}

Matrix read_matrix(std::istream& is) {
  std::size_t rows = 0;
  std::size_t cols = 0;
  is >> rows >> cols;
  CUMF_EXPECTS(!is.fail(), "malformed matrix header");
  CUMF_EXPECTS(rows > 0 && cols > 0, "matrix dimensions must be positive");
  Matrix m(rows, cols);
  std::string token;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      is >> token;
      CUMF_EXPECTS(!is.fail(), "truncated matrix data");
      m(r, c) = parse_value(token);
    }
  }
  return m;
}

void write_model(std::ostream& os, const FactorModel& model) {
  CUMF_EXPECTS(model.x.cols() == model.theta.cols(),
               "factor matrices must share the latent dimension");
  os << kMagic << ' ' << kVersion << '\n';
  write_matrix(os, model.x);
  write_matrix(os, model.theta);
}

void write_model_file(const std::string& path, const FactorModel& model) {
  std::ostringstream os;
  write_model(os, model);
  CUMF_ENSURES(os.good(), "model serialization failed: " + path);
  // Atomic replace: an interrupted export never clobbers the previous model.
  atomic_write_file(path, os.str());
}

FactorModel read_model(std::istream& is) {
  std::string magic;
  int version = 0;
  is >> magic >> version;
  CUMF_EXPECTS(magic == kMagic, "not a cumf model file");
  CUMF_EXPECTS(version == kVersion, "unsupported model version");
  FactorModel model;
  model.x = read_matrix(is);
  model.theta = read_matrix(is);
  CUMF_EXPECTS(model.x.cols() == model.theta.cols(),
               "model file has mismatched latent dimensions");
  return model;
}

FactorModel read_model_file(const std::string& path) {
  std::ifstream is(path);
  CUMF_EXPECTS(is.good(), "cannot open model file for reading: " + path);
  return read_model(is);
}

}  // namespace cumf
