#include "data/model_io.hpp"

#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "common/check.hpp"
#include "data/atomic_file.hpp"

namespace cumf {

namespace {
constexpr const char* kMagic = "cumf-model";
constexpr int kVersion = 1;

/// Restores a stream's formatting state on scope exit. write_matrix needs
/// max_digits10 for lossless round-trips, but the caller's stream must not
/// come back with its precision silently changed (it used to: any `os`
/// passed in was left at max_digits10 for the rest of the program).
class StreamStateGuard {
 public:
  explicit StreamStateGuard(std::ostream& os)
      : os_(os), precision_(os.precision()), flags_(os.flags()) {}
  ~StreamStateGuard() {
    os_.precision(precision_);
    os_.flags(flags_);
  }
  StreamStateGuard(const StreamStateGuard&) = delete;
  StreamStateGuard& operator=(const StreamStateGuard&) = delete;

 private:
  std::ostream& os_;
  std::streamsize precision_;
  std::ios_base::fmtflags flags_;
};

}  // namespace

void write_matrix(std::ostream& os, const Matrix& matrix) {
  const StreamStateGuard guard(os);
  os << matrix.rows() << ' ' << matrix.cols() << '\n';
  os.precision(std::numeric_limits<real_t>::max_digits10);
  for (std::size_t r = 0; r < matrix.rows(); ++r) {
    const auto row = matrix.row(r);
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : " ") << row[c];
    }
    os << '\n';
  }
}

Matrix read_matrix(std::istream& is) {
  std::size_t rows = 0;
  std::size_t cols = 0;
  is >> rows >> cols;
  CUMF_EXPECTS(!is.fail(), "malformed matrix header");
  CUMF_EXPECTS(rows > 0 && cols > 0, "matrix dimensions must be positive");
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      is >> m(r, c);
      CUMF_EXPECTS(!is.fail(), "truncated matrix data");
    }
  }
  return m;
}

void write_model(std::ostream& os, const FactorModel& model) {
  CUMF_EXPECTS(model.x.cols() == model.theta.cols(),
               "factor matrices must share the latent dimension");
  os << kMagic << ' ' << kVersion << '\n';
  write_matrix(os, model.x);
  write_matrix(os, model.theta);
}

void write_model_file(const std::string& path, const FactorModel& model) {
  std::ostringstream os;
  write_model(os, model);
  CUMF_ENSURES(os.good(), "model serialization failed: " + path);
  // Atomic replace: an interrupted export never clobbers the previous model.
  atomic_write_file(path, os.str());
}

FactorModel read_model(std::istream& is) {
  std::string magic;
  int version = 0;
  is >> magic >> version;
  CUMF_EXPECTS(magic == kMagic, "not a cumf model file");
  CUMF_EXPECTS(version == kVersion, "unsupported model version");
  FactorModel model;
  model.x = read_matrix(is);
  model.theta = read_matrix(is);
  CUMF_EXPECTS(model.x.cols() == model.theta.cols(),
               "model file has mismatched latent dimensions");
  return model;
}

FactorModel read_model_file(const std::string& path) {
  std::ifstream is(path);
  CUMF_EXPECTS(is.good(), "cannot open model file for reading: " + path);
  return read_model(is);
}

}  // namespace cumf
