#include "data/model_io.hpp"

#include <fstream>
#include <limits>
#include <string>

#include "common/check.hpp"

namespace cumf {

namespace {
constexpr const char* kMagic = "cumf-model";
constexpr int kVersion = 1;
}  // namespace

void write_matrix(std::ostream& os, const Matrix& matrix) {
  os << matrix.rows() << ' ' << matrix.cols() << '\n';
  os.precision(std::numeric_limits<real_t>::max_digits10);
  for (std::size_t r = 0; r < matrix.rows(); ++r) {
    const auto row = matrix.row(r);
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : " ") << row[c];
    }
    os << '\n';
  }
}

Matrix read_matrix(std::istream& is) {
  std::size_t rows = 0;
  std::size_t cols = 0;
  is >> rows >> cols;
  CUMF_EXPECTS(!is.fail(), "malformed matrix header");
  CUMF_EXPECTS(rows > 0 && cols > 0, "matrix dimensions must be positive");
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      is >> m(r, c);
      CUMF_EXPECTS(!is.fail(), "truncated matrix data");
    }
  }
  return m;
}

void write_model(std::ostream& os, const FactorModel& model) {
  CUMF_EXPECTS(model.x.cols() == model.theta.cols(),
               "factor matrices must share the latent dimension");
  os << kMagic << ' ' << kVersion << '\n';
  write_matrix(os, model.x);
  write_matrix(os, model.theta);
}

void write_model_file(const std::string& path, const FactorModel& model) {
  std::ofstream os(path);
  CUMF_EXPECTS(os.good(), "cannot open model file for writing: " + path);
  write_model(os, model);
  CUMF_ENSURES(os.good(), "model write failed: " + path);
}

FactorModel read_model(std::istream& is) {
  std::string magic;
  int version = 0;
  is >> magic >> version;
  CUMF_EXPECTS(magic == kMagic, "not a cumf model file");
  CUMF_EXPECTS(version == kVersion, "unsupported model version");
  FactorModel model;
  model.x = read_matrix(is);
  model.theta = read_matrix(is);
  CUMF_EXPECTS(model.x.cols() == model.theta.cols(),
               "model file has mismatched latent dimensions");
  return model;
}

FactorModel read_model_file(const std::string& path) {
  std::ifstream is(path);
  CUMF_EXPECTS(is.good(), "cannot open model file for reading: " + path);
  return read_model(is);
}

}  // namespace cumf
