#include "data/checkpoint.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>

#include "common/crc32.hpp"
#include "data/atomic_file.hpp"

namespace cumf {
namespace {

[[noreturn]] void reject(CkptReject reason, const std::string& detail) {
  throw CheckpointError(reason, std::string("checkpoint ") +
                                    to_string(reason) + ": " + detail);
}

/// Appends fixed-width scalars in native (little-endian) byte order.
class ByteWriter {
 public:
  explicit ByteWriter(std::string& out) : out_(out) {}

  template <typename T>
  void put(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* bytes = reinterpret_cast<const char*>(&value);
    out_.append(bytes, sizeof(T));
  }

  void put_f32(float v) { put(std::bit_cast<std::uint32_t>(v)); }
  void put_f64(double v) { put(std::bit_cast<std::uint64_t>(v)); }

  void put_matrix(const Matrix& m) {
    put<std::uint64_t>(m.rows());
    put<std::uint64_t>(m.cols());
    for (const real_t v : m.data()) {
      put_f32(v);
    }
  }

 private:
  std::string& out_;
};

/// Bounds-checked cursor over the payload; any overrun is a torn write.
class ByteReader {
 public:
  explicit ByteReader(std::string_view buf) : buf_(buf) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    if (buf_.size() - pos_ < sizeof(T)) {
      reject(CkptReject::truncated, "payload ends mid-field");
    }
    T value;
    std::memcpy(&value, buf_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  float get_f32() { return std::bit_cast<float>(get<std::uint32_t>()); }
  double get_f64() { return std::bit_cast<double>(get<std::uint64_t>()); }

  Matrix get_matrix() {
    const auto rows = get<std::uint64_t>();
    const auto cols = get<std::uint64_t>();
    // Guard the multiplication before allocating: a corrupted-but-CRC-valid
    // header must not become a multi-terabyte allocation.
    const std::uint64_t max_elems = remaining() / sizeof(std::uint32_t);
    if (rows > max_elems || (rows != 0 && cols > max_elems / rows)) {
      reject(CkptReject::malformed, "matrix dims exceed payload size");
    }
    Matrix m(static_cast<std::size_t>(rows), static_cast<std::size_t>(cols));
    for (real_t& v : m.data()) {
      v = get_f32();
    }
    return m;
  }

  std::size_t remaining() const noexcept { return buf_.size() - pos_; }

 private:
  std::string_view buf_;
  std::size_t pos_ = 0;
};

std::string render_payload(const TrainCheckpoint& ckpt) {
  std::string payload;
  ByteWriter w(payload);
  w.put<std::uint32_t>(ckpt.epoch);
  for (const std::uint64_t word : ckpt.rng.s) {
    w.put(word);
  }
  w.put_f64(ckpt.rng.cached_normal);
  w.put<std::uint8_t>(ckpt.rng.has_cached_normal ? 1 : 0);
  w.put_f64(ckpt.train_seconds);

  w.put(ckpt.seed);
  w.put(ckpt.f);
  w.put(ckpt.solver_kind);
  w.put(ckpt.cg_fs);
  w.put_f32(ckpt.lambda);
  w.put(ckpt.rows);
  w.put(ckpt.cols);
  w.put(ckpt.train_nnz);

  const SolveStats& s = ckpt.solve_stats;
  w.put(s.systems);
  w.put(s.cg_iterations);
  w.put(s.failures);
  w.put(s.fp16_converted);
  w.put(s.cg_fallbacks);
  w.put(s.fp16_fallbacks);
  for (const std::uint64_t bucket : s.cg_hist) {
    w.put(bucket);
  }

  w.put<std::uint32_t>(static_cast<std::uint32_t>(ckpt.curve.size()));
  for (const ConvergenceTracker::Point& p : ckpt.curve) {
    w.put_f64(p.seconds);
    w.put_f64(p.rmse);
    w.put<std::int32_t>(p.epoch);
  }

  w.put_matrix(ckpt.x);
  w.put_matrix(ckpt.theta);
  return payload;
}

TrainCheckpoint parse_payload(std::string_view payload) {
  TrainCheckpoint ckpt;
  ByteReader r(payload);
  ckpt.epoch = r.get<std::uint32_t>();
  for (std::uint64_t& word : ckpt.rng.s) {
    word = r.get<std::uint64_t>();
  }
  ckpt.rng.cached_normal = r.get_f64();
  ckpt.rng.has_cached_normal = r.get<std::uint8_t>() != 0;
  ckpt.train_seconds = r.get_f64();

  ckpt.seed = r.get<std::uint64_t>();
  ckpt.f = r.get<std::uint64_t>();
  ckpt.solver_kind = r.get<std::uint32_t>();
  ckpt.cg_fs = r.get<std::uint32_t>();
  ckpt.lambda = r.get_f32();
  ckpt.rows = r.get<std::uint32_t>();
  ckpt.cols = r.get<std::uint32_t>();
  ckpt.train_nnz = r.get<std::uint64_t>();

  SolveStats& s = ckpt.solve_stats;
  s.systems = r.get<std::uint64_t>();
  s.cg_iterations = r.get<std::uint64_t>();
  s.failures = r.get<std::uint64_t>();
  s.fp16_converted = r.get<std::uint64_t>();
  s.cg_fallbacks = r.get<std::uint64_t>();
  s.fp16_fallbacks = r.get<std::uint64_t>();
  for (std::uint64_t& bucket : s.cg_hist) {
    bucket = r.get<std::uint64_t>();
  }

  const auto curve_len = r.get<std::uint32_t>();
  ckpt.curve.reserve(curve_len);
  for (std::uint32_t i = 0; i < curve_len; ++i) {
    ConvergenceTracker::Point p;
    p.seconds = r.get_f64();
    p.rmse = r.get_f64();
    p.epoch = r.get<std::int32_t>();
    ckpt.curve.push_back(p);
  }

  ckpt.x = r.get_matrix();
  ckpt.theta = r.get_matrix();

  if (r.remaining() != 0) {
    reject(CkptReject::malformed, "trailing bytes after the last field");
  }
  return ckpt;
}

}  // namespace

const char* to_string(CkptReject reason) {
  switch (reason) {
    case CkptReject::io:
      return "unreadable";
    case CkptReject::bad_magic:
      return "not a cumf checkpoint (bad magic)";
    case CkptReject::version_skew:
      return "incompatible format version";
    case CkptReject::truncated:
      return "truncated (torn write?)";
    case CkptReject::bad_crc:
      return "corrupted (CRC mismatch)";
    case CkptReject::malformed:
      return "malformed payload";
    case CkptReject::mismatch:
      return "belongs to a different run configuration";
  }
  return "unknown rejection";
}

std::string serialize_checkpoint(const TrainCheckpoint& ckpt) {
  const std::string payload = render_payload(ckpt);
  std::string out;
  out.reserve(kCheckpointMagic.size() + 16 + payload.size());
  out.append(kCheckpointMagic);
  ByteWriter w(out);
  w.put(kCheckpointVersion);
  w.put<std::uint64_t>(payload.size());
  out.append(payload);
  w.put(crc32(0, payload.data(), payload.size()));
  return out;
}

TrainCheckpoint parse_checkpoint(std::string_view bytes) {
  constexpr std::size_t kHeader = 8 + 4 + 8;  // magic + version + length
  if (bytes.size() < kHeader) {
    if (bytes.substr(0, kCheckpointMagic.size()) !=
        kCheckpointMagic.substr(0, std::min(bytes.size(),
                                            kCheckpointMagic.size()))) {
      reject(CkptReject::bad_magic, "file shorter than the magic");
    }
    reject(CkptReject::truncated, "file shorter than the header");
  }
  if (bytes.substr(0, kCheckpointMagic.size()) != kCheckpointMagic) {
    reject(CkptReject::bad_magic, "expected leading \"CUMFCKPT\"");
  }
  std::uint32_t version = 0;
  std::memcpy(&version, bytes.data() + 8, sizeof(version));
  if (version != kCheckpointVersion) {
    reject(CkptReject::version_skew,
           "file version " + std::to_string(version) + ", reader supports " +
               std::to_string(kCheckpointVersion));
  }
  std::uint64_t payload_len = 0;
  std::memcpy(&payload_len, bytes.data() + 12, sizeof(payload_len));
  if (bytes.size() - kHeader < payload_len ||
      bytes.size() - kHeader - payload_len < sizeof(std::uint32_t)) {
    reject(CkptReject::truncated,
           "header promises " + std::to_string(payload_len) +
               " payload bytes, file has " +
               std::to_string(bytes.size() - kHeader));
  }
  const std::string_view payload = bytes.substr(kHeader, payload_len);
  std::uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + kHeader + payload_len,
              sizeof(stored_crc));
  const std::uint32_t actual_crc = crc32(0, payload.data(), payload.size());
  if (stored_crc != actual_crc) {
    reject(CkptReject::bad_crc, "stored CRC does not match payload");
  }
  return parse_payload(payload);
}

void write_checkpoint_file(const std::string& path,
                           const TrainCheckpoint& ckpt) {
  atomic_write_file(path, serialize_checkpoint(ckpt));
}

TrainCheckpoint read_checkpoint_file(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    reject(CkptReject::io, "cannot open '" + path + "'");
  }
  std::string bytes;
  char buf[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), file)) > 0) {
    bytes.append(buf, got);
  }
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) {
    reject(CkptReject::io, "read error on '" + path + "'");
  }
  return parse_checkpoint(bytes);
}

std::string checkpoint_path(const std::string& dir, int epoch) {
  CUMF_EXPECTS(epoch >= 0, "checkpoint epoch must be non-negative");
  char name[32];
  std::snprintf(name, sizeof(name), "ckpt-%06d.bin", epoch);
  return (std::filesystem::path(dir) / name).string();
}

std::optional<std::string> latest_checkpoint(const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  std::optional<std::string> best;
  std::string best_name;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("ckpt-", 0) != 0 || name.size() < 10 ||
        name.substr(name.size() - 4) != ".bin") {
      continue;
    }
    // Zero-padded epoch → lexicographic order is numeric order.
    if (!best || name > best_name) {
      best = entry.path().string();
      best_name = name;
    }
  }
  return best;
}

void prune_checkpoints(const std::string& dir, int keep) {
  CUMF_EXPECTS(keep >= 1, "must keep at least one checkpoint");
  namespace fs = std::filesystem;
  std::error_code ec;
  std::vector<fs::path> found;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("ckpt-", 0) != 0) {
      continue;
    }
    // An atomic write that crashed between create and rename leaves a
    // "ckpt-*.bin.tmp.<pid>" orphan behind; it is never a valid resume
    // target (latest_checkpoint skips it), so pruning collects it too.
    if (name.find(".bin.tmp.") != std::string::npos) {
      fs::remove(entry.path(), ec);
      continue;
    }
    if (name.size() >= 10 && name.substr(name.size() - 4) == ".bin") {
      found.push_back(entry.path());
    }
  }
  if (found.size() <= static_cast<std::size_t>(keep)) {
    return;
  }
  std::sort(found.begin(), found.end());
  for (std::size_t i = 0; i + static_cast<std::size_t>(keep) < found.size();
       ++i) {
    fs::remove(found[i], ec);
  }
}

}  // namespace cumf
