// Synthetic rating-matrix generation.
//
// The paper evaluates on Netflix, YahooMusic and Hugewiki, none of which is
// redistributable (Netflix was withdrawn; YahooMusic requires a licence;
// Hugewiki is a 3.1-billion-entry crawl artifact). We generate matrices with
// the same *shape*: planted low-rank structure (so MF converges to a
// meaningful test RMSE), additive noise (so the achievable RMSE is bounded
// away from zero, like real data), power-law row/column degrees (real rating
// data is heavily skewed) and the per-dataset m/n/Nz/rating-scale statistics
// of Table II at a configurable scale factor.
#pragma once

#include <optional>

#include "common/rng.hpp"
#include "linalg/dense.hpp"
#include "sparse/coo.hpp"

namespace cumf {

struct SyntheticConfig {
  index_t m = 1000;          ///< rows (users)
  index_t n = 200;           ///< columns (items)
  nnz_t nnz = 20000;         ///< observed entries to sample
  std::size_t true_rank = 8; ///< rank of the planted model
  double mean = 3.6;         ///< global rating mean
  double signal_std = 0.9;   ///< std-dev of the planted low-rank signal
  double noise_std = 0.3;    ///< irreducible observation noise
  double rating_lo = 1.0;    ///< clip floor (e.g. 1 for Netflix)
  double rating_hi = 5.0;    ///< clip ceiling (e.g. 5 for Netflix)
  double row_zipf = 0.8;     ///< skew of user activity
  double col_zipf = 0.9;     ///< skew of item popularity
  std::uint64_t seed = 42;
};

struct SyntheticDataset {
  RatingsCoo ratings;
  /// Planted factors (for tests that check recovery, not used by training).
  Matrix true_user_factors;   // m × true_rank
  Matrix true_item_factors;   // n × true_rank
  /// RMSE of the *planted* model on the generated entries: the noise floor
  /// an MF solver can approach but not beat.
  double noise_floor_rmse = 0.0;
};

/// Generates a dataset per `config`. Every row and column receives at least
/// one entry (provided nnz ≥ m + n); remaining entries follow the Zipf
/// popularity laws with duplicate coordinates rejected.
SyntheticDataset generate_synthetic(const SyntheticConfig& config);

}  // namespace cumf
