#include "data/io.hpp"

#include <fstream>
#include <sstream>

#include "common/check.hpp"

namespace cumf {

void write_ratings(std::ostream& os, const RatingsCoo& ratings) {
  os << ratings.rows() << ' ' << ratings.cols() << ' ' << ratings.nnz()
     << '\n';
  for (const Rating& e : ratings.entries()) {
    os << e.u << ' ' << e.v << ' ' << e.r << '\n';
  }
}

void write_ratings_file(const std::string& path, const RatingsCoo& ratings) {
  std::ofstream os(path);
  CUMF_EXPECTS(os.good(), "cannot open file for writing: " + path);
  write_ratings(os, ratings);
  CUMF_ENSURES(os.good(), "write failed: " + path);
}

RatingsCoo read_ratings(std::istream& is) {
  index_t m = 0;
  index_t n = 0;
  nnz_t nnz = 0;
  is >> m >> n >> nnz;
  CUMF_EXPECTS(is.good() || is.eof(), "malformed header");
  CUMF_EXPECTS(m > 0 && n > 0, "matrix dimensions must be positive");

  RatingsCoo out(m, n);
  for (nnz_t i = 0; i < nnz; ++i) {
    index_t u = 0;
    index_t v = 0;
    real_t r = 0;
    is >> u >> v >> r;
    CUMF_EXPECTS(!is.fail(), "truncated or malformed entry");
    out.add(u, v, r);  // add() validates the index range
  }
  return out;
}

RatingsCoo read_ratings_file(const std::string& path) {
  std::ifstream is(path);
  CUMF_EXPECTS(is.good(), "cannot open file for reading: " + path);
  return read_ratings(is);
}

}  // namespace cumf
