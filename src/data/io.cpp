#include "data/io.hpp"

#include <fstream>
#include <sstream>
#include <string>

#include "common/check.hpp"
#include "data/atomic_file.hpp"

namespace cumf {

void write_ratings(std::ostream& os, const RatingsCoo& ratings) {
  os << ratings.rows() << ' ' << ratings.cols() << ' ' << ratings.nnz()
     << '\n';
  for (const Rating& e : ratings.entries()) {
    os << e.u << ' ' << e.v << ' ' << e.r << '\n';
  }
}

void write_ratings_file(const std::string& path, const RatingsCoo& ratings) {
  std::ostringstream os;
  write_ratings(os, ratings);
  CUMF_ENSURES(os.good(), "ratings serialization failed: " + path);
  // Temp-file + rename: a crash mid-write can't leave a half-written file
  // where a reader (or a resumed run) expects a complete dataset.
  atomic_write_file(path, os.str());
}

RatingsCoo read_ratings(std::istream& is) {
  index_t m = 0;
  index_t n = 0;
  // nnz_t is unsigned: a negative count in the header would wrap to a huge
  // positive value and read as "truncated" gibberish. Parse signed and
  // reject the sign explicitly so the diagnostic names the real problem.
  long long nnz_signed = 0;
  is >> m >> n >> nnz_signed;
  CUMF_EXPECTS(is.good() || is.eof(), "malformed header");
  CUMF_EXPECTS(m > 0 && n > 0, "matrix dimensions must be positive");
  CUMF_EXPECTS(nnz_signed >= 0, "header nnz must be non-negative");
  const auto nnz = static_cast<nnz_t>(nnz_signed);

  RatingsCoo out(m, n);
  for (nnz_t i = 0; i < nnz; ++i) {
    index_t u = 0;
    index_t v = 0;
    real_t r = 0;
    is >> u >> v >> r;
    CUMF_EXPECTS(!is.fail(),
                 "ratings truncated: header promises " + std::to_string(nnz) +
                     " entries, stream ended after " + std::to_string(i));
    out.add(u, v, r);  // add() validates the index range
  }
  return out;
}

RatingsCoo read_ratings_file(const std::string& path) {
  std::ifstream is(path);
  CUMF_EXPECTS(is.good(), "cannot open file for reading: " + path);
  return read_ratings(is);
}

}  // namespace cumf
