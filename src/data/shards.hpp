// Out-of-core shard store: a ratings matrix partitioned into checksummed
// CSR tile files plus a bounded host-side tile cache.
//
// `cumf_shard build` cuts the canonical train split into nnz-balanced row
// ranges of both views (R for update-X, Rᵀ for update-Θ) and writes one
// framed file per tile, the held-out test set, and a meta file carrying the
// run fingerprint the out-of-core engine needs to start bit-identically to
// an in-core run (shape, exact mean, seed, tile tables). Every file uses
// the checkpoint framing discipline:
//
//   [0..8)   magic ("CUMFTILE" / "CUMFSHRD" / "CUMFTEST")
//   [8..12)  u32 format version (kShardVersion)
//   [12..20) u64 payload length
//   [20..20+len) payload
//   [..+4)   u32 CRC-32 of the payload
//
// written through atomic_write_file, so a crash mid-shard never leaves a
// half-written tile under a valid name. The reader memory-maps each tile,
// verifies the CRC before trusting a byte, and rejects damage with a named
// ShardReject reason (same taxonomy as CkptReject).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"

namespace cumf {

inline constexpr std::string_view kTileMagic = "CUMFTILE";
inline constexpr std::string_view kShardMetaMagic = "CUMFSHRD";
inline constexpr std::string_view kShardTestMagic = "CUMFTEST";
inline constexpr std::uint32_t kShardVersion = 1;
inline constexpr std::string_view kShardMetaFile = "shard-meta.bin";
inline constexpr std::string_view kShardTestFile = "test.bin";

/// Why a shard file was rejected (mirrors CkptReject so CLI diagnostics
/// read the same for both artifact families).
enum class ShardReject {
  io,            ///< cannot open/read the file at all
  bad_magic,     ///< not a cumf shard/tile file
  version_skew,  ///< written by an incompatible format version
  truncated,     ///< shorter than its header promises (torn write)
  bad_crc,       ///< payload checksum mismatch (corruption)
  malformed,     ///< CRC passed but the payload doesn't parse
  mismatch,      ///< valid file, but not the tile/meta the caller asked for
};

const char* to_string(ShardReject reason);

/// Thrown on any rejected shard file; carries the machine-readable reason.
class ShardError : public CheckError {
 public:
  ShardError(ShardReject reason, const std::string& what)
      : CheckError(what), reason_(reason) {}
  ShardReject reason() const noexcept { return reason_; }

 private:
  ShardReject reason_;
};

/// Which half-sweep a tile feeds: rows of R (update-X) or rows of Rᵀ
/// (update-Θ).
enum class TileView : std::uint8_t { by_row = 0, by_col = 1 };

const char* to_string(TileView view);

/// One tile's slot in the meta tables: the global row range it covers in
/// its view, its nnz, and the framed file size on disk (what a host↔device
/// transfer of the tile costs).
struct TileRange {
  index_t row_begin = 0;
  index_t row_end = 0;
  nnz_t nnz = 0;
  std::uint64_t bytes = 0;

  friend bool operator==(const TileRange&, const TileRange&) = default;
};

/// Shard-store manifest. `mean` is the exact double mean_value() of the
/// canonical train split — als_init_factors must see the identical bits an
/// in-core run computes, or the warm start (and therefore every factor)
/// diverges.
struct ShardMeta {
  index_t rows = 0;
  index_t cols = 0;
  nnz_t train_nnz = 0;
  nnz_t test_nnz = 0;
  double mean = 0.0;
  double test_fraction = 0.0;
  std::uint64_t seed = 0;
  std::vector<TileRange> row_tiles;  ///< tiles of R (update-X view)
  std::vector<TileRange> col_tiles;  ///< tiles of Rᵀ (update-Θ view)

  const std::vector<TileRange>& tiles(TileView view) const noexcept {
    return view == TileView::by_row ? row_tiles : col_tiles;
  }
};

/// One decoded tile: rows [row_begin, row_end) of its view, stored as a
/// local CSR whose row 0 is global row row_begin (columns stay global).
struct CsrTile {
  TileView view = TileView::by_row;
  std::uint32_t index = 0;
  index_t row_begin = 0;
  index_t row_end = 0;
  CsrMatrix csr;
};

struct ShardBuildOptions {
  std::size_t tiles = 8;        ///< requested tile count per view (≥ 1)
  double test_fraction = 0.1;   ///< held-out share, as in cumf_train
  std::uint64_t seed = 1;       ///< drives the holdout split RNG
};

/// Splits `all` with the same Rng(seed)+split_holdout sequence cumf_train
/// uses, canonicalizes the train side, and writes tile files, test set and
/// meta into `dir` (created if missing). Tile cuts are nnz-balanced per
/// view, so the count may come out below `tiles` when single heavy rows
/// exceed an equal share. Returns the written meta. The build itself is
/// in-memory (sharding a dataset needs the RAM once; *training* is what
/// must run within the budget).
ShardMeta write_shards(const std::string& dir, const RatingsCoo& all,
                       const ShardBuildOptions& options);

/// "DIR/tile-r-0007.bin" / "DIR/tile-c-0007.bin".
std::string tile_path(const std::string& dir, TileView view,
                      std::size_t index);

/// True when `dir` contains a shard meta file (cumf_train's auto-detect).
bool is_shard_dir(const std::string& dir);

/// Reads and validates DIR/shard-meta.bin; throws ShardError.
ShardMeta read_shard_meta(const std::string& dir);

/// Reads and validates DIR/test.bin; throws ShardError.
RatingsCoo read_shard_test(const std::string& dir);

/// Loads one tile: maps (or reads) the file, checks magic/version/CRC,
/// decodes, and cross-checks view/index/row-range/nnz against `expected`
/// (reason `mismatch` when the file is valid but not the requested tile).
/// `staging` is an optional reusable read buffer for the no-mmap path.
CsrTile load_tile(const std::string& dir, TileView view, std::size_t index,
                  const TileRange& expected, bool use_mmap = true,
                  std::string* staging = nullptr);

/// Host bytes a decoded tile occupies (row_ptr + col_idx + values): the
/// quantity the cache budget meters, distinct from TileRange::bytes (disk).
std::uint64_t tile_resident_bytes(const TileRange& range);

struct TileCacheOptions {
  std::uint64_t budget_bytes = 0;  ///< hard resident-byte ceiling
  bool use_mmap = true;            ///< false → buffered-read fallback path
};

/// Bounded LRU cache of decoded tiles, safe for the engine's compute thread
/// and prefetch thread to share. A miss loads outside the lock (so a
/// prefetch never stalls a concurrent hit), then inserts and evicts
/// least-recently-used tiles until the resident total is back under budget.
/// Tiles handed out are shared_ptr<const CsrTile>, so an evicted tile a
/// caller still holds stays alive until released — the budget therefore
/// bounds *cached* bytes, with at most the in-flight tiles on top. The
/// staging buffers of the read path are pooled and reused across loads (the
/// pinned-host-buffer discipline of a real H2D pipeline).
class TileCache {
 public:
  TileCache(std::string dir, ShardMeta meta, const TileCacheOptions& options);

  /// Returns the tile, loading it on a miss. Throws ShardError on damage.
  std::shared_ptr<const CsrTile> get(TileView view, std::size_t index);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t bytes_loaded = 0;   ///< disk bytes read on misses
    double load_seconds = 0.0;        ///< wall time inside tile loads
  };
  Stats stats() const;
  void reset_stats();

  std::uint64_t resident_bytes() const;
  std::uint64_t budget_bytes() const noexcept { return budget_; }
  const ShardMeta& meta() const noexcept { return meta_; }

 private:
  struct Key {
    TileView view;
    std::size_t index;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      return k.index * 2 + static_cast<std::size_t>(k.view);
    }
  };
  struct Entry {
    Key key;
    std::shared_ptr<const CsrTile> tile;
    std::uint64_t bytes = 0;
  };

  void evict_to_fit(std::uint64_t incoming);  // caller holds mu_

  std::string dir_;
  ShardMeta meta_;
  std::uint64_t budget_ = 0;
  bool use_mmap_ = true;

  mutable std::mutex mu_;
  std::list<Entry> lru_;  ///< front = most recent
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index_;
  std::uint64_t resident_ = 0;
  std::vector<std::string> staging_pool_;
  Stats stats_;
};

}  // namespace cumf
