#include "data/atomic_file.hpp"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "analysis/faultinject.hpp"
#include "common/check.hpp"

namespace cumf {

std::string atomic_temp_path(const std::string& path) {
  // Pid-qualified so two processes checkpointing into the same directory
  // never scribble on each other's temp file.
  return path + ".tmp." + std::to_string(static_cast<long>(getpid()));
}

void atomic_write_file(const std::string& path, std::string_view contents) {
  CUMF_EXPECTS(!path.empty(), "atomic_write_file: empty path");
  const std::string tmp = atomic_temp_path(path);

  std::size_t limit = contents.size();
  if (analysis::FaultInjector::enabled()) {
    limit = std::min(
        limit, analysis::FaultInjector::instance().short_write_limit());
  }

  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  CUMF_EXPECTS(file != nullptr, "cannot create temp file for writing: " +
                                    tmp + " (" + std::strerror(errno) + ")");
  const std::size_t written =
      limit == 0 ? 0 : std::fwrite(contents.data(), 1, limit, file);
  // fflush pushes the bytes to the kernel before rename makes them visible;
  // a short fwrite/ENOSPC must abandon the temp, not replace the good file.
  const bool ok = written == limit && std::fflush(file) == 0;
  const bool closed = std::fclose(file) == 0;
  if (!ok || !closed) {
    std::remove(tmp.c_str());
    CUMF_ENSURES(false, "write failed for temp file: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string reason = std::strerror(errno);
    std::remove(tmp.c_str());
    CUMF_ENSURES(false,
                 "cannot rename " + tmp + " -> " + path + " (" + reason + ")");
  }
}

}  // namespace cumf
