// Dataset presets mirroring Table II of the paper.
//
// Each preset carries (a) the *published* full-scale statistics — used by the
// gpusim cost model to extrapolate kernel times at the paper's true sizes —
// and (b) a scaled-down generation config whose numerics run natively on this
// machine. The scaled config preserves the aspect ratio m:n and the rating
// scale; the noise level is chosen so the paper's "acceptable RMSE" threshold
// is attainable but not trivial (the planted noise floor sits a few percent
// below it, like the best published RMSEs on the real datasets).
#pragma once

#include <string>

#include "data/generator.hpp"

namespace cumf {

struct DatasetPreset {
  std::string name;

  // Published statistics (Table II).
  nnz_t full_m = 0;
  nnz_t full_n = 0;
  nnz_t full_nnz = 0;
  int paper_f = 100;          ///< latent dimension used in the paper
  double paper_lambda = 0.05; ///< regularization used in the paper
  double target_rmse = 0.0;   ///< the paper's "acceptable" test RMSE

  // Scaled synthetic config for native runs.
  SyntheticConfig scaled;

  static DatasetPreset netflix();
  static DatasetPreset yahoomusic();
  static DatasetPreset hugewiki();

  /// Multiplies the scaled nnz / m / n by `factor` (≥ 0.05), keeping the
  /// shape ratios. Useful for quick tests (factor < 1) or stress runs.
  DatasetPreset resized(double factor) const;
};

/// Generates the scaled dataset of a preset.
SyntheticDataset generate(const DatasetPreset& preset);

}  // namespace cumf
