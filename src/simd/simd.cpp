#include "simd/vec.hpp"

namespace cumf::simd {

const char* to_string(KernelPath path) noexcept {
  return path == KernelPath::simd ? "simd" : "scalar";
}

const char* backend_name() noexcept {
#if CUMF_SIMD_VEXT
#if defined(__AVX512F__)
  return "vector-ext/avx512";
#elif defined(__AVX2__)
  return "vector-ext/avx2";
#elif defined(__AVX__)
  return "vector-ext/avx";
#elif defined(__SSE2__) || defined(__x86_64__)
  return "vector-ext/sse2";
#else
  return "vector-ext/generic";
#endif
#else
  return "scalar-fallback";
#endif
}

}  // namespace cumf::simd
