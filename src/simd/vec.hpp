// Portable fixed-width SIMD layer for the hot-path kernels.
//
// The paper's kernels (get_hermitian tiling, the CG solve) live or die by
// data-parallel arithmetic; on the CPU reproduction that means vector
// registers. This header wraps GCC/Clang vector extensions behind small
// fixed-width value types — vf8 (8 × float) for elementwise work, vd4
// (4 × double) for reduction accumulators, vu8 (8 × uint32) for the bit
// manipulation in the FP16 unpack — with a scalar-array fallback selected at
// configure time (CMake option CUMF_SIMD, which defines CUMF_SIMD_ENABLED).
//
// Numerical contract, relied on by the differential tests:
//  - elementwise ops (add/mul/select/convert) are bitwise identical to the
//    scalar loops they replace — every lane performs the same IEEE op;
//  - reductions (hsum after lane-parallel accumulation) reassociate the sum,
//    so results are ULP-close, not bitwise equal, to a sequential loop.
//    Products of two floats widened to double are exact (24+24 ≤ 53 bits),
//    so lane accumulation in vd4 only reorders exactly-representable terms.
//
// Both kernel variants (scalar and SIMD) are always compiled; KernelPath
// selects per call, and kDefaultPath reflects the configure-time choice.
// With CUMF_SIMD=OFF the "simd" path still runs — through the scalar-array
// fallback below — so differential tests are meaningful in every config.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace cumf::simd {

/// Which implementation of a dual-path kernel to run.
enum class KernelPath { scalar, simd };

const char* to_string(KernelPath path) noexcept;

#if defined(CUMF_SIMD_ENABLED) && CUMF_SIMD_ENABLED && \
    (defined(__GNUC__) || defined(__clang__))
#define CUMF_SIMD_VEXT 1
#else
#define CUMF_SIMD_VEXT 0
#endif

/// True when the vector-extension backend is compiled in.
inline constexpr bool kSimdCompiled = CUMF_SIMD_VEXT != 0;

/// What production call sites use when the caller has no opinion.
inline constexpr KernelPath kDefaultPath =
    kSimdCompiled ? KernelPath::simd : KernelPath::scalar;

/// Human-readable backend tag for bench/report output.
const char* backend_name() noexcept;

#if CUMF_SIMD_VEXT

using f32x8 = float __attribute__((vector_size(32)));
using f64x4 = double __attribute__((vector_size(32)));
using u32x8 = std::uint32_t __attribute__((vector_size(32)));
using i32x8 = std::int32_t __attribute__((vector_size(32)));
using f32x4 = float __attribute__((vector_size(16)));

/// 8 packed floats. Loads/stores go through memcpy, so unaligned pointers
/// are fine (compiles to movups / vmovups).
struct vf8 {
  static constexpr std::size_t kLanes = 8;
  f32x8 v;

  static vf8 zero() noexcept { return {f32x8{}}; }
  static vf8 broadcast(float x) noexcept {
    return {f32x8{x, x, x, x, x, x, x, x}};
  }
  static vf8 load(const float* p) noexcept {
    vf8 r;
    std::memcpy(&r.v, p, sizeof(r.v));
    return r;
  }
  void store(float* p) const noexcept { std::memcpy(p, &v, sizeof(v)); }

  friend vf8 operator+(vf8 a, vf8 b) noexcept { return {a.v + b.v}; }
  friend vf8 operator-(vf8 a, vf8 b) noexcept { return {a.v - b.v}; }
  friend vf8 operator*(vf8 a, vf8 b) noexcept { return {a.v * b.v}; }
  vf8& operator+=(vf8 o) noexcept {
    v += o.v;
    return *this;
  }

  float lane(std::size_t i) const noexcept { return v[i]; }
};

/// 4 packed doubles — reduction accumulator.
struct vd4 {
  static constexpr std::size_t kLanes = 4;
  f64x4 v;

  static vd4 zero() noexcept { return {f64x4{}}; }

  /// Accumulates double(a_lane) * double(b_lane) for the low 4 lanes of a/b.
  /// The float→double widening makes each product exact.
  void mul_acc_lo(vf8 a, vf8 b) noexcept {
    const f32x4 al = __builtin_shufflevector(a.v, a.v, 0, 1, 2, 3);
    const f32x4 bl = __builtin_shufflevector(b.v, b.v, 0, 1, 2, 3);
    v += __builtin_convertvector(al, f64x4) *
         __builtin_convertvector(bl, f64x4);
  }
  /// Same for the high 4 lanes.
  void mul_acc_hi(vf8 a, vf8 b) noexcept {
    const f32x4 ah = __builtin_shufflevector(a.v, a.v, 4, 5, 6, 7);
    const f32x4 bh = __builtin_shufflevector(b.v, b.v, 4, 5, 6, 7);
    v += __builtin_convertvector(ah, f64x4) *
         __builtin_convertvector(bh, f64x4);
  }

  /// Pairwise horizontal sum: (v0+v2) + (v1+v3).
  double hsum() const noexcept { return (v[0] + v[2]) + (v[1] + v[3]); }
};

using f64x8 = double __attribute__((vector_size(64)));

/// 8 packed doubles — the {acc_lo, acc_hi} vd4 pair fused into a single
/// accumulator. Lane l holds exactly what lane (l < 4 ? acc_lo[l] :
/// acc_hi[l-4]) holds in the split form (same per-lane products, same
/// per-lane addition order), and hsum() reduces in the same order as
/// acc_lo.hsum() + acc_hi.hsum() — so a kernel ported from the vd4 pair to
/// vd8 is bit-identical, while the compiler gets one full-width convert and
/// FMA per chunk instead of two half-width shuffles + converts.
struct vd8 {
  static constexpr std::size_t kLanes = 8;
  f64x8 v;

  static vd8 zero() noexcept { return {f64x8{}}; }
  /// All 8 lanes widened to double (exact — every float is a double).
  static vd8 widen(vf8 a) noexcept {
    return {__builtin_convertvector(a.v, f64x8)};
  }
  /// acc += widen(a) * widen(b), one exact product per lane.
  void mul_acc(vf8 a, vf8 b) noexcept { v += widen(a).v * widen(b).v; }
  /// Same with a pre-widened left operand — hoists a's conversion out of
  /// loops that reuse it across many right operands (e.g. gemv rows).
  void mul_acc(vd8 a_wide, vf8 b) noexcept { v += a_wide.v * widen(b).v; }

  /// ((v0+v2)+(v1+v3)) + ((v4+v6)+(v5+v7)) — exactly the vd4 pair's
  /// acc_lo.hsum() + acc_hi.hsum().
  double hsum() const noexcept {
    return ((v[0] + v[2]) + (v[1] + v[3])) + ((v[4] + v[6]) + (v[5] + v[7]));
  }
};

/// 8 packed uint32 — bit manipulation for the FP16 unpack/pack.
struct vu8 {
  static constexpr std::size_t kLanes = 8;
  u32x8 v;

  static vu8 broadcast(std::uint32_t x) noexcept {
    return {u32x8{x, x, x, x, x, x, x, x}};
  }
  /// Widening load of 8 consecutive uint16 values.
  static vu8 load_u16(const std::uint16_t* p) noexcept {
    using u16x8 = std::uint16_t __attribute__((vector_size(16)));
    u16x8 narrow;
    std::memcpy(&narrow, p, sizeof(narrow));
    return {__builtin_convertvector(narrow, u32x8)};
  }
  /// Narrowing store of the low 16 bits of each lane.
  void store_u16(std::uint16_t* p) const noexcept {
    using u16x8 = std::uint16_t __attribute__((vector_size(16)));
    const u16x8 narrow = __builtin_convertvector(v, u16x8);
    std::memcpy(p, &narrow, sizeof(narrow));
  }

  friend vu8 operator&(vu8 a, vu8 b) noexcept { return {a.v & b.v}; }
  friend vu8 operator|(vu8 a, vu8 b) noexcept { return {a.v | b.v}; }
  friend vu8 operator+(vu8 a, vu8 b) noexcept { return {a.v + b.v}; }
  friend vu8 operator-(vu8 a, vu8 b) noexcept { return {a.v - b.v}; }
  friend vu8 operator<<(vu8 a, int s) noexcept { return {a.v << s}; }
  friend vu8 operator>>(vu8 a, int s) noexcept { return {a.v >> s}; }
  vu8 operator~() const noexcept { return {~v}; }

  /// Lanewise a == b / a >= b / a > b as all-ones / all-zeros masks.
  static vu8 eq(vu8 a, vu8 b) noexcept {
    return {std::bit_cast<u32x8>(a.v == b.v)};
  }
  static vu8 ge(vu8 a, vu8 b) noexcept {
    return {std::bit_cast<u32x8>(a.v >= b.v)};
  }
  static vu8 gt(vu8 a, vu8 b) noexcept {
    return {std::bit_cast<u32x8>(a.v > b.v)};
  }
  /// mask ? a : b, with mask lanes all-ones or all-zeros.
  static vu8 select(vu8 mask, vu8 a, vu8 b) noexcept {
    return {(mask.v & a.v) | (~mask.v & b.v)};
  }

  vf8 as_float() const noexcept { return {std::bit_cast<f32x8>(v)}; }
  static vu8 from_float(vf8 f) noexcept { return {std::bit_cast<u32x8>(f.v)}; }
};

#else  // scalar-array fallback: same API, element loops

struct vf8 {
  static constexpr std::size_t kLanes = 8;
  float v[8];

  static vf8 zero() noexcept { return vf8{{0, 0, 0, 0, 0, 0, 0, 0}}; }
  static vf8 broadcast(float x) noexcept {
    return vf8{{x, x, x, x, x, x, x, x}};
  }
  static vf8 load(const float* p) noexcept {
    vf8 r;
    std::memcpy(r.v, p, sizeof(r.v));
    return r;
  }
  void store(float* p) const noexcept { std::memcpy(p, v, sizeof(v)); }

  friend vf8 operator+(vf8 a, vf8 b) noexcept {
    vf8 r;
    for (std::size_t i = 0; i < kLanes; ++i) r.v[i] = a.v[i] + b.v[i];
    return r;
  }
  friend vf8 operator-(vf8 a, vf8 b) noexcept {
    vf8 r;
    for (std::size_t i = 0; i < kLanes; ++i) r.v[i] = a.v[i] - b.v[i];
    return r;
  }
  friend vf8 operator*(vf8 a, vf8 b) noexcept {
    vf8 r;
    for (std::size_t i = 0; i < kLanes; ++i) r.v[i] = a.v[i] * b.v[i];
    return r;
  }
  vf8& operator+=(vf8 o) noexcept {
    for (std::size_t i = 0; i < kLanes; ++i) v[i] += o.v[i];
    return *this;
  }

  float lane(std::size_t i) const noexcept { return v[i]; }
};

struct vd4 {
  static constexpr std::size_t kLanes = 4;
  double v[4];

  static vd4 zero() noexcept { return vd4{{0, 0, 0, 0}}; }
  void mul_acc_lo(vf8 a, vf8 b) noexcept {
    for (std::size_t i = 0; i < kLanes; ++i) {
      v[i] += static_cast<double>(a.v[i]) * static_cast<double>(b.v[i]);
    }
  }
  void mul_acc_hi(vf8 a, vf8 b) noexcept {
    for (std::size_t i = 0; i < kLanes; ++i) {
      v[i] += static_cast<double>(a.v[i + 4]) * static_cast<double>(b.v[i + 4]);
    }
  }
  double hsum() const noexcept { return (v[0] + v[2]) + (v[1] + v[3]); }
};

/// Fused {acc_lo, acc_hi} pair — see the vector-ext backend's vd8 doc.
struct vd8 {
  static constexpr std::size_t kLanes = 8;
  double v[8];

  static vd8 zero() noexcept { return vd8{{0, 0, 0, 0, 0, 0, 0, 0}}; }
  static vd8 widen(vf8 a) noexcept {
    vd8 r;
    for (std::size_t i = 0; i < kLanes; ++i) r.v[i] = a.v[i];
    return r;
  }
  void mul_acc(vf8 a, vf8 b) noexcept {
    for (std::size_t i = 0; i < kLanes; ++i) {
      v[i] += static_cast<double>(a.v[i]) * static_cast<double>(b.v[i]);
    }
  }
  void mul_acc(vd8 a_wide, vf8 b) noexcept {
    for (std::size_t i = 0; i < kLanes; ++i) {
      v[i] += a_wide.v[i] * static_cast<double>(b.v[i]);
    }
  }
  double hsum() const noexcept {
    return ((v[0] + v[2]) + (v[1] + v[3])) + ((v[4] + v[6]) + (v[5] + v[7]));
  }
};

struct vu8 {
  static constexpr std::size_t kLanes = 8;
  std::uint32_t v[8];

  static vu8 broadcast(std::uint32_t x) noexcept {
    return vu8{{x, x, x, x, x, x, x, x}};
  }
  static vu8 load_u16(const std::uint16_t* p) noexcept {
    vu8 r;
    for (std::size_t i = 0; i < kLanes; ++i) r.v[i] = p[i];
    return r;
  }
  void store_u16(std::uint16_t* p) const noexcept {
    for (std::size_t i = 0; i < kLanes; ++i) {
      p[i] = static_cast<std::uint16_t>(v[i]);
    }
  }

#define CUMF_VU8_BINOP(opname, expr)                     \
  friend vu8 opname(vu8 a, vu8 b) noexcept {             \
    vu8 r;                                               \
    for (std::size_t i = 0; i < kLanes; ++i) r.v[i] = (expr); \
    return r;                                            \
  }
  CUMF_VU8_BINOP(operator&, a.v[i] & b.v[i])
  CUMF_VU8_BINOP(operator|, a.v[i] | b.v[i])
  CUMF_VU8_BINOP(operator+, a.v[i] + b.v[i])
  CUMF_VU8_BINOP(operator-, a.v[i] - b.v[i])
#undef CUMF_VU8_BINOP
  friend vu8 operator<<(vu8 a, int s) noexcept {
    vu8 r;
    for (std::size_t i = 0; i < kLanes; ++i) r.v[i] = a.v[i] << s;
    return r;
  }
  friend vu8 operator>>(vu8 a, int s) noexcept {
    vu8 r;
    for (std::size_t i = 0; i < kLanes; ++i) r.v[i] = a.v[i] >> s;
    return r;
  }
  vu8 operator~() const noexcept {
    vu8 r;
    for (std::size_t i = 0; i < kLanes; ++i) r.v[i] = ~v[i];
    return r;
  }

  static vu8 eq(vu8 a, vu8 b) noexcept {
    vu8 r;
    for (std::size_t i = 0; i < kLanes; ++i) {
      r.v[i] = a.v[i] == b.v[i] ? ~0u : 0u;
    }
    return r;
  }
  static vu8 ge(vu8 a, vu8 b) noexcept {
    vu8 r;
    for (std::size_t i = 0; i < kLanes; ++i) {
      r.v[i] = a.v[i] >= b.v[i] ? ~0u : 0u;
    }
    return r;
  }
  static vu8 gt(vu8 a, vu8 b) noexcept {
    vu8 r;
    for (std::size_t i = 0; i < kLanes; ++i) {
      r.v[i] = a.v[i] > b.v[i] ? ~0u : 0u;
    }
    return r;
  }
  static vu8 select(vu8 mask, vu8 a, vu8 b) noexcept {
    return (mask & a) | (~mask & b);
  }

  vf8 as_float() const noexcept {
    vf8 r;
    for (std::size_t i = 0; i < kLanes; ++i) {
      r.v[i] = std::bit_cast<float>(v[i]);
    }
    return r;
  }
  static vu8 from_float(vf8 f) noexcept {
    vu8 r;
    for (std::size_t i = 0; i < kLanes; ++i) {
      r.v[i] = std::bit_cast<std::uint32_t>(f.v[i]);
    }
    return r;
  }
};

#endif  // CUMF_SIMD_VEXT

}  // namespace cumf::simd
