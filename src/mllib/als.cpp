#include "mllib/als.hpp"

#include "common/check.hpp"
#include "common/thread_pool.hpp"
#include "data/implicit.hpp"

namespace cumf::mllib {

AlsModel::AlsModel(Matrix user_factors, Matrix item_factors,
                   RatingsCoo train)
    : user_factors_(std::move(user_factors)),
      item_factors_(std::move(item_factors)) {
  train.sort_and_dedup();
  seen_ = CsrMatrix::from_coo(train);
  CUMF_EXPECTS(user_factors_.cols() == item_factors_.cols(),
               "factor rank mismatch");
  CUMF_EXPECTS(user_factors_.rows() == seen_.rows() &&
                   item_factors_.rows() == seen_.cols(),
               "factor shapes must match the training matrix");
}

real_t AlsModel::predict(index_t user, index_t item) const {
  CUMF_EXPECTS(user < user_factors_.rows() && item < item_factors_.rows(),
               "prediction index out of range");
  return static_cast<real_t>(
      dot(user_factors_.row(user), item_factors_.row(item)));
}

std::vector<real_t> AlsModel::transform(const RatingsCoo& pairs) const {
  std::vector<real_t> out;
  out.reserve(pairs.nnz());
  for (const Rating& e : pairs.entries()) {
    out.push_back(predict(e.u, e.v));
  }
  return out;
}

std::vector<std::vector<ScoredItem>> AlsModel::recommend_for_all_users(
    std::size_t k) const {
  // Each user's top-k is an independent scan over all items — an
  // embarrassingly parallel m×n×f workload, by far the most expensive model
  // method. Users write disjoint pre-sized slots, so no synchronization is
  // needed beyond the pool's own join.
  std::vector<std::vector<ScoredItem>> out(seen_.rows());
  ThreadPool pool;
  pool.parallel_for(out.size(), [&](std::size_t begin, std::size_t end,
                                    std::size_t) {
    for (std::size_t u = begin; u < end; ++u) {
      out[u] = recommend_top_k(user_factors_, item_factors_, seen_,
                               static_cast<index_t>(u), k);
    }
  });
  return out;
}

Als& Als::set_rank(int rank) {
  CUMF_EXPECTS(rank > 0, "rank must be positive");
  rank_ = rank;
  return *this;
}

Als& Als::set_reg_param(double reg) {
  CUMF_EXPECTS(reg > 0, "regParam must be positive");
  reg_param_ = reg;
  return *this;
}

Als& Als::set_max_iter(int iters) {
  CUMF_EXPECTS(iters >= 1, "maxIter must be at least 1");
  max_iter_ = iters;
  return *this;
}

Als& Als::set_implicit_prefs(bool implicit_prefs) {
  implicit_prefs_ = implicit_prefs;
  return *this;
}

Als& Als::set_alpha(double alpha) {
  CUMF_EXPECTS(alpha > 0, "alpha must be positive");
  alpha_ = alpha;
  return *this;
}

Als& Als::set_num_blocks(int blocks) {
  CUMF_EXPECTS(blocks >= 1, "numBlocks must be at least 1");
  num_blocks_ = blocks;
  return *this;
}

Als& Als::set_seed(std::uint64_t seed) {
  seed_ = seed;
  return *this;
}

Als& Als::set_solver(SolverKind kind, std::uint32_t cg_fs) {
  CUMF_EXPECTS(cg_fs >= 1, "cg_fs must be at least 1");
  solver_ = kind;
  cg_fs_ = cg_fs;
  return *this;
}

AlsModel Als::fit(const RatingsCoo& ratings) const {
  CUMF_EXPECTS(ratings.nnz() > 0, "cannot fit on an empty dataset");

  if (implicit_prefs_) {
    ImplicitDataset data;
    data.interactions = ratings;
    data.alpha = alpha_;
    ImplicitAlsOptions options;
    options.f = static_cast<std::size_t>(rank_);
    options.lambda = static_cast<real_t>(reg_param_);
    options.solver.kind = solver_ == SolverKind::CgFp16
                              ? SolverKind::CgFp32  // implicit A stays FP32
                              : solver_;
    options.solver.cg_fs = cg_fs_;
    options.seed = seed_ + 1;
    ImplicitAlsEngine engine(data, options);
    for (int iter = 0; iter < max_iter_; ++iter) {
      engine.run_epoch();
    }
    return AlsModel(engine.user_factors(), engine.item_factors(), ratings);
  }

  AlsOptions options;
  options.f = static_cast<std::size_t>(rank_);
  options.lambda = static_cast<real_t>(reg_param_);
  options.solver.kind = solver_;
  options.solver.cg_fs = cg_fs_;
  options.workers = num_blocks_;
  options.seed = seed_ + 1;
  AlsEngine engine(ratings, options);
  for (int iter = 0; iter < max_iter_; ++iter) {
    engine.run_epoch();
  }
  return AlsModel(engine.user_factors(), engine.item_factors(), ratings);
}

}  // namespace cumf::mllib
