// Spark-MLlib-style ALS facade (paper §VII: "We also integrated CUMFALS
// into Spark MLlib, accelerating its ALS algorithm").
//
// This mirrors org.apache.spark.ml.recommendation.ALS's builder API —
// setRank / setRegParam / setMaxIter / setImplicitPrefs / setAlpha /
// setNumBlocks — and backs fit() with the cuMF engines: AlsEngine for
// explicit ratings, ImplicitAlsEngine for implicit preferences. numBlocks
// maps to parallel host workers (Spark's partitions; rows are independent,
// so results are identical for any block count). The fitted model offers
// Spark's transform-style prediction plus recommendForAllUsers.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/als.hpp"
#include "core/implicit_als.hpp"
#include "metrics/ranking.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"

namespace cumf::mllib {

class AlsModel {
 public:
  AlsModel(Matrix user_factors, Matrix item_factors, RatingsCoo train);

  /// Spark's transform on a single (user, item) pair.
  real_t predict(index_t user, index_t item) const;

  /// Spark's transform over a dataset: predictions aligned with `pairs`'
  /// entry order (the entry values are ignored).
  std::vector<real_t> transform(const RatingsCoo& pairs) const;

  /// recommendForAllUsers(k): top-k unseen items per user.
  std::vector<std::vector<ScoredItem>> recommend_for_all_users(
      std::size_t k) const;

  const Matrix& user_factors() const noexcept { return user_factors_; }
  const Matrix& item_factors() const noexcept { return item_factors_; }
  int rank() const noexcept {
    return static_cast<int>(user_factors_.cols());
  }

 private:
  Matrix user_factors_;
  Matrix item_factors_;
  CsrMatrix seen_;  ///< training interactions, for recommendation filtering
};

/// Builder-style estimator, chainable like the Spark original.
class Als {
 public:
  Als& set_rank(int rank);
  Als& set_reg_param(double reg);
  Als& set_max_iter(int iters);
  Als& set_implicit_prefs(bool implicit_prefs);
  Als& set_alpha(double alpha);            ///< implicit confidence scale
  Als& set_num_blocks(int blocks);         ///< parallel workers
  Als& set_seed(std::uint64_t seed);
  /// cuMF extension beyond the Spark API: choose the solve kernel
  /// (default: the paper's CG-FP16 fast path).
  Als& set_solver(SolverKind kind, std::uint32_t cg_fs = 6);

  int rank() const noexcept { return rank_; }
  int max_iter() const noexcept { return max_iter_; }

  /// Trains and returns the model. For implicit preferences the rating
  /// value is the interaction strength (Hu-Koren-Volinsky confidence
  /// c = 1 + α·r).
  AlsModel fit(const RatingsCoo& ratings) const;

 private:
  int rank_ = 10;
  double reg_param_ = 0.1;
  int max_iter_ = 10;
  bool implicit_prefs_ = false;
  double alpha_ = 1.0;
  int num_blocks_ = 1;
  std::uint64_t seed_ = 0;
  SolverKind solver_ = SolverKind::CgFp16;
  std::uint32_t cg_fs_ = 6;
};

}  // namespace cumf::mllib
