// cumf_serve — online top-k recommendation over a trained factor model.
//
// Training (cumf_train) produces X and Θ; this layer is the deployment half
// the paper motivates (§VII): answer "best k unseen items for user u" under
// heavy traffic, and absorb the rating stream without a re-train. Three
// mechanisms carry the load:
//
//  * Sharded batched scoring. Items are partitioned into contiguous shards;
//    each shard is scored with the batched dot_rows gemv (four Θ rows per
//    pass sharing the x_u loads) and reduced by a bounded TopKSelector, and
//    the ≤ shards·k survivors merge through a final selector. Because the
//    ranking order is total, the result is bit-identical to the offline
//    recommend_top_k brute force — ties included — for any shard count.
//
//  * Hot-user factor cache. An LRU cache of x_u row copies serves repeat
//    users without touching the (potentially huge, potentially cold) factor
//    matrix. Entries are exact row copies and fold-ins invalidate them, so
//    cache hits can never change a response — only its latency.
//
//  * Incremental fold-in. A streamed rating re-solves the user's normal
//    equations (A_u = Σ θ_v θ_vᵀ + λ·n_u·I, the same ALS-WR system training
//    uses) against the frozen Θ through the PR 4 SystemSolver, inheriting
//    its full degradation ladder (FP16 overflow → FP32 retry, CG breakdown
//    → exact LU, failure → factor restored). A rating for user id == users()
//    grows the model by one user row — the "genuinely new user from the
//    stream" that HybridEngine::observe loudly rejects. New items are
//    rejected: Θ is frozen at serve time; items need a re-batch.
//
// Thread model: top_k takes a shared lock, observe/fold_in_user take an
// exclusive lock, and the cache synchronizes itself — many concurrent
// readers, single writer.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "core/solver.hpp"
#include "data/model_io.hpp"
#include "metrics/ranking.hpp"
#include "simd/vec.hpp"
#include "sparse/csr.hpp"

namespace cumf::serve {

/// Thrown for requests the service cannot honour: unknown users,
/// non-contiguous new-user ids, ratings for items Θ has no row for, and
/// empty fold-ins. Loud and named so callers can distinguish a bad request
/// from an internal invariant failure.
class ServeError : public CheckError {
 public:
  using CheckError::CheckError;
};

struct ServeOptions {
  /// Contiguous item shards scored independently (heap-merged at the end).
  std::size_t shards = 1;
  /// Hot-user factor cache capacity in entries; 0 disables the cache.
  std::size_t cache_capacity = 0;
  /// Fold-in ridge weight; use the λ the model was trained with so folded
  /// factors live on the same regularization scale as trained ones.
  real_t lambda = 0.05f;
  /// Fold-in solver; the degradation ladder guards every solve.
  SolverOptions solver{};
  /// Kernel path for scoring (scalar pins the reference loops for tests).
  simd::KernelPath path = simd::kDefaultPath;
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t invalidations = 0;
};

/// LRU cache of user factor rows (exact copies, so hits are result-neutral
/// by construction). Internally synchronized; lookup copies into the
/// caller's buffer so no reference outlives the cache's own lock.
class FactorCache {
 public:
  FactorCache(std::size_t capacity, std::size_t f);

  /// Copies the cached row for `user` into `out` and bumps its recency.
  bool lookup(index_t user, std::span<real_t> out);
  /// Inserts/overwrites the row, evicting the least-recent entry at capacity.
  void insert(index_t user, std::span<const real_t> row);
  /// Drops the entry (fold-in wrote a new factor).
  void invalidate(index_t user);

  bool enabled() const noexcept { return capacity_ > 0; }
  CacheStats stats() const;

 private:
  struct Entry {
    std::vector<real_t> row;
    std::list<index_t>::iterator recency;  ///< position in lru_
  };

  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::size_t f_;
  std::list<index_t> lru_;  ///< most-recent first
  std::unordered_map<index_t, Entry> entries_;
  CacheStats stats_;
};

class ServeEngine {
 public:
  /// One (item, rating) observation for fold_in_user.
  using ItemRating = std::pair<index_t, real_t>;

  /// Takes ownership of the model; `seen` marks the already-rated items the
  /// top-k must exclude (its shape must match the factors).
  ServeEngine(FactorModel model, CsrMatrix seen, ServeOptions options = {});

  /// Best k unseen items for `user`, bit-identical to the offline
  /// recommend_top_k on the equivalent model state. Thread-safe against
  /// concurrent top_k calls and serialized against fold-ins.
  std::vector<ScoredItem> top_k(index_t user, std::size_t k) const;

  /// Absorbs one streamed rating: upserts it into the user's seen set and
  /// re-solves the user's factor row against the frozen Θ (degradation
  /// ladder applies). `rating.u == users()` folds in a brand-new user;
  /// larger ids and ratings for items ≥ items() throw ServeError.
  void observe(const Rating& rating);

  /// Folds in a new user from a batch of (item, rating) observations and
  /// returns the assigned user id (== the previous users()).
  index_t fold_in_user(std::span<const ItemRating> ratings);

  index_t users() const;
  index_t items() const;
  std::size_t f() const noexcept { return f_; }

  /// Copy of the (possibly folded-in) factor row — determinism tests
  /// compare these across replayed streams.
  std::vector<real_t> user_factor(index_t user) const;

  SolveStats solve_stats() const;
  CacheStats cache_stats() const { return cache_.stats(); }
  const ServeOptions& options() const noexcept { return options_; }

 private:
  index_t users_locked() const noexcept {
    return static_cast<index_t>(base_users_ + extra_x_.size() / f_);
  }
  std::span<const real_t> user_row_locked(index_t user) const;
  std::span<real_t> user_row_locked(index_t user);
  const std::vector<ItemRating>* overlay_row(index_t user) const;
  void upsert_overlay(index_t user, index_t item, real_t value);
  /// Re-solves user's normal equations from base + overlay ratings.
  void refold_locked(index_t user);

  ServeOptions options_;
  std::size_t f_;
  std::size_t base_users_;
  Matrix x_;      ///< trained user factors (frozen shape)
  Matrix theta_;  ///< item factors, frozen at serve time
  CsrMatrix seen_;
  /// Folded-in user rows, f_ values each, appended past base_users_.
  std::vector<real_t> extra_x_;
  /// Streamed ratings per user, item-sorted, latest value wins.
  std::unordered_map<index_t, std::vector<ItemRating>> overlay_;
  std::vector<std::pair<std::size_t, std::size_t>> shards_;
  mutable FactorCache cache_;
  SystemSolver solver_;
  mutable std::shared_mutex mutex_;
};

}  // namespace cumf::serve
