#include "serve/serve.hpp"

#include <algorithm>
#include <string>

#include "core/hermitian.hpp"
#include "linalg/dense.hpp"
#include "prof/prof.hpp"

namespace cumf::serve {

// --- FactorCache ---

FactorCache::FactorCache(std::size_t capacity, std::size_t f)
    : capacity_(capacity), f_(f) {}

bool FactorCache::lookup(index_t user, std::span<real_t> out) {
  if (capacity_ == 0) {
    return false;
  }
  const std::scoped_lock lock(mutex_);
  const auto it = entries_.find(user);
  if (it == entries_.end()) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second.recency);
  std::copy(it->second.row.begin(), it->second.row.end(), out.begin());
  return true;
}

void FactorCache::insert(index_t user, std::span<const real_t> row) {
  if (capacity_ == 0) {
    return;
  }
  const std::scoped_lock lock(mutex_);
  const auto it = entries_.find(user);
  if (it != entries_.end()) {
    it->second.row.assign(row.begin(), row.end());
    lru_.splice(lru_.begin(), lru_, it->second.recency);
    return;
  }
  if (entries_.size() >= capacity_) {
    const index_t victim = lru_.back();
    lru_.pop_back();
    entries_.erase(victim);
    ++stats_.evictions;
  }
  lru_.push_front(user);
  entries_.emplace(
      user, Entry{std::vector<real_t>(row.begin(), row.end()), lru_.begin()});
}

void FactorCache::invalidate(index_t user) {
  if (capacity_ == 0) {
    return;
  }
  const std::scoped_lock lock(mutex_);
  const auto it = entries_.find(user);
  if (it != entries_.end()) {
    lru_.erase(it->second.recency);
    entries_.erase(it);
    ++stats_.invalidations;
  }
}

CacheStats FactorCache::stats() const {
  const std::scoped_lock lock(mutex_);
  return stats_;
}

// --- ServeEngine ---

namespace {

/// Equal-width contiguous item shards; every item belongs to exactly one.
std::vector<std::pair<std::size_t, std::size_t>> make_shards(
    std::size_t items, std::size_t shards) {
  shards = std::max<std::size_t>(1, std::min(shards, std::max<std::size_t>(
                                                         1, items)));
  std::vector<std::pair<std::size_t, std::size_t>> out;
  out.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    const std::size_t begin = items * s / shards;
    const std::size_t end = items * (s + 1) / shards;
    out.emplace_back(begin, end);
  }
  return out;
}

}  // namespace

ServeEngine::ServeEngine(FactorModel model, CsrMatrix seen,
                         ServeOptions options)
    : options_(options),
      f_(model.x.cols()),
      base_users_(model.x.rows()),
      x_(std::move(model.x)),
      theta_(std::move(model.theta)),
      seen_(std::move(seen)),
      shards_(make_shards(theta_.rows(), options.shards)),
      cache_(options.cache_capacity, f_),
      solver_(f_, options.solver) {
  CUMF_EXPECTS(f_ > 0 && x_.cols() == theta_.cols(),
               "serve: factor matrices must share a positive latent dim");
  CUMF_EXPECTS(seen_.rows() == x_.rows() && seen_.cols() == theta_.rows(),
               "serve: seen matrix shape must match the factor shapes");
  CUMF_EXPECTS(options_.lambda > 0, "serve: fold-in lambda must be positive");
}

std::span<const real_t> ServeEngine::user_row_locked(index_t user) const {
  if (user < base_users_) {
    return x_.row(user);
  }
  return {extra_x_.data() + (user - base_users_) * f_, f_};
}

std::span<real_t> ServeEngine::user_row_locked(index_t user) {
  if (user < base_users_) {
    return x_.row(user);
  }
  return {extra_x_.data() + (user - base_users_) * f_, f_};
}

const std::vector<ServeEngine::ItemRating>* ServeEngine::overlay_row(
    index_t user) const {
  const auto it = overlay_.find(user);
  return it == overlay_.end() ? nullptr : &it->second;
}

std::vector<ScoredItem> ServeEngine::top_k(index_t user,
                                           std::size_t k) const {
  CUMF_PROF_SCOPE("serve_top_k", "serve");
  const std::shared_lock lock(mutex_);
  if (user >= users_locked()) {
    throw ServeError("serve: unknown user " + std::to_string(user) +
                     " (model has " + std::to_string(users_locked()) +
                     " users; fold new users in first)");
  }
  // Resolve x_u — through the hot cache when enabled. The cache copies the
  // row into a per-thread buffer, so a concurrent eviction of the entry can
  // never invalidate what this request scores with.
  thread_local std::vector<real_t> row_buf;
  thread_local std::vector<double> scores;
  std::span<const real_t> xu;
  if (cache_.enabled()) {
    row_buf.resize(f_);
    if (!cache_.lookup(user, row_buf)) {
      const auto row = user_row_locked(user);
      std::copy(row.begin(), row.end(), row_buf.begin());
      cache_.insert(user, row);
    }
    xu = row_buf;
  } else {
    xu = user_row_locked(user);
  }

  const std::span<const index_t> rated =
      user < seen_.rows() ? seen_.row_cols(user) : std::span<const index_t>{};
  const auto* streamed = overlay_row(user);
  const auto is_seen = [&](index_t v) {
    if (std::binary_search(rated.begin(), rated.end(), v)) {
      return true;
    }
    if (streamed == nullptr) {
      return false;
    }
    return std::binary_search(
        streamed->begin(), streamed->end(), ItemRating{v, 0.0f},
        [](const ItemRating& a, const ItemRating& b) {
          return a.first < b.first;
        });
  };

  TopKSelector merged(k);
  for (const auto& [begin, end] : shards_) {
    scores.resize(end - begin);
    dot_rows(xu, theta_, begin, end, scores, options_.path);
    TopKSelector local(k);
    for (std::size_t v = begin; v < end; ++v) {
      const auto item = static_cast<index_t>(v);
      if (is_seen(item)) {
        continue;
      }
      local.offer(item, static_cast<real_t>(scores[v - begin]));
    }
    for (const ScoredItem& s : local.take_sorted()) {
      merged.offer(s.item, s.score);
    }
  }
  return merged.take_sorted();
}

void ServeEngine::upsert_overlay(index_t user, index_t item, real_t value) {
  auto& row = overlay_[user];
  const auto it = std::lower_bound(
      row.begin(), row.end(), ItemRating{item, 0.0f},
      [](const ItemRating& a, const ItemRating& b) {
        return a.first < b.first;
      });
  if (it != row.end() && it->first == item) {
    it->second = value;  // latest observation wins
  } else {
    row.insert(it, ItemRating{item, value});
  }
}

void ServeEngine::refold_locked(index_t user) {
  CUMF_PROF_SCOPE("serve_fold_in", "serve");
  // Merge the base CSR row with the streamed overlay (overlay wins on a
  // re-rated item) into one item-sorted rating row.
  std::vector<index_t> cols;
  std::vector<real_t> vals;
  const std::span<const index_t> base_cols =
      user < seen_.rows() ? seen_.row_cols(user) : std::span<const index_t>{};
  const std::span<const real_t> base_vals =
      user < seen_.rows() ? seen_.row_vals(user) : std::span<const real_t>{};
  const auto* streamed = overlay_row(user);
  static const std::vector<ItemRating> kEmpty;
  const auto& extra = streamed != nullptr ? *streamed : kEmpty;
  cols.reserve(base_cols.size() + extra.size());
  vals.reserve(base_cols.size() + extra.size());
  std::size_t bi = 0;
  std::size_t oi = 0;
  while (bi < base_cols.size() || oi < extra.size()) {
    const bool take_overlay =
        bi >= base_cols.size() ||
        (oi < extra.size() && extra[oi].first <= base_cols[bi]);
    if (take_overlay) {
      if (bi < base_cols.size() && extra[oi].first == base_cols[bi]) {
        ++bi;  // overlay shadows the base rating
      }
      cols.push_back(extra[oi].first);
      vals.push_back(extra[oi].second);
      ++oi;
    } else {
      cols.push_back(base_cols[bi]);
      vals.push_back(base_vals[bi]);
      ++bi;
    }
  }
  CUMF_ENSURES(!cols.empty(), "serve: refold of a user with no ratings");

  // The user's ALS-WR normal equations against the frozen Θ — the same
  // A_u/b_u training forms — solved through the degradation ladder.
  const auto row_nnz = static_cast<nnz_t>(cols.size());
  const CsrMatrix row = CsrMatrix::from_parts(
      1, static_cast<index_t>(theta_.rows()), {0, row_nnz}, std::move(cols),
      std::move(vals));
  std::vector<real_t> a(f_ * f_);
  std::vector<real_t> b(f_);
  get_hermitian_row_reference(row, theta_, 0, options_.lambda, a, b);
  // On failure the solver restores the entry factor and counts the system
  // in stats().failures — the service keeps answering from the old row.
  (void)solver_.solve(a, b, user_row_locked(user));
  cache_.invalidate(user);
}

void ServeEngine::observe(const Rating& rating) {
  const std::unique_lock lock(mutex_);
  if (rating.v >= theta_.rows()) {
    throw ServeError(
        "serve: rating for unknown item " + std::to_string(rating.v) +
        " (theta has " + std::to_string(theta_.rows()) +
        " items; new items need a re-batch, not fold-in)");
  }
  const index_t nusers = users_locked();
  if (rating.u > nusers) {
    throw ServeError("serve: new user ids must be contiguous (next id is " +
                     std::to_string(nusers) + ", got " +
                     std::to_string(rating.u) + ")");
  }
  if (rating.u == nusers) {
    extra_x_.insert(extra_x_.end(), f_, real_t{0});
  }
  upsert_overlay(rating.u, rating.v, rating.r);
  refold_locked(rating.u);
}

index_t ServeEngine::fold_in_user(std::span<const ItemRating> ratings) {
  if (ratings.empty()) {
    throw ServeError("serve: fold-in needs at least one rating");
  }
  const std::unique_lock lock(mutex_);
  for (const auto& [item, value] : ratings) {
    if (item >= theta_.rows()) {
      throw ServeError(
          "serve: fold-in rating for unknown item " + std::to_string(item) +
          " (theta has " + std::to_string(theta_.rows()) + " items)");
    }
  }
  const index_t user = users_locked();
  extra_x_.insert(extra_x_.end(), f_, real_t{0});
  for (const auto& [item, value] : ratings) {
    upsert_overlay(user, item, value);
  }
  refold_locked(user);
  return user;
}

index_t ServeEngine::users() const {
  const std::shared_lock lock(mutex_);
  return users_locked();
}

index_t ServeEngine::items() const {
  const std::shared_lock lock(mutex_);
  return static_cast<index_t>(theta_.rows());
}

std::vector<real_t> ServeEngine::user_factor(index_t user) const {
  const std::shared_lock lock(mutex_);
  CUMF_EXPECTS(user < users_locked(), "serve: user out of range");
  const auto row = user_row_locked(user);
  return {row.begin(), row.end()};
}

SolveStats ServeEngine::solve_stats() const {
  const std::shared_lock lock(mutex_);
  return solver_.stats();
}

}  // namespace cumf::serve
