// Batched linear-system solving — the host-side analogue of the cuBLAS
// batched LU path and the paper's batch-CG solve kernel.
//
// Systems are independent, so the optional thread-pool execution is exactly
// equivalent to the serial loop. `x` carries warm starts for CG solvers and
// receives the solutions; a failed (singular) exact solve leaves its x
// untouched and is counted in the returned statistics.
#pragma once

#include <span>

#include "common/thread_pool.hpp"
#include "core/solver.hpp"

namespace cumf {

SolveStats solve_batched(std::size_t batch, std::size_t f,
                         std::span<const real_t> a,
                         std::span<const real_t> b, std::span<real_t> x,
                         const SolverOptions& options,
                         ThreadPool* pool = nullptr);

}  // namespace cumf
