// AlsEngine — the cuMF-ALS training loop (functional execution).
//
// One epoch is the paper's two half-sweeps: update every x_u with Θ fixed
// (eq. 2), then every θ_v with X fixed (eq. 3). Each half-sweep runs
// get_hermitian/get_bias followed by the configured solver. The engine
// performs the real numerics on the host; simulated device time for these
// kernels is produced separately by core/kernel_stats.hpp against a
// DeviceSpec, so convergence benches can plot true RMSE against modelled
// GPU seconds.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "common/thread_pool.hpp"
#include "core/hermitian.hpp"
#include "core/solver.hpp"
#include "linalg/dense.hpp"
#include "metrics/roofline.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "sparse/partition.hpp"  // nnz_balanced_bounds (worker schedules)

namespace cumf {

/// How a half-sweep's rows are distributed over the worker pool.
enum class AlsSchedule {
  /// One contiguous equal-row-count range per worker. Power-law row degrees
  /// concentrate nnz (and therefore hermitian work) in the first ranges, so
  /// an epoch serializes behind the heaviest worker.
  static_rows,
  /// Rows are cut into ~8·workers chunks of roughly equal *nnz* (from the
  /// CSR row_ptr prefix) and workers pull chunks from an atomic counter, so
  /// degree skew costs at most one chunk of imbalance.
  nnz_guided,
};

inline const char* to_string(AlsSchedule schedule) {
  return schedule == AlsSchedule::static_rows ? "static" : "nnz";
}

/// Inverse of to_string(AlsSchedule) — the spellings cumf_train's
/// --schedule flag and tuned-config JSON use; std::nullopt when unknown.
inline std::optional<AlsSchedule> schedule_from_name(std::string_view name) {
  if (name == "static") {
    return AlsSchedule::static_rows;
  }
  if (name == "nnz") {
    return AlsSchedule::nnz_guided;
  }
  return std::nullopt;
}

struct AlsOptions {
  std::size_t f = 40;         ///< latent dimension
  real_t lambda = 0.05f;      ///< ALS-WR regularization (λ·n_u on diagonal)
  /// Exact or approximate `solve` step. `solver.path` is the engine's single
  /// kernel-path knob: it also selects the SIMD/scalar variant of
  /// get_hermitian_row, so one switch pins a whole training run to either
  /// path (the differential tests rely on this).
  SolverOptions solver;
  HermitianParams hermitian;  ///< tile/BIN of the memory-optimized kernel
  bool tiled_hermitian = true;  ///< false → naive reference kernel (ablation)
  /// Host threads updating rows concurrently. Row updates are independent
  /// (§II), so any worker count produces the same factors as the serial run
  /// up to floating-point associativity — and exactly the same here, since
  /// each row's arithmetic is self-contained (and independent of which
  /// worker or schedule runs it).
  int workers = 1;
  AlsSchedule schedule = AlsSchedule::nnz_guided;
  std::uint64_t seed = 1;
};

/// Everything one worker (or one simulated device) needs to update a row
/// without touching shared mutable state: the device analogue is a
/// thread-block's scratch. Shared by AlsEngine (one per host worker) and
/// MultiGpuAls (one per device), so both engines run the identical hot loop
/// and their SolveStats/OpCounts accounting merges the same way.
struct AlsWorkerContext {
  AlsWorkerContext(std::size_t f, const SolverOptions& options,
                   const HermitianParams& hermitian)
      : solver(f, options), a_scratch(f * f), b_scratch(f) {
    ws.prepare(f, hermitian);
  }
  SystemSolver solver;
  HermitianWorkspace ws;
  std::vector<real_t> a_scratch;
  std::vector<real_t> b_scratch;
  OpCounts herm_ops;
  OpCounts solve_ops;
  std::uint64_t herm_ns = 0;   ///< profiled time in get_hermitian_row
  std::uint64_t solve_ns = 0;  ///< profiled time in the solve step
};

/// Measured host seconds per kernel phase, summed across workers/devices.
/// Collected only while the cuprof tracer is enabled; zero otherwise.
struct AlsPhaseSeconds {
  double hermitian = 0.0;  ///< get_hermitian_row (load+compute+write)
  double solve = 0.0;      ///< the batched solve step
};

/// The ALS row-update hot loop over [begin, end): get_hermitian (or the
/// naive reference kernel), optional fault injection, then the configured
/// solve, accumulating ops/spans/stats into `ctx`. `fault_site` tags the
/// half-sweep (0 = update-X, 1 = update-Θ) so the deterministic fault
/// injector corrupts the same systems under any engine, schedule, worker
/// count, or device count. Rows never read other rows of `solved`, so any
/// disjoint partition of calls is race-free and produces bit-identical
/// factors. `row_offset` maps local row u of `ratings` to global row
/// u + row_offset of `solved` — the out-of-core engine passes each tile's
/// first global row here, so fault decisions and factor writes land on the
/// same global ids as an in-core sweep.
void als_update_rows(const AlsOptions& options, const CsrMatrix& ratings,
                     const Matrix& fixed, Matrix& solved, index_t begin,
                     index_t end, std::uint32_t fault_site,
                     AlsWorkerContext& ctx, index_t row_offset = 0);

class AlsEngine {
 public:
  AlsEngine(const RatingsCoo& train, const AlsOptions& options);

  /// Runs one full epoch (update-X then update-Θ).
  void run_epoch();

  /// Per-epoch hook, invoked at the end of every run_epoch() with the new
  /// epochs_run() value. This is the checkpoint attachment point: a hook
  /// that snapshots user_factors()/item_factors()/solve_stats() at epoch k
  /// captures exactly the state restore() needs to continue bit-identically
  /// (see data/checkpoint.hpp and tests/test_robustness.cpp).
  using EpochHook = std::function<void(int epoch)>;
  void set_epoch_hook(EpochHook hook) { epoch_hook_ = std::move(hook); }

  /// Resumes from checkpointed state: replaces both factor matrices and the
  /// epoch counter, and seeds solve_stats() with the pre-crash cumulative
  /// stats so telemetry deltas and final totals span the whole logical run.
  /// The engine must have been constructed with the same ratings and
  /// options as the run that produced the snapshot; epochs are
  /// deterministic, so the continuation is bit-identical to never having
  /// stopped. Throws CheckError on shape mismatch.
  void restore(const Matrix& x, const Matrix& theta, int epochs_run,
               const SolveStats& stats = SolveStats{});

  int epochs_run() const noexcept { return epochs_; }
  std::size_t f() const noexcept { return options_.f; }
  const AlsOptions& options() const noexcept { return options_; }

  const Matrix& user_factors() const noexcept { return x_; }
  const Matrix& item_factors() const noexcept { return theta_; }

  const CsrMatrix& ratings_by_row() const noexcept { return r_; }
  const CsrMatrix& ratings_by_col() const noexcept { return rt_; }

  /// Solver behaviour accumulated since construction (plus any restore()d
  /// baseline) across all workers. CG iteration counts feed the cost model;
  /// failures and the fallback counters stay 0 for λ > 0 on healthy data —
  /// they move only when the approximate path degrades (FP16 overflow, CG
  /// breakdown) or a system is unsolvable even exactly, in which case the
  /// affected row keeps its previous factor instead of poisoning the model.
  SolveStats solve_stats() const noexcept;

  /// Operations actually performed per epoch (measured, not analytic).
  const OpCounts& hermitian_ops_per_epoch() const noexcept {
    return herm_ops_;
  }
  const OpCounts& solve_ops_per_epoch() const noexcept { return solve_ops_; }

  /// Per-phase host seconds summed across workers (so with W busy workers
  /// an epoch's wall time is roughly total/W).
  using PhaseSeconds = AlsPhaseSeconds;
  const PhaseSeconds& phase_seconds_last_epoch() const noexcept {
    return phase_;
  }

 private:
  using WorkerContext = AlsWorkerContext;

  void update_side(const CsrMatrix& ratings, const Matrix& fixed,
                   Matrix& solved, std::uint32_t fault_site);

  AlsOptions options_;
  CsrMatrix r_;   ///< train ratings, row-major (update-X view)
  CsrMatrix rt_;  ///< transpose (update-Θ view)
  Matrix x_;      ///< m×f user factors
  Matrix theta_;  ///< n×f item factors
  std::vector<WorkerContext> workers_;
  std::unique_ptr<ThreadPool> pool_;  ///< only when options_.workers > 1
  int epochs_ = 0;
  OpCounts herm_ops_;
  OpCounts solve_ops_;
  PhaseSeconds phase_;
  EpochHook epoch_hook_;
  SolveStats restored_stats_;  ///< baseline from restore(), added on read
};

/// Largest tile size ≤ `requested` that divides f (so any f works with the
/// paper's default tile of 10).
int pick_tile(std::size_t f, int requested);

/// Shared warm start: entries near sqrt(mean/f) so x·θ begins at the global
/// rating mean. Used by both the single- and multi-GPU engines.
void als_init_factors(Matrix& factors, double mean, std::uint64_t seed);

}  // namespace cumf
