// Hybrid ALS + SGD training (paper §VII future work): "using ALS for the
// initial batch training and SGD for incremental updates of the model."
//
// The engine wraps a converged (or converging) factor model. New ratings
// stream in one at a time; each is absorbed with a handful of SGD steps on
// just the two affected factor rows — microseconds instead of a full ALS
// epoch. Periodic re-batching (a full ALS epoch over everything seen so
// far) keeps long-run quality; the engine tracks when enough new data has
// arrived to justify one.
#pragma once

#include <cstdint>

#include "common/check.hpp"
#include "core/als.hpp"
#include "sparse/coo.hpp"

namespace cumf {

/// Thrown by HybridEngine::observe for a rating whose user or item index
/// lies outside the trained factor shape. In-place SGD has no factor row to
/// update for a genuinely new user or item — silently clamping or ignoring
/// the rating would corrupt the stream accounting, so the rejection is loud
/// and named. New users belong on the serving fold-in path
/// (serve::ServeEngine::observe / fold_in_user), which solves a fresh
/// factor row against the trained Θ; new items require a re-batch.
class StreamShapeError : public CheckError {
 public:
  StreamShapeError(const Rating& rating, index_t rows, index_t cols);

  const Rating& rating() const noexcept { return rating_; }

 private:
  Rating rating_;
};

struct HybridOptions {
  AlsOptions als;           ///< batch-phase configuration
  int batch_epochs = 8;     ///< ALS epochs for the initial batch training
  real_t sgd_lr = 0.02f;    ///< learning rate for incremental updates
  int sgd_steps = 4;        ///< SGD passes applied per observed rating
  /// A re-batch (full ALS retraining) is recommended once the stream has
  /// grown the training set by this fraction.
  double rebatch_threshold = 0.10;
};

class HybridEngine {
 public:
  HybridEngine(const RatingsCoo& batch, const HybridOptions& options);

  /// Absorbs one streamed rating with incremental SGD steps on x_u and θ_v.
  /// Indices must lie inside the batch matrix's shape; an out-of-shape
  /// rating (a new user or item) throws StreamShapeError — route new users
  /// through serve::ServeEngine fold-in instead.
  void observe(const Rating& rating);

  /// True once the stream has grown the data enough that a fresh batch
  /// phase is recommended (the caller decides when to afford it).
  bool rebatch_recommended() const noexcept;

  /// Re-runs batch ALS over the original data plus everything observed.
  void rebatch();

  const Matrix& user_factors() const noexcept { return x_; }
  const Matrix& item_factors() const noexcept { return theta_; }
  real_t predict(index_t u, index_t v) const;

  nnz_t observed_count() const noexcept { return streamed_.nnz(); }
  int batch_phases_run() const noexcept { return batch_phases_; }

 private:
  void run_batch();

  HybridOptions options_;
  RatingsCoo all_;       ///< batch data plus absorbed stream
  RatingsCoo streamed_;  ///< stream since the last batch phase
  Matrix x_;             ///< live factors (batch-trained, SGD-refreshed)
  Matrix theta_;
  int batch_phases_ = 0;
};

}  // namespace cumf
