// Algorithm selection (paper §VII future work): "investigate algorithm
// selection based on dataset characteristics such as dimensions and
// sparsity, and hardware resource constraints such as number of GPUs."
//
// The selector uses the same cost model as the benches: it estimates the
// time-to-convergence of cuMF-ALS and GPU-SGD for a dataset shape on a
// device configuration — modelled per-epoch time × a typical epoch count
// for each algorithm family (ALS converges in ~10 epochs, SGD in ~30,
// §V-E) — and picks the faster, with hard overrides where one algorithm is
// structurally unsuitable (implicit/dense inputs → ALS, Table I's analysis).
#pragma once

#include <string>

#include "core/kernel_stats.hpp"
#include "gpusim/device.hpp"

namespace cumf {

enum class Algorithm { Als, Sgd };

const char* to_string(Algorithm algorithm);

struct SelectorInput {
  double m = 0;
  double n = 0;
  double nnz = 0;
  int f = 100;
  int gpus = 1;
  /// Implicit/one-class input: the effective matrix is dense (§V-F).
  bool implicit_feedback = false;
};

struct SelectorDecision {
  Algorithm algorithm = Algorithm::Als;
  double als_time_estimate = 0;  ///< modelled seconds to convergence
  double sgd_time_estimate = 0;
  std::string rationale;
};

/// Typical epochs-to-convergence used by the estimate (from §V-E: ALS needs
/// far fewer, SGD's epochs are cheaper).
inline constexpr int kTypicalAlsEpochs = 10;
inline constexpr int kTypicalSgdEpochs = 40;

SelectorDecision select_algorithm(const gpusim::DeviceSpec& dev,
                                  const SelectorInput& input);

}  // namespace cumf
