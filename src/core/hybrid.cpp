#include "core/hybrid.hpp"

#include <string>

#include "common/check.hpp"
#include "linalg/dense.hpp"

namespace cumf {

namespace {

std::string shape_error_message(const Rating& rating, index_t rows,
                                index_t cols) {
  return "HybridEngine::observe: streamed rating (u=" +
         std::to_string(rating.u) + ", v=" + std::to_string(rating.v) +
         ") is outside the trained " + std::to_string(rows) + "x" +
         std::to_string(cols) +
         " shape; in-place SGD cannot absorb a new user/item — fold new "
         "users in through serve::ServeEngine, re-batch for new items";
}

}  // namespace

StreamShapeError::StreamShapeError(const Rating& rating, index_t rows,
                                   index_t cols)
    : CheckError(shape_error_message(rating, rows, cols)), rating_(rating) {}

HybridEngine::HybridEngine(const RatingsCoo& batch,
                           const HybridOptions& options)
    : options_(options),
      all_(batch),
      streamed_(batch.rows(), batch.cols()) {
  CUMF_EXPECTS(options_.batch_epochs >= 1, "need at least one batch epoch");
  CUMF_EXPECTS(options_.sgd_lr > 0, "incremental learning rate must be > 0");
  CUMF_EXPECTS(options_.sgd_steps >= 1, "need at least one SGD step");
  CUMF_EXPECTS(options_.rebatch_threshold > 0,
               "re-batch threshold must be positive");
  run_batch();
}

void HybridEngine::run_batch() {
  AlsEngine als(all_, options_.als);
  for (int epoch = 0; epoch < options_.batch_epochs; ++epoch) {
    als.run_epoch();
  }
  x_ = als.user_factors();
  theta_ = als.item_factors();
  ++batch_phases_;
}

void HybridEngine::observe(const Rating& rating) {
  if (rating.u >= all_.rows() || rating.v >= all_.cols()) {
    throw StreamShapeError(rating, all_.rows(), all_.cols());
  }
  all_.add(rating.u, rating.v, rating.r);
  streamed_.add(rating.u, rating.v, rating.r);

  // A few plain SGD steps on the two affected rows (eq. (5), λ from the
  // batch configuration interpreted as a plain per-step weight).
  const std::size_t f = options_.als.f;
  real_t* xu = x_.row(rating.u).data();
  real_t* tv = theta_.row(rating.v).data();
  const real_t lambda = options_.als.lambda;
  for (int step = 0; step < options_.sgd_steps; ++step) {
    real_t pred = 0;
    for (std::size_t k = 0; k < f; ++k) {
      pred += xu[k] * tv[k];
    }
    const real_t err = rating.r - pred;
    for (std::size_t k = 0; k < f; ++k) {
      const real_t xk = xu[k];
      const real_t tk = tv[k];
      xu[k] += options_.sgd_lr * (err * tk - lambda * xk);
      tv[k] += options_.sgd_lr * (err * xk - lambda * tk);
    }
  }
}

bool HybridEngine::rebatch_recommended() const noexcept {
  const auto base = static_cast<double>(all_.nnz() - streamed_.nnz());
  return base > 0 &&
         static_cast<double>(streamed_.nnz()) / base >=
             options_.rebatch_threshold;
}

void HybridEngine::rebatch() {
  run_batch();
  streamed_ = RatingsCoo(all_.rows(), all_.cols());
}

real_t HybridEngine::predict(index_t u, index_t v) const {
  return static_cast<real_t>(dot(x_.row(u), theta_.row(v)));
}

}  // namespace cumf
