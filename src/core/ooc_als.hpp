// Out-of-core ALS: stream a sharded rating matrix through bounded memory.
//
// The factors stay resident (2·(m+n)·f floats — the part ALS must keep hot),
// while the ratings live in checksummed tile files (data/shards.hpp) and
// flow through a bounded host cache. One epoch is the usual two half-sweeps,
// but each half-sweep walks its view tile by tile: the block scheduler
// orders tiles serpentine across sweeps (ascending, then descending) so the
// boundary tile of one sweep is the first tile of the next — the only reuse
// a strict two-view sweep structure admits — and a single-slot prefetch
// loads tile i+1 while tile i computes, the same pipelining the PR 5
// multi-GPU timeline applies to communication. Transfers are charged
// through gpusim/interconnect in the modeled timeline; the measured
// per-epoch transfer/stall/compute breakdown feeds cuprof spans and the
// --metrics telemetry.
//
// Row updates are independent and every tile row carries its global row id,
// so streamed training is bit-identical to AlsEngine on the same split —
// the PR 5 regression bar — under any tile count, host budget, worker
// count, or overlap setting.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/als.hpp"
#include "core/kernel_stats.hpp"
#include "data/shards.hpp"
#include "gpusim/device.hpp"
#include "gpusim/interconnect.hpp"

namespace cumf {

struct OocOptions {
  /// Hard host-side budget for cached decoded tiles (--host-mem). Must
  /// admit the largest tile; smaller-than-dataset budgets are the point.
  std::uint64_t host_mem_bytes = 0;
  /// Modeled device memory (--device-mem). 0 = unconstrained. Overlap
  /// needs room to double-buffer the two largest tiles beside the factors;
  /// when the budget is too small the engine falls back to synchronous
  /// loads (overlap_active() reports the effective mode).
  std::uint64_t device_mem_bytes = 0;
  /// Prefetch the next tile while the current one computes. false is the
  /// no-overlap ablation the bench gate compares against.
  bool overlap = true;
  /// false exercises the buffered-read fallback instead of mmap.
  bool use_mmap = true;
};

/// Measured wall-time breakdown of the last epoch's tile streaming.
struct OocEpochStats {
  double stall_s = 0.0;    ///< compute thread blocked waiting for a tile
  double compute_s = 0.0;  ///< inside the tile row-update loops
  double load_s = 0.0;     ///< inside tile loads (overlaps compute when
                           ///< prefetch is on, so load_s can exceed stall_s)
  std::uint64_t tiles = 0;        ///< tile fetches issued
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t bytes_loaded = 0;  ///< disk bytes read on misses
};

/// Modeled epoch timeline of a streamed run: per-tile transfers charged to
/// `link`, per-tile compute from the cost model, pipelined per half-sweep.
struct OocTimeline {
  double transfer_s = 0.0;   ///< total wire seconds, both half-sweeps
  double compute_s = 0.0;    ///< total modeled device compute
  double serial_s = 0.0;     ///< no-overlap wall: Σ (transfer + compute)
  double pipelined_s = 0.0;  ///< overlap wall (pipelined_stream_seconds)
  double overlap_gain = 0.0; ///< serial_s / pipelined_s
};

/// The block schedule: tile visit order of sweep number `sweep` over
/// `tiles` tiles. Serpentine — even sweeps ascend, odd sweeps descend — so
/// consecutive sweeps of the same view share their boundary tile (an LRU
/// hit instead of a reload). Pure function of (tiles, sweep): deterministic
/// across worker counts, budgets, and prefetch settings.
std::vector<std::size_t> ooc_tile_order(std::size_t tiles, int sweep);

/// Models a streamed epoch for a shard layout without touching tile files —
/// the engine's epoch_timeline and the full-scale Hugewiki bench both feed
/// through here. Per tile: transfer of its on-disk bytes over `link`,
/// compute from update_phase_times at its rows/nnz; each half-sweep is
/// pipelined (or summed serially when `overlap` is false).
OocTimeline ooc_epoch_timeline(const gpusim::DeviceSpec& dev,
                               const AlsKernelConfig& config,
                               const gpusim::LinkSpec& link,
                               const ShardMeta& meta, bool overlap = true);

/// Drop-in streamed counterpart of AlsEngine: constructed from a shard
/// directory instead of a RatingsCoo, same epoch hook / restore /
/// SolveStats surface, so cumf_train drives it through the same templated
/// loop (checkpoint/resume, fault injection and the degradation ladder work
/// unchanged). `options.workers` parallelizes rows *within* a tile.
class OocAlsEngine {
 public:
  OocAlsEngine(const std::string& shard_dir, const AlsOptions& options,
               const OocOptions& ooc);

  /// One epoch: update-X streams the by-row tiles, update-Θ the by-col
  /// tiles, each in this sweep's serpentine order with single-slot
  /// prefetch (when overlap is active).
  void run_epoch();

  using EpochHook = std::function<void(int epoch)>;
  void set_epoch_hook(EpochHook hook) { epoch_hook_ = std::move(hook); }

  /// Same contract as AlsEngine::restore: epochs are deterministic (the
  /// tile schedule is a function of the epoch counter alone), so the
  /// continuation is bit-identical to never having stopped.
  void restore(const Matrix& x, const Matrix& theta, int epochs_run,
               const SolveStats& stats = SolveStats{});

  int epochs_run() const noexcept { return epochs_; }
  std::size_t f() const noexcept { return options_.f; }
  const AlsOptions& options() const noexcept { return options_; }
  const ShardMeta& meta() const noexcept { return cache_.meta(); }
  const Matrix& user_factors() const noexcept { return x_; }
  const Matrix& item_factors() const noexcept { return theta_; }

  /// True when prefetch is actually running (requested overlap minus the
  /// device-budget fallback).
  bool overlap_active() const noexcept { return overlap_; }

  SolveStats solve_stats() const noexcept;
  const OpCounts& hermitian_ops_per_epoch() const noexcept {
    return herm_ops_;
  }
  const OpCounts& solve_ops_per_epoch() const noexcept { return solve_ops_; }
  using PhaseSeconds = AlsPhaseSeconds;
  const PhaseSeconds& phase_seconds_last_epoch() const noexcept {
    return phase_;
  }

  /// Measured streaming breakdown of the last epoch.
  const OocEpochStats& ooc_stats_last_epoch() const noexcept {
    return ooc_stats_;
  }
  /// Cumulative tile-cache counters since construction.
  TileCache::Stats cache_stats() const { return cache_.stats(); }
  std::uint64_t cache_budget_bytes() const noexcept {
    return cache_.budget_bytes();
  }

  /// Modeled streamed-epoch timeline for this shard layout on `dev`/`link`.
  OocTimeline epoch_timeline(const gpusim::DeviceSpec& dev,
                             const AlsKernelConfig& config,
                             const gpusim::LinkSpec& link,
                             bool overlap = true) const {
    return ooc_epoch_timeline(dev, config, link, cache_.meta(), overlap);
  }

 private:
  void update_side(TileView view, const Matrix& fixed, Matrix& solved,
                   std::uint32_t fault_site);
  void compute_tile(const CsrTile& tile, const Matrix& fixed, Matrix& solved,
                    std::uint32_t fault_site);

  AlsOptions options_;
  TileCache cache_;
  bool overlap_ = true;
  Matrix x_;
  Matrix theta_;
  std::vector<AlsWorkerContext> workers_;
  std::unique_ptr<ThreadPool> pool_;  ///< only when options_.workers > 1
  int epochs_ = 0;
  OpCounts herm_ops_;
  OpCounts solve_ops_;
  PhaseSeconds phase_;
  OocEpochStats ooc_stats_;
  EpochHook epoch_hook_;
  SolveStats restored_stats_;
};

}  // namespace cumf
