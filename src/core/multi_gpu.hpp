// Multi-GPU ALS (the four-GPU Hugewiki runs of Fig. 6/8).
//
// cuMF-ALS partitions the rows of the matrix being updated across devices;
// each device holds the full fixed factor matrix, computes its row slice
// with its own solver and hermitian workspace, and the updated slices are
// all-gathered over NVLink before the next half-sweep. Because ALS row
// updates are independent, the partitioned computation is bit-identical to
// the single-device one — the functional driver here runs the slices
// genuinely concurrently (one ThreadPool task per device, private
// AlsWorkerContext each) and verifies that invariant, while the time model
// charges per-device compute plus interconnect traffic with a pipelined
// compute/communication overlap bound.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/als.hpp"
#include "core/kernel_stats.hpp"
#include "gpusim/device.hpp"
#include "gpusim/interconnect.hpp"

namespace cumf {

/// Contiguous range of rows owned by one device.
struct RowRange {
  index_t begin = 0;
  index_t end = 0;
  index_t size() const noexcept { return end - begin; }
};

/// Near-equal row-count partition of [0, count) into `parts` ranges. When
/// parts > count the tail ranges are empty (a 4-GPU run on a 3-column
/// dataset simply idles one device); count == 0 yields all-empty ranges.
std::vector<RowRange> partition_rows(index_t count, int parts);

/// Exactly `parts` contiguous shards over the rows of `r`, cut at the row
/// boundaries of roughly equal total nnz that nnz_balanced_bounds finds.
/// Hermitian work per row is proportional to its nnz, so this is the
/// balance that matters for the per-device critical path; when fewer
/// balanced cuts than `parts` exist (tiny or extremely skewed data) the
/// tail shards are empty.
std::vector<RowRange> nnz_balanced_shards(const CsrMatrix& r, int parts);

/// Modeled wall time of one half-sweep on g concurrent devices.
struct MultiGpuHalfSweep {
  std::vector<double> device_compute_s;  ///< per-device compute time
  double compute_s = 0.0;     ///< barrier: the slowest device
  double comm_total_s = 0.0;  ///< raw ring all-gather wire time
  double comm_s = 0.0;        ///< exposed comm after pipelined overlap
  double seconds() const noexcept { return compute_s + comm_s; }
};

/// Modeled epoch timeline: both half-sweeps plus their all-gathers.
struct MultiGpuTimeline {
  MultiGpuHalfSweep update_x;
  MultiGpuHalfSweep update_theta;
  double compute_s() const noexcept {
    return update_x.compute_s + update_theta.compute_s;
  }
  double comm_s() const noexcept {
    return update_x.comm_s + update_theta.comm_s;
  }
  double total_s() const noexcept {
    return update_x.seconds() + update_theta.seconds();
  }
};

/// Scaling-efficiency report against the modeled single-device epoch.
struct MultiGpuScaling {
  int gpus = 1;
  double single_gpu_s = 0.0;  ///< modeled 1-GPU epoch (no interconnect)
  double total_s = 0.0;       ///< modeled g-GPU epoch
  double compute_s = 0.0;     ///< barrier-summed compute portion
  double comm_s = 0.0;        ///< exposed communication portion
  double speedup = 0.0;       ///< single_gpu_s / total_s
  double efficiency = 0.0;    ///< speedup / gpus
  double comm_fraction = 0.0; ///< comm_s / total_s
};

/// Drop-in multi-device counterpart of AlsEngine: same construction
/// invariants, same hot loop (als_update_rows), same epoch hook /
/// restore / SolveStats surface, so cumf_train drives either engine
/// through one templated loop. Parallelism is per *device*: each of the
/// `gpus` shards runs as one ThreadPool task with a private
/// AlsWorkerContext (solver + hermitian workspace + scratch), mirroring
/// how each physical GPU owns its slice. `options.workers` is ignored —
/// the device count is the parallelism knob here.
class MultiGpuAls {
 public:
  MultiGpuAls(const RatingsCoo& train, const AlsOptions& options, int gpus);

  /// One epoch: every simulated device updates its row shard of X (then of
  /// Θ) against the shared fixed matrix, concurrently; the half-sweep
  /// barrier between the two updates is the functional equivalent of the
  /// NVLink all-gather.
  void run_epoch();

  /// Per-epoch hook, invoked at the end of every run_epoch() with the new
  /// epochs_run() value — the checkpoint attachment point, identical in
  /// contract to AlsEngine::set_epoch_hook.
  using EpochHook = std::function<void(int epoch)>;
  void set_epoch_hook(EpochHook hook) { epoch_hook_ = std::move(hook); }

  /// Resumes from checkpointed state; same contract as AlsEngine::restore
  /// (epochs are deterministic, so the continuation is bit-identical, and
  /// `stats` seeds solve_stats() so totals span the whole logical run).
  void restore(const Matrix& x, const Matrix& theta, int epochs_run,
               const SolveStats& stats = SolveStats{});

  int gpus() const noexcept { return static_cast<int>(devices_.size()); }
  const AlsOptions& options() const noexcept { return options_; }
  std::size_t f() const noexcept { return options_.f; }
  const Matrix& user_factors() const noexcept { return x_; }
  const Matrix& item_factors() const noexcept { return theta_; }
  int epochs_run() const noexcept { return epochs_; }

  const CsrMatrix& ratings_by_row() const noexcept { return r_; }
  const CsrMatrix& ratings_by_col() const noexcept { return rt_; }

  /// Device shard boundaries (nnz-balanced under the default nnz_guided
  /// schedule; row-count split under static_rows).
  const std::vector<RowRange>& user_shards() const noexcept {
    return x_shards_;
  }
  const std::vector<RowRange>& item_shards() const noexcept {
    return theta_shards_;
  }

  /// Solver behaviour accumulated since construction (plus any restore()d
  /// baseline), merged across devices in device order. The counters are
  /// integer sums, so the merge is associative and the totals are
  /// bit-identical to the gpus=1 (and AlsEngine) run.
  SolveStats solve_stats() const noexcept;

  /// Operations actually performed per epoch (measured, not analytic),
  /// merged across devices.
  const OpCounts& hermitian_ops_per_epoch() const noexcept {
    return herm_ops_;
  }
  const OpCounts& solve_ops_per_epoch() const noexcept { return solve_ops_; }

  /// Per-phase host seconds summed across devices (cuprof-gated, like
  /// AlsEngine::phase_seconds_last_epoch).
  using PhaseSeconds = AlsPhaseSeconds;
  const PhaseSeconds& phase_seconds_last_epoch() const noexcept {
    return phase_;
  }

  /// Modeled epoch timeline on `dev` devices joined by `link`: per-device
  /// compute from the cost model evaluated at each shard's actual
  /// rows/nnz, a ragged ring all-gather after each half-sweep, and (when
  /// `overlap` is true) a pipelined overlap bound — devices stream
  /// finished row blocks into the ring while computing the remainder, so a
  /// half-sweep costs max(compute, comm) + min(compute, comm)/C with C =
  /// kOverlapPipelineDepth chunks instead of compute + comm.
  MultiGpuTimeline epoch_timeline(const gpusim::DeviceSpec& dev,
                                  const AlsKernelConfig& config,
                                  const gpusim::LinkSpec& link,
                                  bool overlap = true) const;

  /// Speedup / efficiency / comm-fraction of epoch_timeline() against the
  /// modeled single-device epoch on the same data and config.
  MultiGpuScaling scaling_report(const gpusim::DeviceSpec& dev,
                                 const AlsKernelConfig& config,
                                 const gpusim::LinkSpec& link,
                                 bool overlap = true) const;

  /// Simulated seconds per epoch: epoch_timeline(...).total_s().
  double epoch_seconds(const gpusim::DeviceSpec& dev,
                       const AlsKernelConfig& config,
                       const gpusim::LinkSpec& link) const;

  /// Pipeline depth of the overlap model: each device exchanges its shard
  /// in this many chunks, so all but one chunk of the all-gather can hide
  /// under compute.
  static constexpr int kOverlapPipelineDepth = 8;

 private:
  void update_side(const CsrMatrix& ratings, const Matrix& fixed,
                   Matrix& solved, const std::vector<RowRange>& shards,
                   std::uint32_t fault_site);

  MultiGpuHalfSweep half_sweep_timeline(const gpusim::DeviceSpec& dev,
                                        const AlsKernelConfig& config,
                                        const gpusim::LinkSpec& link,
                                        const CsrMatrix& ratings,
                                        const std::vector<RowRange>& shards,
                                        bool overlap) const;

  AlsOptions options_;
  CsrMatrix r_;
  CsrMatrix rt_;
  Matrix x_;
  Matrix theta_;
  std::vector<RowRange> x_shards_;      ///< row shard of X per device
  std::vector<RowRange> theta_shards_;  ///< row shard of Θ per device
  std::vector<AlsWorkerContext> devices_;  ///< one private context per GPU
  std::unique_ptr<ThreadPool> pool_;       ///< gpus workers; null when 1
  int epochs_ = 0;
  OpCounts herm_ops_;
  OpCounts solve_ops_;
  PhaseSeconds phase_;
  EpochHook epoch_hook_;
  SolveStats restored_stats_;  ///< baseline from restore(), added on read
};

}  // namespace cumf
