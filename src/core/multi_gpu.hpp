// Multi-GPU ALS (the four-GPU Hugewiki runs of Fig. 6/8).
//
// cuMF-ALS partitions the rows of the matrix being updated across devices;
// each device holds the full fixed factor matrix, computes its row slice,
// and the updated slices are all-gathered over NVLink before the next
// half-sweep. Because ALS row updates are independent, the partitioned
// computation is bit-identical to the single-device one — the functional
// driver here verifies that invariant while the time model charges per-
// device compute plus interconnect traffic.
#pragma once

#include <vector>

#include "core/als.hpp"
#include "core/kernel_stats.hpp"
#include "gpusim/device.hpp"
#include "gpusim/interconnect.hpp"

namespace cumf {

/// Near-equal contiguous partition of [0, count) into `parts` ranges.
struct RowRange {
  index_t begin = 0;
  index_t end = 0;
  index_t size() const noexcept { return end - begin; }
};
std::vector<RowRange> partition_rows(index_t count, int parts);

class MultiGpuAls {
 public:
  MultiGpuAls(const RatingsCoo& train, const AlsOptions& options, int gpus);

  /// One epoch: every simulated device updates its row slice of X (then of
  /// Θ) against the shared fixed matrix; slices are concatenated, which is
  /// the functional equivalent of the NVLink all-gather.
  void run_epoch();

  int gpus() const noexcept { return static_cast<int>(x_parts_.size()); }
  const Matrix& user_factors() const noexcept { return x_; }
  const Matrix& item_factors() const noexcept { return theta_; }
  int epochs_run() const noexcept { return epochs_; }

  /// Simulated seconds per epoch on `dev` with the given interconnect.
  double epoch_seconds(const gpusim::DeviceSpec& dev,
                       const AlsKernelConfig& config,
                       const gpusim::LinkSpec& link) const;

 private:
  void update_side(const CsrMatrix& ratings, const Matrix& fixed,
                   Matrix& solved, const std::vector<RowRange>& parts);

  AlsOptions options_;
  CsrMatrix r_;
  CsrMatrix rt_;
  Matrix x_;
  Matrix theta_;
  std::vector<RowRange> x_parts_;      ///< row partition of X across GPUs
  std::vector<RowRange> theta_parts_;  ///< row partition of Θ across GPUs
  SystemSolver solver_;
  HermitianWorkspace ws_;
  std::vector<real_t> a_scratch_;
  std::vector<real_t> b_scratch_;
  int epochs_ = 0;
};

}  // namespace cumf
