#include "core/hermitian.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "half/half.hpp"
#include "half/half_simd.hpp"

namespace cumf {

namespace {

/// T×T register-block accumulation, SIMD path: for each tile row i the
/// row-segment update block[i,:] += y_i · frag_x[:] is elementwise, so the
/// 8-lane vector body plus scalar tail is bitwise identical to the scalar
/// loop (same per-element operations in the same s/i/j order).
void accumulate_tile_simd(real_t* block, std::size_t f, std::size_t tile,
                          const real_t* frag_x, const real_t* frag_y) {
  for (std::size_t i = 0; i < tile; ++i) {
    const real_t yi = frag_y[i];
    real_t* brow = block + i * f;
    const simd::vf8 yv = simd::vf8::broadcast(yi);
    std::size_t j = 0;
    for (; j + 8 <= tile; j += 8) {
      (simd::vf8::load(brow + j) + yv * simd::vf8::load(frag_x + j))
          .store(brow + j);
    }
    for (; j < tile; ++j) {
      brow[j] += yi * frag_x[j];
    }
  }
}

void accumulate_tile_scalar(real_t* block, std::size_t f, std::size_t tile,
                            const real_t* frag_x, const real_t* frag_y) {
  for (std::size_t i = 0; i < tile; ++i) {
    const real_t yi = frag_y[i];
    for (std::size_t j = 0; j < tile; ++j) {
      block[i * f + j] += yi * frag_x[j];
    }
  }
}

}  // namespace

void HermitianWorkspace::prepare(std::size_t f, const HermitianParams& params) {
  CUMF_EXPECTS(params.bin > 0, "BIN must be positive");
  staged.resize(static_cast<std::size_t>(params.bin) * f);
}

void get_hermitian_row(const CsrMatrix& r, const Matrix& theta, index_t u,
                       real_t lambda, const HermitianParams& params,
                       HermitianWorkspace& ws, std::span<real_t> a_out,
                       std::span<real_t> b_out, simd::KernelPath path) {
  const std::size_t f = theta.cols();
  CUMF_EXPECTS(params.tile > 0 && f % static_cast<std::size_t>(params.tile) == 0,
               "f must be a multiple of the tile size");
  CUMF_EXPECTS(params.bin > 0, "BIN must be positive");
  CUMF_EXPECTS(a_out.size() == f * f, "A_u must be f*f");
  CUMF_EXPECTS(b_out.size() == f, "b_u must be length f");

  const auto tile = static_cast<std::size_t>(params.tile);
  const auto bin = static_cast<std::size_t>(params.bin);
  const std::size_t nt = f / tile;  // tiles per dimension
  const bool use_simd = path == simd::KernelPath::simd;

  std::fill(a_out.begin(), a_out.end(), real_t{0});
  std::fill(b_out.begin(), b_out.end(), real_t{0});
  // Steady state never touches the allocator: AlsEngine prepares each
  // worker's workspace once; ad-hoc callers pay a single resize here.
  if (ws.staged.size() < bin * f) {
    ws.staged.resize(bin * f);
  }

  const auto cols = r.row_cols(u);
  const auto vals = r.row_vals(u);

  for (std::size_t batch = 0; batch < cols.size(); batch += bin) {
    const std::size_t batch_len = std::min(bin, cols.size() - batch);

    // Stage the batch's θ columns from "global" into "shared" memory,
    // optionally rounding through FP16 (Tensor-Core input precision).
    for (std::size_t s = 0; s < batch_len; ++s) {
      const auto trow = theta.row(cols[batch + s]);
      if (params.fp16_staging) {
        round_through_half_n(trow.data(), ws.staged.data() + s * f, f, path);
      } else {
        std::copy(trow.begin(), trow.end(), ws.staged.begin() + s * f);
      }
    }

    // Accumulate: one "thread" per lower-triangular tile pair (x ≤ y);
    // its T×T register block adds θ^(y) ⊗ θ^(x) for every staged column.
    for (std::size_t y = 0; y < nt; ++y) {
      for (std::size_t x = 0; x <= y; ++x) {
        real_t* block = a_out.data() + (y * tile) * f + (x * tile);
        for (std::size_t s = 0; s < batch_len; ++s) {
          const real_t* frag_x = ws.staged.data() + s * f + x * tile;
          const real_t* frag_y = ws.staged.data() + s * f + y * tile;
          if (use_simd) {
            accumulate_tile_simd(block, f, tile, frag_x, frag_y);
          } else {
            accumulate_tile_scalar(block, f, tile, frag_x, frag_y);
          }
        }
      }
    }

    // get_bias accumulation alongside (b_u += r_uv · θ_v).
    for (std::size_t s = 0; s < batch_len; ++s) {
      const real_t ruv = vals[batch + s];
      const real_t* col = ws.staged.data() + s * f;
      if (use_simd) {
        const simd::vf8 rv = simd::vf8::broadcast(ruv);
        std::size_t i = 0;
        for (; i + 8 <= f; i += 8) {
          (simd::vf8::load(b_out.data() + i) +
           rv * simd::vf8::load(col + i))
              .store(b_out.data() + i);
        }
        for (; i < f; ++i) {
          b_out[i] += ruv * col[i];
        }
      } else {
        for (std::size_t i = 0; i < f; ++i) {
          b_out[i] += ruv * col[i];
        }
      }
    }
  }

  // Mirror the strictly-lower tiles to the upper triangle (block30' in
  // Fig. 2) — done at flush time on the GPU, done here after accumulation.
  for (std::size_t i = 0; i < f; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      a_out[j * f + i] = a_out[i * f + j];
    }
  }

  // λ·n_u ridge on the diagonal (eq. (2)).
  const real_t ridge = lambda * static_cast<real_t>(cols.size());
  for (std::size_t i = 0; i < f; ++i) {
    a_out[i * f + i] += ridge;
  }
}

void get_hermitian_row_reference(const CsrMatrix& r, const Matrix& theta,
                                 index_t u, real_t lambda,
                                 std::span<real_t> a_out,
                                 std::span<real_t> b_out) {
  const std::size_t f = theta.cols();
  CUMF_EXPECTS(a_out.size() == f * f, "A_u must be f*f");
  CUMF_EXPECTS(b_out.size() == f, "b_u must be length f");
  std::fill(a_out.begin(), a_out.end(), real_t{0});
  std::fill(b_out.begin(), b_out.end(), real_t{0});

  const auto cols = r.row_cols(u);
  const auto vals = r.row_vals(u);
  for (std::size_t k = 0; k < cols.size(); ++k) {
    const auto t = theta.row(cols[k]);
    for (std::size_t i = 0; i < f; ++i) {
      for (std::size_t j = 0; j < f; ++j) {
        a_out[i * f + j] += t[i] * t[j];
      }
      b_out[i] += vals[k] * t[i];
    }
  }
  const real_t ridge = lambda * static_cast<real_t>(cols.size());
  for (std::size_t i = 0; i < f; ++i) {
    a_out[i * f + i] += ridge;
  }
}

HermitianValueBounds hermitian_value_bounds(const CsrMatrix& r,
                                            double theta_absmax,
                                            double lambda) {
  HermitianValueBounds out;
  for (index_t u = 0; u < r.rows(); ++u) {
    const auto nnz = static_cast<std::uint64_t>(r.row_nnz(u));
    if (nnz == 0) {
      continue;
    }
    out.max_nnz = std::max(out.max_nnz, nnz);
    out.min_nnz = out.min_nnz == 0 ? nnz : std::min(out.min_nnz, nnz);
  }
  for (const real_t v : r.values()) {
    out.rating_absmax = std::max(out.rating_absmax,
                                 std::abs(static_cast<double>(v)));
  }
  const auto n = static_cast<double>(out.max_nnz);
  out.a_offdiag_abs = n * theta_absmax * theta_absmax;
  out.a_diag_max = out.a_offdiag_abs + lambda * n;
  out.a_diag_min = lambda * static_cast<double>(out.min_nnz);
  out.b_abs = n * out.rating_absmax * theta_absmax;
  return out;
}

}  // namespace cumf
