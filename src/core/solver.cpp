#include "core/solver.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "half/half_simd.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/lu.hpp"

namespace cumf {

const char* to_string(SolverKind kind) {
  switch (kind) {
    case SolverKind::LuFp32:
      return "LU-FP32";
    case SolverKind::CholeskyFp32:
      return "Cholesky-FP32";
    case SolverKind::CgFp32:
      return "CG-FP32";
    case SolverKind::CgFp16:
      return "CG-FP16";
    case SolverKind::PcgFp32:
      return "PCG-FP32";
  }
  return "unknown";
}

SystemSolver::SystemSolver(std::size_t f, const SolverOptions& options)
    : f_(f), options_(options) {
  CUMF_EXPECTS(f_ > 0, "latent dimension must be positive");
  CUMF_EXPECTS(options_.cg_fs > 0, "CG needs at least one iteration");
  switch (options_.kind) {
    case SolverKind::LuFp32:
      scratch_fp32_.resize(f_ * f_);
      pivots_.resize(f_);
      break;
    case SolverKind::CholeskyFp32:
      scratch_fp32_.resize(f_ * f_);
      break;
    case SolverKind::CgFp32:
    case SolverKind::PcgFp32:
      break;  // cg_solve/pcg_solve read A in place
    case SolverKind::CgFp16:
      scratch_fp16_.resize(f_ * f_);
      break;
  }
}

bool SystemSolver::solve(std::span<const real_t> a,
                         std::span<const real_t> b, std::span<real_t> x) {
  CUMF_EXPECTS(a.size() == f_ * f_, "A must be f*f");
  CUMF_EXPECTS(b.size() == f_ && x.size() == f_, "vector size mismatch");
  ++stats_.systems;

  switch (options_.kind) {
    case SolverKind::LuFp32: {
      std::copy(a.begin(), a.end(), scratch_fp32_.begin());
      if (!lu_factor(f_, scratch_fp32_, pivots_)) {
        ++stats_.failures;
        return false;
      }
      lu_solve(f_, scratch_fp32_, pivots_, b, x);
      return true;
    }
    case SolverKind::CholeskyFp32: {
      std::copy(a.begin(), a.end(), scratch_fp32_.begin());
      if (!cholesky_factor(f_, scratch_fp32_)) {
        ++stats_.failures;
        return false;
      }
      cholesky_solve(f_, scratch_fp32_, b, x);
      return true;
    }
    case SolverKind::CgFp32: {
      const CgResult r = cg_solve<float>(f_, a, b, x, options_.cg_fs,
                                         options_.cg_eps, options_.path);
      stats_.record_cg(r.iterations);
      return true;
    }
    case SolverKind::PcgFp32: {
      const CgResult r = pcg_solve<float>(f_, a, b, x, options_.cg_fs,
                                          options_.cg_eps, options_.path);
      stats_.record_cg(r.iterations);
      return true;
    }
    case SolverKind::CgFp16: {
      // Store A in half precision — the read side of every CG matvec then
      // moves half the bytes (Solution 4). b and x stay FP32.
      float_to_half_n(a.data(), scratch_fp16_.data(), a.size(),
                      options_.path);
      stats_.fp16_converted += a.size();
      const CgResult r =
          cg_solve<half>(f_, std::span<const half>(scratch_fp16_), b, x,
                         options_.cg_fs, options_.cg_eps, options_.path);
      stats_.record_cg(r.iterations);
      return true;
    }
  }
  CUMF_ENSURES(false, "unreachable solver kind");
  return false;
}

}  // namespace cumf
