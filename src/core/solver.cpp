#include "core/solver.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "half/half_simd.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/lu.hpp"

namespace cumf {

const char* to_string(SolverKind kind) {
  switch (kind) {
    case SolverKind::LuFp32:
      return "LU-FP32";
    case SolverKind::CholeskyFp32:
      return "Cholesky-FP32";
    case SolverKind::CgFp32:
      return "CG-FP32";
    case SolverKind::CgFp16:
      return "CG-FP16";
    case SolverKind::PcgFp32:
      return "PCG-FP32";
  }
  return "unknown";
}

const char* solver_cli_name(SolverKind kind) {
  switch (kind) {
    case SolverKind::LuFp32:
      return "lu";
    case SolverKind::CholeskyFp32:
      return "cholesky";
    case SolverKind::CgFp32:
      return "cg";
    case SolverKind::CgFp16:
      return "cg16";
    case SolverKind::PcgFp32:
      return "pcg";
  }
  return "unknown";
}

std::optional<SolverKind> solver_from_cli_name(std::string_view name) {
  if (name == "lu") {
    return SolverKind::LuFp32;
  }
  if (name == "cholesky") {
    return SolverKind::CholeskyFp32;
  }
  if (name == "cg") {
    return SolverKind::CgFp32;
  }
  if (name == "cg16") {
    return SolverKind::CgFp16;
  }
  if (name == "pcg") {
    return SolverKind::PcgFp32;
  }
  return std::nullopt;
}

namespace {

bool all_finite(std::span<const real_t> v) noexcept {
  for (const real_t e : v) {
    if (!std::isfinite(e)) {
      return false;
    }
  }
  return true;
}

}  // namespace

SystemSolver::SystemSolver(std::size_t f, const SolverOptions& options)
    : f_(f), options_(options) {
  CUMF_EXPECTS(f_ > 0, "latent dimension must be positive");
  CUMF_EXPECTS(options_.cg_fs > 0, "CG needs at least one iteration");
  // Every kind carries the exact-LU scratch: for the approximate kinds it
  // is the breakdown fallback path, not just the primary solver.
  scratch_fp32_.resize(f_ * f_);
  pivots_.resize(f_);
  backup_.resize(f_);
  if (options_.kind == SolverKind::CgFp16) {
    scratch_fp16_.resize(f_ * f_);
  }
}

bool SystemSolver::solve_exact(std::span<const real_t> a,
                               std::span<const real_t> b, std::span<real_t> x,
                               bool via_cholesky) {
  std::copy(a.begin(), a.end(), scratch_fp32_.begin());
  bool ok;
  if (via_cholesky) {
    ok = cholesky_factor(f_, scratch_fp32_);
    if (ok) {
      cholesky_solve(f_, scratch_fp32_, b, x);
    }
  } else {
    ok = lu_factor(f_, scratch_fp32_, pivots_);
    if (ok) {
      lu_solve(f_, scratch_fp32_, pivots_, b, x);
    }
  }
  // A factorization can "succeed" on a corrupted or nearly singular system
  // and still emit inf/NaN; a non-finite factor must never escape.
  if (ok && !all_finite(x)) {
    ok = false;
  }
  if (!ok) {
    std::copy(backup_.begin(), backup_.end(), x.begin());
    ++stats_.failures;
  }
  return ok;
}

template <typename T>
bool SystemSolver::solve_cg(std::span<const T> a,
                            std::span<const real_t> a_exact,
                            std::span<const real_t> b, std::span<real_t> x,
                            bool preconditioned) {
  CgResult result;
  bool usable = true;
  if (preconditioned) {
    // Jacobi needs a strictly positive finite diagonal; pcg_solve treats a
    // violation as a precondition error, so screen it here and degrade.
    for (std::size_t i = 0; i < f_ && usable; ++i) {
      const float d = load_as_float(a[i * f_ + i]);
      usable = std::isfinite(d) && d > 0.0f;
    }
    if (usable) {
      result = pcg_solve<T>(f_, a, b, x, options_.cg_fs, options_.cg_eps,
                            options_.path);
    }
  } else {
    result = cg_solve<T>(f_, a, b, x, options_.cg_fs, options_.cg_eps,
                         options_.path);
  }
  if (usable && !result.breakdown && all_finite(x)) {
    stats_.record_cg(result.iterations);
    return true;
  }
  // Degradation: the truncated-CG iterate is not trustworthy. Restore the
  // warm start and solve the same system with the exact LU path (LU handles
  // the indefinite matrices that break CG; a non-finite system fails there
  // too and is reported as a failure).
  ++stats_.cg_fallbacks;
  std::copy(backup_.begin(), backup_.end(), x.begin());
  return solve_exact(a_exact, b, x, /*via_cholesky=*/false);
}

bool SystemSolver::fp16_pack_ok(std::span<const real_t> a) const noexcept {
  for (std::size_t i = 0; i < a.size(); ++i) {
    // half max is 65504: a heavy row's hermitian diagonal (which grows with
    // nnz_u) can exceed it even though the FP32 value is fine.
    if (scratch_fp16_[i].is_inf() && std::isfinite(a[i])) {
      return false;
    }
  }
  for (std::size_t d = 0; d < f_; ++d) {
    const std::size_t i = d * f_ + d;
    // A diagonal flushed to zero (|a| < 2^-25) silently destroys the ridge
    // that keeps A SPD.
    if (a[i] != 0.0f && static_cast<float>(scratch_fp16_[i]) == 0.0f) {
      return false;
    }
  }
  return true;
}

bool SystemSolver::solve(std::span<const real_t> a,
                         std::span<const real_t> b, std::span<real_t> x) {
  CUMF_EXPECTS(a.size() == f_ * f_, "A must be f*f");
  CUMF_EXPECTS(b.size() == f_ && x.size() == f_, "vector size mismatch");
  ++stats_.systems;
  std::copy(x.begin(), x.end(), backup_.begin());

  switch (options_.kind) {
    case SolverKind::LuFp32:
      return solve_exact(a, b, x, /*via_cholesky=*/false);
    case SolverKind::CholeskyFp32:
      return solve_exact(a, b, x, /*via_cholesky=*/true);
    case SolverKind::CgFp32:
      return solve_cg<float>(a, a, b, x, /*preconditioned=*/false);
    case SolverKind::PcgFp32:
      return solve_cg<float>(a, a, b, x, /*preconditioned=*/true);
    case SolverKind::CgFp16: {
      // Store A in half precision — the read side of every CG matvec then
      // moves half the bytes (Solution 4). b and x stay FP32.
      float_to_half_n(a.data(), scratch_fp16_.data(), a.size(),
                      options_.path);
      stats_.fp16_converted += a.size();
      if (!fp16_pack_ok(a)) {
        // Overflow/underflow in the pack: retry this system with A kept in
        // FP32 (the paper's Solution 3 path) rather than solving a wrong
        // system fast.
        ++stats_.fp16_fallbacks;
        return solve_cg<float>(a, a, b, x, /*preconditioned=*/false);
      }
      return solve_cg<half>(std::span<const half>(scratch_fp16_), a, b, x,
                            /*preconditioned=*/false);
    }
  }
  CUMF_ENSURES(false, "unreachable solver kind");
  return false;
}

}  // namespace cumf
