#include "core/selector.hpp"

#include "common/check.hpp"
#include "core/als.hpp"

namespace cumf {

const char* to_string(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::Als:
      return "ALS";
    case Algorithm::Sgd:
      return "SGD";
  }
  return "unknown";
}

SelectorDecision select_algorithm(const gpusim::DeviceSpec& dev,
                                  const SelectorInput& input) {
  CUMF_EXPECTS(input.m > 0 && input.n > 0 && input.nnz > 0,
               "dataset shape must be non-empty");
  CUMF_EXPECTS(input.f > 0 && input.gpus >= 1, "invalid configuration");

  SelectorDecision decision;

  if (input.implicit_feedback) {
    // §V-F: with confidence-weighted implicit inputs the loss runs over all
    // m·n cells; SGD's cost grows with the dense size while ALS's Gram
    // trick keeps it at O(Nz·f² + (m+n)·f²·fs).
    decision.algorithm = Algorithm::Als;
    AlsKernelConfig config;
    config.f = input.f;
    config.tile = pick_tile(static_cast<std::size_t>(input.f), 10);
    decision.als_time_estimate =
        kTypicalAlsEpochs *
        als_epoch_seconds(dev, input.m, input.n, input.nnz, config,
                          input.gpus);
    decision.sgd_time_estimate =
        kTypicalSgdEpochs *
        sgd_epoch_seconds(dev, input.m * input.n, input.f, true, input.gpus,
                          gpusim::LinkSpec::nvlink(), input.m, input.n);
    decision.rationale =
        "implicit feedback: effective Nz = m*n makes SGD's O(Nz f) cost "
        "explode; ALS's shared Gram matrix keeps the update sparse";
    return decision;
  }

  AlsKernelConfig als_config;
  als_config.f = input.f;
  als_config.tile = pick_tile(static_cast<std::size_t>(input.f), 10);
  als_config.solver = SolverKind::CgFp16;
  decision.als_time_estimate =
      kTypicalAlsEpochs * als_epoch_seconds(dev, input.m, input.n, input.nnz,
                                            als_config, input.gpus);
  decision.sgd_time_estimate =
      kTypicalSgdEpochs *
      sgd_epoch_seconds(dev, input.nnz, input.f, true, input.gpus,
                        gpusim::LinkSpec::nvlink(), input.m, input.n);

  if (decision.als_time_estimate <= decision.sgd_time_estimate) {
    decision.algorithm = Algorithm::Als;
    decision.rationale =
        "modelled ALS time-to-convergence is lower (denser matrix and/or "
        "multiple GPUs favour ALS's conflict-free parallel updates)";
  } else {
    decision.algorithm = Algorithm::Sgd;
    decision.rationale =
        "modelled SGD time-to-convergence is lower (sparse matrix on a "
        "single device: cheap memory-bound epochs win)";
  }
  return decision;
}

}  // namespace cumf
