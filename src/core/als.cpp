#include "core/als.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/faultinject.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "half/half.hpp"
#include "prof/prof.hpp"

namespace cumf {

int pick_tile(std::size_t f, int requested) {
  CUMF_EXPECTS(f > 0, "latent dimension must be positive");
  CUMF_EXPECTS(requested > 0, "tile must be positive");
  for (int t = std::min<int>(requested, static_cast<int>(f)); t > 1; --t) {
    if (f % static_cast<std::size_t>(t) == 0) {
      return t;
    }
  }
  return 1;
}

/// Initializes factors so that x·θ starts near the global rating mean:
/// entries are sqrt(mean/f) with ±10% noise (the standard ALS warm start;
/// a zero init would make the first update-X see Θ = 0 and stall).
void als_init_factors(Matrix& factors, double mean, std::uint64_t seed) {
  Rng rng(seed);
  const double base =
      std::sqrt(std::max(0.1, std::abs(mean)) /
                static_cast<double>(factors.cols()));
  for (std::size_t i = 0; i < factors.rows(); ++i) {
    for (std::size_t k = 0; k < factors.cols(); ++k) {
      factors(i, k) = static_cast<real_t>(base * (1.0 + 0.1 * rng.normal()));
    }
  }
}

AlsEngine::AlsEngine(const RatingsCoo& train, const AlsOptions& options)
    : options_(options) {
  CUMF_EXPECTS(options_.f > 0, "latent dimension must be positive");
  CUMF_EXPECTS(options_.lambda > 0, "ALS-WR needs lambda > 0");
  CUMF_EXPECTS(options_.workers >= 1, "need at least one worker");

  RatingsCoo canonical = train;
  canonical.sort_and_dedup();
  for (const Rating& e : canonical.entries()) {
    CUMF_EXPECTS(std::isfinite(e.r), "ratings must be finite");
  }
  r_ = CsrMatrix::from_coo(canonical);
  rt_ = r_.transposed();

  options_.hermitian.tile = pick_tile(options_.f, options_.hermitian.tile);

  x_ = Matrix(r_.rows(), options_.f);
  theta_ = Matrix(r_.cols(), options_.f);
  const double mean = canonical.mean_value();
  als_init_factors(x_, mean, options_.seed);
  als_init_factors(theta_, mean, options_.seed + 1);

  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (int w = 0; w < options_.workers; ++w) {
    workers_.emplace_back(options_.f, options_.solver, options_.hermitian);
  }
  if (options_.workers > 1) {
    pool_ = std::make_unique<ThreadPool>(
        static_cast<std::size_t>(options_.workers));
  }
}

void als_update_rows(const AlsOptions& options, const CsrMatrix& ratings,
                     const Matrix& fixed, Matrix& solved, index_t begin,
                     index_t end, std::uint32_t fault_site,
                     AlsWorkerContext& ctx, index_t row_offset) {
  const std::size_t f = options.f;
  // One flag check per chunk: when the cuprof tracer is off the loop runs
  // the plain hot path with no clock reads (and with CUMF_PROF=OFF this
  // whole branch folds to `false` at compile time anyway).
  const bool profiled = prof::Tracer::enabled();
  for (index_t u = begin; u < end; ++u) {
    const index_t nnz_u = ratings.row_nnz(u);
    if (nnz_u == 0) {
      continue;  // unobserved row: keep the previous factor
    }
    const std::uint64_t t0 = profiled ? prof::now_ns() : 0;
    if (options.tiled_hermitian) {
      get_hermitian_row(ratings, fixed, u, options.lambda,
                        options.hermitian, ctx.ws, ctx.a_scratch,
                        ctx.b_scratch, options.solver.path);
    } else {
      get_hermitian_row_reference(ratings, fixed, u, options.lambda,
                                  ctx.a_scratch, ctx.b_scratch);
    }
    std::uint64_t t1 = 0;
    if (profiled) {
      t1 = prof::now_ns();
      prof::Tracer::instance().complete_span("get_hermitian", "als", t0, t1);
      ctx.herm_ns += t1 - t0;
    }
    // Global row id: fault decisions and the factor write must be keyed the
    // same way whether this range is a whole matrix or one streamed tile.
    const index_t g = u + row_offset;
    if (analysis::FaultInjector::enabled()) {
      // Deterministic corruption of the assembled system (NaN/inf/indefinite
      // diag/FP16-range blowup) so the solver's degradation ladder gets
      // exercised; the site id keeps the two half-sweeps independent.
      analysis::FaultInjector::instance().corrupt_system(
          fault_site, g, ctx.a_scratch, ctx.b_scratch);
    }
    // Traffic per rating: one θ row (FP32 even when staging rounds to FP16
    // in "shared memory" — the global read is full precision), the rating
    // value and its column index. Written: A_u plus the b_u vector.
    constexpr double kReal = sizeof(real_t);
    constexpr double kIdx = sizeof(index_t);
    ctx.herm_ops.flops += static_cast<double>(nnz_u) * (f * f + 2.0 * f);
    ctx.herm_ops.bytes_read +=
        static_cast<double>(nnz_u) * (f * kReal + kReal + kIdx);
    ctx.herm_ops.bytes_written += (static_cast<double>(f) * f + f) * kReal;

    const bool ok =
        ctx.solver.solve(ctx.a_scratch, ctx.b_scratch, solved.row(g));
    if (!ok) {
      // Even the exact fallback could not produce a finite solution (a
      // corrupted or singular system — impossible for healthy data with
      // λ > 0). Keep the previous factor: the solver restored the row and
      // counted the failure, and training continues on the other rows.
      continue;
    }
    if (profiled) {
      const std::uint64_t t2 = prof::now_ns();
      prof::Tracer::instance().complete_span("solve", "als", t1, t2);
      ctx.solve_ns += t2 - t1;
    }
    const double ff = static_cast<double>(f);
    if (options.solver.kind == SolverKind::CgFp32 ||
        options.solver.kind == SolverKind::PcgFp32 ||
        options.solver.kind == SolverKind::CgFp16) {
      const double a_elem_bytes = options.solver.kind == SolverKind::CgFp16
                                      ? sizeof(half)
                                      : sizeof(real_t);
      const double fs = options.solver.cg_fs;
      ctx.solve_ops.flops += fs * (2.0 * ff * ff + 10.0 * ff);
      // fs sweeps over A (half-width for the FP16 solver) plus the CG
      // warm start reading the previous x_u once.
      ctx.solve_ops.bytes_read += fs * ff * ff * a_elem_bytes + ff * kReal;
    } else {
      ctx.solve_ops.flops += (2.0 / 3.0) * ff * ff * ff;
      ctx.solve_ops.bytes_read += ff * ff * kReal;
    }
    ctx.solve_ops.bytes_written += ff * kReal;
  }
}

void AlsEngine::update_side(const CsrMatrix& ratings, const Matrix& fixed,
                            Matrix& solved, std::uint32_t fault_site) {
  if (pool_ == nullptr) {
    als_update_rows(options_, ratings, fixed, solved, 0, ratings.rows(),
                    fault_site, workers_[0]);
    return;
  }
  // Rows are independent and each worker index is held by exactly one task,
  // so one context per worker stays race-free under either schedule. No row
  // is touched by two workers, and `fixed` is read-only during the sweep.
  const auto body = [&](std::size_t begin, std::size_t end,
                        std::size_t worker) {
    als_update_rows(options_, ratings, fixed, solved,
                    static_cast<index_t>(begin), static_cast<index_t>(end),
                    fault_site, workers_[worker]);
  };
  if (options_.schedule == AlsSchedule::nnz_guided) {
    // ~8 chunks per worker of equal nnz: power-law degree skew costs at
    // most one trailing chunk of imbalance instead of an entire static
    // range (see docs/performance.md).
    const std::vector<std::size_t> bounds =
        nnz_balanced_bounds(ratings, 8 * pool_->size());
    pool_->parallel_for_chunks(bounds, body);
  } else {
    pool_->parallel_for_static(ratings.rows(), body);
  }
}

void AlsEngine::run_epoch() {
  CUMF_PROF_SCOPE("als_epoch", "als");
  // Measured per-epoch counters: reset so callers always see "last epoch".
  for (WorkerContext& ctx : workers_) {
    ctx.herm_ops = OpCounts{};
    ctx.solve_ops = OpCounts{};
    ctx.herm_ns = 0;
    ctx.solve_ns = 0;
  }
  {
    CUMF_PROF_SCOPE("update_X", "als");
    update_side(r_, theta_, x_, /*fault_site=*/0);
  }
  {
    CUMF_PROF_SCOPE("update_Theta", "als");
    update_side(rt_, x_, theta_, /*fault_site=*/1);
  }
  herm_ops_ = OpCounts{};
  solve_ops_ = OpCounts{};
  phase_ = PhaseSeconds{};
  for (const WorkerContext& ctx : workers_) {
    herm_ops_ += ctx.herm_ops;
    solve_ops_ += ctx.solve_ops;
    phase_.hermitian += static_cast<double>(ctx.herm_ns) / 1e9;
    phase_.solve += static_cast<double>(ctx.solve_ns) / 1e9;
  }
  ++epochs_;
  if (epoch_hook_) {
    epoch_hook_(epochs_);
  }
}

void AlsEngine::restore(const Matrix& x, const Matrix& theta, int epochs_run,
                        const SolveStats& stats) {
  CUMF_EXPECTS(x.rows() == x_.rows() && x.cols() == x_.cols(),
               "restore: user-factor shape mismatch");
  CUMF_EXPECTS(theta.rows() == theta_.rows() && theta.cols() == theta_.cols(),
               "restore: item-factor shape mismatch");
  CUMF_EXPECTS(epochs_run >= 0, "restore: negative epoch counter");
  x_ = x;
  theta_ = theta;
  epochs_ = epochs_run;
  restored_stats_ = stats;
  for (WorkerContext& ctx : workers_) {
    ctx.solver.reset_stats();
  }
}

SolveStats AlsEngine::solve_stats() const noexcept {
  SolveStats total = restored_stats_;
  for (const WorkerContext& ctx : workers_) {
    total += ctx.solver.stats();
  }
  return total;
}

}  // namespace cumf
