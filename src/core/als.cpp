#include "core/als.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace cumf {

int pick_tile(std::size_t f, int requested) {
  CUMF_EXPECTS(f > 0, "latent dimension must be positive");
  CUMF_EXPECTS(requested > 0, "tile must be positive");
  for (int t = std::min<int>(requested, static_cast<int>(f)); t > 1; --t) {
    if (f % static_cast<std::size_t>(t) == 0) {
      return t;
    }
  }
  return 1;
}

/// Initializes factors so that x·θ starts near the global rating mean:
/// entries are sqrt(mean/f) with ±10% noise (the standard ALS warm start;
/// a zero init would make the first update-X see Θ = 0 and stall).
void als_init_factors(Matrix& factors, double mean, std::uint64_t seed) {
  Rng rng(seed);
  const double base =
      std::sqrt(std::max(0.1, std::abs(mean)) /
                static_cast<double>(factors.cols()));
  for (std::size_t i = 0; i < factors.rows(); ++i) {
    for (std::size_t k = 0; k < factors.cols(); ++k) {
      factors(i, k) = static_cast<real_t>(base * (1.0 + 0.1 * rng.normal()));
    }
  }
}

AlsEngine::AlsEngine(const RatingsCoo& train, const AlsOptions& options)
    : options_(options) {
  CUMF_EXPECTS(options_.f > 0, "latent dimension must be positive");
  CUMF_EXPECTS(options_.lambda > 0, "ALS-WR needs lambda > 0");
  CUMF_EXPECTS(options_.workers >= 1, "need at least one worker");

  RatingsCoo canonical = train;
  canonical.sort_and_dedup();
  for (const Rating& e : canonical.entries()) {
    CUMF_EXPECTS(std::isfinite(e.r), "ratings must be finite");
  }
  r_ = CsrMatrix::from_coo(canonical);
  rt_ = r_.transposed();

  options_.hermitian.tile = pick_tile(options_.f, options_.hermitian.tile);

  x_ = Matrix(r_.rows(), options_.f);
  theta_ = Matrix(r_.cols(), options_.f);
  const double mean = canonical.mean_value();
  als_init_factors(x_, mean, options_.seed);
  als_init_factors(theta_, mean, options_.seed + 1);

  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (int w = 0; w < options_.workers; ++w) {
    workers_.emplace_back(options_.f, options_.solver);
  }
  if (options_.workers > 1) {
    pool_ = std::make_unique<ThreadPool>(
        static_cast<std::size_t>(options_.workers));
  }
}

void AlsEngine::update_rows(const CsrMatrix& ratings, const Matrix& fixed,
                            Matrix& solved, index_t begin, index_t end,
                            WorkerContext& ctx) {
  const std::size_t f = options_.f;
  for (index_t u = begin; u < end; ++u) {
    const index_t nnz_u = ratings.row_nnz(u);
    if (nnz_u == 0) {
      continue;  // unobserved row: keep the previous factor
    }
    if (options_.tiled_hermitian) {
      get_hermitian_row(ratings, fixed, u, options_.lambda,
                        options_.hermitian, ctx.ws, ctx.a_scratch,
                        ctx.b_scratch);
    } else {
      get_hermitian_row_reference(ratings, fixed, u, options_.lambda,
                                  ctx.a_scratch, ctx.b_scratch);
    }
    ctx.herm_ops.flops += static_cast<double>(nnz_u) * (f * f + 2.0 * f);
    ctx.herm_ops.bytes_read += static_cast<double>(nnz_u) * (f * 4.0 + 8.0);
    ctx.herm_ops.bytes_written += static_cast<double>(f) * f * 4.0;

    const bool ok =
        ctx.solver.solve(ctx.a_scratch, ctx.b_scratch, solved.row(u));
    CUMF_ENSURES(ok, "ALS system unsolvable despite ridge regularization");
    const double ff = static_cast<double>(f);
    if (options_.solver.kind == SolverKind::CgFp32 ||
        options_.solver.kind == SolverKind::PcgFp32 ||
        options_.solver.kind == SolverKind::CgFp16) {
      const double bytes_per_elem =
          options_.solver.kind == SolverKind::CgFp16 ? 2.0 : 4.0;
      const double fs = options_.solver.cg_fs;
      ctx.solve_ops.flops += fs * (2.0 * ff * ff + 10.0 * ff);
      ctx.solve_ops.bytes_read += fs * ff * ff * bytes_per_elem;
    } else {
      ctx.solve_ops.flops += (2.0 / 3.0) * ff * ff * ff;
      ctx.solve_ops.bytes_read += ff * ff * 4.0;
    }
    ctx.solve_ops.bytes_written += ff * 4.0;
  }
}

void AlsEngine::update_side(const CsrMatrix& ratings, const Matrix& fixed,
                            Matrix& solved) {
  if (pool_ == nullptr) {
    update_rows(ratings, fixed, solved, 0, ratings.rows(), workers_[0]);
    return;
  }
  // Rows are independent: static partition, one context per worker. No row
  // is touched by two workers, and `fixed` is read-only during the sweep.
  pool_->parallel_for(
      ratings.rows(),
      [&](std::size_t begin, std::size_t end, std::size_t worker) {
        update_rows(ratings, fixed, solved, static_cast<index_t>(begin),
                    static_cast<index_t>(end), workers_[worker]);
      });
}

void AlsEngine::run_epoch() {
  // Measured per-epoch counters: reset so callers always see "last epoch".
  for (WorkerContext& ctx : workers_) {
    ctx.herm_ops = OpCounts{};
    ctx.solve_ops = OpCounts{};
  }
  update_side(r_, theta_, x_);
  update_side(rt_, x_, theta_);
  herm_ops_ = OpCounts{};
  solve_ops_ = OpCounts{};
  for (const WorkerContext& ctx : workers_) {
    herm_ops_ += ctx.herm_ops;
    solve_ops_ += ctx.solve_ops;
  }
  ++epochs_;
}

SolveStats AlsEngine::solve_stats() const noexcept {
  SolveStats total;
  for (const WorkerContext& ctx : workers_) {
    total.systems += ctx.solver.stats().systems;
    total.cg_iterations += ctx.solver.stats().cg_iterations;
    total.failures += ctx.solver.stats().failures;
  }
  return total;
}

}  // namespace cumf
