// The `solve` step of ALS: pluggable exact and approximate batch solvers.
//
// The paper's progression (Fig. 5): batched LU in FP32 (the cuBLAS baseline,
// O(f³)) → truncated CG in FP32 (O(fs·f²), 4x faster) → truncated CG with
// A stored in FP16 (half the memory traffic, another 2x). Cholesky is
// included as a second exact solver since every A_u is SPD.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "linalg/cg.hpp"

namespace cumf {

enum class SolverKind {
  LuFp32,        ///< exact batched LU (the paper's baseline `solve`)
  CholeskyFp32,  ///< exact batched Cholesky (SPD-aware exact alternative)
  CgFp32,        ///< approximate CG, A in FP32 (Solution 3)
  CgFp16,        ///< approximate CG, A stored in FP16 (Solution 4)
  PcgFp32,       ///< Jacobi-preconditioned CG (extension beyond the paper)
};

const char* to_string(SolverKind kind);

/// Truncation / tolerance knobs for the CG variants (Algorithm 1).
struct SolverOptions {
  SolverKind kind = SolverKind::CgFp32;
  std::uint32_t cg_fs = 6;    ///< max CG iterations (paper: 6 for f=100)
  real_t cg_eps = 1e-4f;      ///< ε tolerance on √(rᵀr)
  /// Kernel path for the CG inner loops and the FP16 A conversion; the
  /// scalar/SIMD variants are differentially tested (see docs/performance.md).
  simd::KernelPath path = simd::kDefaultPath;
};

/// Accumulated behaviour of the solver across a batch of systems.
struct SolveStats {
  std::uint64_t systems = 0;
  std::uint64_t cg_iterations = 0;  ///< total CG steps over all systems
  std::uint64_t failures = 0;       ///< singular / non-SPD systems skipped
};

/// Per-call scratch so the hot loop never allocates.
class SystemSolver {
 public:
  explicit SystemSolver(std::size_t f, const SolverOptions& options);

  /// Solves A x = b. `x` carries the warm start for CG (previous epoch's
  /// factor) and receives the solution. Returns false (and leaves `x`
  /// untouched) when the system cannot be solved (exact solvers only;
  /// CG always produces its best iterate).
  [[nodiscard]] bool solve(std::span<const real_t> a,
                           std::span<const real_t> b, std::span<real_t> x);

  const SolveStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = SolveStats{}; }
  const SolverOptions& options() const noexcept { return options_; }
  std::size_t f() const noexcept { return f_; }

 private:
  std::size_t f_;
  SolverOptions options_;
  SolveStats stats_;
  std::vector<real_t> scratch_fp32_;
  std::vector<half> scratch_fp16_;
  std::vector<index_t> pivots_;
};

}  // namespace cumf
