// The `solve` step of ALS: pluggable exact and approximate batch solvers.
//
// The paper's progression (Fig. 5): batched LU in FP32 (the cuBLAS baseline,
// O(f³)) → truncated CG in FP32 (O(fs·f²), 4x faster) → truncated CG with
// A stored in FP16 (half the memory traffic, another 2x). Cholesky is
// included as a second exact solver since every A_u is SPD.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "linalg/cg.hpp"

namespace cumf {

enum class SolverKind {
  LuFp32,        ///< exact batched LU (the paper's baseline `solve`)
  CholeskyFp32,  ///< exact batched Cholesky (SPD-aware exact alternative)
  CgFp32,        ///< approximate CG, A in FP32 (Solution 3)
  CgFp16,        ///< approximate CG, A stored in FP16 (Solution 4)
  PcgFp32,       ///< Jacobi-preconditioned CG (extension beyond the paper)
};

const char* to_string(SolverKind kind);

/// CLI spelling of a solver ("lu", "cholesky", "cg", "cg16", "pcg") — what
/// cumf_train's --solver flag accepts and tuned-config JSON stores; distinct
/// from the display names to_string() renders.
const char* solver_cli_name(SolverKind kind);

/// Inverse of solver_cli_name; std::nullopt on an unknown spelling.
std::optional<SolverKind> solver_from_cli_name(std::string_view name);

/// Truncation / tolerance knobs for the CG variants (Algorithm 1).
struct SolverOptions {
  SolverKind kind = SolverKind::CgFp32;
  std::uint32_t cg_fs = 6;    ///< max CG iterations (paper: 6 for f=100)
  real_t cg_eps = 1e-4f;      ///< ε tolerance on √(rᵀr)
  /// Kernel path for the CG inner loops and the FP16 A conversion; the
  /// scalar/SIMD variants are differentially tested (see docs/performance.md).
  simd::KernelPath path = simd::kDefaultPath;
};

/// Accumulated behaviour of the solver across a batch of systems.
struct SolveStats {
  /// Histogram buckets for per-solve CG iteration counts: index i counts
  /// solves that took exactly i iterations, the last bucket collects
  /// everything at or above kCgHistMax (practical fs values are ≤ 32).
  static constexpr std::size_t kCgHistMax = 32;

  std::uint64_t systems = 0;
  std::uint64_t cg_iterations = 0;  ///< total CG steps over all systems
  std::uint64_t failures = 0;       ///< singular / non-SPD systems skipped
  /// A-matrix elements converted to FP16 (CG-FP16 staging volume; ×2 for
  /// bytes). Feeds the telemetry stream's pack-volume counter.
  std::uint64_t fp16_converted = 0;
  /// Graceful-degradation events. `cg_fallbacks`: CG broke down (non-finite
  /// residual or pᵀAp ≤ ε) and the system was rerouted to the exact LU
  /// path. `fp16_fallbacks`: the FP16 pack of A overflowed to inf (or
  /// flushed a diagonal to zero) and the system was retried with A in FP32.
  /// Both stay 0 on healthy SPD systems; the telemetry stream surfaces them
  /// per epoch so a degrading run is visible before it diverges.
  std::uint64_t cg_fallbacks = 0;
  std::uint64_t fp16_fallbacks = 0;
  std::array<std::uint64_t, kCgHistMax + 1> cg_hist{};

  void record_cg(std::uint32_t iterations) noexcept {
    cg_iterations += iterations;
    ++cg_hist[std::min<std::size_t>(iterations, kCgHistMax)];
  }

  SolveStats& operator+=(const SolveStats& o) noexcept {
    systems += o.systems;
    cg_iterations += o.cg_iterations;
    failures += o.failures;
    fp16_converted += o.fp16_converted;
    cg_fallbacks += o.cg_fallbacks;
    fp16_fallbacks += o.fp16_fallbacks;
    for (std::size_t i = 0; i < cg_hist.size(); ++i) {
      cg_hist[i] += o.cg_hist[i];
    }
    return *this;
  }

  /// Field-wise equality: the multi-GPU bit-identity tests assert that
  /// per-device stats merged in device order equal the single-engine run.
  friend bool operator==(const SolveStats&, const SolveStats&) = default;

  /// Delta between two cumulative snapshots (per-epoch telemetry); all
  /// fields are monotone, so `newer - older` is well-defined.
  friend SolveStats operator-(SolveStats newer, const SolveStats& older) {
    newer.systems -= older.systems;
    newer.cg_iterations -= older.cg_iterations;
    newer.failures -= older.failures;
    newer.fp16_converted -= older.fp16_converted;
    newer.cg_fallbacks -= older.cg_fallbacks;
    newer.fp16_fallbacks -= older.fp16_fallbacks;
    for (std::size_t i = 0; i < newer.cg_hist.size(); ++i) {
      newer.cg_hist[i] -= older.cg_hist[i];
    }
    return newer;
  }
};

/// Per-call scratch so the hot loop never allocates.
class SystemSolver {
 public:
  explicit SystemSolver(std::size_t f, const SolverOptions& options);

  /// Solves A x = b. `x` carries the warm start for CG (previous epoch's
  /// factor) and receives the solution.
  ///
  /// Degradation ladder for the approximate kinds: an FP16 pack that
  /// overflows retries the system with A in FP32, and a CG breakdown
  /// (non-finite residual, pᵀAp ≤ ε) reroutes to the exact LU path — each
  /// counted in stats(). Returns false (and restores `x` to its entry
  /// value) only when even the exact path cannot produce a finite solution
  /// (singular or non-finite system); such systems count as failures and
  /// callers keep the previous factor.
  [[nodiscard]] bool solve(std::span<const real_t> a,
                           std::span<const real_t> b, std::span<real_t> x);

  const SolveStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = SolveStats{}; }
  const SolverOptions& options() const noexcept { return options_; }
  std::size_t f() const noexcept { return f_; }

 private:
  /// Exact solve used both as a primary kind and as the CG fallback.
  /// Assumes backup_ holds the entry value of x; restores it on failure.
  bool solve_exact(std::span<const real_t> a, std::span<const real_t> b,
                   std::span<real_t> x, bool via_cholesky);

  /// CG/PCG on storage type T with breakdown → exact-LU degradation.
  /// `a_exact` is the FP32 view of the same system for the fallback.
  template <typename T>
  bool solve_cg(std::span<const T> a, std::span<const real_t> a_exact,
                std::span<const real_t> b, std::span<real_t> x,
                bool preconditioned);

  /// True when every FP16-packed element faithfully represents its FP32
  /// source (no finite→inf overflow, no nonzero diagonal flushed to zero).
  bool fp16_pack_ok(std::span<const real_t> a) const noexcept;

  std::size_t f_;
  SolverOptions options_;
  SolveStats stats_;
  std::vector<real_t> scratch_fp32_;
  std::vector<half> scratch_fp16_;
  std::vector<index_t> pivots_;
  std::vector<real_t> backup_;  ///< x on entry, for failure restoration
};

}  // namespace cumf
