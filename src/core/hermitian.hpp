// get_hermitian — the compute-bound half of an ALS update (paper §III).
//
// For every row u with non-zeros {v : r_uv ≠ 0} it forms
//     A_u = Σ_v θ_v θ_vᵀ + λ n_u I           (f×f, symmetric)
//     b_u = Σ_v r_uv θ_v                      (the get_bias term)
//
// The functional kernel here mirrors the CUDA kernel's structure exactly
// (Fig. 2): θ columns are staged into a BIN×f "shared memory" buffer in
// batches; A_u is accumulated tile-by-tile in T×T "register" blocks; only
// lower-triangular tile pairs (x ≤ y) are computed and the result is
// mirrored on flush. Mirroring the structure keeps the simulated-GPU
// resource accounting (registers = T², smem = BIN·f floats) honest, and the
// unit tests verify it is numerically identical to the naive reference.
#pragma once

#include <span>
#include <vector>

#include "linalg/dense.hpp"
#include "simd/vec.hpp"
#include "sparse/csr.hpp"

namespace cumf {

struct HermitianParams {
  int tile = 10;  ///< register tile size T (paper: 10 for f=100)
  int bin = 32;   ///< θ columns staged per batch (paper: 32)
  /// Stage θ in FP16 (the paper's §VII Tensor-Core future work): inputs are
  /// rounded to half precision on the way into shared memory, accumulation
  /// stays FP32 — exactly the Tensor-Core mixed-precision contract. Halves
  /// the staging traffic at a bounded (≤2⁻¹¹ relative) input perturbation.
  bool fp16_staging = false;
};

/// Reusable scratch for the staged batch. Call prepare() once per worker so
/// the per-row hot loop never touches allocator paths; unprepared workspaces
/// are sized lazily on first use.
struct HermitianWorkspace {
  std::vector<real_t> staged;  ///< BIN × f "shared memory" buffer

  void prepare(std::size_t f, const HermitianParams& params);
};

/// Tiled kernel: writes the full symmetric A_u (f×f row-major) into `a_out`
/// and b_u into `b_out`. λ·n_u is added to the diagonal (ALS-WR weighting,
/// eq. (2)). Rows with no non-zeros produce A_u = λ·0·I = 0 plus b=0; the
/// caller decides how to handle them (AlsEngine keeps the old factor).
/// `path` selects the SIMD or scalar variant of the tile accumulation, the
/// FP16 staging transform, and the b_u update; the two variants are bitwise
/// identical (all three stages are elementwise) and differentially tested.
void get_hermitian_row(const CsrMatrix& r, const Matrix& theta, index_t u,
                       real_t lambda, const HermitianParams& params,
                       HermitianWorkspace& ws, std::span<real_t> a_out,
                       std::span<real_t> b_out,
                       simd::KernelPath path = simd::kDefaultPath);

/// Naive reference (plain accumulation loops) for differential testing.
void get_hermitian_row_reference(const CsrMatrix& r, const Matrix& theta,
                                 index_t u, real_t lambda,
                                 std::span<real_t> a_out,
                                 std::span<real_t> b_out);

/// Static value-range envelope of the get_hermitian outputs over every row
/// of `r`, assuming factor magnitudes up to `theta_absmax`:
///     |A_ij| ≤ n_u·θmax²  (i≠j),   A_ii ≤ n_u·θmax² + λ·n_u,
///     A_ii ≥ λ·n_u,                |b_i| ≤ n_u·|r|max·θmax.
/// The analysis layer's FP16 range pass (analysis/cuverify/fp16range.hpp)
/// propagates these through the CG dataflow to predict whether the CG-FP16
/// solver's A pack can overflow for a dataset — before any epoch runs.
struct HermitianValueBounds {
  std::uint64_t max_nnz = 0;   ///< densest row's non-zero count
  std::uint64_t min_nnz = 0;   ///< sparsest *non-empty* row (0: all empty)
  double rating_absmax = 0.0;  ///< max |r_uv| over the matrix
  double a_offdiag_abs = 0.0;  ///< ≥ max |A_ij|, i ≠ j
  double a_diag_max = 0.0;     ///< ≥ max A_ii (including the λ·n_u ridge)
  double a_diag_min = 0.0;     ///< ≤ min A_ii of a non-empty row (λ floor)
  double b_abs = 0.0;          ///< ≥ max |b_i|
};

HermitianValueBounds hermitian_value_bounds(const CsrMatrix& r,
                                            double theta_absmax,
                                            double lambda);

}  // namespace cumf
