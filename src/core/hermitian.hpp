// get_hermitian — the compute-bound half of an ALS update (paper §III).
//
// For every row u with non-zeros {v : r_uv ≠ 0} it forms
//     A_u = Σ_v θ_v θ_vᵀ + λ n_u I           (f×f, symmetric)
//     b_u = Σ_v r_uv θ_v                      (the get_bias term)
//
// The functional kernel here mirrors the CUDA kernel's structure exactly
// (Fig. 2): θ columns are staged into a BIN×f "shared memory" buffer in
// batches; A_u is accumulated tile-by-tile in T×T "register" blocks; only
// lower-triangular tile pairs (x ≤ y) are computed and the result is
// mirrored on flush. Mirroring the structure keeps the simulated-GPU
// resource accounting (registers = T², smem = BIN·f floats) honest, and the
// unit tests verify it is numerically identical to the naive reference.
#pragma once

#include <span>
#include <vector>

#include "linalg/dense.hpp"
#include "simd/vec.hpp"
#include "sparse/csr.hpp"

namespace cumf {

struct HermitianParams {
  int tile = 10;  ///< register tile size T (paper: 10 for f=100)
  int bin = 32;   ///< θ columns staged per batch (paper: 32)
  /// Stage θ in FP16 (the paper's §VII Tensor-Core future work): inputs are
  /// rounded to half precision on the way into shared memory, accumulation
  /// stays FP32 — exactly the Tensor-Core mixed-precision contract. Halves
  /// the staging traffic at a bounded (≤2⁻¹¹ relative) input perturbation.
  bool fp16_staging = false;
};

/// Reusable scratch for the staged batch. Call prepare() once per worker so
/// the per-row hot loop never touches allocator paths; unprepared workspaces
/// are sized lazily on first use.
struct HermitianWorkspace {
  std::vector<real_t> staged;  ///< BIN × f "shared memory" buffer

  void prepare(std::size_t f, const HermitianParams& params);
};

/// Tiled kernel: writes the full symmetric A_u (f×f row-major) into `a_out`
/// and b_u into `b_out`. λ·n_u is added to the diagonal (ALS-WR weighting,
/// eq. (2)). Rows with no non-zeros produce A_u = λ·0·I = 0 plus b=0; the
/// caller decides how to handle them (AlsEngine keeps the old factor).
/// `path` selects the SIMD or scalar variant of the tile accumulation, the
/// FP16 staging transform, and the b_u update; the two variants are bitwise
/// identical (all three stages are elementwise) and differentially tested.
void get_hermitian_row(const CsrMatrix& r, const Matrix& theta, index_t u,
                       real_t lambda, const HermitianParams& params,
                       HermitianWorkspace& ws, std::span<real_t> a_out,
                       std::span<real_t> b_out,
                       simd::KernelPath path = simd::kDefaultPath);

/// Naive reference (plain accumulation loops) for differential testing.
void get_hermitian_row_reference(const CsrMatrix& r, const Matrix& theta,
                                 index_t u, real_t lambda,
                                 std::span<real_t> a_out,
                                 std::span<real_t> b_out);

}  // namespace cumf
