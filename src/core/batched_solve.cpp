#include "core/batched_solve.hpp"

#include <mutex>
#include <vector>

#include "common/check.hpp"
#include "prof/prof.hpp"

namespace cumf {

SolveStats solve_batched(std::size_t batch, std::size_t f,
                         std::span<const real_t> a,
                         std::span<const real_t> b, std::span<real_t> x,
                         const SolverOptions& options, ThreadPool* pool) {
  CUMF_PROF_SCOPE("solve_batched", "solver");
  CUMF_EXPECTS(a.size() == batch * f * f, "solve_batched: A batch shape");
  CUMF_EXPECTS(b.size() == batch * f, "solve_batched: b batch shape");
  CUMF_EXPECTS(x.size() == batch * f, "solve_batched: x batch shape");

  if (pool == nullptr || batch < 2) {
    SystemSolver solver(f, options);
    for (std::size_t i = 0; i < batch; ++i) {
      (void)solver.solve(a.subspan(i * f * f, f * f), b.subspan(i * f, f),
                         x.subspan(i * f, f));
    }
    return solver.stats();
  }

  SolveStats total;
  std::mutex merge_mutex;
  pool->parallel_for(batch, [&](std::size_t begin, std::size_t end,
                                std::size_t) {
    SystemSolver solver(f, options);  // worker-local scratch
    for (std::size_t i = begin; i < end; ++i) {
      (void)solver.solve(a.subspan(i * f * f, f * f), b.subspan(i * f, f),
                         x.subspan(i * f, f));
    }
    const std::lock_guard lock(merge_mutex);
    total += solver.stats();
  });
  return total;
}

}  // namespace cumf
