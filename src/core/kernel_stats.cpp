#include "core/kernel_stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace cumf {

namespace {

// --- Calibration factors -------------------------------------------------
// These scale the device's generic compute efficiency to the specific
// kernel. They are calibrated once against the published measurements
// (Fig. 5/7 and Table IV of the paper and the open-source cuMF kernels)
// and are NOT tuned per experiment; every bench uses the same values.

/// Register-tiled get_hermitian sustains ~75% of a dense-GEMM's efficiency
/// (it also walks the sparse row structure).
constexpr double kHermTiledEff = 0.75;
/// Without register tiling (GPU-ALS [31]) the accumulator spills to L1 and
/// sustained FLOPS drop by a further ~2.2x.
constexpr double kHermPlainEff = 0.34;
/// Batched LU with partial pivoting on f×f blocks: heavy branch divergence,
/// ~5% of dense peak — consistent with Fig. 5's LU-FP32 bar.
constexpr double kLuEff = 0.05;
/// Batched Cholesky: no pivoting, somewhat better than LU.
constexpr double kCholeskyEff = 0.08;
/// Streaming writes / coalesced CG matvec reads sustain ~85% of DRAM peak
/// (above the 75% memcpy reference — Fig. 7b).
constexpr double kStreamBwEff = 0.85;
/// SGD's scattered factor updates sustain ~55% of DRAM peak.
constexpr double kSgdBwEff = 0.55;

gpusim::TraceConfig trace_config(const AlsKernelConfig& config) {
  gpusim::TraceConfig tc;
  tc.f = config.f;
  tc.bin = config.bin;
  tc.threads_per_block =
      gpusim::hermitian_threads_per_block(config.f, config.tile);
  tc.coalesced = config.load_scheme == LoadScheme::Coalesced;
  tc.l1_enabled = config.load_scheme != LoadScheme::NonCoalescedNoL1;
  return tc;
}

/// Column lists for the resident blocks of the trace: real rows when a CSR
/// sample is available, otherwise synthetic rows with the average degree.
std::vector<std::vector<index_t>> sample_block_rows(
    const UpdateShape& shape, int blocks, int rounds,
    const CsrMatrix* sample) {
  std::vector<std::vector<index_t>> rows;
  rows.reserve(static_cast<std::size_t>(blocks));
  const auto want = static_cast<std::size_t>(blocks);

  if (sample != nullptr && sample->rows() > 0) {
    // Deterministic stride through the matrix, skipping empty rows.
    const index_t stride = std::max<index_t>(1, sample->rows() / 97);
    index_t u = 0;
    while (rows.size() < want) {
      std::vector<index_t> cols;
      for (int round = 0; round < rounds; ++round) {
        for (index_t probe = 0; probe < sample->rows(); ++probe) {
          u = (u + stride) % sample->rows();
          if (sample->row_nnz(u) > 0) {
            const auto rc = sample->row_cols(u);
            cols.insert(cols.end(), rc.begin(), rc.end());
            break;
          }
        }
      }
      rows.push_back(std::move(cols));
    }
    return rows;
  }

  const auto degree = static_cast<std::size_t>(std::max(
      1.0, shape.nnz / std::max(1.0, shape.rows)));
  Rng rng(0xC0FFEE);
  const auto n_cols = static_cast<std::uint64_t>(std::max(1.0, shape.cols));
  for (std::size_t b = 0; b < want; ++b) {
    std::vector<index_t> cols(degree * static_cast<std::size_t>(rounds));
    for (auto& c : cols) {
      c = static_cast<index_t>(rng.uniform_index(n_cols));
    }
    rows.push_back(std::move(cols));
  }
  return rows;
}

}  // namespace

const char* to_string(LoadScheme scheme) {
  switch (scheme) {
    case LoadScheme::Coalesced:
      return "coal";
    case LoadScheme::NonCoalescedL1:
      return "nonCoal-L1";
    case LoadScheme::NonCoalescedNoL1:
      return "nonCoal-noL1";
  }
  return "unknown";
}

gpusim::TraceStats hermitian_load_stats(const gpusim::DeviceSpec& dev,
                                        const UpdateShape& shape,
                                        const AlsKernelConfig& config,
                                        const CsrMatrix* sample_rows) {
  CUMF_EXPECTS(shape.rows > 0 && shape.cols > 0 && shape.nnz > 0,
               "update shape must be non-empty");
  const gpusim::Occupancy occ = hermitian_occupancy(dev, config);
  const auto block_rows = sample_block_rows(
      shape, std::max(1, occ.blocks_per_sm), /*rounds=*/2, sample_rows);
  return simulate_hermitian_load(dev, trace_config(config), block_rows);
}

gpusim::Occupancy hermitian_occupancy(const gpusim::DeviceSpec& dev,
                                      const AlsKernelConfig& config) {
  gpusim::KernelResources res;
  res.regs_per_thread =
      gpusim::hermitian_regs_per_thread(config.f, config.tile);
  res.threads_per_block =
      gpusim::hermitian_threads_per_block(config.f, config.tile);
  res.smem_per_block_bytes =
      config.bin * config.f * static_cast<int>(sizeof(real_t));
  return compute_occupancy(dev, res);
}

UpdatePhaseTimes update_phase_times(const gpusim::DeviceSpec& dev,
                                    const UpdateShape& shape,
                                    const AlsKernelConfig& config,
                                    const CsrMatrix* sample_rows) {
  CUMF_EXPECTS(shape.rows > 0 && shape.cols > 0 && shape.nnz > 0,
               "update shape must be non-empty");
  const double f = config.f;
  UpdatePhaseTimes out;

  const gpusim::Occupancy occ = hermitian_occupancy(dev, config);

  // --- load: stage θ batches from global memory (trace-driven) ---
  {
    const auto tc = trace_config(config);
    const auto block_rows = sample_block_rows(
        shape, std::max(1, occ.blocks_per_sm), /*rounds=*/2, sample_rows);
    const gpusim::TraceStats trace =
        simulate_hermitian_load(dev, tc, block_rows);

    gpusim::KernelProfile p;
    p.name = "hermitian_load";
    p.warps_per_sm = occ.warps_per_sm;
    p.dram_efficiency = kStreamBwEff;
    const bool tensor =
        config.tensor_core_hermitian && dev.tensor_flops > 0;
    // The staging loop is load → shared-store → __syncthreads: the next
    // batch's loads depend on the previous store, so a warp keeps only ~1
    // memory instruction in flight. This is why low occupancy makes the
    // coalesced scheme latency-bound (Observation 2).
    p.outstanding_per_warp = 1;
    apply_trace(dev, trace, shape.rows, p);
    if (tensor) {
      // FP16 θ staging halves every byte of θ traffic (the trace assumed
      // 4-byte elements); stall counts are unaffected.
      p.dram_read_bytes *= 0.5;
      p.l2_read_bytes *= 0.5;
    }
    // The CSR structure of R itself streams in once (indices + values).
    p.dram_read_bytes += shape.nnz * 8.0;
    out.load = kernel_time(dev, p);
  }

  // --- compute: θθᵀ tile accumulation + get_bias ---
  {
    gpusim::KernelProfile p;
    p.name = "hermitian_compute";
    p.flops = shape.nnz * (f * f + 2.0 * f);
    const bool tensor =
        config.tensor_core_hermitian && dev.tensor_flops > 0;
    double eff = dev.compute_efficiency *
                 (config.register_tiling ? kHermTiledEff : kHermPlainEff);
    if (tensor) {
      // Tensor Cores: the f×f outer-product accumulation maps onto mma
      // tiles; sustained throughput ≈ 40% of the Tensor peak for this
      // irregular batch shape. Expressed as an efficiency against the FP32
      // peak so the rest of the model is unchanged.
      eff = 0.40 * dev.tensor_flops / dev.peak_flops;
    }
    // ALU latency hiding needs ~8 resident warps; below that the pipeline
    // stalls (this is what makes BIN so large it evicts all other blocks a
    // bad trade despite fewer batch barriers).
    eff *= std::min(1.0, occ.warps_per_sm / 8.0);
    // A T×T register tile does T² FMAs per 2·T shared-memory reads; below
    // T≈8 the shared-memory throughput, not the FPUs, limits the kernel.
    if (config.register_tiling) {
      eff *= std::min(1.0, config.tile / 8.0);
    }
    p.compute_efficiency = eff;
    p.warps_per_sm = occ.warps_per_sm;
    out.compute = kernel_time(dev, p);
  }

  // --- write: flush A_u and b_u to global memory ---
  {
    gpusim::KernelProfile p;
    p.name = "hermitian_write";
    p.dram_write_bytes = shape.rows * (f * f + f) * 4.0;
    p.dram_efficiency = kStreamBwEff;
    p.warps_per_sm = occ.warps_per_sm;
    out.write = kernel_time(dev, p);
  }

  // --- solve: batched LU / Cholesky / CG ---
  {
    gpusim::KernelProfile p;
    p.name = "solve";
    p.warps_per_sm = dev.max_threads_per_sm / dev.warp_size;  // high occ.
    switch (config.solver) {
      case SolverKind::LuFp32:
        p.flops = shape.rows * (2.0 / 3.0) * f * f * f;
        p.compute_efficiency = dev.compute_efficiency * kLuEff;
        p.dram_read_bytes = shape.rows * f * f * 4.0;
        p.dram_write_bytes = shape.rows * f * 4.0;
        p.dram_efficiency = kStreamBwEff;
        break;
      case SolverKind::CholeskyFp32:
        p.flops = shape.rows * (1.0 / 3.0) * f * f * f;
        p.compute_efficiency = dev.compute_efficiency * kCholeskyEff;
        p.dram_read_bytes = shape.rows * f * f * 4.0;
        p.dram_write_bytes = shape.rows * f * 4.0;
        p.dram_efficiency = kStreamBwEff;
        break;
      case SolverKind::CgFp32:
      case SolverKind::PcgFp32:
      case SolverKind::CgFp16: {
        const double elem =
            config.solver == SolverKind::CgFp16 ? 2.0 : 4.0;
        const double iters = config.cg_fs;
        // Dominant traffic: A is re-read every iteration (paper Obs. 4).
        p.dram_read_bytes = shape.rows * iters * f * f * elem;
        p.dram_write_bytes = shape.rows * f * 4.0;
        p.flops = shape.rows * iters * (2.0 * f * f + 10.0 * f);
        p.compute_efficiency = dev.compute_efficiency;
        p.dram_efficiency = kStreamBwEff;
        // Fig. 5: enabling L1 for the coalesced CG read changes nothing;
        // the model reflects that by not depending on config.solver_l1.
        break;
      }
    }
    out.solve = kernel_time(dev, p);
  }
  return out;
}

double als_epoch_seconds(const gpusim::DeviceSpec& dev, double m, double n,
                         double nnz, const AlsKernelConfig& config,
                         int gpus, const gpusim::LinkSpec& link) {
  CUMF_EXPECTS(gpus >= 1, "need at least one GPU");
  const double g = gpus;
  // Rows are partitioned across devices; every device sees the full fixed
  // side, so per-device work is 1/g of each half-sweep.
  const UpdateShape x_shape{m / g, n, nnz / g};
  const UpdateShape t_shape{n / g, m, nnz / g};
  const double t_x = update_phase_times(dev, x_shape, config).total_seconds();
  const double t_theta =
      update_phase_times(dev, t_shape, config).total_seconds();

  double comm = 0.0;
  if (gpus > 1) {
    // After each half-sweep the updated factor partition is all-gathered.
    comm = gpusim::allgather_seconds(link, gpus, m / g * config.f * 4.0) +
           gpusim::allgather_seconds(link, gpus, n / g * config.f * 4.0);
  }
  return t_x + t_theta + comm;
}

double sgd_epoch_seconds(const gpusim::DeviceSpec& dev, double nnz, int f,
                         bool half_precision, int gpus,
                         const gpusim::LinkSpec& link, double m, double n) {
  CUMF_EXPECTS(gpus >= 1, "need at least one GPU");
  const double g = gpus;
  gpusim::KernelProfile p;
  p.name = "sgd_update";
  const double elem = half_precision ? 2.0 : 4.0;
  p.flops = nnz / g * 10.0 * f;
  p.dram_read_bytes = nnz / g * (2.0 * f * elem + 8.0);
  p.dram_write_bytes = nnz / g * 2.0 * f * elem;
  p.dram_efficiency = kSgdBwEff;
  p.compute_efficiency = dev.compute_efficiency;
  p.warps_per_sm = dev.max_threads_per_sm / dev.warp_size;
  double t = kernel_time(dev, p).seconds;
  if (gpus > 1 && m > 0 && n > 0) {
    t += gpusim::allgather_seconds(link, gpus, (m + n) / g * f * elem);
  }
  return t;
}

}  // namespace cumf
