// Bridges the ALS kernels to the gpusim cost model.
//
// For a dataset shape (m, n, Nz), a kernel configuration and a device, this
// module produces the simulated time of each phase the paper measures:
//   Fig. 4 — get_hermitian split into load / compute / write under the three
//            memory-access schemes;
//   Fig. 5 — solver time of LU-FP32 / CG-FP32 / CG-FP16 (± L1);
//   Fig. 6/8 — whole-epoch times, optionally across multiple GPUs.
#pragma once

#include <algorithm>
#include <optional>

#include "core/solver.hpp"
#include "gpusim/cost_model.hpp"
#include "gpusim/device.hpp"
#include "gpusim/interconnect.hpp"
#include "gpusim/occupancy.hpp"
#include "gpusim/trace.hpp"
#include "sparse/csr.hpp"

namespace cumf {

/// Global-memory access scheme of get_hermitian's load phase (Fig. 3/4).
enum class LoadScheme {
  Coalesced,         ///< conventional: warp cooperates column-by-column
  NonCoalescedL1,    ///< paper's Solution 2: thread-per-column, L1 on
  NonCoalescedNoL1,  ///< thread-per-column with L1 bypassed (-dlcm=cg)
};

const char* to_string(LoadScheme scheme);

struct AlsKernelConfig {
  int f = 100;
  int tile = 10;
  int bin = 32;
  LoadScheme load_scheme = LoadScheme::NonCoalescedL1;
  SolverKind solver = SolverKind::CgFp32;
  std::uint32_t cg_fs = 6;
  /// L1 enabled for the *solver's* A reads (Fig. 5 solve-L1 vs solve-noL1;
  /// the paper shows it makes no difference for the coalesced CG).
  bool solver_l1 = false;
  /// false models GPU-ALS [31]: same algorithm but without the aggressive
  /// register tiling of Fig. 2, so the compute phase sustains lower FLOPS.
  bool register_tiling = true;
  /// §VII future work: run the θθᵀ accumulation on Tensor Cores with FP16
  /// inputs and FP32 accumulation. Requires a device with tensor_flops > 0
  /// (ignored otherwise); also halves the θ staging traffic.
  bool tensor_core_hermitian = false;
};

/// The matrix shape a kernel runs against. `rows` is the side being updated
/// (m for update-X, n for update-Θ); `cols` the fixed side.
struct UpdateShape {
  double rows = 0;
  double cols = 0;
  double nnz = 0;
};

/// Simulated times of one half-sweep (one `update` in Fig. 4's terms).
struct UpdatePhaseTimes {
  gpusim::KernelTime load;     ///< stage θ batches global → shared
  gpusim::KernelTime compute;  ///< accumulate θθᵀ tiles in registers
  gpusim::KernelTime write;    ///< flush A_u blocks to global memory
  gpusim::KernelTime solve;    ///< LU or CG batch solve

  /// Whole-kernel time: the cuMF kernel double-buffers the shared-memory
  /// staging, so the load phase overlaps the tile accumulation; the A_u
  /// flush cannot overlap (it needs the final accumulator).
  double hermitian_seconds() const noexcept {
    return std::max(load.seconds, compute.seconds) + write.seconds;
  }
  double total_seconds() const noexcept {
    return hermitian_seconds() + solve.seconds;
  }
};

/// Occupancy of the get_hermitian kernel for this configuration — the
/// quantity behind Observation 2 (6 blocks/SM on Maxwell at f=100).
gpusim::Occupancy hermitian_occupancy(const gpusim::DeviceSpec& dev,
                                      const AlsKernelConfig& config);

/// Models one half-sweep. `sample_rows`, when given, supplies real rating
/// rows whose column lists drive the cache-trace simulation of the load
/// phase; otherwise synthetic uniform rows with nnz/rows non-zeros are used.
UpdatePhaseTimes update_phase_times(const gpusim::DeviceSpec& dev,
                                    const UpdateShape& shape,
                                    const AlsKernelConfig& config,
                                    const CsrMatrix* sample_rows = nullptr);

/// Cache-trace statistics of get_hermitian's load phase alone — the same
/// simulation update_phase_times() runs internally, exposed for telemetry
/// (simulated L1/L2 hit rates and DRAM bytes per epoch).
gpusim::TraceStats hermitian_load_stats(const gpusim::DeviceSpec& dev,
                                        const UpdateShape& shape,
                                        const AlsKernelConfig& config,
                                        const CsrMatrix* sample_rows = nullptr);

/// Full-epoch simulated seconds: update-X + update-Θ on `gpus` devices.
/// Multi-GPU runs partition rows per device and all-gather the updated
/// factors over `link` after each half-sweep.
double als_epoch_seconds(const gpusim::DeviceSpec& dev, double m, double n,
                         double nnz, const AlsKernelConfig& config,
                         int gpus = 1,
                         const gpusim::LinkSpec& link =
                             gpusim::LinkSpec::nvlink());

/// GPU-SGD epoch model (cuMF-SGD, Xie et al. HPDC'17): Hogwild-style update
/// kernel, memory-bound, optionally with FP16 factor storage.
double sgd_epoch_seconds(const gpusim::DeviceSpec& dev, double nnz, int f,
                         bool half_precision, int gpus = 1,
                         const gpusim::LinkSpec& link =
                             gpusim::LinkSpec::nvlink(),
                         double m = 0, double n = 0);

}  // namespace cumf
