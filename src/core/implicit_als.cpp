#include "core/implicit_als.hpp"

#include <cmath>

#include <algorithm>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "prof/prof.hpp"

namespace cumf {

ImplicitAlsEngine::ImplicitAlsEngine(const ImplicitDataset& data,
                                     const ImplicitAlsOptions& options)
    : options_(options),
      alpha_(data.alpha),
      solver_(options.f, options.solver) {
  CUMF_EXPECTS(options_.f > 0, "latent dimension must be positive");
  CUMF_EXPECTS(options_.lambda > 0, "implicit ALS needs lambda > 0");

  RatingsCoo canonical = data.interactions;
  canonical.sort_and_dedup();
  r_ = CsrMatrix::from_coo(canonical);
  rt_ = r_.transposed();

  x_ = Matrix(r_.rows(), options_.f);
  theta_ = Matrix(r_.cols(), options_.f);
  Rng rng(options_.seed);
  const double scale = 1.0 / std::sqrt(static_cast<double>(options_.f));
  for (std::size_t i = 0; i < x_.rows(); ++i) {
    for (std::size_t k = 0; k < options_.f; ++k) {
      x_(i, k) = static_cast<real_t>(rng.normal(0.0, 0.1 * scale));
    }
  }
  for (std::size_t i = 0; i < theta_.rows(); ++i) {
    for (std::size_t k = 0; k < options_.f; ++k) {
      theta_(i, k) = static_cast<real_t>(rng.normal(0.0, 0.1 * scale));
    }
  }

  gram_.resize(options_.f * options_.f);
  a_scratch_.resize(options_.f * options_.f);
  b_scratch_.resize(options_.f);
}

void ImplicitAlsEngine::update_side(const CsrMatrix& interactions,
                                    const Matrix& fixed, Matrix& solved) {
  const std::size_t f = options_.f;

  // Shared Gram matrix ΘᵀΘ (or XᵀX), computed once for the whole sweep:
  // Σ_v θ_v θ_vᵀ accumulated over the lower triangle, then mirrored.
  std::fill(gram_.begin(), gram_.end(), real_t{0});
  for (std::size_t v = 0; v < fixed.rows(); ++v) {
    const auto t = fixed.row(v);
    for (std::size_t i = 0; i < f; ++i) {
      for (std::size_t j = 0; j <= i; ++j) {
        gram_[i * f + j] += t[i] * t[j];
      }
    }
  }
  for (std::size_t i = 0; i < f; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      gram_[j * f + i] = gram_[i * f + j];
    }
  }

  for (index_t u = 0; u < interactions.rows(); ++u) {
    // A = ΘᵀΘ + λI, then add the (c−1)·θθᵀ corrections of observed items.
    std::copy(gram_.begin(), gram_.end(), a_scratch_.begin());
    for (std::size_t i = 0; i < f; ++i) {
      a_scratch_[i * f + i] += options_.lambda;
    }
    std::fill(b_scratch_.begin(), b_scratch_.end(), real_t{0});

    const auto cols = interactions.row_cols(u);
    const auto vals = interactions.row_vals(u);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const double c = 1.0 + alpha_ * static_cast<double>(vals[k]);
      const auto cm1 = static_cast<real_t>(c - 1.0);
      const auto t = fixed.row(cols[k]);
      for (std::size_t i = 0; i < f; ++i) {
        const real_t ti = cm1 * t[i];
        for (std::size_t j = 0; j <= i; ++j) {
          a_scratch_[i * f + j] += ti * t[j];
        }
        // p_uv = 1 for every observed interaction.
        b_scratch_[i] += static_cast<real_t>(c) * t[i];
      }
    }
    for (std::size_t i = 0; i < f; ++i) {
      for (std::size_t j = 0; j < i; ++j) {
        a_scratch_[j * f + i] = a_scratch_[i * f + j];
      }
    }

    const bool ok = solver_.solve(a_scratch_, b_scratch_, solved.row(u));
    if (!ok) {
      continue;  // unsolvable even exactly: keep the previous factor
    }
  }
}

void ImplicitAlsEngine::run_epoch() {
  CUMF_PROF_SCOPE("implicit_als_epoch", "als");
  update_side(r_, theta_, x_);
  update_side(rt_, x_, theta_);
  ++epochs_;
}

double ImplicitAlsEngine::dense_loss() const {
  // Exact implicit objective over all cells. Observed cells are found via
  // the CSR row structure; unobserved cells have p=0, c=1.
  double loss = 0.0;
  for (index_t u = 0; u < r_.rows(); ++u) {
    const auto cols = r_.row_cols(u);
    const auto vals = r_.row_vals(u);
    std::size_t k = 0;
    for (index_t v = 0; v < r_.cols(); ++v) {
      const double pred = dot(x_.row(u), theta_.row(v));
      double c = 1.0;
      double p = 0.0;
      if (k < cols.size() && cols[k] == v) {
        c = 1.0 + alpha_ * static_cast<double>(vals[k]);
        p = 1.0;
        ++k;
      }
      loss += c * (p - pred) * (p - pred);
    }
  }
  double reg = 0.0;
  for (const real_t w : x_.data()) {
    reg += static_cast<double>(w) * w;
  }
  for (const real_t w : theta_.data()) {
    reg += static_cast<double>(w) * w;
  }
  return loss + options_.lambda * reg;
}

real_t ImplicitAlsEngine::score(index_t u, index_t v) const {
  return static_cast<real_t>(dot(x_.row(u), theta_.row(v)));
}

}  // namespace cumf
