#include "core/ooc_als.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <numeric>
#include <utility>

#include "common/check.hpp"
#include "prof/prof.hpp"

namespace cumf {
namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::uint64_t largest_tile_bytes(const ShardMeta& meta) {
  std::uint64_t largest = 0;
  for (const std::vector<TileRange>* table : {&meta.row_tiles,
                                              &meta.col_tiles}) {
    for (const TileRange& t : *table) {
      largest = std::max(largest, tile_resident_bytes(t));
    }
  }
  return largest;
}

}  // namespace

std::vector<std::size_t> ooc_tile_order(std::size_t tiles, int sweep) {
  std::vector<std::size_t> order(tiles);
  std::iota(order.begin(), order.end(), std::size_t{0});
  if (sweep % 2 != 0) {
    std::reverse(order.begin(), order.end());
  }
  return order;
}

OocTimeline ooc_epoch_timeline(const gpusim::DeviceSpec& dev,
                               const AlsKernelConfig& config,
                               const gpusim::LinkSpec& link,
                               const ShardMeta& meta, bool overlap) {
  OocTimeline tl;
  const struct {
    const std::vector<TileRange>* tiles;
    double fixed_dim;
  } views[] = {{&meta.row_tiles, static_cast<double>(meta.cols)},
               {&meta.col_tiles, static_cast<double>(meta.rows)}};
  for (const auto& view : views) {
    std::vector<double> transfer;
    std::vector<double> compute;
    transfer.reserve(view.tiles->size());
    compute.reserve(view.tiles->size());
    // update_phase_times is a pure function of the shape, and evenly cut
    // layouts (the full-scale benches) repeat one shape per view — memoize
    // so a 16-tile billion-nnz layout costs two cost-model evaluations, not
    // sixteen.
    std::map<std::pair<index_t, nnz_t>, double> memo;
    for (const TileRange& t : *view.tiles) {
      transfer.push_back(
          gpusim::transfer_seconds(link, static_cast<double>(t.bytes)));
      const auto key = std::make_pair(
          static_cast<index_t>(t.row_end - t.row_begin), t.nnz);
      auto it = memo.find(key);
      if (it == memo.end()) {
        const UpdateShape shape{static_cast<double>(key.first),
                                view.fixed_dim,
                                static_cast<double>(t.nnz)};
        it = memo.emplace(key,
                          update_phase_times(dev, shape, config)
                              .total_seconds())
                 .first;
      }
      compute.push_back(it->second);
    }
    const double t_sum =
        std::accumulate(transfer.begin(), transfer.end(), 0.0);
    const double c_sum = std::accumulate(compute.begin(), compute.end(), 0.0);
    tl.transfer_s += t_sum;
    tl.compute_s += c_sum;
    tl.serial_s += t_sum + c_sum;
    tl.pipelined_s += overlap
                          ? gpusim::pipelined_stream_seconds(transfer, compute)
                          : t_sum + c_sum;
  }
  tl.overlap_gain = tl.pipelined_s > 0 ? tl.serial_s / tl.pipelined_s : 1.0;
  return tl;
}

OocAlsEngine::OocAlsEngine(const std::string& shard_dir,
                           const AlsOptions& options, const OocOptions& ooc)
    : options_(options),
      cache_(shard_dir, read_shard_meta(shard_dir),
             TileCacheOptions{ooc.host_mem_bytes, ooc.use_mmap}) {
  CUMF_EXPECTS(options_.f > 0, "latent dimension must be positive");
  CUMF_EXPECTS(options_.lambda > 0, "ALS-WR needs lambda > 0");
  CUMF_EXPECTS(options_.workers >= 1, "need at least one worker");
  options_.hermitian.tile = pick_tile(options_.f, options_.hermitian.tile);

  const ShardMeta& meta = cache_.meta();
  x_ = Matrix(meta.rows, options_.f);
  theta_ = Matrix(meta.cols, options_.f);
  // meta.mean is the bit-exact mean_value() of the canonical train split,
  // so this warm start is byte-for-byte the one AlsEngine computes.
  als_init_factors(x_, meta.mean, options_.seed);
  als_init_factors(theta_, meta.mean, options_.seed + 1);

  // Prefetch keeps two tiles in flight (one computing, one loading), so it
  // needs headroom for both in the host cache and, when a device budget is
  // modeled, room to double-buffer them beside the factors. Without the
  // headroom the engine degrades to synchronous loads instead of lying
  // about the budget.
  const std::uint64_t largest = largest_tile_bytes(meta);
  overlap_ = ooc.overlap && ooc.host_mem_bytes >= 2 * largest &&
             (ooc.device_mem_bytes == 0 ||
              ooc.device_mem_bytes >= 2 * largest);

  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (int w = 0; w < options_.workers; ++w) {
    workers_.emplace_back(options_.f, options_.solver, options_.hermitian);
  }
  if (options_.workers > 1) {
    pool_ = std::make_unique<ThreadPool>(
        static_cast<std::size_t>(options_.workers));
  }
}

void OocAlsEngine::compute_tile(const CsrTile& tile, const Matrix& fixed,
                                Matrix& solved, std::uint32_t fault_site) {
  const auto offset = tile.row_begin;
  if (pool_ == nullptr) {
    als_update_rows(options_, tile.csr, fixed, solved, 0, tile.csr.rows(),
                    fault_site, workers_[0], offset);
    return;
  }
  const auto body = [&](std::size_t begin, std::size_t end,
                        std::size_t worker) {
    als_update_rows(options_, tile.csr, fixed, solved,
                    static_cast<index_t>(begin), static_cast<index_t>(end),
                    fault_site, workers_[worker], offset);
  };
  if (options_.schedule == AlsSchedule::nnz_guided) {
    const std::vector<std::size_t> bounds =
        nnz_balanced_bounds(tile.csr, 8 * pool_->size());
    pool_->parallel_for_chunks(bounds, body);
  } else {
    pool_->parallel_for_static(tile.csr.rows(), body);
  }
}

void OocAlsEngine::update_side(TileView view, const Matrix& fixed,
                               Matrix& solved, std::uint32_t fault_site) {
  const std::vector<TileRange>& table = cache_.meta().tiles(view);
  // The schedule depends only on (tile count, epoch counter): deterministic
  // across worker counts and budgets, and restore(epochs) re-enters the
  // identical sweep sequence.
  const std::vector<std::size_t> order =
      ooc_tile_order(table.size(), epochs_);
  const bool profiled = prof::Tracer::enabled();
  std::future<std::shared_ptr<const CsrTile>> pending;
  for (std::size_t i = 0; i < order.size(); ++i) {
    // Wait for the tile (prefetched by the previous iteration, or loaded
    // synchronously); the blocked time is the exposed transfer stall.
    const std::uint64_t w0 = profiled ? prof::now_ns() : 0;
    const auto wait0 = std::chrono::steady_clock::now();
    std::shared_ptr<const CsrTile> tile =
        pending.valid() ? pending.get() : cache_.get(view, order[i]);
    ooc_stats_.stall_s += seconds_since(wait0);
    if (profiled) {
      prof::Tracer::instance().complete_span("ooc_wait_tile", "ooc", w0,
                                             prof::now_ns());
    }
    if (overlap_ && i + 1 < order.size()) {
      const std::size_t next = order[i + 1];
      pending = std::async(std::launch::async,
                           [this, view, next] { return cache_.get(view, next); });
    }
    const std::uint64_t c0 = profiled ? prof::now_ns() : 0;
    const auto comp0 = std::chrono::steady_clock::now();
    compute_tile(*tile, fixed, solved, fault_site);
    ooc_stats_.compute_s += seconds_since(comp0);
    if (profiled) {
      prof::Tracer::instance().complete_span("ooc_tile_compute", "ooc", c0,
                                             prof::now_ns());
    }
    ++ooc_stats_.tiles;
  }
}

void OocAlsEngine::run_epoch() {
  CUMF_PROF_SCOPE("ooc_epoch", "ooc");
  for (AlsWorkerContext& ctx : workers_) {
    ctx.herm_ops = OpCounts{};
    ctx.solve_ops = OpCounts{};
    ctx.herm_ns = 0;
    ctx.solve_ns = 0;
  }
  ooc_stats_ = OocEpochStats{};
  const TileCache::Stats before = cache_.stats();
  {
    CUMF_PROF_SCOPE("ooc_update_X", "ooc");
    update_side(TileView::by_row, theta_, x_, /*fault_site=*/0);
  }
  {
    CUMF_PROF_SCOPE("ooc_update_Theta", "ooc");
    update_side(TileView::by_col, x_, theta_, /*fault_site=*/1);
  }
  const TileCache::Stats after = cache_.stats();
  ooc_stats_.cache_hits = after.hits - before.hits;
  ooc_stats_.cache_misses = after.misses - before.misses;
  ooc_stats_.bytes_loaded = after.bytes_loaded - before.bytes_loaded;
  ooc_stats_.load_s = after.load_seconds - before.load_seconds;

  herm_ops_ = OpCounts{};
  solve_ops_ = OpCounts{};
  phase_ = PhaseSeconds{};
  for (const AlsWorkerContext& ctx : workers_) {
    herm_ops_ += ctx.herm_ops;
    solve_ops_ += ctx.solve_ops;
    phase_.hermitian += static_cast<double>(ctx.herm_ns) / 1e9;
    phase_.solve += static_cast<double>(ctx.solve_ns) / 1e9;
  }
  ++epochs_;
  if (epoch_hook_) {
    epoch_hook_(epochs_);
  }
}

void OocAlsEngine::restore(const Matrix& x, const Matrix& theta,
                           int epochs_run, const SolveStats& stats) {
  CUMF_EXPECTS(x.rows() == x_.rows() && x.cols() == x_.cols(),
               "restore: user-factor shape mismatch");
  CUMF_EXPECTS(theta.rows() == theta_.rows() && theta.cols() == theta_.cols(),
               "restore: item-factor shape mismatch");
  CUMF_EXPECTS(epochs_run >= 0, "restore: negative epoch counter");
  x_ = x;
  theta_ = theta;
  epochs_ = epochs_run;
  restored_stats_ = stats;
  for (AlsWorkerContext& ctx : workers_) {
    ctx.solver.reset_stats();
  }
}

SolveStats OocAlsEngine::solve_stats() const noexcept {
  SolveStats total = restored_stats_;
  for (const AlsWorkerContext& ctx : workers_) {
    total += ctx.solver.stats();
  }
  return total;
}

}  // namespace cumf
