#include "core/multi_gpu.hpp"

#include "common/check.hpp"

namespace cumf {

std::vector<RowRange> partition_rows(index_t count, int parts) {
  CUMF_EXPECTS(parts > 0, "need at least one partition");
  CUMF_EXPECTS(static_cast<index_t>(parts) <= std::max<index_t>(count, 1),
               "more partitions than rows");
  std::vector<RowRange> out;
  out.reserve(static_cast<std::size_t>(parts));
  const index_t base = count / static_cast<index_t>(parts);
  const index_t extra = count % static_cast<index_t>(parts);
  index_t begin = 0;
  for (index_t p = 0; p < static_cast<index_t>(parts); ++p) {
    const index_t len = base + (p < extra ? 1 : 0);
    out.push_back(RowRange{begin, begin + len});
    begin += len;
  }
  CUMF_ENSURES(begin == count, "partition must cover all rows");
  return out;
}

MultiGpuAls::MultiGpuAls(const RatingsCoo& train, const AlsOptions& options,
                         int gpus)
    : options_(options), solver_(options.f, options.solver) {
  CUMF_EXPECTS(gpus >= 1, "need at least one GPU");

  RatingsCoo canonical = train;
  canonical.sort_and_dedup();
  r_ = CsrMatrix::from_coo(canonical);
  rt_ = r_.transposed();

  options_.hermitian.tile = pick_tile(options_.f, options_.hermitian.tile);

  x_ = Matrix(r_.rows(), options_.f);
  theta_ = Matrix(r_.cols(), options_.f);
  const double mean = canonical.mean_value();
  als_init_factors(x_, mean, options_.seed);
  als_init_factors(theta_, mean, options_.seed + 1);

  x_parts_ = partition_rows(r_.rows(), gpus);
  theta_parts_ = partition_rows(r_.cols(), gpus);

  a_scratch_.resize(options_.f * options_.f);
  b_scratch_.resize(options_.f);
}

void MultiGpuAls::update_side(const CsrMatrix& ratings, const Matrix& fixed,
                              Matrix& solved,
                              const std::vector<RowRange>& parts) {
  // Each "device" processes its slice against the same snapshot of `fixed`.
  // ALS row updates never read other rows of `solved`, so sequential
  // execution of the slices is functionally identical to concurrent
  // execution on g devices followed by an all-gather.
  for (const RowRange& part : parts) {
    for (index_t u = part.begin; u < part.end; ++u) {
      if (ratings.row_nnz(u) == 0) {
        continue;
      }
      get_hermitian_row(ratings, fixed, u, options_.lambda,
                        options_.hermitian, ws_, a_scratch_, b_scratch_);
      const bool ok = solver_.solve(a_scratch_, b_scratch_, solved.row(u));
      if (!ok) {
        continue;  // unsolvable even exactly: keep the previous factor
      }
    }
  }
}

void MultiGpuAls::run_epoch() {
  update_side(r_, theta_, x_, x_parts_);
  update_side(rt_, x_, theta_, theta_parts_);
  ++epochs_;
}

double MultiGpuAls::epoch_seconds(const gpusim::DeviceSpec& dev,
                                  const AlsKernelConfig& config,
                                  const gpusim::LinkSpec& link) const {
  return als_epoch_seconds(dev, static_cast<double>(r_.rows()),
                           static_cast<double>(r_.cols()),
                           static_cast<double>(r_.nnz()), config, gpus(),
                           link);
}

}  // namespace cumf
