#include "core/multi_gpu.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "prof/prof.hpp"

namespace cumf {

std::vector<RowRange> partition_rows(index_t count, int parts) {
  CUMF_EXPECTS(parts > 0, "need at least one partition");
  std::vector<RowRange> out;
  out.reserve(static_cast<std::size_t>(parts));
  // With parts > count this degenerates to `count` single-row ranges
  // followed by empty tails (base = 0, extra = count) — surplus devices
  // idle instead of the constructor throwing.
  const index_t base = count / static_cast<index_t>(parts);
  const index_t extra = count % static_cast<index_t>(parts);
  index_t begin = 0;
  for (index_t p = 0; p < static_cast<index_t>(parts); ++p) {
    const index_t len = base + (p < extra ? 1 : 0);
    out.push_back(RowRange{begin, begin + len});
    begin += len;
  }
  CUMF_ENSURES(begin == count, "partition must cover all rows");
  return out;
}

std::vector<RowRange> nnz_balanced_shards(const CsrMatrix& r, int parts) {
  CUMF_EXPECTS(parts > 0, "need at least one shard");
  const std::vector<std::size_t> bounds =
      nnz_balanced_bounds(r, static_cast<std::size_t>(parts));
  std::vector<RowRange> out;
  out.reserve(static_cast<std::size_t>(parts));
  for (std::size_t i = 0; i + 1 < bounds.size(); ++i) {
    out.push_back(RowRange{static_cast<index_t>(bounds[i]),
                           static_cast<index_t>(bounds[i + 1])});
  }
  // Fewer balanced cuts than devices: the tail devices hold empty shards.
  while (out.size() < static_cast<std::size_t>(parts)) {
    out.push_back(RowRange{r.rows(), r.rows()});
  }
  CUMF_ENSURES(out.size() == static_cast<std::size_t>(parts) &&
                   out.front().begin == 0 && out.back().end == r.rows(),
               "shards must cover all rows");
  return out;
}

MultiGpuAls::MultiGpuAls(const RatingsCoo& train, const AlsOptions& options,
                         int gpus)
    : options_(options) {
  CUMF_EXPECTS(gpus >= 1, "need at least one GPU");
  CUMF_EXPECTS(options_.f > 0, "latent dimension must be positive");
  CUMF_EXPECTS(options_.lambda > 0, "ALS-WR needs lambda > 0");

  RatingsCoo canonical = train;
  canonical.sort_and_dedup();
  for (const Rating& e : canonical.entries()) {
    CUMF_EXPECTS(std::isfinite(e.r), "ratings must be finite");
  }
  r_ = CsrMatrix::from_coo(canonical);
  rt_ = r_.transposed();

  options_.hermitian.tile = pick_tile(options_.f, options_.hermitian.tile);

  x_ = Matrix(r_.rows(), options_.f);
  theta_ = Matrix(r_.cols(), options_.f);
  const double mean = canonical.mean_value();
  als_init_factors(x_, mean, options_.seed);
  als_init_factors(theta_, mean, options_.seed + 1);

  // Device shards: nnz-balanced by default (hermitian work per row is
  // proportional to its nnz, so power-law degree skew would strand an
  // epoch behind the device that drew the head rows under a plain
  // row-count split); AlsSchedule::static_rows keeps the row-count split
  // as the ablation baseline.
  if (options_.schedule == AlsSchedule::nnz_guided) {
    x_shards_ = nnz_balanced_shards(r_, gpus);
    theta_shards_ = nnz_balanced_shards(rt_, gpus);
  } else {
    x_shards_ = partition_rows(r_.rows(), gpus);
    theta_shards_ = partition_rows(rt_.rows(), gpus);
  }

  devices_.reserve(static_cast<std::size_t>(gpus));
  for (int d = 0; d < gpus; ++d) {
    devices_.emplace_back(options_.f, options_.solver, options_.hermitian);
  }
  if (gpus > 1) {
    pool_ = std::make_unique<ThreadPool>(static_cast<std::size_t>(gpus));
  }
}

void MultiGpuAls::update_side(const CsrMatrix& ratings, const Matrix& fixed,
                              Matrix& solved,
                              const std::vector<RowRange>& shards,
                              std::uint32_t fault_site) {
  if (pool_ == nullptr) {
    als_update_rows(options_, ratings, fixed, solved, shards[0].begin,
                    shards[0].end, fault_site, devices_[0]);
    return;
  }
  // One task per device, each owning its private AlsWorkerContext. Shards
  // are disjoint row ranges, `fixed` is read-only during the sweep, and no
  // row of `solved` is read by another row's update, so the concurrent
  // slices are race-free and bit-identical to any sequential order.
  for (std::size_t d = 0; d < shards.size(); ++d) {
    const RowRange shard = shards[d];
    if (shard.size() == 0) {
      continue;  // surplus device: nothing to compute this half-sweep
    }
    AlsWorkerContext& ctx = devices_[d];
    pool_->submit([this, &ratings, &fixed, &solved, shard, fault_site,
                   &ctx]() {
      CUMF_PROF_SCOPE("mgpu_shard", "mgpu");
      als_update_rows(options_, ratings, fixed, solved, shard.begin,
                      shard.end, fault_site, ctx);
    });
  }
  // The wait is the functional all-gather: after it, every "device" (task)
  // observes the fully updated factor matrix for the next half-sweep.
  pool_->wait_idle();
}

void MultiGpuAls::run_epoch() {
  CUMF_PROF_SCOPE("mgpu_epoch", "mgpu");
  for (AlsWorkerContext& ctx : devices_) {
    ctx.herm_ops = OpCounts{};
    ctx.solve_ops = OpCounts{};
    ctx.herm_ns = 0;
    ctx.solve_ns = 0;
  }
  {
    CUMF_PROF_SCOPE("mgpu_update_X", "mgpu");
    update_side(r_, theta_, x_, x_shards_, /*fault_site=*/0);
  }
  {
    CUMF_PROF_SCOPE("mgpu_update_Theta", "mgpu");
    update_side(rt_, x_, theta_, theta_shards_, /*fault_site=*/1);
  }
  herm_ops_ = OpCounts{};
  solve_ops_ = OpCounts{};
  phase_ = PhaseSeconds{};
  for (const AlsWorkerContext& ctx : devices_) {
    herm_ops_ += ctx.herm_ops;
    solve_ops_ += ctx.solve_ops;
    phase_.hermitian += static_cast<double>(ctx.herm_ns) / 1e9;
    phase_.solve += static_cast<double>(ctx.solve_ns) / 1e9;
  }
  ++epochs_;
  if (epoch_hook_) {
    epoch_hook_(epochs_);
  }
}

void MultiGpuAls::restore(const Matrix& x, const Matrix& theta,
                          int epochs_run, const SolveStats& stats) {
  CUMF_EXPECTS(x.rows() == x_.rows() && x.cols() == x_.cols(),
               "restore: user-factor shape mismatch");
  CUMF_EXPECTS(theta.rows() == theta_.rows() && theta.cols() == theta_.cols(),
               "restore: item-factor shape mismatch");
  CUMF_EXPECTS(epochs_run >= 0, "restore: negative epoch counter");
  x_ = x;
  theta_ = theta;
  epochs_ = epochs_run;
  restored_stats_ = stats;
  for (AlsWorkerContext& ctx : devices_) {
    ctx.solver.reset_stats();
  }
}

SolveStats MultiGpuAls::solve_stats() const noexcept {
  SolveStats total = restored_stats_;
  for (const AlsWorkerContext& ctx : devices_) {
    total += ctx.solver.stats();
  }
  return total;
}

MultiGpuHalfSweep MultiGpuAls::half_sweep_timeline(
    const gpusim::DeviceSpec& dev, const AlsKernelConfig& config,
    const gpusim::LinkSpec& link, const CsrMatrix& ratings,
    const std::vector<RowRange>& shards, bool overlap) const {
  MultiGpuHalfSweep sweep;
  const std::vector<nnz_t>& ptr = ratings.row_ptr();
  std::vector<double> slice_bytes;
  slice_bytes.reserve(shards.size());
  sweep.device_compute_s.reserve(shards.size());
  for (const RowRange& shard : shards) {
    // Cost model at the shard's *actual* rows and nnz, not an even split:
    // the timeline reflects whatever balance the sharding achieved.
    double compute = 0.0;
    if (shard.size() > 0) {
      const UpdateShape shape{
          static_cast<double>(shard.size()),
          static_cast<double>(ratings.cols()),
          static_cast<double>(ptr[shard.end] - ptr[shard.begin])};
      compute = update_phase_times(dev, shape, config).total_seconds();
    }
    sweep.device_compute_s.push_back(compute);
    sweep.compute_s = std::max(sweep.compute_s, compute);
    slice_bytes.push_back(static_cast<double>(shard.size()) * config.f *
                          sizeof(real_t));
  }
  if (shards.size() > 1) {
    sweep.comm_total_s = gpusim::allgather_seconds_ragged(link, slice_bytes);
    if (overlap) {
      // Pipelined ring: each device exchanges its shard in C chunks,
      // streaming finished row blocks while computing the rest. Classic
      // pipeline bound — the longer of compute and comm dominates, plus
      // one fill of the shorter stage; only the excess over compute is
      // exposed as communication time.
      const double c = kOverlapPipelineDepth;
      const double wall =
          std::max(sweep.compute_s, sweep.comm_total_s) +
          std::min(sweep.compute_s, sweep.comm_total_s) / c;
      sweep.comm_s = wall - sweep.compute_s;
    } else {
      sweep.comm_s = sweep.comm_total_s;
    }
  }
  return sweep;
}

MultiGpuTimeline MultiGpuAls::epoch_timeline(const gpusim::DeviceSpec& dev,
                                             const AlsKernelConfig& config,
                                             const gpusim::LinkSpec& link,
                                             bool overlap) const {
  MultiGpuTimeline timeline;
  timeline.update_x =
      half_sweep_timeline(dev, config, link, r_, x_shards_, overlap);
  timeline.update_theta =
      half_sweep_timeline(dev, config, link, rt_, theta_shards_, overlap);
  return timeline;
}

MultiGpuScaling MultiGpuAls::scaling_report(const gpusim::DeviceSpec& dev,
                                            const AlsKernelConfig& config,
                                            const gpusim::LinkSpec& link,
                                            bool overlap) const {
  MultiGpuScaling report;
  report.gpus = gpus();
  const UpdateShape x_full{static_cast<double>(r_.rows()),
                           static_cast<double>(r_.cols()),
                           static_cast<double>(r_.nnz())};
  const UpdateShape t_full{static_cast<double>(rt_.rows()),
                           static_cast<double>(rt_.cols()),
                           static_cast<double>(rt_.nnz())};
  report.single_gpu_s =
      update_phase_times(dev, x_full, config).total_seconds() +
      update_phase_times(dev, t_full, config).total_seconds();
  const MultiGpuTimeline timeline =
      epoch_timeline(dev, config, link, overlap);
  report.total_s = timeline.total_s();
  report.compute_s = timeline.compute_s();
  report.comm_s = timeline.comm_s();
  report.speedup = report.total_s > 0 ? report.single_gpu_s / report.total_s
                                      : 0.0;
  report.efficiency = report.speedup / static_cast<double>(report.gpus);
  report.comm_fraction =
      report.total_s > 0 ? report.comm_s / report.total_s : 0.0;
  return report;
}

double MultiGpuAls::epoch_seconds(const gpusim::DeviceSpec& dev,
                                  const AlsKernelConfig& config,
                                  const gpusim::LinkSpec& link) const {
  return epoch_timeline(dev, config, link).total_s();
}

}  // namespace cumf
