// Implicit-feedback ALS (Hu, Koren & Volinsky; paper §V-F).
//
// With confidences c_uv = 1 + α·r_uv the normal equations become
//   x_u = (ΘᵀΘ + Θᵀ(Cᵘ−I)Θ + λI)⁻¹ · Θᵀ Cᵘ p_u .
// The ΘᵀΘ Gram matrix is shared by all rows and computed once per
// half-sweep — the trick that makes ALS O(Nz·f² + (m+n)·f²·f) instead of
// O(m·n·f²) even though the implicit loss runs over *all* m·n cells. This is
// exactly why SGD "loses its competitiveness" on implicit data (§V-F): its
// cost is proportional to the dense m·n.
#pragma once

#include "core/solver.hpp"
#include "data/implicit.hpp"
#include "linalg/dense.hpp"
#include "sparse/csr.hpp"

namespace cumf {

struct ImplicitAlsOptions {
  std::size_t f = 40;
  real_t lambda = 0.01f;
  SolverOptions solver;
  std::uint64_t seed = 1;
};

class ImplicitAlsEngine {
 public:
  ImplicitAlsEngine(const ImplicitDataset& data,
                    const ImplicitAlsOptions& options);

  void run_epoch();
  int epochs_run() const noexcept { return epochs_; }

  const Matrix& user_factors() const noexcept { return x_; }
  const Matrix& item_factors() const noexcept { return theta_; }

  /// Implicit training loss: Σ_uv c_uv (p_uv − x_uᵀθ_v)² + λ(‖X‖²+‖Θ‖²),
  /// evaluated exactly over all m·n cells — O(m·n·f), use on small data.
  double dense_loss() const;

  /// Predicted preference score for (u, v).
  real_t score(index_t u, index_t v) const;

 private:
  void update_side(const CsrMatrix& interactions, const Matrix& fixed,
                   Matrix& solved);

  ImplicitAlsOptions options_;
  double alpha_;
  CsrMatrix r_;
  CsrMatrix rt_;
  Matrix x_;
  Matrix theta_;
  SystemSolver solver_;
  std::vector<real_t> gram_;
  std::vector<real_t> a_scratch_;
  std::vector<real_t> b_scratch_;
  int epochs_ = 0;
};

}  // namespace cumf
